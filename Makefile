# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all fmt vet build test race chaos fuzz-seeds bench bench-baseline bench-tcp bench-tcp-baseline bench-all smoke-p64 trace-smoke daemon-smoke cluster-smoke collectives-shape api api-check ci

all: ci

# gofmt -l prints offending files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Explicit -timeout: the chaos/abort tests promise every injected hang
# becomes an error; a silent-hang regression should fail fast.
race:
	$(GO) test -race -timeout 5m ./...

# Fault-injection and abort-path suites only, plus the stpbench sweep.
chaos:
	$(GO) test -race -timeout 4m -run 'Chaos|Abort|Deadline|Timeout|Cancel|DialRetry|DialPermanent|MidRunConnection' ./internal/faults/ ./internal/live/ ./internal/tcp/ .
	$(GO) run ./cmd/stpbench -chaos

# Replay the checked-in fuzz seed corpora (no fuzzing time budget).
fuzz-seeds:
	$(GO) test -run=Fuzz ./internal/...

# Figure-regeneration benchmarks, best-of-3, parsed into BENCH_sim.json
# (ns/op + allocs/op per figure) and gated at 2x ns/op against the
# committed baseline. Refresh the baseline with `make bench-baseline`
# after an intentional perf change.
bench:
	$(GO) test -bench 'Fig' -benchmem -count 3 -run '^$$' -timeout 30m . \
		| $(GO) run ./cmd/stpperf -out BENCH_sim.json
	$(GO) run ./cmd/stpperf -check -baseline BENCH_baseline.json -current BENCH_sim.json -max-ratio 2

bench-baseline:
	$(GO) test -bench 'Fig' -benchmem -count 3 -run '^$$' -timeout 30m . \
		| $(GO) run ./cmd/stpperf -out BENCH_baseline.json

# TCP engine benchmarks (frame write/read hot path, steady-state
# Send-Recv, sparse vs full mesh setup, k-ported fan-out), best-of-3,
# parsed into BENCH_tcp.json and gated at 2x ns/op against the committed
# baseline. Fast enough for the ci target. Refresh the baseline with
# `make bench-tcp-baseline` after an intentional change.
bench-tcp:
	$(GO) test -bench 'Frame|SteadyState|Setup|KPort' -benchmem -count 3 -run '^$$' -timeout 10m ./internal/tcp/ \
		| $(GO) run ./cmd/stpperf -out BENCH_tcp.json
	$(GO) run ./cmd/stpperf -check -baseline BENCH_tcp_baseline.json -current BENCH_tcp.json -max-ratio 2

bench-tcp-baseline:
	$(GO) test -bench 'Frame|SteadyState|Setup|KPort' -benchmem -count 3 -run '^$$' -timeout 10m ./internal/tcp/ \
		| $(GO) run ./cmd/stpperf -out BENCH_tcp_baseline.json

# Sparse-mesh scale smoke: one real-byte broadcast over a route-planned
# p=64 mesh — the quick proof that the sparse TCP path works at a scale
# the full mesh makes painful. (TestSparseBroadcastP128 runs the p=128
# variant in the regular test sweep.)
smoke-p64:
	$(GO) test -run 'TestSparseBroadcastP64Smoke' -count 1 -timeout 5m ./internal/tcp/

# Microbenchmarks across all packages (no JSON, no gate).
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# End-to-end trace export: run stptrace on all three engines (plus a
# fault-injected TCP run), writing Chrome and JSONL traces, then validate
# every file against its schema with stptrace -validate.
trace-smoke:
	@mkdir -p .trace-smoke
	$(GO) run ./cmd/stptrace -engine sim -rows 4 -cols 4 -alg Br_xy_source -dist E -s 4 -bytes 1024 \
		-chrome .trace-smoke/sim.json -json .trace-smoke/sim.jsonl
	$(GO) run ./cmd/stptrace -engine live -rows 4 -cols 4 -alg Br_Lin -dist E -s 4 -bytes 1024 \
		-chrome .trace-smoke/live.json -json .trace-smoke/live.jsonl
	$(GO) run ./cmd/stptrace -engine tcp -rows 2 -cols 2 -alg Br_Lin -dist E -s 2 -bytes 512 \
		-chrome .trace-smoke/tcp.json -json .trace-smoke/tcp.jsonl
	$(GO) run ./cmd/stptrace -engine live -rows 2 -cols 2 -alg Br_Lin -dist E -s 2 -bytes 512 \
		-fault-dup 0.9 -fault-seed 7 -chrome .trace-smoke/faulty.json -json .trace-smoke/faulty.jsonl
	$(GO) run ./cmd/stptrace -validate .trace-smoke/*.json .trace-smoke/*.jsonl
	@rm -rf .trace-smoke

# End-to-end service smoke: start stpbcastd on a random port, run one
# broadcast per engine through stpctl, check /metrics agrees, and drain
# cleanly via /v1/shutdown.
daemon-smoke:
	sh scripts/daemon_smoke.sh

# Multi-process cluster smoke: stpworker spawns 4 worker OS processes,
# runs a p=64 sparse broadcast across them, and fails on any lazy dial
# (plus an adopt-mode leg with externally started workers).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Modern-collectives acceptance gate: the figCollectives shape test
# (newcomer schedules within 10% of the incumbent best per cell, and the
# per-collective planner tracking the cell's true best).
collectives-shape:
	$(GO) test -run 'TestFigCollectivesShape' -count 1 -timeout 10m ./internal/bench/

# Golden public-API surface of the facade package. `make api` refreshes
# the committed file after an intentional API change; `make api-check`
# (run by CI) fails when the tree and api/stpbcast.txt disagree, so the
# public surface can only change with an explicit, reviewed diff.
api:
	@mkdir -p api
	$(GO) run ./cmd/stpapi -dir . > api/stpbcast.txt

api-check:
	$(GO) run ./cmd/stpapi -dir . -check api/stpbcast.txt

ci: fmt vet build race fuzz-seeds smoke-p64 trace-smoke daemon-smoke cluster-smoke collectives-shape api-check bench-tcp
