# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all fmt vet build test race chaos fuzz-seeds bench bench-baseline bench-all ci

all: ci

# gofmt -l prints offending files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Explicit -timeout: the chaos/abort tests promise every injected hang
# becomes an error; a silent-hang regression should fail fast.
race:
	$(GO) test -race -timeout 5m ./...

# Fault-injection and abort-path suites only, plus the stpbench sweep.
chaos:
	$(GO) test -race -timeout 4m -run 'Chaos|Abort|Deadline|Timeout|Cancel|DialRetry|DialPermanent|MidRunConnection' ./internal/faults/ ./internal/live/ ./internal/tcp/ .
	$(GO) run ./cmd/stpbench -chaos

# Replay the checked-in fuzz seed corpora (no fuzzing time budget).
fuzz-seeds:
	$(GO) test -run=Fuzz ./internal/...

# Figure-regeneration benchmarks, best-of-3, parsed into BENCH_sim.json
# (ns/op + allocs/op per figure) and gated at 2x ns/op against the
# committed baseline. Refresh the baseline with `make bench-baseline`
# after an intentional perf change.
bench:
	$(GO) test -bench 'Fig' -benchmem -count 3 -run '^$$' -timeout 30m . \
		| $(GO) run ./cmd/stpperf -out BENCH_sim.json
	$(GO) run ./cmd/stpperf -check -baseline BENCH_baseline.json -current BENCH_sim.json -max-ratio 2

bench-baseline:
	$(GO) test -bench 'Fig' -benchmem -count 3 -run '^$$' -timeout 30m . \
		| $(GO) run ./cmd/stpperf -out BENCH_baseline.json

# Microbenchmarks across all packages (no JSON, no gate).
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

ci: fmt vet build race fuzz-seeds
