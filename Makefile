# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all fmt vet build test race fuzz-seeds bench ci

all: ci

# gofmt -l prints offending files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the checked-in fuzz seed corpora (no fuzzing time budget).
fuzz-seeds:
	$(GO) test -run=Fuzz ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: fmt vet build race fuzz-seeds
