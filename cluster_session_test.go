package stpbcast_test

import (
	"os"
	"strings"
	"testing"
	"time"

	stpbcast "repro"
)

// TestMain routes coordinator re-executions of this test binary into
// worker mode: the cluster session tests spawn real worker OS
// processes, and MaybeClusterWorker is how any binary — this one
// included — serves as one.
func TestMain(m *testing.M) {
	stpbcast.MaybeClusterWorker()
	os.Exit(m.Run())
}

// TestClusterSession drives a multi-process broadcast through the
// public Session API: RoutesFor's sparse plan, four spawned worker
// processes, several runs over the warm cluster, zero surprises in the
// stats.
func TestClusterSession(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := stpbcast.NewParagon(8, 8)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 4, MsgBytes: 1024}
	links, err := stpbcast.RoutesFor(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{
		Links:   links,
		Cluster: &stpbcast.ClusterSpec{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	opts := stpbcast.RunOptions{RecvTimeout: time.Minute}
	for i := 0; i < 2; i++ {
		res, err := s.Run(cfg, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("run %d: non-positive elapsed %v", i, res.Elapsed)
		}
		if res.Bundles != nil {
			t.Fatalf("run %d: cluster run returned bundles; payload bytes crossed the control plane", i)
		}
	}
	// Async submission rides the same path.
	f, err := s.RunAsync(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(); err != nil {
		t.Fatalf("async run: %v", err)
	}
	stats, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 3 || stats.Failures != 0 || stats.Reconnects != 0 {
		t.Fatalf("stats = %+v, want 3 clean runs with no reconnects", stats)
	}
	if stats.Bytes == 0 {
		t.Fatal("cluster runs reported zero payload bytes sent")
	}
}

// TestClusterSessionRejections: the option surface a distributed
// session cannot honor must fail fast with a named reason, and the
// cluster engine gate must hold at Open.
func TestClusterSessionRejections(t *testing.T) {
	if _, err := stpbcast.Open(stpbcast.NewParagon(2, 2), stpbcast.EngineLive, stpbcast.SessionOptions{
		Cluster: &stpbcast.ClusterSpec{Workers: 2},
	}); err == nil || !strings.Contains(err.Error(), "EngineTCP") {
		t.Fatalf("live cluster open error = %v", err)
	}

	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := stpbcast.NewParagon(2, 2)
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{
		Cluster: &stpbcast.ClusterSpec{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 64}
	cases := []struct {
		name string
		cfg  stpbcast.Config
		opts stpbcast.RunOptions
		want string
	}{
		{"payload", cfg, stpbcast.RunOptions{Payload: func(int) []byte { return nil }}, "Payload"},
		{"trace", cfg, stpbcast.RunOptions{Trace: stpbcast.NewTraceRecorder(0)}, "tracing"},
		{"faults", cfg, stpbcast.RunOptions{Faults: &stpbcast.FaultPlan{}}, "fault"},
		{"zero-bytes", stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2}, stpbcast.RunOptions{}, "MsgBytes"},
		{"repositioning", stpbcast.Config{Algorithm: "Repos_Lin", Distribution: "E", Sources: 2, MsgBytes: 64}, stpbcast.RunOptions{}, "broadcast algorithms"},
	}
	for _, tc := range cases {
		if _, err := s.Run(tc.cfg, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// The rejections must not have consumed the cluster.
	if _, err := s.Run(cfg, stpbcast.RunOptions{RecvTimeout: time.Minute}); err != nil {
		t.Fatalf("cluster unusable after rejected runs: %v", err)
	}
}
