// Package stpbcast is a library for scalable s-to-p broadcasting on
// message-passing machines, reproducing Hambrusch, Khokhar and Liu,
// "Scalable S-to-P Broadcasting on Message-Passing MPPs" (ICPP 1996).
//
// In s-to-p broadcasting, s of the p processors each hold a message that
// must reach all p processors. The package provides:
//
//   - the paper's algorithm suite — the library baselines 2-Step and
//     PersAlltoAll, the message-combining algorithms Br_Lin,
//     Br_xy_source and Br_xy_dim, the repositioning algorithms Repos_*,
//     and the partitioning algorithms Part_* — plus ring and
//     recursive-doubling all-gather ablations;
//   - the paper's source distributions (row, column, equal, diagonals,
//     band, cross, square block) and the ideal-distribution generators
//     the repositioning algorithms target;
//   - two execution engines behind one interface: a deterministic
//     discrete-event simulator of the Intel Paragon (2-D mesh, NX/MPI)
//     and Cray T3D (3-D torus, MPI) with contention-aware wormhole
//     routing, and a live goroutine runtime that moves real bytes;
//   - per-run metrics (the paper's congestion / wait / send-rec /
//     av_msg_lgth / av_act_proc parameters) and event traces;
//   - one experiment per table and figure of the paper's evaluation
//     (see Experiments and cmd/stpbench).
//
// # Quick start
//
//	m := stpbcast.NewParagon(10, 10)
//	res, err := stpbcast.Run(m, stpbcast.EngineSim, stpbcast.Config{
//		Algorithm:    "Br_xy_source",
//		Distribution: "E",
//		Sources:      30,
//		MsgBytes:     4096,
//	}, stpbcast.RunOptions{})
//	// res.Elapsed is the simulated broadcast time.
//
// Run is the unified one-shot entrypoint for all three engines
// (EngineSim, EngineLive, EngineTCP). For many broadcasts back to back,
// open a persistent Session instead and amortize the engine setup:
//
//	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
//	defer s.Close()
//	for i := 0; i < 100; i++ {
//		res, err := s.Run(cfg, stpbcast.RunOptions{RecvTimeout: 5 * time.Second})
//		// ...
//	}
//
// See examples/ for runnable programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package stpbcast

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Machine is a simulated platform: topology, placement, cost model, and
// the logical mesh the algorithms see.
type Machine = machine.Machine

// NewParagon returns an r×c Intel Paragon under the NX library.
func NewParagon(rows, cols int) *Machine { return machine.Paragon(rows, cols) }

// NewParagonMPI returns an r×c Intel Paragon under the MPI environment
// (the paper's measured 2–5% software-overhead loss over NX).
func NewParagonMPI(rows, cols int) *Machine { return machine.ParagonMPI(rows, cols) }

// NewT3D returns a p-processor Cray T3D under MPI (3-D torus, fixed
// system-controlled snake placement).
func NewT3D(p int) *Machine { return machine.T3D(p) }

// NewT3DRandom returns a T3D whose virtual→physical mapping is a seeded
// random scatter, the worst-case reading of "uncontrollable placement".
func NewT3DRandom(p int, seed int64) *Machine { return machine.T3DRandom(p, seed) }

// NewHypercube returns a 2^dim-processor binary hypercube with Paragon
// cost parameters (extension machine for topology ablations).
func NewHypercube(dim int) *Machine { return machine.HypercubeNX(dim) }

// NewMachineByName constructs a machine from its CLI name and requested
// logical mesh: "paragon" (NX), "paragon-mpi", "t3d" (rows·cols
// processors on the torus; the T3D picks its own logical factorization)
// or "hypercube" (rows·cols must be a power of two). It is the single
// name-to-machine mapping shared by the daemon's session-pool keys and
// the stpctl/stpbench topology flags.
func NewMachineByName(kind string, rows, cols int) (*Machine, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("stpbcast: invalid machine size %d×%d (rows and cols must be positive)", rows, cols)
	}
	switch strings.ToLower(kind) {
	case "paragon", "":
		return machine.Paragon(rows, cols), nil
	case "paragon-mpi":
		return machine.ParagonMPI(rows, cols), nil
	case "t3d":
		return machine.T3D(rows * cols), nil
	case "hypercube":
		p := rows * cols
		dim := 0
		for 1<<dim < p {
			dim++
		}
		if 1<<dim != p {
			return nil, fmt.Errorf("stpbcast: hypercube needs a power-of-two processor count, got %d×%d = %d", rows, cols, p)
		}
		return machine.HypercubeNX(dim), nil
	}
	return nil, fmt.Errorf("stpbcast: unknown machine %q (want paragon, paragon-mpi, t3d or hypercube)", kind)
}

// Algorithm is one s-to-p broadcasting algorithm (see core for the suite).
type Algorithm = core.Algorithm

// Algorithms returns every implemented algorithm in the paper's order.
func Algorithms() []Algorithm { return core.Registry() }

// AlgorithmByName returns the algorithm with the paper's name
// ("Br_Lin", "Repos_xy_source", ...).
func AlgorithmByName(name string) (Algorithm, error) { return core.ByName(name) }

// Distribution places source processors on the logical mesh.
type Distribution = dist.Distribution

// Distributions returns the paper's eight named distributions.
func Distributions() []Distribution { return dist.All() }

// DistributionByName returns a distribution by the paper's notation
// ("R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq").
func DistributionByName(name string) (Distribution, error) { return dist.ByName(name) }

// Params are the paper's per-run characteristic parameters (Figure 2).
type Params = metrics.Params

// LinkStats describes one directed physical link's accumulated load.
type LinkStats = network.LinkStats

// AutoAlgorithm, used as Config.Algorithm, lets the planner pick the
// algorithm: Simulate, RunLive and RunTCP then call Plan and run its
// choice. See Plan for the selection procedure.
const AutoAlgorithm = "Auto"

// Config selects one broadcast instance.
type Config struct {
	// Algorithm is the paper name of the algorithm ("Br_xy_source"), or
	// AutoAlgorithm to let the planner choose.
	Algorithm string
	// Distribution is the paper name of the source distribution ("E"),
	// ignored when Sources lists explicit ranks.
	Distribution string
	// Sources is the number of source processors, 1 ≤ s ≤ p.
	Sources int
	// SourceRanks optionally pins the exact source ranks (row-major);
	// when set, Distribution and Sources are ignored. The slice need not
	// be sorted (a sorted copy is taken); duplicate or out-of-range ranks
	// are reported as errors.
	SourceRanks []int
	// MsgBytes is the per-source message length L.
	MsgBytes int
	// RowMajor switches Br_Lin's linear order from the default
	// snake-like row-major to plain row-major (ablation).
	RowMajor bool
	// MsgBytesFor, when non-nil, gives each source its own message
	// length, overriding MsgBytes (the paper's variable-length
	// experiment). It is only called for source ranks; a negative return
	// is clamped to a zero-length message.
	MsgBytesFor func(rank int) int
}

// Validate checks the machine-independent configuration invariants —
// currently that the message length is non-negative. Machine-dependent
// checks (distribution names, source counts and ranks) surface when the
// config is resolved against a machine at run time. Every entrypoint —
// Plan, Run, Session.Run and the deprecated one-shot wrappers — calls
// Validate exactly once.
func (c Config) Validate() error {
	if c.MsgBytes < 0 {
		return fmt.Errorf("stpbcast: negative message length %d", c.MsgBytes)
	}
	return nil
}

// spec resolves the configuration against a machine.
func (c Config) spec(m *Machine) (core.Spec, error) {
	var sources []int
	if c.SourceRanks != nil {
		// Sort a copy so callers may list ranks in any order; duplicates
		// and out-of-range ranks then surface as Validate errors.
		sources = append([]int(nil), c.SourceRanks...)
		sort.Ints(sources)
	} else {
		d, err := dist.ByName(c.Distribution)
		if err != nil {
			return core.Spec{}, err
		}
		sources, err = d.Sources(m.Rows, m.Cols, c.Sources)
		if err != nil {
			return core.Spec{}, err
		}
	}
	ix := topology.SnakeRowMajor
	if c.RowMajor {
		ix = topology.RowMajor
	}
	spec := core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: sources, Indexing: ix}
	if err := spec.Validate(m.P()); err != nil {
		return core.Spec{}, err
	}
	return spec, nil
}

// PlanDecision is the planner's output: the chosen algorithm, the tier
// that chose it, and the supporting analytic ranking and probe timings.
type PlanDecision = plan.Decision

// defaultPlanner backs AutoAlgorithm and Plan: analytic ranking, probe
// refinement of the front-runners, and a process-wide in-memory plan
// cache so repeated Auto runs of the same instance skip the probes.
var defaultPlanner = plan.New(plan.Options{Cache: plan.NewMemCache(0)})

// Plan selects the fastest algorithm for the broadcast instance described
// by cfg (cfg.Algorithm is ignored). It ranks every registered algorithm
// with the analytic cost model, refines the front-runners with
// deterministic probe simulations, and caches the decision in memory:
// identical inputs yield the identical plan, and a warm cache answers
// without probing. For variable-length runs (MsgBytesFor) the planner
// prices the longest source message.
func Plan(m *Machine, cfg Config) (*PlanDecision, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, err
	}
	return planFor(m, cfg, spec)
}

// planFor assumes cfg has already passed Validate (every entrypoint
// validates once before resolving).
func planFor(m *Machine, cfg Config, spec core.Spec) (*PlanDecision, error) {
	msgLen := cfg.MsgBytes
	distName := ""
	if cfg.SourceRanks == nil {
		distName = cfg.Distribution
	}
	if cfg.MsgBytesFor != nil {
		// Variable lengths: plan for the longest message, the term that
		// dominates every algorithm's cost.
		msgLen = 0
		distName = "" // per-source lengths make the named-dist key too coarse
		for _, src := range spec.Sources {
			if n := cfg.MsgBytesFor(src); n > msgLen {
				msgLen = n
			}
		}
	}
	return defaultPlanner.Decide(context.Background(), m, plan.Request{
		Spec:     spec,
		MsgLen:   msgLen,
		DistName: distName,
	})
}

// resolveAlgorithm maps cfg.Algorithm to a runnable algorithm, invoking
// the planner for AutoAlgorithm.
func resolveAlgorithm(m *Machine, cfg Config, spec core.Spec) (Algorithm, error) {
	if cfg.Algorithm != AutoAlgorithm {
		return core.ByName(cfg.Algorithm)
	}
	dec, err := planFor(m, cfg, spec)
	if err != nil {
		return nil, err
	}
	return core.ByName(dec.Algorithm)
}

// TraceRecorder is the concurrency-safe event recorder behind
// RunOptions.Trace and the results' Trace fields: it retains the
// engine's unified event stream (every send, recv, wait, barrier and
// injected fault) and exports it via WriteJSON/WriteChrome/Summary. Use
// NewTraceRecorder to build one — the tracing API is fully usable
// through these public names.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder retaining at most cap events
// (0 keeps all; past the cap, events are counted as Dropped).
func NewTraceRecorder(cap int) *TraceRecorder { return trace.NewRecorder(cap) }

// TraceEvent is one recorded engine event (see TraceRecorder.Trace and
// the export helpers).
type TraceEvent = obs.Event

// obsTracer is the engine-facing tracer interface (internal alias so the
// session plumbing can pass a typed nil).
type obsTracer = obs.Tracer

// SimResult is the outcome of a simulated broadcast.
//
// Deprecated: SimResult only remains as the return type of the
// deprecated Simulate variants; the unified Run/Session.Run return
// Result, which carries the same fields.
type SimResult struct {
	// Elapsed is the simulated makespan.
	Elapsed time.Duration
	// Params are the paper's characteristic parameters of the run.
	Params Params
	// ActiveProfile is the number of processors communicating in each
	// algorithm iteration.
	ActiveProfile []int
	// Trace holds the recorded events when tracing was requested.
	Trace *TraceRecorder
	// HotLinks are the ten busiest directed links of the run, most
	// loaded first — the congestion hot spots.
	HotLinks []LinkStats
	// NodeLoad is, per physical node, the occupancy of its busiest
	// outgoing link (input for viz.Heatmap).
	NodeLoad []time.Duration
}

// Simulate runs one broadcast on the simulated machine and returns timing
// and metrics. The run is deterministic: identical inputs give identical
// results.
//
// Deprecated: Use Run(m, EngineSim, cfg, RunOptions{}); Simulate is a
// thin wrapper over it and returns identical results.
func Simulate(m *Machine, cfg Config) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateWith is Simulate with an explicit Algorithm value instead of a
// registry name — for parameterized algorithms such as core.BrDims,
// core.ReposTo or core.WithDiscovery. cfg.Algorithm is ignored.
//
// Deprecated: Use Run with RunOptions.Algorithm; SimulateWith is a thin
// wrapper over it and returns identical results.
func SimulateWith(m *Machine, alg Algorithm, cfg Config) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Algorithm: alg})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateTraced is Simulate with event recording (at most cap events
// retained; 0 keeps all).
//
// Deprecated: Use Run with RunOptions.Trace set to NewTraceRecorder(cap);
// SimulateTraced is a thin wrapper over it and returns identical results.
func SimulateTraced(m *Machine, cfg Config, cap int) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Trace: NewTraceRecorder(cap)})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateInto is Simulate with event recording into a caller-provided
// recorder — use NewTraceRecorder to cap retention, and the recorder's
// WriteJSON/WriteChrome to export the stream afterwards.
//
// Deprecated: Use Run with RunOptions.Trace; SimulateInto is a thin
// wrapper over it and returns identical results.
func SimulateInto(m *Machine, cfg Config, rec *TraceRecorder) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Trace: rec})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// LiveResult is the outcome of a live (goroutine) broadcast run.
//
// Deprecated: LiveResult only remains as the return type of the
// deprecated RunLive/RunTCP variants; the unified Run/Session.Run
// return Result, which carries the same fields.
type LiveResult struct {
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Bundles holds, per rank, the received original messages keyed by
	// origin rank. Every rank holds every source's payload.
	Bundles []map[int][]byte
	// Faults lists the faults injected during the run (in canonical
	// order), when RunOptions.Faults was set. A successful run with a
	// non-empty Faults list degraded gracefully: every injected fault
	// was absorbed without changing the delivered bundles.
	Faults []FaultEvent
}

// FaultPlan describes a deterministic fault schedule for chaos runs:
// per-link drop/delay/duplicate/corrupt probabilities decided by Seed,
// explicit targeted link faults, and rank kills. See internal/faults
// for the full semantics; the schedule is a pure function of the plan,
// so a failing seed replays exactly.
type FaultPlan = faults.Plan

// Fault is one explicit link fault of a FaultPlan.
type Fault = faults.Fault

// FaultKill schedules the death of one rank at a given operation index.
type FaultKill = faults.KillAt

// FaultEvent records one injected fault.
type FaultEvent = faults.Event

// Fault kinds for FaultPlan.Faults entries.
const (
	FaultDrop      = faults.Drop
	FaultDelay     = faults.Delay
	FaultDuplicate = faults.Duplicate
	FaultCorrupt   = faults.Corrupt
)

// RunOptions configure one broadcast run through the unified Run and
// Session.Run entrypoints (and their deprecated wrappers). The zero
// value means: the algorithm named by Config, synthesized payloads, no
// deadlines, no cancellation, no fault injection, no tracing.
type RunOptions struct {
	// Context, when non-nil, cancels the run.
	Context context.Context
	// RunTimeout bounds the whole run; RecvTimeout bounds any single
	// blocking receive or barrier wait. Either converts a hung or dead
	// rank into a returned error naming the blocked rank and peer.
	// Ignored by EngineSim (the simulator cannot hang).
	RunTimeout  time.Duration
	RecvTimeout time.Duration
	// Algorithm, when non-nil, overrides Config.Algorithm with an
	// explicit Algorithm value — for parameterized algorithms such as
	// core.BrDims, core.ReposTo or core.WithDiscovery that have no
	// registry name.
	Algorithm Algorithm
	// Payload, when non-nil, supplies each source rank's message bytes
	// on the real-byte engines (it is only called for source ranks).
	// When nil, each source sends Config.MsgBytes (or MsgBytesFor)
	// bytes of its rank value. Ignored by EngineSim, which prices
	// lengths only.
	Payload func(rank int) []byte
	// Faults, when non-nil, injects the plan's faults into the run
	// (real-byte engines only; EngineSim rejects fault plans). Set
	// RecvTimeout (or RunTimeout) alongside plans that drop or kill, so
	// induced hangs abort with a diagnostic instead of blocking
	// forever.
	Faults *FaultPlan
	// Trace, when non-nil, records the engine's unified event stream —
	// every send, recv, wait and barrier, plus any injected faults —
	// into the recorder (see NewTraceRecorder). The recorder is
	// concurrency-safe, so one recorder sees all ranks. Leave nil for
	// zero tracing overhead.
	Trace *TraceRecorder
	// DialAttempts/DialBackoff tune the TCP engine's connection-setup
	// retry for the one-shot Run (ignored by the other engines); zero
	// means the defaults. Sessions configure these at Open instead.
	DialAttempts int
	DialBackoff  time.Duration
	// FlushThreshold, when positive, enables the TCP engine's per-link
	// small-frame batching for this run: back-to-back frames to the
	// same destination coalesce into one write once the pending buffer
	// reaches the threshold, and are always flushed before the sender
	// blocks, so the buffered-Send contract is preserved. Useful for
	// barrier- and ack-heavy traffic; ignored by the other engines.
	FlushThreshold int
	// Ports, when positive, routes the TCP engine's sends through k
	// per-destination link drivers instead of writing inline: each rank
	// may have up to Ports frame transmissions in flight at once, the
	// k-ported node model of the paper's multi-channel routers. Ports=1
	// serializes transmissions through one driver; Ports and
	// FlushThreshold are mutually exclusive. Ignored by the other
	// engines.
	Ports int
}

// RunLive executes the broadcast on the live goroutine engine with real
// payload bytes. payload(rank) supplies each source's message; it is only
// called for source ranks. The machine's logical mesh defines the rank
// space; its cost model is not used (live runs measure wall-clock only).
//
// Deprecated: Use Run(m, EngineLive, cfg, RunOptions{Payload: payload});
// RunLive is a thin wrapper over it and returns identical results.
func RunLive(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunLiveOpts(m, cfg, payload, RunOptions{})
}

// RunLiveOpts is RunLive with deadlines, cancellation and fault
// injection (see RunOptions). With a deadline configured, a hung, dead
// or killed rank becomes a returned error naming the blocked rank and
// peer — the run never hangs silently.
//
// Deprecated: Use Run(m, EngineLive, cfg, opts) with RunOptions.Payload;
// RunLiveOpts is a thin wrapper over it and returns identical results.
func RunLiveOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	opts.Payload = payload
	r, err := Run(m, EngineLive, cfg, opts)
	if err != nil {
		return nil, err
	}
	return r.liveResult(), nil
}

// RunTCP executes the broadcast over real loopback TCP sockets — one
// listener per processor, length-prefixed frames, full mesh of
// connections — and verifies delivery like RunLive. It is the
// distributed-transport engine; use it to exercise the algorithms over a
// transport with real serialization.
//
// Deprecated: Use Run(m, EngineTCP, cfg, RunOptions{Payload: payload}) —
// or, for many broadcasts back to back, Open a Session to reuse the
// connection mesh. RunTCP is a thin wrapper over the unified path and
// returns identical results.
func RunTCP(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunTCPOpts(m, cfg, payload, RunOptions{})
}

// RunTCPOpts is RunTCP with deadlines, cancellation, dial retry and
// fault injection (see RunOptions). Transient connection-setup failures
// are absorbed by retry with exponential backoff; with a deadline
// configured, a hung, dead or killed rank becomes a returned error
// naming the blocked rank and peer.
//
// Deprecated: Use Run(m, EngineTCP, cfg, opts) with RunOptions.Payload —
// or, for many broadcasts back to back, Open a Session to reuse the
// connection mesh. RunTCPOpts is a thin wrapper over the unified path
// and returns identical results.
func RunTCPOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	opts.Payload = payload
	r, err := Run(m, EngineTCP, cfg, opts)
	if err != nil {
		return nil, err
	}
	return r.liveResult(), nil
}

// Experiment regenerates one table or figure of the paper (see
// cmd/stpbench).
type Experiment = bench.Experiment

// Series is the data behind one regenerated figure.
type Series = bench.Series

// Experiments returns every defined experiment, one per paper table and
// figure plus the ablations.
func Experiments() []Experiment { return bench.Experiments() }

// ExperimentByID returns the experiment with the given figure id ("fig3").
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }

// SetParallelism caps how many experiment cells (and planner probes) run
// concurrently across the process — the worker pool behind Experiments,
// the sweep CLIs' -parallel flag, and Plan's probe stage. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous limit. Figure output
// is byte-identical at every setting; only wall-clock time changes.
func SetParallelism(n int) int { return par.SetLimit(n) }

// Parallelism returns the current concurrency cap (see SetParallelism).
func Parallelism() int { return par.Limit() }
