// Package stpbcast is a library for scalable s-to-p broadcasting on
// message-passing machines, reproducing Hambrusch, Khokhar and Liu,
// "Scalable S-to-P Broadcasting on Message-Passing MPPs" (ICPP 1996).
//
// In s-to-p broadcasting, s of the p processors each hold a message that
// must reach all p processors. The package provides:
//
//   - the paper's algorithm suite — the library baselines 2-Step and
//     PersAlltoAll, the message-combining algorithms Br_Lin,
//     Br_xy_source and Br_xy_dim, the repositioning algorithms Repos_*,
//     and the partitioning algorithms Part_* — plus ring and
//     recursive-doubling all-gather ablations;
//   - the paper's source distributions (row, column, equal, diagonals,
//     band, cross, square block) and the ideal-distribution generators
//     the repositioning algorithms target;
//   - two execution engines behind one interface: a deterministic
//     discrete-event simulator of the Intel Paragon (2-D mesh, NX/MPI)
//     and Cray T3D (3-D torus, MPI) with contention-aware wormhole
//     routing, and a live goroutine runtime that moves real bytes;
//   - per-run metrics (the paper's congestion / wait / send-rec /
//     av_msg_lgth / av_act_proc parameters) and event traces;
//   - one experiment per table and figure of the paper's evaluation
//     (see Experiments and cmd/stpbench).
//
// # Quick start
//
//	m := stpbcast.NewParagon(10, 10)
//	res, err := stpbcast.Simulate(m, stpbcast.Config{
//		Algorithm:    "Br_xy_source",
//		Distribution: "E",
//		Sources:      30,
//		MsgBytes:     4096,
//	})
//	// res.Elapsed is the simulated broadcast time.
//
// See examples/ for runnable programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package stpbcast

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Machine is a simulated platform: topology, placement, cost model, and
// the logical mesh the algorithms see.
type Machine = machine.Machine

// NewParagon returns an r×c Intel Paragon under the NX library.
func NewParagon(rows, cols int) *Machine { return machine.Paragon(rows, cols) }

// NewParagonMPI returns an r×c Intel Paragon under the MPI environment
// (the paper's measured 2–5% software-overhead loss over NX).
func NewParagonMPI(rows, cols int) *Machine { return machine.ParagonMPI(rows, cols) }

// NewT3D returns a p-processor Cray T3D under MPI (3-D torus, fixed
// system-controlled snake placement).
func NewT3D(p int) *Machine { return machine.T3D(p) }

// NewT3DRandom returns a T3D whose virtual→physical mapping is a seeded
// random scatter, the worst-case reading of "uncontrollable placement".
func NewT3DRandom(p int, seed int64) *Machine { return machine.T3DRandom(p, seed) }

// NewHypercube returns a 2^dim-processor binary hypercube with Paragon
// cost parameters (extension machine for topology ablations).
func NewHypercube(dim int) *Machine { return machine.HypercubeNX(dim) }

// Algorithm is one s-to-p broadcasting algorithm (see core for the suite).
type Algorithm = core.Algorithm

// Algorithms returns every implemented algorithm in the paper's order.
func Algorithms() []Algorithm { return core.Registry() }

// AlgorithmByName returns the algorithm with the paper's name
// ("Br_Lin", "Repos_xy_source", ...).
func AlgorithmByName(name string) (Algorithm, error) { return core.ByName(name) }

// Distribution places source processors on the logical mesh.
type Distribution = dist.Distribution

// Distributions returns the paper's eight named distributions.
func Distributions() []Distribution { return dist.All() }

// DistributionByName returns a distribution by the paper's notation
// ("R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq").
func DistributionByName(name string) (Distribution, error) { return dist.ByName(name) }

// Params are the paper's per-run characteristic parameters (Figure 2).
type Params = metrics.Params

// LinkStats describes one directed physical link's accumulated load.
type LinkStats = network.LinkStats

// AutoAlgorithm, used as Config.Algorithm, lets the planner pick the
// algorithm: Simulate, RunLive and RunTCP then call Plan and run its
// choice. See Plan for the selection procedure.
const AutoAlgorithm = "Auto"

// Config selects one broadcast instance.
type Config struct {
	// Algorithm is the paper name of the algorithm ("Br_xy_source"), or
	// AutoAlgorithm to let the planner choose.
	Algorithm string
	// Distribution is the paper name of the source distribution ("E"),
	// ignored when Sources lists explicit ranks.
	Distribution string
	// Sources is the number of source processors, 1 ≤ s ≤ p.
	Sources int
	// SourceRanks optionally pins the exact source ranks (row-major);
	// when set, Distribution and Sources are ignored. The slice need not
	// be sorted (a sorted copy is taken); duplicate or out-of-range ranks
	// are reported as errors.
	SourceRanks []int
	// MsgBytes is the per-source message length L.
	MsgBytes int
	// RowMajor switches Br_Lin's linear order from the default
	// snake-like row-major to plain row-major (ablation).
	RowMajor bool
	// MsgBytesFor, when non-nil, gives each source its own message
	// length, overriding MsgBytes (the paper's variable-length
	// experiment). It is only called for source ranks; a negative return
	// is clamped to a zero-length message.
	MsgBytesFor func(rank int) int
}

// spec resolves the configuration against a machine.
func (c Config) spec(m *Machine) (core.Spec, error) {
	var sources []int
	if c.SourceRanks != nil {
		// Sort a copy so callers may list ranks in any order; duplicates
		// and out-of-range ranks then surface as Validate errors.
		sources = append([]int(nil), c.SourceRanks...)
		sort.Ints(sources)
	} else {
		d, err := dist.ByName(c.Distribution)
		if err != nil {
			return core.Spec{}, err
		}
		sources, err = d.Sources(m.Rows, m.Cols, c.Sources)
		if err != nil {
			return core.Spec{}, err
		}
	}
	ix := topology.SnakeRowMajor
	if c.RowMajor {
		ix = topology.RowMajor
	}
	spec := core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: sources, Indexing: ix}
	if err := spec.Validate(m.P()); err != nil {
		return core.Spec{}, err
	}
	return spec, nil
}

// PlanDecision is the planner's output: the chosen algorithm, the tier
// that chose it, and the supporting analytic ranking and probe timings.
type PlanDecision = plan.Decision

// defaultPlanner backs AutoAlgorithm and Plan: analytic ranking, probe
// refinement of the front-runners, and a process-wide in-memory plan
// cache so repeated Auto runs of the same instance skip the probes.
var defaultPlanner = plan.New(plan.Options{Cache: plan.NewMemCache(0)})

// Plan selects the fastest algorithm for the broadcast instance described
// by cfg (cfg.Algorithm is ignored). It ranks every registered algorithm
// with the analytic cost model, refines the front-runners with
// deterministic probe simulations, and caches the decision in memory:
// identical inputs yield the identical plan, and a warm cache answers
// without probing. For variable-length runs (MsgBytesFor) the planner
// prices the longest source message.
func Plan(m *Machine, cfg Config) (*PlanDecision, error) {
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, err
	}
	return planFor(m, cfg, spec)
}

func planFor(m *Machine, cfg Config, spec core.Spec) (*PlanDecision, error) {
	if cfg.MsgBytes < 0 {
		return nil, fmt.Errorf("stpbcast: negative message length %d", cfg.MsgBytes)
	}
	msgLen := cfg.MsgBytes
	distName := ""
	if cfg.SourceRanks == nil {
		distName = cfg.Distribution
	}
	if cfg.MsgBytesFor != nil {
		// Variable lengths: plan for the longest message, the term that
		// dominates every algorithm's cost.
		msgLen = 0
		distName = "" // per-source lengths make the named-dist key too coarse
		for _, src := range spec.Sources {
			if n := cfg.MsgBytesFor(src); n > msgLen {
				msgLen = n
			}
		}
	}
	return defaultPlanner.Decide(context.Background(), m, plan.Request{
		Spec:     spec,
		MsgLen:   msgLen,
		DistName: distName,
	})
}

// resolveAlgorithm maps cfg.Algorithm to a runnable algorithm, invoking
// the planner for AutoAlgorithm.
func resolveAlgorithm(m *Machine, cfg Config, spec core.Spec) (Algorithm, error) {
	if cfg.Algorithm != AutoAlgorithm {
		return core.ByName(cfg.Algorithm)
	}
	dec, err := planFor(m, cfg, spec)
	if err != nil {
		return nil, err
	}
	return core.ByName(dec.Algorithm)
}

// SimResult is the outcome of a simulated broadcast.
type SimResult struct {
	// Elapsed is the simulated makespan.
	Elapsed time.Duration
	// Params are the paper's characteristic parameters of the run.
	Params Params
	// ActiveProfile is the number of processors communicating in each
	// algorithm iteration.
	ActiveProfile []int
	// Trace holds the recorded events when Config tracing was requested
	// via SimulateTraced.
	Trace *trace.Recorder
	// HotLinks are the ten busiest directed links of the run, most
	// loaded first — the congestion hot spots.
	HotLinks []LinkStats
	// NodeLoad is, per physical node, the occupancy of its busiest
	// outgoing link (input for viz.Heatmap).
	NodeLoad []time.Duration
}

// Simulate runs one broadcast on the simulated machine and returns timing
// and metrics. The run is deterministic: identical inputs give identical
// results.
func Simulate(m *Machine, cfg Config) (*SimResult, error) {
	return simulate(m, cfg, nil, nil)
}

// SimulateWith is Simulate with an explicit Algorithm value instead of a
// registry name — for parameterized algorithms such as core.BrDims,
// core.ReposTo or core.WithDiscovery. cfg.Algorithm is ignored.
func SimulateWith(m *Machine, alg Algorithm, cfg Config) (*SimResult, error) {
	return simulate(m, cfg, nil, alg)
}

// SimulateTraced is Simulate with event recording (at most cap events
// retained; 0 keeps all).
func SimulateTraced(m *Machine, cfg Config, cap int) (*SimResult, error) {
	rec := trace.NewRecorder(cap)
	return simulate(m, cfg, rec, nil)
}

// SimulateInto is Simulate with event recording into a caller-provided
// recorder — use trace.NewRecorder to cap retention, and the recorder's
// WriteJSON/WriteChrome to export the stream afterwards.
func SimulateInto(m *Machine, cfg Config, rec *trace.Recorder) (*SimResult, error) {
	return simulate(m, cfg, rec, nil)
}

func simulate(m *Machine, cfg Config, rec *trace.Recorder, alg Algorithm) (*SimResult, error) {
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, err
	}
	if alg == nil {
		alg, err = resolveAlgorithm(m, cfg, spec)
		if err != nil {
			return nil, err
		}
	}
	if cfg.MsgBytes < 0 {
		return nil, fmt.Errorf("stpbcast: negative message length %d", cfg.MsgBytes)
	}
	nw, err := m.NewNetwork()
	if err != nil {
		return nil, err
	}
	// The simulator prices message lengths only, so sources enter with
	// length-only parts — no payload buffers are allocated.
	lenFor := func(rank int) int { return cfg.MsgBytes }
	if cfg.MsgBytesFor != nil {
		lenFor = func(rank int) int {
			if n := cfg.MsgBytesFor(rank); n > 0 {
				return n
			}
			return 0
		}
	}
	msgLens := make(map[int]int, len(spec.Sources))
	for _, src := range spec.Sources {
		msgLens[src] = lenFor(src)
	}
	opts := sim.Options{}
	if rec != nil {
		opts.Tracer = rec
	}
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialMessageLen(spec, pr.Rank(), msgLens[pr.Rank()])
		alg.Run(pr, spec, mine)
	}, opts)
	if err != nil {
		return nil, err
	}
	loads := nw.NodeLoad()
	nodeLoad := make([]time.Duration, len(loads))
	for i, v := range loads {
		nodeLoad[i] = v.Duration()
	}
	return &SimResult{
		Elapsed:       res.Elapsed.Duration(),
		Params:        metrics.FromResult(res),
		ActiveProfile: metrics.ActiveProfile(res),
		Trace:         rec,
		HotLinks:      nw.HotLinks(10),
		NodeLoad:      nodeLoad,
	}, nil
}

// LiveResult is the outcome of a live (goroutine) broadcast run.
type LiveResult struct {
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Bundles holds, per rank, the received original messages keyed by
	// origin rank. Every rank holds every source's payload.
	Bundles []map[int][]byte
	// Faults lists the faults injected during the run (in canonical
	// order), when RunOptions.Faults was set. A successful run with a
	// non-empty Faults list degraded gracefully: every injected fault
	// was absorbed without changing the delivered bundles.
	Faults []FaultEvent
}

// FaultPlan describes a deterministic fault schedule for chaos runs:
// per-link drop/delay/duplicate/corrupt probabilities decided by Seed,
// explicit targeted link faults, and rank kills. See internal/faults
// for the full semantics; the schedule is a pure function of the plan,
// so a failing seed replays exactly.
type FaultPlan = faults.Plan

// Fault is one explicit link fault of a FaultPlan.
type Fault = faults.Fault

// FaultKill schedules the death of one rank at a given operation index.
type FaultKill = faults.KillAt

// FaultEvent records one injected fault.
type FaultEvent = faults.Event

// Fault kinds for FaultPlan.Faults entries.
const (
	FaultDrop      = faults.Drop
	FaultDelay     = faults.Delay
	FaultDuplicate = faults.Duplicate
	FaultCorrupt   = faults.Corrupt
)

// RunOptions harden a RunLiveOpts/RunTCPOpts run. The zero value means
// no deadlines, no cancellation and no fault injection — the behaviour
// of plain RunLive/RunTCP.
type RunOptions struct {
	// Context, when non-nil, cancels the run.
	Context context.Context
	// RunTimeout bounds the whole run; RecvTimeout bounds any single
	// blocking receive or barrier wait. Either converts a hung or dead
	// rank into a returned error naming the blocked rank and peer.
	RunTimeout  time.Duration
	RecvTimeout time.Duration
	// Faults, when non-nil, injects the plan's faults into the run.
	// Set RecvTimeout (or RunTimeout) alongside plans that drop or
	// kill, so induced hangs abort with a diagnostic instead of
	// blocking forever.
	Faults *FaultPlan
	// Trace, when non-nil, records the engine's unified event stream —
	// every send, recv, wait and barrier, plus any injected faults —
	// with wall-clock timestamps. The recorder is concurrency-safe, so
	// one recorder sees all ranks. Leave nil for zero tracing overhead.
	Trace *trace.Recorder
	// DialAttempts/DialBackoff tune the TCP engine's connection-setup
	// retry (ignored by the live engine); zero means the defaults.
	DialAttempts int
	DialBackoff  time.Duration
}

// realRun prepares the engine-independent part of a real-byte run: the
// resolved spec and algorithm, the optional fault injector, the shared
// bundle collector, and the per-rank body.
func realRun(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (func(c comm.Comm), []map[int][]byte, *faults.Injector, error) {
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, nil, nil, err
	}
	alg, err := resolveAlgorithm(m, cfg, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	var inj *faults.Injector
	if opts.Faults != nil {
		inj = faults.New(*opts.Faults)
	}
	bundles := make([]map[int][]byte, m.P())
	body := func(c comm.Comm) {
		rank := c.Rank()
		if inj != nil {
			c = inj.Wrap(c)
		}
		var mine comm.Message
		if spec.IsSource(rank) {
			mine = comm.Message{Parts: []comm.Part{{Origin: rank, Data: payload(rank)}}}
		}
		out := alg.Run(c, spec, mine)
		got := make(map[int][]byte, len(out.Parts))
		for _, part := range out.Parts {
			got[part.Origin] = part.Data
		}
		bundles[rank] = got
	}
	return body, bundles, inj, nil
}

// liveResult assembles the public result from an engine run.
func liveResult(elapsed time.Duration, bundles []map[int][]byte, inj *faults.Injector) *LiveResult {
	res := &LiveResult{Elapsed: elapsed, Bundles: bundles}
	if inj != nil {
		res.Faults = inj.Events()
	}
	return res
}

// RunLive executes the broadcast on the live goroutine engine with real
// payload bytes. payload(rank) supplies each source's message; it is only
// called for source ranks. The machine's logical mesh defines the rank
// space; its cost model is not used (live runs measure wall-clock only).
func RunLive(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunLiveOpts(m, cfg, payload, RunOptions{})
}

// RunLiveOpts is RunLive with deadlines, cancellation and fault
// injection (see RunOptions). With a deadline configured, a hung, dead
// or killed rank becomes a returned error naming the blocked rank and
// peer — the run never hangs silently.
func RunLiveOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	body, bundles, inj, err := realRun(m, cfg, payload, opts)
	if err != nil {
		return nil, err
	}
	lopts := live.Options{
		Context:     opts.Context,
		RunTimeout:  opts.RunTimeout,
		RecvTimeout: opts.RecvTimeout,
	}
	if opts.Trace != nil {
		lopts.Tracer = opts.Trace
		if inj != nil {
			inj.SetTracer(opts.Trace, time.Now())
		}
	}
	res, err := live.RunOpts(m.P(), lopts, func(pr *live.Proc) { body(pr) })
	if err != nil {
		return nil, err
	}
	return liveResult(res.Elapsed, bundles, inj), nil
}

// RunTCP executes the broadcast over real loopback TCP sockets — one
// listener per processor, length-prefixed frames, full mesh of
// connections — and verifies delivery like RunLive. It is the
// distributed-transport engine; use it to exercise the algorithms over a
// transport with real serialization.
func RunTCP(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunTCPOpts(m, cfg, payload, RunOptions{})
}

// RunTCPOpts is RunTCP with deadlines, cancellation, dial retry and
// fault injection (see RunOptions). Transient connection-setup failures
// are absorbed by retry with exponential backoff; with a deadline
// configured, a hung, dead or killed rank becomes a returned error
// naming the blocked rank and peer.
func RunTCPOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	body, bundles, inj, err := realRun(m, cfg, payload, opts)
	if err != nil {
		return nil, err
	}
	topts := tcp.Options{
		Context:      opts.Context,
		RunTimeout:   opts.RunTimeout,
		RecvTimeout:  opts.RecvTimeout,
		DialAttempts: opts.DialAttempts,
		DialBackoff:  opts.DialBackoff,
	}
	if opts.Trace != nil {
		topts.Tracer = opts.Trace
		if inj != nil {
			inj.SetTracer(opts.Trace, time.Now())
		}
	}
	res, err := tcp.RunOpts(m.P(), topts, func(pr *tcp.Proc) { body(pr) })
	if err != nil {
		return nil, err
	}
	return liveResult(res.Elapsed, bundles, inj), nil
}

// Experiment regenerates one table or figure of the paper (see
// cmd/stpbench).
type Experiment = bench.Experiment

// Series is the data behind one regenerated figure.
type Series = bench.Series

// Experiments returns every defined experiment, one per paper table and
// figure plus the ablations.
func Experiments() []Experiment { return bench.Experiments() }

// ExperimentByID returns the experiment with the given figure id ("fig3").
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }

// SetParallelism caps how many experiment cells (and planner probes) run
// concurrently across the process — the worker pool behind Experiments,
// the sweep CLIs' -parallel flag, and Plan's probe stage. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous limit. Figure output
// is byte-identical at every setting; only wall-clock time changes.
func SetParallelism(n int) int { return par.SetLimit(n) }

// Parallelism returns the current concurrency cap (see SetParallelism).
func Parallelism() int { return par.Limit() }
