// Package stpbcast is a library for scalable s-to-p broadcasting on
// message-passing machines, reproducing Hambrusch, Khokhar and Liu,
// "Scalable S-to-P Broadcasting on Message-Passing MPPs" (ICPP 1996).
//
// In s-to-p broadcasting, s of the p processors each hold a message that
// must reach all p processors. The package provides:
//
//   - the paper's algorithm suite — the library baselines 2-Step and
//     PersAlltoAll, the message-combining algorithms Br_Lin,
//     Br_xy_source and Br_xy_dim, the repositioning algorithms Repos_*,
//     and the partitioning algorithms Part_* — plus ring and
//     recursive-doubling all-gather ablations;
//   - the paper's source distributions (row, column, equal, diagonals,
//     band, cross, square block) and the ideal-distribution generators
//     the repositioning algorithms target;
//   - two execution engines behind one interface: a deterministic
//     discrete-event simulator of the Intel Paragon (2-D mesh, NX/MPI)
//     and Cray T3D (3-D torus, MPI) with contention-aware wormhole
//     routing, and a live goroutine runtime that moves real bytes;
//   - per-run metrics (the paper's congestion / wait / send-rec /
//     av_msg_lgth / av_act_proc parameters) and event traces;
//   - one experiment per table and figure of the paper's evaluation
//     (see Experiments and cmd/stpbench).
//
// # Quick start
//
//	m := stpbcast.NewParagon(10, 10)
//	res, err := stpbcast.Run(m, stpbcast.EngineSim, stpbcast.Config{
//		Algorithm:    "Br_xy_source",
//		Distribution: "E",
//		Sources:      30,
//		MsgBytes:     4096,
//	}, stpbcast.RunOptions{})
//	// res.Elapsed is the simulated broadcast time.
//
// Run is the unified one-shot entrypoint for all three engines
// (EngineSim, EngineLive, EngineTCP). For many broadcasts back to back,
// open a persistent Session instead and amortize the engine setup:
//
//	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
//	defer s.Close()
//	for i := 0; i < 100; i++ {
//		res, err := s.Run(cfg, stpbcast.RunOptions{RecvTimeout: 5 * time.Second})
//		// ...
//	}
//
// See examples/ for runnable programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package stpbcast

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Machine is a simulated platform: topology, placement, cost model, and
// the logical mesh the algorithms see.
type Machine = machine.Machine

// NewParagon returns an r×c Intel Paragon under the NX library.
func NewParagon(rows, cols int) *Machine { return machine.Paragon(rows, cols) }

// NewParagonMPI returns an r×c Intel Paragon under the MPI environment
// (the paper's measured 2–5% software-overhead loss over NX).
func NewParagonMPI(rows, cols int) *Machine { return machine.ParagonMPI(rows, cols) }

// NewT3D returns a p-processor Cray T3D under MPI (3-D torus, fixed
// system-controlled snake placement).
func NewT3D(p int) *Machine { return machine.T3D(p) }

// NewT3DRandom returns a T3D whose virtual→physical mapping is a seeded
// random scatter, the worst-case reading of "uncontrollable placement".
func NewT3DRandom(p int, seed int64) *Machine { return machine.T3DRandom(p, seed) }

// NewHypercube returns a 2^dim-processor binary hypercube with Paragon
// cost parameters (extension machine for topology ablations).
func NewHypercube(dim int) *Machine { return machine.HypercubeNX(dim) }

// NewMachineByName constructs a machine from its CLI name and requested
// logical mesh: "paragon" (NX), "paragon-mpi", "t3d" (rows·cols
// processors on the torus; the T3D picks its own logical factorization)
// or "hypercube" (rows·cols must be a power of two). It is the single
// name-to-machine mapping shared by the daemon's session-pool keys and
// the stpctl/stpbench topology flags.
func NewMachineByName(kind string, rows, cols int) (*Machine, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("stpbcast: invalid machine size %d×%d (rows and cols must be positive)", rows, cols)
	}
	switch strings.ToLower(kind) {
	case "paragon", "":
		return machine.Paragon(rows, cols), nil
	case "paragon-mpi":
		return machine.ParagonMPI(rows, cols), nil
	case "t3d":
		return machine.T3D(rows * cols), nil
	case "hypercube":
		p := rows * cols
		dim := 0
		for 1<<dim < p {
			dim++
		}
		if 1<<dim != p {
			return nil, fmt.Errorf("stpbcast: hypercube needs a power-of-two processor count, got %d×%d = %d", rows, cols, p)
		}
		return machine.HypercubeNX(dim), nil
	}
	return nil, fmt.Errorf("stpbcast: unknown machine %q (want paragon, paragon-mpi, t3d or hypercube)", kind)
}

// Algorithm is one collective algorithm (see core for the suite).
type Algorithm = core.Algorithm

// Algorithms returns every implemented broadcast algorithm in the
// paper's order. Use AlgorithmsFor for the other collectives.
func Algorithms() []Algorithm { return core.Registry() }

// AlgorithmByName returns the algorithm with the paper's name
// ("Br_Lin", "Repos_xy_source", ...), searching every collective's
// entries. Prefer AlgorithmByNameFor when the intended collective is
// known — it rejects a name that belongs to a different collective.
func AlgorithmByName(name string) (Algorithm, error) { return core.ByName(name) }

// Collective names one collective communication pattern. Broadcast is
// the paper's s-to-p problem; the others are the modern extensions
// built on the same machinery. The zero value ("") means Broadcast.
type Collective = core.Collective

// The implemented collectives (Config.Collective values).
const (
	// CollectiveBroadcast: s sources each hold a message that must reach
	// all p processors (the paper's problem, and the default).
	CollectiveBroadcast = core.Broadcast
	// CollectiveReduce folds the sources' contributions into one bundle
	// at the root (the first source) under the byte-wise sum mod 256.
	CollectiveReduce = core.Reduce
	// CollectiveAllReduce is Reduce delivered to every processor.
	CollectiveAllReduce = core.AllReduce
	// CollectiveScatter splits the root's p per-destination chunks so
	// that rank r ends with exactly chunk r.
	CollectiveScatter = core.Scatter
	// CollectiveAllGather concatenates every rank's contribution on
	// every rank.
	CollectiveAllGather = core.AllGather
	// CollectiveAllToAll is the personalized exchange: every rank holds
	// p chunks, one per destination, and ends with the p addressed to it.
	CollectiveAllToAll = core.AllToAll
)

// ReducedOrigin is the Bundles key (and part origin) of a reduction
// result: CollectiveReduce and CollectiveAllReduce fold every
// contribution into one part with this origin, which can never collide
// with a rank.
const ReducedOrigin = core.ReducedOrigin

// Collectives returns every implemented collective, Broadcast first.
func Collectives() []Collective { return core.Collectives() }

// ParseCollective maps a (case-insensitive) collective name to its
// canonical value; the empty string means CollectiveBroadcast.
func ParseCollective(name string) (Collective, error) { return core.ParseCollective(name) }

// AlgorithmsFor returns the registered algorithms implementing one
// collective, in registration order.
func AlgorithmsFor(coll Collective) []Algorithm { return core.RegistryFor(coll) }

// AlgorithmByNameFor returns the named algorithm if it implements the
// given collective, and a diagnostic naming the algorithm's actual
// collective otherwise.
func AlgorithmByNameFor(coll Collective, name string) (Algorithm, error) {
	return core.ByNameFor(coll, name)
}

// Distribution places source processors on the logical mesh.
type Distribution = dist.Distribution

// Distributions returns the paper's eight named distributions.
func Distributions() []Distribution { return dist.All() }

// DistributionByName returns a distribution by the paper's notation
// ("R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq").
func DistributionByName(name string) (Distribution, error) { return dist.ByName(name) }

// Params are the paper's per-run characteristic parameters (Figure 2).
type Params = metrics.Params

// LinkStats describes one directed physical link's accumulated load.
type LinkStats = network.LinkStats

// AutoAlgorithm, used as Config.Algorithm, lets the planner pick the
// algorithm: Simulate, RunLive and RunTCP then call Plan and run its
// choice. See Plan for the selection procedure.
const AutoAlgorithm = "Auto"

// Config selects one collective instance.
type Config struct {
	// Collective is the communication pattern to run
	// (CollectiveBroadcast, CollectiveAllReduce, ...). The zero value
	// means CollectiveBroadcast, so configurations written before the
	// collective axis existed keep their meaning. Each collective
	// constrains the remaining fields by its capability row (see
	// Validate): the sourceless collectives (AllGather, AllToAll) reject
	// any source placement, Scatter takes at most one root, and only
	// Broadcast supports MsgBytesFor and cluster sessions.
	Collective Collective
	// Algorithm is the registry name of the algorithm ("Br_xy_source",
	// "AllRed_RecDouble", ...), or AutoAlgorithm — the meaning of the
	// empty string too — to let the planner choose among the
	// Collective's entries. A name that belongs to a different
	// collective is rejected with a diagnostic.
	Algorithm string
	// Distribution is the paper name of the source distribution ("E"),
	// ignored when Sources lists explicit ranks. Only meaningful for
	// collectives that take a source set (Broadcast, Reduce, AllReduce,
	// Scatter); for Reduce/AllReduce an empty placement means every rank
	// contributes, and for Scatter it means root 0.
	Distribution string
	// Sources is the number of source processors, 1 ≤ s ≤ p.
	Sources int
	// SourceRanks optionally pins the exact source ranks (row-major);
	// when set, Distribution and Sources are ignored. The slice need not
	// be sorted (a sorted copy is taken); duplicate or out-of-range ranks
	// are reported as errors.
	SourceRanks []int
	// MsgBytes is the per-source message length L — for the chunked
	// collectives (Scatter, AllToAll) the per-destination chunk length,
	// so a payload supplies p·MsgBytes bytes.
	MsgBytes int
	// RowMajor switches Br_Lin's linear order from the default
	// snake-like row-major to plain row-major (ablation).
	RowMajor bool
	// MsgBytesFor, when non-nil, gives each source its own message
	// length, overriding MsgBytes (the paper's variable-length
	// experiment). It is only called for source ranks; a negative return
	// is clamped to a zero-length message. Broadcast only.
	MsgBytesFor func(rank int) int
}

// collective returns the canonical collective the config names. It
// assumes Validate passed (every entrypoint validates first); an
// unparseable value degrades to Broadcast rather than panicking.
func (c Config) collective() Collective {
	coll, err := core.ParseCollective(string(c.Collective))
	if err != nil {
		return core.Broadcast
	}
	return coll
}

// Validate checks the machine-independent configuration invariants and
// reports every violation at once: the returned error joins one entry
// per problem (errors.Join), each naming the offending Config field, so
// a caller sees the full repair list rather than the first failure.
// Beyond the non-negative message length, the config must respect its
// collective's capability row — the sourceless collectives (AllGather,
// AllToAll) take no Distribution/Sources/SourceRanks, the single-root
// collectives (Scatter) take at most one source, and MsgBytesFor is
// broadcast-only. Machine-dependent checks (distribution names, source
// counts and ranks) surface when the config is resolved against a
// machine at run time. Every entrypoint — Plan, Run, Session.Run and
// the deprecated one-shot wrappers — calls Validate exactly once.
func (c Config) Validate() error {
	var errs []error
	coll, collErr := core.ParseCollective(string(c.Collective))
	if collErr != nil {
		errs = append(errs, fmt.Errorf("stpbcast: Config.Collective: %w", collErr))
	}
	if c.MsgBytes < 0 {
		errs = append(errs, fmt.Errorf("stpbcast: Config.MsgBytes: negative message length %d", c.MsgBytes))
	}
	if collErr == nil {
		caps := coll.Caps()
		if !caps.TakesSources {
			if c.Distribution != "" {
				errs = append(errs, fmt.Errorf("stpbcast: Config.Distribution: %s takes no source placement (every rank contributes); leave it unset", coll))
			}
			if c.Sources != 0 {
				errs = append(errs, fmt.Errorf("stpbcast: Config.Sources: %s takes no source count (every rank contributes); leave it unset", coll))
			}
			if c.SourceRanks != nil {
				errs = append(errs, fmt.Errorf("stpbcast: Config.SourceRanks: %s takes no source ranks (every rank contributes); leave them unset", coll))
			}
		}
		if caps.SingleSource {
			if c.Sources > 1 {
				errs = append(errs, fmt.Errorf("stpbcast: Config.Sources: %s has a single root, got %d sources", coll, c.Sources))
			}
			if len(c.SourceRanks) > 1 {
				errs = append(errs, fmt.Errorf("stpbcast: Config.SourceRanks: %s has a single root, got %d ranks", coll, len(c.SourceRanks)))
			}
		}
		if c.MsgBytesFor != nil && coll != core.Broadcast {
			errs = append(errs, fmt.Errorf("stpbcast: Config.MsgBytesFor: per-source message lengths are broadcast-only, not supported by %s", coll))
		}
	}
	return errors.Join(errs...)
}

// spec resolves the configuration against a machine. The sourceless
// collectives synthesize the every-rank source list; Reduce/AllReduce
// default to every rank contributing and Scatter to root 0 when no
// placement is given.
func (c Config) spec(m *Machine) (core.Spec, error) {
	coll := c.collective()
	caps := coll.Caps()
	var sources []int
	switch {
	case !caps.TakesSources:
		sources = core.AllRanksSources(m.P())
	case c.SourceRanks != nil:
		// Sort a copy so callers may list ranks in any order; duplicates
		// and out-of-range ranks then surface as Validate errors.
		sources = append([]int(nil), c.SourceRanks...)
		sort.Ints(sources)
	case c.Distribution == "" && c.Sources == 0 && coll != core.Broadcast:
		if caps.SingleSource {
			sources = []int{0}
		} else {
			sources = core.AllRanksSources(m.P())
		}
	default:
		d, err := dist.ByName(c.Distribution)
		if err != nil {
			return core.Spec{}, err
		}
		sources, err = d.Sources(m.Rows, m.Cols, c.Sources)
		if err != nil {
			return core.Spec{}, err
		}
	}
	ix := topology.SnakeRowMajor
	if c.RowMajor {
		ix = topology.RowMajor
	}
	spec := core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: sources, Indexing: ix}
	if err := spec.Validate(m.P()); err != nil {
		return core.Spec{}, err
	}
	return spec, nil
}

// PlanDecision is the planner's output: the chosen algorithm, the tier
// that chose it, and the supporting analytic ranking and probe timings.
type PlanDecision = plan.Decision

// defaultPlanner backs AutoAlgorithm and Plan: analytic ranking, probe
// refinement of the front-runners, and a process-wide in-memory plan
// cache so repeated Auto runs of the same instance skip the probes.
var defaultPlanner = plan.New(plan.Options{Cache: plan.NewMemCache(0)})

// Plan selects the fastest algorithm for the collective instance
// described by cfg (cfg.Algorithm is ignored). It ranks the collective's
// registered algorithms with the analytic cost model, refines the
// front-runners with deterministic probe simulations, and caches the
// decision in memory: identical inputs yield the identical plan, and a
// warm cache answers without probing. For variable-length runs
// (MsgBytesFor) the planner prices the longest source message.
func Plan(m *Machine, cfg Config) (*PlanDecision, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, err
	}
	return planFor(m, cfg, spec)
}

// planFor assumes cfg has already passed Validate (every entrypoint
// validates once before resolving).
func planFor(m *Machine, cfg Config, spec core.Spec) (*PlanDecision, error) {
	msgLen := cfg.MsgBytes
	distName := ""
	if cfg.SourceRanks == nil {
		distName = cfg.Distribution
	}
	if cfg.MsgBytesFor != nil {
		// Variable lengths: plan for the longest message, the term that
		// dominates every algorithm's cost.
		msgLen = 0
		distName = "" // per-source lengths make the named-dist key too coarse
		for _, src := range spec.Sources {
			if n := cfg.MsgBytesFor(src); n > msgLen {
				msgLen = n
			}
		}
	}
	return defaultPlanner.Decide(context.Background(), m, plan.Request{
		Spec:       spec,
		Collective: cfg.collective(),
		MsgLen:     msgLen,
		DistName:   distName,
	})
}

// resolveAlgorithm maps cfg.Algorithm to a runnable algorithm of the
// config's collective, invoking the planner for AutoAlgorithm (or the
// empty string — the zero Config plans, like the zero Collective
// broadcasts). A name that implements a different collective is
// rejected with a diagnostic naming both.
func resolveAlgorithm(m *Machine, cfg Config, spec core.Spec) (Algorithm, error) {
	coll := cfg.collective()
	if cfg.Algorithm != AutoAlgorithm && cfg.Algorithm != "" {
		return core.ByNameFor(coll, cfg.Algorithm)
	}
	dec, err := planFor(m, cfg, spec)
	if err != nil {
		return nil, err
	}
	return core.ByNameFor(coll, dec.Algorithm)
}

// TraceRecorder is the concurrency-safe event recorder behind
// RunOptions.Trace and the results' Trace fields: it retains the
// engine's unified event stream (every send, recv, wait, barrier and
// injected fault) and exports it via WriteJSON/WriteChrome/Summary. Use
// NewTraceRecorder to build one — the tracing API is fully usable
// through these public names.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder retaining at most cap events
// (0 keeps all; past the cap, events are counted as Dropped).
func NewTraceRecorder(cap int) *TraceRecorder { return trace.NewRecorder(cap) }

// TraceEvent is one recorded engine event (see TraceRecorder.Trace and
// the export helpers).
type TraceEvent = obs.Event

// obsTracer is the engine-facing tracer interface (internal alias so the
// session plumbing can pass a typed nil).
type obsTracer = obs.Tracer

// FaultPlan describes a deterministic fault schedule for chaos runs:
// per-link drop/delay/duplicate/corrupt probabilities decided by Seed,
// explicit targeted link faults, and rank kills. See internal/faults
// for the full semantics; the schedule is a pure function of the plan,
// so a failing seed replays exactly.
type FaultPlan = faults.Plan

// Fault is one explicit link fault of a FaultPlan.
type Fault = faults.Fault

// FaultKill schedules the death of one rank at a given operation index.
type FaultKill = faults.KillAt

// FaultEvent records one injected fault.
type FaultEvent = faults.Event

// Fault kinds for FaultPlan.Faults entries.
const (
	FaultDrop      = faults.Drop
	FaultDelay     = faults.Delay
	FaultDuplicate = faults.Duplicate
	FaultCorrupt   = faults.Corrupt
)

// RunOptions configure one broadcast run through the unified Run and
// Session.Run entrypoints (and their deprecated wrappers). The zero
// value means: the algorithm named by Config, synthesized payloads, no
// deadlines, no cancellation, no fault injection, no tracing.
type RunOptions struct {
	// Context, when non-nil, cancels the run.
	Context context.Context
	// RunTimeout bounds the whole run; RecvTimeout bounds any single
	// blocking receive or barrier wait. Either converts a hung or dead
	// rank into a returned error naming the blocked rank and peer.
	// Ignored by EngineSim (the simulator cannot hang).
	RunTimeout  time.Duration
	RecvTimeout time.Duration
	// Algorithm, when non-nil, overrides Config.Algorithm with an
	// explicit Algorithm value — for parameterized algorithms such as
	// core.BrDims, core.ReposTo or core.WithDiscovery that have no
	// registry name.
	Algorithm Algorithm
	// Payload, when non-nil, supplies each source rank's message bytes
	// on the real-byte engines (it is only called for source ranks).
	// When nil, each source sends Config.MsgBytes (or MsgBytesFor)
	// bytes of its rank value. Ignored by EngineSim, which prices
	// lengths only.
	Payload func(rank int) []byte
	// Faults, when non-nil, injects the plan's faults into the run
	// (real-byte engines only; EngineSim rejects fault plans). Set
	// RecvTimeout (or RunTimeout) alongside plans that drop or kill, so
	// induced hangs abort with a diagnostic instead of blocking
	// forever.
	Faults *FaultPlan
	// Trace, when non-nil, records the engine's unified event stream —
	// every send, recv, wait and barrier, plus any injected faults —
	// into the recorder (see NewTraceRecorder). The recorder is
	// concurrency-safe, so one recorder sees all ranks. Leave nil for
	// zero tracing overhead.
	Trace *TraceRecorder
	// DialAttempts/DialBackoff tune the TCP engine's connection-setup
	// retry for the one-shot Run (ignored by the other engines); zero
	// means the defaults. Sessions configure these at Open instead.
	DialAttempts int
	DialBackoff  time.Duration
	// FlushThreshold, when positive, enables the TCP engine's per-link
	// small-frame batching for this run: back-to-back frames to the
	// same destination coalesce into one write once the pending buffer
	// reaches the threshold, and are always flushed before the sender
	// blocks, so the buffered-Send contract is preserved. Useful for
	// barrier- and ack-heavy traffic; ignored by the other engines.
	FlushThreshold int
	// Ports, when positive, routes the TCP engine's sends through k
	// per-destination link drivers instead of writing inline: each rank
	// may have up to Ports frame transmissions in flight at once, the
	// k-ported node model of the paper's multi-channel routers. Ports=1
	// serializes transmissions through one driver; Ports and
	// FlushThreshold are mutually exclusive. Ignored by the other
	// engines.
	Ports int
}

// Experiment regenerates one table or figure of the paper (see
// cmd/stpbench).
type Experiment = bench.Experiment

// Series is the data behind one regenerated figure.
type Series = bench.Series

// Experiments returns every defined experiment, one per paper table and
// figure plus the ablations.
func Experiments() []Experiment { return bench.Experiments() }

// ExperimentByID returns the experiment with the given figure id ("fig3").
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }

// SetParallelism caps how many experiment cells (and planner probes) run
// concurrently across the process — the worker pool behind Experiments,
// the sweep CLIs' -parallel flag, and Plan's probe stage. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous limit. Figure output
// is byte-identical at every setting; only wall-clock time changes.
func SetParallelism(n int) int { return par.SetLimit(n) }

// Parallelism returns the current concurrency cap (see SetParallelism).
func Parallelism() int { return par.Limit() }
