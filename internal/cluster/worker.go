package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/tcp"
	"repro/internal/topology"
)

// WorkerEnv is the environment variable a spawned worker process finds
// the coordinator's control address in. Any binary that calls
// MaybeWorker early in main (stpworker, stpbench, test binaries via
// TestMain) can serve as a cluster worker, so the coordinator's default
// spawn mode is re-executing its own binary.
const WorkerEnv = "STPBCAST_CLUSTER_WORKER"

// MaybeWorker turns the current process into a cluster worker when
// WorkerEnv is set: it serves the coordinator until the session closes,
// then exits. It returns (doing nothing) in ordinary processes; call it
// before flag parsing or test registration.
func MaybeWorker() {
	addr := os.Getenv(WorkerEnv)
	if addr == "" {
		return
	}
	if err := ServeWorker(addr); err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker dials the coordinator's control listener and serves one
// worker session: build the assigned partial machine, connect it, run
// broadcasts as directed, and tear down on close. It returns nil when
// the coordinator closes the session.
func ServeWorker(coordAddr string) error {
	nc, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("cluster: worker dial coordinator %s: %w", coordAddr, err)
	}
	defer nc.Close()
	w := &worker{cc: newConn(nc)}
	if err := w.cc.send(msg{Type: "hello", PID: os.Getpid()}); err != nil {
		return fmt.Errorf("cluster: worker hello: %w", err)
	}
	return w.serve()
}

// worker is one worker process's state: its control connection, its
// partial machine, and the channel the protocol loop uses to release
// (or abort) a run blocked in the engine's start gate.
type worker struct {
	cc      *conn
	m       *tcp.Machine
	lo, hi  int
	startCh chan bool
}

func (w *worker) serve() error {
	defer func() {
		if w.m != nil {
			w.m.Close()
		}
	}()
	for {
		m, err := w.cc.recv(0) // the coordinator paces the session
		if err != nil {
			return fmt.Errorf("cluster: worker control connection: %w", err)
		}
		switch m.Type {
		case "assign":
			if err := w.assign(m.Assign); err != nil {
				w.cc.send(msg{Type: "err", Err: err.Error()})
				return err
			}
			w.cc.send(msg{Type: "addrs", Addrs: w.m.LocalAddrs()})
		case "connect":
			if err := w.m.ConnectMesh(context.Background(), m.Addrs); err != nil {
				w.cc.send(msg{Type: "err", Err: err.Error()})
				return err
			}
			w.cc.send(msg{Type: "ready"})
		case "reset":
			if err := w.m.ResetMesh(); err != nil {
				w.cc.send(msg{Type: "err", Err: err.Error()})
				return err
			}
			w.cc.send(msg{Type: "resetok"})
		case "run":
			w.startCh = make(chan bool, 1)
			go w.run(m.Run, w.startCh)
		case "start":
			w.startCh <- m.Abort
		case "close":
			w.cc.send(msg{Type: "closed"})
			return nil
		default:
			return fmt.Errorf("cluster: worker: unexpected %q message", m.Type)
		}
	}
}

func (w *worker) assign(a *assignMsg) error {
	if a == nil {
		return errors.New("cluster: empty assign")
	}
	if w.m != nil {
		return errors.New("cluster: worker already assigned")
	}
	links := a.Links
	if a.FullMesh {
		links = nil
	} else if links == nil {
		links = [][2]int{} // empty plan: everything would be lazy
	}
	m, err := tcp.NewWorkerMachine(a.P, a.Lo, a.Hi, tcp.Options{
		Links:          links,
		ListenHost:     a.ListenHost,
		DialAttempts:   a.DialAttempts,
		DialBackoff:    time.Duration(a.DialBackoffNs),
		DisableNoDelay: a.DisableNoDelay,
	})
	if err != nil {
		return err
	}
	w.m, w.lo, w.hi = m, a.Lo, a.Hi
	return nil
}

// run executes one broadcast on the worker's ranks. The protocol with
// the coordinator is armed → start → done, with the armed ack sent from
// inside the engine's start gate so the coordinator knows this worker's
// mailboxes accept the run's epoch before any worker sends a frame.
func (w *worker) run(rs *RunSpec, startCh chan bool) {
	finish := func(d doneMsg) {
		d.LazyDials = w.m.LazyDials()
		d.ConnsOpened = w.m.ConnsOpened()
		d.PlannedPairs = w.m.PlannedPairs()
		w.cc.send(msg{Type: "done", Done: &d})
	}
	// A worker whose mesh a previous run broke (or whose run spec is
	// unusable) still joins the armed/start rendezvous — the coordinator
	// aborts the start and drives recovery — so the control protocol
	// never deadlocks on a half-armed cluster.
	bail := func(broken bool, err error) {
		// A broken mesh is retryable (the coordinator resets and
		// reconnects); only a non-broken failure — a run spec no reset
		// can fix — travels as the armed ack's fatal error.
		a := msg{Type: "armed", Broken: broken}
		if !broken {
			a.Err = errString(err)
		}
		w.cc.send(a)
		<-startCh
		finish(doneMsg{Err: errString(err)})
	}
	if rs == nil {
		bail(false, errors.New("cluster: empty run spec"))
		return
	}
	spec, alg, err := w.buildRun(rs)
	if err != nil {
		bail(false, err)
		return
	}
	if w.m.Broken() {
		bail(true, errors.New("cluster: mesh broken; needs coordinator reset"))
		return
	}

	nlocal := w.hi - w.lo
	bundles := make([]bundleCheck, nlocal)
	body := func(pr *tcp.Proc) {
		out := alg.Run(pr, spec, core.InitialMessage(spec, pr.Rank(), workerPayload(pr.Rank(), rs.MsgBytes)))
		bundles[pr.Rank()-w.lo] = checkBundle(spec, rs.MsgBytes, out)
	}

	armedSent := false
	res, err := w.m.Run(tcp.Options{
		Epoch:       rs.Epoch,
		RecvTimeout: time.Duration(rs.RecvTimeoutNs),
		RunTimeout:  time.Duration(rs.RunTimeoutNs),
		Ports:       rs.Ports,
		StartGate: func() error {
			armedSent = true
			if err := w.cc.send(msg{Type: "armed"}); err != nil {
				return fmt.Errorf("armed ack: %w", err)
			}
			if abort := <-startCh; abort {
				return errors.New("coordinator aborted start")
			}
			return nil
		},
	}, body)
	if !armedSent {
		// Run failed before the gate (e.g. a broken mark raced the check
		// above); join the rendezvous so the coordinator stays in step.
		bail(w.m.Broken(), err)
		return
	}
	if err != nil {
		finish(doneMsg{Err: err.Error()})
		return
	}
	for i, b := range bundles {
		if b.err != "" {
			finish(doneMsg{Err: fmt.Sprintf("rank %d bundle: %s", w.lo+i, b.err)})
			return
		}
	}
	finish(doneMsg{ElapsedNs: res.Elapsed.Nanoseconds(), Procs: res.Procs})
}

func (w *worker) buildRun(rs *RunSpec) (core.Spec, core.Algorithm, error) {
	idx := topology.SnakeRowMajor
	if rs.RowMajor {
		idx = topology.RowMajor
	}
	spec := core.Spec{Rows: rs.Rows, Cols: rs.Cols, Sources: rs.Sources, Indexing: idx}
	if err := spec.Validate(rs.Rows * rs.Cols); err != nil {
		return core.Spec{}, nil, err
	}
	alg, err := core.ByName(rs.Algorithm)
	if err != nil {
		return core.Spec{}, nil, err
	}
	// Workers verify full-broadcast bundles — every rank ends with every
	// source's message. The repositioning algorithms end with a
	// different invariant, so reject them here with a clear error
	// instead of failing bundle verification cryptically.
	if strings.HasPrefix(alg.Name(), "Repos") || strings.HasPrefix(alg.Name(), "Part") {
		return core.Spec{}, nil, fmt.Errorf("cluster: %s repositions rather than broadcasts; cluster runs support broadcast algorithms only", alg.Name())
	}
	if rs.MsgBytes <= 0 {
		return core.Spec{}, nil, fmt.Errorf("cluster: non-positive message size %d", rs.MsgBytes)
	}
	return spec, alg, nil
}

// workerPayload is the deterministic per-source payload of a cluster
// run: MsgBytes bytes of byte(rank). Every worker derives it locally,
// so bundle verification needs no payload bytes on the control plane.
func workerPayload(rank, msgBytes int) []byte {
	b := make([]byte, msgBytes)
	for i := range b {
		b[i] = byte(rank)
	}
	return b
}

type bundleCheck struct{ err string }

// checkBundle verifies one rank's final bundle byte-exactly: one part
// per source, each carrying msgBytes bytes of byte(origin).
func checkBundle(spec core.Spec, msgBytes int, out comm.Message) bundleCheck {
	if len(out.Parts) != len(spec.Sources) {
		return bundleCheck{err: fmt.Sprintf("%d parts, want %d", len(out.Parts), len(spec.Sources))}
	}
	sources := make(map[int]bool, len(spec.Sources))
	for _, s := range spec.Sources {
		sources[s] = true
	}
	for _, part := range out.Parts {
		if !sources[part.Origin] {
			return bundleCheck{err: fmt.Sprintf("part from %d, which is not a source (or arrived twice)", part.Origin)}
		}
		delete(sources, part.Origin)
		if len(part.Data) != msgBytes {
			return bundleCheck{err: fmt.Sprintf("part from %d carries %d bytes, want %d", part.Origin, len(part.Data), msgBytes)}
		}
		if !bytes.Equal(part.Data, workerPayload(part.Origin, msgBytes)) {
			return bundleCheck{err: fmt.Sprintf("part from %d corrupted", part.Origin)}
		}
	}
	return bundleCheck{}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
