package cluster

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/topology"
)

// TestMain lets the test binary itself serve as a cluster worker: the
// spawn tests re-execute it with WorkerEnv set, and MaybeWorker routes
// those copies into ServeWorker instead of the test runner.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// testRoutes builds the Br_Lin sparse link plan for a rows×cols mesh
// with s sources under distribution E.
func testRoutes(t *testing.T, rows, cols, s, msgLen int) ([][2]int, []int) {
	t.Helper()
	m := machine.Paragon(rows, cols)
	d, err := dist.ByName("E")
	if err != nil {
		t.Fatal(err)
	}
	sources, err := d.Sources(rows, cols, s)
	if err != nil {
		t.Fatal(err)
	}
	// The indexing must match the worker side's default (snake), or the
	// traced routes would not be the links the cluster run uses.
	spec := core.Spec{Rows: rows, Cols: cols, Sources: sources, Indexing: topology.SnakeRowMajor}
	routes, err := plan.Routes(m, core.BrLin(), spec, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	return routes, sources
}

// adoptWorkers starts n in-process workers (goroutines running the
// real worker protocol over real control sockets) against a
// coordinator spec and returns the started coordinator.
func adoptCluster(t *testing.T, spec Spec, n int) *Coordinator {
	t.Helper()
	spec.Adopt = true
	spec.Workers = n
	spec.OnListen = func(addr string) {
		for i := 0; i < n; i++ {
			go func() {
				if err := ServeWorker(addr); err != nil {
					t.Errorf("worker: %v", err)
				}
			}()
		}
	}
	c, err := Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterBroadcastAdoptedWorkers(t *testing.T) {
	const rows, cols, s, msgLen = 4, 4, 4, 512
	routes, sources := testRoutes(t, rows, cols, s, msgLen)
	c := adoptCluster(t, Spec{P: rows * cols, Links: routes}, 2)

	rs := RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "Br_Lin",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	}
	for i := 0; i < 3; i++ { // warm mesh reuse across runs
		res, err := c.Run(rs)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(res.Procs) != rows*cols {
			t.Fatalf("run %d: %d proc stats, want %d", i, len(res.Procs), rows*cols)
		}
		for r, ps := range res.Procs {
			if ps.Rank != r {
				t.Fatalf("run %d: merged stats out of order at %d: rank %d", i, r, ps.Rank)
			}
		}
		if res.LazyDials != 0 {
			t.Fatalf("run %d: %d lazy dials over the planned sparse mesh, want 0", i, res.LazyDials)
		}
	}
	if got := c.Resets(); got != 0 {
		t.Fatalf("healthy cluster recorded %d resets", got)
	}
}

// TestClusterFullMeshAdopted covers the nil-Links path: every pair is
// planned, split across workers, nothing lazy.
func TestClusterFullMeshAdopted(t *testing.T) {
	const rows, cols, s, msgLen = 2, 4, 2, 256
	_, sources := testRoutes(t, rows, cols, s, msgLen)
	c := adoptCluster(t, Spec{P: rows * cols}, 2)
	res, err := c.Run(RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "Br_Lin",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LazyDials != 0 {
		t.Fatalf("full-mesh cluster made %d lazy dials", res.LazyDials)
	}
	p := rows * cols
	if res.PlannedPairs == 0 || res.ConnsOpened < p-1 {
		t.Fatalf("suspicious mesh counters: pairs %d conns %d", res.PlannedPairs, res.ConnsOpened)
	}
}

// TestClusterRecoversBrokenMesh drives the coordinator's two-phase
// recovery: a run aborted by an immediate deadline breaks the mesh on
// every worker; the next healthy run must transparently reset and
// reconnect the whole cluster and then succeed with no lazy dials.
func TestClusterRecoversBrokenMesh(t *testing.T) {
	const rows, cols, s, msgLen = 4, 4, 2, 512
	routes, sources := testRoutes(t, rows, cols, s, msgLen)
	c := adoptCluster(t, Spec{P: rows * cols, Links: routes}, 2)

	good := RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "Br_Lin",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	}
	if _, err := c.Run(good); err != nil {
		t.Fatalf("first run: %v", err)
	}
	doomed := good
	doomed.RunTimeoutNs = 1 // aborts while the cluster is still arming
	if _, err := c.Run(doomed); err == nil {
		t.Fatal("1ns-deadline run succeeded")
	}
	res, err := c.Run(good)
	if err != nil {
		t.Fatalf("run after recovery: %v", err)
	}
	if res.LazyDials != 0 {
		t.Fatalf("recovered mesh made %d lazy dials", res.LazyDials)
	}
	if got := c.Resets(); got == 0 {
		t.Fatal("broken mesh recovered without a coordinator reset")
	}
}

// TestClusterRejectsBadRunSpec: a run no worker can build (unknown
// algorithm) must fail cleanly without burning a recovery cycle, and
// the cluster must stay usable.
func TestClusterRejectsBadRunSpec(t *testing.T) {
	const rows, cols, s, msgLen = 2, 4, 2, 256
	routes, sources := testRoutes(t, rows, cols, s, msgLen)
	c := adoptCluster(t, Spec{P: rows * cols, Links: routes}, 2)

	_, err := c.Run(RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "No_Such_Alg",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	})
	if err == nil || !strings.Contains(err.Error(), "No_Such_Alg") {
		t.Fatalf("bad algorithm error = %v", err)
	}
	if got := c.Resets(); got != 0 {
		t.Fatalf("bad run spec burned %d recovery cycles", got)
	}
	if _, err := c.Run(RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "Br_Lin",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	}); err != nil {
		t.Fatalf("cluster unusable after rejected spec: %v", err)
	}
}

// TestClusterSpawnedProcesses is the real thing in miniature: the
// coordinator re-executes this test binary as 4 worker OS processes
// (via TestMain/MaybeWorker) and runs a p=64 sparse broadcast across
// them with zero lazy dials. The p=256 version is the figCluster
// experiment's shape test.
func TestClusterSpawnedProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const rows, cols, s, msgLen = 8, 8, 4, 512
	routes, sources := testRoutes(t, rows, cols, s, msgLen)
	c, err := Start(Spec{Workers: 4, P: rows * cols, Links: routes})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pids := map[int]bool{os.Getpid(): true}
	for _, pid := range c.WorkerPIDs() {
		pids[pid] = true
	}
	if len(pids) != 5 {
		t.Fatalf("expected 4 distinct worker processes plus the test, got PIDs %v", c.WorkerPIDs())
	}
	res, err := c.Run(RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: "Br_Lin",
		MsgBytes: msgLen, RecvTimeoutNs: int64(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Procs) != rows*cols {
		t.Fatalf("%d proc stats, want %d", len(res.Procs), rows*cols)
	}
	if res.LazyDials != 0 {
		t.Fatalf("%d lazy dials across processes, want 0", res.LazyDials)
	}
	if c.InterLinks() == 0 {
		t.Fatal("partition reports no inter-worker links; the broadcast never crossed a process boundary")
	}
}
