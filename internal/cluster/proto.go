// Package cluster runs the TCP engine's mesh across OS processes: a
// coordinator (the foreman) spawns or adopts worker processes, each
// owning a contiguous rank range of the mesh as a partial tcp.Machine,
// and drives them through bootstrap, runs and recovery over one control
// connection per worker. The data plane is exactly the engine's frame
// protocol — the coordinator never touches a payload byte; it only
// moves addresses, link plans and run specs.
//
// # Bootstrap
//
// Each worker dials the coordinator's control listener and identifies
// itself (hello). The coordinator assigns it a rank range and the slice
// of the planned link set touching that range (plan.Partition /
// plan.WorkerLinks), the worker binds its ranks' listeners
// (tcp.NewWorkerMachine) and reports their addresses, and once every
// worker has reported, the coordinator broadcasts the merged
// rank→address map and has every worker dial its share of the plan
// (tcp.ConnectMesh): the higher rank of every pair dials, exactly as in
// the single-process mesh, so intra-worker pairs stay in-process and
// inter-worker pairs cross the wire.
//
// # Runs
//
// A run is a two-phase start: the coordinator sends the run spec with a
// cluster-wide frame epoch, each worker arms its mailboxes and acks
// from inside the engine's start gate (tcp.Options.StartGate), and only
// when every worker is armed does the coordinator release them — no
// frame can reach a process that would still discard it as stale.
// Workers verify their own ranks' bundles (every source's payload,
// byte-exact) and report per-rank stats; the coordinator merges them.
//
// # Failure semantics
//
// A failed run marks every worker's mesh broken (the engine's abort
// closes all connections, including the wire pairs, whose loss the
// peer workers observe). Workers never redial on their own — a lone
// redialer would race peers that still consider the mesh broken — so
// the coordinator drives recovery: reset every worker (tcp.ResetMesh),
// reconnect every worker (tcp.ConnectMesh over the kept listeners and
// address table), retry the run once. A worker process dying takes its
// control connection with it; the coordinator reports the lost worker
// and the cluster is finished — rank ranges are static, so a dead
// worker's ranks cannot be re-homed mid-session.
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/tcp"
)

// controlTimeout bounds every control-plane exchange that does not
// contain an algorithm run: hello, assign/addrs, connect/ready,
// reset/resetok and the armed ack. Run completion (done) is bounded by
// the run spec's own timeout plus slack, or unbounded like the engine
// when none is set.
const controlTimeout = 60 * time.Second

// msg is the one wire message of the control protocol, a tagged union
// of newline-delimited JSON objects. Exactly one of the optional field
// groups is meaningful per Type.
type msg struct {
	Type string `json:"type"`

	// hello (worker→coord)
	PID int `json:"pid,omitempty"`

	// assign (coord→worker)
	Assign *assignMsg `json:"assign,omitempty"`

	// addrs (worker→coord) and connect (coord→worker): listener
	// addresses by rank (JSON object keys are decimal ranks).
	Addrs map[int]string `json:"addrs,omitempty"`

	// run (coord→worker)
	Run *RunSpec `json:"run,omitempty"`

	// armed (worker→coord): mailboxes armed inside the start gate.
	// Broken reports a mesh the engine marked damaged; Err a run the
	// worker could not even start (bad spec) — not retryable.
	Broken bool `json:"broken,omitempty"`

	// start (coord→worker): release the gate, or abort the run.
	Abort bool `json:"abort,omitempty"`

	// done (worker→coord)
	Done *doneMsg `json:"done,omitempty"`

	// err: any request the peer could not honor.
	Err string `json:"err,omitempty"`
}

// assignMsg hands a worker its identity: the mesh shape, its contiguous
// rank range, its slice of the planned link set, and the engine's setup
// options (every worker must agree on them, so the coordinator owns
// them).
type assignMsg struct {
	Index   int `json:"index"`
	P       int `json:"p"`
	Lo      int `json:"lo"`
	Hi      int `json:"hi"`
	Workers int `json:"workers"`

	// FullMesh distinguishes "no plan, dial everything" from an empty
	// link slice (JSON cannot round-trip nil vs empty).
	FullMesh bool     `json:"fullMesh,omitempty"`
	Links    [][2]int `json:"links,omitempty"`

	ListenHost     string `json:"listenHost,omitempty"`
	DialAttempts   int    `json:"dialAttempts,omitempty"`
	DialBackoffNs  int64  `json:"dialBackoffNs,omitempty"`
	DisableNoDelay bool   `json:"disableNoDelay,omitempty"`
}

// RunSpec is one cluster-wide broadcast: the paper instance (mesh shape,
// sources, indexing), the concrete algorithm (the coordinator resolves
// Auto before shipping), the payload size, and the engine's run knobs.
// Epoch is assigned by the coordinator, common to every worker.
type RunSpec struct {
	Epoch     uint32 `json:"epoch"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Sources   []int  `json:"sources"`
	RowMajor  bool   `json:"rowMajor,omitempty"` // default is the paper's snake order
	Algorithm string `json:"algorithm"`
	MsgBytes  int    `json:"msgBytes"`

	RecvTimeoutNs int64 `json:"recvTimeoutNs,omitempty"`
	RunTimeoutNs  int64 `json:"runTimeoutNs,omitempty"`
	Ports         int   `json:"ports,omitempty"`
}

// doneMsg reports one worker's share of a finished run: its local
// ranks' stats, its bundle verification, and its machine's lifetime
// dial counters (the zero-lazy-dials proof reads LazyDials).
type doneMsg struct {
	ElapsedNs    int64           `json:"elapsedNs"`
	Procs        []tcp.ProcStats `json:"procs,omitempty"`
	LazyDials    int             `json:"lazyDials"`
	ConnsOpened  int             `json:"connsOpened"`
	PlannedPairs int             `json:"plannedPairs"`
	Err          string          `json:"err,omitempty"`
}

// conn wraps one control connection with JSON codecs and a write lock
// (a worker's protocol loop and its run goroutine both send).
type conn struct {
	c   net.Conn
	enc *json.Encoder
	dec *json.Decoder
	wmu sync.Mutex
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}
}

func (c *conn) send(m msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// recv reads the next message, bounded by timeout (0 means no bound).
func (c *conn) recv(timeout time.Duration) (msg, error) {
	if timeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(timeout))
		defer c.c.SetReadDeadline(time.Time{})
	}
	var m msg
	if err := c.dec.Decode(&m); err != nil {
		return msg{}, err
	}
	return m, nil
}

// expect reads the next message and requires it to be of type want; an
// err message is surfaced as the peer's error.
func (c *conn) expect(want string, timeout time.Duration) (msg, error) {
	m, err := c.recv(timeout)
	if err != nil {
		return msg{}, err
	}
	if m.Err != "" && m.Type != want {
		return msg{}, fmt.Errorf("cluster: peer error: %s", m.Err)
	}
	if m.Type != want {
		return msg{}, fmt.Errorf("cluster: expected %q message, got %q", want, m.Type)
	}
	return m, nil
}
