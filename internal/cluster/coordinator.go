package cluster

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/tcp"
)

// Spec describes the cluster to stand up: how many workers share the
// p ranks, how to obtain the worker processes, and the engine setup
// options every worker must agree on.
type Spec struct {
	// Workers is the number of worker processes; each receives a
	// contiguous near-equal rank range (plan.WorkerRanges).
	Workers int
	// P is the mesh's processor count.
	P int
	// Links, when non-nil, is the planned directed link set (typically
	// plan.Routes output); the coordinator partitions it by worker. nil
	// plans the full mesh.
	Links [][2]int
	// WorkerCmd, when non-nil, is the argv of the worker command to
	// spawn (the coordinator appends nothing; the address travels in
	// WorkerEnv). nil spawns the coordinator's own binary re-executed —
	// any main that calls MaybeWorker works.
	WorkerCmd []string
	// Adopt disables spawning: the coordinator waits for Workers
	// externally started workers (pointed at ControlAddr via their
	// -coord flag or WorkerEnv) to dial in.
	Adopt bool
	// ControlAddr is the coordinator's control listener address.
	// Empty means an ephemeral loopback port — fine for spawned
	// workers, which inherit the address; adopted workers need a
	// well-known one.
	ControlAddr string
	// AdoptTimeout bounds the wait for workers to dial in (spawned or
	// adopted); 0 means controlTimeout.
	AdoptTimeout time.Duration
	// OnListen, when non-nil, is called with the control listener's
	// address before any worker is awaited — how adopted workers (and
	// tests) learn an ephemeral ControlAddr in time to dial it.
	OnListen func(addr string)

	// Engine setup options, applied uniformly to every worker's
	// partial machine.
	ListenHost     string
	DialAttempts   int
	DialBackoff    time.Duration
	DisableNoDelay bool
}

// Coordinator is the cluster's foreman: it owns the control connections
// to every worker and serializes bootstrap, runs and recovery over
// them. One run at a time, like the engine's Machine.
type Coordinator struct {
	mu      sync.Mutex
	spec    Spec
	ranges  [][2]int
	workers []*workerHandle
	procs   []*exec.Cmd
	ln      net.Listener
	epoch   uint32
	resets  int
	nInter  int // inter-worker links in the partitioned plan
	closed  bool
	dead    error
}

// workerHandle is the coordinator's view of one worker process.
type workerHandle struct {
	cc    *conn
	index int
	pid   int
	lo    int
	hi    int
}

// Result aggregates one cluster run: elapsed is the slowest worker's
// algorithm phase, Procs merges every worker's local stats (sorted by
// rank, all p present), and the dial counters sum the workers'.
type Result struct {
	Elapsed time.Duration
	Procs   []tcp.ProcStats
	// LazyDials sums the workers' lifetime on-demand dial counts: zero
	// means the partitioned route plan covered every link every
	// schedule used so far.
	LazyDials int
	// ConnsOpened and PlannedPairs sum the workers' per-machine
	// counters. An inter-worker pair is planned by both endpoints'
	// machines (so it counts twice in PlannedPairs) but dialed once —
	// by the higher rank, as within a process — so ConnsOpened counts
	// each established connection exactly once.
	ConnsOpened  int
	PlannedPairs int
}

// Start stands the cluster up: listen, spawn (or await) the workers,
// assign rank ranges and partitioned link plans, collect listener
// addresses, and drive every worker's mesh connect. On return every
// planned pair — in-process and wire — is established.
func Start(spec Spec) (*Coordinator, error) {
	if spec.Workers <= 0 {
		return nil, fmt.Errorf("cluster: non-positive worker count %d", spec.Workers)
	}
	ranges, err := plan.WorkerRanges(spec.P, spec.Workers)
	if err != nil {
		return nil, err
	}
	// Partition the link plan by worker up front; a bad plan should
	// fail before any process is spawned.
	var workerLinks [][][2]int
	nInter := 0
	if spec.Links != nil {
		intra, inter, err := plan.Partition(spec.Links, ranges)
		if err != nil {
			return nil, err
		}
		nInter = len(inter)
		workerLinks = make([][][2]int, spec.Workers)
		for w := range ranges {
			workerLinks[w] = plan.WorkerLinks(intra, inter, ranges, w)
		}
	}
	addr := spec.ControlAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: control listen on %s: %w", addr, err)
	}
	c := &Coordinator{spec: spec, ranges: ranges, ln: ln, nInter: nInter}
	if spec.OnListen != nil {
		spec.OnListen(c.ControlAddr())
	}
	if err := c.bootstrap(workerLinks); err != nil {
		c.teardown()
		return nil, err
	}
	return c, nil
}

// ControlAddr returns the control listener's address (for adopted
// workers started after the coordinator).
func (c *Coordinator) ControlAddr() string { return c.ln.Addr().String() }

// Ranges returns each worker's [lo,hi) rank range.
func (c *Coordinator) Ranges() [][2]int { return c.ranges }

// InterLinks reports how many planned links cross worker boundaries
// (0 when the cluster was started without a link plan).
func (c *Coordinator) InterLinks() int { return c.nInter }

// Resets reports how many coordinator-driven mesh recoveries have run.
func (c *Coordinator) Resets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resets
}

// WorkerPIDs returns the OS process ID each worker announced,
// coordinator order. Distinct PIDs prove process separation.
func (c *Coordinator) WorkerPIDs() []int {
	pids := make([]int, len(c.workers))
	for i, w := range c.workers {
		pids[i] = w.pid
	}
	return pids
}

func (c *Coordinator) spawn() error {
	argv := c.spec.WorkerCmd
	if argv == nil {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("cluster: resolve own binary for worker spawn: %w", err)
		}
		argv = []string{exe}
	}
	for i := 0; i < c.spec.Workers; i++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+c.ControlAddr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cluster: spawn worker %d: %w", i, err)
		}
		c.procs = append(c.procs, cmd)
	}
	return nil
}

func (c *Coordinator) bootstrap(workerLinks [][][2]int) error {
	if !c.spec.Adopt {
		if err := c.spawn(); err != nil {
			return err
		}
	}
	wait := c.spec.AdoptTimeout
	if wait <= 0 {
		wait = controlTimeout
	}
	deadline := time.Now().Add(wait)
	for i := 0; i < c.spec.Workers; i++ {
		c.ln.(*net.TCPListener).SetDeadline(deadline)
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: %d of %d workers connected: %w", i, c.spec.Workers, err)
		}
		w := &workerHandle{cc: newConn(nc), index: i, lo: c.ranges[i][0], hi: c.ranges[i][1]}
		hello, err := w.cc.expect("hello", controlTimeout)
		if err != nil {
			nc.Close()
			return fmt.Errorf("cluster: worker %d hello: %w", i, err)
		}
		w.pid = hello.PID
		c.workers = append(c.workers, w)
	}
	c.ln.(*net.TCPListener).SetDeadline(time.Time{})

	// Assign: every worker binds its listeners and reports addresses.
	merged := make(map[int]string, c.spec.P)
	for _, w := range c.workers {
		a := &assignMsg{
			Index: w.index, P: c.spec.P, Lo: w.lo, Hi: w.hi, Workers: c.spec.Workers,
			FullMesh:       c.spec.Links == nil,
			ListenHost:     c.spec.ListenHost,
			DialAttempts:   c.spec.DialAttempts,
			DialBackoffNs:  int64(c.spec.DialBackoff),
			DisableNoDelay: c.spec.DisableNoDelay,
		}
		if workerLinks != nil {
			a.Links = workerLinks[w.index]
		}
		if err := w.cc.send(msg{Type: "assign", Assign: a}); err != nil {
			return fmt.Errorf("cluster: assign worker %d: %w", w.index, err)
		}
		reply, err := w.cc.expect("addrs", controlTimeout)
		if err != nil {
			return fmt.Errorf("cluster: worker %d addrs: %w", w.index, err)
		}
		for r, addr := range reply.Addrs {
			merged[r] = addr
		}
	}
	if len(merged) != c.spec.P {
		return fmt.Errorf("cluster: workers reported %d rank addresses, want %d", len(merged), c.spec.P)
	}
	return c.connectAll(merged)
}

// connectAll distributes the rank→address map and waits for every
// worker's mesh share to establish. The sends all go out before any
// ready is awaited: a worker's dials land on peers that are already
// listening (listeners exist since assign), but the peers' own ready
// may come in any order.
func (c *Coordinator) connectAll(addrs map[int]string) error {
	for _, w := range c.workers {
		if err := w.cc.send(msg{Type: "connect", Addrs: addrs}); err != nil {
			return fmt.Errorf("cluster: connect worker %d: %w", w.index, err)
		}
	}
	for _, w := range c.workers {
		if _, err := w.cc.expect("ready", controlTimeout); err != nil {
			return fmt.Errorf("cluster: worker %d mesh connect: %w", w.index, err)
		}
	}
	return nil
}

// Run executes one cluster-wide broadcast. A run that breaks the mesh
// is recovered once — reset every worker, reconnect every worker, retry
// — before the error is surfaced; a worker process dying is fatal for
// the cluster (rank ranges are static).
func (c *Coordinator) Run(rs RunSpec) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if c.dead != nil {
			return nil, c.dead
		}
		return nil, errors.New("cluster: Run on closed coordinator")
	}
	for attempt := 0; ; attempt++ {
		res, broken, err := c.tryRun(rs)
		if err == nil {
			return res, nil
		}
		var le *lostWorkerError
		if errors.As(err, &le) {
			// The control connection died: the worker process is gone,
			// and with it its ranks. Nothing to retry against.
			c.closed = true
			c.dead = err
			c.teardown()
			return nil, err
		}
		if !broken || attempt >= 1 {
			return nil, err
		}
		if rerr := c.recover(); rerr != nil {
			c.closed = true
			c.dead = fmt.Errorf("cluster: mesh recovery failed: %w", rerr)
			c.teardown()
			return nil, c.dead
		}
	}
}

// lostWorkerError marks a control-plane failure: the worker (or its
// connection) is gone, not just the data mesh.
type lostWorkerError struct {
	index int
	cause error
}

func (e *lostWorkerError) Error() string {
	return fmt.Sprintf("cluster: worker %d lost: %v", e.index, e.cause)
}

// tryRun drives one armed→start→done cycle. broken reports whether the
// failure left the data mesh damaged (retryable after recovery).
func (c *Coordinator) tryRun(rs RunSpec) (*Result, bool, error) {
	c.epoch++
	rs.Epoch = c.epoch
	for _, w := range c.workers {
		if err := w.cc.send(msg{Type: "run", Run: &rs}); err != nil {
			return nil, false, &lostWorkerError{w.index, err}
		}
	}
	// Arm phase: every worker must ack before any may start, so no
	// frame reaches a process still discarding the run's epoch.
	broken, fatal := false, ""
	for _, w := range c.workers {
		m, err := w.cc.expect("armed", controlTimeout)
		if err != nil {
			return nil, false, &lostWorkerError{w.index, err}
		}
		if m.Broken {
			broken = true
		}
		if m.Err != "" {
			fatal = fmt.Sprintf("worker %d: %s", w.index, m.Err)
		}
	}
	abort := broken || fatal != ""
	for _, w := range c.workers {
		if err := w.cc.send(msg{Type: "start", Abort: abort}); err != nil {
			return nil, false, &lostWorkerError{w.index, err}
		}
	}
	// Done phase: bounded by the run's own deadline plus slack when one
	// is set; unbounded like the engine otherwise.
	doneTimeout := time.Duration(0)
	if rs.RunTimeoutNs > 0 {
		doneTimeout = time.Duration(rs.RunTimeoutNs) + controlTimeout
	}
	res := &Result{}
	var runErrs []string
	for _, w := range c.workers {
		m, err := w.cc.expect("done", doneTimeout)
		if err != nil {
			return nil, false, &lostWorkerError{w.index, err}
		}
		d := m.Done
		if d == nil {
			return nil, false, &lostWorkerError{w.index, errors.New("empty done message")}
		}
		if d.Err != "" {
			runErrs = append(runErrs, fmt.Sprintf("worker %d: %s", w.index, d.Err))
		}
		if e := time.Duration(d.ElapsedNs); e > res.Elapsed {
			res.Elapsed = e
		}
		res.Procs = append(res.Procs, d.Procs...)
		res.LazyDials += d.LazyDials
		res.ConnsOpened += d.ConnsOpened
		res.PlannedPairs += d.PlannedPairs
	}
	if fatal != "" {
		// A worker could not even build the run (bad spec): recovery
		// would replay the same failure, so don't.
		return nil, false, fmt.Errorf("cluster: run rejected: %s", fatal)
	}
	if abort {
		return nil, true, errors.New("cluster: mesh broken before start; recovering")
	}
	if len(runErrs) > 0 {
		// A failed run aborts the engine mesh everywhere (the abort
		// closes the wire pairs, which every peer worker observes).
		return nil, true, fmt.Errorf("cluster: run failed: %s", runErrs[0])
	}
	sort.Slice(res.Procs, func(i, j int) bool { return res.Procs[i].Rank < res.Procs[j].Rank })
	return res, false, nil
}

// recover drives the two-phase mesh rebuild: reset every worker (close
// conns, join pumps, clear the broken mark), then reconnect every
// worker. Resetting all before reconnecting any is what makes the
// redial safe — no worker can dial a peer that still considers the
// mesh broken and would refuse the registration.
func (c *Coordinator) recover() error {
	for _, w := range c.workers {
		if err := w.cc.send(msg{Type: "reset"}); err != nil {
			return &lostWorkerError{w.index, err}
		}
	}
	for _, w := range c.workers {
		if _, err := w.cc.expect("resetok", controlTimeout); err != nil {
			return &lostWorkerError{w.index, err}
		}
	}
	if err := c.connectAll(nil); err != nil {
		return err
	}
	c.resets++
	return nil
}

// Close shuts the cluster down: every worker is asked to close (and
// acknowledges), spawned processes are reaped, the control listener
// closes. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, w := range c.workers {
		w.cc.send(msg{Type: "close"})
	}
	for _, w := range c.workers {
		w.cc.expect("closed", controlTimeout)
	}
	c.teardown()
	return nil
}

// teardown closes connections and reaps spawned workers, escalating to
// Kill for any that outlive a grace period.
func (c *Coordinator) teardown() {
	for _, w := range c.workers {
		w.cc.c.Close()
	}
	c.ln.Close()
	for _, cmd := range c.procs {
		proc := cmd
		done := make(chan struct{})
		go func() {
			proc.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			proc.Process.Kill()
			<-done
		}
	}
}
