package cluster

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/topology"
)

func init() {
	bench.Register(bench.Experiment{
		ID:    "figCluster",
		Title: "Multi-process cluster: p=64..256 sparse Br_Lin broadcast across 4 worker OS processes, per-mesh setup and broadcast time",
		Paper: "Beyond the paper: the paper's p=256 Paragon runs one process per node; this figure runs the same sparse dial plan split across 4 coordinator-spawned worker processes on localhost, proving the mesh partitioning keeps every planned pair wired (zero lazy dials) while the frame protocol crosses process boundaries unchanged.",
		Run:   runFigCluster,
	})
}

// figCluster workload: 1 KiB Br_Lin broadcasts, distribution E, s=4
// sources, over the traced sparse link plan, with the mesh split across
// figClusterWorkers coordinator-spawned OS processes.
const (
	figClusterWorkers  = 4
	figClusterMsgBytes = 1024
	figClusterSources  = 4
	figClusterRuns     = 3 // broadcast repetitions per mesh; best-of
)

var figClusterMeshes = [][2]int{{8, 8}, {16, 8}, {16, 16}}

// clusterPoint is one swept mesh size: wall-clock to bootstrap the
// worker processes and their wired mesh, best-of broadcast time, and
// the partition/dial counters behind the zero-lazy-dials claim.
type clusterPoint struct {
	SetupMs    float64
	BcastMs    float64
	InterLinks int
	LazyDials  int
	Procs      int // distinct worker OS processes
}

// figClusterPoint bootstraps a cluster of spawned worker processes for
// one mesh size, runs the broadcast figClusterRuns times, and tears the
// cluster down. Callers must have routed worker re-executions through
// MaybeWorker (stpbench and the cluster test binary both do).
func figClusterPoint(rows, cols, workers int) (clusterPoint, error) {
	m := machine.Paragon(rows, cols)
	d, err := dist.ByName("E")
	if err != nil {
		return clusterPoint{}, err
	}
	sources, err := d.Sources(rows, cols, figClusterSources)
	if err != nil {
		return clusterPoint{}, err
	}
	// Snake indexing to match the worker side's default.
	spec := core.Spec{Rows: rows, Cols: cols, Sources: sources, Indexing: topology.SnakeRowMajor}
	routes, err := plan.Routes(m, core.BrLin(), spec, figClusterMsgBytes)
	if err != nil {
		return clusterPoint{}, err
	}

	setupStart := time.Now()
	c, err := Start(Spec{Workers: workers, P: rows * cols, Links: routes})
	if err != nil {
		return clusterPoint{}, fmt.Errorf("cluster %dx%d: %w", rows, cols, err)
	}
	defer c.Close()
	pt := clusterPoint{
		SetupMs:    float64(time.Since(setupStart).Microseconds()) / 1000,
		InterLinks: c.InterLinks(),
		Procs:      len(c.WorkerPIDs()),
	}

	rs := RunSpec{
		Rows: rows, Cols: cols, Sources: sources, Algorithm: core.BrLin().Name(),
		MsgBytes: figClusterMsgBytes, RecvTimeoutNs: int64(time.Minute),
	}
	for i := 0; i < figClusterRuns; i++ {
		res, err := c.Run(rs)
		if err != nil {
			return clusterPoint{}, fmt.Errorf("cluster %dx%d run %d: %w", rows, cols, i, err)
		}
		ms := float64(res.Elapsed.Microseconds()) / 1000
		if i == 0 || ms < pt.BcastMs {
			pt.BcastMs = ms
		}
		pt.LazyDials = res.LazyDials
	}
	return pt, nil
}

func runFigCluster() (*bench.Series, error) {
	s := bench.NewSeries(
		"Sparse broadcast across 4 worker processes (Br_Lin, E, s=4, 1 KiB)",
		"mesh (p)", "ms (setup, bcast) / count (inter, lazy)",
		"setup_ms", "bcast_ms", "inter_links", "lazy_dials",
	)
	for _, mesh := range figClusterMeshes {
		rows, cols := mesh[0], mesh[1]
		pt, err := figClusterPoint(rows, cols, figClusterWorkers)
		if err != nil {
			return nil, err
		}
		s.AddX(fmt.Sprintf("%dx%d (%d)", rows, cols, rows*cols),
			pt.SetupMs, pt.BcastMs, float64(pt.InterLinks), float64(pt.LazyDials))
	}
	s.Notes = fmt.Sprintf("each mesh is split across %d coordinator-spawned worker OS processes on localhost; bcast is best of %d runs; lazy_dials must be 0 (every wire pair pre-dialed from the traced plan)", figClusterWorkers, figClusterRuns)
	return s, nil
}
