package cluster

import (
	"testing"

	"repro/internal/bench"
)

// TestFigClusterRegistered: linking this package must make the figure
// visible to the experiment registry (it registers at init to keep
// bench free of a cluster dependency).
func TestFigClusterRegistered(t *testing.T) {
	e, err := bench.ByID("figCluster")
	if err != nil {
		t.Fatal(err)
	}
	if e.Run == nil {
		t.Fatal("figCluster registered without a Run func")
	}
}

// TestFigClusterShape is the tentpole's acceptance check: the largest
// swept point — the paper's p=256 mesh — broadcast across 4 worker OS
// processes over the sparse dial plan, with zero lazy dials.
func TestFigClusterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and builds a p=256 mesh")
	}
	const rows, cols = 16, 16
	pt, err := figClusterPoint(rows, cols, figClusterWorkers)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("p=%d across %d workers: setup %.1f ms, bcast %.2f ms, %d inter-worker links, %d lazy dials",
		rows*cols, pt.Procs, pt.SetupMs, pt.BcastMs, pt.InterLinks, pt.LazyDials)
	if pt.Procs < 4 {
		t.Fatalf("broadcast spanned %d worker processes, want >= 4", pt.Procs)
	}
	if pt.InterLinks == 0 {
		t.Fatal("no inter-worker links; the broadcast never crossed a process boundary")
	}
	if pt.LazyDials != 0 {
		t.Fatalf("%d lazy dials over the planned sparse mesh, want 0", pt.LazyDials)
	}
	if pt.BcastMs <= 0 {
		t.Fatalf("non-positive broadcast time %.3f ms", pt.BcastMs)
	}
}
