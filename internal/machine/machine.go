// Package machine assembles the simulated MPPs the experiments run on: a
// physical topology, a logical→physical placement, a network cost
// configuration, and the logical r×c mesh the algorithms see.
//
// Three machine families reproduce the paper's platforms:
//
//   - Paragon (NX): 2-D mesh, identity placement (Paragon applications own
//     a contiguous submesh), NX cost profile;
//   - ParagonMPI: same mesh, MPI cost profile (+4% software overhead, the
//     paper's measured 2–5% loss);
//   - T3D (MPI): 3-D torus with near-cubic dimensions, fixed snake
//     placement (the user cannot control the virtual→physical mapping on
//     the T3D; T3DRandom scatters it fully), MPI cost profile with T3D
//     bandwidth.
//
// HypercubeNX adds a binary hypercube with Paragon costs as an extension
// machine for topology ablations.
package machine

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/topology"
)

// Machine is one simulated platform instance.
type Machine struct {
	// Name identifies the machine in tables ("paragon-nx-10x10").
	Name string
	// Rows, Cols are the logical mesh dimensions the algorithms use.
	Rows, Cols int
	// Topo is the physical interconnect.
	Topo topology.Topology
	// Place maps logical ranks to physical nodes.
	Place *topology.Placement
	// Cfg is the cost model.
	Cfg network.Config
}

// P returns the processor count.
func (m *Machine) P() int { return m.Rows * m.Cols }

// NewNetwork builds a fresh contention network for one run.
func (m *Machine) NewNetwork() (*network.Network, error) {
	return network.New(m.Topo, m.Place, m.Cfg)
}

// Paragon returns an r×c Intel Paragon under the NX library.
func Paragon(rows, cols int) *Machine {
	return paragonWith(rows, cols, network.ParagonNX())
}

// ParagonMPI returns an r×c Intel Paragon under the MPI environment.
func ParagonMPI(rows, cols int) *Machine {
	return paragonWith(rows, cols, network.ParagonMPI())
}

func paragonWith(rows, cols int, cfg network.Config) *Machine {
	topo := topology.MustMesh2D(rows, cols)
	return &Machine{
		Name:  fmt.Sprintf("%s-%dx%d", cfg.Name, rows, cols),
		Rows:  rows,
		Cols:  cols,
		Topo:  topo,
		Place: topology.IdentityPlacement(topo.Nodes()),
		Cfg:   cfg,
	}
}

// T3D returns a p-processor Cray T3D under MPI. The physical torus gets
// near-cubic dimensions; the logical mesh the distributions use is the
// near-square factorization of p. The virtual→physical mapping is the
// system's fixed boustrophedon (snake) assignment: the user cannot control it
// (the paper's reason for skipping topology-tailored algorithms there),
// but it is not a random scatter — which is why the paper still observes
// distribution effects on the T3D (Figures 11–12). T3DRandom provides the
// fully scattered ablation.
func T3D(p int) *Machine {
	x, y, z := TorusDims(p)
	topo := topology.MustTorus3D(x, y, z)
	r, c := topology.NearSquare(p)
	return &Machine{
		Name:  fmt.Sprintf("t3d-mpi-%d", p),
		Rows:  r,
		Cols:  c,
		Topo:  topo,
		Place: topology.Snake3DPlacement(topo),
		Cfg:   network.T3DMPI(),
	}
}

// T3DRandom is the T3D with a seeded fully random virtual→physical
// placement, the worst-case reading of "the mapping cannot be controlled".
func T3DRandom(p int, seed int64) *Machine {
	m := T3D(p)
	m.Name = fmt.Sprintf("t3d-mpi-%d-rand%d", p, seed)
	m.Place = topology.RandomPlacement(p, seed)
	return m
}

// HypercubeNX returns a 2^dim-processor binary hypercube with exactly the
// Paragon's cost parameters — only the wiring differs — so the topology
// ablation isolates the interconnect's contribution (extension machine;
// the paper itself evaluates only the Paragon and the T3D). Br_Lin's
// halving partners are single hops here, the dimension-exchange pattern
// of the hypercube literature the paper cites.
func HypercubeNX(dim int) *Machine {
	topo := topology.MustHypercube(dim)
	cfg := network.ParagonNX()
	cfg.Name = "hcube-nx"
	r, c := topology.NearSquare(topo.Nodes())
	return &Machine{
		Name:  fmt.Sprintf("%s-%d", cfg.Name, topo.Nodes()),
		Rows:  r,
		Cols:  c,
		Topo:  topo,
		Place: topology.IdentityPlacement(topo.Nodes()),
		Cfg:   cfg,
	}
}

// TorusDims factors p into torus dimensions x ≤ y ≤ z minimizing the
// spread z−x (near-cubic, like the T3D's physical configurations). It
// delegates to topology.TorusDims, the canonical decomposition the
// torus-aware schedules share.
func TorusDims(p int) (x, y, z int) { return topology.TorusDims(p) }
