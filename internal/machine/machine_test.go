package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestTorusDims(t *testing.T) {
	cases := []struct{ p, x, y, z int }{
		{1, 1, 1, 1},
		{2, 1, 1, 2},
		{8, 2, 2, 2},
		{16, 2, 2, 4},
		{32, 2, 4, 4},
		{64, 4, 4, 4},
		{128, 4, 4, 8},
		{256, 4, 8, 8},
		{7, 1, 1, 7}, // prime: degenerate ring
	}
	for _, tc := range cases {
		x, y, z := TorusDims(tc.p)
		if x != tc.x || y != tc.y || z != tc.z {
			t.Errorf("TorusDims(%d) = %d×%d×%d, want %d×%d×%d", tc.p, x, y, z, tc.x, tc.y, tc.z)
		}
	}
}

func TestTorusDimsProduct(t *testing.T) {
	f := func(pu uint16) bool {
		p := int(pu)%1024 + 1
		x, y, z := TorusDims(p)
		return x*y*z == p && x <= y && y <= z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParagonMachines(t *testing.T) {
	m := Paragon(10, 12)
	if m.P() != 120 || m.Rows != 10 || m.Cols != 12 {
		t.Fatalf("Paragon dims: %+v", m)
	}
	if m.Topo.Nodes() != 120 {
		t.Fatalf("topology nodes %d", m.Topo.Nodes())
	}
	if m.Cfg.Name != "paragon-nx" {
		t.Fatalf("config %s", m.Cfg.Name)
	}
	mpi := ParagonMPI(10, 12)
	if mpi.Cfg.Name != "paragon-mpi" {
		t.Fatalf("MPI config %s", mpi.Cfg.Name)
	}
	if mpi.Cfg.SendOverhead <= m.Cfg.SendOverhead {
		t.Fatal("MPI overhead not above NX")
	}
	if _, err := m.NewNetwork(); err != nil {
		t.Fatal(err)
	}
}

func TestT3DMachine(t *testing.T) {
	m := T3D(128)
	if m.P() != 128 {
		t.Fatalf("P = %d", m.P())
	}
	if m.Rows != 8 || m.Cols != 16 {
		t.Fatalf("logical mesh %d×%d", m.Rows, m.Cols)
	}
	if m.Topo.Degree() != 6 {
		t.Fatalf("degree %d", m.Topo.Degree())
	}
	if m.Place.Name() != "snake3d" {
		t.Fatalf("placement %s", m.Place.Name())
	}
	if _, err := m.NewNetwork(); err != nil {
		t.Fatal(err)
	}
}

func TestT3DRandomDiffers(t *testing.T) {
	a := T3DRandom(64, 1)
	b := T3D(64)
	diff := false
	for r := 0; r < 64; r++ {
		if a.Place.Node(r) != b.Place.Node(r) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("random placement identical to snake placement")
	}
}

func TestSnakePlacementAdjacency(t *testing.T) {
	// Consecutive ranks under the snake placement must be torus
	// neighbours.
	topo := topology.MustTorus3D(4, 4, 8)
	place := topology.Snake3DPlacement(topo)
	for r := 0; r+1 < topo.Nodes(); r++ {
		if d := topo.Distance(place.Node(r), place.Node(r+1)); d != 1 {
			t.Fatalf("ranks %d,%d at distance %d", r, r+1, d)
		}
	}
}

func TestSnakePlacementBreaksStrideResonance(t *testing.T) {
	// Stride-4 ranks must not collapse onto a single x-plane of the
	// 4×4×8 torus (the artifact that motivated the snake placement).
	topo := topology.MustTorus3D(4, 4, 8)
	place := topology.Snake3DPlacement(topo)
	xs := map[int]bool{}
	for r := 0; r < topo.Nodes(); r += 4 {
		x, _, _ := topo.Coord(place.Node(r))
		xs[x] = true
	}
	if len(xs) < 2 {
		t.Fatalf("stride-4 ranks occupy only x-planes %v", xs)
	}
}
