package plan

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/live"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// TestRoutesCoverTracedLiveLinks is the route-extraction soundness gate:
// for every registry algorithm, the link set Routes extracts from a
// simulated replay must be a superset of the directed links a real
// (live-engine) run of the same instance actually sends over, observed
// through its obs event stream. Checked at p=16 and p=32 on two source
// distributions so both the dense and the straggler-heavy schedules are
// exercised.
func TestRoutesCoverTracedLiveLinks(t *testing.T) {
	meshes := [][2]int{{4, 4}, {4, 8}}
	for _, mesh := range meshes {
		m := machine.Paragon(mesh[0], mesh[1])
		p := mesh[0] * mesh[1]
		for _, d := range []dist.Distribution{dist.Equal(), dist.Cross()} {
			spec := testSpec(t, m, d, p/2)
			for _, alg := range core.Registry() {
				routes, err := Routes(m, alg, spec, 32)
				if err != nil {
					t.Fatalf("%s p=%d %s: %v", alg.Name(), p, d.Name(), err)
				}
				planned := make(map[[2]int]bool, len(routes))
				for _, l := range routes {
					planned[l] = true
				}
				rec := trace.NewRecorder(0)
				payload := make([]byte, 32)
				_, err = live.RunOpts(p, live.Options{Tracer: rec}, func(pr *live.Proc) {
					mine := core.InitialMessage(spec, pr.Rank(), payload)
					alg.Run(pr, spec, mine)
				})
				if err != nil {
					t.Fatalf("%s p=%d %s (live): %v", alg.Name(), p, d.Name(), err)
				}
				for _, e := range rec.Events {
					if e.Kind != obs.KindSend || e.Peer < 0 || e.Peer == e.Rank {
						continue
					}
					if !planned[[2]int{e.Rank, e.Peer}] {
						t.Errorf("%s p=%d %s: run sent %d→%d, not in the %d extracted routes",
							alg.Name(), p, d.Name(), e.Rank, e.Peer, len(routes))
					}
				}
			}
		}
	}
}

// TestRoutesDriveSparseTCPMachine closes the loop at the transport
// layer: a TCP machine built from exactly the extracted routes runs the
// algorithm with zero lazy dials — ConnsOpened does not grow during the
// run, so the plan covered every connection the broadcast needed. Any
// link Routes missed would show up as an on-demand dial here.
func TestRoutesDriveSparseTCPMachine(t *testing.T) {
	m := machine.Paragon(4, 4)
	const p = 16
	spec := testSpec(t, m, dist.Cross(), 8)
	for _, alg := range core.Registry() {
		routes, err := Routes(m, alg, spec, 32)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		tm, err := tcp.NewMachine(p, tcp.Options{Links: routes})
		if err != nil {
			t.Fatalf("%s: machine: %v", alg.Name(), err)
		}
		opened := tm.ConnsOpened()
		payload := make([]byte, 32)
		_, err = tm.Run(tcp.Options{RecvTimeout: 30 * time.Second}, func(pr *tcp.Proc) {
			mine := core.InitialMessage(spec, pr.Rank(), payload)
			alg.Run(pr, spec, mine)
		})
		if err != nil {
			tm.Close()
			t.Fatalf("%s (tcp sparse): %v", alg.Name(), err)
		}
		if after := tm.ConnsOpened(); after != opened {
			t.Errorf("%s: %d lazy dials during the run — extracted routes incomplete",
				alg.Name(), after-opened)
		}
		full := p * (p - 1) / 2
		if tm.PlannedPairs() >= full {
			t.Errorf("%s: %d planned pairs, not sparser than the full mesh (%d)",
				alg.Name(), tm.PlannedPairs(), full)
		}
		tm.Close()
	}
}
