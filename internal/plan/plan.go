package plan

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/par"
)

// Default tier parameters.
const (
	// DefaultTopK is the number of analytic front-runners the empirical
	// tier probes. Sized so that, across the Figure-2 grid on the 10x10
	// Paragon and 256-PE T3D reference machines, an algorithm within 10%
	// of the true best always falls inside the probed prefix.
	DefaultTopK = 6
)

// Options configure a Planner.
type Options struct {
	// TopK is the number of analytic candidates refined with probe
	// simulations. 0 means DefaultTopK; negative disables probing
	// entirely (pure analytic selection).
	TopK int
	// Workers is the probe worker-pool size. 0 means the shared pool
	// limit (par.Limit(), GOMAXPROCS unless overridden by -parallel).
	Workers int
	// Candidates restricts the algorithms considered. Empty means every
	// algorithm registered for the request's collective
	// (core.RegistryFor), in the paper's order.
	Candidates []string
	// Cache, when non-nil, short-circuits planning for instances whose
	// canonical key was decided before.
	Cache *Cache
	// MaxProbeOps bounds each probe simulation's scheduler dispatches;
	// a probe over budget is deterministically disqualified (scored
	// +Inf) rather than measured. 0 means unlimited.
	MaxProbeOps int
}

// Decision is the planner's output for one instance.
type Decision struct {
	// Algorithm is the chosen algorithm's registry name.
	Algorithm string
	// Key is the instance's canonical cache key.
	Key Key
	// Source records which tier decided: "cache", "probe", or
	// "analytic".
	Source string
	// ElapsedMs is the chosen algorithm's probed (or predicted, for
	// analytic-only decisions) time in milliseconds.
	ElapsedMs float64
	// Ranking is the analytic tier's full ranking, fastest predicted
	// first. Empty on a cache hit.
	Ranking []Score
	// Probes holds the empirical tier's measurements, fastest first.
	// Empty on a cache hit or an analytic-only decision.
	Probes []ProbeResult
}

// Request describes one planning instance.
type Request struct {
	// Collective is the pattern being planned. The zero value means
	// Broadcast, so pre-collective requests keep their meaning.
	Collective core.Collective
	// Spec is the validated collective instance (mesh, sources).
	Spec core.Spec
	// MsgLen is the per-source (or, for chunked collectives, per-chunk)
	// message length L in bytes.
	MsgLen int
	// DistName is the paper name of the distribution that produced the
	// sources ("E"), or "" when the ranks were pinned explicitly; it
	// only affects the cache key.
	DistName string
}

// Planner selects broadcasting algorithms. The zero value is not usable;
// construct with New. A Planner is safe for concurrent use.
type Planner struct {
	opts Options
}

// New returns a Planner with the given options.
func New(opts Options) *Planner { return &Planner{opts: opts} }

// Candidates returns the candidate algorithm names the planner considers
// for broadcasts. Use CandidatesFor for another collective.
func (pl *Planner) Candidates() []string {
	return pl.CandidatesFor(core.Broadcast)
}

// CandidatesFor returns the candidate algorithm names the planner
// considers for one collective: the configured restriction when set,
// otherwise every registered algorithm of that collective.
func (pl *Planner) CandidatesFor(coll core.Collective) []string {
	if len(pl.opts.Candidates) > 0 {
		return append([]string(nil), pl.opts.Candidates...)
	}
	reg := core.RegistryFor(coll)
	out := make([]string, len(reg))
	for i, a := range reg {
		out[i] = a.Name()
	}
	return out
}

// Decide chooses an algorithm for the instance. The selection is
// deterministic: identical inputs yield the identical decision, cold or
// warm cache — probe timings come from the deterministic simulator, ties
// break by analytic rank, and cache entries store the exact prior choice.
func (pl *Planner) Decide(ctx context.Context, m *machine.Machine, req Request) (*Decision, error) {
	if err := req.Spec.Validate(m.P()); err != nil {
		return nil, err
	}
	if req.MsgLen < 0 {
		return nil, fmt.Errorf("plan: negative message length %d", req.MsgLen)
	}
	coll := req.Collective
	if coll == "" {
		coll = core.Broadcast
	}
	key := NewKey(m, coll, req.Spec, req.MsgLen, req.DistName)
	if pl.opts.Cache != nil {
		if e, ok := pl.opts.Cache.Get(key); ok {
			if _, err := core.ByNameFor(coll, e.Algorithm); err == nil {
				return &Decision{
					Algorithm: e.Algorithm,
					Key:       key,
					Source:    "cache",
					ElapsedMs: e.ElapsedMs,
				}, nil
			}
			// The cached algorithm no longer exists (stale registry):
			// fall through and re-plan.
		}
	}

	candidates := pl.CandidatesFor(coll)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("plan: no candidate algorithms for %s", coll)
	}
	ranking := Rank(m, req.Spec, req.MsgLen, candidates)
	dec := &Decision{Key: key, Ranking: ranking}

	k := pl.opts.TopK
	switch {
	case k == 0:
		k = DefaultTopK
	case k < 0:
		k = 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	if k == 0 {
		dec.Source = "analytic"
		dec.Algorithm = ranking[0].Algorithm
		dec.ElapsedMs = ranking[0].PredictedMs
	} else {
		names := make([]string, k)
		for i := 0; i < k; i++ {
			names[i] = ranking[i].Algorithm
		}
		workers := pl.opts.Workers
		if workers <= 0 {
			workers = par.Limit()
		}
		probes, err := probeCandidates(ctx, m, req.Spec, req.MsgLen, names, workers, pl.opts.MaxProbeOps)
		if err != nil {
			return nil, err
		}
		// Fastest first; ties keep analytic rank order (stable sort over
		// the deterministic input order).
		sort.SliceStable(probes, func(i, j int) bool { return probes[i].ElapsedMs < probes[j].ElapsedMs })
		if math.IsInf(probes[0].ElapsedMs, 1) {
			return nil, fmt.Errorf("plan: every probe exceeded the operation budget (MaxProbeOps=%d)", pl.opts.MaxProbeOps)
		}
		dec.Source = "probe"
		dec.Algorithm = probes[0].Algorithm
		dec.ElapsedMs = probes[0].ElapsedMs
		dec.Probes = probes
	}

	if pl.opts.Cache != nil {
		if err := pl.opts.Cache.Put(key, Entry{
			Algorithm: dec.Algorithm,
			ElapsedMs: dec.ElapsedMs,
			Source:    dec.Source,
		}); err != nil {
			return nil, err
		}
	}
	return dec, nil
}
