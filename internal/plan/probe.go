package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ProbeResult is one empirical measurement: a candidate's full
// deterministic simulation of the instance.
type ProbeResult struct {
	// Algorithm is the candidate's registry name.
	Algorithm string
	// ElapsedMs is the simulated makespan in milliseconds. +Inf marks a
	// candidate disqualified by the MaxProbeOps budget.
	ElapsedMs float64
}

// probeOne runs one probe simulation on the length-only payload path.
func probeOne(m *machine.Machine, alg core.Algorithm, spec core.Spec, msgLen, maxOps int) (float64, error) {
	nw, err := m.NewNetwork()
	if err != nil {
		return 0, err
	}
	coll := core.CollectiveOf(alg)
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialLenFor(coll, spec, pr.Rank(), msgLen)
		alg.Run(pr, spec, mine)
	}, sim.Options{MaxOps: maxOps})
	if err != nil {
		if errors.Is(err, sim.ErrMaxOps) {
			// Over budget: deterministically disqualified, not an error.
			return math.Inf(1), nil
		}
		return 0, fmt.Errorf("plan: probe %s: %w", alg.Name(), err)
	}
	return res.Elapsed.Milliseconds(), nil
}

// probeCandidates measures the named candidates concurrently on a worker
// pool. The result order follows names (the analytic ranking), so the
// caller's min-with-ties-first selection is deterministic regardless of
// scheduling. A context cancellation abandons unstarted probes and
// returns the context error; running probes finish (the simulator is not
// interruptible mid-run) but their results are discarded.
func probeCandidates(ctx context.Context, m *machine.Machine, spec core.Spec, msgLen int, names []string, workers, maxOps int) ([]ProbeResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	probes := metrics.GetCounter(CounterProbes)
	out := make([]ProbeResult, len(names))
	errs := make([]error, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				name := names[i]
				alg, err := core.ByName(name)
				if err != nil {
					errs[i] = err
					continue
				}
				probes.Inc()
				ms, err := probeOne(m, alg, spec, msgLen, maxOps)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = ProbeResult{Algorithm: name, ElapsedMs: ms}
			}
		}()
	}
	var ctxErr error
feed:
	for i := range names {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		return nil, fmt.Errorf("plan: probing cancelled: %w", ctxErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
