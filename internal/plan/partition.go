package plan

import "fmt"

// Cluster partitioning: the coordinator splits a route plan's directed
// link set by worker so each worker process dials only the connections
// its rank range touches. Intra-worker links stay in one process (the
// worker's own partial mesh collapses them onto in-process sockets);
// inter-worker links cross the wire and appear in both endpoints' link
// sets — the higher rank's worker dials, the lower rank's accepts.

// WorkerRanges splits p ranks into n contiguous near-equal ranges
// [lo,hi), the first p%n ranges one rank larger. It is the canonical
// rank→worker assignment: contiguous ranges keep a schedule's
// neighbor-heavy traffic (rows of the mesh) inside one process.
func WorkerRanges(p, n int) ([][2]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("plan: non-positive worker count %d", n)
	}
	if p < n {
		return nil, fmt.Errorf("plan: %d workers for %d ranks (at least one rank per worker)", n, p)
	}
	ranges := make([][2]int, n)
	base, extra := p/n, p%n
	lo := 0
	for w := 0; w < n; w++ {
		hi := lo + base
		if w < extra {
			hi++
		}
		ranges[w] = [2]int{lo, hi}
		lo = hi
	}
	return ranges, nil
}

// Partition splits a directed link set by a contiguous rank partition:
// intra[w] holds the links with both endpoints inside ranges[w], inter
// holds every link crossing a worker boundary. Worker w's connection
// plan is intra[w] plus the inter links touching its range (see
// WorkerLinks); the inter list is also the coordinator's measure of how
// much of the schedule crosses the wire. Links are passed through in
// input order; self links are dropped (they never touch a socket).
func Partition(links [][2]int, ranges [][2]int) (intra [][][2]int, inter [][2]int, err error) {
	if len(ranges) == 0 {
		return nil, nil, fmt.Errorf("plan: empty worker partition")
	}
	p := ranges[len(ranges)-1][1]
	owner := make([]int, p)
	lo := 0
	for w, r := range ranges {
		if r[0] != lo || r[1] <= r[0] {
			return nil, nil, fmt.Errorf("plan: worker %d range [%d,%d) does not continue the partition at %d", w, r[0], r[1], lo)
		}
		for i := r[0]; i < r[1]; i++ {
			owner[i] = w
		}
		lo = r[1]
	}
	intra = make([][][2]int, len(ranges))
	for _, l := range links {
		a, b := l[0], l[1]
		if a < 0 || a >= p || b < 0 || b >= p {
			return nil, nil, fmt.Errorf("plan: link %d→%d outside partition of %d ranks", a, b, p)
		}
		if a == b {
			continue
		}
		if owner[a] == owner[b] {
			intra[owner[a]] = append(intra[owner[a]], l)
		} else {
			inter = append(inter, l)
		}
	}
	return intra, inter, nil
}

// WorkerLinks assembles worker w's connection plan from a Partition
// result: its intra-worker links plus every inter-worker link touching
// its range. Handing exactly this set to the worker's partial mesh
// (tcp Options.Links) makes planned setup cover every link the schedule
// uses — the zero-lazy-dials contract of a cluster run.
func WorkerLinks(intra [][][2]int, inter [][2]int, ranges [][2]int, w int) [][2]int {
	r := ranges[w]
	links := make([][2]int, 0, len(intra[w])+len(inter)/len(ranges))
	links = append(links, intra[w]...)
	for _, l := range inter {
		if (l[0] >= r[0] && l[0] < r[1]) || (l[1] >= r[0] && l[1] < r[1]) {
			links = append(links, l)
		}
	}
	return links
}
