// Package plan chooses an s-to-p broadcasting algorithm for a given
// machine and broadcast instance — the paper's central finding is that the
// best algorithm depends jointly on the platform, the source distribution,
// the source count s and the message length L, so hard-coding one is wrong
// on some axis almost everywhere.
//
// The planner has three tiers:
//
//  1. an analytic tier that scores every registered algorithm with a
//     closed-form or replay-based time estimate built from the machine's
//     calibrated cost parameters (internal/network), the halving-pattern
//     replay behind core.GrowthEfficiency, and the distance-to-ideal
//     signals of the dist.Ideal* generators;
//  2. an empirical tier that refines the top-k analytic candidates with
//     full deterministic probe simulations, run concurrently on a worker
//     pool and cancellable through a context;
//  3. a persistent plan cache keyed by the canonical
//     (machine, mesh, s, L bucket, distribution signature) key, stored as
//     versioned JSON with deterministic FIFO eviction. Cache hits skip
//     both tiers entirely; hit/miss/probe counts are surfaced through
//     internal/metrics counters.
//
// Selection is deterministic: the probes are deterministic simulations,
// ties break by candidate order, and a warm cache returns the identical
// algorithm the cold path chose.
package plan

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
)

// KeyVersion is the canonical key format version. Bump it when the key
// layout or the meaning of a field changes; the cache discards entries
// whose version differs. Version 2 added the collective field.
const KeyVersion = 2

// Key canonically identifies one planning instance. Two instances with
// the same Key are close enough that the same algorithm choice applies:
// the message length is bucketed by powers of two and the distribution is
// reduced to a signature (its paper name, or a hash of the explicit
// ranks).
type Key struct {
	// Version is the key format version (KeyVersion).
	Version int
	// Machine is the machine's full name ("paragon-nx-10x10"), which
	// encodes platform, library, and physical configuration.
	Machine string
	// Rows, Cols are the logical mesh dimensions.
	Rows, Cols int
	// Coll is the collective's canonical name ("Broadcast", "AllToAll",
	// ...): different collectives have disjoint algorithm sets, so they
	// never share a plan.
	Coll string
	// S is the source count.
	S int
	// LBucket is the power-of-two bucket of the message length:
	// bits.Len(L), so L=4096 falls in bucket 13 and all L in
	// [2^(b-1), 2^b-1] share bucket b. L=0 is bucket 0.
	LBucket int
	// Dist is the distribution signature: "d:<name>" for a named paper
	// distribution, "h:<16 hex digits>" (FNV-64a over the sorted ranks)
	// for an explicit source set.
	Dist string
}

// LBucketOf returns the power-of-two bucket of a message length.
func LBucketOf(l int) int {
	if l < 0 {
		l = 0
	}
	return bits.Len(uint(l))
}

// DistSignature reduces a source distribution to the key's signature
// form: the paper name when one is known, otherwise a hash of the sorted
// explicit ranks.
func DistSignature(distName string, sources []int) string {
	if distName != "" {
		return "d:" + distName
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, src := range sources {
		v := uint64(src)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("h:%016x", h.Sum64())
}

// NewKey builds the canonical key for one planning instance. distName is
// the paper name of the distribution that produced the sources, or ""
// when the ranks were pinned explicitly.
func NewKey(m *machine.Machine, coll core.Collective, spec core.Spec, msgLen int, distName string) Key {
	return Key{
		Version: KeyVersion,
		Machine: m.Name,
		Rows:    spec.Rows,
		Cols:    spec.Cols,
		Coll:    string(coll),
		S:       spec.S(),
		LBucket: LBucketOf(msgLen),
		Dist:    DistSignature(distName, spec.Sources),
	}
}

// String renders the canonical encoding, the form the cache stores. The
// encoding is injective for keys whose Machine and Dist fields contain no
// '|' (NewKey never produces one; ParseKey rejects them).
func (k Key) String() string {
	return fmt.Sprintf("plan%d|m=%s|g=%dx%d|c=%s|s=%d|lb=%d|d=%s",
		k.Version, k.Machine, k.Rows, k.Cols, k.Coll, k.S, k.LBucket, k.Dist)
}

// ParseKey decodes a canonical key encoding. It is strict: every field
// must be present, in order, and re-encoding the result reproduces the
// input byte for byte.
func ParseKey(s string) (Key, error) {
	fields := strings.Split(s, "|")
	if len(fields) != 7 {
		return Key{}, fmt.Errorf("plan: key %q: want 7 fields, have %d", s, len(fields))
	}
	var k Key
	if !strings.HasPrefix(fields[0], "plan") {
		return Key{}, fmt.Errorf("plan: key %q: missing plan prefix", s)
	}
	v, err := strconv.Atoi(fields[0][len("plan"):])
	if err != nil {
		return Key{}, fmt.Errorf("plan: key %q: bad version: %v", s, err)
	}
	k.Version = v
	get := func(i int, prefix string) (string, error) {
		if !strings.HasPrefix(fields[i], prefix) {
			return "", fmt.Errorf("plan: key %q: field %d: want prefix %q", s, i, prefix)
		}
		return fields[i][len(prefix):], nil
	}
	if k.Machine, err = get(1, "m="); err != nil {
		return Key{}, err
	}
	if k.Machine == "" {
		return Key{}, fmt.Errorf("plan: key %q: empty machine", s)
	}
	mesh, err := get(2, "g=")
	if err != nil {
		return Key{}, err
	}
	if _, err := fmt.Sscanf(mesh, "%dx%d", &k.Rows, &k.Cols); err != nil {
		return Key{}, fmt.Errorf("plan: key %q: bad mesh %q: %v", s, mesh, err)
	}
	if mesh != fmt.Sprintf("%dx%d", k.Rows, k.Cols) {
		return Key{}, fmt.Errorf("plan: key %q: non-canonical mesh %q", s, mesh)
	}
	if k.Coll, err = get(3, "c="); err != nil {
		return Key{}, err
	}
	sv, err := get(4, "s=")
	if err != nil {
		return Key{}, err
	}
	if k.S, err = strconv.Atoi(sv); err != nil {
		return Key{}, fmt.Errorf("plan: key %q: bad source count: %v", s, err)
	}
	lb, err := get(5, "lb=")
	if err != nil {
		return Key{}, err
	}
	if k.LBucket, err = strconv.Atoi(lb); err != nil {
		return Key{}, fmt.Errorf("plan: key %q: bad L bucket: %v", s, err)
	}
	if k.Dist, err = get(6, "d="); err != nil {
		return Key{}, err
	}
	if err := k.validate(); err != nil {
		return Key{}, err
	}
	if k.String() != s {
		return Key{}, fmt.Errorf("plan: key %q: non-canonical encoding", s)
	}
	return k, nil
}

// validate enforces the canonical-form invariants String relies on.
func (k Key) validate() error {
	if k.Version < 0 {
		return fmt.Errorf("plan: key: negative version %d", k.Version)
	}
	printable := func(s string) bool {
		for _, r := range s {
			if r <= ' ' || r == '|' || r == 0x7f {
				return false
			}
		}
		return true
	}
	if !printable(k.Machine) || !printable(k.Dist) {
		return fmt.Errorf("plan: key: field contains separator, space, or control character")
	}
	if k.Rows <= 0 || k.Cols <= 0 || k.S < 0 || k.LBucket < 0 {
		return fmt.Errorf("plan: key: negative or degenerate field")
	}
	if coll, err := core.ParseCollective(k.Coll); err != nil || string(coll) != k.Coll {
		return fmt.Errorf("plan: key: non-canonical collective %q", k.Coll)
	}
	if !strings.HasPrefix(k.Dist, "d:") && !strings.HasPrefix(k.Dist, "h:") {
		return fmt.Errorf("plan: key: distribution signature %q lacks d:/h: prefix", k.Dist)
	}
	return nil
}
