package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// CacheVersion is the on-disk cache format version. A file with a
// different version is discarded on open (the plans it holds were chosen
// under different rules).
const CacheVersion = 1

// DefaultMaxEntries bounds the cache when the caller does not.
const DefaultMaxEntries = 4096

// Counter names surfaced through internal/metrics.
const (
	CounterCacheHits   = "plan.cache.hits"
	CounterCacheMisses = "plan.cache.misses"
	CounterProbes      = "plan.probe.runs"
)

// Entry is one cached plan: the chosen algorithm and how it was chosen.
type Entry struct {
	// Algorithm is the chosen algorithm's registry name.
	Algorithm string `json:"algorithm"`
	// ElapsedMs is the chosen algorithm's probed (or, with probing
	// disabled, predicted) time in milliseconds.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Source records which tier produced the choice: "probe" or
	// "analytic".
	Source string `json:"source"`
	// Seq is the entry's insertion sequence number; eviction removes the
	// lowest sequence first (deterministic FIFO).
	Seq int64 `json:"seq"`
}

// cacheFile is the JSON layout on disk.
type cacheFile struct {
	Version int              `json:"version"`
	Seq     int64            `json:"seq"`
	Entries map[string]Entry `json:"entries"`
}

// Cache is the plan cache: an in-memory map of canonical key → Entry,
// optionally mirrored to a JSON file. All methods are safe for concurrent
// use. Get and Put account hits and misses on the process-wide
// plan.cache.* counters.
type Cache struct {
	mu   sync.Mutex
	path string // "" = memory only
	max  int
	file cacheFile

	hits, misses *metrics.Counter
}

func newCache(path string, maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		path:   path,
		max:    maxEntries,
		file:   cacheFile{Version: CacheVersion, Entries: make(map[string]Entry)},
		hits:   metrics.GetCounter(CounterCacheHits),
		misses: metrics.GetCounter(CounterCacheMisses),
	}
}

// NewMemCache returns a memory-only cache holding at most maxEntries
// plans (0 uses DefaultMaxEntries).
func NewMemCache(maxEntries int) *Cache { return newCache("", maxEntries) }

// OpenCache loads (or initializes) a persistent cache at path. A missing
// file yields an empty cache; a file with a different version is
// discarded. Put persists immediately, so callers need not Save unless
// they mutated nothing.
func OpenCache(path string, maxEntries int) (*Cache, error) {
	c := newCache(path, maxEntries)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("plan: open cache: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("plan: cache %s: %w", path, err)
	}
	if f.Version != CacheVersion {
		// Stale format: start over rather than trust old plans.
		return c, nil
	}
	if f.Entries == nil {
		f.Entries = make(map[string]Entry)
	}
	// Validate keys; a corrupt entry invalidates only itself.
	for ks := range f.Entries {
		if _, err := ParseKey(ks); err != nil {
			delete(f.Entries, ks)
		}
	}
	c.file = f
	return c, nil
}

// Path returns the backing file path ("" for memory-only caches).
func (c *Cache) Path() string { return c.path }

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.file.Entries)
}

// Get returns the cached entry for a key and whether it was present,
// incrementing the hit or miss counter.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.file.Entries[k.String()]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return e, ok
}

// Put stores a plan, assigning its sequence number, evicting the oldest
// entries beyond the capacity, and persisting when the cache is backed by
// a file.
func (c *Cache) Put(k Key, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Seq++
	e.Seq = c.file.Seq
	c.file.Entries[k.String()] = e
	c.evictLocked()
	if c.path == "" {
		return nil
	}
	return c.saveLocked()
}

// evictLocked removes lowest-sequence entries until the cache fits. FIFO
// by insertion sequence is deterministic: replaying the same Put sequence
// leaves the same survivors.
func (c *Cache) evictLocked() {
	for len(c.file.Entries) > c.max {
		oldestKey := ""
		oldestSeq := int64(0)
		for ks, e := range c.file.Entries {
			if oldestKey == "" || e.Seq < oldestSeq || (e.Seq == oldestSeq && ks < oldestKey) {
				oldestKey, oldestSeq = ks, e.Seq
			}
		}
		delete(c.file.Entries, oldestKey)
	}
}

// Save writes the cache to its backing file (no-op for memory-only
// caches). The write is atomic: temp file in the same directory, then
// rename.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path == "" {
		return nil
	}
	return c.saveLocked()
}

func (c *Cache) saveLocked() error {
	raw, err := json.MarshalIndent(c.file, "", "  ")
	if err != nil {
		return fmt.Errorf("plan: encode cache: %w", err)
	}
	dir := filepath.Dir(c.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("plan: cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".plancache-*")
	if err != nil {
		return fmt.Errorf("plan: cache temp: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: write cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: close cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: install cache: %w", err)
	}
	return nil
}

// CachedPlan pairs a canonical key encoding with its cached entry.
type CachedPlan struct {
	Key   string
	Entry Entry
}

// Snapshot returns the cached plans sorted by canonical key, for
// inspection tools.
func (c *Cache) Snapshot() []CachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedPlan, 0, len(c.file.Entries))
	for ks, e := range c.file.Entries {
		out = append(out, CachedPlan{Key: ks, Entry: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
