package plan

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// routeMaxOps bounds the route-extraction replay. Extraction runs the
// algorithm once on the simulator, so the budget only guards against a
// runaway user-registered algorithm; the registry suite stays far under
// it even at p in the hundreds.
const routeMaxOps = 50_000_000

// linkCollector is a sim tracer that records the directed (src, dst)
// pairs the traced run sent messages over. Simulator tracers run inline
// under the scheduler token, so no locking is needed.
type linkCollector struct {
	links   map[[2]int]struct{}
	barrier bool
}

func (lc *linkCollector) Trace(e obs.Event) {
	switch e.Kind {
	case obs.KindSend:
		if e.Peer >= 0 && e.Peer != e.Rank {
			lc.links[[2]int{e.Rank, e.Peer}] = struct{}{}
		}
	case obs.KindBarrier:
		lc.barrier = true
	}
}

// Routes extracts the directed logical link set the algorithm uses on
// this instance by replaying it once on the deterministic simulator
// with a link-collecting tracer. Because every engine drives the same
// algorithm code over the same spec, the simulated schedule's links are
// exactly the links a live or TCP run will traverse — which makes the
// result a valid sparse connection plan (tcp Options.Links, or
// stpbcast.SessionOptions.Links via RoutesFor).
//
// If the traced run used Barrier, the extracted set additionally
// includes the real-byte engines' dissemination-barrier links — rank i
// sends to (i+2^j) mod p each round — which the simulator prices as a
// single closed-form charge and therefore does not emit as sends.
//
// The returned pairs are deduplicated and sorted. They are directed;
// the TCP engine collapses each unordered pair onto one shared
// connection, so the connection count of the plan is at most the pair
// count here.
func Routes(m *machine.Machine, alg core.Algorithm, spec core.Spec, msgLen int) ([][2]int, error) {
	nw, err := m.NewNetwork()
	if err != nil {
		return nil, err
	}
	lc := &linkCollector{links: make(map[[2]int]struct{})}
	coll := core.CollectiveOf(alg)
	_, err = sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialLenFor(coll, spec, pr.Rank(), msgLen)
		alg.Run(pr, spec, mine)
	}, sim.Options{Tracer: lc, MaxOps: routeMaxOps})
	if err != nil {
		return nil, fmt.Errorf("plan: route extraction for %s: %w", alg.Name(), err)
	}
	if lc.barrier {
		p := spec.P()
		for k := 1; k < p; k <<= 1 {
			for i := 0; i < p; i++ {
				lc.links[[2]int{i, (i + k) % p}] = struct{}{}
			}
		}
	}
	out := make([][2]int, 0, len(lc.links))
	for l := range lc.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, nil
}
