package plan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
)

func TestWorkerRanges(t *testing.T) {
	ranges, err := WorkerRanges(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	if len(ranges) != len(want) {
		t.Fatalf("got %v, want %v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("got %v, want %v", ranges, want)
		}
	}
	if _, err := WorkerRanges(3, 4); err == nil {
		t.Fatal("WorkerRanges(3, 4) accepted more workers than ranks")
	}
	if _, err := WorkerRanges(8, 0); err == nil {
		t.Fatal("WorkerRanges(8, 0) accepted zero workers")
	}
}

func TestPartitionSplitsByOwner(t *testing.T) {
	ranges := [][2]int{{0, 2}, {2, 4}}
	links := [][2]int{{0, 1}, {1, 0}, {2, 3}, {1, 2}, {3, 0}, {2, 2}}
	intra, inter, err := Partition(links, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(intra[0]) != 2 || len(intra[1]) != 1 {
		t.Fatalf("intra = %v, want worker0 {0→1,1→0}, worker1 {2→3}", intra)
	}
	if len(inter) != 2 {
		t.Fatalf("inter = %v, want {1→2, 3→0}", inter)
	}
	// Self link 2→2 must be dropped.
	total := len(intra[0]) + len(intra[1]) + len(inter)
	if total != len(links)-1 {
		t.Fatalf("partition kept %d links, want %d", total, len(links)-1)
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	if _, _, err := Partition([][2]int{{0, 5}}, [][2]int{{0, 2}, {2, 4}}); err == nil {
		t.Fatal("Partition accepted a link outside the partition")
	}
	if _, _, err := Partition(nil, [][2]int{{0, 2}, {3, 4}}); err == nil {
		t.Fatal("Partition accepted a non-contiguous partition")
	}
	if _, _, err := Partition(nil, nil); err == nil {
		t.Fatal("Partition accepted an empty partition")
	}
}

// TestWorkerLinksCoverRoutes is the partitioning contract end to end: a
// real route plan, split across workers and reassembled per worker,
// covers every planned link exactly — intra links on one worker, inter
// links on both endpoints' workers.
func TestWorkerLinksCoverRoutes(t *testing.T) {
	m := machine.Paragon(4, 8)
	spec := testSpec(t, m, dist.Equal(), 4)
	links, err := Routes(m, core.BrLin(), spec, 512)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := WorkerRanges(spec.P(), 4)
	if err != nil {
		t.Fatal(err)
	}
	intra, inter, err := Partition(links, ranges)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[[2]int]int, len(links))
	for w := range ranges {
		for _, l := range WorkerLinks(intra, inter, ranges, w) {
			counts[l]++
		}
	}
	for _, l := range links {
		if l[0] == l[1] {
			continue
		}
		want := 1
		if ownerOf(ranges, l[0]) != ownerOf(ranges, l[1]) {
			want = 2
		}
		if counts[l] != want {
			t.Fatalf("link %v appears on %d workers, want %d", l, counts[l], want)
		}
		delete(counts, l)
	}
	if len(counts) != 0 {
		t.Fatalf("workers were assigned links outside the plan: %v", counts)
	}
}

func ownerOf(ranges [][2]int, r int) int {
	for w, rg := range ranges {
		if r >= rg[0] && r < rg[1] {
			return w
		}
	}
	return -1
}
