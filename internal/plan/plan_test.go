package plan

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func testSpec(t testing.TB, m *machine.Machine, d dist.Distribution, s int) core.Spec {
	t.Helper()
	sources, err := d.Sources(m.Rows, m.Cols, s)
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: sources, Indexing: topology.SnakeRowMajor}
}

func TestKeyRoundTrip(t *testing.T) {
	m := machine.Paragon(10, 10)
	spec := testSpec(t, m, dist.Equal(), 30)
	for _, distName := range []string{"E", ""} {
		k := NewKey(m, core.Broadcast, spec, 4096, distName)
		enc := k.String()
		back, err := ParseKey(enc)
		if err != nil {
			t.Fatalf("%q: %v", enc, err)
		}
		if back != k {
			t.Fatalf("round trip %q: %#v != %#v", enc, back, k)
		}
		if back.String() != enc {
			t.Fatalf("re-encode %q != %q", back.String(), enc)
		}
	}
}

func TestKeyBucketsAndSignatures(t *testing.T) {
	m := machine.Paragon(10, 10)
	spec := testSpec(t, m, dist.Equal(), 30)
	// Same power-of-two bucket: one key.
	if NewKey(m, core.Broadcast, spec, 4096, "E") != NewKey(m, core.Broadcast, spec, 8191, "E") {
		t.Error("L=4096 and L=8191 should share bucket 13")
	}
	// Bucket boundary: different keys.
	if NewKey(m, core.Broadcast, spec, 4096, "E") == NewKey(m, core.Broadcast, spec, 4095, "E") {
		t.Error("L=4096 and L=4095 should differ")
	}
	// Named distribution vs explicit ranks: different signatures.
	if NewKey(m, core.Broadcast, spec, 4096, "E").Dist == NewKey(m, core.Broadcast, spec, 4096, "").Dist {
		t.Error("named and hashed signatures collide")
	}
	// Different explicit rank sets: different hashes.
	other := testSpec(t, m, dist.Cross(), 30)
	if NewKey(m, core.Broadcast, spec, 4096, "").Dist == NewKey(m, core.Broadcast, other, 4096, "").Dist {
		t.Error("distinct rank sets hash equal")
	}
}

func TestParseKeyRejects(t *testing.T) {
	bad := []string{
		"",
		"plan1|m=x|g=2x2|s=1|lb=3",             // missing field
		"nope1|m=x|g=2x2|s=1|lb=3|d=d:E",       // wrong prefix
		"plan1|m=|g=2x2|s=1|lb=3|d=d:E",        // empty machine
		"plan1|m=x|g=2y2|s=1|lb=3|d=d:E",       // bad mesh
		"plan1|m=x|g=02x2|s=1|lb=3|d=d:E",      // non-canonical mesh
		"plan1|m=x|g=2x2|s=+1|lb=3|d=d:E",      // non-canonical int
		"plan1|m=x|g=2x2|s=1|lb=3|d=E",         // missing d:/h: prefix
		"plan1|m=x|g=0x2|s=1|lb=3|d=d:E",       // degenerate mesh
		"plan1|m=x|g=2x2|s=1|lb=3|d=d:E|extra", // trailing field
		"plan1|x=x|g=2x2|s=1|lb=3|d=d:E",       // wrong field tag
		"plan-1|m=x|g=2x2|s=1|lb=3|d=d:E",      // negative version
		"plan1|m=x|g=2x2|s=1|lb=three|d=d:E",   // non-numeric bucket
		"plan1|m=x|g=2x2|s=1|lb=3|d=d:E\n",     // trailing garbage
		"plan1|m=x|g=2x2|s=01|lb=3|d=d:E",      // non-canonical s
	}
	for _, s := range bad {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted", s)
		}
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewMemCache(0)
	m := machine.Paragon(4, 4)
	spec := testSpec(t, m, dist.Equal(), 4)
	k := NewKey(m, core.Broadcast, spec, 1024, "E")
	hits := metrics.GetCounter(CounterCacheHits)
	misses := metrics.GetCounter(CounterCacheMisses)
	h0, m0 := hits.Value(), misses.Value()
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	if err := c.Put(k, Entry{Algorithm: "Br_Lin", ElapsedMs: 1.5, Source: "probe"}); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(k)
	if !ok || e.Algorithm != "Br_Lin" {
		t.Fatalf("get after put: %v %v", e, ok)
	}
	if hits.Value()-h0 != 1 || misses.Value()-m0 != 1 {
		t.Fatalf("counters hits+%d misses+%d, want +1/+1", hits.Value()-h0, misses.Value()-m0)
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	c := NewMemCache(3)
	m := machine.Paragon(4, 4)
	spec := testSpec(t, m, dist.Equal(), 4)
	var keys []Key
	for i := 0; i < 5; i++ {
		k := NewKey(m, core.Broadcast, spec, 1<<uint(i+4), "E") // distinct L buckets
		keys = append(keys, k)
		if err := c.Put(k, Entry{Algorithm: "Br_Lin", Source: "probe"}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	for i, k := range keys {
		_, ok := c.Get(k)
		if want := i >= 2; ok != want {
			t.Errorf("key %d present=%v, want %v (FIFO should evict the two oldest)", i, ok, want)
		}
	}
}

func TestCachePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "plans.json")
	c, err := OpenCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.T3D(64)
	spec := testSpec(t, m, dist.Row(), 8)
	k := NewKey(m, core.Broadcast, spec, 2048, "R")
	if err := c.Put(k, Entry{Algorithm: "PersAlltoAll", ElapsedMs: 2.25, Source: "probe"}); err != nil {
		t.Fatal(err)
	}
	// Reopen: the entry survives.
	c2, err := OpenCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get(k)
	if !ok || e.Algorithm != "PersAlltoAll" || e.ElapsedMs != 2.25 {
		t.Fatalf("reopened entry %v %v", e, ok)
	}
	// A version bump discards the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(raw), fmt.Sprintf("\"version\": %d", CacheVersion), "\"version\": 999", 1)
	if bumped == string(raw) {
		t.Fatal("version field not found in cache file")
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Len() != 0 {
		t.Fatalf("stale-version cache kept %d entries", c3.Len())
	}
	// A corrupt key invalidates only itself.
	corrupt := strings.Replace(string(raw), k.String(), "not-a-key", 1)
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	c4, err := OpenCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Len() != 0 {
		t.Fatalf("corrupt-key cache kept %d entries", c4.Len())
	}
}

func TestRankCoversAllCandidates(t *testing.T) {
	m := machine.Paragon(8, 8)
	spec := testSpec(t, m, dist.Square(), 16)
	var names []string
	for _, a := range core.Registry() {
		names = append(names, a.Name())
	}
	ranking := Rank(m, spec, 4096, names)
	if len(ranking) != len(names) {
		t.Fatalf("%d scores for %d candidates", len(ranking), len(names))
	}
	seen := map[string]bool{}
	for i, sc := range ranking {
		if seen[sc.Algorithm] {
			t.Fatalf("duplicate %s", sc.Algorithm)
		}
		seen[sc.Algorithm] = true
		if sc.PredictedMs <= 0 || math.IsNaN(sc.PredictedMs) {
			t.Fatalf("%s predicted %v", sc.Algorithm, sc.PredictedMs)
		}
		if i > 0 && ranking[i].PredictedMs < ranking[i-1].PredictedMs {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestDecideDeterministic(t *testing.T) {
	m := machine.Paragon(10, 10)
	spec := testSpec(t, m, dist.Cross(), 20)
	req := Request{Spec: spec, MsgLen: 4096, DistName: "Cr"}
	// Two independent cold planners (fresh caches) must agree exactly.
	var decs []*Decision
	for i := 0; i < 2; i++ {
		p := New(Options{Cache: NewMemCache(0), Workers: 1 + i*3})
		d, err := p.Decide(context.Background(), m, req)
		if err != nil {
			t.Fatal(err)
		}
		decs = append(decs, d)
	}
	if decs[0].Algorithm != decs[1].Algorithm || decs[0].ElapsedMs != decs[1].ElapsedMs {
		t.Fatalf("cold decisions differ: %+v vs %+v", decs[0], decs[1])
	}
	if !reflect.DeepEqual(decs[0].Probes, decs[1].Probes) {
		t.Fatalf("probe sets differ: %v vs %v", decs[0].Probes, decs[1].Probes)
	}
	if decs[0].Source != "probe" {
		t.Fatalf("cold decision source %q", decs[0].Source)
	}
}

func TestDecideWarmCacheSkipsProbes(t *testing.T) {
	m := machine.T3D(64)
	spec := testSpec(t, m, dist.Equal(), 16)
	req := Request{Spec: spec, MsgLen: 2048, DistName: "E"}
	p := New(Options{Cache: NewMemCache(0)})
	probes := metrics.GetCounter(CounterProbes)
	hits := metrics.GetCounter(CounterCacheHits)

	cold, err := p.Decide(context.Background(), m, req)
	if err != nil {
		t.Fatal(err)
	}
	p0, h0 := probes.Value(), hits.Value()
	warm, err := p.Decide(context.Background(), m, req)
	if err != nil {
		t.Fatal(err)
	}
	if probes.Value() != p0 {
		t.Fatalf("warm decide ran %d probes, want 0", probes.Value()-p0)
	}
	if hits.Value() != h0+1 {
		t.Fatalf("warm decide recorded %d hits, want 1", hits.Value()-h0)
	}
	if warm.Source != "cache" || warm.Algorithm != cold.Algorithm || warm.ElapsedMs != cold.ElapsedMs {
		t.Fatalf("warm decision %+v does not reproduce cold %+v", warm, cold)
	}
}

func TestDecideAnalyticOnly(t *testing.T) {
	m := machine.Paragon(6, 6)
	spec := testSpec(t, m, dist.Band(), 6)
	p := New(Options{TopK: -1})
	probes := metrics.GetCounter(CounterProbes)
	p0 := probes.Value()
	d, err := p.Decide(context.Background(), m, Request{Spec: spec, MsgLen: 1024, DistName: "B"})
	if err != nil {
		t.Fatal(err)
	}
	if probes.Value() != p0 {
		t.Fatal("analytic-only decision ran probes")
	}
	if d.Source != "analytic" || d.Algorithm != d.Ranking[0].Algorithm {
		t.Fatalf("analytic decision %+v", d)
	}
}

func TestDecideCancelled(t *testing.T) {
	m := machine.Paragon(10, 10)
	spec := testSpec(t, m, dist.Equal(), 30)
	p := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Decide(ctx, m, Request{Spec: spec, MsgLen: 4096, DistName: "E"}); err == nil {
		t.Fatal("cancelled decide succeeded")
	}
}

func TestDecideProbeBudget(t *testing.T) {
	m := machine.Paragon(6, 6)
	spec := testSpec(t, m, dist.Equal(), 9)
	// A budget of 1 operation disqualifies every probe.
	p := New(Options{MaxProbeOps: 1})
	_, err := p.Decide(context.Background(), m, Request{Spec: spec, MsgLen: 1024, DistName: "E"})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget-exhausted error, got %v", err)
	}
}

func TestDecideRejectsInvalidSpec(t *testing.T) {
	m := machine.Paragon(4, 4)
	bad := core.Spec{Rows: 4, Cols: 4, Sources: []int{99}, Indexing: topology.SnakeRowMajor}
	p := New(Options{})
	if _, err := p.Decide(context.Background(), m, Request{Spec: bad, MsgLen: 64}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	spec := testSpec(t, m, dist.Equal(), 4)
	if _, err := p.Decide(context.Background(), m, Request{Spec: spec, MsgLen: -1}); err == nil {
		t.Fatal("negative length accepted")
	}
}
