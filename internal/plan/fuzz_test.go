package plan

import (
	"strings"
	"testing"
)

// FuzzKeyRoundTrip checks the canonicalization contract from both sides:
// every string ParseKey accepts re-encodes to itself byte for byte, and
// every structurally distinct accepted key keeps a distinct encoding
// (decode is injective on the accepted set).
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add("plan2|m=paragon-nx-10x10|g=10x10|c=Broadcast|s=30|lb=13|d=d:E")
	f.Add("plan2|m=t3d-mpi-256|g=16x16|c=AllToAll|s=64|lb=15|d=h:0123456789abcdef")
	f.Add("plan2|m=x|g=1x1|c=AllReduce|s=0|lb=0|d=d:R")
	f.Add("plan2|m=x|g=2x2|c=Scatter|s=+1|lb=3|d=d:E")
	f.Add("plan2|m=x|g=02x2|c=AllGather|s=1|lb=3|d=d:E")
	f.Add("plan2|m=a|b|g=2x2|c=Reduce|s=1|lb=3|d=d:E")
	f.Add("plan2|m=x|g=2x2|c=gossip|s=1|lb=3|d=d:E")
	f.Add("plan2|m=x|g=2x2|c=broadcast|s=1|lb=3|d=d:E")
	f.Add("plan1|m=paragon-nx-10x10|g=10x10|s=30|lb=13|d=d:E")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKey(s)
		if err != nil {
			return // rejected inputs are out of contract
		}
		enc := k.String()
		if enc != s {
			t.Fatalf("accepted key %q re-encodes to %q", s, enc)
		}
		back, err := ParseKey(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if back != k {
			t.Fatalf("decode not stable: %#v vs %#v", back, k)
		}
		// Distinct keys cannot collide: perturb each field and check the
		// encoding changes.
		for _, mut := range []Key{
			{k.Version + 1, k.Machine, k.Rows, k.Cols, k.Coll, k.S, k.LBucket, k.Dist},
			{k.Version, k.Machine + "z", k.Rows, k.Cols, k.Coll, k.S, k.LBucket, k.Dist},
			{k.Version, k.Machine, k.Rows + 1, k.Cols, k.Coll, k.S, k.LBucket, k.Dist},
			{k.Version, k.Machine, k.Rows, k.Cols + 1, k.Coll, k.S, k.LBucket, k.Dist},
			{k.Version, k.Machine, k.Rows, k.Cols, k.Coll + "z", k.S, k.LBucket, k.Dist},
			{k.Version, k.Machine, k.Rows, k.Cols, k.Coll, k.S + 1, k.LBucket, k.Dist},
			{k.Version, k.Machine, k.Rows, k.Cols, k.Coll, k.S, k.LBucket + 1, k.Dist},
			{k.Version, k.Machine, k.Rows, k.Cols, k.Coll, k.S, k.LBucket, k.Dist + "z"},
		} {
			if mut.String() == enc {
				t.Fatalf("distinct keys share encoding %q", enc)
			}
		}
		if strings.Count(enc, "|") != 6 {
			t.Fatalf("canonical encoding %q has %d separators", enc, strings.Count(enc, "|"))
		}
	})
}
