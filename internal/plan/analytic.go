package plan

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/topology"
)

// Score is one algorithm's analytic estimate.
type Score struct {
	// Algorithm is the registry name.
	Algorithm string
	// PredictedMs is the analytic tier's time estimate in milliseconds.
	PredictedMs float64
}

// Rank scores every candidate with the analytic cost model and returns
// them fastest-predicted first. Ties preserve candidate order, so the
// ranking is deterministic.
func Rank(m *machine.Machine, spec core.Spec, msgLen int, candidates []string) []Score {
	md := newModel(m, spec, msgLen)
	out := make([]Score, len(candidates))
	for i, name := range candidates {
		out[i] = Score{Algorithm: name, PredictedMs: md.estimate(name) / 1e6}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PredictedMs < out[j].PredictedMs })
	return out
}

// model carries one instance's cost helpers. All internal times are
// nanoseconds (float64); Rank converts to milliseconds at the edge.
//
// The estimates mirror the simulator's charging rules (sim package
// comment) without contention: a send costs SendOverhead plus the byte
// copy, the wire adds startup, per-hop latency and bytes/bandwidth, a
// receive costs RecvOverhead plus the byte copy, and message-combining
// algorithms additionally pay the per-byte combine cost. For the
// line-based algorithms the estimate replays the exact halving pattern of
// core.runLine (the replay behind core.GrowthEfficiency) with
// per-position virtual clocks and true hop distances, so stalled-growth
// distributions are priced as badly as the simulator prices them.
type model struct {
	spec     core.Spec
	l        int
	cfg      network.Config
	topo     topology.Topology
	place    *topology.Placement
	mesh     *topology.Mesh2D
	meanHops float64
}

func newModel(m *machine.Machine, spec core.Spec, msgLen int) *model {
	md := &model{
		spec:  spec,
		l:     msgLen,
		cfg:   m.Cfg,
		topo:  m.Topo,
		place: m.Place,
		mesh:  topology.MustMesh2D(spec.Rows, spec.Cols),
	}
	md.meanHops = md.sampleMeanHops()
	return md
}

// sampleMeanHops estimates the mean route length between logical ranks.
// Small machines are measured exactly; larger ones over a deterministic
// stride sample.
func (md *model) sampleMeanHops() float64 {
	p := md.spec.P()
	if p <= 1 {
		return 0
	}
	total, n := 0.0, 0
	if p <= 128 {
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				total += float64(md.hop(a, b))
				n++
			}
		}
	} else {
		// Deterministic sample: each rank against a fixed stride of peers.
		for a := 0; a < p; a++ {
			for k := 1; k <= 16; k++ {
				b := (a + k*(p/17+1)) % p
				if b == a {
					continue
				}
				total += float64(md.hop(a, b))
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// hop returns the physical route length between two logical ranks.
func (md *model) hop(a, b int) int {
	return md.topo.Distance(md.place.Node(a), md.place.Node(b))
}

func (md *model) so() float64          { return float64(md.cfg.SendOverhead) }
func (md *model) ro() float64          { return float64(md.cfg.RecvOverhead) }
func (md *model) copy(n int64) float64 { return md.cfg.ByteCopyNS * float64(n) }
func (md *model) comb(n int64) float64 { return md.cfg.CombineByteNS * float64(n) }

// wire prices an uncontended transfer of n bytes over hops links.
func (md *model) wire(n int64, hops float64) float64 {
	return float64(md.cfg.NetStartup) + float64(md.cfg.HopLatency)*hops +
		float64(n)/md.cfg.LinkBandwidth*1e9
}

// barrier mirrors the simulator's barrier charge.
func (md *model) barrier() float64 {
	p := md.spec.P()
	steps := math.Ceil(math.Log2(float64(p)))
	if p <= 1 {
		steps = 0
	}
	return steps * (md.so() + md.ro() + float64(md.cfg.NetStartup))
}

func (md *model) logp() float64 {
	lp := math.Ceil(math.Log2(float64(md.spec.P())))
	if lp < 1 {
		lp = 1
	}
	return lp
}

// estimate returns the predicted time (ns) of one algorithm on the
// instance. Unknown names get the conservative 2-Step estimate so that
// user-registered algorithms still rank somewhere sensible.
func (md *model) estimate(name string) float64 {
	switch name {
	case "2-Step":
		return md.estTwoStep()
	case "PersAlltoAll":
		return md.estPersAlltoAll()
	case "Br_Lin":
		return md.estBrLin(md.spec)
	case "Br_xy_source":
		return md.estBrXY(md.spec, true)
	case "Br_xy_dim":
		return md.estBrXY(md.spec, false)
	case "Repos_Lin", "Repos_xy_source", "Repos_xy_dim":
		return md.estRepos(name)
	case "Part_Lin", "Part_xy_source", "Part_xy_dim":
		return md.estPart(name)
	case "Ring_AllGather":
		return md.estRing()
	case "RD_AllGather":
		return md.estRD()
	case "Indep_1toP":
		return md.estIndep()
	case "Bcast_Circulant":
		return md.estCirculant()
	case "Red_Tree":
		return md.estRedTree()
	case "AllRed_RecDouble":
		if p := md.spec.P(); p&(p-1) == 0 {
			return md.estButterfly()
		}
		return md.estRedBcast()
	case "AllRed_RedBcast":
		return md.estRedBcast()
	case "Scatter_Binomial":
		return md.estScatterBinomial()
	case "Scatter_Direct":
		return md.estScatterDirect()
	case "Ag_Ring":
		// The allgather spec names every rank a source, so the ring and
		// recursive-doubling closed forms price it directly.
		return md.estRing()
	case "Ag_RecDouble":
		return md.estRD()
	case "A2A_Pairwise":
		return md.estA2APairwise()
	case "A2A_JungSakho":
		return md.estJungSakho()
	}
	if k, ok := kportPorts(name); ok {
		return md.estKPort(k)
	}
	return md.estTwoStep()
}

// kportPorts parses the port count out of a "Br_kport<k>" registry name.
func kportPorts(name string) (int, bool) {
	const prefix = "Br_kport"
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	k, err := strconv.Atoi(name[len(prefix):])
	if err != nil || k < 1 {
		return 0, false
	}
	return k, true
}

// --- line-replay machinery -------------------------------------------------

// lineState is one line's replay state, positions indexed along the line.
type lineState struct {
	ranks []int // position → full-machine rank
	holds []bool
	sizes []int64
}

// replayLine replays the halving pattern of core.runLine over one line,
// advancing the shared per-rank clocks. The pairing rules mirror
// analysis.replayHalving (and therefore the simulator) exactly; only the
// per-operation pricing is added.
func (md *model) replayLine(ls *lineState, clocks []float64) {
	n := len(ls.ranks)
	type seg struct{ lo, n int }
	segs := []seg{{0, n}}
	for {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
			}
		}
		if !split {
			return
		}
		var next []seg
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + 1) / 2
			for i := 0; i < g.n-h; i++ {
				a, b := g.lo+i, g.lo+i+h
				switch {
				case ls.holds[a] && ls.holds[b]:
					md.exchange(ls, a, b, clocks)
				case ls.holds[a]:
					md.oneway(ls, a, b, clocks)
				case ls.holds[b]:
					md.oneway(ls, b, a, clocks)
				}
			}
			if g.n%2 == 1 {
				u, tgt := g.lo+h-1, g.lo+g.n-1
				if ls.holds[u] && u != tgt {
					md.oneway(ls, u, tgt, clocks)
				}
			}
			next = append(next, seg{g.lo, h}, seg{g.lo + h, g.n - h})
		}
		segs = next
	}
}

// exchange prices a pairwise bundle swap between line positions a and b.
func (md *model) exchange(ls *lineState, a, b int, clocks []float64) {
	ra, rb := ls.ranks[a], ls.ranks[b]
	sa, sb := ls.sizes[a], ls.sizes[b]
	d := float64(md.hop(ra, rb))
	arrAtB := clocks[ra] + md.so() + md.copy(sa) + md.wire(sa, d)
	arrAtA := clocks[rb] + md.so() + md.copy(sb) + md.wire(sb, d)
	clocks[ra] = math.Max(clocks[ra]+md.so()+md.copy(sa), arrAtA) + md.ro() + md.copy(sb) + md.comb(sb)
	clocks[rb] = math.Max(clocks[rb]+md.so()+md.copy(sb), arrAtB) + md.ro() + md.copy(sa) + md.comb(sa)
	ls.sizes[a], ls.sizes[b] = sa+sb, sa+sb
}

// oneway prices a single bundle send from line position a to b.
func (md *model) oneway(ls *lineState, a, b int, clocks []float64) {
	ra, rb := ls.ranks[a], ls.ranks[b]
	sa := ls.sizes[a]
	d := float64(md.hop(ra, rb))
	arr := clocks[ra] + md.so() + md.copy(sa) + md.wire(sa, d)
	clocks[ra] += md.so() + md.copy(sa)
	clocks[rb] = math.Max(clocks[rb], arr) + md.ro() + md.copy(sa) + md.comb(sa)
	ls.sizes[b] += sa
	ls.holds[b] = true
}

// newLine builds a line's state from full-machine ranks and a holdings
// predicate.
func newLine(ranks []int, holds func(rank int) bool, size func(rank int) int64) *lineState {
	ls := &lineState{
		ranks: ranks,
		holds: make([]bool, len(ranks)),
		sizes: make([]int64, len(ranks)),
	}
	for pos, r := range ranks {
		if holds(r) {
			ls.holds[pos] = true
			ls.sizes[pos] = size(r)
		}
	}
	return ls
}

func maxClock(clocks []float64) float64 {
	m := 0.0
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// estBrLin replays Br_Lin over the snake-ordered line of the given spec
// (which may be an ideal repositioning target rather than md.spec).
func (md *model) estBrLin(spec core.Spec) float64 {
	p := spec.P()
	mesh := topology.MustMesh2D(spec.Rows, spec.Cols)
	ranks := make([]int, p)
	for pos := 0; pos < p; pos++ {
		ranks[pos] = spec.Indexing.RankToNode(mesh, pos)
	}
	clocks := make([]float64, md.spec.P())
	ls := newLine(ranks, spec.IsSource, func(int) int64 { return int64(md.l) })
	md.replayLine(ls, clocks)
	return maxClock(clocks)
}

// estBrXY replays Br_xy_source (sourceRule) or Br_xy_dim: the halving
// pattern inside every line of the first dimension, then inside every line
// of the second, per-rank clocks carried across the phases.
func (md *model) estBrXY(spec core.Spec, sourceRule bool) float64 {
	r, c := spec.Rows, spec.Cols
	perRow := make([]int, r)
	perCol := make([]int, c)
	for _, src := range spec.Sources {
		perRow[src/c]++
		perCol[src%c]++
	}
	rowsFirst := r >= c
	if sourceRule {
		maxR, maxC := 0, 0
		for _, v := range perRow {
			if v > maxR {
				maxR = v
			}
		}
		for _, v := range perCol {
			if v > maxC {
				maxC = v
			}
		}
		rowsFirst = maxR < maxC
	}
	rowLine := func(i int) []int {
		line := make([]int, c)
		for j := range line {
			line[j] = i*c + j
		}
		return line
	}
	colLine := func(j int) []int {
		line := make([]int, r)
		for i := range line {
			line[i] = i*c + j
		}
		return line
	}
	clocks := make([]float64, md.spec.P())
	var lines1, lines2 [][]int
	var phase2Vol func(rank int) (bool, int64)
	if rowsFirst {
		for i := 0; i < r; i++ {
			lines1 = append(lines1, rowLine(i))
		}
		for j := 0; j < c; j++ {
			lines2 = append(lines2, colLine(j))
		}
		phase2Vol = func(rank int) (bool, int64) {
			i := rank / c
			return perRow[i] > 0, int64(perRow[i]) * int64(md.l)
		}
	} else {
		for j := 0; j < c; j++ {
			lines1 = append(lines1, colLine(j))
		}
		for i := 0; i < r; i++ {
			lines2 = append(lines2, rowLine(i))
		}
		phase2Vol = func(rank int) (bool, int64) {
			j := rank % c
			return perCol[j] > 0, int64(perCol[j]) * int64(md.l)
		}
	}
	for _, line := range lines1 {
		ls := newLine(line, spec.IsSource, func(int) int64 { return int64(md.l) })
		md.replayLine(ls, clocks)
	}
	for _, line := range lines2 {
		ls := newLine(line,
			func(rank int) bool { h, _ := phase2Vol(rank); return h },
			func(rank int) int64 { _, v := phase2Vol(rank); return v })
		md.replayLine(ls, clocks)
	}
	return maxClock(clocks)
}

// estRepos prices a repositioning algorithm: barrier, the parallel partial
// permutation onto the inner algorithm's ideal distribution (only sources
// that actually move pay; the dist.Ideal* distance-to-ideal signal), then
// the inner replay on the ideal spec.
func (md *model) estRepos(name string) float64 {
	innerName := map[string]string{
		"Repos_Lin":       "Br_Lin",
		"Repos_xy_source": "Br_xy_source",
		"Repos_xy_dim":    "Br_xy_dim",
	}[name]
	ideal, ok := md.idealTargets(innerName)
	if !ok {
		return md.estTwoStep()
	}
	perm := md.permCost(md.spec.Sources, ideal)
	idealSpec := core.Spec{Rows: md.spec.Rows, Cols: md.spec.Cols, Sources: ideal, Indexing: md.spec.Indexing}
	var inner float64
	switch innerName {
	case "Br_Lin":
		inner = md.estBrLin(idealSpec)
	case "Br_xy_source":
		inner = md.estBrXY(idealSpec, true)
	default:
		inner = md.estBrXY(idealSpec, false)
	}
	return md.barrier() + perm + inner
}

// idealTargets returns the sorted ideal positions the inner algorithm's
// repositioning targets on this machine.
func (md *model) idealTargets(innerName string) ([]int, bool) {
	inner, err := core.ByName(innerName)
	if err != nil {
		return nil, false
	}
	gen := core.IdealFor(inner, md.spec.Rows, md.spec.Cols)
	ideal, err := gen.Sources(md.spec.Rows, md.spec.Cols, md.spec.S())
	if err != nil {
		return nil, false
	}
	sorted := append([]int(nil), ideal...)
	sort.Ints(sorted)
	return sorted, true
}

// permCost prices the partial permutation k-th source → k-th target: the
// moves run in parallel, so the cost is the slowest single move.
func (md *model) permCost(sources, targets []int) float64 {
	worst := 0.0
	l := int64(md.l)
	for k, src := range sources {
		if k >= len(targets) || targets[k] == src {
			continue
		}
		d := float64(md.hop(src, targets[k]))
		cost := md.so() + md.copy(l) + md.wire(l, d) + md.ro() + md.copy(l)
		if cost > worst {
			worst = cost
		}
	}
	return worst
}

// estPart prices a partitioning algorithm: split the mesh into two halves
// along the longer dimension, reposition within each half, run the inner
// algorithm in both halves concurrently, then the pairwise inter-half
// exchange of the two bundles.
func (md *model) estPart(name string) float64 {
	innerName := map[string]string{
		"Part_Lin":       "Br_Lin",
		"Part_xy_source": "Br_xy_source",
		"Part_xy_dim":    "Br_xy_dim",
	}[name]
	r, c := md.spec.Rows, md.spec.Cols
	p, s := md.spec.P(), md.spec.S()
	if p < 4 || s < 2 {
		return md.estRepos("Repos_" + innerName[3:])
	}
	// Halves along the longer dimension; source counts proportional to
	// half sizes.
	var r1, c1, boundary int
	if r >= c {
		r1, c1 = r/2, c
		boundary = r1 // vertical hop count between matched half ranks
	} else {
		r1, c1 = r, c/2
		boundary = c1
	}
	p1 := r1 * c1
	s1 := s * p1 / p
	if s1 < 1 {
		s1 = 1
	}
	s2 := s - s1
	if s2 < 1 {
		s2 = 1
	}
	inner, err := core.ByName(innerName)
	if err != nil {
		return md.estTwoStep()
	}
	halfEst := func(rows, cols, srcs int) float64 {
		gen := core.IdealFor(inner, rows, cols)
		ideal, err := gen.Sources(rows, cols, srcs)
		if err != nil {
			return md.estTwoStep()
		}
		spec := core.Spec{Rows: rows, Cols: cols, Sources: ideal, Indexing: md.spec.Indexing}
		half := &model{spec: spec, l: md.l, cfg: md.cfg, topo: md.topo, place: md.place,
			mesh: topology.MustMesh2D(rows, cols), meanHops: md.meanHops / 2}
		switch innerName {
		case "Br_Lin":
			return half.estBrLin(spec)
		case "Br_xy_source":
			return half.estBrXY(spec, true)
		default:
			return half.estBrXY(spec, false)
		}
	}
	var rows2, cols2 int
	if r >= c {
		rows2, cols2 = r-r1, c
	} else {
		rows2, cols2 = r, c-c1
	}
	e1 := halfEst(r1, c1, s1)
	e2 := halfEst(rows2, cols2, s2)
	// Perm cost within halves ≈ the full-machine perm bound.
	perm := md.permCostHalf()
	// Final exchange: matched pairs across the boundary swap bundles of
	// s1·L and s2·L.
	b1, b2 := int64(s1)*int64(md.l), int64(s2)*int64(md.l)
	exch := md.so() + md.copy(b1) + md.wire(maxInt64(b1, b2), float64(boundary)) +
		md.ro() + md.copy(b2) + md.comb(b2)
	return md.barrier() + perm + math.Max(e1, e2) + exch
}

// permCostHalf bounds the in-half repositioning move cost.
func (md *model) permCostHalf() float64 {
	l := int64(md.l)
	return md.so() + md.copy(l) + md.wire(l, math.Max(1, md.meanHops/2)) + md.ro() + md.copy(l)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- closed forms for the library baselines --------------------------------

// estTwoStep: gather s messages at P0 (serialized at the receiver), then
// a halving-pattern one-to-all broadcast of the concatenation.
func (md *model) estTwoStep() float64 {
	s := int64(md.spec.S())
	l := int64(md.l)
	gather := md.so() + md.copy(l) + md.wire(l, md.meanHops) + float64(s)*(md.ro()+md.copy(l))
	concat := md.comb(s * l)
	bundle := s * l
	bcast := md.logp() * (md.so() + md.copy(bundle) + md.wire(bundle, md.meanHops) + md.ro() + md.copy(bundle))
	return gather + concat + bcast
}

// estPersAlltoAll: p−1 permutation rounds; sources send every round,
// every processor receives s messages.
func (md *model) estPersAlltoAll() float64 {
	p := float64(md.spec.P())
	s := float64(md.spec.S())
	l := int64(md.l)
	sourcePath := (p-1)*(md.so()+md.copy(l)) + s*(md.ro()+md.copy(l))
	sinkPath := s * (md.ro() + md.copy(l))
	return math.Max(sourcePath, sinkPath) + md.wire(l, md.meanHops)
}

// estRing: p−1 neighbor steps; every contribution traverses the whole
// ring, so each processor moves ~s·L bytes in and out.
func (md *model) estRing() float64 {
	p := float64(md.spec.P())
	s := int64(md.spec.S())
	l := int64(md.l)
	perStep := md.so() + md.ro() + float64(md.cfg.NetStartup) + float64(md.cfg.HopLatency)
	bytes := s * l
	byteCost := 2*md.copy(bytes) + float64(bytes)/md.cfg.LinkBandwidth*1e9 + md.comb(bytes)
	return (p-1)*perStep + byteCost
}

// estRD: ⌈log2 p⌉ exchange rounds with doubling bundles; each processor
// moves ~s·L bytes total.
func (md *model) estRD() float64 {
	s := int64(md.spec.S())
	l := int64(md.l)
	perRound := md.so() + md.ro() + float64(md.cfg.NetStartup) + float64(md.cfg.HopLatency)*md.meanHops
	bytes := s * l
	byteCost := 2*md.copy(bytes) + float64(bytes)/md.cfg.LinkBandwidth*1e9 + md.comb(bytes)
	return md.logp()*perRound + byteCost
}

// estKPort replays Br_kport<k>'s (k+1)-section pattern (core.runLineK)
// over the snake-ordered line with per-rank clocks and true hop
// distances, exactly as estBrLin replays core.runLine: per level every
// segment's strided groups exchange bundles all-to-all and the segment
// splits into k+1 subsegments, so ~⌈log_{k+1} p⌉ levels at the price of
// up to k serialized sends per holder per level.
func (md *model) estKPort(k int) float64 {
	p := md.spec.P()
	ranks := make([]int, p)
	for pos := 0; pos < p; pos++ {
		ranks[pos] = md.spec.Indexing.RankToNode(md.mesh, pos)
	}
	clocks := make([]float64, p)
	ls := newLine(ranks, md.spec.IsSource, func(int) int64 { return int64(md.l) })
	md.replayLineK(ls, k, clocks)
	return maxClock(clocks)
}

// replayLineK replays the (k+1)-section pattern of core.runLineK over
// one line, advancing the shared per-rank clocks. Segment splitting,
// group membership, and the straggler rule mirror the algorithm
// exactly; only the per-operation pricing is added.
func (md *model) replayLineK(ls *lineState, k int, clocks []float64) {
	type seg struct{ lo, n int }
	segs := []seg{{0, len(ls.ranks)}}
	var members []int
	for {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
			}
		}
		if !split {
			return
		}
		var next []seg
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + k) / (k + 1)
			for i := 0; i < h; i++ {
				members = members[:0]
				for pos := g.lo + i; pos < g.lo+g.n; pos += h {
					members = append(members, pos)
				}
				md.groupExchange(ls, members, clocks)
			}
			jlast := (g.n - 1) / h
			for i := g.n - jlast*h; i < h; i++ {
				u, tgt := g.lo+i, g.lo+g.n-1
				if ls.holds[u] && u != tgt {
					md.oneway(ls, u, tgt, clocks)
				}
			}
			for j := 0; j*h < g.n; j++ {
				next = append(next, seg{g.lo + j*h, min(h, g.n-j*h)})
			}
		}
		segs = next
	}
}

// groupExchange prices one group all-to-all bundle exchange among the
// given line positions (core.groupStep): every holding member sends its
// bundle to every other member in member order, then receives and
// merges from every other holder — sends complete before the first
// receive, matching the algorithm's buffered-Send ordering. Reduces to
// exchange at two mutual holders.
func (md *model) groupExchange(ls *lineState, members []int, clocks []float64) {
	if len(members) < 2 {
		return
	}
	var holders []int
	for _, u := range members {
		if ls.holds[u] {
			holders = append(holders, u)
		}
	}
	if len(holders) == 0 {
		return
	}
	// Arrival time at v of holder u's bundle: u's i-th send departs
	// after i+1 serialized send overheads and copies, then the wire.
	type pair struct{ u, v int }
	arr := make(map[pair]float64, len(holders)*(len(members)-1))
	for _, u := range holders {
		ru, su := ls.ranks[u], ls.sizes[u]
		t := clocks[ru]
		for _, v := range members {
			if v == u {
				continue
			}
			t += md.so() + md.copy(su)
			arr[pair{u, v}] = t + md.wire(su, float64(md.hop(ru, ls.ranks[v])))
		}
	}
	var total int64
	for _, u := range holders {
		total += ls.sizes[u]
	}
	for _, v := range members {
		rv := ls.ranks[v]
		t := clocks[rv]
		if ls.holds[v] {
			t += float64(len(members)-1) * (md.so() + md.copy(ls.sizes[v]))
		}
		for _, u := range holders {
			if u == v {
				continue
			}
			su := ls.sizes[u]
			t = math.Max(t, arr[pair{u, v}]) + md.ro() + md.copy(su) + md.comb(su)
		}
		clocks[rv] = t
	}
	for _, v := range members {
		ls.holds[v] = true
		ls.sizes[v] = total
	}
}

// --- collective-extension estimates ----------------------------------------

// estCirculant replays Bcast_Circulant's round structure exactly: per
// round j with skip 2^j, every rank's send and receive volumes follow
// from the closed-form holder intervals, and per-rank clocks carry the
// critical path across rounds with true hop distances — the circulant
// analogue of the estBrLin line replay. Unlike the neighbor-hop line
// algorithms, a circulant round puts every rank's message on a long
// wormhole path at once, and dimension-ordered routing funnels many of
// those paths through shared links; each transfer's serialization term
// is stretched by the occupancy of the busiest link on its route.
func (md *model) estCirculant() float64 {
	p := md.spec.P()
	if p <= 1 {
		return 0
	}
	l := int64(md.l)
	countUseful := func(r, limit int) int64 {
		n := int64(0)
		for _, o := range md.spec.Sources {
			if (r-o+p)%p < limit {
				n++
			}
		}
		return n
	}
	clocks := make([]float64, p)
	dep := make([]float64, p)
	arr := make([]float64, p)
	sendN := make([]int64, p)
	recvN := make([]int64, p)
	linkStride := md.topo.Degree() + 1
	linkUse := make([]int, md.topo.Nodes()*linkStride)
	var routeBuf []topology.Link
	for skip := 1; skip < p; skip <<= 1 {
		limit := skip
		if p-skip < limit {
			limit = p - skip
		}
		for i := range linkUse {
			linkUse[i] = 0
		}
		for r := 0; r < p; r++ {
			if countUseful(r, limit) > 0 {
				routeBuf = md.topo.AppendRoute(routeBuf[:0], md.place.Node(r), md.place.Node((r+skip)%p))
				for _, lk := range routeBuf {
					linkUse[lk.From*linkStride+int(lk.Dir)]++
				}
			}
		}
		for r := 0; r < p; r++ {
			n := countUseful(r, limit)
			sendN[r] = n
			if n > 0 {
				b := n * l
				dep[r] = clocks[r] + md.so() + md.copy(b)
				to := (r + skip) % p
				congest := 1
				routeBuf = md.topo.AppendRoute(routeBuf[:0], md.place.Node(r), md.place.Node(to))
				for _, lk := range routeBuf {
					if u := linkUse[lk.From*linkStride+int(lk.Dir)]; u > congest {
						congest = u
					}
				}
				h := float64(len(routeBuf))
				arr[to] = dep[r] + float64(md.cfg.NetStartup) + float64(md.cfg.HopLatency)*h +
					float64(congest)*float64(b)/md.cfg.LinkBandwidth*1e9
				recvN[to] = n
			}
		}
		for r := 0; r < p; r++ {
			t := clocks[r]
			if sendN[r] > 0 {
				t = dep[r]
			}
			if recvN[r] > 0 {
				b := recvN[r] * l
				t = math.Max(t, arr[r]) + md.ro() + md.copy(b) + md.comb(b)
			}
			clocks[r] = t
			sendN[r], recvN[r] = 0, 0
		}
	}
	return maxClock(clocks)
}

// estRedTree: the binomial reduction tree — ⌈log2 p⌉ levels, each a
// fixed-size bundle hop plus the fold at the parent (reductions never
// grow the bundle, unlike the broadcast-combining trees).
func (md *model) estRedTree() float64 {
	l := int64(md.l)
	return md.logp() * (md.so() + md.copy(l) + md.wire(l, md.meanHops) + md.ro() + md.copy(l) + md.comb(l))
}

// estButterfly: recursive-doubling all-reduce — ⌈log2 p⌉ symmetric
// exchange rounds, each a send and a receive-plus-fold of the fixed-size
// partial result.
func (md *model) estButterfly() float64 {
	l := int64(md.l)
	return md.logp() * (md.so() + md.copy(l) + md.wire(l, md.meanHops) + md.ro() + md.copy(l) + md.comb(l))
}

// estRedBcast: reduce-then-broadcast all-reduce — the tree down and the
// tree back up, the broadcast half without the fold.
func (md *model) estRedBcast() float64 {
	l := int64(md.l)
	return md.estRedTree() + md.logp()*(md.so()+md.copy(l)+md.wire(l, md.meanHops)+md.ro()+md.copy(l))
}

// estScatterBinomial: the MST scatter's critical path is the root's
// chain of halving blocks — p/2·L, p/4·L, … L — each forwarded once.
func (md *model) estScatterBinomial() float64 {
	p := md.spec.P()
	l := int64(md.l)
	top := 1
	for top < p {
		top <<= 1
	}
	total := 0.0
	for mask := top >> 1; mask > 0; mask >>= 1 {
		b := int64(mask) * l
		total += md.so() + md.copy(b) + md.wire(b, md.meanHops) + md.ro() + md.copy(b) + md.comb(b)
	}
	return total
}

// estScatterDirect: the root serializes p−1 sends of one chunk each; the
// makespan is the root's send chain plus the last chunk's flight.
func (md *model) estScatterDirect() float64 {
	p := float64(md.spec.P())
	l := int64(md.l)
	return (p-1)*(md.so()+md.copy(l)) + md.wire(l, md.meanHops) + md.ro() + md.copy(l)
}

// estA2APairwise: p−1 serialized exchange steps, each moving one chunk
// out and one chunk in.
func (md *model) estA2APairwise() float64 {
	p := float64(md.spec.P())
	l := int64(md.l)
	return (p - 1) * (md.so() + md.copy(l) + md.wire(l, md.meanHops) + md.ro() + md.copy(l))
}

// estJungSakho prices the dimension-ordered torus all-to-all: for each
// torus dimension of radix k (topology.TorusDims — the same
// decomposition the algorithm routes along), k−1 ring steps each moving
// a (p/k)-chunk block, with the true mean hop distance of that step's
// fixed stride. Σ(k_d−1) messages against the pairwise exchange's p−1,
// bought with store-and-forward volume — so it ranks ahead exactly where
// per-message startup dominates.
func (md *model) estJungSakho() float64 {
	p := md.spec.P()
	if p <= 1 {
		return 0
	}
	x, y, z := topology.TorusDims(p)
	total := 0.0
	stride := 1
	for _, k := range []int{x, y, z} {
		if k <= 1 {
			continue
		}
		b := int64(p/k) * int64(md.l)
		for t := 1; t < k; t++ {
			hops := 0.0
			for r := 0; r < p; r++ {
				pos := (r / stride) % k
				destPos := (pos + t) % k
				hops += float64(md.hop(r, r+(destPos-pos)*stride))
			}
			hops /= float64(p)
			total += md.so() + md.copy(b) + md.wire(b, hops) + md.ro() + md.copy(b) + md.comb(b)
		}
		stride *= k
	}
	return total
}

// estIndep: s uncoordinated binomial broadcasts; every processor relays
// up to s messages per level and the overlapping trees contend for the
// same links (the congestion the paper rejects it for).
func (md *model) estIndep() float64 {
	s := float64(md.spec.S())
	l := int64(md.l)
	perLevel := md.so() + md.ro() + 2*md.copy(l) + md.wire(l, md.meanHops)
	congestion := s * (md.ro() + md.copy(l) + float64(l)/md.cfg.LinkBandwidth*1e9)
	return md.logp()*perLevel + congestion
}
