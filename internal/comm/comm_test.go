package comm_test

import (
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/live"
)

func TestMessageLenAndOrigins(t *testing.T) {
	m := comm.Message{Parts: []comm.Part{
		{Origin: 5, Data: make([]byte, 10)},
		{Origin: 2, Data: make([]byte, 7)},
	}}
	if m.Len() != 17 {
		t.Errorf("Len = %d", m.Len())
	}
	if got := m.Origins(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Errorf("Origins = %v", got)
	}
	var empty comm.Message
	if empty.Len() != 0 || len(empty.Origins()) != 0 {
		t.Error("empty message not empty")
	}
}

func TestMessageAppend(t *testing.T) {
	a := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte{1}}}}
	b := comm.Message{Tag: 2, Parts: []comm.Part{{Origin: 3, Data: []byte{2, 3}}}}
	c := a.Append(b)
	if c.Tag != 1 {
		t.Errorf("Append changed tag to %d", c.Tag)
	}
	if got := c.Origins(); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("Append origins = %v", got)
	}
	if c.Len() != 3 {
		t.Errorf("Append len = %d", c.Len())
	}
}

func TestChargeCombineAndMarkIterNoOpOnPlainComm(t *testing.T) {
	// The live engine implements neither Clock nor IterMarker; the
	// helpers must be safe no-ops there.
	_, err := live.Run(2, func(p *live.Proc) {
		comm.ChargeCombine(p, 100)
		comm.MarkIter(p, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommTranslation(t *testing.T) {
	members := []int{1, 3, 4}
	results := make([]string, 6)
	_, err := live.Run(6, func(p *live.Proc) {
		in := false
		for _, m := range members {
			if m == p.Rank() {
				in = true
			}
		}
		if !in {
			return
		}
		sub, err := comm.NewSub(p, members)
		if err != nil {
			t.Errorf("rank %d: %v", p.Rank(), err)
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d", sub.Size())
		}
		// Ring of subgroup members through local ranks.
		next := (sub.Rank() + 1) % 3
		prev := (sub.Rank() + 2) % 3
		sub.Send(next, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(p.Rank())}}}})
		m := sub.Recv(prev)
		results[p.Rank()] = string(m.Parts[0].Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Member 3 (local 1) receives from member 1 (local 0), etc.
	if results[3] != string([]byte{1}) || results[4] != string([]byte{3}) || results[1] != string([]byte{4}) {
		t.Fatalf("ring payloads: %q %q %q", results[1], results[3], results[4])
	}
}

func TestSubCommBarrier(t *testing.T) {
	members := []int{0, 2, 3, 5, 6}
	_, err := live.Run(8, func(p *live.Proc) {
		for _, m := range members {
			if m == p.Rank() {
				sub, err := comm.NewSub(p, members)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 5; i++ {
					sub.Barrier()
				}
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSubRejectsBadMembers(t *testing.T) {
	_, err := live.Run(4, func(p *live.Proc) {
		if p.Rank() != 0 {
			return
		}
		if _, err := comm.NewSub(p, []int{2, 1}); err == nil {
			t.Error("unsorted members accepted")
		}
		if _, err := comm.NewSub(p, []int{1, 1, 2}); err == nil {
			t.Error("duplicate members accepted")
		}
		if _, err := comm.NewSub(p, []int{0, 9}); err == nil {
			t.Error("out-of-range member accepted")
		}
		if _, err := comm.NewSub(p, []int{1, 2}); err == nil {
			t.Error("non-member caller accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangePanicsOnSelf(t *testing.T) {
	_, err := live.Run(2, func(p *live.Proc) {
		if p.Rank() == 0 {
			comm.Exchange(p, 0, comm.Message{})
		} else {
			// Keep rank 1 harmless; it must be unwound by the abort.
			p.Recv(0)
		}
	})
	if err == nil {
		t.Fatal("self-exchange did not panic")
	}
}
