// Package comm defines the message-passing interface the s-to-p
// broadcasting algorithms are written against. Two engines implement it:
// internal/sim (deterministic discrete-event simulation with the network
// cost model — produces the paper's figures) and internal/live (real
// goroutines and channels moving real bytes — proves functional
// correctness). Algorithm code is engine-agnostic.
//
// The interface mirrors the blocking NX/MPI primitives the paper's
// implementations used: matched blocking Send/Recv with FIFO ordering per
// (sender, receiver) pair, plus a Barrier. There is no wildcard receive;
// every algorithm in the paper knows exactly whom it talks to, because all
// processors know the source positions when broadcasting starts (Section 1).
package comm

import (
	"fmt"
	"sort"
)

// Part is one original broadcast message inside a (possibly combined)
// bundle: the rank that initiated it and its payload.
type Part struct {
	Origin int
	Data   []byte
	// Size is the simulated payload length in bytes when Data is nil —
	// the length-only path the discrete-event simulator uses so that
	// large sweeps never allocate real payload buffers. When Data is
	// non-nil, len(Data) is the length and Size is ignored. The live and
	// TCP engines move real bytes and should be given Data.
	Size int
}

// Len returns the part's payload length: len(Data) when Data is set,
// Size otherwise (the length-only simulator path).
func (p Part) Len() int {
	if p.Data != nil {
		return len(p.Data)
	}
	return p.Size
}

// Message is what travels between processors: one or more Parts. The
// message-combining algorithms (Br_*) merge messages whenever two meet at
// a processor, so a Message late in a run carries many Parts. Parts hold
// slice references; combining never copies payload bytes in the simulator
// (the copy cost is charged by the engine instead), while the live engine
// moves real bytes end to end.
type Message struct {
	// Tag labels the protocol step for traces; matching ignores it.
	Tag int
	// Parts are the bundled original messages.
	Parts []Part
}

// Len returns the payload size of the message in bytes, the quantity the
// cost model prices.
func (m Message) Len() int {
	n := 0
	for _, p := range m.Parts {
		n += p.Len()
	}
	return n
}

// Origins returns the sorted ranks whose original messages the bundle
// carries.
func (m Message) Origins() []int {
	out := make([]int, len(m.Parts))
	for i, p := range m.Parts {
		out[i] = p.Origin
	}
	sort.Ints(out)
	return out
}

// Append returns m with the parts of other appended. It does not
// deduplicate; the algorithms never deliver the same origin twice to the
// same processor (tests assert this).
func (m Message) Append(other Message) Message {
	m.Parts = append(m.Parts, other.Parts...)
	return m
}

// String summarizes the message for traces and test failures.
func (m Message) String() string {
	return fmt.Sprintf("msg{tag=%d parts=%d bytes=%d}", m.Tag, len(m.Parts), m.Len())
}

// Comm is one processor's handle onto the machine. All methods are called
// from that processor's own goroutine only.
type Comm interface {
	// Rank returns this processor's logical rank in [0, Size()).
	Rank() int
	// Size returns the number of processors p.
	Size() int
	// Send transfers a message to dst. It blocks for the local software
	// cost of issuing the send (buffer copy), not for delivery — the
	// semantics of NX csend with a buffered message. This buffered
	// (non-rendezvous) contract is load-bearing: Exchange and the
	// dissemination barriers have all participants send before they
	// receive, which deadlocks on a rendezvous transport.
	Send(dst int, m Message)
	// Recv blocks until the next message from src arrives and returns it.
	// Messages between a fixed (src, dst) pair arrive in send order.
	Recv(src int) Message
	// Barrier blocks until every processor has entered the barrier.
	Barrier()
}

// Clock is implemented by engines that track per-processor virtual time.
// Algorithms charge local computation (message combining) through it.
type Clock interface {
	// AdvanceCombine charges the local cost of merging n received bytes
	// into the accumulated broadcast bundle.
	AdvanceCombine(n int)
}

// IterMarker is implemented by engines that attribute activity to
// algorithm iterations (for the paper's Figure-2 parameters: congestion,
// av_msg_lgth, av_act_proc are per-iteration quantities).
type IterMarker interface {
	// BeginIter marks the start of iteration i on this processor.
	BeginIter(i int)
}

// PhaseMarker is implemented by engines that stamp traced events with an
// algorithm-defined phase label ("gather", "broadcast", ...), so a trace
// can attribute every send, receive and wait to the protocol stage that
// issued it.
type PhaseMarker interface {
	// BeginPhase labels subsequent activity on this processor; an empty
	// name clears the label.
	BeginPhase(name string)
}

// ChargeCombine charges message-combining cost if the engine meters it.
// On the live engine the combining is real work and needs no charge.
func ChargeCombine(c Comm, n int) {
	if cl, ok := c.(Clock); ok {
		cl.AdvanceCombine(n)
	}
}

// MarkIter marks an iteration boundary if the engine records iterations.
func MarkIter(c Comm, i int) {
	if m, ok := c.(IterMarker); ok {
		m.BeginIter(i)
	}
}

// MarkPhase labels the processor's current protocol phase if the engine
// stamps traced events with phases.
func MarkPhase(c Comm, name string) {
	if m, ok := c.(PhaseMarker); ok {
		m.BeginPhase(name)
	}
}

// Exchange performs the paper's pairwise step: send our bundle to peer
// and receive theirs. Both sides send before receiving — there is no
// rank-ordered turn-taking — which is deadlock-free only because every
// engine's Send is buffered (it blocks for the local cost of handing the
// message to the transport, never for the peer to post a matching
// receive, mirroring NX csend). An engine with rendezvous sends would
// deadlock here; any future engine must preserve the buffered-send
// contract documented on Comm.Send.
func Exchange(c Comm, peer int, m Message) Message {
	if peer == c.Rank() {
		panic(fmt.Sprintf("comm: rank %d exchanging with itself", peer))
	}
	c.Send(peer, m)
	return c.Recv(peer)
}
