package comm

import (
	"fmt"
	"sort"
)

// Sub is a communicator restricted to a subset of the machine, the
// MPI_Comm_split analogue the partitioning algorithms (Part_*) need to run
// an s-to-p broadcast inside each machine half. Local ranks are the
// indices into the member list; sends and receives are forwarded to the
// parent with translated ranks.
//
// Barrier is implemented as a dissemination barrier with empty messages
// among the members (the parent's global barrier would involve processors
// outside the group). Cost accounting and iteration marking forward to the
// parent when it supports them.
type Sub struct {
	parent  Comm
	members []int
	local   int
}

var _ Comm = (*Sub)(nil)
var _ Clock = (*Sub)(nil)
var _ IterMarker = (*Sub)(nil)
var _ PhaseMarker = (*Sub)(nil)

// NewSub creates the subgroup view of parent for the calling processor.
// members must be sorted, duplicate-free global ranks and must contain the
// caller. Every member must create the Sub with an identical member list.
func NewSub(parent Comm, members []int) (*Sub, error) {
	if !sort.IntsAreSorted(members) {
		return nil, fmt.Errorf("comm: subgroup members not sorted: %v", members)
	}
	local := -1
	for i, m := range members {
		if i > 0 && members[i-1] == m {
			return nil, fmt.Errorf("comm: duplicate subgroup member %d", m)
		}
		if m < 0 || m >= parent.Size() {
			return nil, fmt.Errorf("comm: subgroup member %d outside machine of %d", m, parent.Size())
		}
		if m == parent.Rank() {
			local = i
		}
	}
	if local < 0 {
		return nil, fmt.Errorf("comm: rank %d not a member of subgroup %v", parent.Rank(), members)
	}
	return &Sub{parent: parent, members: members, local: local}, nil
}

// Rank implements Comm: the local rank within the subgroup.
func (s *Sub) Rank() int { return s.local }

// Size implements Comm: the subgroup size.
func (s *Sub) Size() int { return len(s.members) }

// Global translates a local rank to the parent's rank space.
func (s *Sub) Global(local int) int {
	if local < 0 || local >= len(s.members) {
		panic(fmt.Sprintf("comm: local rank %d outside subgroup of %d", local, len(s.members)))
	}
	return s.members[local]
}

// Send implements Comm.
func (s *Sub) Send(dst int, m Message) { s.parent.Send(s.Global(dst), m) }

// Recv implements Comm.
func (s *Sub) Recv(src int) Message { return s.parent.Recv(s.Global(src)) }

// Barrier implements Comm with a dissemination barrier over the members:
// ⌈log2 n⌉ rounds of empty-message exchanges, deadlock-free under the
// engines' buffered sends.
func (s *Sub) Barrier() {
	n := len(s.members)
	for k := 1; k < n; k <<= 1 {
		s.Send((s.local+k)%n, Message{Tag: -1})
		s.Recv((s.local - k + n) % n)
	}
}

// AdvanceCombine implements Clock by forwarding to the parent.
func (s *Sub) AdvanceCombine(n int) { ChargeCombine(s.parent, n) }

// BeginIter implements IterMarker by forwarding to the parent.
func (s *Sub) BeginIter(i int) { MarkIter(s.parent, i) }

// BeginPhase implements PhaseMarker by forwarding to the parent.
func (s *Sub) BeginPhase(name string) { MarkPhase(s.parent, name) }
