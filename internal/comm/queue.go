package comm

// Queue is a FIFO of messages backed by a ring buffer. Unlike the
// `q = append(q, m)` / `q = q[1:]` idiom, popped slots are zeroed and the
// backing array is reused, so delivered payloads become collectable as
// soon as the receiver drops them and the queue's memory footprint is
// bounded by its high-water mark rather than by total traffic. The zero
// value is an empty queue. Queue is not safe for concurrent use; callers
// (the live and tcp mailboxes) hold their own locks.
type Queue struct {
	buf  []Message // len(buf) is a power of two (or nil)
	head int
	n    int
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return q.n }

// Push appends a message to the tail.
func (q *Queue) Push(m Message) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
	q.n++
}

func (q *Queue) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	next := make([]Message, size)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}

// Pop removes and returns the head message. It panics on an empty queue;
// callers check Len first.
func (q *Queue) Pop() Message {
	if q.n == 0 {
		panic("comm: Pop on empty Queue")
	}
	m := q.buf[q.head]
	q.buf[q.head] = Message{} // release payload references promptly
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return m
}

// Reset empties the queue, zeroing every occupied slot so retained
// payloads become collectable, while keeping the backing array for
// reuse. The long-lived engine sessions call it between runs so a frame
// left over from an aborted run can never be delivered to the next one.
func (q *Queue) Reset() {
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = Message{}
	}
	q.head, q.n = 0, 0
}

// Drain empties the queue like Reset, but hands each removed message to
// fn first (in FIFO order). The tcp engine uses it to recycle undelivered
// pooled frames between runs; slots are still zeroed, so the queue keeps
// no reference to anything fn decides to reuse.
func (q *Queue) Drain(fn func(Message)) {
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) & (len(q.buf) - 1)
		fn(q.buf[idx])
		q.buf[idx] = Message{}
	}
	q.head, q.n = 0, 0
}

// Cap returns the current backing-array capacity (for retention tests).
func (q *Queue) Cap() int { return len(q.buf) }
