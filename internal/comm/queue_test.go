package comm

import (
	"fmt"
	"testing"
)

func TestQueueFIFOAcrossWraparound(t *testing.T) {
	var q Queue
	next := 0 // next value to push
	want := 0 // next value expected from Pop
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.Push(Message{Tag: next})
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			if got := q.Pop().Tag; got != want {
				t.Fatalf("Pop returned tag %d, want %d", got, want)
			}
			want++
		}
	}
	// Interleave pushes and pops so head wraps around the ring and the
	// buffer grows while non-empty at a non-zero head.
	push(5)
	pop(3)
	push(10) // forces growth with head mid-buffer
	pop(7)
	push(20)
	pop(q.Len())
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

// TestQueuePopReleasesPayload is the mailbox-retention regression test:
// the old append/q[1:] idiom kept every delivered payload reachable
// through the backing array. Pop must zero the slot.
func TestQueuePopReleasesPayload(t *testing.T) {
	var q Queue
	for i := 0; i < 6; i++ {
		q.Push(Message{Parts: []Part{{Origin: i, Data: make([]byte, 1024)}}})
	}
	for i := 0; i < 6; i++ {
		q.Pop()
	}
	for i := 0; i < q.Cap(); i++ {
		if q.buf[i].Parts != nil {
			t.Errorf("slot %d still references a delivered message", i)
		}
	}
}

func TestQueueBoundedByHighWaterMark(t *testing.T) {
	var q Queue
	// A long trickle through a nearly-empty queue must not grow the
	// backing array (the retention bug's other symptom: the slice view
	// marched down an ever-growing array).
	for i := 0; i < 10_000; i++ {
		q.Push(Message{Tag: i})
		q.Pop()
	}
	if q.Cap() > 8 {
		t.Errorf("steady 1-deep traffic grew the ring to %d slots", q.Cap())
	}
}

// TestQueueResetDropsAndZeroes: Reset must empty the queue, zero the
// occupied slots (payload release) and keep the ring for reuse, even
// with the occupied region wrapped around the array end.
func TestQueueResetDropsAndZeroes(t *testing.T) {
	var q Queue
	for i := 0; i < 6; i++ {
		q.Push(Message{Parts: []Part{{Origin: i, Data: make([]byte, 64)}}})
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	for i := 0; i < 6; i++ { // head is now mid-ring; wrap the tail past the end
		q.Push(Message{Parts: []Part{{Origin: 10 + i, Data: make([]byte, 64)}}})
	}
	cap0 := q.Cap()
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Reset", q.Len())
	}
	if q.Cap() != cap0 {
		t.Fatalf("Reset changed capacity: %d -> %d", cap0, q.Cap())
	}
	for i := 0; i < q.Cap(); i++ {
		if q.buf[i].Parts != nil {
			t.Errorf("slot %d still references a message after Reset", i)
		}
	}
	// The ring must remain usable after Reset.
	q.Push(Message{Tag: 42})
	if got := q.Pop().Tag; got != 42 {
		t.Fatalf("post-Reset Pop = %d, want 42", got)
	}
}

func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q Queue
	q.Pop()
}

func TestQueueManySizes(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var q Queue
			for i := 0; i < n; i++ {
				q.Push(Message{Tag: i})
			}
			if q.Len() != n {
				t.Fatalf("Len = %d, want %d", q.Len(), n)
			}
			for i := 0; i < n; i++ {
				if got := q.Pop().Tag; got != i {
					t.Fatalf("Pop = %d, want %d", got, i)
				}
			}
		})
	}
}
