package bench

import (
	"fmt"

	"repro/internal/tcp"
)

func init() {
	register(Experiment{
		ID:    "figTCPHotpath",
		Title: "TCP frame hot path: legacy per-part writes vs single vectored write vs userspace batching, small messages",
		Paper: "Beyond the paper: the paper charges each message one startup latency β; this figure measures how much of the engine's per-frame cost was self-inflicted — the legacy path paid 2k+1 write syscalls and fresh header allocations per frame, the arena path pays one gather write and none.",
		Run:   runFigTCPHotpath,
	})
}

// figTCPHotpath workload: single-part frames over one drained loopback
// connection, swept over the small payload sizes where per-frame
// overhead dominates the wire time.
var hotpathPayloads = []int{16, 64, 256, 1024}

const (
	hotpathFrames     = 20000
	hotpathBatchBytes = 4096
)

// runFigTCPHotpath streams the same frame sequence through the three
// write paths and reports frames/s plus the vectored/legacy speedup —
// the tentpole's acceptance ratio (≥2× on small messages).
func runFigTCPHotpath() (*Series, error) {
	s := NewSeries(
		fmt.Sprintf("Frame write paths over loopback TCP, %d single-part frames per point, batch threshold %d B",
			hotpathFrames, hotpathBatchBytes),
		"payload bytes", "frames/s (speedup is a ratio)",
		"legacy", "vectored", "batched", "vectored/legacy")
	s.Notes = "Wall-clock measurement, not a paper figure: absolute rates vary with the host, but the " +
		"speedup column is the point — the legacy path paid one write for the frame header plus two per " +
		"part and allocated headers per frame; the vectored path encodes into pooled scratch and issues " +
		"one write (a gather writev above the contiguous cutoff); batching coalesces whole small frames " +
		"below the threshold into one write for many. Acceptance: vectored ≥2× legacy on small payloads."
	for _, n := range hotpathPayloads {
		legacy, err := tcp.MeasureFrameRate(tcp.FrameModeLegacy, n, hotpathFrames, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: figTCPHotpath legacy %dB: %w", n, err)
		}
		vectored, err := tcp.MeasureFrameRate(tcp.FrameModeVectored, n, hotpathFrames, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: figTCPHotpath vectored %dB: %w", n, err)
		}
		batched, err := tcp.MeasureFrameRate(tcp.FrameModeBatched, n, hotpathFrames, hotpathBatchBytes)
		if err != nil {
			return nil, fmt.Errorf("bench: figTCPHotpath batched %dB: %w", n, err)
		}
		speedup := 0.0
		if legacy > 0 {
			speedup = vectored / legacy
		}
		s.AddX(fmt.Sprintf("%d", n), legacy, vectored, batched, speedup)
	}
	return s, nil
}
