package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/par"
)

// entrant is one curve of a Paragon figure: an algorithm under the NX or
// the MPI cost profile.
type entrant struct {
	label string
	alg   core.Algorithm
	mpi   bool
}

// paragonFor builds the machine an entrant runs on.
func paragonFor(e entrant, rows, cols int) *machine.Machine {
	if e.mpi {
		return machine.ParagonMPI(rows, cols)
	}
	return machine.Paragon(rows, cols)
}

// nxFive is the five-algorithm NX set of Figures 4 and 5.
func nxFive() []entrant {
	return []entrant{
		{"Br_Lin", core.BrLin(), false},
		{"Br_xy_source", core.BrXYSource(), false},
		{"Br_xy_dim", core.BrXYDim(), false},
		{"2-Step", core.TwoStep(), false},
		{"PersAlltoAll", core.PersAlltoAll(), false},
	}
}

// sevenAlgs adds the MPI variants, the seven curves of Figure 3.
func sevenAlgs() []entrant {
	return append(nxFive(),
		entrant{"MPI_AllGather", core.TwoStep(), true},
		entrant{"MPI_Alltoall", core.PersAlltoAll(), true},
	)
}

// sweep measures every entrant at every x position of a Paragon figure,
// fanning the cells out across the bounded worker pool.
func sweep(s *Series, entrants []entrant, xs []string, run func(e entrant, i int) (float64, error)) (*Series, error) {
	return fillSeries(s, xs, len(entrants), func(i, j int) (float64, error) {
		return run(entrants[j], i)
	})
}

func labels(entrants []entrant) []string {
	out := make([]string, len(entrants))
	for i, e := range entrants {
		out[i] = e.label
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Characteristic parameters on the equal distribution (16×16 Paragon, L=1K, s=64 vs s=60)",
		Paper: "Asymptotic table: 2-Step O(s) congestion / O(p) send-rec; PersAlltoAll O(1) congestion / O(p) send-rec / O(L) av_msg / O(p) av_act; Br_Lin O(1) congestion / O(log p) wait and send-rec, with av_msg and av_act depending on whether s is a power of two.",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "10×10 Paragon, equal distribution, L=4K, s=1..100, seven algorithms",
		Paper: "Br_Lin/Br_xy_source/Br_xy_dim nearly identical, lowest, linear in s; 2-Step and PersAlltoAll poor; MPI variants worse than NX.",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "10×10 Paragon, right diagonal, s=30, L=32B..16K, five algorithms",
		Paper: "Br_* flat until ~512B then linear; 2-Step/PersAlltoAll poor at every L, PersAlltoAll almost flat to 1K.",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Paragon p=4..256 (square), right diagonal, s≈√p, L=1K, five algorithms",
		Paper: "PersAlltoAll as good as any for 4–16 processors, degrading on larger machines.",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "10×10 Paragon, L=2K, s=30, all eight distributions × three Br algorithms",
		Paper: "Row/column/equal/diagonals roughly equal for Br_xy_source; square block and cross considerably more expensive for all; Br_Lin copes best with cross; Br_xy_dim jumps on the row distribution.",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "10×10 Paragon, right diagonal, total volume fixed at 80K, s=5..80",
		Paper: "Spreading a fixed volume over more sources is faster: 11.4 ms at s=5 vs 7.3 ms at s=40 for Br_xy_source.",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "120-processor Paragon, dimensions 2×60..10×12, equal distribution, L=4K, Br_Lin with s ∈ {8,15,30}",
		Paper: "Dimensions matter more for larger s; s=15 can beat s=8 because E(15) lands on diagonals while E(8) lands in columns.",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "16×16 Paragon, L=6K, s=16..192: gain of Repos_xy_source over Br_xy_source (percent)",
		Paper: "Large gains for cross and square block (tens of percent, 13–31 ms); small losses (≤6.5%) for band; erratic for equal; gains taper as s grows.",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "16×16 Paragon, s=75, L=256B..16K: gain of Repos_xy_source over Br_xy_source (percent)",
		Paper: "Below ~1K repositioning pays only for the cross distribution; the benefit rises with L for all distributions, then tapers.",
		Run:   runFig10,
	})
}

func runFig2() (*Series, error) {
	algs := []entrant{
		{"2-Step", core.TwoStep(), false},
		{"PersAlltoAll", core.PersAlltoAll(), false},
		{"Br_Lin", core.BrLin(), false},
	}
	order := make([]string, 0, 2*len(algs))
	for _, a := range algs {
		order = append(order, a.label+" s=64", a.label+" s=60")
	}
	s := NewSeries("Figure 2 — characteristic parameters, E(s), 16×16 Paragon, L=1K", "parameter", "mixed units", order...)
	s.Notes = "s=64 is a power of two (slow early growth for Br_Lin), s=60 is not; av_msg_lgth in bytes, av_act_proc in processors."
	srcs := []int{64, 60}
	cells := make([]metrics.Params, len(order))
	if err := par.ForEach(len(order), func(k int) error {
		a, src := algs[k/len(srcs)], srcs[k%len(srcs)]
		m := paragonFor(a, 16, 16)
		spec, err := SpecFor(m, dist.Equal(), src)
		if err != nil {
			return err
		}
		res, err := Measure(m, a.alg, spec, 1024)
		if err != nil {
			return err
		}
		cells[k] = metrics.FromResult(res)
		return nil
	}); err != nil {
		return nil, err
	}
	params := make(map[string]metrics.Params, len(order))
	for k, name := range order {
		params[name] = cells[k]
	}
	rows := []struct {
		label string
		get   func(metrics.Params) float64
	}{
		{"congestion", func(p metrics.Params) float64 { return float64(p.Congestion) }},
		{"wait", func(p metrics.Params) float64 { return float64(p.Wait) }},
		{"send/rec", func(p metrics.Params) float64 { return float64(p.SendRec) }},
		{"av_msg_lgth", func(p metrics.Params) float64 { return p.AvgMsgLen }},
		{"av_act_proc", func(p metrics.Params) float64 { return p.AvgActive }},
		{"time_ms", func(p metrics.Params) float64 { return p.Elapsed.Milliseconds() }},
	}
	for _, row := range rows {
		vals := make([]float64, len(order))
		for i, name := range order {
			vals[i] = row.get(params[name])
		}
		s.AddX(row.label, vals...)
	}
	return s, nil
}

func runFig3() (*Series, error) {
	entrants := sevenAlgs()
	s := NewSeries("Figure 3 — 10×10 Paragon, E(s), L=4K", "sources", "ms", labels(entrants)...)
	var xs []string
	var svals []int
	for _, v := range []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		xs = append(xs, fmt.Sprintf("%d", v))
		svals = append(svals, v)
	}
	return sweep(s, entrants, xs, func(e entrant, i int) (float64, error) {
		m := paragonFor(e, 10, 10)
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, e.alg, spec, 4096)
	})
}

func runFig4() (*Series, error) {
	entrants := nxFive()
	s := NewSeries("Figure 4 — 10×10 Paragon, Dr(30), L sweep", "msg bytes", "ms", labels(entrants)...)
	var xs []string
	var lvals []int
	for l := 32; l <= 16384; l *= 2 {
		xs = append(xs, fmt.Sprintf("%d", l))
		lvals = append(lvals, l)
	}
	return sweep(s, entrants, xs, func(e entrant, i int) (float64, error) {
		m := paragonFor(e, 10, 10)
		spec, err := SpecFor(m, dist.DiagRight(), 30)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, e.alg, spec, lvals[i])
	})
}

func runFig5() (*Series, error) {
	entrants := nxFive()
	s := NewSeries("Figure 5 — square Paragons p=4..256, Dr(√p), L=1K", "processors", "ms", labels(entrants)...)
	var xs []string
	var sides []int
	for _, side := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		xs = append(xs, fmt.Sprintf("%d", side*side))
		sides = append(sides, side)
	}
	return sweep(s, entrants, xs, func(e entrant, i int) (float64, error) {
		side := sides[i]
		m := paragonFor(e, side, side)
		spec, err := SpecFor(m, dist.DiagRight(), side)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, e.alg, spec, 1024)
	})
}

func runFig6() (*Series, error) {
	entrants := []entrant{
		{"Br_Lin", core.BrLin(), false},
		{"Br_xy_source", core.BrXYSource(), false},
		{"Br_xy_dim", core.BrXYDim(), false},
	}
	s := NewSeries("Figure 6 — 10×10 Paragon, L=2K, s=30, distribution sweep", "distribution", "ms", labels(entrants)...)
	dists := dist.All()
	var xs []string
	for _, d := range dists {
		xs = append(xs, d.Name())
	}
	return sweep(s, entrants, xs, func(e entrant, i int) (float64, error) {
		m := paragonFor(e, 10, 10)
		spec, err := SpecFor(m, dists[i], 30)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, e.alg, spec, 2048)
	})
}

func runFig7() (*Series, error) {
	entrants := []entrant{
		{"Br_Lin", core.BrLin(), false},
		{"Br_xy_source", core.BrXYSource(), false},
		{"Br_xy_dim", core.BrXYDim(), false},
	}
	s := NewSeries("Figure 7 — 10×10 Paragon, Dr(s), total volume 80K", "sources", "ms", labels(entrants)...)
	const total = 80 * 1024
	var xs []string
	var svals []int
	for _, v := range []int{5, 10, 20, 40, 80} {
		xs = append(xs, fmt.Sprintf("%d", v))
		svals = append(svals, v)
	}
	return sweep(s, entrants, xs, func(e entrant, i int) (float64, error) {
		m := paragonFor(e, 10, 10)
		spec, err := SpecFor(m, dist.DiagRight(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, e.alg, spec, total/svals[i])
	})
}

func runFig8() (*Series, error) {
	sources := []int{8, 15, 30}
	order := make([]string, len(sources))
	for i, sv := range sources {
		order[i] = fmt.Sprintf("s=%d", sv)
	}
	s := NewSeries("Figure 8 — p=120 Paragon, E(s), L=4K, Br_Lin across machine dimensions", "dimensions", "ms", order...)
	dims := [][2]int{{2, 60}, {3, 40}, {4, 30}, {5, 24}, {6, 20}, {8, 15}, {10, 12}}
	xs := make([]string, len(dims))
	for i, d := range dims {
		xs[i] = fmt.Sprintf("%dx%d", d[0], d[1])
	}
	return fillSeries(s, xs, len(sources), func(i, j int) (float64, error) {
		m := machine.Paragon(dims[i][0], dims[i][1])
		spec, err := SpecFor(m, dist.Equal(), sources[j])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, core.BrLin(), spec, 4096)
	})
}

// reposGain measures the percentage gain of repositioning: positive when
// Repos_xy_source beats Br_xy_source.
func reposGain(m *machine.Machine, d dist.Distribution, s, msgLen int) (float64, error) {
	spec, err := SpecFor(m, d, s)
	if err != nil {
		return 0, err
	}
	plain, err := MustMillis(m, core.BrXYSource(), spec, msgLen)
	if err != nil {
		return 0, err
	}
	repos, err := MustMillis(m, core.ReposXYSource(), spec, msgLen)
	if err != nil {
		return 0, err
	}
	return (plain - repos) / plain * 100, nil
}

func runFig9() (*Series, error) {
	dists := []dist.Distribution{dist.Equal(), dist.Band(), dist.Cross(), dist.Square()}
	order := make([]string, len(dists))
	for i, d := range dists {
		order[i] = d.Name()
	}
	s := NewSeries("Figure 9 — 16×16 Paragon, L=6K: Repos_xy_source gain over Br_xy_source", "sources", "% gain", order...)
	s.Notes = "positive = repositioning faster"
	svals := []int{16, 32, 50, 64, 96, 128, 160, 192}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(dists), func(i, j int) (float64, error) {
		return reposGain(machine.Paragon(16, 16), dists[j], svals[i], 6*1024)
	})
}

func runFig10() (*Series, error) {
	dists := []dist.Distribution{dist.Equal(), dist.Band(), dist.Cross(), dist.Square()}
	order := make([]string, len(dists))
	for i, d := range dists {
		order[i] = d.Name()
	}
	s := NewSeries("Figure 10 — 16×16 Paragon, s=75: Repos_xy_source gain over Br_xy_source", "msg bytes", "% gain", order...)
	s.Notes = "positive = repositioning faster"
	var lvals []int
	var xs []string
	for l := 256; l <= 16384; l *= 2 {
		lvals = append(lvals, l)
		xs = append(xs, fmt.Sprintf("%d", l))
	}
	return fillSeries(s, xs, len(dists), func(i, j int) (float64, error) {
		return reposGain(machine.Paragon(16, 16), dists[j], 75, lvals[i])
	})
}
