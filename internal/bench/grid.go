package bench

import "repro/internal/par"

// fillSeries computes the len(xs) × ncurves grid of figure cells and
// assembles it into s in x order. Cells are independent — each builds its
// own machine/network/engine — so they fan out across the shared bounded
// worker pool (par.Limit() at a time); the vals slice is indexed by cell,
// making the assembled series byte-identical to a serial run regardless
// of completion order. cell(i, j) returns the value of curve j at x
// position i and must not share mutable state across calls.
func fillSeries(s *Series, xs []string, ncurves int, cell func(i, j int) (float64, error)) (*Series, error) {
	vals := make([]float64, len(xs)*ncurves)
	err := par.ForEach(len(vals), func(k int) error {
		v, err := cell(k/ncurves, k%ncurves)
		if err != nil {
			return err
		}
		vals[k] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, x := range xs {
		s.AddX(x, vals[i*ncurves:(i+1)*ncurves]...)
	}
	return s, nil
}
