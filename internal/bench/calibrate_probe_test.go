package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
)

// TestProbeFig3 prints the Figure-3 sweep (10×10 Paragon, E(s), L=4K) for
// calibration inspection with -v. Shape assertions live in figures_test.go.
func TestProbeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	algs := []struct {
		label string
		alg   core.Algorithm
		mpi   bool
	}{
		{"Br_Lin", core.BrLin(), false},
		{"Br_xy_source", core.BrXYSource(), false},
		{"Br_xy_dim", core.BrXYDim(), false},
		{"2-Step", core.TwoStep(), false},
		{"PersAlltoAll", core.PersAlltoAll(), false},
		{"MPI_AllGather", core.TwoStep(), true},
		{"MPI_Alltoall", core.PersAlltoAll(), true},
	}
	fmt.Printf("%-14s", "s")
	for _, a := range algs {
		fmt.Printf("%15s", a.label)
	}
	fmt.Println()
	for _, s := range []int{1, 10, 30, 50, 70, 100} {
		fmt.Printf("%-14d", s)
		for _, a := range algs {
			m := machine.Paragon(10, 10)
			if a.mpi {
				m = machine.ParagonMPI(10, 10)
			}
			spec, err := SpecFor(m, dist.Equal(), s)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := MustMillis(m, a.alg, spec, 4096)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("%15.2f", ms)
		}
		fmt.Println()
	}
}

// TestProbeFig13 prints the T3D comparison (p=128, L=4K, E(s)).
func TestProbeFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"MPI_AllGather", core.TwoStep()},
		{"MPI_Alltoall", core.PersAlltoAll()},
		{"Br_Lin", core.BrLin()},
	}
	fmt.Printf("%-14s", "s")
	for _, a := range algs {
		fmt.Printf("%15s", a.label)
	}
	fmt.Println()
	for _, s := range []int{5, 10, 20, 40, 64, 96, 128} {
		fmt.Printf("%-14d", s)
		for _, a := range algs {
			m := machine.T3D(128)
			spec, err := SpecFor(m, dist.Equal(), s)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := MustMillis(m, a.alg, spec, 4096)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("%15.2f", ms)
		}
		fmt.Println()
	}
}

// TestProbeFig6 prints the distribution sweep (10×10 Paragon, L=2K, s=30).
func TestProbeFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_Lin", core.BrLin()},
		{"Br_xy_source", core.BrXYSource()},
		{"Br_xy_dim", core.BrXYDim()},
	}
	fmt.Printf("%-6s", "dist")
	for _, a := range algs {
		fmt.Printf("%15s", a.label)
	}
	fmt.Println()
	for _, d := range dist.All() {
		fmt.Printf("%-6s", d.Name())
		for _, a := range algs {
			m := machine.Paragon(10, 10)
			spec, err := SpecFor(m, d, 30)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := MustMillis(m, a.alg, spec, 2048)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("%15.2f", ms)
		}
		fmt.Println()
	}
}
