package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
)

func TestSeriesAddGetFormat(t *testing.T) {
	s := NewSeries("T", "x", "ms", "a", "b")
	s.AddX("1", 1.5, 2.5)
	s.AddX("2", 3.0, 4.0)
	if got := s.Get("a", 1); got != 3.0 {
		t.Errorf("Get(a,1) = %v", got)
	}
	if got := s.Get("b", 0); got != 2.5 {
		t.Errorf("Get(b,0) = %v", got)
	}
	out := s.Format()
	for _, want := range []string{"T", "a", "b", "1.500", "4.000", "[ms]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	s.Notes = "caveat"
	if !strings.Contains(s.Format(), "note: caveat") {
		t.Error("Notes not rendered")
	}
}

func TestSeriesPanicsOnMisuse(t *testing.T) {
	s := NewSeries("T", "x", "ms", "a")
	assertPanics(t, "short AddX", func() { s.AddX("1") })
	s.AddX("1", 1.0)
	assertPanics(t, "unknown curve", func() { s.Get("zzz", 0) })
}

func assertPanics(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", label)
		}
	}()
	fn()
}

func TestMeasureErrorsWrapped(t *testing.T) {
	m := machine.Paragon(2, 2)
	spec, err := SpecFor(m, dist.Equal(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MustMillis(m, core.BrLin(), spec, 128); err != nil {
		t.Fatalf("valid measurement failed: %v", err)
	}
	// A spec for the wrong machine size must fail with context.
	bad := spec
	bad.Rows = 3
	if _, err := MustMillis(m, core.BrLin(), bad, 128); err == nil {
		t.Fatal("mismatched spec accepted")
	}
}

func TestSpecForRejectsOversizedS(t *testing.T) {
	m := machine.Paragon(2, 2)
	if _, err := SpecFor(m, dist.Equal(), 5); err == nil {
		t.Fatal("s > p accepted")
	}
}

func TestMeasureVarLengths(t *testing.T) {
	m := machine.Paragon(2, 3)
	spec, err := SpecFor(m, dist.Equal(), 2)
	if err != nil {
		t.Fatal(err)
	}
	lengths := map[int]int{spec.Sources[0]: 100, spec.Sources[1]: 5000}
	res, err := MeasureVar(m, core.BrLin(), spec, lengths)
	if err != nil {
		t.Fatal(err)
	}
	// Every processor must end having received 5100 bytes worth of
	// payload at least once; the cheapest check is nonzero elapsed plus
	// total received volume ≥ p·(payload not held natively).
	if res.Elapsed <= 0 {
		t.Fatal("no time")
	}
	var recv int64
	for _, ps := range res.Procs {
		recv += ps.RecvBytes
	}
	if recv < 5100 {
		t.Fatalf("total received %d < one full bundle", recv)
	}
}
