package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/sim"
)

// MeasureVar is Measure with a per-source message length: lengths maps a
// source rank to its payload size (the paper's "different length
// messages" experiment of Section 5).
func MeasureVar(m *machine.Machine, alg core.Algorithm, spec core.Spec, lengths map[int]int) (*sim.Result, error) {
	nw, err := m.NewNetwork()
	if err != nil {
		return nil, err
	}
	payloads := make(map[int][]byte, len(lengths))
	for rank, n := range lengths {
		payloads[rank] = make([]byte, n)
	}
	return sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialMessage(spec, pr.Rank(), payloads[pr.Rank()])
		alg.Run(pr, spec, mine)
	}, sim.Options{})
}

func init() {
	register(Experiment{
		ID:    "ablation-indep",
		Title: "10×10 Paragon, E(s), L=2K: uncoordinated independent broadcasts vs Br_Lin vs PersAlltoAll",
		Paper: "Section 2: letting every source run its own 1-to-p broadcast without coordination 'leads to poor performance due to arising congestion and the large number of messages'.",
		Run:   runAblationIndep,
	})
	register(Experiment{
		ID:    "ablation-discovery",
		Title: "16×16 Paragon, Cr(s): cost of discovering the source positions before broadcasting",
		Paper: "Section 1 assumes every processor knows the source positions; this measures the log p flag-exchange needed when they do not.",
		Run:   runAblationDiscovery,
	})
	register(Experiment{
		ID:    "ablation-varlen",
		Title: "10×10 Paragon, Dr(20), total 80K: uniform vs skewed vs extreme per-source message lengths",
		Paper: "Section 5: 'using different length messages did not influence the performance of the algorithms significantly' — holds for moderate skew; the extreme one-heavy shape degenerates toward Figure 7's s=1 point.",
		Run:   runAblationVarlen,
	})
	register(Experiment{
		ID:    "ablation-hypercube",
		Title: "p=64: Br_Lin and PersAlltoAll on an 8×8 mesh vs a 6-cube (equal distribution, L=4K)",
		Paper: "Beyond the paper: Br_Lin's halving partners are one hop on a hypercube (the dimension-exchange pattern), removing the mesh's long-haul contention.",
		Run:   runAblationHypercube,
	})
}

func runAblationIndep() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Indep_1toP", core.Indep1toP()},
		{"Br_Lin", core.BrLin()},
		{"PersAlltoAll", core.PersAlltoAll()},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Ablation — uncoordinated broadcasts (10×10, E(s), L=2K)", "sources", "ms", order...)
	svals := []int{5, 15, 30, 60, 100}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.Paragon(10, 10)
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 2048)
	})
}

func runAblationDiscovery() (*Series, error) {
	s := NewSeries("Ablation — source discovery overhead (16×16, Cr(s), L=4K)", "sources", "ms",
		"Br_xy_source", "Discover+Br_xy_source", "overhead %")
	svals := []int{8, 32, 96, 192}
	rows := make([][2]float64, len(svals))
	if err := par.ForEach(len(svals), func(i int) error {
		m := machine.Paragon(16, 16)
		spec, err := SpecFor(m, dist.Cross(), svals[i])
		if err != nil {
			return err
		}
		plain, err := MustMillis(m, core.BrXYSource(), spec, 4096)
		if err != nil {
			return err
		}
		disc, err := MustMillis(m, core.WithDiscovery(core.BrXYSource()), spec, 4096)
		if err != nil {
			return err
		}
		rows[i] = [2]float64{plain, disc}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, sv := range svals {
		plain, disc := rows[i][0], rows[i][1]
		s.AddX(fmt.Sprintf("%d", sv), plain, disc, (disc-plain)/plain*100)
	}
	return s, nil
}

func runAblationVarlen() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_Lin", core.BrLin()},
		{"Br_xy_source", core.BrXYSource()},
	}
	const total = 80 * 1024
	const s = 20
	m := machine.Paragon(10, 10)
	spec, err := SpecFor(m, dist.DiagRight(), s)
	if err != nil {
		return nil, err
	}
	shapes := []struct {
		label   string
		lengths func() map[int]int
	}{
		{"uniform", func() map[int]int {
			out := map[int]int{}
			for _, r := range spec.Sources {
				out[r] = total / s
			}
			return out
		}},
		{"skewed-2x", func() map[int]int {
			// Half the sources carry 2/3 of the volume.
			out := map[int]int{}
			for i, r := range spec.Sources {
				if i%2 == 0 {
					out[r] = total * 2 / (3 * s / 2)
				} else {
					out[r] = total / (3 * s / 2)
				}
			}
			return out
		}},
		{"one-heavy", func() map[int]int {
			// One source carries 61K, the rest split the remainder.
			out := map[int]int{}
			rest := (total - 61*1024) / (s - 1)
			for i, r := range spec.Sources {
				if i == 0 {
					out[r] = 61 * 1024
				} else {
					out[r] = rest
				}
			}
			return out
		}},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	series := NewSeries("Ablation — per-source message lengths (10×10, Dr(20), total 80K)", "length shape", "ms", order...)
	xs := make([]string, len(shapes))
	for i, sh := range shapes {
		xs[i] = sh.label
	}
	return fillSeries(series, xs, len(algs), func(i, j int) (float64, error) {
		res, err := MeasureVar(m, algs[j].alg, spec, shapes[i].lengths())
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Milliseconds(), nil
	})
}

func runAblationHypercube() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_Lin", core.BrLin()},
		{"PersAlltoAll", core.PersAlltoAll()},
	}
	machines := []struct {
		label string
		m     *machine.Machine
	}{
		{"mesh8x8", machine.Paragon(8, 8)},
		{"6-cube", machine.HypercubeNX(6)},
	}
	order := []string{}
	for _, a := range algs {
		for _, mm := range machines {
			order = append(order, a.label+"/"+mm.label)
		}
	}
	s := NewSeries("Ablation — mesh vs hypercube at p=64 (E(s), L=4K)", "sources", "ms", order...)
	svals := []int{8, 16, 32, 64}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(order), func(i, j int) (float64, error) {
		a, mm := algs[j/len(machines)], machines[j%len(machines)]
		spec, err := SpecFor(mm.m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(mm.m, a.alg, spec, 4096)
	})
}

func init() {
	register(Experiment{
		ID:    "ablation-dims3d",
		Title: "T3D p=128, L=4K, E(s): Br_Lin vs 2-D vs 3-D dimension-by-dimension broadcast",
		Paper: "Beyond the paper: the d-dimensional generalization of Br_xy the paper leaves open (it avoided topology-tailored algorithms on the T3D because placement was out of user control).",
		Run:   runAblationDims3D,
	})
	register(Experiment{
		ID:    "ablation-calibration",
		Title: "10×10 Paragon, E(50), L=4K: software-cost calibration scaled ×0.5/×1/×2",
		Paper: "Robustness check: the paper's qualitative ranking (Br_* < PersAlltoAll < 2-Step) must not depend on the exact calibration constants.",
		Run:   runAblationCalibration,
	})
}

func runAblationDims3D() (*Series, error) {
	x, y, z := machine.TorusDims(128)
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_Lin", core.BrLin()},
		{"Br_dims2D", core.BrDims([]int{8, 16}, []int{1, 0})},
		{"Br_dims3D", core.BrDims([]int{x, y, z}, []int{2, 1, 0})},
		{"MPI_Alltoall", core.PersAlltoAll()},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Ablation — dimension-by-dimension broadcast on the T3D (p=128, E(s), L=4K)", "sources", "ms", order...)
	svals := []int{10, 40, 96, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.T3D(128)
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 4096)
	})
}

func runAblationCalibration() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_xy_source", core.BrXYSource()},
		{"PersAlltoAll", core.PersAlltoAll()},
		{"2-Step", core.TwoStep()},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Ablation — calibration robustness (10×10, E(50), L=4K)", "cost scale", "ms", order...)
	scales := []float64{0.5, 1, 2}
	xs := make([]string, len(scales))
	for i, scale := range scales {
		xs[i] = fmt.Sprintf("x%.1f", scale)
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		// Each cell builds (and scales) its own machine: Cfg is mutated.
		m := machine.Paragon(10, 10)
		m.Cfg = m.Cfg.Scale(scales[i])
		spec, err := SpecFor(m, dist.Equal(), 50)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 4096)
	})
}

func init() {
	register(Experiment{
		ID:    "ablation-adaptive",
		Title: "16×16 Paragon, L=6K, s=64: adaptive repositioning vs always vs never, all distributions",
		Paper: "Section 3 note: 'Our current implementations do not check whether the initial distribution is close to an ideal distribution and always reposition.' The adaptive variant skips the permutation when the growth-efficiency gain is small, tracking the better of the two.",
		Run:   runAblationAdaptive,
	})
}

func runAblationAdaptive() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"never", core.BrXYSource()},
		{"always", core.ReposXYSource()},
		{"adaptive", core.ReposAdaptive(core.BrXYSource(), 0.1)},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Ablation — adaptive repositioning (16×16, L=6K, s=64)", "distribution", "ms", order...)
	dists := dist.All()
	xs := make([]string, len(dists))
	for i, d := range dists {
		xs[i] = d.Name()
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.Paragon(16, 16)
		spec, err := SpecFor(m, dists[i], 64)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 6*1024)
	})
}
