package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/par"
)

func init() {
	register(Experiment{
		ID:    "fig2-growth",
		Title: "16×16 Paragon, Br_Lin, L=1K: active processors per iteration for E(64) vs E(60)",
		Paper: "Figure 2 discussion: for s = 2^l the first iterations do not increase the number of active processors, they only grow the message length; for s ≠ 2^l the active set grows faster and messages stay smaller. 'The behavior for s = 2^l occurs for other distributions and algorithms and generally results in poor performance.'",
		Run:   runFig2Growth,
	})
}

func runFig2Growth() (*Series, error) {
	s := NewSeries("Figure 2 growth — Br_Lin active processors per iteration (16×16, E(s), L=1K)",
		"iteration", "active processors", "E(64)", "E(60)")
	svals := []int{64, 60}
	cells := make([][]int, len(svals))
	if err := par.ForEach(len(svals), func(k int) error {
		m := machine.Paragon(16, 16)
		spec, err := SpecFor(m, dist.Equal(), svals[k])
		if err != nil {
			return err
		}
		res, err := Measure(m, core.BrLin(), spec, 1024)
		if err != nil {
			return err
		}
		cells[k] = metrics.ActiveProfile(res)
		return nil
	}); err != nil {
		return nil, err
	}
	profiles := map[string][]int{"E(64)": cells[0], "E(60)": cells[1]}
	n := len(profiles["E(64)"])
	if len(profiles["E(60)"]) > n {
		n = len(profiles["E(60)"])
	}
	at := func(p []int, i int) float64 {
		if i < len(p) {
			return float64(p[i])
		}
		return 0
	}
	for i := 0; i < n; i++ {
		s.AddX(fmt.Sprintf("%d", i+1), at(profiles["E(64)"], i), at(profiles["E(60)"], i))
	}
	return s, nil
}
