package bench

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/tcp"
)

func init() {
	register(Experiment{
		ID:    "figSession",
		Title: "Persistent TCP session vs one-shot setup: throughput of 100 back-to-back 1 KiB Br_Lin broadcasts at p=16",
		Paper: "Beyond the paper: the paper's NX runs amortize machine setup across a whole experiment campaign; this figure quantifies the same amortization for the TCP engine — a warm session mesh vs rebuilding listeners, the O(p²) connection mesh and reader pumps per broadcast.",
		Run:   runFigSession,
	})
}

// figSession workload parameters (the acceptance scenario: 100
// back-to-back 1 KiB broadcasts at p=16).
const (
	sessP       = 16
	sessRuns    = 100
	sessMsgLen  = 1024
	sessSources = 4
)

// sessionCheckpoints are the cumulative run counts at which both loops
// report throughput.
var sessionCheckpoints = []int{10, 25, 50, 100}

// sessionBody returns the per-rank broadcast body for the figSession
// workload: every source contributes a 1 KiB payload and every rank
// must leave with all s bundles.
func sessionBody(spec core.Spec, alg core.Algorithm) (func(c comm.Comm), func() error) {
	payload := make([]byte, sessMsgLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	got := make([]int, sessP)
	body := func(c comm.Comm) {
		out := alg.Run(c, spec, core.InitialMessage(spec, c.Rank(), payload))
		got[c.Rank()] = len(out.Parts)
	}
	check := func() error {
		for rank, n := range got {
			if n != sessSources {
				return fmt.Errorf("bench: figSession rank %d finished with %d parts, want %d", rank, n, sessSources)
			}
		}
		return nil
	}
	return body, check
}

// runFigSession times the same 100-broadcast workload twice — once
// paying full TCP engine setup per broadcast (the pre-session one-shot
// API), once over a single persistent machine — and reports throughput
// at growing run counts plus the session/one-shot speedup.
func runFigSession() (*Series, error) {
	d, err := dist.ByName("E")
	if err != nil {
		return nil, err
	}
	m := machine.Paragon(4, 4)
	spec, err := SpecFor(m, d, sessSources)
	if err != nil {
		return nil, err
	}
	alg := core.BrLin()
	opts := tcp.Options{RecvTimeout: 30 * time.Second}

	oneShot, err := timeSessionLoop(sessRuns, func() (func(fn func(*tcp.Proc)) (*tcp.Result, error), func() error, error) {
		return func(fn func(*tcp.Proc)) (*tcp.Result, error) {
			return tcp.RunOpts(sessP, opts, fn)
		}, func() error { return nil }, nil
	}, spec, alg)
	if err != nil {
		return nil, err
	}

	warm, err := timeSessionLoop(sessRuns, func() (func(fn func(*tcp.Proc)) (*tcp.Result, error), func() error, error) {
		mc, err := tcp.NewMachine(sessP, opts)
		if err != nil {
			return nil, nil, err
		}
		return func(fn func(*tcp.Proc)) (*tcp.Result, error) {
			return mc.Run(opts, fn)
		}, mc.Close, nil
	}, spec, alg)
	if err != nil {
		return nil, err
	}

	s := NewSeries(
		fmt.Sprintf("Persistent session vs one-shot setup, %d×%d ranks, %d B payloads, Br_Lin/E/s=%d",
			m.Rows, m.Cols, sessMsgLen, sessSources),
		"broadcasts completed", "broadcasts/s (speedup is a ratio)",
		"one-shot", "session", "speedup")
	s.Notes = "Wall-clock measurement, not a paper figure: absolute rates vary with the host, " +
		"but the speedup column is the point — the session amortizes listener setup, the O(p²) " +
		"dial mesh and reader-pump spawn across runs, so it must stay well above 1 (acceptance: ≥3×). " +
		"Session timing includes its one-time setup cost."
	for i, k := range sessionCheckpoints {
		os := float64(k) / oneShot[i].Seconds()
		ws := float64(k) / warm[i].Seconds()
		s.AddX(fmt.Sprintf("%d", k), os, ws, ws/os)
	}
	return s, nil
}

// timeSessionLoop runs the figSession workload n times through the
// runner produced by open, recording cumulative wall time at every
// checkpoint. The runner's one-time setup (for the warm loop, building
// the mesh) is included in the first checkpoint's time.
func timeSessionLoop(n int, open func() (func(fn func(*tcp.Proc)) (*tcp.Result, error), func() error, error), spec core.Spec, alg core.Algorithm) ([]time.Duration, error) {
	body, check := sessionBody(spec, alg)
	start := time.Now()
	run, closeFn, err := open()
	if err != nil {
		return nil, err
	}
	defer closeFn()
	var marks []time.Duration
	next := 0
	for i := 0; i < n; i++ {
		if _, err := run(func(pr *tcp.Proc) { body(pr) }); err != nil {
			return nil, fmt.Errorf("bench: figSession run %d: %w", i, err)
		}
		if err := check(); err != nil {
			return nil, err
		}
		if next < len(sessionCheckpoints) && i+1 == sessionCheckpoints[next] {
			marks = append(marks, time.Since(start))
			next++
		}
	}
	if err := closeFn(); err != nil {
		return nil, err
	}
	return marks, nil
}
