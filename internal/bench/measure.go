// Package bench defines one experiment per table and figure of the
// paper's evaluation (Section 5) and regenerates the same rows/series on
// the simulated machines. cmd/stpbench prints them; bench_test.go at the
// repository root exposes each as a Go benchmark; EXPERIMENTS.md records
// paper-vs-measured.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Measure runs one algorithm on one machine for one collective instance
// (the algorithm's CollectiveOf tag decides the initial bundles) and
// returns the simulated result. Ranks enter with length-only parts of
// msgLen bytes (the simulator prices sizes; no payload buffers are
// allocated).
func Measure(m *machine.Machine, alg core.Algorithm, spec core.Spec, msgLen int) (*sim.Result, error) {
	nw, err := m.NewNetwork()
	if err != nil {
		return nil, err
	}
	coll := core.CollectiveOf(alg)
	return sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialLenFor(coll, spec, pr.Rank(), msgLen)
		alg.Run(pr, spec, mine)
	}, sim.Options{})
}

// SpecFor builds the broadcast spec for a machine and distribution.
func SpecFor(m *machine.Machine, d interface {
	Sources(r, c, s int) ([]int, error)
}, s int) (core.Spec, error) {
	sources, err := d.Sources(m.Rows, m.Cols, s)
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: sources, Indexing: topology.SnakeRowMajor}, nil
}

// MustMillis runs Measure and returns the makespan in milliseconds,
// wrapping any error with experiment context.
func MustMillis(m *machine.Machine, alg core.Algorithm, spec core.Spec, msgLen int) (float64, error) {
	res, err := Measure(m, alg, spec, msgLen)
	if err != nil {
		return 0, fmt.Errorf("bench: %s on %s (s=%d L=%d): %w", alg.Name(), m.Name, spec.S(), msgLen, err)
	}
	return res.Elapsed.Milliseconds(), nil
}
