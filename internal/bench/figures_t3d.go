package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
)

// t3dDists is the distribution set of the T3D figures; the paper plots a
// handful of representative patterns plus its random-distribution
// conjecture.
func t3dDists() []dist.Distribution {
	return []dist.Distribution{dist.Equal(), dist.Column(), dist.DiagRight(), dist.Square(), dist.Random(7)}
}

func init() {
	register(Experiment{
		ID:    "fig11a",
		Title: "T3D MPI_AllGather, machine sweep p=16..256, s=32, total volume 128K",
		Paper: "Distribution matters little on small machines; on larger machines the equal distribution wins by ~28%.",
		Run:   runFig11a,
	})
	register(Experiment{
		ID:    "fig11b",
		Title: "T3D MPI_AllGather, p=128, L=16K, s=4..128, distribution sweep",
		Paper: "Equal distribution consistently best; AllGather deteriorates as s approaches p.",
		Run:   runFig11b,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "T3D MPI_AllGather, p=128, total volume fixed 128K, s=4..128",
		Paper: "More sources for the same volume is faster; the distribution matters mostly for s ≤ p/4, equal tends to win.",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13a",
		Title: "T3D p=128, L=4K, E(s), s=5..128: MPI_AllGather vs MPI_Alltoall vs Br_Lin",
		Paper: "MPI_Alltoall best (bandwidth-rich torus, no wait/combining); Br_Lin hurt by wait and combining cost; AllGather congested at P0.",
		Run:   runFig13a,
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "T3D p=128, L=4K, s=40, distribution sweep: three algorithms",
		Paper: "MPI_Alltoall performs well on every distribution; no ideal distribution identifiable on the T3D.",
		Run:   runFig13b,
	})
}

func runFig11a() (*Series, error) {
	dists := t3dDists()
	order := make([]string, len(dists))
	for i, d := range dists {
		order[i] = d.Name()
	}
	s := NewSeries("Figure 11a — T3D MPI_AllGather, s=32, total 128K, machine sweep", "processors", "ms", order...)
	const total = 128 * 1024
	pvals := []int{32, 64, 128, 256}
	xs := make([]string, len(pvals))
	for i, p := range pvals {
		xs[i] = fmt.Sprintf("%d", p)
	}
	return fillSeries(s, xs, len(dists), func(i, j int) (float64, error) {
		m := machine.T3D(pvals[i])
		spec, err := SpecFor(m, dists[j], 32)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, core.RDAllGather(), spec, total/32)
	})
}

func runFig11b() (*Series, error) {
	dists := t3dDists()
	order := make([]string, len(dists))
	for i, d := range dists {
		order[i] = d.Name()
	}
	s := NewSeries("Figure 11b — T3D MPI_AllGather, p=128, L=16K, source sweep", "sources", "ms", order...)
	svals := []int{4, 8, 16, 32, 64, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(dists), func(i, j int) (float64, error) {
		m := machine.T3D(128)
		spec, err := SpecFor(m, dists[j], svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, core.RDAllGather(), spec, 16*1024)
	})
}

func runFig12() (*Series, error) {
	dists := t3dDists()
	order := make([]string, len(dists))
	for i, d := range dists {
		order[i] = d.Name()
	}
	s := NewSeries("Figure 12 — T3D MPI_AllGather, p=128, total volume 128K, source sweep", "sources", "ms", order...)
	const total = 128 * 1024
	svals := []int{4, 8, 16, 32, 64, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(dists), func(i, j int) (float64, error) {
		m := machine.T3D(128)
		spec, err := SpecFor(m, dists[j], svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, core.RDAllGather(), spec, total/svals[i])
	})
}

// t3dThree is the algorithm set of Figure 13. MPI_AllGather is modelled
// as recursive doubling (see core.RDAllGather); Gather_Bcast shows what
// the paper's textual description of MPI_AllGather (the 2-Step pattern)
// would cost instead.
func t3dThree() []struct {
	label string
	alg   core.Algorithm
} {
	return []struct {
		label string
		alg   core.Algorithm
	}{
		{"MPI_AllGather", core.RDAllGather()},
		{"MPI_Alltoall", core.PersAlltoAll()},
		{"Br_Lin", core.BrLin()},
		{"Gather_Bcast", core.TwoStep()},
	}
}

func runFig13a() (*Series, error) {
	algs := t3dThree()
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Figure 13a — T3D p=128, L=4K, E(s), source sweep", "sources", "ms", order...)
	svals := []int{5, 10, 20, 40, 64, 96, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.T3D(128)
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 4096)
	})
}

func runFig13b() (*Series, error) {
	algs := t3dThree()
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Figure 13b — T3D p=128, L=4K, s=40, distribution sweep", "distribution", "ms", order...)
	dists := dist.All()
	xs := make([]string, len(dists))
	for i, d := range dists {
		xs[i] = d.Name()
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.T3D(128)
		spec, err := SpecFor(m, dists[i], 40)
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 4096)
	})
}
