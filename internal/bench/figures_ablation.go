package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/topology"
)

// The ablation experiments probe the design choices DESIGN.md calls out,
// beyond the paper's own figures: the partitioning-vs-repositioning claim
// of Section 5.2, snake vs row-major indexing for Br_Lin, wormhole vs
// store-and-forward switching, the T3D's randomized placement, and the
// paper's left-diagonal ideal versus the machine-exact halving ideal.

func init() {
	register(Experiment{
		ID:    "ablation-part",
		Title: "16×16 Paragon, L=6K, Sq(s): Br_xy_source vs Repos_xy_source vs Part_xy_source",
		Paper: "Section 5.2: partitioning hardly ever beats repositioning alone — the final inter-half permutation of large bundles dominates.",
		Run:   runAblationPart,
	})
	register(Experiment{
		ID:    "ablation-indexing",
		Title: "10×10 Paragon, L=2K, s=30: Br_Lin with snake vs row-major indexing",
		Paper: "Beyond the paper: the snake order keeps halving partners physically close; row-major pays longer routes.",
		Run:   runAblationIndexing,
	})
	register(Experiment{
		ID:    "ablation-switching",
		Title: "10×10 Paragon, E(30): wormhole vs store-and-forward pricing",
		Paper: "Beyond the paper: validates that the wormhole model, not store-and-forward, is what the algorithms' locality assumptions rely on.",
		Run:   runAblationSwitching,
	})
	register(Experiment{
		ID:    "ablation-placement",
		Title: "T3D p=128, L=4K, E(s): identity vs randomized virtual→physical placement",
		Paper: "Beyond the paper: quantifies how much the T3D's uncontrollable placement costs topology-aware Br_Lin.",
		Run:   runAblationPlacement,
	})
	register(Experiment{
		ID:    "ablation-ideal",
		Title: "16×16 Paragon, L=6K, Sq(s): Repos_Lin targets — paper's left diagonal vs machine-exact halving ideal",
		Paper: "Beyond the paper: the left diagonal is near-ideal for Br_Lin; the halving-derived placement is the exact optimum of the growth objective.",
		Run:   runAblationIdeal,
	})
}

func runAblationPart() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_xy_source", core.BrXYSource()},
		{"Repos_xy_source", core.ReposXYSource()},
		{"Part_xy_source", core.PartXYSource()},
	}
	order := make([]string, len(algs))
	for i, a := range algs {
		order[i] = a.label
	}
	s := NewSeries("Ablation — partitioning vs repositioning (16×16, L=6K, Sq(s))", "sources", "ms", order...)
	svals := []int{16, 32, 64, 96, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, len(algs), func(i, j int) (float64, error) {
		m := machine.Paragon(16, 16)
		spec, err := SpecFor(m, dist.Square(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j].alg, spec, 6*1024)
	})
}

func runAblationIndexing() (*Series, error) {
	s := NewSeries("Ablation — Br_Lin indexing (10×10, L=2K, s=30)", "distribution", "ms", "snake", "row-major")
	dists := dist.All()
	xs := make([]string, len(dists))
	for i, d := range dists {
		xs[i] = d.Name()
	}
	indexings := []topology.Indexing{topology.SnakeRowMajor, topology.RowMajor}
	return fillSeries(s, xs, len(indexings), func(i, j int) (float64, error) {
		m := machine.Paragon(10, 10)
		sources, err := dists[i].Sources(10, 10, 30)
		if err != nil {
			return 0, err
		}
		spec := core.Spec{Rows: 10, Cols: 10, Sources: sources, Indexing: indexings[j]}
		return MustMillis(m, core.BrLin(), spec, 2048)
	})
}

func runAblationSwitching() (*Series, error) {
	algs := []struct {
		label string
		alg   core.Algorithm
	}{
		{"Br_Lin", core.BrLin()},
		{"2-Step", core.TwoStep()},
		{"PersAlltoAll", core.PersAlltoAll()},
	}
	order := []string{}
	for _, a := range algs {
		order = append(order, a.label+"/wh", a.label+"/sf")
	}
	s := NewSeries("Ablation — switching model (10×10, E(s), L=4K)", "sources", "ms", order...)
	svals := []int{10, 30, 60, 100}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	models := []network.Model{network.Wormhole, network.StoreAndForward}
	return fillSeries(s, xs, len(order), func(i, j int) (float64, error) {
		// Each cell builds its own machine: Cfg.Switching is mutated.
		m := machine.Paragon(10, 10)
		m.Cfg.Switching = models[j%len(models)]
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, algs[j/len(models)].alg, spec, 4096)
	})
}

func runAblationPlacement() (*Series, error) {
	s := NewSeries("Ablation — T3D placement (p=128, L=4K, E(s), Br_Lin)", "sources", "ms", "dimension-ordered", "random")
	svals := []int{10, 40, 96, 128}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, 2, func(i, j int) (float64, error) {
		m := machine.T3D(128)
		if j == 1 {
			m = machine.T3DRandom(128, 1)
		}
		spec, err := SpecFor(m, dist.Equal(), svals[i])
		if err != nil {
			return 0, err
		}
		return MustMillis(m, core.BrLin(), spec, 4096)
	})
}

// reposTo runs Br_Lin after repositioning the sources to the target
// distribution — the generalized Repos_Lin used by the ideal-target
// ablation.
func reposTo(m *machine.Machine, from, to dist.Distribution, s, msgLen int) (float64, error) {
	spec, err := SpecFor(m, from, s)
	if err != nil {
		return 0, err
	}
	ideal, err := to.Sources(m.Rows, m.Cols, s)
	if err != nil {
		return 0, err
	}
	alg := core.ReposTo(core.BrLin(), ideal)
	return MustMillis(m, alg, spec, msgLen)
}

func runAblationIdeal() (*Series, error) {
	s := NewSeries("Ablation — Repos_Lin target (16×16, L=6K, Sq(s))", "sources", "ms", "Dl target", "IdealSnake target", "no repositioning")
	svals := []int{16, 48, 96, 160}
	xs := make([]string, len(svals))
	for i, sv := range svals {
		xs[i] = fmt.Sprintf("%d", sv)
	}
	return fillSeries(s, xs, 3, func(i, j int) (float64, error) {
		m := machine.Paragon(16, 16)
		switch j {
		case 0:
			return reposTo(m, dist.Square(), dist.DiagLeft(), svals[i], 6*1024)
		case 1:
			return reposTo(m, dist.Square(), dist.IdealSnake(), svals[i], 6*1024)
		default:
			spec, err := SpecFor(m, dist.Square(), svals[i])
			if err != nil {
				return 0, err
			}
			return MustMillis(m, core.BrLin(), spec, 6*1024)
		}
	})
}
