package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/plan"
)

func init() {
	register(Experiment{
		ID:    "figCollectives",
		Title: "Modern collective schedules vs the 1996 suite on the 64-PE T3D: circulant broadcast and Jung–Sakho torus all-to-all",
		Paper: "Beyond the paper: the circulant-graph broadcast (Träff, arXiv 2407.18004) and the dimension-ordered torus all-to-all (Jung–Sakho, arXiv 0909.1374) join the registry; on equal-spread sources and latency-bound chunks each must run within 10% of — and somewhere beat — the best pre-existing schedule, and Auto must find the winner.",
		Run:   runFigCollectives,
	})
}

// runFigCollectives measures, per cell, three curves on the 4×4×4 T3D:
// the planner's Auto choice for the cell's collective, the newcomer
// algorithm (Bcast_Circulant on the broadcast cells, A2A_JungSakho on
// the all-to-all cells), and the best pre-existing entry (the 1996
// suite for broadcast, the direct pairwise exchange for all-to-all).
// Broadcast cells use the equal distribution — the circulant schedule's
// holder intervals align with evenly spread sources — at latency- to
// moderately bandwidth-bound lengths; the all-to-all cells sweep the
// chunk sizes around the Jung–Sakho/pairwise crossover.
func runFigCollectives() (*Series, error) {
	m := machine.T3D(64)
	s := NewSeries("Modern collectives vs incumbents (T3D 64)",
		"collective/cell", "ms", "Auto", "newcomer", "incumbent-best")
	type cell struct {
		label    string
		coll     core.Collective
		newcomer string
		spec     core.Spec
		distName string
		l        int
	}
	var cells []cell
	for _, sv := range []int{4, 8, 64} {
		for _, l := range []int{256, 1024} {
			spec, err := SpecFor(m, dist.Equal(), sv)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{
				label:    fmt.Sprintf("Bcast/E/%d/%d", sv, l),
				coll:     core.Broadcast,
				newcomer: "Bcast_Circulant",
				spec:     spec,
				distName: dist.Equal().Name(),
				l:        l,
			})
		}
	}
	for _, l := range []int{16, 64, 256} {
		cells = append(cells, cell{
			label:    fmt.Sprintf("A2A/%d", l),
			coll:     core.AllToAll,
			newcomer: "A2A_JungSakho",
			spec:     core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: core.AllRanksSources(m.P())},
			l:        l,
		})
	}
	rows := make([][3]float64, len(cells))
	if err := par.ForEach(len(cells), func(k int) error {
		c := cells[k]
		// One planner (and cache) per cell: the shared MemCache is not
		// built for concurrent writers, and cells never share plan keys.
		planner := plan.New(plan.Options{Cache: plan.NewMemCache(0)})
		dec, err := planner.Decide(context.Background(), m, plan.Request{
			Spec: c.spec, Collective: c.coll, MsgLen: c.l, DistName: c.distName,
		})
		if err != nil {
			return err
		}
		var newcomer float64
		incumbent := math.Inf(1)
		for _, a := range core.RegistryFor(c.coll) {
			v, err := MustMillis(m, a, c.spec, c.l)
			if err != nil {
				return err
			}
			if a.Name() == c.newcomer {
				newcomer = v
				continue
			}
			if v < incumbent {
				incumbent = v
			}
		}
		rows[k] = [3]float64{dec.ElapsedMs, newcomer, incumbent}
		return nil
	}); err != nil {
		return nil, err
	}
	for k, c := range cells {
		s.AddX(c.label, rows[k][0], rows[k][1], rows[k][2])
	}
	return s, nil
}
