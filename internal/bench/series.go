package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Series is the data behind one figure: a labelled x-axis and one y-vector
// per named curve, in milliseconds (or percent for the repositioning
// figures).
type Series struct {
	Title   string
	XAxis   string
	YAxis   string
	XLabels []string
	// Order lists curve names in presentation order.
	Order []string
	// Y maps curve name to one value per x position.
	Y map[string][]float64
	// Notes carries figure-specific commentary (paper formulas, caveats).
	Notes string
}

// NewSeries allocates a series with the given axes and curve order.
func NewSeries(title, xAxis, yAxis string, order ...string) *Series {
	return &Series{Title: title, XAxis: xAxis, YAxis: yAxis, Order: order, Y: make(map[string][]float64)}
}

// AddX appends an x position and one value per ordered curve. vals must
// follow Order.
func (s *Series) AddX(label string, vals ...float64) {
	if len(vals) != len(s.Order) {
		panic(fmt.Sprintf("bench: %d values for %d curves", len(vals), len(s.Order)))
	}
	s.XLabels = append(s.XLabels, label)
	for i, name := range s.Order {
		s.Y[name] = append(s.Y[name], vals[i])
	}
}

// Get returns the value of a curve at an x index.
func (s *Series) Get(curve string, i int) float64 {
	ys, ok := s.Y[curve]
	if !ok {
		panic(fmt.Sprintf("bench: unknown curve %q (have %v)", curve, s.Order))
	}
	return ys[i]
}

// Format renders the series as an aligned text table, the form cmd/stpbench
// prints and EXPERIMENTS.md records.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-14s", s.XAxis)
	for _, name := range s.Order {
		fmt.Fprintf(&b, "%16s", name)
	}
	fmt.Fprintf(&b, "   [%s]\n", s.YAxis)
	for i, x := range s.XLabels {
		fmt.Fprintf(&b, "%-14s", x)
		for _, name := range s.Order {
			fmt.Fprintf(&b, "%16.3f", s.Y[name][i])
		}
		b.WriteByte('\n')
	}
	if s.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", s.Notes)
	}
	return b.String()
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the figure identifier ("fig3", "fig13a", "ablation-part").
	ID string
	// Title summarizes the workload.
	Title string
	// Paper states what the original figure showed, for EXPERIMENTS.md.
	Paper string
	// Run produces the series.
	Run func() (*Series, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Register adds an experiment from outside the package. The figure CLIs
// discover experiments only through the registry, so a package whose
// runner cannot live here without an import cycle (internal/daemon's
// figDaemon drives the facade's Session API) registers at init instead;
// its experiment then appears exactly when that package is linked in.
func Register(e Experiment) { register(e) }

// Experiments returns every defined experiment, sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
