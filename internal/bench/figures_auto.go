package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/plan"
)

func init() {
	register(Experiment{
		ID:    "figAuto",
		Title: "Auto planner vs best fixed algorithm vs always-Repos_xy_source, full distribution grid on 10×10 Paragon and 256-PE T3D",
		Paper: "Beyond the paper: Section 5's conclusion is that no single algorithm wins everywhere; the planner operationalizes the paper's decision surface and must track the per-cell best within 10%.",
		Run:   runFigAuto,
	})
}

// runFigAuto sweeps every (distribution, s, L) cell on the two reference
// machines and records three curves: the planner's choice, the best fixed
// algorithm (min over the registry), and the fixed policy of always
// running Repos_xy_source.
func runFigAuto() (*Series, error) {
	grid := []struct {
		tag string
		m   *machine.Machine
	}{
		{"P", machine.Paragon(10, 10)},
		{"T", machine.T3D(256)},
	}
	repos := core.ReposXYSource()
	s := NewSeries("Auto planner vs fixed policies (P=Paragon 10×10, T=T3D 256)",
		"machine/dist/s/L", "ms", "Auto", "best-fixed", "Repos_xy_source")
	type cell struct {
		g struct {
			tag string
			m   *machine.Machine
		}
		d  dist.Distribution
		sv int
		l  int
	}
	var cellsIn []cell
	for _, g := range grid {
		for _, d := range dist.All() {
			for _, sv := range []int{10, 64} {
				for _, l := range []int{1024, 16384} {
					cellsIn = append(cellsIn, cell{g: g, d: d, sv: sv, l: l})
				}
			}
		}
	}
	rows := make([][3]float64, len(cellsIn))
	if err := par.ForEach(len(cellsIn), func(k int) error {
		c := cellsIn[k]
		spec, err := SpecFor(c.g.m, c.d, c.sv)
		if err != nil {
			return err
		}
		// One planner (and cache) per cell: the shared MemCache is not
		// built for concurrent writers, and cells never share plan keys.
		planner := plan.New(plan.Options{Cache: plan.NewMemCache(0)})
		dec, err := planner.Decide(context.Background(), c.g.m, plan.Request{
			Spec: spec, MsgLen: c.l, DistName: c.d.Name(),
		})
		if err != nil {
			return err
		}
		best := math.Inf(1)
		for _, a := range core.Registry() {
			v, err := MustMillis(c.g.m, a, spec, c.l)
			if err != nil {
				return err
			}
			if v < best {
				best = v
			}
		}
		rv, err := MustMillis(c.g.m, repos, spec, c.l)
		if err != nil {
			return err
		}
		rows[k] = [3]float64{dec.ElapsedMs, best, rv}
		return nil
	}); err != nil {
		return nil, err
	}
	for k, c := range cellsIn {
		s.AddX(fmt.Sprintf("%s/%s/%d/%dK", c.g.tag, c.d.Name(), c.sv, c.l/1024),
			rows[k][0], rows[k][1], rows[k][2])
	}
	return s, nil
}
