package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/plan"
)

func init() {
	register(Experiment{
		ID:    "figAuto",
		Title: "Auto planner vs best fixed algorithm vs always-Repos_xy_source, full distribution grid on 10×10 Paragon and 256-PE T3D",
		Paper: "Beyond the paper: Section 5's conclusion is that no single algorithm wins everywhere; the planner operationalizes the paper's decision surface and must track the per-cell best within 10%.",
		Run:   runFigAuto,
	})
}

// runFigAuto sweeps every (distribution, s, L) cell on the two reference
// machines and records three curves: the planner's choice, the best fixed
// algorithm (min over the registry), and the fixed policy of always
// running Repos_xy_source.
func runFigAuto() (*Series, error) {
	grid := []struct {
		tag string
		m   *machine.Machine
	}{
		{"P", machine.Paragon(10, 10)},
		{"T", machine.T3D(256)},
	}
	planner := plan.New(plan.Options{Cache: plan.NewMemCache(0)})
	repos := core.ReposXYSource()
	s := NewSeries("Auto planner vs fixed policies (P=Paragon 10×10, T=T3D 256)",
		"machine/dist/s/L", "ms", "Auto", "best-fixed", "Repos_xy_source")
	for _, g := range grid {
		for _, d := range dist.All() {
			for _, sv := range []int{10, 64} {
				for _, l := range []int{1024, 16384} {
					spec, err := SpecFor(g.m, d, sv)
					if err != nil {
						return nil, err
					}
					dec, err := planner.Decide(context.Background(), g.m, plan.Request{
						Spec: spec, MsgLen: l, DistName: d.Name(),
					})
					if err != nil {
						return nil, err
					}
					best := math.Inf(1)
					for _, a := range core.Registry() {
						v, err := MustMillis(g.m, a, spec, l)
						if err != nil {
							return nil, err
						}
						if v < best {
							best = v
						}
					}
					rv, err := MustMillis(g.m, repos, spec, l)
					if err != nil {
						return nil, err
					}
					s.AddX(fmt.Sprintf("%s/%s/%d/%dK", g.tag, d.Name(), sv, l/1024),
						dec.ElapsedMs, best, rv)
				}
			}
		}
	}
	return s, nil
}
