package bench

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/par"
)

// TestEveryAlgorithmDeterministic runs each registered algorithm twice on
// p=64 and requires bit-identical results — elapsed time, per-processor
// stats, iteration breakdowns and network counters. The O(log p)
// scheduler must stay conservative: identical inputs, identical
// simulated execution.
func TestEveryAlgorithmDeterministic(t *testing.T) {
	m := machine.Paragon(8, 8)
	spec, err := SpecFor(m, dist.Equal(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range core.Registry() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			first, err := Measure(m, alg, spec, 2048)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Measure(m, alg, spec, 2048)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("two runs of %s differ:\n first: %+v\nsecond: %+v", alg.Name(), first, second)
			}
		})
	}
}

// TestEveryCollectiveDeterministic is the p=64 determinism gate for the
// non-broadcast registry entries: every collective's algorithms run
// twice on the 4×4×4-torus T3D and the 8×8 Paragon with per-collective
// specs, requiring bit-identical simulated results.
func TestEveryCollectiveDeterministic(t *testing.T) {
	machines := []*machine.Machine{machine.Paragon(8, 8), machine.T3D(64)}
	for _, m := range machines {
		specFor := func(coll core.Collective) (core.Spec, error) {
			switch coll {
			case core.Reduce, core.AllReduce:
				return SpecFor(m, dist.Equal(), 16)
			case core.Scatter:
				return core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: []int{0}}, nil
			default:
				return core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: core.AllRanksSources(m.P())}, nil
			}
		}
		for _, coll := range core.Collectives() {
			if coll == core.Broadcast {
				continue // covered by TestEveryAlgorithmDeterministic
			}
			spec, err := specFor(coll)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range core.RegistryFor(coll) {
				alg := alg
				t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
					first, err := Measure(m, alg, spec, 2048)
					if err != nil {
						t.Fatal(err)
					}
					second, err := Measure(m, alg, spec, 2048)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(first, second) {
						t.Errorf("two runs of %s differ", alg.Name())
					}
				})
			}
		}
	}
}

// TestSchedulerMatchesSeedTimings pins the simulated clocks the seed's
// O(p) ready-scan scheduler produced on a spread of machines, algorithms
// and distributions. The heap scheduler orders runnable processors by
// (clock, rank) — exactly the scan's tie-break — so every timing must
// reproduce to the nanosecond. A drift here means the rewrite changed
// simulated semantics, not just speed.
func TestSchedulerMatchesSeedTimings(t *testing.T) {
	fixtures := []struct {
		m          *machine.Machine
		alg, dist  string
		s, msgLen  int
		elapsed    int64 // Result.Elapsed in ns
		sumFinish  int64 // sum over procs of Finish
		sumWaiting int64 // sum over procs of WaitTime
	}{
		{machine.Paragon(8, 8), "Br_Lin", "E", 16, 2048, 2793494, 165112368, 70780080},
		{machine.Paragon(10, 10), "Br_xy_source", "Cr", 30, 4096, 9575679, 794242490, 346348650},
		{machine.Paragon(16, 16), "PersAlltoAll", "Dr", 64, 1024, 12103603, 3071733438, 1894555838},
		{machine.T3D(128), "RD_AllGather", "E", 32, 4096, 6630102, 691213132, 179265100},
		{machine.T3D(64), "2-Step", "Sq", 16, 8192, 11553829, 564874824, 498466744},
		{machine.Paragon(16, 16), "Repos_xy_source", "Sq", 75, 6144, 21648828, 5270015707, 1086882379},
	}
	dists := map[string]dist.Distribution{
		"E":  dist.Equal(),
		"Cr": dist.Cross(),
		"Dr": dist.DiagRight(),
		"Sq": dist.Square(),
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.m.Name+"/"+fx.alg+"/"+fx.dist, func(t *testing.T) {
			alg, err := core.ByName(fx.alg)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := SpecFor(fx.m, dists[fx.dist], fx.s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Measure(fx.m, alg, spec, fx.msgLen)
			if err != nil {
				t.Fatal(err)
			}
			var sumFinish, sumWait int64
			for _, pr := range res.Procs {
				sumFinish += int64(pr.Finish)
				sumWait += int64(pr.WaitTime)
			}
			if int64(res.Elapsed) != fx.elapsed {
				t.Errorf("Elapsed = %d ns, seed scheduler produced %d", int64(res.Elapsed), fx.elapsed)
			}
			if sumFinish != fx.sumFinish {
				t.Errorf("sum(Finish) = %d, seed scheduler produced %d", sumFinish, fx.sumFinish)
			}
			if sumWait != fx.sumWaiting {
				t.Errorf("sum(WaitTime) = %d, seed scheduler produced %d", sumWait, fx.sumWaiting)
			}
		})
	}
}

// TestSerialAndParallelHarnessIdentical runs the same experiment grid
// with the worker pool pinned to 1 and to 4 and requires byte-identical
// formatted output — the parallel harness's core guarantee.
func TestSerialAndParallelHarnessIdentical(t *testing.T) {
	render := func(limit int) string {
		prev := par.SetLimit(limit)
		defer par.SetLimit(prev)
		e, err := ByID("ablation-indexing")
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s.Format()
	}
	serial := render(1)
	parallel4 := render(4)
	if serial != parallel4 {
		t.Errorf("parallel output differs from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel4)
	}
}
