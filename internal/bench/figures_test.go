package bench

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

// Each figure's series is computed once and shared across shape tests.
var (
	figOnce  sync.Once
	figData  map[string]*Series
	figError error
)

func figures(t *testing.T) map[string]*Series {
	t.Helper()
	figOnce.Do(func() {
		figData = make(map[string]*Series)
		for _, e := range Experiments() {
			s, err := e.Run()
			if err != nil {
				figError = err
				return
			}
			figData[e.ID] = s
		}
	})
	if figError != nil {
		t.Fatal(figError)
	}
	return figData
}

// last returns a curve's value at the final x position.
func last(s *Series, curve string) float64 { return s.Get(curve, len(s.XLabels)-1) }

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-adaptive", "ablation-calibration", "ablation-dims3d", "ablation-discovery", "ablation-hypercube",
		"ablation-ideal", "ablation-indep",
		"ablation-indexing", "ablation-part", "ablation-placement", "ablation-switching",
		"ablation-varlen",
		"fig10", "fig11a", "fig11b", "fig12", "fig13a", "fig13b",
		"fig2", "fig2-growth", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"figAuto", "figCollectives", "figSession", "figSparseMesh", "figTCPHotpath",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s missing title/paper note", e.ID)
		}
	}
	if _, err := ByID("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestFig3Shape — Paragon: Br_* lowest and near-identical, linear in s;
// 2-Step and PersAlltoAll poor; MPI variants worse than NX.
func TestFig3Shape(t *testing.T) {
	s := figures(t)["fig3"]
	// At every s ≥ 10, each Br curve beats 2-Step, and beats PersAlltoAll
	// with a 10% tolerance near s=p where the personalized exchange's
	// bandwidth efficiency catches up in the contention model.
	for i := 1; i < len(s.XLabels); i++ {
		for _, br := range []string{"Br_Lin", "Br_xy_source", "Br_xy_dim"} {
			if s.Get(br, i) >= s.Get("2-Step", i) {
				t.Errorf("s=%s: %s (%.2f) not below 2-Step (%.2f)", s.XLabels[i], br, s.Get(br, i), s.Get("2-Step", i))
			}
			if s.Get(br, i) >= 1.1*s.Get("PersAlltoAll", i) {
				t.Errorf("s=%s: %s (%.2f) not below 1.1× PersAlltoAll (%.2f)", s.XLabels[i], br, s.Get(br, i), s.Get("PersAlltoAll", i))
			}
		}
	}
	// The three Br curves stay within 40% of each other at the endpoint.
	a, b := last(s, "Br_xy_source"), last(s, "Br_Lin")
	if b > 1.4*a {
		t.Errorf("Br_Lin (%.2f) more than 40%% above Br_xy_source (%.2f)", b, a)
	}
	// Roughly linear growth in s for Br_xy_source: time(100) within a
	// factor 2 of 10×(time(10)−t0)+t0 is far too strict; instead require
	// monotone growth and super-5× total increase.
	if last(s, "Br_xy_source") < 5*s.Get("Br_xy_source", 1) {
		t.Errorf("Br_xy_source growth too flat: %.2f vs %.2f", last(s, "Br_xy_source"), s.Get("Br_xy_source", 1))
	}
	// MPI variants worse than (or equal to) their NX originals at the
	// endpoint within simulation noise.
	if last(s, "MPI_AllGather") <= last(s, "2-Step")*0.99 {
		t.Errorf("MPI_AllGather (%.2f) cheaper than NX 2-Step (%.2f)", last(s, "MPI_AllGather"), last(s, "2-Step"))
	}
}

// TestFig4Shape — flat below ~512B, linear after; baselines poor at all L.
func TestFig4Shape(t *testing.T) {
	s := figures(t)["fig4"]
	// Flat region: 32B → 512B grows less than 2.5× for Br_xy_source.
	if g := s.Get("Br_xy_source", 4) / s.Get("Br_xy_source", 0); g > 2.5 {
		t.Errorf("Br_xy_source small-L growth %.2f× too steep", g)
	}
	// Linear region: 8K → 16K roughly doubles (within [1.5, 2.5]).
	if g := s.Get("Br_xy_source", 9) / s.Get("Br_xy_source", 8); g < 1.5 || g > 2.5 {
		t.Errorf("Br_xy_source large-L doubling factor %.2f", g)
	}
	// PersAlltoAll nearly flat to 1K: ≤ 1.6× from 32B to 1K.
	if g := s.Get("PersAlltoAll", 5) / s.Get("PersAlltoAll", 0); g > 1.6 {
		t.Errorf("PersAlltoAll flat region grew %.2f×", g)
	}
	// Baselines above Br_* at every L ≥ 512.
	for i := 4; i < len(s.XLabels); i++ {
		if s.Get("2-Step", i) <= s.Get("Br_xy_source", i) {
			t.Errorf("L=%s: 2-Step (%.2f) not above Br_xy_source (%.2f)", s.XLabels[i], s.Get("2-Step", i), s.Get("Br_xy_source", i))
		}
	}
}

// TestFig5Shape — PersAlltoAll competitive on tiny machines, degrading on
// large ones.
func TestFig5Shape(t *testing.T) {
	s := figures(t)["fig5"]
	// p=4: PersAlltoAll within 20% of the best curve.
	best := s.Get("Br_xy_source", 0)
	for _, name := range s.Order {
		if v := s.Get(name, 0); v < best {
			best = v
		}
	}
	if s.Get("PersAlltoAll", 0) > 1.2*best {
		t.Errorf("p=4: PersAlltoAll (%.3f) not competitive with best (%.3f)", s.Get("PersAlltoAll", 0), best)
	}
	// p=256: PersAlltoAll at least 3× the best Br curve.
	if last(s, "PersAlltoAll") < 3*last(s, "Br_xy_source") {
		t.Errorf("p=256: PersAlltoAll (%.3f) did not degrade vs Br_xy_source (%.3f)", last(s, "PersAlltoAll"), last(s, "Br_xy_source"))
	}
}

// TestFig6Shape — distribution effects on the Paragon.
func TestFig6Shape(t *testing.T) {
	s := figures(t)["fig6"]
	idx := func(name string) int {
		for i, x := range s.XLabels {
			if x == name {
				return i
			}
		}
		t.Fatalf("distribution %s missing", name)
		return -1
	}
	// Cross costs Br_xy_source noticeably more than the equal
	// distribution (the paper's hard pattern).
	if s.Get("Br_xy_source", idx("Cr")) < 1.2*s.Get("Br_xy_source", idx("E")) {
		t.Errorf("Br_xy_source: Cr (%.2f) not ≥1.2× E (%.2f)", s.Get("Br_xy_source", idx("Cr")), s.Get("Br_xy_source", idx("E")))
	}
	// Br_Lin handles the cross best of the three algorithms.
	cr := idx("Cr")
	if s.Get("Br_Lin", cr) >= s.Get("Br_xy_source", cr) || s.Get("Br_Lin", cr) >= s.Get("Br_xy_dim", cr) {
		t.Errorf("Br_Lin (%.2f) not best on Cr (xy_source %.2f, xy_dim %.2f)",
			s.Get("Br_Lin", cr), s.Get("Br_xy_source", cr), s.Get("Br_xy_dim", cr))
	}
	// Br_xy_dim jumps on the row distribution (wrong first dimension).
	r := idx("R")
	if s.Get("Br_xy_dim", r) < 1.25*s.Get("Br_xy_source", r) {
		t.Errorf("Br_xy_dim on R (%.2f) not ≥1.25× Br_xy_source (%.2f)", s.Get("Br_xy_dim", r), s.Get("Br_xy_source", r))
	}
	// Row and column are (near-)ideal for Br_xy_source: within 10% of E.
	for _, d := range []string{"R", "C"} {
		if s.Get("Br_xy_source", idx(d)) > 1.1*s.Get("Br_xy_source", idx("E")) {
			t.Errorf("Br_xy_source on %s (%.2f) not near E (%.2f)", d, s.Get("Br_xy_source", idx(d)), s.Get("Br_xy_source", idx("E")))
		}
	}
}

// TestFig7Shape — fixed total volume: more sources is faster.
func TestFig7Shape(t *testing.T) {
	s := figures(t)["fig7"]
	// s=40 at least 1.25× faster than s=5 for Br_xy_source (paper: 11.4
	// → 7.3 ms ≈ 1.56×).
	if g := s.Get("Br_xy_source", 0) / s.Get("Br_xy_source", 3); g < 1.25 {
		t.Errorf("fixed-volume speedup s=5→40 only %.2f×", g)
	}
	// Monotone non-increasing within 5% tolerance for Br_xy_source.
	for i := 1; i < len(s.XLabels); i++ {
		if s.Get("Br_xy_source", i) > 1.05*s.Get("Br_xy_source", i-1) {
			t.Errorf("fixed-volume time increased at s=%s: %.2f → %.2f", s.XLabels[i], s.Get("Br_xy_source", i-1), s.Get("Br_xy_source", i))
		}
	}
}

// TestFig8Shape — machine dimensions interact with the distribution: the
// s=15 beats s=8 anomaly on some 120-processor shapes, and dimension
// spread grows with s.
func TestFig8Shape(t *testing.T) {
	s := figures(t)["fig8"]
	anomaly := false
	for i := range s.XLabels {
		if s.Get("s=15", i) < s.Get("s=8", i) {
			anomaly = true
		}
	}
	if !anomaly {
		t.Error("s=15 never beats s=8 across dimensions (paper's anomaly missing)")
	}
	spread := func(curve string) float64 {
		lo, hi := s.Get(curve, 0), s.Get(curve, 0)
		for i := range s.XLabels {
			v := s.Get(curve, i)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	if spread("s=30") <= spread("s=8") {
		t.Errorf("dimension spread for s=30 (%.2f) not larger than for s=8 (%.2f)", spread("s=30"), spread("s=8"))
	}
}

// TestFig9Shape — repositioning gains: large for cross, bounded loss for
// band, tapering with s.
func TestFig9Shape(t *testing.T) {
	s := figures(t)["fig9"]
	// Cross gains by at least 10% somewhere, and stays positive until the
	// source count gets large.
	maxCr := s.Get("Cr", 0)
	for i := range s.XLabels {
		if v := s.Get("Cr", i); v > maxCr {
			maxCr = v
		}
	}
	if maxCr < 10 {
		t.Errorf("max cross gain %.1f%% below 10%%", maxCr)
	}
	// Band never loses more than ~20% (paper: up to 6.5%; our permutation
	// overhead weighs more at small s).
	for i := range s.XLabels {
		if v := s.Get("B", i); v < -20 {
			t.Errorf("band loss %.1f%% at s=%s exceeds bound", v, s.XLabels[i])
		}
	}
	// Gain tapers: the cross gain at the largest s is below its maximum.
	if last(s, "Cr") >= maxCr {
		t.Errorf("cross gain did not taper: last %.1f%% vs max %.1f%%", last(s, "Cr"), maxCr)
	}
}

// TestFig10Shape — repositioning benefit rises with message length for
// every distribution, pays earliest for the cross.
func TestFig10Shape(t *testing.T) {
	s := figures(t)["fig10"]
	for _, d := range s.Order {
		if last(s, d) <= s.Get(d, 0) {
			t.Errorf("%s: repositioning benefit did not rise with L (%.1f%% → %.1f%%)", d, s.Get(d, 0), last(s, d))
		}
	}
	// At 1K, only the cross is clearly positive.
	i1k := 2 // 256, 512, 1024
	if s.Get("Cr", i1k) < 0 {
		t.Errorf("cross gain at 1K is negative: %.1f%%", s.Get("Cr", i1k))
	}
	if s.Get("E", i1k) > s.Get("Cr", i1k) {
		t.Errorf("equal gain (%.1f%%) above cross gain (%.1f%%) at 1K", s.Get("E", i1k), s.Get("Cr", i1k))
	}
}

// TestFig11Shape — T3D AllGather: distribution effects small on small
// machines, square block worst on large ones; deterioration as s→p.
func TestFig11Shape(t *testing.T) {
	a := figures(t)["fig11a"]
	// p=32: all distributions within 5%.
	for _, d := range a.Order {
		if g := a.Get(d, 0) / a.Get("E", 0); g > 1.05 || g < 0.95 {
			t.Errorf("p=32: %s at %.2f× of E", d, g)
		}
	}
	// p=256: Sq at least 1.3× the equal distribution.
	if g := last(a, "Sq") / last(a, "E"); g < 1.3 {
		t.Errorf("p=256: Sq only %.2f× of E", g)
	}
	b := figures(t)["fig11b"]
	// Deterioration: monotone growth in s for E.
	for i := 1; i < len(b.XLabels); i++ {
		if b.Get("E", i) <= b.Get("E", i-1) {
			t.Errorf("fig11b not deteriorating at s=%s", b.XLabels[i])
		}
	}
	// E best or near-best at every s (the diagonal is an equally uniform
	// rank-space spread, so it may edge E out by a few percent), and the
	// square block clearly worse than E at moderate s.
	for i := range b.XLabels {
		for _, d := range b.Order {
			if b.Get(d, i) < 0.85*b.Get("E", i) {
				t.Errorf("fig11b s=%s: %s (%.2f) clearly beats E (%.2f)", b.XLabels[i], d, b.Get(d, i), b.Get("E", i))
			}
		}
	}
	if b.Get("Sq", 2) < 1.3*b.Get("E", 2) {
		t.Errorf("fig11b s=16: Sq (%.2f) not ≥1.3× E (%.2f)", b.Get("Sq", 2), b.Get("E", 2))
	}
}

// TestFig12Shape — fixed volume on the T3D: more sources is faster;
// distribution matters mostly below p/4.
func TestFig12Shape(t *testing.T) {
	s := figures(t)["fig12"]
	if last(s, "E") >= s.Get("E", 0) {
		t.Errorf("more sources not faster: s=4 %.2f vs s=128 %.2f", s.Get("E", 0), last(s, "E"))
	}
	// Distribution spread at s=4 exceeds the spread at s=128.
	spreadAt := func(i int) float64 {
		lo, hi := s.Get(s.Order[0], i), s.Get(s.Order[0], i)
		for _, d := range s.Order {
			v := s.Get(d, i)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	if spreadAt(0) <= spreadAt(len(s.XLabels)-1)+0.01 {
		t.Errorf("distribution spread did not shrink: s=4 %.2f vs s=128 %.2f", spreadAt(0), spreadAt(len(s.XLabels)-1))
	}
}

// TestFig13Shape — the T3D inversion: MPI_Alltoall best for moderate and
// large s; Br_Lin above Alltoall (wait + combining); the gather+broadcast
// reading of AllGather far worse than the recursive-doubling model.
func TestFig13Shape(t *testing.T) {
	a := figures(t)["fig13a"]
	for i, x := range a.XLabels {
		if x == "40" || x == "64" || x == "96" || x == "128" {
			if a.Get("MPI_Alltoall", i) >= a.Get("Br_Lin", i) {
				t.Errorf("s=%s: Alltoall (%.2f) not below Br_Lin (%.2f)", x, a.Get("MPI_Alltoall", i), a.Get("Br_Lin", i))
			}
			if a.Get("MPI_Alltoall", i) >= a.Get("Gather_Bcast", i) {
				t.Errorf("s=%s: Alltoall (%.2f) not below Gather_Bcast (%.2f)", x, a.Get("MPI_Alltoall", i), a.Get("Gather_Bcast", i))
			}
		}
	}
	// AllGather stays within ~3× of Alltoall at s=p (the paper observes
	// full convergence; our combining charge keeps a residual gap —
	// see EXPERIMENTS.md).
	if g := last(a, "MPI_AllGather") / last(a, "MPI_Alltoall"); g > 3.0 {
		t.Errorf("AllGather/Alltoall ratio %.2f at s=128 too far from convergence", g)
	}
	b := figures(t)["fig13b"]
	// Alltoall within 1.5× of the best algorithm on every distribution.
	for i := range b.XLabels {
		best := b.Get(b.Order[0], i)
		for _, al := range b.Order {
			if v := b.Get(al, i); v < best {
				best = v
			}
		}
		if b.Get("MPI_Alltoall", i) > 1.5*best {
			t.Errorf("fig13b %s: Alltoall (%.2f) not within 1.5× of best (%.2f)", b.XLabels[i], b.Get("MPI_Alltoall", i), best)
		}
	}
}

// TestFig2Shape — the characteristic-parameter table: 2-Step's congestion
// scales with s, Br_Lin's stays constant; Br_Lin's send/rec is
// logarithmic while the baselines' is linear in p.
func TestFig2Shape(t *testing.T) {
	s := figures(t)["fig2"]
	row := func(param string) int {
		for i, x := range s.XLabels {
			if x == param {
				return i
			}
		}
		t.Fatalf("param %s missing", param)
		return -1
	}
	cong := row("congestion")
	if s.Get("2-Step s=64", cong) < 60 {
		t.Errorf("2-Step congestion %.0f not O(s)", s.Get("2-Step s=64", cong))
	}
	if s.Get("Br_Lin s=64", cong) > 4 {
		t.Errorf("Br_Lin congestion %.0f not O(1)", s.Get("Br_Lin s=64", cong))
	}
	if s.Get("PersAlltoAll s=64", cong) > 4 {
		t.Errorf("PersAlltoAll congestion %.0f not O(1)", s.Get("PersAlltoAll s=64", cong))
	}
	sr := row("send/rec")
	if s.Get("PersAlltoAll s=64", sr) < 250 {
		t.Errorf("PersAlltoAll send/rec %.0f not O(p)", s.Get("PersAlltoAll s=64", sr))
	}
	if s.Get("Br_Lin s=64", sr) > 20 {
		t.Errorf("Br_Lin send/rec %.0f not O(log p)", s.Get("Br_Lin s=64", sr))
	}
	wait := row("wait")
	if s.Get("2-Step s=64", wait) > 2 {
		t.Errorf("2-Step wait %.0f not O(1)", s.Get("2-Step s=64", wait))
	}
	if s.Get("Br_Lin s=64", wait) < 3 {
		t.Errorf("Br_Lin wait %.0f not Ω(log p)", s.Get("Br_Lin s=64", wait))
	}
}

// TestFig2GrowthShape — the power-of-two pathology: E(64) must stall in
// the first Br_Lin iteration (no new active processors beyond the
// sources' pairwise exchanges) while E(60) engages more processors early.
func TestFig2GrowthShape(t *testing.T) {
	s := figures(t)["fig2-growth"]
	// E(64)'s stride-4 sources pair with sources at every halving
	// distance that preserves the stride: the active set stays pinned at
	// 64 through the first three iterations (the paper's "first
	// iterations only increase the message length").
	for i := 0; i < 3; i++ {
		if s.Get("E(64)", i) > 64 {
			t.Errorf("E(64) iteration %d activated %.0f processors, want ≤64 (stall)", i+1, s.Get("E(64)", i))
		}
	}
	// E(60)'s irregular spacing breaks the alignment by iteration 3.
	if s.Get("E(60)", 2) <= s.Get("E(64)", 2) {
		t.Errorf("E(60) iteration 3 (%.0f) not above E(64) (%.0f)", s.Get("E(60)", 2), s.Get("E(64)", 2))
	}
}

// TestFigAutoShape — the planner's acceptance bar: in every
// (machine, distribution, s, L) cell, Auto runs within 10% of the best
// fixed algorithm, never beats it (it picks one of them), and the
// always-Repos_xy_source policy is never better than the per-cell best.
func TestFigAutoShape(t *testing.T) {
	s := figures(t)["figAuto"]
	for i, x := range s.XLabels {
		auto, best, repos := s.Get("Auto", i), s.Get("best-fixed", i), s.Get("Repos_xy_source", i)
		if auto > 1.10*best {
			t.Errorf("%s: Auto (%.3f ms) above 1.10× best fixed (%.3f ms)", x, auto, best)
		}
		if auto < best*0.999 {
			t.Errorf("%s: Auto (%.3f ms) below best fixed (%.3f ms) — measurement mismatch", x, auto, best)
		}
		if repos < best*0.999 {
			t.Errorf("%s: Repos_xy_source (%.3f ms) below best fixed (%.3f ms)", x, repos, best)
		}
	}
	// The fixed policy must actually lose somewhere, or the planner adds
	// nothing: Repos_xy_source exceeds 1.3× the best in at least one cell.
	worst := 0.0
	for i := range s.XLabels {
		if r := s.Get("Repos_xy_source", i) / s.Get("best-fixed", i); r > worst {
			worst = r
		}
	}
	if worst < 1.3 {
		t.Errorf("Repos_xy_source never worse than 1.3× best (max ratio %.2f) — grid too easy", worst)
	}
}

// TestFigCollectivesShape — the acceptance bar for the modern
// collective schedules: in every cell the newcomer (circulant broadcast
// or Jung–Sakho all-to-all) runs within 10% of the best pre-existing
// algorithm, it strictly beats the incumbent somewhere (the extension
// pays its way), and the per-collective planner tracks the cell's true
// best within 10%.
func TestFigCollectivesShape(t *testing.T) {
	s := figures(t)["figCollectives"]
	if len(s.XLabels) == 0 {
		t.Fatal("figCollectives produced no cells")
	}
	beats := false
	for i, x := range s.XLabels {
		auto, newc, inc := s.Get("Auto", i), s.Get("newcomer", i), s.Get("incumbent-best", i)
		if auto <= 0 || newc <= 0 || inc <= 0 {
			t.Fatalf("%s: non-positive timing (auto %.3f, newcomer %.3f, incumbent %.3f)", x, auto, newc, inc)
		}
		if newc > 1.10*inc {
			t.Errorf("%s: newcomer (%.3f ms) above 1.10× incumbent best (%.3f ms)", x, newc, inc)
		}
		if best := math.Min(newc, inc); auto > 1.10*best {
			t.Errorf("%s: Auto (%.3f ms) above 1.10× cell best (%.3f ms)", x, auto, best)
		}
		if newc < inc*0.999 {
			beats = true
		}
	}
	if !beats {
		t.Error("newcomers never beat the incumbent in any cell — extension adds nothing")
	}
}

// TestFigSessionShape — the session acceptance bar: a warm TCP mesh
// runs the 100-broadcast workload at least 3× the throughput of paying
// full engine setup per broadcast. Wall-clock based, but the margin is
// structural (a per-run O(p²) dial mesh vs none), not a timing nicety.
func TestFigSessionShape(t *testing.T) {
	s := figures(t)["figSession"]
	if got := len(s.XLabels); got == 0 {
		t.Fatal("figSession produced no checkpoints")
	}
	for i, x := range s.XLabels {
		os, ws := s.Get("one-shot", i), s.Get("session", i)
		if os <= 0 || ws <= 0 {
			t.Fatalf("runs=%s: non-positive throughput (one-shot %.1f, session %.1f)", x, os, ws)
		}
		if ratio := s.Get("speedup", i); ratio != ws/os {
			t.Errorf("runs=%s: speedup curve %.3f != session/one-shot %.3f", x, ratio, ws/os)
		}
	}
	if final := last(s, "speedup"); final < 3 {
		t.Errorf("session speedup at %s runs = %.2f×, want ≥ 3×",
			s.XLabels[len(s.XLabels)-1], final)
	}
}

// TestFigSparseMeshShape — the sparse-mesh acceptance bars: the
// route-planned mesh opens at most the planned pair count and strictly
// fewer connections than the p(p−1)/2 full mesh at every p ≥ 16; the
// real-byte broadcast completes at every size including p ≥ 128 (the
// scales the full mesh cannot reach on this harness's descriptor
// budget); and the k-ported drivers move paced frames at ≥1.5× the
// single-ported rate. The k-port margin is structural — transmissions
// overlap instead of serializing behind one paced writer — so it holds
// regardless of host core count.
func TestFigSparseMeshShape(t *testing.T) {
	s := figures(t)["figSparseMesh"]
	if len(s.XLabels) == 0 {
		t.Fatal("figSparseMesh produced no points")
	}
	sawBig := false
	for i, x := range s.XLabels {
		p, err := strconv.Atoi(x)
		if err != nil {
			t.Fatalf("non-numeric p label %q", x)
		}
		full := float64(p * (p - 1) / 2)
		pairs, conns := s.Get("pairs", i), s.Get("sparse conns", i)
		if pairs <= 0 || conns <= 0 {
			t.Fatalf("p=%d: non-positive pair/conn counts (%v, %v)", p, pairs, conns)
		}
		if conns > pairs {
			t.Errorf("p=%d: %v connections opened for %v planned pairs", p, conns, pairs)
		}
		if p >= 16 && conns >= full {
			t.Errorf("p=%d: sparse mesh opened %v conns, not below the full mesh's %v", p, conns, full)
		}
		if fc := s.Get("full conns", i); fc != 0 && fc != full {
			t.Errorf("p=%d: full mesh opened %v conns, want %v", p, fc, full)
		}
		if ms := s.Get("bcast ms", i); ms <= 0 {
			t.Errorf("p=%d: broadcast did not complete (bcast ms = %v)", p, ms)
		}
		if p >= 128 {
			sawBig = true
		}
		r1, r4 := s.Get("ports1 f/s", i), s.Get("ports4 f/s", i)
		if r1 <= 0 || r4 <= 0 {
			t.Fatalf("p=%d: non-positive k-port rates (%v, %v)", p, r1, r4)
		}
		if ratio := s.Get("ports speedup", i); ratio != r4/r1 {
			t.Errorf("p=%d: speedup curve %.3f != ports4/ports1 %.3f", p, ratio, r4/r1)
		}
	}
	if !sawBig {
		t.Error("no p ≥ 128 point — the scaling claim is untested")
	}
	if final := last(s, "ports speedup"); final < 1.5 {
		t.Errorf("k-ported speedup = %.2f× at p=%s, want ≥ 1.5×",
			final, s.XLabels[len(s.XLabels)-1])
	}
}

// TestFigTCPHotpathShape — the hot-path acceptance bar: the vectored
// arena write path moves small frames at ≥2× the legacy 2k+1-write
// rate, and every mode reports a positive rate at every payload size.
// Wall-clock based, but the margin is structural (one syscall and zero
// allocations per frame vs three writes and fresh headers).
func TestFigTCPHotpathShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock frame-rate ratios are noisy under -short CI")
	}
	s := figures(t)["figTCPHotpath"]
	if len(s.XLabels) == 0 {
		t.Fatal("figTCPHotpath produced no points")
	}
	for i, x := range s.XLabels {
		legacy, vectored, batched := s.Get("legacy", i), s.Get("vectored", i), s.Get("batched", i)
		if legacy <= 0 || vectored <= 0 || batched <= 0 {
			t.Fatalf("payload %sB: non-positive rate (legacy %.0f, vectored %.0f, batched %.0f)",
				x, legacy, vectored, batched)
		}
		if ratio := s.Get("vectored/legacy", i); ratio != vectored/legacy {
			t.Errorf("payload %sB: speedup curve %.3f != vectored/legacy %.3f", x, ratio, vectored/legacy)
		}
	}
	// The ≥2× bar applies where per-frame overhead dominates: the
	// smallest payload point.
	if ratio := s.Get("vectored/legacy", 0); ratio < 2 {
		t.Errorf("vectored/legacy = %.2f× at %sB payloads, want ≥ 2×", ratio, s.XLabels[0])
	}
}

// TestAblationShapes — the Section 5.2 partitioning claim and the T3D
// placement effect.
func TestAblationShapes(t *testing.T) {
	part := figures(t)["ablation-part"]
	// Partitioning never beats repositioning by more than noise.
	for i := range part.XLabels {
		if part.Get("Part_xy_source", i) < 0.95*part.Get("Repos_xy_source", i) {
			t.Errorf("s=%s: partitioning (%.2f) beats repositioning (%.2f)", part.XLabels[i], part.Get("Part_xy_source", i), part.Get("Repos_xy_source", i))
		}
	}
	place := figures(t)["ablation-placement"]
	// Random placement costs Br_Lin at least as much as dimension-ordered.
	for i := range place.XLabels {
		if place.Get("random", i) < place.Get("dimension-ordered", i)*0.98 {
			t.Errorf("s=%s: random placement (%.2f) cheaper than ordered (%.2f)", place.XLabels[i], place.Get("random", i), place.Get("dimension-ordered", i))
		}
	}
	indep := figures(t)["ablation-indep"]
	// Uncoordinated broadcasts degrade sharply with s (the paper's
	// congestion argument): at s=100 they cost ≥2× Br_Lin.
	if indep.Get("Indep_1toP", len(indep.XLabels)-1) < 2*indep.Get("Br_Lin", len(indep.XLabels)-1) {
		t.Errorf("Indep_1toP (%.2f) not ≥2× Br_Lin (%.2f) at s=100",
			indep.Get("Indep_1toP", len(indep.XLabels)-1), indep.Get("Br_Lin", len(indep.XLabels)-1))
	}
	disc := figures(t)["ablation-discovery"]
	// Discovery overhead is bounded (< 40%) and shrinks relative to the
	// broadcast as s grows.
	for i := range disc.XLabels {
		if v := disc.Get("overhead %", i); v < 0 || v > 40 {
			t.Errorf("discovery overhead %.1f%% at s=%s out of bounds", v, disc.XLabels[i])
		}
	}
	varlen := figures(t)["ablation-varlen"]
	// The paper: moderate length skew does not change performance
	// significantly. The extreme one-heavy shape is the boundary of that
	// claim — it degenerates toward the s=1 point of Figure 7 and must be
	// clearly slower than uniform.
	for _, alg := range varlen.Order {
		uniform := varlen.Get(alg, 0)
		if v := varlen.Get(alg, 1); v > 1.35*uniform || v < 0.65*uniform {
			t.Errorf("%s: skewed-2x %.2f vs uniform %.2f — more than ±35%%", alg, v, uniform)
		}
		if v := varlen.Get(alg, 2); v < 1.5*uniform {
			t.Errorf("%s: one-heavy %.2f not ≥1.5× uniform %.2f (should degenerate toward s=1)", alg, v, uniform)
		}
	}
	hc := figures(t)["ablation-hypercube"]
	// With identical cost parameters, the hypercube's wiring must never
	// hurt Br_Lin and must clearly help the all-to-all traffic of
	// PersAlltoAll (richer bisection) at full load.
	for i := range hc.XLabels {
		if hc.Get("Br_Lin/6-cube", i) > 1.02*hc.Get("Br_Lin/mesh8x8", i) {
			t.Errorf("s=%s: Br_Lin on 6-cube (%.2f) above mesh (%.2f)",
				hc.XLabels[i], hc.Get("Br_Lin/6-cube", i), hc.Get("Br_Lin/mesh8x8", i))
		}
	}
	lastIdx := len(hc.XLabels) - 1
	if hc.Get("PersAlltoAll/6-cube", lastIdx) >= hc.Get("PersAlltoAll/mesh8x8", lastIdx) {
		t.Errorf("s=64: PersAlltoAll on 6-cube (%.2f) not below mesh (%.2f)",
			hc.Get("PersAlltoAll/6-cube", lastIdx), hc.Get("PersAlltoAll/mesh8x8", lastIdx))
	}
	ad := figures(t)["ablation-adaptive"]
	// Adaptive repositioning must track the better of always/never within
	// 10% on every distribution.
	for i := range ad.XLabels {
		best := ad.Get("never", i)
		if v := ad.Get("always", i); v < best {
			best = v
		}
		if ad.Get("adaptive", i) > 1.1*best {
			t.Errorf("%s: adaptive (%.2f) above 1.1× best of always/never (%.2f)",
				ad.XLabels[i], ad.Get("adaptive", i), best)
		}
	}
	cal := figures(t)["ablation-calibration"]
	// The qualitative ranking must hold at every calibration scale.
	for i := range cal.XLabels {
		if cal.Get("Br_xy_source", i) >= cal.Get("PersAlltoAll", i) {
			t.Errorf("scale %s: Br_xy_source (%.2f) not below PersAlltoAll (%.2f)",
				cal.XLabels[i], cal.Get("Br_xy_source", i), cal.Get("PersAlltoAll", i))
		}
		if cal.Get("PersAlltoAll", i) >= cal.Get("2-Step", i) {
			t.Errorf("scale %s: PersAlltoAll (%.2f) not below 2-Step (%.2f)",
				cal.XLabels[i], cal.Get("PersAlltoAll", i), cal.Get("2-Step", i))
		}
	}
	d3 := figures(t)["ablation-dims3d"]
	// The 3-D dimension order must beat plain Br_Lin on the torus at
	// moderate-to-large s (shorter lines, better locality per phase).
	if d3.Get("Br_dims3D", 2) >= d3.Get("Br_Lin", 2) {
		t.Errorf("s=96: Br_dims3D (%.2f) not below Br_Lin (%.2f)", d3.Get("Br_dims3D", 2), d3.Get("Br_Lin", 2))
	}
	sw := figures(t)["ablation-switching"]
	// Store-and-forward is never cheaper than wormhole for 2-Step (long
	// paths to the root dominate).
	for i := range sw.XLabels {
		if sw.Get("2-Step/sf", i) < sw.Get("2-Step/wh", i) {
			t.Errorf("s=%s: store-and-forward 2-Step (%.2f) beat wormhole (%.2f)", sw.XLabels[i], sw.Get("2-Step/sf", i), sw.Get("2-Step/wh", i))
		}
	}
}
