package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/tcp"
)

func init() {
	register(Experiment{
		ID:    "figSparseMesh",
		Title: "Route-aware sparse TCP mesh vs full mesh: connections, setup time and a real-byte Br_Lin broadcast up to p=256, plus the k-ported link-driver frame rate",
		Paper: "Beyond the paper: the paper's NX runs scale to hundreds of nodes because the machine provides the links; the TCP engine's historical full mesh pays O(p²) sockets for schedules that touch ~p·log p of them. This figure measures the sparse route-planned mesh against the full one and the paper's k-ported node model (multi-channel routers) as realized by the engine's per-link drivers.",
		Run:   runFigSparseMesh,
	})
}

// figSparseMesh workload parameters. The fd budget caps the full mesh:
// p=256 would need p(p−1)/2 = 32 640 connections (~65 k descriptors),
// beyond the harness's limit, so the full-mesh curves record 0 there —
// exactly the scaling wall the sparse mesh removes.
const (
	sparseSources  = 4
	sparseMsgLen   = 512
	sparseFullMaxP = 128
	// k-ported harness shape: one rank fans out over 4 paced links
	// (120 µs per frame transmission), Ports=1 vs Ports=4.
	kportFanout   = 4
	kportFrames   = 150
	kportPerFrame = 120 * time.Microsecond
)

// sparseMeshes are the Paragon shapes swept: p = 16 … 256.
var sparseMeshes = [][2]int{{4, 4}, {4, 8}, {8, 8}, {8, 16}, {16, 16}}

// runFigSparseMesh builds, per machine size, a sparse mesh from the
// routes Br_Lin actually uses (plan.Routes) and the historical full
// mesh, recording connection counts and setup times, then runs one real
// Br_Lin broadcast over the sparse mesh — the p≥128 rows are the runs
// the full mesh cannot reach on this harness. The k-ported columns
// measure the paced fan-out harness (tcp.MeasureKPortRate) at Ports=1
// and Ports=4.
func runFigSparseMesh() (*Series, error) {
	d, err := dist.ByName("E")
	if err != nil {
		return nil, err
	}
	alg := core.BrLin()

	s := NewSeries(
		fmt.Sprintf("Sparse route-planned mesh vs full mesh, Br_Lin/E/s=%d, %d B payloads; k-ported fan-out at %d frames/link, %v per frame",
			sparseSources, sparseMsgLen, kportFrames, kportPerFrame),
		"ranks p", "counts, ms and frames/s (speedup is a ratio)",
		"pairs", "sparse conns", "full conns", "sparse setup ms", "full setup ms",
		"bcast ms", "ports1 f/s", "ports4 f/s", "ports speedup")
	s.Notes = fmt.Sprintf("The sparse mesh dials only the links the algorithm's traced schedule (plus the "+
		"dissemination barrier) uses — ~p·log p pairs instead of p(p−1)/2 — so setup stays near-linear in p "+
		"and the broadcast completes at p=256 where the full mesh would need ~65k descriptors (full-mesh "+
		"columns record 0 past p=%d for that reason). The k-ported columns pace every outbound write by a "+
		"fixed per-frame transmission time, so ports4/ports1 reflects overlapped vs serialized transmissions "+
		"(the paper's multi-channel routers), not host core count.", sparseFullMaxP)

	for _, mesh := range sparseMeshes {
		rows, cols := mesh[0], mesh[1]
		m := machine.Paragon(rows, cols)
		p := rows * cols
		spec, err := SpecFor(m, d, sparseSources)
		if err != nil {
			return nil, err
		}
		routes, err := plan.Routes(m, alg, spec, sparseMsgLen)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		tm, err := tcp.NewMachine(p, tcp.Options{Links: routes})
		if err != nil {
			return nil, fmt.Errorf("bench: figSparseMesh sparse p=%d: %w", p, err)
		}
		sparseSetup := time.Since(start)
		pairs, sparseConns := tm.PlannedPairs(), tm.ConnsOpened()

		bcast, err := sparseBroadcast(tm, spec, alg)
		if err != nil {
			tm.Close()
			return nil, fmt.Errorf("bench: figSparseMesh broadcast p=%d: %w", p, err)
		}
		if err := tm.Close(); err != nil {
			return nil, err
		}

		fullConns, fullSetup := 0, time.Duration(0)
		if p <= sparseFullMaxP {
			start = time.Now()
			fm, err := tcp.NewMachine(p, tcp.Options{})
			if err != nil {
				return nil, fmt.Errorf("bench: figSparseMesh full p=%d: %w", p, err)
			}
			fullSetup = time.Since(start)
			fullConns = fm.ConnsOpened()
			if err := fm.Close(); err != nil {
				return nil, err
			}
		}

		r1, err := tcp.MeasureKPortRate(1, kportFanout, sparseMsgLen, kportFrames, kportPerFrame)
		if err != nil {
			return nil, err
		}
		r4, err := tcp.MeasureKPortRate(4, kportFanout, sparseMsgLen, kportFrames, kportPerFrame)
		if err != nil {
			return nil, err
		}

		s.AddX(fmt.Sprintf("%d", p),
			float64(pairs), float64(sparseConns), float64(fullConns),
			float64(sparseSetup.Microseconds())/1e3, float64(fullSetup.Microseconds())/1e3,
			float64(bcast.Microseconds())/1e3, r1, r4, r4/r1)
	}
	return s, nil
}

// sparseBroadcast runs one real-byte Br_Lin broadcast over the warm
// sparse machine and verifies every rank leaves with all s payloads.
func sparseBroadcast(tm *tcp.Machine, spec core.Spec, alg core.Algorithm) (time.Duration, error) {
	payload := make([]byte, sparseMsgLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := spec.P()
	parts := make([]int, p)
	res, err := tm.Run(tcp.Options{RecvTimeout: time.Minute}, func(pr *tcp.Proc) {
		out := alg.Run(pr, spec, core.InitialMessage(spec, pr.Rank(), payload))
		parts[pr.Rank()] = len(out.Parts)
	})
	if err != nil {
		return 0, err
	}
	for rank, n := range parts {
		if n != len(spec.Sources) {
			return 0, fmt.Errorf("rank %d finished with %d parts, want %d", rank, n, len(spec.Sources))
		}
	}
	return res.Elapsed, nil
}
