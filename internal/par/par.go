// Package par provides the bounded worker pool shared by the experiment
// harness (internal/bench), the autotuner's probe stage (internal/plan),
// and the sweep CLIs. Independent work items — figure cells, candidate
// probes, sweep rows — fan out across at most Limit() goroutines; results
// are indexed by item so callers assemble output in deterministic order
// regardless of completion order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// limit is the global worker cap; 0 means "use GOMAXPROCS at call time".
var limit atomic.Int64

// Limit returns the current worker cap (at least 1).
func Limit() int {
	if n := int(limit.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetLimit sets the worker cap for subsequent ForEach calls and returns
// the previous value. n <= 0 restores the default (GOMAXPROCS). The cap
// is process-global: the CLIs set it once from their -parallel flag.
func SetLimit(n int) int {
	prev := int(limit.Swap(int64(n)))
	if prev <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return prev
}

// Workers returns the number of goroutines a pool over n items should
// use: min(Limit(), n), at least 1.
func Workers(n int) int {
	w := Limit()
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs job(i) for every i in [0, n), with at most Limit()
// invocations in flight at once. It always completes all n items (a
// failing item does not cancel the rest — items are independent and
// callers want the full result grid), then returns the error of the
// lowest failed index so the reported failure is deterministic.
//
// With a limit of 1 (or n <= 1) the jobs run inline on the caller's
// goroutine in index order — serial mode is the byte-identical baseline
// the parallel harness is checked against.
func ForEach(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(n)
	if w == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := job(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
