package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryItem(t *testing.T) {
	prev := SetLimit(4)
	defer SetLimit(prev)
	const n = 100
	var done [n]atomic.Bool
	if err := ForEach(n, func(i int) error {
		if done[i].Swap(true) {
			t.Errorf("item %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Errorf("item %d never ran", i)
		}
	}
}

// TestForEachBoundedConcurrency asserts the harness never runs more than
// the configured number of cells at once — the ISSUE's bounded-
// concurrency requirement.
func TestForEachBoundedConcurrency(t *testing.T) {
	const limit = 3
	prev := SetLimit(limit)
	defer SetLimit(prev)
	var cur, peak atomic.Int64
	if err := ForEach(64, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Fatalf("observed %d concurrent jobs, limit %d", got, limit)
	}
}

// TestForEachFirstErrorByIndex: the returned error must be the lowest
// failed index regardless of completion order, so failures are
// deterministic under parallelism.
func TestForEachFirstErrorByIndex(t *testing.T) {
	prev := SetLimit(8)
	defer SetLimit(prev)
	for trial := 0; trial < 10; trial++ {
		err := ForEach(32, func(i int) error {
			if i%5 == 2 { // fails at 2, 7, 12, ...
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 2 failed" {
			t.Fatalf("trial %d: got %v, want item 2's error", trial, err)
		}
	}
}

func TestForEachCompletesAllItemsDespiteError(t *testing.T) {
	prev := SetLimit(4)
	defer SetLimit(prev)
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(40, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got != 40 {
		t.Fatalf("%d items ran, want all 40 (failures must not cancel the grid)", got)
	}
}

func TestForEachSerialWhenLimitOne(t *testing.T) {
	prev := SetLimit(1)
	defer SetLimit(prev)
	last := -1
	if err := ForEach(50, func(i int) error {
		if i != last+1 {
			t.Fatalf("serial mode ran %d after %d", i, last)
		}
		last = i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLimitDefaultsToGOMAXPROCS(t *testing.T) {
	prev := SetLimit(0)
	defer SetLimit(prev)
	if got, want := Limit(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Limit() = %d, want GOMAXPROCS %d", got, want)
	}
	if Workers(3) < 1 {
		t.Fatal("Workers must be at least 1")
	}
}
