// Package collective implements the library communication operations the
// paper's baseline algorithms are built from: gather-to-root, binomial
// one-to-all broadcast (the halving pattern of Section 2), personalized
// all-to-all exchange (XOR permutations for power-of-two machines, cyclic
// shifts otherwise, following the implementation of Hambrusch/Hameed/
// Khokhar 1995 that the paper cites), a ring all-gather, and a scatter.
//
// Every operation is written against comm.Comm, so it runs identically on
// the discrete-event simulator and the live goroutine runtime. All
// operations assume the engines' buffered-send semantics (Send never
// blocks on the receiver), which both engines provide.
package collective

import (
	"fmt"

	"repro/internal/comm"
)

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Gather collects the bundles of the given source ranks at root. Sources
// send their bundle; root receives them in ascending source order and
// returns the concatenation (its own bundle included without a self-send).
// Non-root, non-source processors return an empty message immediately.
// All processors must agree on root and sources.
func Gather(c comm.Comm, root int, sources []int, mine comm.Message) comm.Message {
	rank := c.Rank()
	isSource := false
	for _, s := range sources {
		if s == rank {
			isSource = true
			break
		}
	}
	if rank != root {
		if isSource {
			c.Send(root, mine)
		}
		return comm.Message{}
	}
	out := comm.Message{Tag: mine.Tag}
	for _, s := range sources {
		if s == root {
			out = out.Append(mine)
			comm.ChargeCombine(c, mine.Len())
			continue
		}
		m := c.Recv(s)
		out = out.Append(m)
		comm.ChargeCombine(c, m.Len())
	}
	return out
}

// Bcast broadcasts root's bundle to every processor along a binomial tree
// over the linear rank order — the one-to-all implementation the paper's
// 2-Step uses ("views the mesh as a linear array and applies the same
// communication pattern used in Algorithm Br_Lin"). It returns the bundle
// on every processor. Works for any p, any root.
func Bcast(c comm.Comm, root int, m comm.Message) comm.Message {
	p := c.Size()
	if p == 1 {
		return m
	}
	rel := (c.Rank() - root + p) % p
	real := func(r int) int { return (r + root) % p }
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			m = c.Recv(real(rel - mask))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for ; mask > 0; mask >>= 1 {
		if rel+mask < p {
			c.Send(real(rel+mask), m)
		}
	}
	return m
}

// AlltoallPersonalized delivers every source's bundle to every other
// processor with p−1 pairwise permutations: XOR permutations on
// power-of-two machines, cyclic shifts otherwise. Only sources transmit;
// every processor returns the concatenation of all source bundles (its own
// included). This is the paper's PersAlltoAll.
func AlltoallPersonalized(c comm.Comm, sources []int, mine comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	isSource := make([]bool, p)
	for _, s := range sources {
		isSource[s] = true
	}
	// Collect parts indexed by source so the result is deterministic and
	// ordered regardless of arrival permutation.
	parts := make([]comm.Message, p)
	if isSource[rank] {
		parts[rank] = mine
	}
	for t := 1; t < p; t++ {
		comm.MarkIter(c, t-1)
		var sendTo, recvFrom int
		if isPow2(p) {
			sendTo = rank ^ t
			recvFrom = rank ^ t
		} else {
			sendTo = (rank + t) % p
			recvFrom = (rank - t + p) % p
		}
		if isSource[rank] {
			c.Send(sendTo, mine)
		}
		if isSource[recvFrom] {
			parts[recvFrom] = c.Recv(recvFrom)
		}
	}
	out := comm.Message{Tag: mine.Tag}
	for _, s := range sources {
		out = out.Append(parts[s])
	}
	return out
}

// AllgatherRing is the classic ring all-gather: in p−1 steps every
// processor forwards to its successor the bundle it received in the
// previous step, starting with its own. Every processor returns the
// concatenation of all p bundles in rank order. Processors without data
// contribute an empty bundle, so the operation doubles as an s-to-p
// broadcast when only sources hold parts. Provided as the modern-MPI
// ablation of the paper's gather+broadcast MPI_AllGather.
func AllgatherRing(c comm.Comm, mine comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	bundles := make([]comm.Message, p)
	bundles[rank] = mine
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	cur := mine
	for t := 0; t < p-1; t++ {
		comm.MarkIter(c, t)
		c.Send(next, cur)
		cur = c.Recv(prev)
		bundles[(rank-t-1+p)%p] = cur
	}
	out := comm.Message{Tag: mine.Tag}
	for r := 0; r < p; r++ {
		out = out.Append(bundles[r])
	}
	return out
}

// AllgatherRecDoubling is the recursive-doubling all-gather (the classic
// MPICH algorithm): in round k every processor exchanges its accumulated
// bundle with the partner at XOR-distance 2^k, so after ⌈log2 p⌉ rounds
// every processor holds every source bundle. With sparse sources the
// exchange degenerates to a single send (or nothing) whenever one (or
// both) sides hold no messages yet — every processor derives the holder
// evolution locally from the known source positions.
//
// On power-of-two machines this is exact recursive doubling; other sizes
// fall back to the ring all-gather (same asymptotic volume, correct for
// every p). The paper's T3D machines are all powers of two.
func AllgatherRecDoubling(c comm.Comm, sources []int, mine comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	if p == 1 {
		return mine
	}
	if !isPow2(p) {
		// Non-power-of-two fallback: the ring all-gather is correct for
		// any p and has the same asymptotic volume.
		return AllgatherRing(c, mine)
	}
	// groupCount[g] at round k = number of sources in the 2^k-aligned
	// group g; evolves identically on every processor.
	count := make([]int, p)
	for _, s := range sources {
		count[s]++
	}
	bundle := mine
	iter := 0
	for dist := 1; dist < p; dist <<= 1 {
		comm.MarkIter(c, iter)
		iter++
		partner := rank ^ dist
		myBase := rank &^ (dist - 1)
		partnerBase := partner &^ (dist - 1)
		myCount := groupSum(count, myBase, dist)
		partnerCount := groupSum(count, partnerBase, dist)
		if myCount > 0 {
			c.Send(partner, bundle)
		}
		if partnerCount > 0 {
			// The 1996-era library packs the received blocks into the
			// accumulated buffer before the next round; charge the copy.
			m := c.Recv(partner)
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	}
	return bundle
}

func groupSum(count []int, base, width int) int {
	total := 0
	for i := base; i < base+width && i < len(count); i++ {
		total += count[i]
	}
	return total
}

// Scatter sends the i-th of root's bundles to processor i and returns the
// bundle this processor received (root keeps its own without a self-send).
// bundles is only read on root; its length must equal p.
func Scatter(c comm.Comm, root int, bundles []comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	if rank == root {
		if len(bundles) != p {
			panic(fmt.Sprintf("collective: Scatter root has %d bundles for %d processors", len(bundles), p))
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			c.Send(r, bundles[r])
		}
		return bundles[root]
	}
	return c.Recv(root)
}

// CircularShift rotates bundles around the rank ring: every processor
// sends its bundle to (rank+k) mod p and returns the bundle received from
// (rank−k) mod p. One of the coarse-grained mesh operations of the
// substrate library the paper builds on (Hambrusch/Hameed/Khokhar 1995).
// k may be negative or exceed p; k ≡ 0 (mod p) is a no-op.
func CircularShift(c comm.Comm, k int, mine comm.Message) comm.Message {
	p := c.Size()
	k = ((k % p) + p) % p
	if k == 0 {
		return mine
	}
	rank := c.Rank()
	c.Send((rank+k)%p, mine)
	return c.Recv((rank - k + p) % p)
}

// Transpose exchanges bundles across the main diagonal of an n×n mesh:
// processor (i,j) ends with (j,i)'s bundle; diagonal processors keep
// their own. Ranks are row-major. Another substrate operation of the
// 1995 library (matrix transposition on coarse-grained meshes).
func Transpose(c comm.Comm, n int, mine comm.Message) comm.Message {
	if n*n != c.Size() {
		panic(fmt.Sprintf("collective: Transpose needs a square mesh, got n=%d for p=%d", n, c.Size()))
	}
	rank := c.Rank()
	i, j := rank/n, rank%n
	if i == j {
		return mine
	}
	return comm.Exchange(c, j*n+i, mine)
}
