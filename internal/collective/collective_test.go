package collective

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/live"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// runBoth executes fn on both engines with p processors and returns the
// per-rank results from each, so tests verify engine-independent
// semantics.
func runBoth(t *testing.T, p int, fn func(c comm.Comm) comm.Message) (simOut, liveOut []comm.Message) {
	t.Helper()
	simOut = make([]comm.Message, p)
	liveOut = make([]comm.Message, p)
	topo := topology.MustMesh2D(1, p)
	nw, err := network.New(topo, topology.IdentityPlacement(p), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(nw, func(pr *sim.Proc) { simOut[pr.Rank()] = fn(pr) }, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Run(p, func(pr *live.Proc) { liveOut[pr.Rank()] = fn(pr) }); err != nil {
		t.Fatal(err)
	}
	return simOut, liveOut
}

// mkMsg builds a one-part bundle whose payload encodes the origin.
func mkMsg(origin, size int) comm.Message {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(origin)
	}
	return comm.Message{Parts: []comm.Part{{Origin: origin, Data: data}}}
}

// wantOrigins asserts that every rank's bundle carries exactly the given
// origins (in any order) with intact payloads.
func wantOrigins(t *testing.T, label string, out []comm.Message, origins []int) {
	t.Helper()
	for rank, m := range out {
		got := m.Origins()
		want := append([]int(nil), origins...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: rank %d origins = %v, want %v", label, rank, got, want)
		}
		for _, part := range m.Parts {
			for _, b := range part.Data {
				if b != byte(part.Origin) {
					t.Fatalf("%s: rank %d payload of origin %d corrupted", label, rank, part.Origin)
				}
			}
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16, 17} {
		roots := []int{0, p / 2, p - 1}
		for _, root := range roots {
			s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
				var m comm.Message
				if c.Rank() == root {
					m = mkMsg(root, 64)
				}
				return Bcast(c, root, m)
			})
			label := fmt.Sprintf("Bcast p=%d root=%d", p, root)
			wantOrigins(t, label+" (sim)", s, []int{root})
			wantOrigins(t, label+" (live)", l, []int{root})
		}
	}
}

func TestGatherCollectsInSourceOrder(t *testing.T) {
	p := 10
	sources := []int{1, 4, 7, 9}
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		var m comm.Message
		for _, src := range sources {
			if src == c.Rank() {
				m = mkMsg(src, 32)
			}
		}
		return Gather(c, 0, sources, m)
	})
	for _, out := range [][]comm.Message{s, l} {
		root := out[0]
		if len(root.Parts) != len(sources) {
			t.Fatalf("root has %d parts", len(root.Parts))
		}
		for i, part := range root.Parts {
			if part.Origin != sources[i] {
				t.Fatalf("root part %d origin %d, want %d", i, part.Origin, sources[i])
			}
		}
		for rank := 1; rank < p; rank++ {
			if len(out[rank].Parts) != 0 {
				t.Fatalf("non-root rank %d kept parts", rank)
			}
		}
	}
}

func TestGatherRootAsSource(t *testing.T) {
	sources := []int{0, 2}
	s, _ := runBoth(t, 4, func(c comm.Comm) comm.Message {
		var m comm.Message
		if c.Rank() == 0 || c.Rank() == 2 {
			m = mkMsg(c.Rank(), 16)
		}
		return Gather(c, 0, sources, m)
	})
	if got := s[0].Origins(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("root origins = %v", got)
	}
}

func TestAlltoallPersonalizedPow2AndNot(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 3, 5, 10, 12} {
		sources := []int{0, p / 2}
		if p/2 == 0 {
			sources = []int{0}
		}
		s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
			var m comm.Message
			for _, src := range sources {
				if src == c.Rank() {
					m = mkMsg(src, 48)
				}
			}
			return AlltoallPersonalized(c, sources, m)
		})
		label := fmt.Sprintf("Alltoall p=%d", p)
		wantOrigins(t, label+" (sim)", s, sources)
		wantOrigins(t, label+" (live)", l, sources)
	}
}

func TestAlltoallAllSources(t *testing.T) {
	p := 6
	sources := []int{0, 1, 2, 3, 4, 5}
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		return AlltoallPersonalized(c, sources, mkMsg(c.Rank(), 8))
	})
	wantOrigins(t, "Alltoall full (sim)", s, sources)
	wantOrigins(t, "Alltoall full (live)", l, sources)
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
			return AllgatherRing(c, mkMsg(c.Rank(), 24))
		})
		all := make([]int, p)
		for i := range all {
			all[i] = i
		}
		label := fmt.Sprintf("AllgatherRing p=%d", p)
		wantOrigins(t, label+" (sim)", s, all)
		wantOrigins(t, label+" (live)", l, all)
		// Rank order of the concatenation is part of the contract.
		for _, out := range [][]comm.Message{s, l} {
			for rank := 0; rank < p; rank++ {
				for i, part := range out[rank].Parts {
					if part.Origin != i {
						t.Fatalf("%s: rank %d parts out of order: %v", label, rank, out[rank].Origins())
					}
				}
			}
		}
	}
}

func TestAllgatherRingSparseSources(t *testing.T) {
	// Processors without data contribute empty bundles; everyone still
	// ends with exactly the source parts.
	p := 9
	sources := []int{2, 6}
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		var m comm.Message
		if c.Rank() == 2 || c.Rank() == 6 {
			m = mkMsg(c.Rank(), 40)
		}
		return AllgatherRing(c, m)
	})
	wantOrigins(t, "AllgatherRing sparse (sim)", s, sources)
	wantOrigins(t, "AllgatherRing sparse (live)", l, sources)
}

func TestScatter(t *testing.T) {
	p := 7
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		var bundles []comm.Message
		if c.Rank() == 3 {
			bundles = make([]comm.Message, p)
			for i := range bundles {
				bundles[i] = mkMsg(i, 16)
			}
		}
		return Scatter(c, 3, bundles)
	})
	for _, out := range [][]comm.Message{s, l} {
		for rank := 0; rank < p; rank++ {
			if len(out[rank].Parts) != 1 || out[rank].Parts[0].Origin != rank {
				t.Fatalf("rank %d scatter result %v", rank, out[rank])
			}
		}
	}
}

func TestBcastBinomialDepth(t *testing.T) {
	// The root must send at most ⌈log2 p⌉ messages and the makespan must
	// reflect a logarithmic tree, not a linear chain.
	p := 16
	topo := topology.MustMesh2D(1, p)
	nw, err := network.New(topo, topology.IdentityPlacement(p), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		var m comm.Message
		if pr.Rank() == 0 {
			m = mkMsg(0, 128)
		}
		Bcast(pr, 0, m)
	}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 4 {
		t.Fatalf("root sent %d messages, want 4 for p=16", res.Procs[0].Sends)
	}
	for rank := 1; rank < p; rank++ {
		if res.Procs[rank].Recvs != 1 {
			t.Fatalf("rank %d received %d messages", rank, res.Procs[rank].Recvs)
		}
	}
}

func TestAllgatherRecDoublingPow2(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		sources := []int{0, p - 1}
		s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
			var m comm.Message
			for _, src := range sources {
				if src == c.Rank() {
					m = mkMsg(src, 64)
				}
			}
			return AllgatherRecDoubling(c, sources, m)
		})
		label := fmt.Sprintf("RecDoubling p=%d", p)
		wantOrigins(t, label+" (sim)", s, sources)
		wantOrigins(t, label+" (live)", l, sources)
	}
}

func TestAllgatherRecDoublingAllSources(t *testing.T) {
	p := 8
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		return AllgatherRecDoubling(c, all, mkMsg(c.Rank(), 16))
	})
	wantOrigins(t, "RecDoubling full (sim)", s, all)
	wantOrigins(t, "RecDoubling full (live)", l, all)
}

func TestAllgatherRecDoublingNonPow2FallsBack(t *testing.T) {
	p := 6
	sources := []int{1, 4}
	s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
		var m comm.Message
		for _, src := range sources {
			if src == c.Rank() {
				m = mkMsg(src, 32)
			}
		}
		return AllgatherRecDoubling(c, sources, m)
	})
	wantOrigins(t, "RecDoubling non-pow2 (sim)", s, sources)
	wantOrigins(t, "RecDoubling non-pow2 (live)", l, sources)
}

func TestAllgatherRecDoublingSkipsEmptyExchanges(t *testing.T) {
	// With a single source on a 16-processor machine, round k only
	// involves processors whose group already holds the message: total
	// sends are 1+2+4+8 = 15, not 16·4.
	p := 16
	topo := topology.MustMesh2D(1, p)
	nw, err := network.New(topo, topology.IdentityPlacement(p), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		var m comm.Message
		if pr.Rank() == 5 {
			m = mkMsg(5, 64)
		}
		AllgatherRecDoubling(pr, []int{5}, m)
	}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range res.Procs {
		total += ps.Sends
	}
	if total != 15 {
		t.Fatalf("single-source rec-doubling sent %d messages, want 15", total)
	}
}

func TestCircularShift(t *testing.T) {
	p := 7
	for _, k := range []int{0, 1, 3, -2, 7, 10} {
		s, l := runBoth(t, p, func(c comm.Comm) comm.Message {
			return CircularShift(c, k, mkMsg(c.Rank(), 8))
		})
		for _, out := range [][]comm.Message{s, l} {
			for rank := 0; rank < p; rank++ {
				want := ((rank-k)%p + p) % p
				if got := out[rank].Parts[0].Origin; got != want {
					t.Fatalf("shift k=%d: rank %d got origin %d, want %d", k, rank, got, want)
				}
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	n := 4
	s, l := runBoth(t, n*n, func(c comm.Comm) comm.Message {
		return Transpose(c, n, mkMsg(c.Rank(), 8))
	})
	for _, out := range [][]comm.Message{s, l} {
		for rank := 0; rank < n*n; rank++ {
			i, j := rank/n, rank%n
			want := j*n + i
			if got := out[rank].Parts[0].Origin; got != want {
				t.Fatalf("transpose: rank (%d,%d) got origin %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestTransposeRejectsNonSquare(t *testing.T) {
	_, err := live.Run(6, func(pr *live.Proc) {
		Transpose(pr, 2, comm.Message{})
	})
	if err == nil {
		t.Fatal("non-square transpose accepted")
	}
}
