// Package metrics derives the paper's characteristic parameters (the
// Figure 2 table) from a simulated run:
//
//	congestion   — the maximum number of sends and receives any processor
//	               handles in one iteration;
//	wait         — the maximum number of times a processor waits for data
//	               before proceeding;
//	#send/rec    — the maximum total sends+receives of any processor;
//	av_msg_lgth  — the maximum over processors of the average per-iteration
//	               message volume (Σᵢ lᵢ)/t;
//	av_act_proc  — the average over iterations of the number of processors
//	               that communicated at all.
package metrics

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/sim"
)

// Params holds the five Figure-2 parameters plus the run's makespan.
type Params struct {
	Elapsed    network.Time
	Congestion int
	Wait       int
	SendRec    int
	AvgMsgLen  float64
	AvgActive  float64
	Iterations int
}

// FromResult computes the parameters of a finished run.
func FromResult(res *sim.Result) Params {
	p := Params{Elapsed: res.Elapsed, Iterations: res.Iterations}
	iters := res.Iterations
	if iters == 0 {
		iters = 1
	}
	activePerIter := make([]int, res.Iterations)
	for _, ps := range res.Procs {
		if sr := ps.Sends + ps.Recvs; sr > p.SendRec {
			p.SendRec = sr
		}
		if ps.WaitCount > p.Wait {
			p.Wait = ps.WaitCount
		}
		var bytes int64
		for i, it := range ps.Iters {
			if c := it.Sends + it.Recvs; c > p.Congestion {
				p.Congestion = c
			}
			if it.Active() {
				activePerIter[i]++
			}
			bytes += it.Bytes
		}
		if avg := float64(bytes) / float64(iters); avg > p.AvgMsgLen {
			p.AvgMsgLen = avg
		}
	}
	var sum int
	for _, a := range activePerIter {
		sum += a
	}
	p.AvgActive = float64(sum) / float64(iters)
	return p
}

// String renders the parameters on one line for tables and logs.
func (p Params) String() string {
	return fmt.Sprintf("t=%.3fms cong=%d wait=%d send/rec=%d av_msg=%.0fB av_act=%.1f iters=%d",
		p.Elapsed.Milliseconds(), p.Congestion, p.Wait, p.SendRec, p.AvgMsgLen, p.AvgActive, p.Iterations)
}

// Header returns the column header matching Row, for Figure-2 style tables.
func Header() string {
	return fmt.Sprintf("%-18s %10s %6s %6s %10s %12s %10s", "algorithm", "congestion", "wait", "s/r", "av_msg_lgth", "av_act_proc", "time(ms)")
}

// Row renders one algorithm's parameters as a Figure-2 table row.
func Row(name string, p Params) string {
	return fmt.Sprintf("%-18s %10d %6d %6d %10.0f %12.1f %10.3f",
		name, p.Congestion, p.Wait, p.SendRec, p.AvgMsgLen, p.AvgActive, p.Elapsed.Milliseconds())
}

// WaitShare reports the fraction of the makespan the slowest processor
// spent waiting — the quantity the paper uses to explain Br_Lin's T3D
// behaviour ("the higher wait cost").
func WaitShare(res *sim.Result) float64 {
	if res.Elapsed == 0 {
		return 0
	}
	var worst network.Time
	for _, ps := range res.Procs {
		if ps.WaitTime > worst {
			worst = ps.WaitTime
		}
	}
	return float64(worst) / float64(res.Elapsed)
}

// ActiveProfile returns the number of active processors in each iteration,
// the growth curve the ideal distributions are designed to maximize.
func ActiveProfile(res *sim.Result) []int {
	out := make([]int, res.Iterations)
	for _, ps := range res.Procs {
		for i, it := range ps.Iters {
			if it.Active() {
				out[i]++
			}
		}
	}
	return out
}

// FormatProfile renders an active-processor profile compactly.
func FormatProfile(profile []int) string {
	parts := make([]string, len(profile))
	for i, v := range profile {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "→")
}
