package metrics

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

func flatNet(t *testing.T, n int) *network.Network {
	t.Helper()
	cfg := network.Config{
		Name: "flat", SendOverhead: 10, RecvOverhead: 20, ByteCopyNS: 1,
		CombineByteNS: 2, NetStartup: 5, HopLatency: 1, LinkBandwidth: 1e9,
	}
	nw, err := network.New(topology.MustMesh2D(1, n), topology.IdentityPlacement(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// star runs a 2-iteration program: iteration 0 everyone sends to rank 0;
// iteration 1 rank 0 replies to rank 1 only.
func star(t *testing.T) *sim.Result {
	t.Helper()
	res, err := sim.Run(flatNet(t, 4), func(p *sim.Proc) {
		comm.MarkIter(p, 0)
		if p.Rank() == 0 {
			for src := 1; src < 4; src++ {
				p.Recv(src)
			}
		} else {
			p.Send(0, comm.Message{Parts: []comm.Part{{Data: make([]byte, 100)}}})
		}
		comm.MarkIter(p, 1)
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: make([]byte, 50)}}})
		}
		if p.Rank() == 1 {
			p.Recv(0)
		}
	}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFromResultParameters(t *testing.T) {
	p := FromResult(star(t))
	// Congestion: rank 0 handles 3 receives in iteration 0.
	if p.Congestion != 3 {
		t.Errorf("congestion = %d, want 3", p.Congestion)
	}
	// send/rec: rank 0 does 3 recvs + 1 send.
	if p.SendRec != 4 {
		t.Errorf("send/rec = %d, want 4", p.SendRec)
	}
	// Waits: every receive in this program waits at least once; the max
	// is rank 0's first iteration (one blocked recv per sender at most).
	if p.Wait < 1 {
		t.Errorf("wait = %d, want ≥1", p.Wait)
	}
	if p.Iterations != 2 {
		t.Errorf("iterations = %d", p.Iterations)
	}
	// av_msg_lgth: rank 0 moved 300 bytes in iter 0 and 50 in iter 1 →
	// 175 average, the largest of any processor.
	if p.AvgMsgLen != 175 {
		t.Errorf("av_msg_lgth = %.1f, want 175", p.AvgMsgLen)
	}
	// av_act_proc: iteration 0 has 4 active, iteration 1 has 2 → 3.
	if p.AvgActive != 3 {
		t.Errorf("av_act_proc = %.1f, want 3", p.AvgActive)
	}
	if p.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestActiveProfile(t *testing.T) {
	got := ActiveProfile(star(t))
	want := []int{4, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ActiveProfile = %v, want %v", got, want)
	}
}

func TestFormatProfile(t *testing.T) {
	if got := FormatProfile([]int{4, 8, 16}); got != "4→8→16" {
		t.Errorf("FormatProfile = %q", got)
	}
	if got := FormatProfile(nil); got != "" {
		t.Errorf("empty profile = %q", got)
	}
}

func TestWaitShare(t *testing.T) {
	res := star(t)
	ws := WaitShare(res)
	if ws <= 0 || ws >= 1 {
		t.Fatalf("WaitShare = %v", ws)
	}
	if WaitShare(&sim.Result{}) != 0 {
		t.Error("WaitShare of empty result not zero")
	}
}

func TestRowAndHeaderAligned(t *testing.T) {
	p := FromResult(star(t))
	h := Header()
	r := Row("2-Step", p)
	if !strings.Contains(h, "congestion") || !strings.Contains(h, "av_act_proc") {
		t.Errorf("header missing columns: %q", h)
	}
	if !strings.HasPrefix(r, "2-Step") {
		t.Errorf("row = %q", r)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestZeroIterationRun(t *testing.T) {
	// A run without MarkIter still yields sane parameters (implicit
	// iteration 0 is created on first activity).
	res, err := sim.Run(flatNet(t, 2), func(p *sim.Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: make([]byte, 10)}}})
		} else {
			p.Recv(0)
		}
	}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := FromResult(res)
	if p.SendRec != 1 || p.Congestion != 1 {
		t.Fatalf("params: %+v", p)
	}
}
