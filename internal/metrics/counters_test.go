package metrics

import (
	"sync"
	"testing"
)

func TestCounterRegistry(t *testing.T) {
	a := GetCounter("test.counters.a")
	if GetCounter("test.counters.a") != a {
		t.Fatal("same name returned a different counter")
	}
	if a.Name() != "test.counters.a" {
		t.Fatalf("name %q", a.Name())
	}
	a.Reset()
	a.Inc()
	a.Add(4)
	if a.Value() != 5 {
		t.Fatalf("value %d, want 5", a.Value())
	}
	found := false
	for _, s := range Counters() {
		if s.Name == "test.counters.a" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot missing counter")
	}
	a.Reset()
	if a.Value() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := GetCounter("test.counters.concurrent")
	c.Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value %d, want 8000", c.Value())
	}
}
