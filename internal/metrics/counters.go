package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named, monotonically increasing event counter. Counters
// complement the per-run Params with process-wide operational metrics —
// the planner's cache hit/miss and probe counts are the first users.
// All methods are safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

var (
	countersMu sync.Mutex
	counters   = make(map[string]*Counter)
)

// GetCounter returns the process-wide counter with the given name,
// creating it on first use. Repeated calls with the same name return the
// same counter.
func GetCounter(name string) *Counter {
	countersMu.Lock()
	defer countersMu.Unlock()
	if c, ok := counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	counters[name] = c
	return c
}

// Name returns the counter's registration name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be zero; negative n is reserved for tests).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero (tests and warm-up phases).
func (c *Counter) Reset() { c.v.Store(0) }

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// Counters returns the current value of every registered counter, sorted
// by name, for tables and debug output.
func Counters() []CounterSnapshot {
	countersMu.Lock()
	defer countersMu.Unlock()
	out := make([]CounterSnapshot, 0, len(counters))
	for name, c := range counters {
		out = append(out, CounterSnapshot{Name: name, Value: c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
