package sim

import (
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/topology"
)

// pingPong runs `rounds` request/reply exchanges between two processors on
// a 1×2 mesh — the steady-state Send/Recv hot path with no algorithm code
// around it.
func pingPong(nw *network.Network, rounds int) error {
	_, err := Run(nw, func(p *Proc) {
		msg := comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Size: 64}}}
		for i := 0; i < rounds; i++ {
			if p.Rank() == 0 {
				p.Send(1, msg)
				p.Recv(1)
			} else {
				p.Recv(0)
				p.Send(0, msg)
			}
		}
	}, Options{})
	return err
}

// BenchmarkSendRecvSteadyState measures the per-operation cost of the
// scheduler hot path. The per-run setup (procs, goroutines, heap, pooled
// queue table) is amortized over b.N rounds; steady-state Send/Recv must
// show 0 allocs/op under -benchmem.
func BenchmarkSendRecvSteadyState(b *testing.B) {
	topo := topology.MustMesh2D(1, 2)
	nw, err := network.New(topo, topology.IdentityPlacement(2), flatCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := pingPong(nw, b.N); err != nil {
		b.Fatal(err)
	}
}

// TestSendRecvAllocationFree asserts the 0-allocs/op property directly:
// growing the round count 100x must not grow the allocation count with it
// (all per-message state lives in pooled ring buffers and the reused
// route scratch buffer).
func TestSendRecvAllocationFree(t *testing.T) {
	topo := topology.MustMesh2D(1, 2)
	nw, err := network.New(topo, topology.IdentityPlacement(2), flatCfg())
	if err != nil {
		t.Fatal(err)
	}
	allocs := func(rounds int) uint64 {
		// Warm the slab pools and the route buffer first.
		if err := pingPong(nw, rounds); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := pingPong(nw, rounds); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	small := allocs(100)
	big := allocs(10_000)
	// Fixed per-run setup (procs, goroutines, stats) is allowed; anything
	// proportional to the extra 9900 rounds is a regression. The slack
	// absorbs runtime-internal allocations.
	if big > small+100 {
		t.Errorf("allocations scale with operation count: %d for 100 rounds, %d for 10000", small, big)
	}
}

// TestRecvReleasesQueuedPayloads is the regression test for the queue
// retention bug: with the old `q = q[1:]` idiom every delivered payload
// stayed reachable through the queue's backing array until the end of the
// run. The ring buffer must zero slots on pop.
func TestRecvReleasesQueuedPayloads(t *testing.T) {
	nw := lineNet(t, 2)
	checked := false
	run(t, nw, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				p.Send(1, comm.Message{Parts: []comm.Part{{Origin: 0, Data: payload(1 << 10)}}})
			}
			return
		}
		for i := 0; i < 3; i++ {
			p.Recv(0)
		}
		q := &p.eng.queues[0*2+1]
		if q.n != 0 {
			t.Errorf("queue not drained: %d entries", q.n)
		}
		for i, pd := range q.buf {
			if pd.msg.Parts != nil {
				t.Errorf("popped slot %d still references its payload", i)
			}
		}
		checked = true
	})
	if !checked {
		t.Fatal("receiver never inspected the queue")
	}
}

// TestQueueArraysRecycled exercises the run-level pooling: back-to-back
// runs on the same machine size must reuse the queue table and slabs
// (observable as allocation counts that do not include p*p queue
// rebuilds; here we just assert repeated runs stay correct after reuse).
func TestQueueArraysRecycled(t *testing.T) {
	nw := lineNet(t, 4)
	for i := 0; i < 5; i++ {
		res := run(t, nw, func(p *Proc) {
			next := (p.Rank() + 1) % p.Size()
			prev := (p.Rank() + p.Size() - 1) % p.Size()
			p.Send(next, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Size: 32}}})
			m := p.Recv(prev)
			if m.Parts[0].Origin != prev {
				t.Errorf("run %d: rank %d received origin %d, want %d", i, p.Rank(), m.Parts[0].Origin, prev)
			}
		})
		if res.Net.Transfers != 4 {
			t.Fatalf("run %d: %d transfers, want 4", i, res.Net.Transfers)
		}
	}
}
