package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/topology"
)

// flatCfg is a cost model with round numbers so tests can compute expected
// clocks by hand: send 10ns, recv 20ns, 1ns/byte copy both sides, wire
// startup 5ns, 1ns/hop, 1 byte/ns bandwidth, 2ns/byte combining.
func flatCfg() network.Config {
	return network.Config{
		Name:          "flat",
		SendOverhead:  10,
		RecvOverhead:  20,
		ByteCopyNS:    1,
		CombineByteNS: 2,
		NetStartup:    5,
		HopLatency:    1,
		LinkBandwidth: 1e9, // 1 byte per ns
		Switching:     network.Wormhole,
	}
}

func lineNet(t *testing.T, n int) *network.Network {
	t.Helper()
	topo := topology.MustMesh2D(1, n)
	nw, err := network.New(topo, topology.IdentityPlacement(n), flatCfg())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func run(t *testing.T, nw *network.Network, fn func(*Proc)) *Result {
	t.Helper()
	res, err := Run(nw, fn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func payload(n int) []byte { return make([]byte, n) }

func TestPingTiming(t *testing.T) {
	nw := lineNet(t, 2)
	res := run(t, nw, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, comm.Message{Parts: []comm.Part{{Origin: 0, Data: payload(100)}}})
		case 1:
			m := p.Recv(0)
			if m.Len() != 100 {
				t.Errorf("recv len = %d", m.Len())
			}
		}
	})
	// Sender: 10 (send) + 100 (copy) = 110. Wire: 5 + 1 + 100 = 106,
	// arrival 216. Receiver: max(0,216) + 20 + 100 = 336.
	if got := res.Procs[0].Finish; got != 110 {
		t.Errorf("sender finish = %d, want 110", got)
	}
	if got := res.Procs[1].Finish; got != 336 {
		t.Errorf("receiver finish = %d, want 336", got)
	}
	if res.Elapsed != 336 {
		t.Errorf("elapsed = %d, want 336", res.Elapsed)
	}
	if res.Procs[1].WaitCount != 1 || res.Procs[1].WaitTime != 216 {
		t.Errorf("wait = %d/%d, want 1/216", res.Procs[1].WaitCount, res.Procs[1].WaitTime)
	}
}

func TestNoWaitWhenMessageEarly(t *testing.T) {
	// Receiver that is already past the arrival instant records no wait.
	nw := lineNet(t, 2)
	res := run(t, nw, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: payload(10)}}})
		case 1:
			p.AdvanceCombine(1000) // clock = 2000 > arrival 51
			p.Recv(0)
		}
	})
	if res.Procs[1].WaitCount != 0 {
		t.Errorf("wait count = %d, want 0", res.Procs[1].WaitCount)
	}
	// Receiver: 2000 + 20 + 10 = 2030.
	if got := res.Procs[1].Finish; got != 2030 {
		t.Errorf("receiver finish = %d, want 2030", got)
	}
}

func TestFIFOPerPair(t *testing.T) {
	nw := lineNet(t, 2)
	var got []int
	run(t, nw, func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				p.Send(1, comm.Message{Tag: i, Parts: []comm.Part{{Data: payload(8)}}})
			}
		case 1:
			for i := 0; i < 5; i++ {
				got = append(got, p.Recv(0).Tag)
			}
		}
	})
	for i, tag := range got {
		if tag != i {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestExchangeBothDirections(t *testing.T) {
	nw := lineNet(t, 2)
	run(t, nw, func(p *Proc) {
		other := 1 - p.Rank()
		m := comm.Exchange(p, other, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Data: payload(4)}}})
		if len(m.Parts) != 1 || m.Parts[0].Origin != other {
			t.Errorf("rank %d got %v", p.Rank(), m)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	nw := lineNet(t, 4)
	res := run(t, nw, func(p *Proc) {
		// Skew the clocks, then meet at the barrier.
		p.AdvanceCombine(100 * (p.Rank() + 1))
		p.Barrier()
	})
	var first network.Time
	for i, ps := range res.Procs {
		if i == 0 {
			first = ps.Finish
			continue
		}
		if ps.Finish != first {
			t.Fatalf("barrier left clocks skewed: %v vs %v", ps.Finish, first)
		}
	}
	// Slowest pre-barrier clock is 800 (rank 3: 100*4 combine at 2ns/B).
	if first <= 800 {
		t.Fatalf("barrier exit %d not after slowest entry", first)
	}
}

// TestBarrierRankZeroArrivesLast pins the self-handoff case: when rank 0
// carries the largest clock it is dispatched last, so it is the
// processor whose park() releases the barrier — and after the release
// every waiter exits at the same instant, making rank 0 the heap minimum
// again. The scheduler must keep the token instead of handing it to
// itself (which deadlocked: a send on its own resume channel). The
// watchdog turns a regression into a fast failure instead of a hung
// test binary.
func TestBarrierRankZeroArrivesLast(t *testing.T) {
	nw := lineNet(t, 4)
	done := make(chan *Result, 1)
	go func() {
		done <- run(t, nw, func(p *Proc) {
			for round := 0; round < 2; round++ {
				// Rank 0 takes the largest clock, then performs a yielding
				// operation (self send/receive): the token visits every
				// other rank, they all enter the barrier, and rank 0 is
				// the processor that arrives last and triggers the
				// release from inside park().
				if p.Rank() == 0 {
					p.AdvanceCombine(10_000)
				} else {
					p.AdvanceCombine(100 * p.Rank())
				}
				p.Send(p.Rank(), comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Size: 8}}})
				p.Recv(p.Rank())
				p.Barrier()
			}
		})
	}()
	select {
	case res := <-done:
		var first network.Time
		for i, ps := range res.Procs {
			if i == 0 {
				first = ps.Finish
			} else if ps.Finish != first {
				t.Fatalf("barrier left clocks skewed: %v vs %v", ps.Finish, first)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked: barrier release handed the token to the parking processor")
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(p *Proc) {
		comm.MarkIter(p, 0)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		p.Send(right, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Data: payload(256)}}})
		p.Recv(left)
		comm.MarkIter(p, 1)
		p.Send(left, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Data: payload(512)}}})
		p.Recv(right)
	}
	nw := lineNet(t, 8)
	a := run(t, nw, prog)
	b := run(t, nw, prog)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic elapsed: %d vs %d", a.Elapsed, b.Elapsed)
	}
	for i := range a.Procs {
		if a.Procs[i].Finish != b.Procs[i].Finish {
			t.Fatalf("rank %d finish differs: %d vs %d", i, a.Procs[i].Finish, b.Procs[i].Finish)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	nw := lineNet(t, 2)
	_, err := Run(nw, func(p *Proc) {
		p.Recv(1 - p.Rank()) // both receive first: classic deadlock
	}, Options{})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPartialBarrierIsDeadlock(t *testing.T) {
	nw := lineNet(t, 3)
	_, err := Run(nw, func(p *Proc) {
		if p.Rank() == 2 {
			p.Recv(0) // never sent
			return
		}
		p.Barrier()
	}, Options{})
	if err == nil {
		t.Fatal("stuck barrier not detected")
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	nw := lineNet(t, 2)
	_, err := Run(nw, func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 blocks forever waiting for rank 1.
		p.Recv(1)
	}, Options{})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not mention panic: %v", err)
	}
}

func TestIterationStats(t *testing.T) {
	nw := lineNet(t, 2)
	res := run(t, nw, func(p *Proc) {
		comm.MarkIter(p, 0)
		other := 1 - p.Rank()
		comm.Exchange(p, other, comm.Message{Parts: []comm.Part{{Data: payload(64)}}})
		comm.MarkIter(p, 1)
		comm.Exchange(p, other, comm.Message{Parts: []comm.Part{{Data: payload(128)}}})
	})
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
	for rank, ps := range res.Procs {
		if len(ps.Iters) != 2 {
			t.Fatalf("rank %d has %d iteration records", rank, len(ps.Iters))
		}
		for i, want := range []int64{128, 256} { // 64 sent + 64 received, then 128+128
			if ps.Iters[i].Sends != 1 || ps.Iters[i].Recvs != 1 || ps.Iters[i].Bytes != want {
				t.Fatalf("rank %d iter %d = %+v", rank, i, ps.Iters[i])
			}
		}
	}
}

func TestContentionVisibleInElapsed(t *testing.T) {
	// Many senders hammering rank 0 must take longer than a single send,
	// because of receiver serialization and shared links near the root.
	nw := lineNet(t, 8)
	gather := func(p *Proc) {
		if p.Rank() == 0 {
			for src := 1; src < p.Size(); src++ {
				p.Recv(src)
			}
			return
		}
		p.Send(0, comm.Message{Parts: []comm.Part{{Data: payload(1024)}}})
	}
	res := run(t, nw, gather)
	single := run(t, lineNet(t, 8), func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(7)
		}
		if p.Rank() == 7 {
			p.Send(0, comm.Message{Parts: []comm.Part{{Data: payload(1024)}}})
		}
	})
	// The link into rank 0 serializes all seven wormholes, so the gather
	// must take at least seven single-hop wire times plus the final
	// receive's software cost (overhead 20 + copy 1024).
	floor := 7*flatCfg().WireTime(1, 1024) + 20 + 1024
	if res.Elapsed < floor {
		t.Fatalf("7-way gather (%d) below serialization floor (%d)", res.Elapsed, floor)
	}
	if res.Elapsed < 2*single.Elapsed {
		t.Fatalf("7-way gather (%d) not ≥2× a single far send (%d)", res.Elapsed, single.Elapsed)
	}
}

type countTracer struct {
	events int
	kinds  map[string]int
}

func (c *countTracer) Trace(e Event) {
	c.events++
	if c.kinds == nil {
		c.kinds = make(map[string]int)
	}
	c.kinds[e.Kind]++
}

func TestTracerReceivesEvents(t *testing.T) {
	nw := lineNet(t, 2)
	tr := &countTracer{}
	_, err := Run(nw, func(p *Proc) {
		p.Barrier()
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: payload(1)}}})
		} else {
			p.Recv(0)
		}
	}, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	// 2 barriers + 1 send + 1 recv + 1 wait: rank 1 posts its receive
	// before the message arrives, so the blocked span is traced too.
	if tr.events != 5 {
		t.Fatalf("tracer saw %d events, want 5", tr.events)
	}
	want := map[string]int{"barrier": 2, "send": 1, "recv": 1, "wait": 1}
	for k, n := range want {
		if tr.kinds[k] != n {
			t.Errorf("kind %q: %d events, want %d (all: %v)", k, tr.kinds[k], n, tr.kinds)
		}
	}
}

func TestSendToSelf(t *testing.T) {
	nw := lineNet(t, 2)
	res := run(t, nw, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(0, comm.Message{Tag: 9, Parts: []comm.Part{{Data: payload(32)}}})
			if m := p.Recv(0); m.Tag != 9 {
				t.Errorf("self recv tag = %d", m.Tag)
			}
		}
	})
	if res.Procs[0].Sends != 1 || res.Procs[0].Recvs != 1 {
		t.Fatalf("self send not counted: %+v", res.Procs[0])
	}
}

func TestMaxOpsAborts(t *testing.T) {
	nw := lineNet(t, 2)
	_, err := Run(nw, func(p *Proc) {
		// An endless ping-pong that would otherwise never terminate.
		for {
			comm.Exchange(p, 1-p.Rank(), comm.Message{Parts: []comm.Part{{Data: payload(1)}}})
		}
	}, Options{MaxOps: 1000})
	if err == nil || !strings.Contains(err.Error(), "MaxOps") {
		t.Fatalf("runaway algorithm not aborted: %v", err)
	}
}

func TestAbortDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		nw := lineNet(t, 4)
		_, err := Run(nw, func(p *Proc) {
			p.Recv((p.Rank() + 1) % p.Size()) // circular wait: deadlock
		}, Options{})
		if err == nil {
			t.Fatal("deadlock not detected")
		}
	}
	// Give unwound goroutines a moment to exit, then check for leaks.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
