// Package sim executes an algorithm on a simulated message-passing MPP and
// reports virtual elapsed time plus the paper's characteristic parameters.
//
// Each of the p virtual processors runs the user's algorithm function in
// its own goroutine, but the engine enforces strictly sequential execution:
// exactly one processor goroutine holds the run token at any instant, and
// the scheduler always hands the token to the runnable processor with the
// smallest local virtual clock (ties broken by rank). Every communication
// operation yields the token. The result is a deterministic, conservative
// discrete-event simulation: identical inputs produce identical timings,
// and network link claims are issued in (near) nondecreasing virtual-time
// order. The residual approximation — a processor that un-blocks from a
// receive may claim links at a virtual time slightly before links already
// claimed by processors that ran ahead — is second-order and documented in
// DESIGN.md.
//
// Cost model (see internal/network for the wire side):
//
//	Send:  clock += SendOverhead + ByteCopy·len; message injected at clock,
//	       arrival priced by the contention-aware network.
//	Recv:  completes at max(clock, arrival) + RecvOverhead + ByteCopy·len;
//	       time spent with the clock below the arrival instant is "wait".
//	Barrier: all processors advance to the common instant
//	       max(clock) + ceil(log2 p)·(SendOverhead+RecvOverhead+NetStartup).
package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/comm"
	"repro/internal/network"
)

type procState int

const (
	stateReady procState = iota
	stateBlocked
	stateBarrier
	stateDone
)

// pending is a sent-but-not-yet-received message in a (src,dst) queue.
type pending struct {
	msg     comm.Message
	arrival network.Time
}

// IterStats aggregates one processor's activity inside one algorithm
// iteration, the granularity of the paper's Figure-2 parameters.
type IterStats struct {
	Sends, Recvs int   // messages sent / received this iteration
	Bytes        int64 // payload bytes sent + received
}

// Active reports whether the processor communicated at all this iteration.
func (s IterStats) Active() bool { return s.Sends+s.Recvs > 0 }

// ProcStats is the per-processor outcome of a run.
type ProcStats struct {
	Rank        int
	Finish      network.Time // local clock when the algorithm returned
	Sends       int
	Recvs       int
	SendBytes   int64
	RecvBytes   int64
	WaitCount   int          // times the processor waited for data
	WaitTime    network.Time // total time spent waiting on receives
	CombineTime network.Time // time charged for combining messages
	Iters       []IterStats  // per-iteration activity (if the algorithm marks iterations)
}

// Result is the outcome of a simulated run.
type Result struct {
	// Elapsed is the makespan: the largest processor finish time.
	Elapsed network.Time
	// Procs holds per-processor statistics, indexed by rank.
	Procs []ProcStats
	// Net holds aggregate wire statistics.
	Net network.Stats
	// Iterations is the largest iteration index marked plus one.
	Iterations int
}

// Event is a single simulator occurrence handed to a Tracer.
type Event struct {
	Kind    string // "send" | "recv" | "barrier" | "combine"
	Rank    int
	Peer    int
	Bytes   int
	Parts   int
	Tag     int
	Clock   network.Time // processor clock after the operation
	Arrival network.Time // message arrival (recv only)
	Iter    int
}

// Tracer observes simulator events. Implementations must be fast; they run
// inline under the scheduler token.
type Tracer interface {
	Trace(Event)
}

// Options configure a run.
type Options struct {
	// Tracer, when non-nil, receives every send/recv/barrier event.
	Tracer Tracer
	// MaxOps, when positive, aborts the run with an error after that
	// many scheduler dispatches — a safeguard against algorithms that
	// loop forever.
	MaxOps int
}

// Proc is one virtual processor's handle. It implements comm.Comm,
// comm.Clock, and comm.IterMarker. Methods must only be called from the
// algorithm function invoked for this processor.
type Proc struct {
	eng  *engine
	rank int

	clock network.Time
	state procState
	// waitSrc is the sender this processor is blocked on (stateBlocked).
	waitSrc int
	// recvStart is the clock when the current Recv began, for wait
	// accounting across block/wake cycles.
	recvStart network.Time
	inRecv    bool

	resume chan struct{}

	sends, recvs         int
	sendBytes, recvBytes int64
	waitCount            int
	waitTime             network.Time
	combineTime          network.Time
	iter                 int
	iters                []IterStats

	err error
}

var _ comm.Comm = (*Proc)(nil)
var _ comm.Clock = (*Proc)(nil)
var _ comm.IterMarker = (*Proc)(nil)

type engine struct {
	net     *network.Network
	cfg     network.Config
	p       int
	procs   []*Proc
	queues  [][]pending // index src*p+dst
	yield   chan struct{}
	opts    Options
	aborted bool
}

// errAbort unwinds processor goroutines when the run is abandoned
// (deadlock or MaxOps), so Run does not leak blocked goroutines.
type errAbort struct{}

// ErrMaxOps is wrapped by the error Run returns when the MaxOps budget is
// exhausted; callers distinguishing "too expensive" from "broken" match it
// with errors.Is.
var ErrMaxOps = errors.New("operation budget exhausted")

// Run executes fn on every processor of the simulated machine described by
// net (one processor per placed rank) and returns the timing result. The
// network's link state and statistics are reset first, so a Network can be
// reused across runs.
func Run(net *network.Network, fn func(*Proc), opts Options) (*Result, error) {
	net.Reset()
	p := net.Placement().Size()
	eng := &engine{
		net:    net,
		cfg:    net.Config(),
		p:      p,
		procs:  make([]*Proc, p),
		queues: make([][]pending, p*p),
		yield:  make(chan struct{}),
		opts:   opts,
	}
	for i := 0; i < p; i++ {
		eng.procs[i] = &Proc{eng: eng, rank: i, iter: -1, resume: make(chan struct{})}
	}
	for i := 0; i < p; i++ {
		pr := eng.procs[i]
		go func() {
			<-pr.resume
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(errAbort); !ok {
						pr.err = fmt.Errorf("sim: rank %d panicked: %v", pr.rank, r)
					}
				}
				pr.state = stateDone
				eng.yield <- struct{}{}
			}()
			if eng.aborted {
				return
			}
			fn(pr)
		}()
	}
	if err := eng.loop(); err != nil {
		eng.drain()
		return nil, err
	}
	res := &Result{Procs: make([]ProcStats, p), Net: net.Stats()}
	for i, pr := range eng.procs {
		if pr.err != nil {
			return nil, pr.err
		}
		if pr.clock > res.Elapsed {
			res.Elapsed = pr.clock
		}
		if len(pr.iters) > res.Iterations {
			res.Iterations = len(pr.iters)
		}
		res.Procs[i] = ProcStats{
			Rank: i, Finish: pr.clock,
			Sends: pr.sends, Recvs: pr.recvs,
			SendBytes: pr.sendBytes, RecvBytes: pr.recvBytes,
			WaitCount: pr.waitCount, WaitTime: pr.waitTime,
			CombineTime: pr.combineTime,
			Iters:       pr.iters,
		}
	}
	return res, nil
}

// loop is the conservative scheduler: repeatedly run the smallest-clock
// runnable processor for one operation.
func (e *engine) loop() error {
	ops := 0
	for {
		if e.opts.MaxOps > 0 {
			ops++
			if ops > e.opts.MaxOps {
				return fmt.Errorf("sim: aborted after %d operations (MaxOps): %w", e.opts.MaxOps, ErrMaxOps)
			}
		}
		next := -1
		doneCount, barrierCount := 0, 0
		for i, pr := range e.procs {
			switch pr.state {
			case stateDone:
				doneCount++
			case stateBarrier:
				barrierCount++
			case stateReady:
				if next < 0 || pr.clock < e.procs[next].clock {
					next = i
				}
			}
		}
		if doneCount == e.p {
			return nil
		}
		if next >= 0 {
			pr := e.procs[next]
			pr.resume <- struct{}{}
			<-e.yield
			continue
		}
		if barrierCount > 0 && barrierCount+doneCount == e.p {
			e.releaseBarrier()
			continue
		}
		return e.deadlockError()
	}
}

// drain terminates every unfinished processor goroutine after the run is
// abandoned: each is resumed once and unwinds via the errAbort panic in
// doYield (or skips its function body if it never started).
func (e *engine) drain() {
	e.aborted = true
	for _, pr := range e.procs {
		if pr.state != stateDone {
			pr.resume <- struct{}{}
			<-e.yield
		}
	}
}

// releaseBarrier advances every waiting processor to the common barrier
// exit instant and makes them runnable again.
func (e *engine) releaseBarrier() {
	var t network.Time
	for _, pr := range e.procs {
		if pr.state == stateBarrier && pr.clock > t {
			t = pr.clock
		}
	}
	steps := network.Time(bits.Len(uint(e.p - 1))) // ceil(log2 p)
	t += steps * (e.cfg.SendOverhead + e.cfg.RecvOverhead + e.cfg.NetStartup)
	for _, pr := range e.procs {
		if pr.state == stateBarrier {
			pr.clock = t
			pr.state = stateReady
		}
	}
}

func (e *engine) deadlockError() error {
	msg := "sim: deadlock:"
	for _, pr := range e.procs {
		switch pr.state {
		case stateBlocked:
			msg += fmt.Sprintf(" rank %d waits on %d;", pr.rank, pr.waitSrc)
		case stateBarrier:
			msg += fmt.Sprintf(" rank %d in barrier;", pr.rank)
		}
	}
	for _, pr := range e.procs {
		if pr.err != nil {
			msg += " first panic: " + pr.err.Error()
		}
	}
	return errors.New(msg)
}

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.eng.p }

// Now returns the processor's current virtual clock.
func (p *Proc) Now() network.Time { return p.clock }

// doYield hands the token back to the scheduler and blocks until
// rescheduled. If the run was abandoned meanwhile, it unwinds the
// processor goroutine.
func (p *Proc) doYield() {
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.eng.aborted {
		panic(errAbort{})
	}
}

func (p *Proc) curIter() *IterStats {
	if p.iter < 0 {
		p.BeginIter(0)
	}
	return &p.iters[p.iter]
}

// Send implements comm.Comm. See the package comment for the cost model.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.eng.p {
		panic(fmt.Sprintf("sim: rank %d sends to invalid rank %d", p.rank, dst))
	}
	n := m.Len()
	p.clock += p.eng.cfg.SendOverhead + p.eng.cfg.CopyCost(n)
	arrival := p.eng.net.Transfer(p.rank, dst, n, p.clock)
	qi := p.rank*p.eng.p + dst
	p.eng.queues[qi] = append(p.eng.queues[qi], pending{msg: m, arrival: arrival})
	p.sends++
	p.sendBytes += int64(n)
	it := p.curIter()
	it.Sends++
	it.Bytes += int64(n)
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: "send", Rank: p.rank, Peer: dst, Bytes: n, Parts: len(m.Parts), Tag: m.Tag, Clock: p.clock, Arrival: arrival, Iter: p.iter})
	}
	// Wake the destination if it is blocked waiting for exactly us.
	d := p.eng.procs[dst]
	if d.state == stateBlocked && d.waitSrc == p.rank {
		d.state = stateReady
	}
	p.doYield()
}

// Recv implements comm.Comm.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.eng.p {
		panic(fmt.Sprintf("sim: rank %d receives from invalid rank %d", p.rank, src))
	}
	if !p.inRecv {
		p.inRecv = true
		p.recvStart = p.clock
	}
	for {
		qi := src*p.eng.p + p.rank
		q := p.eng.queues[qi]
		if len(q) > 0 {
			pd := q[0]
			p.eng.queues[qi] = q[1:]
			if pd.arrival > p.recvStart {
				p.waitCount++
				p.waitTime += pd.arrival - p.recvStart
			}
			if pd.arrival > p.clock {
				p.clock = pd.arrival
			}
			n := pd.msg.Len()
			p.clock += p.eng.cfg.RecvOverhead + p.eng.cfg.CopyCost(n)
			p.recvs++
			p.recvBytes += int64(n)
			it := p.curIter()
			it.Recvs++
			it.Bytes += int64(n)
			p.inRecv = false
			if t := p.eng.opts.Tracer; t != nil {
				t.Trace(Event{Kind: "recv", Rank: p.rank, Peer: src, Bytes: n, Parts: len(pd.msg.Parts), Tag: pd.msg.Tag, Clock: p.clock, Arrival: pd.arrival, Iter: p.iter})
			}
			p.doYield()
			return pd.msg
		}
		p.state = stateBlocked
		p.waitSrc = src
		p.doYield()
	}
}

// Barrier implements comm.Comm.
func (p *Proc) Barrier() {
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: "barrier", Rank: p.rank, Clock: p.clock, Iter: p.iter})
	}
	p.state = stateBarrier
	p.doYield()
}

// AdvanceCombine implements comm.Clock: charge the local cost of merging n
// received bytes into the accumulated bundle.
func (p *Proc) AdvanceCombine(n int) {
	d := p.eng.cfg.CombineCost(n)
	p.clock += d
	p.combineTime += d
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: "combine", Rank: p.rank, Bytes: n, Clock: p.clock, Iter: p.iter})
	}
}

// BeginIter implements comm.IterMarker.
func (p *Proc) BeginIter(i int) {
	if i < 0 {
		panic(fmt.Sprintf("sim: rank %d begins negative iteration %d", p.rank, i))
	}
	for len(p.iters) <= i {
		p.iters = append(p.iters, IterStats{})
	}
	p.iter = i
}
