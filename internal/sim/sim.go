// Package sim executes an algorithm on a simulated message-passing MPP and
// reports virtual elapsed time plus the paper's characteristic parameters.
//
// Each of the p virtual processors runs the user's algorithm function in
// its own goroutine, but the engine enforces strictly sequential execution:
// exactly one processor goroutine holds the run token at any instant, and
// the token always moves to the runnable processor with the smallest local
// virtual clock (ties broken by rank). Every communication operation yields
// the token. The result is a deterministic, conservative discrete-event
// simulation: identical inputs produce identical timings, and network link
// claims are issued in (near) nondecreasing virtual-time order. The
// residual approximation — a processor that un-blocks from a receive may
// claim links at a virtual time slightly before links already claimed by
// processors that ran ahead — is second-order and documented in DESIGN.md.
//
// Scheduling is O(log p) per operation: runnable processors live in an
// indexed binary min-heap keyed by (clock, rank) that is maintained
// incrementally on every state transition, and done/barrier processors are
// tracked by counters — nothing ever rescans all p processors on the hot
// path. The token is handed directly from the yielding processor to the
// next one (one channel transfer per dispatch, none at all when the
// yielding processor is still the earliest runnable one), and the
// per-pair pending-message queues are ring buffers whose backing arrays
// are recycled through a sync.Pool, so steady-state Send/Recv performs no
// heap allocation. See DESIGN.md ("Simulator scheduler") for the data
// structure and the one-token invariant.
//
// Cost model (see internal/network for the wire side):
//
//	Send:  clock += SendOverhead + ByteCopy·len; message injected at clock,
//	       arrival priced by the contention-aware network.
//	Recv:  completes at max(clock, arrival) + RecvOverhead + ByteCopy·len;
//	       time spent with the clock below the arrival instant is "wait".
//	Barrier: all processors advance to the common instant
//	       max(clock) + ceil(log2 p)·(SendOverhead+RecvOverhead+NetStartup).
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/obs"
)

type procState int

const (
	stateReady procState = iota
	stateBlocked
	stateBarrier
	stateDone
)

// pending is a sent-but-not-yet-received message in a (src,dst) queue.
type pending struct {
	msg     comm.Message
	arrival network.Time
}

// pendQueue is an allocation-free FIFO of pending messages for one
// (src,dst) pair: a ring buffer over a power-of-two backing array.
// Popped slots are zeroed so delivered payloads do not stay reachable
// through the queue for the rest of the run.
type pendQueue struct {
	buf  []pending // len(buf) is a power of two (or nil)
	head int
	n    int
}

// pendSlabs recycles ring-buffer backing arrays across queues and runs so
// steady-state Send/Recv allocates nothing. Every slab has power-of-two
// length; slabs are zeroed before they are returned to the pool.
var pendSlabs = sync.Pool{New: func() any {
	s := make([]pending, 8)
	return &s
}}

func (q *pendQueue) push(pd pending) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = pd
	q.n++
}

func (q *pendQueue) grow() {
	if q.buf == nil {
		q.buf = *pendSlabs.Get().(*[]pending)
		return
	}
	next := make([]pending, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	old := q.buf
	for i := range old {
		old[i] = pending{}
	}
	pendSlabs.Put(&old)
	q.buf = next
	q.head = 0
}

func (q *pendQueue) pop() pending {
	pd := q.buf[q.head]
	q.buf[q.head] = pending{} // release message references promptly
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return pd
}

// release drains any undelivered entries (zeroing their message
// references) and returns the backing array to the slab pool.
func (q *pendQueue) release() {
	if q.buf == nil {
		return
	}
	for q.n > 0 {
		q.pop()
	}
	buf := q.buf
	*q = pendQueue{}
	pendSlabs.Put(&buf)
}

// queueArrays recycles the p*p queue tables across runs.
var queueArrays = sync.Pool{}

func getQueueArray(n int) []pendQueue {
	if v := queueArrays.Get(); v != nil {
		q := *(v.(*[]pendQueue))
		if cap(q) >= n {
			// Entries were reset by release(); slots beyond the previous
			// length are zero from allocation.
			return q[:n]
		}
	}
	return make([]pendQueue, n)
}

// IterStats aggregates one processor's activity inside one algorithm
// iteration, the granularity of the paper's Figure-2 parameters.
type IterStats struct {
	Sends, Recvs int   // messages sent / received this iteration
	Bytes        int64 // payload bytes sent + received
}

// Active reports whether the processor communicated at all this iteration.
func (s IterStats) Active() bool { return s.Sends+s.Recvs > 0 }

// ProcStats is the per-processor outcome of a run.
type ProcStats struct {
	Rank        int
	Finish      network.Time // local clock when the algorithm returned
	Sends       int
	Recvs       int
	SendBytes   int64
	RecvBytes   int64
	WaitCount   int          // times the processor waited for data
	WaitTime    network.Time // total time spent waiting on receives
	CombineTime network.Time // time charged for combining messages
	Iters       []IterStats  // per-iteration activity (if the algorithm marks iterations)
}

// Result is the outcome of a simulated run.
type Result struct {
	// Elapsed is the makespan: the largest processor finish time.
	Elapsed network.Time
	// Procs holds per-processor statistics, indexed by rank.
	Procs []ProcStats
	// Net holds aggregate wire statistics.
	Net network.Stats
	// Iterations is the largest iteration index marked plus one.
	Iterations int
}

// Event is the engine-agnostic trace event (see internal/obs). The
// simulator stamps the virtual-clock fields: Clock is the processor clock
// after the operation, Dur the operation's virtual cost, Arrival the
// message arrival instant (receives only).
type Event = obs.Event

// Tracer observes simulator events (see obs.Tracer). Implementations must
// be fast; they run inline under the scheduler token, which also means
// they need no locking of their own.
type Tracer = obs.Tracer

// Options configure a run.
type Options struct {
	// Tracer, when non-nil, receives every send, recv, wait, barrier and
	// combine event. A wait event is emitted whenever a Recv had to block
	// for its message (the paper's wait parameter): its Dur is the
	// blocked virtual time and its Clock the arrival instant that ended
	// the wait.
	Tracer Tracer
	// MaxOps, when positive, aborts the run with an error after that
	// many scheduler dispatches — a safeguard against algorithms that
	// loop forever.
	MaxOps int
}

// Proc is one virtual processor's handle. It implements comm.Comm,
// comm.Clock, and comm.IterMarker. Methods must only be called from the
// algorithm function invoked for this processor.
type Proc struct {
	eng  *engine
	rank int

	clock network.Time
	state procState
	// heapIdx is the processor's slot in the ready heap, -1 when it is
	// not runnable (blocked, in a barrier, or done).
	heapIdx int
	// waitSrc is the sender this processor is blocked on (stateBlocked).
	waitSrc int
	// recvStart is the clock when the current Recv began, for wait
	// accounting across block/wake cycles.
	recvStart network.Time
	inRecv    bool

	resume chan struct{}

	sends, recvs         int
	sendBytes, recvBytes int64
	waitCount            int
	waitTime             network.Time
	combineTime          network.Time
	iter                 int
	iters                []IterStats
	phase                string

	err error
}

var _ comm.Comm = (*Proc)(nil)
var _ comm.Clock = (*Proc)(nil)
var _ comm.IterMarker = (*Proc)(nil)
var _ comm.PhaseMarker = (*Proc)(nil)

// engine is the shared state of one run. All fields are owned by the run
// token: only the goroutine currently holding the token (or, before the
// first and after the last handoff, Run itself) touches them, so no locks
// are needed and every access is ordered by the resume/finish channels.
type engine struct {
	net    *network.Network
	cfg    network.Config
	p      int
	procs  []*Proc
	queues []pendQueue // index src*p+dst

	// ready is the indexed binary min-heap of runnable processors, keyed
	// by (clock, rank). procs[i].heapIdx tracks positions.
	ready []*Proc
	// doneCount and barrierCount replace full-state rescans: the run is
	// over when doneCount == p, and a barrier releases when
	// barrierCount+doneCount == p with barrierCount > 0.
	doneCount    int
	barrierCount int

	ops     int
	opts    Options
	err     error // terminal scheduler error (deadlock, MaxOps)
	aborted bool

	// finish carries the token back to Run when the run ends, and acks
	// each unwound processor during drain. Buffered so a p==0 run (or the
	// final handoff) never self-blocks.
	finish chan struct{}
}

// errAbort unwinds processor goroutines when the run is abandoned
// (deadlock or MaxOps), so Run does not leak blocked goroutines.
type errAbort struct{}

// ErrMaxOps is wrapped by the error Run returns when the MaxOps budget is
// exhausted; callers distinguishing "too expensive" from "broken" match it
// with errors.Is.
var ErrMaxOps = errors.New("operation budget exhausted")

// Run executes fn on every processor of the simulated machine described by
// net (one processor per placed rank) and returns the timing result. The
// network's link state and statistics are reset first, so a Network can be
// reused across runs.
func Run(net *network.Network, fn func(*Proc), opts Options) (*Result, error) {
	net.Reset()
	p := net.Placement().Size()
	eng := &engine{
		net:    net,
		cfg:    net.Config(),
		p:      p,
		procs:  make([]*Proc, p),
		queues: getQueueArray(p * p),
		ready:  make([]*Proc, 0, p),
		opts:   opts,
		finish: make(chan struct{}, 1),
	}
	for i := 0; i < p; i++ {
		eng.procs[i] = &Proc{eng: eng, rank: i, iter: -1, heapIdx: -1, resume: make(chan struct{})}
	}
	// All processors start runnable at clock 0; pushing in rank order
	// seeds the deterministic (clock, rank) dispatch order.
	for _, pr := range eng.procs {
		eng.heapPush(pr)
	}
	for i := 0; i < p; i++ {
		pr := eng.procs[i]
		go func() {
			<-pr.resume
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(errAbort); !ok {
						pr.err = fmt.Errorf("sim: rank %d panicked: %v", pr.rank, r)
					}
				}
				if pr.heapIdx >= 0 {
					eng.heapRemove(pr)
				}
				pr.state = stateDone
				eng.doneCount++
				if eng.aborted {
					eng.finish <- struct{}{}
					return
				}
				eng.handoff(eng.next())
			}()
			if eng.aborted {
				return
			}
			fn(pr)
		}()
	}
	// Hand the token to the earliest processor and wait for it to come
	// back when the run is over.
	eng.handoff(eng.next())
	<-eng.finish
	if eng.err != nil {
		eng.drain()
		eng.release()
		return nil, eng.err
	}
	eng.release()
	res := &Result{Procs: make([]ProcStats, p), Net: net.Stats()}
	for i, pr := range eng.procs {
		if pr.err != nil {
			return nil, pr.err
		}
		if pr.clock > res.Elapsed {
			res.Elapsed = pr.clock
		}
		if len(pr.iters) > res.Iterations {
			res.Iterations = len(pr.iters)
		}
		res.Procs[i] = ProcStats{
			Rank: i, Finish: pr.clock,
			Sends: pr.sends, Recvs: pr.recvs,
			SendBytes: pr.sendBytes, RecvBytes: pr.recvBytes,
			WaitCount: pr.waitCount, WaitTime: pr.waitTime,
			CombineTime: pr.combineTime,
			Iters:       pr.iters,
		}
	}
	return res, nil
}

// release returns the pending queues' backing arrays and the queue table
// itself to their pools, zeroing any undelivered messages.
func (e *engine) release() {
	for i := range e.queues {
		e.queues[i].release()
	}
	q := e.queues[:0]
	e.queues = nil
	queueArrays.Put(&q)
}

// less orders the ready heap by (clock, rank) — the same total order the
// seed scheduler's linear scan used, so timings are bit-identical.
func (e *engine) less(a, b *Proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.rank < b.rank)
}

func (e *engine) heapUp(i int) {
	pr := e.ready[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(pr, e.ready[parent]) {
			break
		}
		e.ready[i] = e.ready[parent]
		e.ready[i].heapIdx = i
		i = parent
	}
	e.ready[i] = pr
	pr.heapIdx = i
}

// heapDown sifts the element at i toward the leaves; it reports whether
// the element moved.
func (e *engine) heapDown(i int) bool {
	pr := e.ready[i]
	start := i
	n := len(e.ready)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && e.less(e.ready[r], e.ready[l]) {
			c = r
		}
		if !e.less(e.ready[c], pr) {
			break
		}
		e.ready[i] = e.ready[c]
		e.ready[i].heapIdx = i
		i = c
	}
	e.ready[i] = pr
	pr.heapIdx = i
	return i != start
}

func (e *engine) heapPush(pr *Proc) {
	e.ready = append(e.ready, pr)
	pr.heapIdx = len(e.ready) - 1
	e.heapUp(pr.heapIdx)
}

func (e *engine) heapRemove(pr *Proc) {
	i := pr.heapIdx
	last := len(e.ready) - 1
	moved := e.ready[last]
	e.ready = e.ready[:last]
	pr.heapIdx = -1
	if i == last {
		return
	}
	e.ready[i] = moved
	moved.heapIdx = i
	if !e.heapDown(i) {
		e.heapUp(i)
	}
}

// clockAdvanced restores the heap ordering after the processor's clock
// increased in place (it can only move toward the leaves).
func (e *engine) clockAdvanced(pr *Proc) {
	e.heapDown(pr.heapIdx)
}

// next picks the processor the token moves to: the root of the ready
// heap. When no processor is runnable it releases the barrier (if every
// live processor reached it) or records the terminal condition — normal
// completion (nil, e.err == nil), deadlock, or an exhausted MaxOps budget
// (nil, e.err set).
func (e *engine) next() *Proc {
	if e.opts.MaxOps > 0 {
		e.ops++
		if e.ops > e.opts.MaxOps {
			e.err = fmt.Errorf("sim: aborted after %d operations (MaxOps): %w", e.opts.MaxOps, ErrMaxOps)
			return nil
		}
	}
	for {
		if len(e.ready) > 0 {
			return e.ready[0]
		}
		if e.doneCount == e.p {
			return nil
		}
		if e.barrierCount > 0 && e.barrierCount+e.doneCount == e.p {
			e.releaseBarrier()
			continue
		}
		e.err = e.deadlockError()
		return nil
	}
}

// handoff transfers the run token: directly to the next processor's
// goroutine, or back to Run when the run is over.
func (e *engine) handoff(next *Proc) {
	if next != nil {
		next.resume <- struct{}{}
		return
	}
	e.finish <- struct{}{}
}

// drain terminates every unfinished processor goroutine after the run is
// abandoned: each is resumed once and unwinds via the errAbort panic (or
// skips its function body if it never started).
func (e *engine) drain() {
	e.aborted = true
	for _, pr := range e.procs {
		if pr.state != stateDone {
			pr.resume <- struct{}{}
			<-e.finish
		}
	}
}

// releaseBarrier advances every waiting processor to the common barrier
// exit instant and makes them runnable again.
func (e *engine) releaseBarrier() {
	var t network.Time
	for _, pr := range e.procs {
		if pr.state == stateBarrier && pr.clock > t {
			t = pr.clock
		}
	}
	steps := network.Time(bits.Len(uint(e.p - 1))) // ceil(log2 p)
	t += steps * (e.cfg.SendOverhead + e.cfg.RecvOverhead + e.cfg.NetStartup)
	for _, pr := range e.procs {
		if pr.state == stateBarrier {
			pr.clock = t
			pr.state = stateReady
			e.heapPush(pr)
		}
	}
	e.barrierCount = 0
}

func (e *engine) deadlockError() error {
	msg := "sim: deadlock:"
	for _, pr := range e.procs {
		switch pr.state {
		case stateBlocked:
			msg += fmt.Sprintf(" rank %d waits on %d;", pr.rank, pr.waitSrc)
		case stateBarrier:
			msg += fmt.Sprintf(" rank %d in barrier;", pr.rank)
		}
	}
	for _, pr := range e.procs {
		if pr.err != nil {
			msg += " first panic: " + pr.err.Error()
		}
	}
	return errors.New(msg)
}

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.eng.p }

// Now returns the processor's current virtual clock.
func (p *Proc) Now() network.Time { return p.clock }

// yield completes one operation while the processor stays runnable: if it
// is still the earliest runnable processor it keeps the token and returns
// immediately (no synchronization at all); otherwise it hands the token
// directly to the next processor and parks.
func (p *Proc) yield() {
	e := p.eng
	next := e.next()
	if next == p {
		return
	}
	e.handoff(next)
	<-p.resume
	if e.aborted {
		panic(errAbort{})
	}
}

// park hands the token on and blocks until rescheduled; the caller must
// already have taken this processor out of the ready heap. next() can
// still return this very processor: releasing a barrier re-inserts every
// waiter, and the caller — the last to arrive — is the new heap minimum
// when it has the lowest rank (all waiters exit at the same instant). In
// that case the processor keeps the token; handing off to itself would
// block forever on its own resume channel.
func (p *Proc) park() {
	e := p.eng
	next := e.next()
	if next == p {
		return
	}
	e.handoff(next)
	<-p.resume
	if e.aborted {
		panic(errAbort{})
	}
}

func (p *Proc) curIter() *IterStats {
	if p.iter < 0 {
		p.BeginIter(0)
	}
	return &p.iters[p.iter]
}

// Send implements comm.Comm. See the package comment for the cost model.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.eng.p {
		panic(fmt.Sprintf("sim: rank %d sends to invalid rank %d", p.rank, dst))
	}
	n := m.Len()
	cost := p.eng.cfg.SendOverhead + p.eng.cfg.CopyCost(n)
	p.clock += cost
	arrival := p.eng.net.Transfer(p.rank, dst, n, p.clock)
	p.eng.queues[p.rank*p.eng.p+dst].push(pending{msg: m, arrival: arrival})
	p.sends++
	p.sendBytes += int64(n)
	it := p.curIter()
	it.Sends++
	it.Bytes += int64(n)
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: obs.KindSend, Rank: p.rank, Peer: dst, Bytes: n, Parts: len(m.Parts), Tag: m.Tag, Clock: p.clock, Dur: cost, Arrival: arrival, Iter: p.iter, Phase: p.phase})
	}
	p.eng.clockAdvanced(p)
	// Wake the destination if it is blocked waiting for exactly us.
	d := p.eng.procs[dst]
	if d.state == stateBlocked && d.waitSrc == p.rank {
		d.state = stateReady
		p.eng.heapPush(d)
	}
	p.yield()
}

// Recv implements comm.Comm.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.eng.p {
		panic(fmt.Sprintf("sim: rank %d receives from invalid rank %d", p.rank, src))
	}
	if !p.inRecv {
		p.inRecv = true
		p.recvStart = p.clock
	}
	for {
		q := &p.eng.queues[src*p.eng.p+p.rank]
		if q.n > 0 {
			pd := q.pop()
			if pd.arrival > p.recvStart {
				p.waitCount++
				p.waitTime += pd.arrival - p.recvStart
				if t := p.eng.opts.Tracer; t != nil {
					t.Trace(Event{Kind: obs.KindWait, Rank: p.rank, Peer: src, Clock: pd.arrival, Dur: pd.arrival - p.recvStart, Arrival: pd.arrival, Iter: p.iter, Phase: p.phase})
				}
			}
			if pd.arrival > p.clock {
				p.clock = pd.arrival
			}
			n := pd.msg.Len()
			cost := p.eng.cfg.RecvOverhead + p.eng.cfg.CopyCost(n)
			p.clock += cost
			p.recvs++
			p.recvBytes += int64(n)
			it := p.curIter()
			it.Recvs++
			it.Bytes += int64(n)
			p.inRecv = false
			if t := p.eng.opts.Tracer; t != nil {
				t.Trace(Event{Kind: obs.KindRecv, Rank: p.rank, Peer: src, Bytes: n, Parts: len(pd.msg.Parts), Tag: pd.msg.Tag, Clock: p.clock, Dur: cost, Arrival: pd.arrival, Iter: p.iter, Phase: p.phase})
			}
			p.eng.clockAdvanced(p)
			p.yield()
			return pd.msg
		}
		p.state = stateBlocked
		p.waitSrc = src
		p.eng.heapRemove(p)
		p.park()
	}
}

// Barrier implements comm.Comm.
func (p *Proc) Barrier() {
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: obs.KindBarrier, Rank: p.rank, Peer: -1, Clock: p.clock, Iter: p.iter, Phase: p.phase})
	}
	p.state = stateBarrier
	p.eng.barrierCount++
	p.eng.heapRemove(p)
	p.park()
}

// AdvanceCombine implements comm.Clock: charge the local cost of merging n
// received bytes into the accumulated bundle.
func (p *Proc) AdvanceCombine(n int) {
	d := p.eng.cfg.CombineCost(n)
	p.clock += d
	p.combineTime += d
	if t := p.eng.opts.Tracer; t != nil {
		t.Trace(Event{Kind: obs.KindCombine, Rank: p.rank, Peer: -1, Bytes: n, Clock: p.clock, Dur: d, Iter: p.iter, Phase: p.phase})
	}
	// The clock moved without a yield; keep the heap ordered so the next
	// dispatch still sees a consistent (clock, rank) key.
	p.eng.clockAdvanced(p)
}

// BeginIter implements comm.IterMarker.
func (p *Proc) BeginIter(i int) {
	if i < 0 {
		panic(fmt.Sprintf("sim: rank %d begins negative iteration %d", p.rank, i))
	}
	for len(p.iters) <= i {
		p.iters = append(p.iters, IterStats{})
	}
	p.iter = i
}

// BeginPhase implements comm.PhaseMarker: subsequent traced events carry
// the label. It costs nothing on the virtual clock.
func (p *Proc) BeginPhase(name string) { p.phase = name }
