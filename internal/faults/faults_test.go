package faults

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
)

// fakeEngine is a single-threaded two-sided mailbox: good enough to
// exercise the injector's send/recv interception without goroutines.
type fakeEngine struct {
	size    int
	queues  map[[2]int][]comm.Message
	combine int
	iters   []int
}

type fakeProc struct {
	eng  *fakeEngine
	rank int
}

func newFakeEngine(size int) *fakeEngine {
	return &fakeEngine{size: size, queues: make(map[[2]int][]comm.Message)}
}

func (e *fakeEngine) proc(rank int) *fakeProc { return &fakeProc{eng: e, rank: rank} }

func (p *fakeProc) Rank() int { return p.rank }
func (p *fakeProc) Size() int { return p.eng.size }
func (p *fakeProc) Send(dst int, m comm.Message) {
	k := [2]int{p.rank, dst}
	p.eng.queues[k] = append(p.eng.queues[k], m)
}
func (p *fakeProc) Recv(src int) comm.Message {
	k := [2]int{src, p.rank}
	q := p.eng.queues[k]
	if len(q) == 0 {
		panic(fmt.Sprintf("fake: rank %d recv from %d on empty queue", p.rank, src))
	}
	m := q[0]
	p.eng.queues[k] = q[1:]
	return m
}
func (p *fakeProc) Barrier()             {}
func (p *fakeProc) AdvanceCombine(n int) { p.eng.combine += n }
func (p *fakeProc) BeginIter(i int)      { p.eng.iters = append(p.eng.iters, i) }

func msg(origin int, payload string) comm.Message {
	return comm.Message{Parts: []comm.Part{{Origin: origin, Data: []byte(payload)}}}
}

func TestScheduleIsSeedDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.3, Duplicate: 0.3, Corrupt: 0.2, DelayProb: 0.4, MaxDelay: time.Microsecond}
	run := func() []Event {
		eng := newFakeEngine(2)
		in := New(plan)
		s := in.Wrap(eng.proc(0))
		for i := 0; i < 50; i++ {
			s.Send(1, msg(0, fmt.Sprintf("m%d", i)))
		}
		return in.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired at these rates over 50 messages")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedule differs across runs with identical seed:\n%v\nvs\n%v", a, b)
	}
	// A different seed must produce a different schedule.
	plan.Seed = 43
	if c := func() []Event {
		eng := newFakeEngine(2)
		in := New(plan)
		s := in.Wrap(eng.proc(0))
		for i := 0; i < 50; i++ {
			s.Send(1, msg(0, fmt.Sprintf("m%d", i)))
		}
		return in.Events()
	}(); reflect.DeepEqual(a, c) {
		t.Fatal("seed 42 and 43 produced the identical schedule")
	}
}

func TestDropNeverReachesEngine(t *testing.T) {
	eng := newFakeEngine(2)
	in := New(Plan{Faults: []Fault{{Kind: Drop, Src: 0, Dst: 1, Msg: 1}}})
	s := in.Wrap(eng.proc(0))
	s.Send(1, msg(0, "keep-0"))
	s.Send(1, msg(0, "dropped"))
	s.Send(1, msg(0, "keep-1"))
	if got := len(eng.queues[[2]int{0, 1}]); got != 2 {
		t.Fatalf("engine saw %d messages, want 2 (one dropped)", got)
	}
	r := in.Wrap(eng.proc(1))
	if m := r.Recv(0); string(m.Parts[0].Data) != "keep-0" {
		t.Fatalf("first delivery %q", m.Parts[0].Data)
	}
	if m := r.Recv(0); string(m.Parts[0].Data) != "keep-1" {
		t.Fatalf("second delivery %q", m.Parts[0].Data)
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].Kind != Drop || evs[0].Msg != 1 {
		t.Fatalf("events = %v", evs)
	}
}

func TestDuplicateIsDetectedAndDiscarded(t *testing.T) {
	eng := newFakeEngine(2)
	in := New(Plan{Faults: []Fault{{Kind: Duplicate, Src: 0, Dst: 1, Msg: 0}}})
	s := in.Wrap(eng.proc(0))
	s.Send(1, msg(0, "first"))
	s.Send(1, msg(0, "second"))
	if got := len(eng.queues[[2]int{0, 1}]); got != 3 {
		t.Fatalf("engine saw %d deliveries, want 3 (original + dup + second)", got)
	}
	r := in.Wrap(eng.proc(1))
	if m := r.Recv(0); string(m.Parts[0].Data) != "first" {
		t.Fatalf("first recv %q", m.Parts[0].Data)
	}
	// The duplicate must be transparently skipped: the next Recv
	// returns "second", not the duplicated "first".
	if m := r.Recv(0); string(m.Parts[0].Data) != "second" {
		t.Fatalf("second recv %q (duplicate leaked to the algorithm)", m.Parts[0].Data)
	}
}

func TestCorruptionIsDetectedAtReceiver(t *testing.T) {
	eng := newFakeEngine(2)
	in := New(Plan{Faults: []Fault{{Kind: Corrupt, Src: 0, Dst: 1, Msg: 0}}})
	s := in.Wrap(eng.proc(0))
	original := []byte("precious payload")
	s.Send(1, comm.Message{Parts: []comm.Part{{Origin: 0, Data: original}}})
	if string(original) != "precious payload" {
		t.Fatalf("sender buffer mutated by corruption: %q", original)
	}
	// The engine-side copy must actually be damaged.
	wire := eng.queues[[2]int{0, 1}][0]
	if string(wire.Parts[0].Data) == "precious payload" {
		t.Fatal("corrupt fault did not flip any byte on the wire")
	}
	r := in.Wrap(eng.proc(1))
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("corrupted delivery accepted")
		}
		if !strings.Contains(fmt.Sprint(rec), "corrupted delivery") || !strings.Contains(fmt.Sprint(rec), "0→1") {
			t.Fatalf("diagnostic does not name the fault: %v", rec)
		}
	}()
	r.Recv(0)
}

func TestKillAtOperation(t *testing.T) {
	eng := newFakeEngine(2)
	in := New(Plan{Kills: []KillAt{{Rank: 0, Op: 2}}})
	s := in.Wrap(eng.proc(0))
	s.Send(1, msg(0, "op0"))
	s.Barrier() // op1
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("rank survived its kill op")
		}
		if want := "rank 0 killed at operation 2"; !strings.Contains(fmt.Sprint(rec), want) {
			t.Fatalf("kill diagnostic %v, want substring %q", rec, want)
		}
		evs := in.Events()
		if len(evs) != 1 || evs[0].Kind != Kill || evs[0].Rank != 0 || evs[0].Op != 2 {
			t.Fatalf("kill event missing: %v", evs)
		}
	}()
	s.Send(1, msg(0, "op2 - never sent"))
}

func TestDelayFaultSleepsAndDelivers(t *testing.T) {
	eng := newFakeEngine(2)
	in := New(Plan{Faults: []Fault{{Kind: Delay, Src: 0, Dst: 1, Msg: 0, Delay: 5 * time.Millisecond}}})
	s := in.Wrap(eng.proc(0))
	start := time.Now()
	s.Send(1, msg(0, "slow"))
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delayed send returned after %v, want >= 5ms", d)
	}
	r := in.Wrap(eng.proc(1))
	if m := r.Recv(0); string(m.Parts[0].Data) != "slow" {
		t.Fatalf("delayed message corrupted: %q", m.Parts[0].Data)
	}
}

func TestMeteringInterfacesForward(t *testing.T) {
	eng := newFakeEngine(1)
	in := New(Plan{})
	c := in.Wrap(eng.proc(0))
	comm.ChargeCombine(c, 128)
	comm.MarkIter(c, 7)
	if eng.combine != 128 {
		t.Fatalf("AdvanceCombine not forwarded: %d", eng.combine)
	}
	if len(eng.iters) != 1 || eng.iters[0] != 7 {
		t.Fatalf("BeginIter not forwarded: %v", eng.iters)
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan reported active")
	}
	if !(Plan{Drop: 0.1}).Active() || !(Plan{Kills: []KillAt{{Rank: 0, Op: 0}}}).Active() {
		t.Fatal("non-empty plan reported inactive")
	}
}
