// Package faults injects deterministic communication faults into a
// live or tcp run for chaos testing. An Injector wraps every rank's
// comm.Comm; the wrapper intercepts Send/Recv/Barrier and applies the
// faults of a Plan: dropping, delaying, duplicating or corrupting
// individual messages on a (src, dst) link, and killing a rank when it
// reaches its Nth communication operation.
//
// The schedule is a pure function of the Plan. Rate-based faults are
// decided by hashing (Seed, src, dst, message index), never by a shared
// RNG, so the same seed produces the same fault schedule regardless of
// goroutine interleaving — a failing chaos run is replayable by seed.
//
// Faults are applied above the engine, at the comm.Comm boundary: a
// dropped message is never handed to the engine (the receiver blocks
// until a deadline converts the hang into an error), and engine-level
// operation counts see the post-fault traffic.
//
// The injector models an integrity- and duplicate-checking transport,
// the behaviour of any real fabric with CRC-bearing, sequence-numbered
// frames (the paper's NX and MPI layers both ran over such links):
// duplicated deliveries are detected at the receiver and silently
// discarded, so a run under Duplicate faults completes with the exact
// bundles of a fault-free run; corrupted deliveries are detected at the
// receiver, which aborts the run with a diagnostic naming the link —
// corruption is surfaced, never silently delivered to algorithm code.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/obs"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// Drop discards the message; it is never delivered.
	Drop Kind = iota
	// Delay sleeps before handing the message to the engine.
	Delay
	// Duplicate delivers the message twice; the receive side detects
	// and discards the second copy.
	Duplicate
	// Corrupt flips payload bytes; the receive side detects the damage
	// and aborts with a diagnostic.
	Corrupt
	// Kill terminates a rank at a chosen operation index.
	Kill
)

// String names the kind for events and diagnostics.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one explicit link fault: it hits the Msg-th message (0-based,
// in send order) on the Src→Dst link.
type Fault struct {
	Kind     Kind
	Src, Dst int
	// Msg indexes the message on the link, counting every Send in
	// program order (dropped messages included).
	Msg int
	// Delay is the injected latency for Delay faults; zero means
	// DefaultDelay.
	Delay time.Duration
}

// KillAt schedules the death of one rank: the rank panics when its
// running count of communication operations (Send, Recv and Barrier
// calls) reaches Op.
type KillAt struct {
	Rank int
	// Op is the 0-based operation index at which the rank dies.
	Op int
}

// DefaultDelay is used for Delay faults that do not specify a duration.
const DefaultDelay = time.Millisecond

// Plan describes a fault schedule. Zero value = no faults. Rate fields
// are per-message probabilities in [0, 1], decided deterministically
// from Seed; Faults and Kills are explicit, targeted injections applied
// in addition to the rates.
type Plan struct {
	// Seed drives the rate-based fault decisions.
	Seed int64
	// Drop, Duplicate, Corrupt, DelayProb are per-message fault
	// probabilities on every link.
	Drop, Duplicate, Corrupt, DelayProb float64
	// MaxDelay bounds rate-injected delays (uniform in (0, MaxDelay]);
	// zero means DefaultDelay.
	MaxDelay time.Duration
	// Faults lists explicit per-link faults.
	Faults []Fault
	// Kills lists ranks to terminate mid-run.
	Kills []KillAt
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Corrupt > 0 || p.DelayProb > 0 ||
		len(p.Faults) > 0 || len(p.Kills) > 0
}

// Event records one injected fault.
type Event struct {
	Kind     Kind
	Src, Dst int // the link, for link faults; -1 for kills
	Msg      int // message index on the link; -1 for kills
	Rank     int // killed rank; -1 for link faults
	Op       int // operation index of the kill; -1 for link faults
	Delay    time.Duration
}

// String formats the event for reports.
func (e Event) String() string {
	if e.Kind == Kill {
		return fmt.Sprintf("kill rank %d at op %d", e.Rank, e.Op)
	}
	s := fmt.Sprintf("%s msg #%d on link %d→%d", e.Kind, e.Msg, e.Src, e.Dst)
	if e.Kind == Delay {
		s += fmt.Sprintf(" (%v)", e.Delay)
	}
	return s
}

// delivery is one message handed to the engine on a link, in FIFO
// order. The receive side consumes entries in the same order — the
// engines guarantee per-(src,dst) FIFO delivery — and reacts to the
// flags: dup entries are discarded, corrupt entries abort.
type delivery struct {
	corrupt bool
	dup     bool
}

// link is the injector's shared per-(src,dst) state.
type link struct {
	sent  int // messages sent (fault indexing; includes dropped)
	log   []delivery
	taken int
}

// Injector owns the shared fault schedule of one run. Create one per
// run and wrap every rank's comm.Comm with Wrap. All methods are safe
// for concurrent use by the per-rank goroutines.
type Injector struct {
	plan     Plan
	explicit map[[3]int][]Fault // (src,dst,msg) → faults

	tr    obs.Tracer
	start time.Time

	mu     sync.Mutex
	links  map[[2]int]*link
	events []Event
}

// New builds an injector for the plan. Rates are clamped to [0, 1].
func New(plan Plan) *Injector {
	clamp := func(r *float64) {
		if *r < 0 {
			*r = 0
		}
		if *r > 1 {
			*r = 1
		}
	}
	clamp(&plan.Drop)
	clamp(&plan.Duplicate)
	clamp(&plan.Corrupt)
	clamp(&plan.DelayProb)
	in := &Injector{plan: plan, explicit: make(map[[3]int][]Fault), links: make(map[[2]int]*link)}
	for _, f := range plan.Faults {
		k := [3]int{f.Src, f.Dst, f.Msg}
		in.explicit[k] = append(in.explicit[k], f)
	}
	return in
}

// SetTracer mirrors every injected fault into an engine-agnostic event
// stream (kind "fault", the fault name in Event.Fault) so chaos lands in
// the same trace as the traffic that triggered it. Wall stamps are
// nanoseconds since start — pass the same zero point the engine's tracer
// uses. Call before the run starts; the tracer must be safe for
// concurrent use.
func (in *Injector) SetTracer(t obs.Tracer, start time.Time) {
	in.tr = t
	in.start = start
}

// trace mirrors one fault event to the tracer (nil-safe). Link faults
// land on the sending rank's track; kills on the killed rank's.
func (in *Injector) trace(e Event) {
	if in.tr == nil {
		return
	}
	oe := obs.Event{
		Kind: obs.KindFault, Fault: e.Kind.String(), Iter: -1,
		Wall: time.Since(in.start).Nanoseconds(),
		Dur:  network.Time(e.Delay.Nanoseconds()),
	}
	if e.Kind == Kill {
		oe.Rank, oe.Peer, oe.Seq = e.Rank, -1, e.Op
	} else {
		oe.Rank, oe.Peer, oe.Seq = e.Src, e.Dst, e.Msg
	}
	in.tr.Trace(oe)
}

// Events returns the injected faults so far in a canonical order
// (independent of goroutine interleaving).
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := append([]Event(nil), in.events...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Kind < b.Kind
	})
	return out
}

// Wrap returns c with the injector's faults applied. Call once per
// rank, with every rank of the run wrapped by the same Injector (the
// duplicate/corruption detection needs the shared delivery log).
func (in *Injector) Wrap(c comm.Comm) comm.Comm {
	kill := -1
	for _, k := range in.plan.Kills {
		if k.Rank == c.Rank() {
			kill = k.Op
		}
	}
	return &proc{inner: c, inj: in, kill: kill}
}

// decision is the set of faults applying to one message.
type decision struct {
	drop, dup, corrupt bool
	delay              time.Duration
	corruptByte        uint64 // hash source for the flipped byte position
}

// decide computes the faults for message #msg on link src→dst. Pure
// function of the plan — this is what makes the schedule seed-stable.
func (in *Injector) decide(src, dst, msg int) decision {
	var d decision
	p := in.plan
	s, t, m := uint64(src), uint64(dst), uint64(msg)
	if p.Drop > 0 && frac(p.Seed, 1, s, t, m) < p.Drop {
		d.drop = true
	}
	if p.Duplicate > 0 && frac(p.Seed, 2, s, t, m) < p.Duplicate {
		d.dup = true
	}
	if p.Corrupt > 0 && frac(p.Seed, 3, s, t, m) < p.Corrupt {
		d.corrupt = true
	}
	if p.DelayProb > 0 && frac(p.Seed, 4, s, t, m) < p.DelayProb {
		max := p.MaxDelay
		if max <= 0 {
			max = DefaultDelay
		}
		d.delay = time.Duration(frac(p.Seed, 5, s, t, m)*float64(max)) + 1
	}
	for _, f := range in.explicit[[3]int{src, dst, msg}] {
		switch f.Kind {
		case Drop:
			d.drop = true
		case Duplicate:
			d.dup = true
		case Corrupt:
			d.corrupt = true
		case Delay:
			dl := f.Delay
			if dl <= 0 {
				dl = DefaultDelay
			}
			d.delay = dl
		}
	}
	d.corruptByte = mix(p.Seed, 6, s, t, m)
	return d
}

func (in *Injector) linkFor(src, dst int) *link {
	k := [2]int{src, dst}
	l := in.links[k]
	if l == nil {
		l = &link{}
		in.links[k] = l
	}
	return l
}

// proc is the per-rank faulted view of a comm.Comm. It forwards the
// metering interfaces so sim-style cost accounting still reaches the
// engine when one supports it.
type proc struct {
	inner comm.Comm
	inj   *Injector
	kill  int // op index at which this rank dies; -1 = never
	ops   int
}

var (
	_ comm.Comm        = (*proc)(nil)
	_ comm.Clock       = (*proc)(nil)
	_ comm.IterMarker  = (*proc)(nil)
	_ comm.PhaseMarker = (*proc)(nil)
)

func (p *proc) Rank() int { return p.inner.Rank() }
func (p *proc) Size() int { return p.inner.Size() }

// AdvanceCombine implements comm.Clock by forwarding to the engine.
func (p *proc) AdvanceCombine(n int) { comm.ChargeCombine(p.inner, n) }

// BeginIter implements comm.IterMarker by forwarding to the engine.
func (p *proc) BeginIter(i int) { comm.MarkIter(p.inner, i) }

// BeginPhase implements comm.PhaseMarker by forwarding to the engine.
func (p *proc) BeginPhase(name string) { comm.MarkPhase(p.inner, name) }

// op counts one communication operation and kills the rank when its
// schedule says so.
func (p *proc) op() {
	n := p.ops
	p.ops++
	if p.kill >= 0 && n == p.kill {
		in := p.inj
		ev := Event{Kind: Kill, Src: -1, Dst: -1, Msg: -1, Rank: p.Rank(), Op: n}
		in.mu.Lock()
		in.events = append(in.events, ev)
		in.mu.Unlock()
		in.trace(ev)
		panic(fmt.Errorf("faults: rank %d killed at operation %d (injected)", p.Rank(), n))
	}
}

// Send implements comm.Comm with the link's faults applied.
func (p *proc) Send(dst int, m comm.Message) {
	p.op()
	src := p.Rank()
	in := p.inj

	in.mu.Lock()
	l := in.linkFor(src, dst)
	idx := l.sent
	l.sent++
	d := in.decide(src, dst, idx)
	ev := Event{Src: src, Dst: dst, Msg: idx, Rank: -1, Op: -1}
	if d.delay > 0 {
		ev.Kind, ev.Delay = Delay, d.delay
		in.events = append(in.events, ev)
		in.trace(ev)
	}
	if d.drop {
		ev.Kind, ev.Delay = Drop, 0
		in.events = append(in.events, ev)
		in.trace(ev)
		in.mu.Unlock()
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		return // never handed to the engine
	}
	if d.corrupt {
		ev.Kind, ev.Delay = Corrupt, 0
		in.events = append(in.events, ev)
		in.trace(ev)
	}
	if d.dup {
		ev.Kind, ev.Delay = Duplicate, 0
		in.events = append(in.events, ev)
		in.trace(ev)
	}
	// Register the deliveries before the engine can make them
	// receivable: the receive side pops this log in FIFO order.
	l.log = append(l.log, delivery{corrupt: d.corrupt})
	if d.dup {
		l.log = append(l.log, delivery{corrupt: d.corrupt, dup: true})
	}
	in.mu.Unlock()

	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.corrupt {
		m = corruptCopy(m, d.corruptByte)
	}
	p.inner.Send(dst, m)
	if d.dup {
		p.inner.Send(dst, m)
	}
}

// Recv implements comm.Comm: it consumes engine deliveries, discarding
// injected duplicates and aborting on detected corruption.
func (p *proc) Recv(src int) comm.Message {
	p.op()
	dst := p.Rank()
	for {
		m := p.inner.Recv(src)
		in := p.inj
		in.mu.Lock()
		l := in.linkFor(src, dst)
		if l.taken >= len(l.log) {
			in.mu.Unlock()
			panic(fmt.Errorf("faults: rank %d received unlogged message from %d (traffic bypassed the injector?)", dst, src))
		}
		d := l.log[l.taken]
		idx := l.taken
		l.taken++
		in.mu.Unlock()
		if d.dup {
			continue // duplicate detected and discarded
		}
		if d.corrupt {
			panic(fmt.Errorf("faults: rank %d detected corrupted delivery #%d on link %d→%d (injected corruption)", dst, idx, src, dst))
		}
		return m
	}
}

// Barrier implements comm.Comm; it only counts toward the kill
// schedule (barrier traffic is engine-internal).
func (p *proc) Barrier() {
	p.op()
	p.inner.Barrier()
}

// corruptCopy returns m with payloads deep-copied and one byte of each
// non-empty part flipped — the original buffers (aliased by the
// sender's bundle) are never touched.
func corruptCopy(m comm.Message, h uint64) comm.Message {
	cp := comm.Message{Tag: m.Tag, Parts: make([]comm.Part, len(m.Parts))}
	for i, part := range m.Parts {
		cp.Parts[i] = part
		if len(part.Data) == 0 {
			continue
		}
		data := make([]byte, len(part.Data))
		copy(data, part.Data)
		pos := int((h + uint64(i)) % uint64(len(data)))
		data[pos] ^= 0xFF
		cp.Parts[i].Data = data
	}
	return cp
}

// mix is a splitmix64-style hash of the seed and three indices.
func mix(seed int64, salt, a, b, c uint64) uint64 {
	x := uint64(seed)
	x ^= (salt + 1) * 0x9E3779B97F4A7C15
	x ^= (a + 1) * 0xBF58476D1CE4E5B9
	x ^= (b + 1) * 0x94D049BB133111EB
	x ^= (c + 1) * 0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// frac maps the hash to a uniform float64 in [0, 1).
func frac(seed int64, salt, a, b, c uint64) float64 {
	return float64(mix(seed, salt, a, b, c)>>11) / float64(1<<53)
}
