package faults_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/tcp"
	"repro/internal/topology"
)

// chaosSpec is the 3×4 mesh with 5 cross-distributed sources every
// engine's correctness matrix uses.
func chaosSpec(t *testing.T) core.Spec {
	t.Helper()
	sources, err := dist.Cross().Sources(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{Rows: 3, Cols: 4, Sources: sources, Indexing: topology.SnakeRowMajor}
}

// runChaos executes one broadcast algorithm on the named engine with
// every rank's comm wrapped by a fresh injector for plan, and returns
// the delivered bundles, the canonical injected-event log, and the run
// error.
func runChaos(t *testing.T, engine string, plan faults.Plan, recvTimeout time.Duration) ([]comm.Message, []faults.Event, error) {
	t.Helper()
	spec := chaosSpec(t)
	alg := core.BrXYSource()
	p := spec.Rows * spec.Cols
	inj := faults.New(plan)
	out := make([]comm.Message, p)
	body := func(c comm.Comm) {
		fc := inj.Wrap(c)
		mine := core.InitialMessage(spec, fc.Rank(), []byte(fmt.Sprintf("chaos-%d", fc.Rank())))
		out[fc.Rank()] = alg.Run(fc, spec, mine)
	}
	var err error
	switch engine {
	case "live":
		_, err = live.RunOpts(p, live.Options{RecvTimeout: recvTimeout, RunTimeout: 60 * time.Second},
			func(pr *live.Proc) { body(pr) })
	case "tcp":
		_, err = tcp.RunOpts(p, tcp.Options{RecvTimeout: recvTimeout, RunTimeout: 60 * time.Second},
			func(pr *tcp.Proc) { body(pr) })
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	return out, inj.Events(), err
}

// assertBundles checks that every rank delivered exactly the fault-free
// result: all source origins, with the payload each source injected.
func assertBundles(t *testing.T, out []comm.Message, spec core.Spec) {
	t.Helper()
	for rank, m := range out {
		if !reflect.DeepEqual(m.Origins(), spec.Sources) {
			t.Fatalf("rank %d origins %v, want %v", rank, m.Origins(), spec.Sources)
		}
		for _, part := range m.Parts {
			if want := fmt.Sprintf("chaos-%d", part.Origin); string(part.Data) != want {
				t.Fatalf("rank %d delivered %q for origin %d, want %q", rank, part.Data, part.Origin, want)
			}
		}
	}
}

var chaosEngines = []string{"live", "tcp"}

// TestChaosGracefulFaultsPreserveResults: under duplicate and delay
// faults — the kinds a real transport absorbs — the run must complete
// with bundles identical to a fault-free run, and the injected event
// schedule must be identical across same-seed runs.
func TestChaosGracefulFaultsPreserveResults(t *testing.T) {
	plan := faults.Plan{Seed: 42, Duplicate: 0.3, DelayProb: 0.3, MaxDelay: 2 * time.Millisecond}
	for _, engine := range chaosEngines {
		t.Run(engine, func(t *testing.T) {
			spec := chaosSpec(t)
			out1, ev1, err := runChaos(t, engine, plan, 30*time.Second)
			if err != nil {
				t.Fatalf("graceful plan aborted the run: %v", err)
			}
			assertBundles(t, out1, spec)
			if len(ev1) == 0 {
				t.Fatal("plan injected nothing; the test is vacuous")
			}
			out2, ev2, err := runChaos(t, engine, plan, 30*time.Second)
			if err != nil {
				t.Fatalf("replay aborted: %v", err)
			}
			assertBundles(t, out2, spec)
			if !reflect.DeepEqual(ev1, ev2) {
				t.Fatalf("same seed, different schedules:\nfirst:  %v\nsecond: %v", ev1, ev2)
			}
		})
	}
}

// TestChaosDropConvertsHangIntoDeadlineError: with every message
// dropped, receivers starve; the receive deadline must convert the hang
// into an error naming the blocked rank and peer, within a bound.
func TestChaosDropConvertsHangIntoDeadlineError(t *testing.T) {
	plan := faults.Plan{Seed: 7, Drop: 1.0}
	for _, engine := range chaosEngines {
		t.Run(engine, func(t *testing.T) {
			start := time.Now()
			_, ev, err := runChaos(t, engine, plan, 300*time.Millisecond)
			if err == nil {
				t.Fatal("total message loss did not fail the run")
			}
			for _, want := range []string{"rank", "recv from", "deadline"} {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("deadline diagnostic %q missing %q", err, want)
				}
			}
			if d := time.Since(start); d > 15*time.Second {
				t.Fatalf("abort took %v; hang not bounded", d)
			}
			dropped := false
			for _, e := range ev {
				if e.Kind == faults.Drop {
					dropped = true
				}
			}
			if !dropped {
				t.Fatal("no drop events recorded")
			}
		})
	}
}

// TestChaosKillAbortsNamingTheRank: a rank killed mid-run must abort
// the machine with the killed rank as the reported root cause, while
// blocked peers unwind.
func TestChaosKillAbortsNamingTheRank(t *testing.T) {
	plan := faults.Plan{Kills: []faults.KillAt{{Rank: 5, Op: 2}}}
	for _, engine := range chaosEngines {
		t.Run(engine, func(t *testing.T) {
			_, ev, err := runChaos(t, engine, plan, 5*time.Second)
			if err == nil {
				t.Fatal("killed rank did not fail the run")
			}
			if !strings.Contains(err.Error(), "rank 5 killed at operation 2") {
				t.Fatalf("kill diagnostic lost: %v", err)
			}
			if len(ev) != 1 || ev[0].Kind != faults.Kill || ev[0].Rank != 5 {
				t.Fatalf("kill event log: %v", ev)
			}
		})
	}
}

// TestChaosCorruptionIsDetectedNotDelivered: a corrupted message must
// abort with a diagnostic naming the link — never reach algorithm code
// as a wrong answer.
func TestChaosCorruptionIsDetectedNotDelivered(t *testing.T) {
	plan := faults.Plan{Seed: 11, Corrupt: 0.2}
	for _, engine := range chaosEngines {
		t.Run(engine, func(t *testing.T) {
			out, ev, err := runChaos(t, engine, plan, 5*time.Second)
			if err == nil {
				// The seed happened to corrupt nothing on the traffic
				// pattern — that would make the test vacuous.
				t.Fatalf("no abort despite corruption plan; events: %v", ev)
			}
			if !strings.Contains(err.Error(), "detected corrupted delivery") {
				t.Fatalf("corruption diagnostic lost: %v", err)
			}
			// No rank may have returned a bundle carrying damaged bytes.
			for rank, m := range out {
				for _, part := range m.Parts {
					if part.Data != nil && string(part.Data) != fmt.Sprintf("chaos-%d", part.Origin) {
						t.Fatalf("rank %d holds corrupted payload %q for origin %d", rank, part.Data, part.Origin)
					}
				}
			}
		})
	}
}

// TestChaosExplicitFaultTargetsOneLink: an explicit drop of one early
// message on one link must starve only that link's receiver, and the
// deadline error must name it.
func TestChaosExplicitFaultTargetsOneLink(t *testing.T) {
	for _, engine := range chaosEngines {
		t.Run(engine, func(t *testing.T) {
			// Drop the first message on some link the broadcast uses; the
			// sweep over candidate links stops at the first one that
			// actually carries traffic (events non-empty).
			for _, link := range [][2]int{{0, 1}, {1, 0}, {4, 5}} {
				plan := faults.Plan{Faults: []faults.Fault{{Kind: faults.Drop, Src: link[0], Dst: link[1], Msg: 0}}}
				_, ev, err := runChaos(t, engine, plan, 300*time.Millisecond)
				if len(ev) == 0 {
					continue // link unused by this algorithm's schedule
				}
				if err == nil {
					t.Fatalf("dropped message on live link %v did not fail the run", link)
				}
				if !strings.Contains(err.Error(), "deadline") {
					t.Fatalf("starved link %v: diagnostic %v", link, err)
				}
				return
			}
			t.Fatal("no candidate link carried traffic; broaden the sweep")
		})
	}
}
