package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func events(n int) []sim.Event {
	out := make([]sim.Event, n)
	for i := range out {
		kind := "send"
		if i%2 == 1 {
			kind = "recv"
		}
		out[i] = sim.Event{Kind: kind, Rank: i % 4, Peer: (i + 1) % 4, Bytes: 100 + i, Clock: 1000}
	}
	return out
}

func TestRecorderCountsAndRetains(t *testing.T) {
	r := NewRecorder(0)
	for _, e := range events(10) {
		r.Trace(e)
	}
	if len(r.Events) != 10 {
		t.Fatalf("retained %d events", len(r.Events))
	}
	if r.Count("send") != 5 || r.Count("recv") != 5 {
		t.Fatalf("counts: send=%d recv=%d", r.Count("send"), r.Count("recv"))
	}
	if r.Count("barrier") != 0 {
		t.Fatal("phantom barrier count")
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(3)
	for _, e := range events(10) {
		r.Trace(e)
	}
	if len(r.Events) != 3 {
		t.Fatalf("cap ignored: %d events retained", len(r.Events))
	}
	// Counters still see everything.
	if r.Count("send")+r.Count("recv") != 10 {
		t.Fatalf("counters dropped events: %s", r.Summary())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	for _, e := range events(5) {
		r.Trace(e)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e sim.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Kind != r.Events[n].Kind || e.Bytes != r.Events[n].Bytes {
			t.Fatalf("line %d mismatch: %+v vs %+v", n, e, r.Events[n])
		}
		n++
	}
	if n != 5 {
		t.Fatalf("wrote %d lines", n)
	}
}

func TestSummarySorted(t *testing.T) {
	r := NewRecorder(0)
	r.Trace(sim.Event{Kind: "send"})
	r.Trace(sim.Event{Kind: "barrier"})
	r.Trace(sim.Event{Kind: "send"})
	got := r.Summary()
	if got != "barrier=1 send=2" {
		t.Fatalf("Summary = %q", got)
	}
	if strings.Contains(got, "recv") {
		t.Fatal("phantom kind in summary")
	}
}

func TestZeroValueRecorderUsable(t *testing.T) {
	var r Recorder
	r.Trace(sim.Event{Kind: "send"})
	if r.Count("send") != 1 {
		t.Fatal("zero-value recorder dropped event")
	}
}

func TestRecorderDroppedCount(t *testing.T) {
	r := NewRecorder(3)
	for _, e := range events(10) {
		r.Trace(e)
	}
	if r.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", r.Dropped())
	}
	if got := r.Summary(); !strings.Contains(got, "dropped=7") {
		t.Fatalf("Summary hides truncation: %q", got)
	}
	// An uncapped recorder never reports drops.
	r2 := NewRecorder(0)
	for _, e := range events(10) {
		r2.Trace(e)
	}
	if r2.Dropped() != 0 {
		t.Fatalf("uncapped recorder dropped %d", r2.Dropped())
	}
	if strings.Contains(r2.Summary(), "dropped") {
		t.Fatalf("uncapped summary mentions drops: %q", r2.Summary())
	}
}

func TestWriteJSONTruncationNote(t *testing.T) {
	r := NewRecorder(2)
	for _, e := range events(5) {
		r.Trace(e)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 events + 1 note, got %d lines", len(lines))
	}
	var note struct {
		Kind    string `json:"kind"`
		Dropped int    `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &note); err != nil {
		t.Fatal(err)
	}
	if note.Kind != "truncated" || note.Dropped != 3 {
		t.Fatalf("note = %+v, want truncated/3", note)
	}
	// The validator accepts the note without counting it as an event.
	n, err := ValidateJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ValidateJSONL counted %d events, want 2", n)
	}
}
