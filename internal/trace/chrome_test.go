package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smallRun traces 2-Step on a 2×2 simulated Paragon — small enough that
// the exported Chrome trace is a reviewable golden file, deterministic
// because the simulator is.
func smallRun(t *testing.T) *Recorder {
	t.Helper()
	m := machine.Paragon(2, 2)
	nw, err := m.NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Rows: 2, Cols: 2, Sources: []int{0, 3}, Indexing: topology.SnakeRowMajor}
	rec := NewRecorder(0)
	if _, err := sim.Run(nw, func(p *sim.Proc) {
		mine := core.InitialMessageLen(spec, p.Rank(), 64)
		core.TwoStep().Run(p, spec, mine)
	}, sim.Options{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestWriteChromeValidates(t *testing.T) {
	rec := smallRun(t)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "sim"); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("own output invalid: %v", err)
	}
	if st.Ranks != 4 {
		t.Errorf("ranks = %d, want 4", st.Ranks)
	}
	if st.Slices == 0 || st.Counters == 0 {
		t.Errorf("missing tracks: %+v", st)
	}
	// Every simulated message is delivered, so every send's flow arrow
	// must find its matching recv.
	if sends := rec.Count(obs.KindSend); st.Flows != sends {
		t.Errorf("flows = %d, want one per send (%d)", st.Flows, sends)
	}
}

func TestChromeGolden(t *testing.T) {
	rec := smallRun(t)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "sim"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "twostep_2x2.chrome.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from %s (len %d vs %d); rerun with -update and review the diff",
			golden, buf.Len(), len(want))
	}
}

func TestJSONLRoundTripFromRun(t *testing.T) {
	rec := smallRun(t)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rec.Events) {
		t.Fatalf("round-tripped %d events, recorded %d", n, len(rec.Events))
	}
}

func TestIterSeries(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindBarrier, Rank: 0, Iter: -1, Clock: 5},
		{Kind: obs.KindSend, Rank: 0, Peer: 1, Bytes: 100, Iter: 0, Clock: 10, Dur: 4},
		{Kind: obs.KindSend, Rank: 1, Peer: 0, Bytes: 50, Iter: 0, Clock: 12, Dur: 4},
		{Kind: obs.KindRecv, Rank: 1, Peer: 0, Bytes: 100, Iter: 0, Clock: 20, Dur: 2},
		{Kind: obs.KindWait, Rank: 1, Peer: 0, Iter: 1, Clock: 40, Dur: 8},
		{Kind: obs.KindSend, Rank: 0, Peer: 1, Bytes: 30, Iter: 1, Clock: 50, Dur: 4},
	}
	series := IterSeries(events)
	if len(series) != 2 {
		t.Fatalf("series = %+v, want 2 iterations", series)
	}
	it0, it1 := series[0], series[1]
	if it0.Iter != 0 || it0.Sends != 2 || it0.Recvs != 1 || it0.Bytes != 150 {
		t.Errorf("iter 0 = %+v", it0)
	}
	if it1.Iter != 1 || it1.Sends != 1 || it1.Waits != 1 || it1.WaitTime != 8 {
		t.Errorf("iter 1 = %+v", it1)
	}
	if it0.Rate() <= 0 {
		t.Errorf("iter 0 rate = %v, want positive", it0.Rate())
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [}`,
		"empty":         `{"traceEvents": []}`,
		"unnamed":       `{"traceEvents": [{"ph": "X", "ts": 1}]}`,
		"unknown phase": `{"traceEvents": [{"name": "x", "ph": "Z", "ts": 1}]}`,
		"negative ts":   `{"traceEvents": [{"name": "x", "ph": "X", "ts": -1}]}`,
		"orphan finish": `{"traceEvents": [{"name": "m", "ph": "f", "ts": 1, "id": 9}]}`,
	}
	for label, data := range cases {
		if _, err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s accepted", label)
		}
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	if _, err := ValidateJSONL([]byte("{\"kind\":\"send\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ValidateJSONL([]byte("{\"rank\":3}\n")); err == nil {
		t.Error("kindless event accepted")
	}
}
