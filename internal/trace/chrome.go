package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/network"
	"repro/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Only the fields this exporter uses
// are modeled.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// usec converts an engine timestamp (virtual or wall nanoseconds) to the
// Chrome trace microsecond unit.
func usec(t network.Time) float64 { return float64(t) / 1e3 }

// WriteChrome exports events in Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - one track (thread) per rank, named "rank N";
//   - duration slices for send, recv, wait and combine events, with
//     bytes/tag/iteration/phase in the slice args;
//   - a flow arrow from each send slice to the matching recv slice
//     (messages on a (src, dst) link are FIFO in every engine, so the
//     k-th send to a peer matches the k-th receive from it);
//   - instant events for barriers and injected faults;
//   - a per-iteration counter track ("iter bytes"/"iter sends") — the
//     link-utilization time series of the run.
//
// Simulated runs are placed on the virtual clock, live/tcp runs on the
// wall clock (auto-detected via obs.HasWall). name labels the process
// ("sim", "live", "tcp"). dropped, when positive, records in the file
// metadata that the recorder truncated the stream.
func WriteChrome(w io.Writer, name string, events []obs.Event, dropped int) error {
	wall := obs.HasWall(events)
	out := chromeFile{DisplayTimeUnit: "ms"}
	if name == "" {
		name = "run"
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": name},
	})
	if dropped > 0 {
		out.OtherData = map[string]any{"truncated": true, "droppedEvents": dropped}
	}

	// Thread-name metadata for every rank that appears, in rank order.
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	order := make([]int, 0, len(ranks))
	for r := range ranks {
		order = append(order, r)
	}
	sort.Ints(order)
	for _, r := range order {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"sort_index": r}})
	}

	// Flow bookkeeping: sends push ids per (src, dst), receives pop —
	// FIFO per link in every engine.
	flows := map[[2]int][]int{}
	nextFlow := 1

	for _, e := range events {
		end := usec(e.End(wall))
		start := usec(e.Start(wall))
		args := map[string]any{"iter": e.Iter}
		if e.Bytes > 0 {
			args["bytes"] = e.Bytes
		}
		if e.Parts > 0 {
			args["parts"] = e.Parts
		}
		if e.Tag != 0 {
			args["tag"] = e.Tag
		}
		if e.Phase != "" {
			args["phase"] = e.Phase
		}
		switch e.Kind {
		case obs.KindSend:
			args["to"] = e.Peer
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "send", Cat: "comm", Ph: "X", Ts: start, Dur: end - start,
				Pid: 0, Tid: e.Rank, Args: args,
			})
			id := nextFlow
			nextFlow++
			key := [2]int{e.Rank, e.Peer}
			flows[key] = append(flows[key], id)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "msg", Cat: "comm", Ph: "s", Ts: start, Pid: 0, Tid: e.Rank, ID: id,
			})
		case obs.KindRecv:
			args["from"] = e.Peer
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "recv", Cat: "comm", Ph: "X", Ts: start, Dur: end - start,
				Pid: 0, Tid: e.Rank, Args: args,
			})
			key := [2]int{e.Peer, e.Rank}
			if q := flows[key]; len(q) > 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "msg", Cat: "comm", Ph: "f", BP: "e", Ts: start,
					Pid: 0, Tid: e.Rank, ID: q[0],
				})
				flows[key] = q[1:]
			}
		case obs.KindWait:
			args["on"] = e.Peer
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "wait", Cat: "wait", Ph: "X", Ts: start, Dur: end - start,
				Pid: 0, Tid: e.Rank, Args: args,
			})
		case obs.KindCombine:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "combine", Cat: "compute", Ph: "X", Ts: start, Dur: end - start,
				Pid: 0, Tid: e.Rank, Args: args,
			})
		case obs.KindBarrier:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "barrier", Cat: "sync", Ph: "i", Ts: end, Pid: 0, Tid: e.Rank,
				S: "t", Args: args,
			})
		case obs.KindFault:
			args["seq"] = e.Seq
			if e.Peer >= 0 {
				args["link"] = fmt.Sprintf("%d->%d", e.Rank, e.Peer)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "fault:" + e.Fault, Cat: "fault", Ph: "i", Ts: end,
				Pid: 0, Tid: e.Rank, S: "t", Args: args,
			})
		default:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind, Ph: "i", Ts: end, Pid: 0, Tid: e.Rank, S: "t", Args: args,
			})
		}
	}

	// Per-iteration counter track: the link-utilization series.
	for _, it := range IterSeries(events) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "iter bytes", Ph: "C", Ts: usec(it.Start), Pid: 0,
			Args: map[string]any{"bytes": it.Bytes},
		}, chromeEvent{
			Name: "iter sends", Ph: "C", Ts: usec(it.Start), Pid: 0,
			Args: map[string]any{"sends": it.Sends},
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	return nil
}

// WriteChrome exports the retained events (see the package-level
// WriteChrome); a capped trace is flagged as truncated in the metadata.
func (r *Recorder) WriteChrome(w io.Writer, name string) error {
	return WriteChrome(w, name, r.Events, r.Dropped())
}

// IterStat aggregates one algorithm iteration across all ranks: the
// per-iteration traffic volume behind the paper's av_msg_lgth and
// congestion parameters, viewed as a time series.
type IterStat struct {
	Iter         int
	Sends, Recvs int
	Waits        int
	Faults       int
	Bytes        int64        // payload bytes sent this iteration
	WaitTime     network.Time // summed wait durations
	Start, End   network.Time // event-timestamp span of the iteration
}

// Rate returns the iteration's send-byte throughput in bytes per second
// of its native clock (virtual for sim, wall for live/tcp) — the
// link-utilization series plotted by cmd/stptrace.
func (s IterStat) Rate() float64 {
	if s.End <= s.Start {
		return 0
	}
	return float64(s.Bytes) / (float64(s.End-s.Start) / 1e9)
}

// IterSeries folds an event stream into per-iteration statistics, ordered
// by iteration. Events before the first BeginIter (Iter < 0) are skipped.
func IterSeries(events []obs.Event) []IterStat {
	wall := obs.HasWall(events)
	byIter := map[int]*IterStat{}
	for _, e := range events {
		if e.Iter < 0 {
			continue
		}
		st := byIter[e.Iter]
		if st == nil {
			st = &IterStat{Iter: e.Iter, Start: e.Start(wall)}
			byIter[e.Iter] = st
		}
		if t := e.Start(wall); t < st.Start {
			st.Start = t
		}
		if t := e.End(wall); t > st.End {
			st.End = t
		}
		switch e.Kind {
		case obs.KindSend:
			st.Sends++
			st.Bytes += int64(e.Bytes)
		case obs.KindRecv:
			st.Recvs++
		case obs.KindWait:
			st.Waits++
			st.WaitTime += e.Dur
		case obs.KindFault:
			st.Faults++
		}
	}
	out := make([]IterStat, 0, len(byIter))
	for _, st := range byIter {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out
}

// ChromeStats summarizes a validated Chrome trace file.
type ChromeStats struct {
	Slices   int // ph "X" duration events
	Instants int // ph "i" events
	Flows    int // matched s→f flow pairs
	Counters int // ph "C" events
	Ranks    int // distinct tids with slices or instants
}

// ValidateChrome parses a Chrome trace file produced by WriteChrome and
// checks the structural schema: a traceEvents array whose entries carry a
// known phase, non-negative timestamps, non-negative durations on slices,
// and flow starts matched by flow finishes with the same id. It returns
// summary statistics for further assertions.
func ValidateChrome(data []byte) (ChromeStats, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return ChromeStats{}, fmt.Errorf("trace: chrome file does not parse: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return ChromeStats{}, fmt.Errorf("trace: chrome file has no traceEvents")
	}
	var st ChromeStats
	ranks := map[int]bool{}
	starts := map[int]int{}
	finishes := map[int]int{}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return st, fmt.Errorf("trace: event %d has no name", i)
		}
		if e.Ts < 0 {
			return st, fmt.Errorf("trace: event %d (%s) has negative ts %v", i, e.Name, e.Ts)
		}
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return st, fmt.Errorf("trace: slice %d (%s) has negative dur %v", i, e.Name, e.Dur)
			}
			st.Slices++
			ranks[e.Tid] = true
		case "i":
			st.Instants++
			ranks[e.Tid] = true
		case "s":
			if e.ID == 0 {
				return st, fmt.Errorf("trace: flow start %d has no id", i)
			}
			starts[e.ID]++
		case "f":
			if e.ID == 0 {
				return st, fmt.Errorf("trace: flow finish %d has no id", i)
			}
			finishes[e.ID]++
		case "C":
			st.Counters++
		case "M":
			// metadata
		default:
			return st, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
	}
	for id, n := range finishes {
		if starts[id] < n {
			return st, fmt.Errorf("trace: flow id %d finishes %d times but starts %d", id, n, starts[id])
		}
	}
	for id, n := range starts {
		if m := finishes[id]; m > 0 {
			if m != n {
				return st, fmt.Errorf("trace: flow id %d starts %d times, finishes %d", id, n, m)
			}
			st.Flows += n
		}
	}
	st.Ranks = len(ranks)
	return st, nil
}

// ValidateJSONL parses a JSON-lines event dump produced by WriteJSON and
// returns the number of event lines (the trailing truncation note, if
// present, is validated but not counted).
func ValidateJSONL(data []byte) (int, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	n := 0
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			return n, fmt.Errorf("trace: jsonl line %d does not parse: %w", n+1, err)
		}
		if e.Kind == "" {
			return n, fmt.Errorf("trace: jsonl line %d has no kind", n+1)
		}
		if e.Kind == "truncated" {
			continue
		}
		n++
	}
	return n, nil
}
