// Package trace records simulator events for inspection and export. A
// Recorder plugs into sim.Options.Tracer; afterwards the events can be
// dumped as JSON lines (one event per line) or summarized per kind.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Recorder accumulates simulator events. It is used from within a single
// scheduler, so it needs no locking.
type Recorder struct {
	// Events holds every traced event in simulation order.
	Events []sim.Event
	// Cap, when positive, bounds the number of retained events; further
	// events only update the counters.
	Cap    int
	counts map[string]int
}

// NewRecorder returns a Recorder retaining at most cap events (0 = all).
func NewRecorder(cap int) *Recorder {
	return &Recorder{Cap: cap, counts: make(map[string]int)}
}

// Trace implements sim.Tracer.
func (r *Recorder) Trace(e sim.Event) {
	if r.counts == nil {
		r.counts = make(map[string]int)
	}
	r.counts[e.Kind]++
	if r.Cap > 0 && len(r.Events) >= r.Cap {
		return
	}
	r.Events = append(r.Events, e)
}

// Count returns how many events of the kind were traced (including events
// dropped by Cap).
func (r *Recorder) Count(kind string) int { return r.counts[kind] }

// WriteJSON writes the retained events as JSON lines.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	return nil
}

// Summary renders per-kind event counts, sorted by kind.
func (r *Recorder) Summary() string {
	kinds := make([]string, 0, len(r.counts))
	for k := range r.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, r.counts[k])
	}
	return strings.Join(parts, " ")
}
