// Package trace records observability events (internal/obs) for
// inspection and export. A Recorder plugs into sim.Options.Tracer,
// live/tcp Options.Tracer, or faults.Injector.SetTracer; afterwards the
// events can be dumped as JSON lines (one event per line), exported in
// Chrome trace-event format for Perfetto (see WriteChrome), or summarized
// per kind.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Recorder accumulates events. It is safe for concurrent use, so one
// Recorder can serve the live/tcp engines (events arrive from many rank
// goroutines) and the fault injector at once; under the simulator's
// one-token scheduler the lock is uncontended.
type Recorder struct {
	// Events holds the retained events in arrival order. Read it only
	// after the run has completed.
	Events []obs.Event
	// Cap, when positive, bounds the number of retained events; further
	// events only update the counters and the Dropped count.
	Cap int

	mu      sync.Mutex
	dropped int
	counts  map[string]int
}

// NewRecorder returns a Recorder retaining at most cap events (0 = all).
func NewRecorder(cap int) *Recorder {
	return &Recorder{Cap: cap, counts: make(map[string]int)}
}

// Trace implements obs.Tracer (and therefore sim.Tracer).
func (r *Recorder) Trace(e obs.Event) {
	r.mu.Lock()
	if r.counts == nil {
		r.counts = make(map[string]int)
	}
	r.counts[e.Kind]++
	if r.Cap > 0 && len(r.Events) >= r.Cap {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.Events = append(r.Events, e)
	r.mu.Unlock()
}

// Count returns how many events of the kind were traced (including events
// dropped by Cap).
func (r *Recorder) Count(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[kind]
}

// Dropped returns how many events were discarded because the Cap was
// reached. Their kinds still appear in Count and Summary.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// truncationNote is the final JSON line WriteJSON emits for a capped
// trace, so a consumer of the file can tell it is incomplete.
type truncationNote struct {
	Kind    string `json:"kind"` // always "truncated"
	Dropped int    `json:"dropped"`
}

// WriteJSON writes the retained events as JSON lines. If the Cap dropped
// events, a final note line {"kind":"truncated","dropped":N} marks the
// trace as incomplete.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	if n := r.Dropped(); n > 0 {
		if err := enc.Encode(truncationNote{Kind: "truncated", Dropped: n}); err != nil {
			return fmt.Errorf("trace: encoding truncation note: %w", err)
		}
	}
	return nil
}

// Summary renders per-kind event counts, sorted by kind, with a trailing
// dropped count when the Cap truncated the trace.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	kinds := make([]string, 0, len(r.counts))
	for k := range r.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, r.counts[k])
	}
	if r.dropped > 0 {
		parts = append(parts, fmt.Sprintf("dropped=%d", r.dropped))
	}
	r.mu.Unlock()
	return strings.Join(parts, " ")
}
