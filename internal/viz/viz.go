// Package viz renders small ASCII visualizations of simulation results:
// a link-load heatmap over the 2-D mesh (the congestion pictures behind
// the paper's hot-spot arguments) and simple horizontal bar charts for
// experiment series.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/topology"
)

// heatRunes maps normalized load 0..1 onto a 10-step ramp.
var heatRunes = []byte(" .:-=+*#%@")

// Heatmap renders per-node load on an r×c mesh as a character grid: ' '
// is idle, '@' the busiest node. Node order is row-major (the machine's
// rank order under identity placement). The scale is normalized to the
// grid's own maximum; use HeatmapWithMax to compare runs on one scale.
// A load slice that does not match the mesh is an error, never a grid.
func Heatmap(mesh *topology.Mesh2D, load []network.Time) (string, error) {
	var max network.Time
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return HeatmapWithMax(mesh, load, max)
}

// HeatmapWithMax renders like Heatmap but normalizes against the given
// maximum, so several grids share one scale.
func HeatmapWithMax(mesh *topology.Mesh2D, load []network.Time, max network.Time) (string, error) {
	if len(load) != mesh.Nodes() {
		return "", fmt.Errorf("viz: %d load values for %d nodes", len(load), mesh.Nodes())
	}
	var b strings.Builder
	for r := 0; r < mesh.Rows; r++ {
		for c := 0; c < mesh.Cols; c++ {
			v := load[mesh.Node(r, c)]
			idx := 0
			if max > 0 {
				idx = int(int64(v) * int64(len(heatRunes)-1) / int64(max))
			}
			b.WriteByte(heatRunes[idx])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Bars renders labelled values as a horizontal bar chart, scaled to the
// given width. Used by cmd/stpbench's -plot mode.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		return fmt.Sprintf("viz: %d labels for %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 40
	}
	var max float64
	labelWidth := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 && v > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %8.3f %s\n", labelWidth, labels[i], v, strings.Repeat("█", n))
	}
	return b.String()
}

// SeriesChart renders one curve of (x-label, value) points as bars — a
// terminal-friendly stand-in for the paper's line plots.
func SeriesChart(title string, xLabels []string, values []float64, width int) string {
	return title + "\n" + Bars(xLabels, values, width)
}
