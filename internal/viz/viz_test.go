package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestHeatmapScalesToRamp(t *testing.T) {
	mesh := topology.MustMesh2D(2, 3)
	load := []network.Time{0, 10, 20, 30, 40, 100}
	got, err := Heatmap(mesh, load)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("grid shape wrong:\n%s", got)
	}
	if lines[0][0] != ' ' {
		t.Errorf("idle node not blank: %q", lines[0])
	}
	if lines[1][2] != '@' {
		t.Errorf("hottest node not '@': %q", lines[1])
	}
}

func TestHeatmapSizeMismatch(t *testing.T) {
	mesh := topology.MustMesh2D(2, 2)
	got, err := Heatmap(mesh, []network.Time{1})
	if err == nil {
		t.Fatalf("mismatch not reported, rendered %q", got)
	}
	if got != "" {
		t.Errorf("error case still returned a grid: %q", got)
	}
	if !strings.Contains(err.Error(), "viz:") {
		t.Errorf("error missing viz: prefix: %v", err)
	}
}

func TestBars(t *testing.T) {
	got := Bars([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", got)
	}
	if strings.Count(lines[1], "█") != 10 {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "█") != 5 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	if got := Bars([]string{"a"}, []float64{1, 2}, 10); !strings.Contains(got, "viz:") {
		t.Error("mismatch not reported")
	}
}

func TestTwoStepHotspotVisible(t *testing.T) {
	// After a 2-Step run, the hottest links must be adjacent to P0's
	// region — the congestion picture of the paper.
	mesh := topology.MustMesh2D(8, 8)
	nw, err := network.New(mesh, topology.IdentityPlacement(64), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Rows: 8, Cols: 8, Sources: seq(16, 4), Indexing: topology.SnakeRowMajor}
	payload := make([]byte, 4096)
	if _, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialMessage(spec, pr.Rank(), payload)
		core.TwoStep().Run(pr, spec, mine)
	}, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	hot := nw.HotLinks(3)
	if len(hot) != 3 {
		t.Fatalf("hot links: %v", hot)
	}
	for _, h := range hot {
		r, c := mesh.Coord(h.Link.From)
		if r+c > 4 {
			t.Errorf("hot link %v far from P0 (at %d,%d)", h.Link, r, c)
		}
	}
	// The heatmap must render without error and show node 0 hot.
	heat, err := Heatmap(mesh, nw.NodeLoad())
	if err != nil {
		t.Fatal(err)
	}
	if heat[0] == ' ' {
		t.Errorf("P0 cold in heatmap:\n%s", heat)
	}
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i*4
	}
	return out
}

func TestHeatmapWithSharedScale(t *testing.T) {
	mesh := topology.MustMesh2D(1, 2)
	// Under a shared large max, moderate loads render low on the ramp.
	got, err := HeatmapWithMax(mesh, []network.Time{10, 50}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] == '@' {
		t.Fatalf("half-load rendered as max: %q", got)
	}
	own, err := Heatmap(mesh, []network.Time{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if own[1] != '@' {
		t.Fatalf("own-scale max not '@': %q", own)
	}
}
