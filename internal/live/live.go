// Package live executes an algorithm on a real concurrent runtime: one
// goroutine per processor, messages moved as real bytes through in-memory
// mailboxes. It is the functional-correctness twin of internal/sim — the
// same algorithm code runs on both engines — and the closest analogue of
// the paper's machines this environment offers (per-process address spaces
// approximated by goroutines + channels/mailboxes instead of MPI).
//
// Unlike the simulator, the live engine gives no virtual timing; it
// reports wall-clock elapsed time and operation counts. Payload bytes are
// copied on send, so a sender mutating its buffer after Send cannot
// corrupt a message in flight — matching the buffered semantics of NX
// csend that the algorithms assume.
//
// # Sessions
//
// NewMachine builds the mailboxes and barrier once; Machine.Run executes
// one algorithm over them and may be called many times back to back,
// each run starting from wiped mailboxes, a reset barrier and a cleared
// abort latch — so an aborted run cannot leak messages, barrier tokens
// or its failure into the next one. Run/RunOpts remain as one-shot
// open-run-close wrappers.
//
// # Failure semantics
//
// A run fails in one of three ways, and in every case Run returns an
// error instead of hanging:
//
//   - A processor panics: the machine aborts, every processor blocked in
//     Recv or Barrier is unwound, and Run reports the panicking rank as
//     the root cause.
//   - A blocking Recv or Barrier wait exceeds Options.RecvTimeout: the
//     stalled processor aborts the machine with an error naming the
//     blocked rank and the peer it was waiting on.
//   - Options.Context is canceled or Options.RunTimeout elapses: the
//     machine aborts and the returned error carries the cancellation
//     cause plus the first blocked rank/peer that was unwound.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/obs"
)

// Options harden a run against hangs and stuck peers. The zero value
// preserves the historical behaviour: no deadlines, no cancellation.
type Options struct {
	// Context, when non-nil, cancels the run: blocked processors are
	// unwound and Run returns an error carrying ctx.Err().
	Context context.Context
	// RunTimeout, when positive, bounds the whole run (fn execution,
	// not including goroutine spawn overhead).
	RunTimeout time.Duration
	// RecvTimeout, when positive, bounds any single blocking Recv or
	// Barrier wait. A processor blocked longer aborts the machine with
	// an error naming the rank and the awaited peer — this is what
	// turns a hung or dead peer into a diagnosable failure.
	RecvTimeout time.Duration
	// Tracer, when non-nil, receives an obs.Event for every send, recv,
	// wait (a receive that had to block) and barrier, stamped with
	// wall-clock nanoseconds since the run started. Events arrive from
	// all rank goroutines concurrently, so the tracer must be safe for
	// concurrent use (trace.Recorder is). Nil tracing costs one branch
	// per operation.
	Tracer obs.Tracer
}

// errAbort is the panic value used to unwind processors blocked on a
// machine that has already failed.
type errAbort struct{ cause string }

// inbox is one processor's receive side: per-source FIFOs under one lock.
// Each mailbox is a comm.Queue ring buffer, so delivered payloads do not
// stay reachable through the queue's backing array for the rest of the
// run.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	boxes []comm.Queue
}

// barrier is a reusable (cyclic) barrier for p participants that releases
// everyone when the machine aborts.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	aborted *atomic.Bool
}

// wait blocks until all participants arrive. A positive stall bounds the
// wait: exceeding it panics with a deadline error attributed to rank (a
// root cause, not an unwind).
func (b *barrier) wait(rank int, stall time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	var deadline time.Time
	if stall > 0 {
		deadline = time.Now().Add(stall)
		timer := time.AfterFunc(stall, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		defer timer.Stop()
	}
	for gen == b.gen && !b.aborted.Load() {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			panic(fmt.Errorf("live: rank %d: barrier wait exceeded %v deadline", rank, stall))
		}
		b.cond.Wait()
	}
	if gen == b.gen { // woken by abort, not by release
		panic(errAbort{cause: "barrier"})
	}
}

// reset rearms the barrier for a new run. An aborted or deadline-panicked
// waiter leaves count incremented without ever releasing, so the count
// must be zeroed (and the generation bumped) between runs.
func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.gen++
	b.mu.Unlock()
}

// ProcStats counts one processor's operations during a run.
type ProcStats struct {
	Rank      int
	Sends     int
	Recvs     int
	SendBytes int64
	RecvBytes int64
}

// Result is the outcome of a live run.
type Result struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Procs holds per-processor operation counts, indexed by rank.
	Procs []ProcStats
}

// machine is the shared state of one live run.
type machine struct {
	size        int
	inboxes     []*inbox
	bar         *barrier
	recvTimeout time.Duration
	tr          obs.Tracer
	start       time.Time // run start, the zero of traced Wall stamps

	aborted    atomic.Bool
	abortMu    sync.Mutex
	abortCause error
}

// wall returns nanoseconds since the run started.
func (m *machine) wall() int64 { return time.Since(m.start).Nanoseconds() }

// abort marks the machine failed with the given cause and wakes every
// blocked processor. The first cause wins.
func (m *machine) abort(cause error) {
	m.abortMu.Lock()
	if m.aborted.Load() {
		m.abortMu.Unlock()
		return
	}
	m.abortCause = cause
	m.aborted.Store(true)
	m.abortMu.Unlock()
	for _, ib := range m.inboxes {
		ib.mu.Lock()
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
	m.bar.mu.Lock()
	m.bar.cond.Broadcast()
	m.bar.mu.Unlock()
}

// cause returns the abort cause (nil if the machine has not aborted).
func (m *machine) cause() error {
	m.abortMu.Lock()
	defer m.abortMu.Unlock()
	return m.abortCause
}

// Proc is one live processor's handle. It implements comm.Comm,
// comm.IterMarker and comm.PhaseMarker. Methods must only be called from
// the algorithm goroutine for this processor.
type Proc struct {
	rank  int
	m     *machine
	stats ProcStats
	iter  int
	phase string
}

var _ comm.Comm = (*Proc)(nil)
var _ comm.IterMarker = (*Proc)(nil)
var _ comm.PhaseMarker = (*Proc)(nil)

// BeginIter implements comm.IterMarker: traced events carry the iteration.
func (p *Proc) BeginIter(i int) { p.iter = i }

// BeginPhase implements comm.PhaseMarker: traced events carry the label.
func (p *Proc) BeginPhase(name string) { p.phase = name }

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.m.size }

// Send implements comm.Comm. The payload of every part is copied, so the
// caller may reuse its buffers immediately.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.m.size {
		panic(fmt.Sprintf("live: rank %d sends to invalid rank %d", p.rank, dst))
	}
	cp := comm.Message{Tag: m.Tag, Parts: make([]comm.Part, len(m.Parts))}
	var total int
	for _, part := range m.Parts {
		total += len(part.Data)
	}
	// One backing allocation for all parts; each part gets a full slice
	// expression so appends through one part cannot bleed into the next.
	var backing []byte
	if total > 0 {
		backing = make([]byte, 0, total)
	}
	var bytes int64
	for i, part := range m.Parts {
		if part.Data == nil {
			// Length-only part (simulator path): preserve the declared size.
			cp.Parts[i] = comm.Part{Origin: part.Origin, Size: part.Size}
			bytes += int64(part.Size)
			continue
		}
		start := len(backing)
		backing = append(backing, part.Data...)
		cp.Parts[i] = comm.Part{Origin: part.Origin, Data: backing[start:len(backing):len(backing)]}
		bytes += int64(len(part.Data))
	}
	var t0 time.Time
	if p.m.tr != nil {
		t0 = time.Now()
	}
	ib := p.m.inboxes[dst]
	ib.mu.Lock()
	ib.boxes[p.rank].Push(cp)
	ib.cond.Broadcast()
	ib.mu.Unlock()
	p.stats.Sends++
	p.stats.SendBytes += bytes
	if p.m.tr != nil {
		wall := p.m.wall()
		p.m.tr.Trace(obs.Event{
			Kind: obs.KindSend, Rank: p.rank, Peer: dst, Bytes: int(bytes),
			Parts: len(cp.Parts), Tag: cp.Tag, Wall: wall,
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// Recv implements comm.Comm. With Options.RecvTimeout set, a wait
// exceeding the timeout panics with a deadline error naming this rank
// and src; the machine then aborts and Run returns that error.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.m.size {
		panic(fmt.Sprintf("live: rank %d receives from invalid rank %d", p.rank, src))
	}
	ib := p.m.inboxes[p.rank]
	var deadline time.Time
	if p.m.recvTimeout > 0 {
		deadline = time.Now().Add(p.m.recvTimeout)
		timer := time.AfterFunc(p.m.recvTimeout, func() {
			ib.mu.Lock()
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
		defer timer.Stop()
	}
	var t0 time.Time
	if p.m.tr != nil {
		t0 = time.Now()
	}
	waited := false
	ib.mu.Lock()
	box := &ib.boxes[src]
	for box.Len() == 0 {
		waited = true
		if p.m.aborted.Load() {
			ib.mu.Unlock()
			panic(errAbort{cause: fmt.Sprintf("recv from %d", src)})
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			ib.mu.Unlock()
			panic(fmt.Errorf("live: rank %d: recv from %d exceeded %v deadline", p.rank, src, p.m.recvTimeout))
		}
		ib.cond.Wait()
	}
	m := box.Pop()
	ib.mu.Unlock()
	p.stats.Recvs++
	p.stats.RecvBytes += int64(m.Len())
	if p.m.tr != nil {
		wall := p.m.wall()
		spent := network.Time(time.Since(t0).Nanoseconds())
		if waited {
			p.m.tr.Trace(obs.Event{
				Kind: obs.KindWait, Rank: p.rank, Peer: src, Wall: wall,
				Dur: spent, Iter: p.iter, Phase: p.phase,
			})
			spent = 0 // the blocked span is the wait slice, not the recv
		}
		p.m.tr.Trace(obs.Event{
			Kind: obs.KindRecv, Rank: p.rank, Peer: src, Bytes: m.Len(),
			Parts: len(m.Parts), Tag: m.Tag, Wall: wall, Dur: spent,
			Iter: p.iter, Phase: p.phase,
		})
	}
	return m
}

// Barrier implements comm.Comm.
func (p *Proc) Barrier() {
	var t0 time.Time
	if p.m.tr != nil {
		t0 = time.Now()
	}
	p.m.bar.wait(p.rank, p.m.recvTimeout)
	if p.m.tr != nil {
		p.m.tr.Trace(obs.Event{
			Kind: obs.KindBarrier, Rank: p.rank, Peer: -1, Wall: p.m.wall(),
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// Machine is a persistent live machine: the mailboxes and barrier are
// built once by NewMachine and reused by every Run, each run starting
// from a wiped, rearmed state. Run and Close serialize; a Machine
// supports one run at a time.
type Machine struct {
	mu     sync.Mutex // serializes Run and Close
	m      *machine
	closed bool
}

// NewMachine builds the mailboxes and cyclic barrier for p processors.
// The caller owns the machine and should Close it when done.
func NewMachine(p int) (*Machine, error) {
	if p <= 0 {
		return nil, fmt.Errorf("live: non-positive processor count %d", p)
	}
	m := &machine{size: p, inboxes: make([]*inbox, p)}
	for i := range m.inboxes {
		ib := &inbox{boxes: make([]comm.Queue, p)}
		ib.cond = sync.NewCond(&ib.mu)
		m.inboxes[i] = ib
	}
	m.bar = &barrier{size: p, aborted: &m.aborted}
	m.bar.cond = sync.NewCond(&m.bar.mu)
	return &Machine{m: m}, nil
}

// Size returns the processor count the machine was built for.
func (mc *Machine) Size() int { return mc.m.size }

// Close releases the machine. It is idempotent; a run must not be in
// flight.
func (mc *Machine) Close() error {
	mc.mu.Lock()
	mc.closed = true
	mc.mu.Unlock()
	return nil
}

// Run executes fn on every processor over the warm mailboxes. Only the
// run fields of opts are consumed afresh on every call (Context,
// RunTimeout, RecvTimeout, Tracer). An aborted run leaves the machine
// usable: the next Run starts from wiped mailboxes, a reset barrier and
// a cleared abort latch.
func (mc *Machine) Run(opts Options, fn func(*Proc)) (*Result, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		return nil, errors.New("live: Run on closed machine")
	}
	m := mc.m
	p := m.size
	// Rearm for this run: wipe every mailbox (slots zeroed so a previous
	// run's undelivered payloads become collectable and can never be
	// received here), reset the barrier, clear the abort latch, and
	// attach this run's deadline and tracer.
	for _, ib := range m.inboxes {
		ib.mu.Lock()
		for i := range ib.boxes {
			ib.boxes[i].Reset()
		}
		ib.mu.Unlock()
	}
	m.bar.reset()
	m.abortMu.Lock()
	m.abortCause = nil
	m.abortMu.Unlock()
	m.aborted.Store(false)
	m.recvTimeout = opts.RecvTimeout
	m.tr = opts.Tracer

	// External abort sources: context cancellation and the whole-run
	// deadline. The watcher exits when the run completes.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	var ctxDone <-chan struct{}
	if opts.Context != nil {
		ctxDone = opts.Context.Done()
	}
	var runTimer *time.Timer
	var runTimeoutC <-chan time.Time
	if opts.RunTimeout > 0 {
		runTimer = time.NewTimer(opts.RunTimeout)
		runTimeoutC = runTimer.C
	}
	if ctxDone != nil || runTimeoutC != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctxDone:
				m.abort(fmt.Errorf("run canceled: %w", opts.Context.Err()))
			case <-runTimeoutC:
				m.abort(fmt.Errorf("run exceeded %v deadline", opts.RunTimeout))
			case <-watchDone:
			}
		}()
	}

	procs := make([]*Proc, p)
	// roots collects root-cause panics; unwinds collects processors that
	// were unwound by the abort. Root causes take precedence in the
	// returned error.
	roots := make([]error, p)
	unwinds := make([]error, p)
	var wg sync.WaitGroup
	start := time.Now()
	m.start = start
	for i := 0; i < p; i++ {
		pr := &Proc{rank: i, m: m, iter: -1}
		pr.stats.Rank = i
		procs[i] = pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(errAbort); ok {
						unwinds[pr.rank] = fmt.Errorf("live: rank %d unwound (%s) after machine abort: %w", pr.rank, ab.cause, m.cause())
						return
					}
					err, ok := r.(error)
					if !ok {
						err = fmt.Errorf("%v", r)
					}
					roots[pr.rank] = fmt.Errorf("live: rank %d panicked: %w", pr.rank, err)
					m.abort(roots[pr.rank])
				}
			}()
			fn(pr)
		}()
	}
	wg.Wait()
	close(watchDone)
	if runTimer != nil {
		runTimer.Stop()
	}
	watchWG.Wait()
	res := &Result{Elapsed: time.Since(start), Procs: make([]ProcStats, p)}
	for i, pr := range procs {
		res.Procs[i] = pr.stats
	}
	for _, e := range roots {
		if e != nil {
			return nil, e
		}
	}
	for _, e := range unwinds {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}

// Run executes fn concurrently on p processors and returns operation
// counts. If any processor panics, the machine aborts: every processor
// blocked in Recv or Barrier is unwound, and Run returns the first
// processor's error (by rank). Run applies no deadlines; see RunOpts.
func Run(p int, fn func(*Proc)) (*Result, error) {
	return RunOpts(p, Options{}, fn)
}

// RunOpts is Run with deadlines and cancellation (see Options). Every
// failure mode — a panicking rank, a Recv or Barrier wait past
// RecvTimeout, context cancellation, the whole run past RunTimeout —
// unwinds all processors and returns an error; RunOpts never hangs on a
// dead or stuck rank when a deadline is configured. It is the one-shot
// open-run-close wrapper over NewMachine/Machine.Run/Machine.Close.
func RunOpts(p int, opts Options, fn func(*Proc)) (*Result, error) {
	mc, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	defer mc.Close()
	return mc.Run(opts, fn)
}
