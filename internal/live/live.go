// Package live executes an algorithm on a real concurrent runtime: one
// goroutine per processor, messages moved as real bytes through in-memory
// mailboxes. It is the functional-correctness twin of internal/sim — the
// same algorithm code runs on both engines — and the closest analogue of
// the paper's machines this environment offers (per-process address spaces
// approximated by goroutines + channels/mailboxes instead of MPI).
//
// Unlike the simulator, the live engine gives no virtual timing; it
// reports wall-clock elapsed time and operation counts. Payload bytes are
// copied on send, so a sender mutating its buffer after Send cannot
// corrupt a message in flight — matching the buffered semantics of NX
// csend that the algorithms assume.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
)

// errAbort is the panic value used to unwind processors blocked on a
// machine that has already failed.
type errAbort struct{ cause string }

// mailbox is the unbounded FIFO of messages from one sender to one
// receiver. Receivers block on the condition variable of their own inbox.
type mailbox struct {
	queue []comm.Message
}

// inbox is one processor's receive side: per-source FIFOs under one lock.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	boxes []mailbox
}

// barrier is a reusable (cyclic) barrier for p participants that releases
// everyone when the machine aborts.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	aborted *atomic.Bool
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.aborted.Load() {
		b.cond.Wait()
	}
	if gen == b.gen { // woken by abort, not by release
		panic(errAbort{cause: "barrier"})
	}
}

// ProcStats counts one processor's operations during a run.
type ProcStats struct {
	Rank      int
	Sends     int
	Recvs     int
	SendBytes int64
	RecvBytes int64
}

// Result is the outcome of a live run.
type Result struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Procs holds per-processor operation counts, indexed by rank.
	Procs []ProcStats
}

// machine is the shared state of one live run.
type machine struct {
	size    int
	inboxes []*inbox
	bar     *barrier
	aborted atomic.Bool
}

// abort marks the machine failed and wakes every blocked processor.
func (m *machine) abort() {
	if m.aborted.Swap(true) {
		return
	}
	for _, ib := range m.inboxes {
		ib.mu.Lock()
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
	m.bar.mu.Lock()
	m.bar.cond.Broadcast()
	m.bar.mu.Unlock()
}

// Proc is one live processor's handle. It implements comm.Comm. Methods
// must only be called from the algorithm goroutine for this processor.
type Proc struct {
	rank  int
	m     *machine
	stats ProcStats
}

var _ comm.Comm = (*Proc)(nil)

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.m.size }

// Send implements comm.Comm. The payload of every part is copied, so the
// caller may reuse its buffers immediately.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.m.size {
		panic(fmt.Sprintf("live: rank %d sends to invalid rank %d", p.rank, dst))
	}
	cp := comm.Message{Tag: m.Tag, Parts: make([]comm.Part, len(m.Parts))}
	var bytes int64
	for i, part := range m.Parts {
		if part.Data == nil {
			// Length-only part (simulator path): preserve the declared size.
			cp.Parts[i] = comm.Part{Origin: part.Origin, Size: part.Size}
			bytes += int64(part.Size)
			continue
		}
		data := make([]byte, len(part.Data))
		copy(data, part.Data)
		cp.Parts[i] = comm.Part{Origin: part.Origin, Data: data}
		bytes += int64(len(data))
	}
	ib := p.m.inboxes[dst]
	ib.mu.Lock()
	ib.boxes[p.rank].queue = append(ib.boxes[p.rank].queue, cp)
	ib.cond.Broadcast()
	ib.mu.Unlock()
	p.stats.Sends++
	p.stats.SendBytes += bytes
}

// Recv implements comm.Comm.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.m.size {
		panic(fmt.Sprintf("live: rank %d receives from invalid rank %d", p.rank, src))
	}
	ib := p.m.inboxes[p.rank]
	ib.mu.Lock()
	box := &ib.boxes[src]
	for len(box.queue) == 0 {
		if p.m.aborted.Load() {
			ib.mu.Unlock()
			panic(errAbort{cause: "recv"})
		}
		ib.cond.Wait()
	}
	m := box.queue[0]
	box.queue = box.queue[1:]
	ib.mu.Unlock()
	p.stats.Recvs++
	p.stats.RecvBytes += int64(m.Len())
	return m
}

// Barrier implements comm.Comm.
func (p *Proc) Barrier() { p.m.bar.wait() }

// Run executes fn concurrently on p processors and returns operation
// counts. If any processor panics, the machine aborts: every processor
// blocked in Recv or Barrier is unwound, and Run returns the first
// processor's error (by rank).
func Run(p int, fn func(*Proc)) (*Result, error) {
	if p <= 0 {
		return nil, fmt.Errorf("live: non-positive processor count %d", p)
	}
	m := &machine{size: p, inboxes: make([]*inbox, p)}
	for i := range m.inboxes {
		ib := &inbox{boxes: make([]mailbox, p)}
		ib.cond = sync.NewCond(&ib.mu)
		m.inboxes[i] = ib
	}
	m.bar = &barrier{size: p, aborted: &m.aborted}
	m.bar.cond = sync.NewCond(&m.bar.mu)
	procs := make([]*Proc, p)
	// roots collects root-cause panics; unwinds collects processors that
	// were unwound by the abort. Root causes take precedence in the
	// returned error.
	roots := make([]error, p)
	unwinds := make([]error, p)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p; i++ {
		pr := &Proc{rank: i, m: m}
		pr.stats.Rank = i
		procs[i] = pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(errAbort); ok {
						unwinds[pr.rank] = fmt.Errorf("live: rank %d unwound (%s) after machine abort", pr.rank, ab.cause)
						return
					}
					roots[pr.rank] = fmt.Errorf("live: rank %d panicked: %v", pr.rank, r)
					m.abort()
				}
			}()
			fn(pr)
		}()
	}
	wg.Wait()
	res := &Result{Elapsed: time.Since(start), Procs: make([]ProcStats, p)}
	for i, pr := range procs {
		res.Procs[i] = pr.stats
	}
	for _, e := range roots {
		if e != nil {
			return nil, e
		}
	}
	for _, e := range unwinds {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}
