package live

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
)

// waitGoroutinesSettle asserts the goroutine count returns to near the
// baseline: every processor and watcher goroutine of the run unwound.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after run: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestPingPongContent(t *testing.T) {
	res, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("hello")}}})
			m := p.Recv(1)
			if string(m.Parts[0].Data) != "world" {
				t.Errorf("rank 0 got %q", m.Parts[0].Data)
			}
		} else {
			m := p.Recv(0)
			if m.Tag != 7 || string(m.Parts[0].Data) != "hello" {
				t.Errorf("rank 1 got %v %q", m.Tag, m.Parts[0].Data)
			}
			p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 1, Data: []byte("world")}}})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[1].Recvs != 1 {
		t.Fatalf("counts wrong: %+v", res.Procs)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			buf := []byte("original")
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: buf}}})
			copy(buf, "CLOBBER!") // must not affect the in-flight message
		} else {
			m := p.Recv(0)
			if !bytes.Equal(m.Parts[0].Data, []byte("original")) {
				t.Errorf("payload aliased: %q", m.Parts[0].Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendMultiPartOneBacking covers the coalesced copy path: all parts
// of a message share one backing allocation, but each part is sealed with
// a full slice expression so growing one part cannot bleed into the next,
// and length-only parts survive among data parts.
func TestSendMultiPartOneBacking(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Parts: []comm.Part{
				{Origin: 0, Data: []byte("alpha")},
				{Origin: 7, Size: 128}, // length-only, no bytes
				{Origin: 1, Data: []byte("beta")},
			}})
			return
		}
		m := p.Recv(0)
		if len(m.Parts) != 3 {
			t.Fatalf("got %d parts, want 3", len(m.Parts))
		}
		if string(m.Parts[0].Data) != "alpha" || string(m.Parts[2].Data) != "beta" {
			t.Errorf("payloads corrupted: %q %q", m.Parts[0].Data, m.Parts[2].Data)
		}
		if m.Parts[1].Data != nil || m.Parts[1].Size != 128 {
			t.Errorf("length-only part mangled: %+v", m.Parts[1])
		}
		for i, part := range m.Parts {
			if part.Data != nil && cap(part.Data) != len(part.Data) {
				t.Errorf("part %d not sealed: len %d cap %d", i, len(part.Data), cap(part.Data))
			}
		}
		// Growing part 0 must reallocate, never overwrite part 2's bytes
		// in the shared backing array.
		grown := append(m.Parts[0].Data, []byte("XXXXXXXX")...)
		_ = grown
		if string(m.Parts[2].Data) != "beta" {
			t.Errorf("append through part 0 clobbered part 2: %q", m.Parts[2].Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPairUnderConcurrency(t *testing.T) {
	const n = 200
	_, err := Run(3, func(p *Proc) {
		switch p.Rank() {
		case 0, 1:
			for i := 0; i < n; i++ {
				p.Send(2, comm.Message{Tag: i, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(i)}}}})
			}
		case 2:
			// Interleave receives from both senders; each stream must
			// stay in order.
			for i := 0; i < n; i++ {
				for src := 0; src < 2; src++ {
					m := p.Recv(src)
					if m.Tag != i {
						t.Errorf("stream %d out of order: got %d want %d", src, m.Tag, i)
						return
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	const rounds = 10
	var counter atomic.Int64
	_, err := Run(8, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			counter.Add(1)
			p.Barrier()
			// After each barrier, everyone must observe the full round.
			if got := counter.Load(); got < int64((r+1)*8) {
				t.Errorf("round %d: counter %d < %d after barrier", r, got, (r+1)*8)
			}
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllDelivers(t *testing.T) {
	const p = 16
	_, err := Run(p, func(pr *Proc) {
		for d := 0; d < p; d++ {
			if d == pr.Rank() {
				continue
			}
			pr.Send(d, comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte(fmt.Sprintf("from-%d", pr.Rank()))}}})
		}
		for s := 0; s < p; s++ {
			if s == pr.Rank() {
				continue
			}
			m := pr.Recv(s)
			want := fmt.Sprintf("from-%d", s)
			if string(m.Parts[0].Data) != want {
				t.Errorf("rank %d from %d: %q", pr.Rank(), s, m.Parts[0].Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAbortsMachine(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 3 {
			panic("injected fault")
		}
		// Everyone else blocks on the dead processor; the abort must
		// unwind them instead of hanging the test.
		p.Recv(3)
	})
	if err == nil {
		t.Fatal("fault not reported")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestPanicInBarrierAborts(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 0 {
			panic("dead before barrier")
		}
		p.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "dead before barrier") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidProcessorCount(t *testing.T) {
	if _, err := Run(0, func(*Proc) {}); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestSingleProcessor(t *testing.T) {
	res, err := Run(1, func(p *Proc) {
		p.Barrier()
		p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 0, Data: []byte("self")}}})
		m := p.Recv(0)
		if string(m.Parts[0].Data) != "self" {
			t.Errorf("self message corrupted: %q", m.Parts[0].Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[0].Recvs != 1 {
		t.Fatalf("self-op counts: %+v", res.Procs[0])
	}
}

// TestAbortUnwindsRecvAndBarrierBlockedPeers is the abort-path matrix of
// the robustness layer: one rank panics mid-run while some peers are
// blocked in Recv and others in Barrier. Every goroutine must unwind and
// the root-cause rank must be the reported error.
func TestAbortUnwindsRecvAndBarrierBlockedPeers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, err := Run(6, func(p *Proc) {
		switch p.Rank() {
		case 0:
			// Give peers time to block before dying.
			time.Sleep(20 * time.Millisecond)
			panic("rank 0 died mid-run")
		case 1, 2:
			p.Recv(0)
		default:
			p.Barrier()
		}
	})
	if err == nil {
		t.Fatal("abort not reported")
	}
	if !strings.Contains(err.Error(), "rank 0") || !strings.Contains(err.Error(), "rank 0 died mid-run") {
		t.Fatalf("root cause misattributed: %v", err)
	}
	waitGoroutinesSettle(t, baseline)
}

func TestRecvDeadlineNamesRankAndPeer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	start := time.Now()
	_, err := RunOpts(4, Options{RecvTimeout: 100 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 1 {
			p.Recv(3) // rank 3 never sends: a dead-peer hang
		}
	})
	if err == nil {
		t.Fatal("hang not converted to an error")
	}
	for _, want := range []string{"rank 1", "recv from 3", "deadline"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadline error %q missing %q", err, want)
		}
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("deadline abort took %v", d)
	}
	waitGoroutinesSettle(t, baseline)
}

func TestBarrierStallDeadline(t *testing.T) {
	_, err := RunOpts(3, Options{RecvTimeout: 100 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 2 {
			return // never enters the barrier
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("barrier stall not converted to an error")
	}
	if !strings.Contains(err.Error(), "barrier") || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("barrier stall error: %v", err)
	}
}

func TestRunTimeoutAborts(t *testing.T) {
	start := time.Now()
	_, err := RunOpts(2, Options{RunTimeout: 100 * time.Millisecond}, func(p *Proc) {
		p.Recv(1 - p.Rank()) // mutual hang: nobody ever sends
	})
	if err == nil {
		t.Fatal("run deadline not enforced")
	}
	if !strings.Contains(err.Error(), "run exceeded") {
		t.Fatalf("run-deadline error: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("run-deadline abort took %v", d)
	}
}

func TestContextCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := RunOpts(2, Options{Context: ctx}, func(p *Proc) {
		p.Recv(1 - p.Rank())
	})
	if err == nil {
		t.Fatal("cancellation not enforced")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("cancel error: %v", err)
	}
}

// TestDeadlineDoesNotFireOnHealthyRun guards against false positives:
// a run with steady traffic under a short RecvTimeout must succeed.
func TestDeadlineDoesNotFireOnHealthyRun(t *testing.T) {
	const rounds = 20
	_, err := RunOpts(4, Options{RecvTimeout: time.Second, RunTimeout: 30 * time.Second}, func(p *Proc) {
		next, prev := (p.Rank()+1)%4, (p.Rank()+3)%4
		for i := 0; i < rounds; i++ {
			p.Send(next, comm.Message{Tag: i, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(i)}}}})
			p.Recv(prev)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("healthy run failed under deadlines: %v", err)
	}
}
