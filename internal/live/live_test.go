package live

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
)

func TestPingPongContent(t *testing.T) {
	res, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("hello")}}})
			m := p.Recv(1)
			if string(m.Parts[0].Data) != "world" {
				t.Errorf("rank 0 got %q", m.Parts[0].Data)
			}
		} else {
			m := p.Recv(0)
			if m.Tag != 7 || string(m.Parts[0].Data) != "hello" {
				t.Errorf("rank 1 got %v %q", m.Tag, m.Parts[0].Data)
			}
			p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 1, Data: []byte("world")}}})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[1].Recvs != 1 {
		t.Fatalf("counts wrong: %+v", res.Procs)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			buf := []byte("original")
			p.Send(1, comm.Message{Parts: []comm.Part{{Data: buf}}})
			copy(buf, "CLOBBER!") // must not affect the in-flight message
		} else {
			m := p.Recv(0)
			if !bytes.Equal(m.Parts[0].Data, []byte("original")) {
				t.Errorf("payload aliased: %q", m.Parts[0].Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPairUnderConcurrency(t *testing.T) {
	const n = 200
	_, err := Run(3, func(p *Proc) {
		switch p.Rank() {
		case 0, 1:
			for i := 0; i < n; i++ {
				p.Send(2, comm.Message{Tag: i, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(i)}}}})
			}
		case 2:
			// Interleave receives from both senders; each stream must
			// stay in order.
			for i := 0; i < n; i++ {
				for src := 0; src < 2; src++ {
					m := p.Recv(src)
					if m.Tag != i {
						t.Errorf("stream %d out of order: got %d want %d", src, m.Tag, i)
						return
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	const rounds = 10
	var counter atomic.Int64
	_, err := Run(8, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			counter.Add(1)
			p.Barrier()
			// After each barrier, everyone must observe the full round.
			if got := counter.Load(); got < int64((r+1)*8) {
				t.Errorf("round %d: counter %d < %d after barrier", r, got, (r+1)*8)
			}
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllDelivers(t *testing.T) {
	const p = 16
	_, err := Run(p, func(pr *Proc) {
		for d := 0; d < p; d++ {
			if d == pr.Rank() {
				continue
			}
			pr.Send(d, comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte(fmt.Sprintf("from-%d", pr.Rank()))}}})
		}
		for s := 0; s < p; s++ {
			if s == pr.Rank() {
				continue
			}
			m := pr.Recv(s)
			want := fmt.Sprintf("from-%d", s)
			if string(m.Parts[0].Data) != want {
				t.Errorf("rank %d from %d: %q", pr.Rank(), s, m.Parts[0].Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAbortsMachine(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 3 {
			panic("injected fault")
		}
		// Everyone else blocks on the dead processor; the abort must
		// unwind them instead of hanging the test.
		p.Recv(3)
	})
	if err == nil {
		t.Fatal("fault not reported")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestPanicInBarrierAborts(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 0 {
			panic("dead before barrier")
		}
		p.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "dead before barrier") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidProcessorCount(t *testing.T) {
	if _, err := Run(0, func(*Proc) {}); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestSingleProcessor(t *testing.T) {
	res, err := Run(1, func(p *Proc) {
		p.Barrier()
		p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 0, Data: []byte("self")}}})
		m := p.Recv(0)
		if string(m.Parts[0].Data) != "self" {
			t.Errorf("self message corrupted: %q", m.Parts[0].Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[0].Recvs != 1 {
		t.Fatalf("self-op counts: %+v", res.Procs[0])
	}
}
