package live

import (
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
)

// TestLiveMachineBackToBackRuns reuses one machine for many runs; every
// run must see fresh per-run stats and a working barrier.
func TestLiveMachineBackToBackRuns(t *testing.T) {
	const p, runs = 4, 20
	mc, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	for r := 0; r < runs; r++ {
		res, err := mc.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
			next, prev := (pr.Rank()+1)%p, (pr.Rank()+p-1)%p
			pr.Send(next, comm.Message{Tag: r, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(r)}}}})
			if got := pr.Recv(prev); got.Tag != r {
				t.Errorf("run %d rank %d: tag %d", r, pr.Rank(), got.Tag)
			}
			pr.Barrier()
		})
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if res.Procs[0].Sends != 1 {
			t.Fatalf("run %d stats not per-run: %+v", r, res.Procs[0])
		}
	}
}

// TestLiveMachineRunsDoNotBleedMessages leaves an undelivered message in
// run 1; run 2's Recv from the same peer must time out instead of
// delivering it.
func TestLiveMachineRunsDoNotBleedMessages(t *testing.T) {
	mc, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.Run(Options{}, func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, comm.Message{Tag: 9, Parts: []comm.Part{{Origin: 0, Data: []byte("orphan")}}})
		}
	}); err != nil {
		t.Fatal(err)
	}
	_, err = mc.Run(Options{RecvTimeout: 200 * time.Millisecond}, func(pr *Proc) {
		if pr.Rank() == 1 {
			m := pr.Recv(0)
			t.Errorf("stale message bled into the next run: %+v", m)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a clean receive deadline, got %v", err)
	}
}

// TestLiveMachineRecoversAfterAbort: a panicked run (with peers unwound
// from Recv and a half-entered barrier) must not poison the machine —
// the next runs succeed with no leftover abort cause or barrier skew.
func TestLiveMachineRecoversAfterAbort(t *testing.T) {
	const p = 4
	mc, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	_, err = mc.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
		switch pr.Rank() {
		case 0:
			time.Sleep(10 * time.Millisecond)
			panic("rank 0 died")
		case 1:
			pr.Recv(0)
		default:
			pr.Barrier() // abandoned mid-round: count must reset
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0 died") {
		t.Fatalf("abort misreported: %v", err)
	}
	for r := 0; r < 3; r++ {
		if _, err := mc.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
			pr.Barrier()
			pr.Send((pr.Rank()+1)%p, comm.Message{Parts: []comm.Part{{Origin: pr.Rank()}}})
			pr.Recv((pr.Rank() + p - 1) % p)
			pr.Barrier()
		}); err != nil {
			t.Fatalf("post-abort run %d failed: %v", r, err)
		}
	}
}

// TestLiveMachineClosed: Run after Close must error; Close is idempotent.
func TestLiveMachineClosed(t *testing.T) {
	mc, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := mc.Run(Options{}, func(*Proc) {}); err == nil {
		t.Fatal("Run on closed machine accepted")
	}
}
