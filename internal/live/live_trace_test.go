package live

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
)

// seqTracer collects events from all rank goroutines.
type seqTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *seqTracer) Trace(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *seqTracer) byRank(rank int) []obs.Event {
	var out []obs.Event
	for _, e := range s.events {
		if e.Rank == rank {
			out = append(out, e)
		}
	}
	return out
}

func TestTracerSeesPingPong(t *testing.T) {
	tr := &seqTracer{}
	_, err := RunOpts(2, Options{Tracer: tr}, func(p *Proc) {
		p.BeginIter(0)
		p.BeginPhase("ping")
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("hello")}}})
			p.Recv(1)
		} else {
			p.Recv(0)
			p.Send(0, comm.Message{Tag: 8, Parts: []comm.Part{{Origin: 1, Data: []byte("world")}}})
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		var kinds []string
		for _, e := range tr.byRank(rank) {
			if e.Kind == obs.KindWait {
				continue // timing-dependent
			}
			kinds = append(kinds, e.Kind)
			if e.Iter != 0 {
				t.Errorf("rank %d %s: iter = %d, want 0", rank, e.Kind, e.Iter)
			}
			if e.Phase != "ping" {
				t.Errorf("rank %d %s: phase = %q, want ping", rank, e.Kind, e.Phase)
			}
			if e.Wall < 0 {
				t.Errorf("rank %d %s: negative wall %d", rank, e.Kind, e.Wall)
			}
		}
		var want []string
		if rank == 0 {
			want = []string{obs.KindSend, obs.KindRecv, obs.KindBarrier}
		} else {
			want = []string{obs.KindRecv, obs.KindSend, obs.KindBarrier}
		}
		if len(kinds) != len(want) {
			t.Fatalf("rank %d traced %v, want %v", rank, kinds, want)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("rank %d traced %v, want %v", rank, kinds, want)
			}
		}
	}
	// Event payload metadata survives.
	for _, e := range tr.events {
		if e.Kind == obs.KindSend && e.Rank == 0 {
			if e.Bytes != 5 || e.Tag != 7 || e.Peer != 1 {
				t.Errorf("send event metadata: %+v", e)
			}
		}
	}
}

func TestTracerWaitOnBlockedRecv(t *testing.T) {
	tr := &seqTracer{}
	release := make(chan struct{})
	_, err := RunOpts(2, Options{Tracer: tr}, func(p *Proc) {
		if p.Rank() == 0 {
			<-release
			p.Send(1, comm.Message{Parts: []comm.Part{{Origin: 0, Data: []byte("x")}}})
		} else {
			close(release) // guarantee rank 1 blocks before the send
			p.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawWait bool
	for _, e := range tr.byRank(1) {
		if e.Kind == obs.KindWait {
			sawWait = true
			if e.Peer != 0 {
				t.Errorf("wait peer = %d, want 0", e.Peer)
			}
		}
	}
	if !sawWait {
		t.Fatal("blocked receive traced no wait event")
	}
}
