// Package dist implements the source-processor distributions of Section 4
// of the paper — Row R(s), Column C(s), Equal E(s), Right/Left Diagonal
// Dr(s)/Dl(s), Band B(s), Cross Cr(s), Square block Sq(s) — plus a seeded
// Random distribution and the ideal-distribution generators used by the
// repositioning algorithms of Section 3.
//
// A distribution places s sources on a logical r×c mesh (r ≤ c in the
// paper's definitions; the implementations here accept any r, c ≥ 1) and
// returns their logical ranks in row-major order (rank = row·c + col). On
// the T3D model the same logical mesh is used; its mapping onto the torus
// is the placement's concern.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Distribution places s source processors on an r×c logical mesh.
type Distribution interface {
	// Name is the paper's notation for the distribution ("R", "Dr", ...).
	Name() string
	// Sources returns the sorted row-major ranks of the s sources.
	// It fails when s is not in [1, r·c] or the mesh is degenerate.
	Sources(r, c, s int) ([]int, error)
}

// check validates the common preconditions.
func check(name string, r, c, s int) error {
	if r <= 0 || c <= 0 {
		return fmt.Errorf("dist: %s: invalid mesh %d×%d", name, r, c)
	}
	if s < 1 || s > r*c {
		return fmt.Errorf("dist: %s: source count %d outside [1,%d]", name, s, r*c)
	}
	return nil
}

// placer collects cells, ignoring duplicates, until s cells are placed.
type placer struct {
	r, c, s int
	seen    map[int]bool
	out     []int
}

func newPlacer(r, c, s int) *placer {
	return &placer{r: r, c: c, s: s, seen: make(map[int]bool, s)}
}

// full reports whether s sources have been placed.
func (p *placer) full() bool { return len(p.out) >= p.s }

// add places a source at (row, col) if the cell is free; it reports
// whether the placer is full afterwards.
func (p *placer) add(row, col int) bool {
	rank := row*p.c + col
	if !p.seen[rank] {
		p.seen[rank] = true
		p.out = append(p.out, rank)
	}
	return p.full()
}

func (p *placer) sorted() []int {
	sort.Ints(p.out)
	return p.out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// spread returns k indices evenly spaced over [0, n): floor(j·n/k).
// The paper's "evenly spaced" rows/columns/diagonals.
func spread(n, k int) []int {
	out := make([]int, k)
	for j := 0; j < k; j++ {
		out[j] = j * n / k
	}
	return out
}

// row is R(s): i = ceil(s/c) evenly spaced rows; every chosen row except
// the last is completely filled.
type row struct{}

// Row returns the row distribution R(s).
func Row() Distribution { return row{} }

func (row) Name() string { return "R" }

func (row) Sources(r, c, s int) ([]int, error) {
	if err := check("R", r, c, s); err != nil {
		return nil, err
	}
	i := ceilDiv(s, c)
	p := newPlacer(r, c, s)
	for _, rr := range spread(r, i) {
		for col := 0; col < c; col++ {
			if p.add(rr, col) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// column is C(s): i = ceil(s/r) evenly spaced columns, filled top-down.
type column struct{}

// Column returns the column distribution C(s).
func Column() Distribution { return column{} }

func (column) Name() string { return "C" }

func (column) Sources(r, c, s int) ([]int, error) {
	if err := check("C", r, c, s); err != nil {
		return nil, err
	}
	i := ceilDiv(s, r)
	p := newPlacer(r, c, s)
	for _, cc := range spread(c, i) {
		for rr := 0; rr < r; rr++ {
			if p.add(rr, cc) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// equal is E(s): processor (0,0) is a source and the k-th source sits at
// row-major position floor(k·p/s), the "every ⌈p/s⌉-th or ⌊p/s⌋-th
// processor" rule of the paper.
type equal struct{}

// Equal returns the equal distribution E(s).
func Equal() Distribution { return equal{} }

func (equal) Name() string { return "E" }

func (equal) Sources(r, c, s int) ([]int, error) {
	if err := check("E", r, c, s); err != nil {
		return nil, err
	}
	p := r * c
	out := make([]int, s)
	for k := 0; k < s; k++ {
		out[k] = k * p / s
	}
	return out, nil
}

// diag implements Dr(s) and Dl(s). A right diagonal with offset o is the r
// cells (k, (o+k) mod c); a left diagonal is (k, (o−k) mod c). The first
// right diagonal (o=0) runs from (0,0) to (r−1,r−1); the first left
// diagonal (o=c−1) runs from (0,c−1) to (r−1,c−r). Diagonals wrap around,
// per the paper's "assume wraparound connections when placing sources".
type diag struct{ left bool }

// DiagRight returns the right diagonal distribution Dr(s).
func DiagRight() Distribution { return diag{left: false} }

// DiagLeft returns the left diagonal distribution Dl(s).
func DiagLeft() Distribution { return diag{left: true} }

func (d diag) Name() string {
	if d.left {
		return "Dl"
	}
	return "Dr"
}

func (d diag) Sources(r, c, s int) ([]int, error) {
	if err := check(d.Name(), r, c, s); err != nil {
		return nil, err
	}
	i := ceilDiv(s, r)
	p := newPlacer(r, c, s)
	for _, o := range spread(c, i) {
		for k := 0; k < r; k++ {
			col := (o + k) % c
			if d.left {
				// k can exceed c−1+o on tall meshes; normalize the
				// wraparound to a non-negative column.
				col = ((c-1-k+o)%c + c) % c
			}
			if p.add(k, col) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// band is B(s): b = ceil(c/r) evenly distributed bands of adjacent right
// diagonals, each band of width ceil(s/(b·r)).
type band struct{}

// Band returns the band distribution B(s).
func Band() Distribution { return band{} }

func (band) Name() string { return "B" }

func (band) Sources(r, c, s int) ([]int, error) {
	if err := check("B", r, c, s); err != nil {
		return nil, err
	}
	b := ceilDiv(c, r)
	w := ceilDiv(s, b*r)
	p := newPlacer(r, c, s)
	for _, o := range spread(c, b) {
		for dw := 0; dw < w; dw++ {
			for k := 0; k < r; k++ {
				if p.add(k, (o+dw+k)%c) {
					return p.sorted(), nil
				}
			}
		}
	}
	// Width rounding can leave stragglers on huge s; widen the bands
	// until everything is placed (keeps Sources total-correct for any s).
	for dw := w; !p.full(); dw++ {
		for _, o := range spread(c, b) {
			for k := 0; k < r; k++ {
				if p.add(k, (o+dw+k)%c) {
					return p.sorted(), nil
				}
			}
		}
	}
	return p.sorted(), nil
}

// cross is Cr(s): the union of a row and a column distribution with
// roughly s/2 sources each. ceil(s/2c) evenly spaced full rows are placed
// first, then ceil(s/2r) evenly spaced columns are filled top-down
// (skipping cells that are already sources) until s sources exist. For
// Cr(30) on 10×10 this yields exactly the paper's Figure 1: two full rows
// and two columns, the second column holding only 4 sources.
type cross struct{}

// Cross returns the cross distribution Cr(s).
func Cross() Distribution { return cross{} }

func (cross) Name() string { return "Cr" }

func (cross) Sources(r, c, s int) ([]int, error) {
	if err := check("Cr", r, c, s); err != nil {
		return nil, err
	}
	p := newPlacer(r, c, s)
	nr := ceilDiv(s, 2*c)
	for _, rr := range spread(r, nr) {
		for col := 0; col < c; col++ {
			if p.add(rr, col) {
				return p.sorted(), nil
			}
		}
	}
	nc := ceilDiv(s, 2*r)
	for !p.full() {
		for _, cc := range spread(c, nc) {
			for rr := 0; rr < r; rr++ {
				if p.add(rr, cc) {
					return p.sorted(), nil
				}
			}
		}
		// All chosen columns exhausted without reaching s (tiny meshes):
		// widen with one more column.
		nc++
		if nc > c {
			// Degenerate; fall back to filling row-major.
			for rank := 0; !p.full(); rank++ {
				p.add(rank/c, rank%c)
			}
		}
	}
	return p.sorted(), nil
}

// square is Sq(s): the sources form a ⌈√s⌉×⌈√s⌉ block anchored at (0,0),
// filled column by column. When √s exceeds the row count the block is
// clipped to r rows and widened accordingly.
type square struct{}

// Square returns the square block distribution Sq(s).
func Square() Distribution { return square{} }

func (square) Name() string { return "Sq" }

func (square) Sources(r, c, s int) ([]int, error) {
	if err := check("Sq", r, c, s); err != nil {
		return nil, err
	}
	q := int(math.Ceil(math.Sqrt(float64(s))))
	h := q
	if h > r {
		h = r
	}
	// If the clipped block would be wider than the mesh, grow it downward
	// instead (s ≤ r·c guarantees ceil(s/c) ≤ r).
	if ceilDiv(s, h) > c {
		h = ceilDiv(s, c)
	}
	p := newPlacer(r, c, s)
	for col := 0; !p.full(); col++ {
		if col >= c {
			return nil, fmt.Errorf("dist: Sq: block overflow placing %d sources on %d×%d", s, r, c)
		}
		for k := 0; k < h; k++ {
			if p.add(k, col) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// random places s sources uniformly at random (seeded, deterministic).
type random struct{ seed int64 }

// Random returns a uniform random distribution with the given seed; the
// paper conjectures random placements behave like the equal distribution
// on the T3D.
func Random(seed int64) Distribution { return random{seed: seed} }

func (d random) Name() string { return fmt.Sprintf("Rand%d", d.seed) }

func (d random) Sources(r, c, s int) ([]int, error) {
	if err := check(d.Name(), r, c, s); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(d.seed))
	perm := rng.Perm(r * c)
	out := make([]int, s)
	copy(out, perm[:s])
	sort.Ints(out)
	return out, nil
}

// All returns the paper's eight named distributions in the order Figure 6
// sweeps them, for experiment tables.
func All() []Distribution {
	return []Distribution{Row(), Column(), Equal(), DiagRight(), DiagLeft(), Band(), Cross(), Square()}
}

// ByName returns the distribution with the paper's notation name
// (case-sensitive: "R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq").
func ByName(name string) (Distribution, error) {
	for _, d := range All() {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("dist: unknown distribution %q", name)
}

// Render draws the distribution on an r×c character grid ('#' source,
// '.' other), the format of the paper's Figure 1.
func Render(r, c int, sources []int) string {
	set := make(map[int]bool, len(sources))
	for _, x := range sources {
		set[x] = true
	}
	var b strings.Builder
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if set[i*c+j] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
