package dist

import (
	"fmt"
	"sort"
)

// IdealLinear returns k positions in a linear array of n processors such
// that recursive halving (Br_Lin's pattern) grows the set of
// message-holding processors as fast as possible: every prefix of the
// construction places sources in distinct exchange pairs at every level of
// the halving tree, so the number of active processors doubles each
// iteration until saturation.
//
// The construction is recursive. For a segment of size n with halving
// offset h = ⌈n/2⌉, the k sources are assigned the pair slots of
// IdealLinear(h, k) and alternate between the slot's first-half position j
// and its second-half position j+h, so no two sources collide in
// iteration one and the induced within-half patterns are again ideal.
// The paper's observation that sources in rows 1 and 7 of a 10-row mesh
// beat rows 1 and 6 (which are halving partners) is exactly this property.
func IdealLinear(n, k int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: IdealLinear: non-positive array size %d", n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("dist: IdealLinear: k=%d outside [1,%d]", k, n)
	}
	out := idealLinear(n, k)
	sort.Ints(out)
	return out, nil
}

func idealLinear(n, k int) []int {
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if n == 1 {
		return []int{0}
	}
	h := (n + 1) / 2
	if k > h {
		// Every first-half slot is taken; overflow goes to an ideal
		// pattern of the second half.
		out := make([]int, 0, k)
		for i := 0; i < h; i++ {
			out = append(out, i)
		}
		for _, x := range idealLinear(n-h, k-h) {
			out = append(out, h+x)
		}
		return out
	}
	slots := idealLinear(h, k)
	out := make([]int, 0, k)
	for i, j := range slots {
		if i%2 == 1 && j+h < n {
			out = append(out, j+h)
		} else {
			out = append(out, j)
		}
	}
	return out
}

// idealRows is the ideal distribution for Br_xy_source (and Br_xy_dim when
// rows are the second dimension): ⌈s/c⌉ full rows whose row indices are
// chosen by IdealLinear over the r rows, so the column-phase recursive
// halving doubles the set of message-holding rows every iteration. This is
// the "row distribution … positioned so that the number of new sources
// increases as fast as possible" of Section 5.2.
type idealRows struct{}

// IdealRows returns the ideal row distribution generator.
func IdealRows() Distribution { return idealRows{} }

func (idealRows) Name() string { return "IdealRows" }

func (idealRows) Sources(r, c, s int) ([]int, error) {
	if err := check("IdealRows", r, c, s); err != nil {
		return nil, err
	}
	i := ceilDiv(s, c)
	rows, err := IdealLinear(r, i)
	if err != nil {
		return nil, err
	}
	p := newPlacer(r, c, s)
	for _, rr := range rows {
		for col := 0; col < c; col++ {
			if p.add(rr, col) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// idealColumns mirrors IdealRows for machines where columns are the
// second Br_xy dimension (r < c in Br_xy_dim's rule).
type idealColumns struct{}

// IdealColumns returns the ideal column distribution generator.
func IdealColumns() Distribution { return idealColumns{} }

func (idealColumns) Name() string { return "IdealCols" }

func (idealColumns) Sources(r, c, s int) ([]int, error) {
	if err := check("IdealCols", r, c, s); err != nil {
		return nil, err
	}
	i := ceilDiv(s, r)
	cols, err := IdealLinear(c, i)
	if err != nil {
		return nil, err
	}
	p := newPlacer(r, c, s)
	for _, cc := range cols {
		for rr := 0; rr < r; rr++ {
			if p.add(rr, cc) {
				return p.sorted(), nil
			}
		}
	}
	return p.sorted(), nil
}

// idealSnake is the ideal distribution for Br_Lin on the snake-indexed
// mesh: IdealLinear positions interpreted as snake ranks and converted to
// row-major ranks. The paper uses the left diagonal as Br_Lin's ideal
// distribution on the Paragon; IdealSnake is the exact machine-derived
// ideal (our repositioning ablation compares both).
type idealSnake struct{}

// IdealSnake returns the halving-exact ideal distribution for Br_Lin.
func IdealSnake() Distribution { return idealSnake{} }

func (idealSnake) Name() string { return "IdealSnake" }

func (idealSnake) Sources(r, c, s int) ([]int, error) {
	if err := check("IdealSnake", r, c, s); err != nil {
		return nil, err
	}
	lin, err := IdealLinear(r*c, s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(lin))
	for i, rank := range lin {
		// Convert a snake rank to a row-major rank.
		row := rank / c
		col := rank % c
		if row%2 == 1 {
			col = c - 1 - col
		}
		out[i] = row*c + col
	}
	sort.Ints(out)
	return out, nil
}
