package dist

import (
	"testing"
)

// FuzzDistributionContract fuzzes every named distribution against the
// universal contract: exactly s sorted, unique, in-range ranks for any
// valid (r, c, s).
func FuzzDistributionContract(f *testing.F) {
	f.Add(uint8(10), uint8(10), uint16(30), int64(1))
	f.Add(uint8(1), uint8(1), uint16(1), int64(2))
	f.Add(uint8(16), uint8(16), uint16(256), int64(3))
	f.Add(uint8(4), uint8(30), uint16(119), int64(4))
	f.Fuzz(func(t *testing.T, ru, cu uint8, su uint16, seed int64) {
		r := int(ru)%24 + 1
		c := int(cu)%24 + 1
		s := int(su)%(r*c) + 1
		dists := append(All(), Random(seed), IdealRows(), IdealColumns(), IdealSnake())
		for _, d := range dists {
			got, err := d.Sources(r, c, s)
			if err != nil {
				t.Fatalf("%s(%d) on %d×%d: %v", d.Name(), s, r, c, err)
			}
			if len(got) != s {
				t.Fatalf("%s(%d) on %d×%d: placed %d", d.Name(), s, r, c, len(got))
			}
			for i, rank := range got {
				if rank < 0 || rank >= r*c {
					t.Fatalf("%s: rank %d out of range", d.Name(), rank)
				}
				if i > 0 && got[i-1] >= rank {
					t.Fatalf("%s: not sorted-unique", d.Name())
				}
			}
		}
	})
}

// FuzzIdealLinear fuzzes the halving-ideal generator: any prefix must be
// valid positions and the full halving simulation must reach everyone.
func FuzzIdealLinear(f *testing.F) {
	f.Add(uint8(16), uint8(2))
	f.Add(uint8(10), uint8(3))
	f.Add(uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, nu, ku uint8) {
		n := int(nu)%128 + 1
		k := int(ku)%n + 1
		got, err := IdealLinear(n, k)
		if err != nil {
			t.Fatalf("IdealLinear(%d,%d): %v", n, k, err)
		}
		if len(got) != k {
			t.Fatalf("IdealLinear(%d,%d) returned %d positions", n, k, len(got))
		}
		profile := simulateHalving(n, got)
		if len(profile) > 0 && profile[len(profile)-1] != n {
			t.Fatalf("IdealLinear(%d,%d): final coverage %d", n, k, profile[len(profile)-1])
		}
	})
}
