package dist

import (
	"strings"
	"testing"
	"testing/quick"
)

// checkSources validates the universal contract: exactly s sorted, unique,
// in-range ranks.
func checkSources(t *testing.T, name string, r, c, s int, got []int, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s(%d) on %d×%d: %v", name, s, r, c, err)
	}
	if len(got) != s {
		t.Fatalf("%s(%d) on %d×%d: placed %d sources", name, s, r, c, len(got))
	}
	for i, rank := range got {
		if rank < 0 || rank >= r*c {
			t.Fatalf("%s(%d) on %d×%d: rank %d out of range", name, s, r, c, rank)
		}
		if i > 0 && got[i-1] >= rank {
			t.Fatalf("%s(%d) on %d×%d: not sorted-unique at %d: %v", name, s, r, c, i, got)
		}
	}
}

func TestAllDistributionsContract(t *testing.T) {
	meshes := [][2]int{{1, 1}, {1, 10}, {2, 2}, {4, 30}, {10, 10}, {10, 12}, {16, 16}, {7, 13}, {3, 5}}
	dists := append(All(), Random(3), IdealRows(), IdealColumns(), IdealSnake())
	for _, m := range meshes {
		r, c := m[0], m[1]
		p := r * c
		for _, s := range []int{1, 2, 3, p / 4, p / 2, p - 1, p} {
			if s < 1 || s > p {
				continue
			}
			for _, d := range dists {
				got, err := d.Sources(r, c, s)
				checkSources(t, d.Name(), r, c, s, got, err)
			}
		}
	}
}

func TestDistributionsContractQuick(t *testing.T) {
	dists := append(All(), Random(99), IdealRows(), IdealColumns(), IdealSnake())
	f := func(ru, cu, su uint8) bool {
		r := int(ru)%16 + 1
		c := int(cu)%16 + 1
		s := int(su)%(r*c) + 1
		for _, d := range dists {
			got, err := d.Sources(r, c, s)
			if err != nil || len(got) != s {
				return false
			}
			seen := map[int]bool{}
			for _, rank := range got {
				if rank < 0 || rank >= r*c || seen[rank] {
					return false
				}
				seen[rank] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArguments(t *testing.T) {
	for _, d := range All() {
		if _, err := d.Sources(10, 10, 0); err == nil {
			t.Errorf("%s accepted s=0", d.Name())
		}
		if _, err := d.Sources(10, 10, 101); err == nil {
			t.Errorf("%s accepted s>p", d.Name())
		}
		if _, err := d.Sources(0, 10, 5); err == nil {
			t.Errorf("%s accepted r=0", d.Name())
		}
	}
}

func rowsOf(c int, sources []int) map[int][]int {
	out := map[int][]int{}
	for _, rank := range sources {
		out[rank/c] = append(out[rank/c], rank%c)
	}
	return out
}

func TestRow30Matches10x10Figure(t *testing.T) {
	// R(30) on 10×10: three full, evenly spaced rows (Figure 1).
	got, err := Row().Sources(10, 10, 30)
	checkSources(t, "R", 10, 10, 30, got, err)
	rows := rowsOf(10, got)
	if len(rows) != 3 {
		t.Fatalf("R(30) uses rows %v", rows)
	}
	for _, r := range []int{0, 3, 6} {
		if len(rows[r]) != 10 {
			t.Fatalf("row %d has %d sources: %v", r, len(rows[r]), rows)
		}
	}
}

func TestRowPartialLastRow(t *testing.T) {
	got, err := Row().Sources(10, 10, 25)
	checkSources(t, "R", 10, 10, 25, got, err)
	rows := rowsOf(10, got)
	full := 0
	for _, cols := range rows {
		if len(cols) == 10 {
			full++
		}
	}
	if full != 2 {
		t.Fatalf("R(25): %d full rows, want 2 (%v)", full, rows)
	}
}

func TestColumnIsRowTransposed(t *testing.T) {
	rGot, err := Row().Sources(10, 10, 30)
	checkSources(t, "R", 10, 10, 30, rGot, err)
	cGot, err := Column().Sources(10, 10, 30)
	checkSources(t, "C", 10, 10, 30, cGot, err)
	transposed := make(map[int]bool, len(rGot))
	for _, rank := range rGot {
		transposed[(rank%10)*10+rank/10] = true
	}
	for _, rank := range cGot {
		if !transposed[rank] {
			t.Fatalf("C(30) not the transpose of R(30): rank %d", rank)
		}
	}
}

func TestEqualIncludesOriginAndSpreads(t *testing.T) {
	got, err := Equal().Sources(10, 10, 4)
	checkSources(t, "E", 10, 10, 4, got, err)
	want := []int{0, 25, 50, 75}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("E(4) = %v, want %v", got, want)
		}
	}
	// E(p) must be every processor.
	all, err := Equal().Sources(10, 10, 100)
	checkSources(t, "E", 10, 10, 100, all, err)
	for i, rank := range all {
		if rank != i {
			t.Fatalf("E(100)[%d] = %d", i, rank)
		}
	}
}

func TestDiagRightMainDiagonal(t *testing.T) {
	got, err := DiagRight().Sources(10, 10, 10)
	checkSources(t, "Dr", 10, 10, 10, got, err)
	for k := 0; k < 10; k++ {
		if got[k] != k*10+k {
			t.Fatalf("Dr(10) = %v, want the (k,k) diagonal", got)
		}
	}
}

func TestDiagLeftAntiDiagonal(t *testing.T) {
	got, err := DiagLeft().Sources(10, 10, 10)
	checkSources(t, "Dl", 10, 10, 10, got, err)
	want := map[int]bool{}
	for k := 0; k < 10; k++ {
		want[k*10+(9-k)] = true
	}
	for _, rank := range got {
		if !want[rank] {
			t.Fatalf("Dl(10) = %v, want the (k,9−k) anti-diagonal", got)
		}
	}
}

func TestDiagonalsBalanceRowsAndColumns(t *testing.T) {
	// A full diagonal distribution has the same source count in every row
	// and every column (the property Section 4 highlights).
	for _, d := range []Distribution{DiagRight(), DiagLeft()} {
		got, err := d.Sources(10, 10, 30)
		checkSources(t, d.Name(), 10, 10, 30, got, err)
		perRow := map[int]int{}
		perCol := map[int]int{}
		for _, rank := range got {
			perRow[rank/10]++
			perCol[rank%10]++
		}
		for i := 0; i < 10; i++ {
			if perRow[i] != 3 {
				t.Fatalf("%s(30): row %d has %d sources", d.Name(), i, perRow[i])
			}
			if perCol[i] != 3 {
				t.Fatalf("%s(30): col %d has %d sources", d.Name(), i, perCol[i])
			}
		}
	}
}

func TestCross30Matches10x10Figure(t *testing.T) {
	// Cr(30) on 10×10 (Figure 1): two full rows, first column complete,
	// second column with exactly 4 sources.
	got, err := Cross().Sources(10, 10, 30)
	checkSources(t, "Cr", 10, 10, 30, got, err)
	rows := rowsOf(10, got)
	if len(rows[0]) != 10 || len(rows[5]) != 10 {
		t.Fatalf("Cr(30) rows: %v", rows)
	}
	perCol := map[int]int{}
	for _, rank := range got {
		perCol[rank%10]++
	}
	if perCol[0] != 10 {
		t.Fatalf("Cr(30): first column has %d sources", perCol[0])
	}
	if perCol[5] != 4 {
		t.Fatalf("Cr(30): second cross column has %d sources, want 4", perCol[5])
	}
}

func TestSquareBlockShape(t *testing.T) {
	got, err := Square().Sources(10, 10, 30)
	checkSources(t, "Sq", 10, 10, 30, got, err)
	// q = ⌈√30⌉ = 6: all sources inside rows 0..5, cols 0..4.
	for _, rank := range got {
		r, c := rank/10, rank%10
		if r > 5 || c > 4 {
			t.Fatalf("Sq(30): source at (%d,%d) outside 6×5 block", r, c)
		}
	}
}

func TestSquareClipsToShortMesh(t *testing.T) {
	got, err := Square().Sources(4, 30, 25)
	checkSources(t, "Sq", 4, 30, 25, got, err)
	for _, rank := range got {
		if rank/30 > 3 {
			t.Fatalf("Sq on 4×30 placed source below row 3")
		}
	}
}

func TestBandSingleBandOn16x16(t *testing.T) {
	// On 16×16, b = 1: one diagonal band of width ⌈s/16⌉ (Section 5.2).
	got, err := Band().Sources(16, 16, 64)
	checkSources(t, "B", 16, 16, 64, got, err)
	for _, rank := range got {
		r, c := rank/16, rank%16
		off := (c - r + 16) % 16
		if off >= 4 {
			t.Fatalf("B(64) on 16×16: source at (%d,%d) outside width-4 band", r, c)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Random(5).Sources(16, 16, 40)
	b, _ := Random(5).Sources(16, 16, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq"} {
		d, err := ByName(want)
		if err != nil || d.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", want, d, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestRenderShowsSources(t *testing.T) {
	got, _ := DiagRight().Sources(4, 4, 4)
	s := Render(4, 4, got)
	want := "#...\n.#..\n..#.\n...#\n"
	if s != want {
		t.Fatalf("Render:\n%s\nwant:\n%s", s, want)
	}
	if strings.Count(s, "#") != 4 {
		t.Fatalf("Render source count wrong:\n%s", s)
	}
}

// simulateHalving runs Br_Lin's pairing pattern over holder booleans and
// returns the holder count after each iteration (the growth profile the
// ideal distributions are designed to maximize).
func simulateHalving(n int, sources []int) []int {
	holds := make([]bool, n)
	for _, s := range sources {
		holds[s] = true
	}
	count := func() int {
		k := 0
		for _, h := range holds {
			if h {
				k++
			}
		}
		return k
	}
	var profile []int
	type seg struct{ lo, n int }
	segs := []seg{{0, n}}
	for len(segs) > 0 && segs[0].n > 1 {
		var next []seg
		for _, sg := range segs {
			if sg.n <= 1 {
				continue
			}
			h := (sg.n + 1) / 2
			for i := 0; i < sg.n-h; i++ {
				a, b := sg.lo+i, sg.lo+i+h
				if holds[a] || holds[b] {
					holds[a], holds[b] = true, true
				}
			}
			if sg.n%2 == 1 {
				// Unpaired middle one-way sends to the segment's last
				// processor (the Br_Lin odd rule).
				u := sg.lo + h - 1
				if holds[u] {
					holds[sg.lo+sg.n-1] = true
				}
			}
			next = append(next, seg{sg.lo, h}, seg{sg.lo + h, sg.n - h})
		}
		segs = next
		profile = append(profile, count())
	}
	return profile
}

func TestIdealLinearDoublesOnPowersOfTwo(t *testing.T) {
	for _, n := range []int{8, 16, 64, 128} {
		for k := 1; k <= n/2; k *= 2 {
			sources, err := IdealLinear(n, k)
			if err != nil {
				t.Fatal(err)
			}
			profile := simulateHalving(n, sources)
			for it, holders := range profile {
				want := k << uint(it+1)
				if want > n {
					want = n
				}
				if holders < want {
					t.Fatalf("IdealLinear(%d,%d): iter %d holders %d < %d (profile %v, sources %v)",
						n, k, it, holders, want, profile, sources)
				}
			}
		}
	}
}

func TestIdealLinearNearDoublesAnySize(t *testing.T) {
	// On arbitrary sizes the doubling may lose one holder per odd split;
	// require ≥ 2k−1 holders after the first iteration and full coverage
	// at the end.
	for _, n := range []int{5, 7, 10, 12, 15, 100, 120} {
		for _, k := range []int{1, 2, 3, 4} {
			if 2*k > n {
				continue
			}
			sources, err := IdealLinear(n, k)
			if err != nil {
				t.Fatal(err)
			}
			profile := simulateHalving(n, sources)
			if profile[0] < 2*k-1 {
				t.Fatalf("IdealLinear(%d,%d): first iteration grew %d→%d (sources %v)",
					n, k, k, profile[0], sources)
			}
			if final := profile[len(profile)-1]; final != n {
				t.Fatalf("IdealLinear(%d,%d): final coverage %d of %d", n, k, final, n)
			}
		}
	}
}

func TestIdealLinearAvoidsPartnerCollision(t *testing.T) {
	// The paper's 10-row example: two ideal rows must not be halving
	// partners (distance 5 apart in a 10-row mesh).
	sources, err := IdealLinear(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := sources[1] - sources[0]; d == 5 {
		t.Fatalf("IdealLinear(10,2) = %v places halving partners", sources)
	}
}

func TestIdealRowsAreFullRows(t *testing.T) {
	got, err := IdealRows().Sources(16, 16, 64)
	checkSources(t, "IdealRows", 16, 16, 64, got, err)
	rows := rowsOf(16, got)
	if len(rows) != 4 {
		t.Fatalf("IdealRows(64) on 16×16 used %d rows", len(rows))
	}
	for r, cols := range rows {
		if len(cols) != 16 {
			t.Fatalf("IdealRows row %d has %d sources", r, len(cols))
		}
	}
	rowIdx := make([]int, 0, len(rows))
	for r := range rows {
		rowIdx = append(rowIdx, r)
	}
	// The chosen rows themselves must double under halving.
	profile := simulateHalving(16, rowIdx)
	if profile[0] < 8 {
		t.Fatalf("IdealRows row set %v does not double: %v", rowIdx, profile)
	}
}
