package daemon

import (
	"errors"
	"sync"
	"time"

	stpbcast "repro"
)

// ErrPoolFull is returned by Acquire when the pool is at MaxSessions and
// every warm session is busy, so nothing can be evicted to make room.
// The server maps it to 503.
var ErrPoolFull = errors.New("daemon: session pool full (all meshes busy)")

// errPoolClosed is returned by Acquire after Close.
var errPoolClosed = errors.New("daemon: session pool closed")

// PoolOptions configure the warm-session pool. The zero value uses the
// defaults.
type PoolOptions struct {
	// MaxSessions caps the number of warm sessions (default 8). At the
	// cap, acquiring a new key evicts the least recently used idle
	// session; if every session is busy, Acquire fails with ErrPoolFull.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (default 5m;
	// negative disables TTL eviction). A janitor goroutine sweeps at
	// IdleTTL/4 granularity.
	IdleTTL time.Duration
	// Disable turns pooling off: every Acquire opens a fresh session and
	// Release closes it. This is the fresh-session-per-request baseline
	// the figDaemon experiment measures the pool against.
	Disable bool
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 8
	}
	if o.IdleTTL == 0 {
		o.IdleTTL = 5 * time.Minute
	}
	return o
}

// entry is one pooled warm session.
type entry struct {
	key Key
	// mu serializes runs on the session: concurrent requests for the
	// same key queue here instead of rebuilding the mesh. (Session.Run
	// also serializes internally; holding the lease lock additionally
	// covers lazy open and keeps queueing observable to the pool.)
	mu      sync.Mutex
	sess    *stpbcast.Session
	machine *stpbcast.Machine
	// refs and lastUse are guarded by Pool.mu: refs counts holders
	// (running or queued), lastUse is the last acquire/release instant.
	refs    int
	lastUse time.Time
}

// Pool is a keyed pool of warm sessions: lazy open on first use, LRU
// eviction at capacity, TTL eviction when idle, per-key serialization of
// runs. All methods are safe for concurrent use.
type Pool struct {
	opts PoolOptions

	mu        sync.Mutex
	entries   map[Key]*entry
	opens     int64
	evictions int64
	closed    bool
	stop      chan struct{}
	janitor   sync.WaitGroup
}

// NewPool builds a pool. The caller must Close it.
func NewPool(opts PoolOptions) *Pool {
	p := &Pool{
		opts:    opts.withDefaults(),
		entries: make(map[Key]*entry),
		stop:    make(chan struct{}),
	}
	if p.opts.IdleTTL > 0 && !p.opts.Disable {
		p.janitor.Add(1)
		go p.runJanitor()
	}
	return p
}

// Lease is access to one warm session, held from Acquire to Release.
// Until Unlock (or Release) it also holds the key's serialization lock,
// so no other request can touch the same session; after Unlock the
// lease only pins the session in the pool (it cannot be evicted or
// closed) while the holder waits on work it already submitted.
type Lease struct {
	p        *Pool
	e        *entry
	fresh    bool
	unlocked bool
}

// Session returns the leased warm session.
func (l *Lease) Session() *stpbcast.Session { return l.e.sess }

// Key returns the pool key the lease serves.
func (l *Lease) Key() Key { return l.e.key }

// Unlock releases the key's serialization lock early, before Release:
// the next request for the same key may then open its own run against
// the session — which serializes (or pipelines, via RunAsync) runs
// internally — while this holder waits for a run it already submitted.
// The lease itself stays held: the session cannot be evicted or closed
// until Release. Unlock is idempotent and a no-op on disabled-pool
// fresh leases, which serialize nothing.
func (l *Lease) Unlock() {
	if l.fresh || l.unlocked {
		return
	}
	l.unlocked = true
	l.e.mu.Unlock()
}

// Release returns the session to the pool (or closes it, for a
// disabled-pool fresh session or an entry evicted while this lease held
// it).
func (l *Lease) Release() {
	if l.fresh {
		l.e.sess.Close()
		return
	}
	l.Unlock()
	l.p.mu.Lock()
	l.e.refs--
	l.e.lastUse = time.Now()
	var orphan *stpbcast.Session
	if l.e.refs == 0 && l.p.entries[l.e.key] != l.e {
		// The entry left the map while we held it (pool Close, or a
		// failed lazy open by an earlier queued holder); the last one
		// out closes the session.
		orphan = l.e.sess
	}
	l.p.mu.Unlock()
	if orphan != nil {
		orphan.Close()
	}
}

// Acquire leases the warm session for key, opening it on first use and
// queueing behind any in-flight run on the same key. At capacity it
// evicts the least recently used idle session; with every session busy
// it fails fast with ErrPoolFull rather than queue on pool capacity.
func (p *Pool) Acquire(key Key) (*Lease, error) {
	if p.opts.Disable {
		sess, m, err := key.open()
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.opens++
		p.mu.Unlock()
		return &Lease{p: p, e: &entry{key: key, sess: sess, machine: m}, fresh: true}, nil
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	e := p.entries[key]
	var victim *entry
	if e == nil {
		if len(p.entries) >= p.opts.MaxSessions {
			victim = p.lruIdleLocked()
			if victim == nil {
				p.mu.Unlock()
				return nil, ErrPoolFull
			}
			delete(p.entries, victim.key)
			p.evictions++
		}
		e = &entry{key: key, lastUse: time.Now()}
		p.entries[key] = e
	}
	e.refs++
	e.lastUse = time.Now()
	p.mu.Unlock()

	if victim != nil && victim.sess != nil {
		victim.Close()
	}

	// Per-key serialization: queue behind whoever holds the mesh.
	e.mu.Lock()
	if e.sess == nil {
		sess, m, err := key.open()
		if err != nil {
			e.mu.Unlock()
			p.mu.Lock()
			e.refs--
			if p.entries[key] == e {
				delete(p.entries, key)
			}
			p.mu.Unlock()
			return nil, err
		}
		e.sess, e.machine = sess, m
		p.mu.Lock()
		p.opens++
		p.mu.Unlock()
	}
	return &Lease{p: p, e: e}, nil
}

// Close is called on an evicted entry once no holder remains; refs==0
// guaranteed that at eviction time, so the session can be torn down.
func (e *entry) Close() {
	if e.sess != nil {
		e.sess.Close()
	}
}

// lruIdleLocked returns the least recently used entry with no holders,
// or nil when everything is busy. Pool.mu must be held.
func (p *Pool) lruIdleLocked() *entry {
	var victim *entry
	for _, e := range p.entries {
		if e.refs != 0 {
			continue
		}
		if victim == nil || e.lastUse.Before(victim.lastUse) {
			victim = e
		}
	}
	return victim
}

// runJanitor sweeps TTL-expired idle sessions until Close.
func (p *Pool) runJanitor() {
	defer p.janitor.Done()
	period := p.opts.IdleTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			p.Sweep(now)
		}
	}
}

// Sweep evicts every idle session untouched since before now-IdleTTL.
// It is exported for tests; the janitor calls it periodically.
func (p *Pool) Sweep(now time.Time) int {
	if p.opts.IdleTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-p.opts.IdleTTL)
	var victims []*entry
	p.mu.Lock()
	for key, e := range p.entries {
		if e.refs == 0 && e.lastUse.Before(cutoff) {
			delete(p.entries, key)
			p.evictions++
			victims = append(victims, e)
		}
	}
	p.mu.Unlock()
	for _, e := range victims {
		e.Close()
	}
	return len(victims)
}

// Sessions snapshots the pool for /v1/sessions (unsorted; callers
// order by key). Session stats are read without blocking behind
// in-flight runs — Session.Stats guarantees that.
func (p *Pool) Sessions() []SessionInfo {
	type snap struct {
		key     Key
		sess    *stpbcast.Session
		busy    bool
		lastUse time.Time
	}
	p.mu.Lock()
	snaps := make([]snap, 0, len(p.entries))
	for _, e := range p.entries {
		snaps = append(snaps, snap{key: e.key, sess: e.sess, busy: e.refs > 0, lastUse: e.lastUse})
	}
	p.mu.Unlock()
	now := time.Now()
	out := make([]SessionInfo, 0, len(snaps))
	for _, s := range snaps {
		info := SessionInfo{Key: s.key.String(), Busy: s.busy, IdleMs: now.Sub(s.lastUse).Milliseconds()}
		if s.busy {
			info.IdleMs = 0
		}
		if s.sess != nil {
			st := s.sess.Stats()
			info.Runs, info.Failures, info.Bytes, info.Reconnects = st.Runs, st.Failures, st.Bytes, st.Reconnects
		}
		out = append(out, info)
	}
	return out
}

// Len reports the number of warm entries.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Opens and Evictions report pool lifecycle counts.
func (p *Pool) Opens() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opens
}

func (p *Pool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// Close tears down every idle session and marks the pool closed; a
// session still held by a lease is closed by that lease's Release.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	var victims []*entry
	for key, e := range p.entries {
		delete(p.entries, key)
		if e.refs == 0 {
			victims = append(victims, e)
		}
	}
	p.mu.Unlock()
	p.janitor.Wait()
	for _, e := range victims {
		e.Close()
	}
}
