package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer stands up an in-process daemon and returns its base URL.
func testServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts.URL
}

// post issues one broadcast and returns the decoded response (status,
// success body or error body).
func post(t *testing.T, base string, req BroadcastRequest) (int, *BroadcastResponse, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/broadcast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out BroadcastResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &out, nil
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &e
}

// TestEndToEndConcurrentAcrossKeys is the acceptance scenario: ≥8
// concurrent broadcast requests across ≥2 session keys through the HTTP
// API, all succeeding, with /metrics reflecting the run counts.
func TestEndToEndConcurrentAcrossKeys(t *testing.T) {
	_, base := testServer(t, Options{})
	reqs := []BroadcastRequest{
		{Engine: "sim", Rows: 4, Cols: 4, Algorithm: "Br_xy_source", Distribution: "E", Sources: 4, MsgBytes: 4096},
		{Engine: "live", Rows: 3, Cols: 3, Algorithm: "Br_Lin", Distribution: "E", Sources: 3, MsgBytes: 256},
		{Engine: "tcp", Rows: 2, Cols: 2, Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 128},
	}
	const perKey = 4 // 12 concurrent requests over 3 keys
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs)*perKey)
	for _, req := range reqs {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(req BroadcastRequest) {
				defer wg.Done()
				status, out, e := post(t, base, req)
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s/%dx%d: status %d: %s", req.Engine, req.Rows, req.Cols, status, e.Error)
					return
				}
				if out.ElapsedNs <= 0 {
					errs <- fmt.Errorf("%s: non-positive elapsed %d", req.Engine, out.ElapsedNs)
				}
			}(req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every key served perKey runs over one warm session.
	resp, err := http.Get(base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sessions SessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sessions.Sessions) != len(reqs) {
		t.Fatalf("%d warm sessions, want %d", len(sessions.Sessions), len(reqs))
	}
	for _, s := range sessions.Sessions {
		if s.Runs != perKey {
			t.Errorf("session %s served %d runs, want %d", s.Key, s.Runs, perKey)
		}
		if s.Failures != 0 {
			t.Errorf("session %s reports %d failures", s.Key, s.Failures)
		}
	}

	// /metrics agrees with what just happened.
	metrics := getMetrics(t, base)
	total := len(reqs) * perKey
	wantLines := []string{
		fmt.Sprintf("stpbcastd_requests_total %d", total),
		fmt.Sprintf("stpbcastd_completed_total %d", total),
		"stpbcastd_failed_total 0",
		fmt.Sprintf("stpbcastd_sessions %d", len(reqs)),
		fmt.Sprintf("stpbcastd_session_runs{key=\"sim/paragon/4x4\"} %d", perKey),
		fmt.Sprintf("stpbcastd_session_runs{key=\"live/paragon/3x3\"} %d", perKey),
		fmt.Sprintf("stpbcastd_session_runs{key=\"tcp/paragon/2x2\"} %d", perKey),
		fmt.Sprintf("stpbcastd_tenant_requests_total{tenant=\"anonymous\"} %d", total),
	}
	for _, want := range wantLines {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBroadcastRequestValidation(t *testing.T) {
	_, base := testServer(t, Options{})
	cases := []struct {
		name string
		req  BroadcastRequest
		want string
	}{
		{"unknown engine", BroadcastRequest{Engine: "quantum", Rows: 2, Cols: 2}, "unknown engine"},
		{"zero mesh", BroadcastRequest{Engine: "sim"}, "rows and cols"},
		{"unknown algorithm", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Algorithm: "Br_Nope"}, "unknown algorithm"},
		{"unknown distribution", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Distribution: "Z"}, "unknown distribution"},
		{"negative bytes", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, MsgBytes: -1}, "msg_bytes"},
		{"kill on sim", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Kill: &KillSpec{Rank: 1, Op: 0}}, "real-byte engine"},
		{"bad topology", BroadcastRequest{Engine: "sim", Topology: "dragonfly", Rows: 2, Cols: 2}, "unknown machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, e := post(t, base, tc.req)
			// Topology errors surface at session open (500 carries the
			// message too); everything else must be a 400.
			if status == http.StatusOK {
				t.Fatalf("accepted invalid request %+v", tc.req)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
	// Unknown fields are rejected, so typos cannot silently become
	// defaults.
	resp, err := http.Post(base+"/v1/broadcast", "application/json",
		strings.NewReader(`{"engine":"sim","rows":2,"cols":2,"msgbytes":1024}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted with status %d", resp.StatusCode)
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	s := New(Options{MaxInFlight: 2, TenantQuota: 1})
	defer s.Close()

	rel1, status, _ := s.admit("a")
	if rel1 == nil {
		t.Fatalf("first admit rejected with %d", status)
	}
	// Tenant "a" is at quota → 429; tenant "b" still fits.
	if rel, status, _ := s.admit("a"); rel != nil {
		t.Fatal("tenant over quota admitted")
	} else if status != http.StatusTooManyRequests {
		t.Fatalf("tenant over quota got %d, want 429", status)
	}
	rel2, status, _ := s.admit("b")
	if rel2 == nil {
		t.Fatalf("second tenant rejected with %d", status)
	}
	// Global cap reached → 503 even for a fresh tenant.
	if rel, status, _ := s.admit("c"); rel != nil {
		t.Fatal("admit over global cap succeeded")
	} else if status != http.StatusServiceUnavailable {
		t.Fatalf("over-cap admit got %d, want 503", status)
	}
	rel1()
	rel2()
	// Capacity freed: the same tenant fits again.
	rel3, status, _ := s.admit("a")
	if rel3 == nil {
		t.Fatalf("admit after release rejected with %d", status)
	}
	rel3()
}

func TestShutdownDrains(t *testing.T) {
	srv, base := testServer(t, Options{})
	if status, _, _ := post(t, base, BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2}); status != http.StatusOK {
		t.Fatalf("warm-up broadcast failed with %d", status)
	}
	resp, err := http.Post(base+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	status, _, e := post(t, base, BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("broadcast after drain got %d, want 503", status)
	}
	if !strings.Contains(e.Error, "draining") {
		t.Errorf("post-drain error %q does not mention draining", e.Error)
	}
}

func TestMethodChecks(t *testing.T) {
	_, base := testServer(t, Options{})
	resp, err := http.Get(base + "/v1/broadcast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/broadcast got %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/shutdown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/shutdown got %d, want 405", resp.StatusCode)
	}
}
