package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer stands up an in-process daemon and returns its base URL.
func testServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts.URL
}

// post issues one broadcast and returns the decoded response (status,
// success body or error body).
func post(t *testing.T, base string, req BroadcastRequest) (int, *BroadcastResponse, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/broadcast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out BroadcastResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &out, nil
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &e
}

// TestEndToEndConcurrentAcrossKeys is the acceptance scenario: ≥8
// concurrent broadcast requests across ≥2 session keys through the HTTP
// API, all succeeding, with /metrics reflecting the run counts.
func TestEndToEndConcurrentAcrossKeys(t *testing.T) {
	_, base := testServer(t, Options{})
	reqs := []BroadcastRequest{
		{Engine: "sim", Rows: 4, Cols: 4, Algorithm: "Br_xy_source", Distribution: "E", Sources: 4, MsgBytes: 4096},
		{Engine: "live", Rows: 3, Cols: 3, Algorithm: "Br_Lin", Distribution: "E", Sources: 3, MsgBytes: 256},
		{Engine: "tcp", Rows: 2, Cols: 2, Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 128},
	}
	const perKey = 4 // 12 concurrent requests over 3 keys
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs)*perKey)
	for _, req := range reqs {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(req BroadcastRequest) {
				defer wg.Done()
				status, out, e := post(t, base, req)
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s/%dx%d: status %d: %s", req.Engine, req.Rows, req.Cols, status, e.Error)
					return
				}
				if out.ElapsedNs <= 0 {
					errs <- fmt.Errorf("%s: non-positive elapsed %d", req.Engine, out.ElapsedNs)
				}
			}(req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every key served perKey runs over one warm session.
	resp, err := http.Get(base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sessions SessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sessions.Sessions) != len(reqs) {
		t.Fatalf("%d warm sessions, want %d", len(sessions.Sessions), len(reqs))
	}
	for _, s := range sessions.Sessions {
		if s.Runs != perKey {
			t.Errorf("session %s served %d runs, want %d", s.Key, s.Runs, perKey)
		}
		if s.Failures != 0 {
			t.Errorf("session %s reports %d failures", s.Key, s.Failures)
		}
	}

	// /metrics agrees with what just happened.
	metrics := getMetrics(t, base)
	total := len(reqs) * perKey
	wantLines := []string{
		fmt.Sprintf("stpbcastd_requests_total %d", total),
		fmt.Sprintf("stpbcastd_completed_total %d", total),
		"stpbcastd_failed_total 0",
		fmt.Sprintf("stpbcastd_sessions %d", len(reqs)),
		fmt.Sprintf("stpbcastd_session_runs{key=\"sim/paragon/4x4\"} %d", perKey),
		fmt.Sprintf("stpbcastd_session_runs{key=\"live/paragon/3x3\"} %d", perKey),
		fmt.Sprintf("stpbcastd_session_runs{key=\"tcp/paragon/2x2\"} %d", perKey),
		fmt.Sprintf("stpbcastd_tenant_requests_total{tenant=\"anonymous\"} %d", total),
	}
	for _, want := range wantLines {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBroadcastRequestValidation(t *testing.T) {
	_, base := testServer(t, Options{})
	cases := []struct {
		name string
		req  BroadcastRequest
		want string
	}{
		{"unknown engine", BroadcastRequest{Engine: "quantum", Rows: 2, Cols: 2}, "unknown engine"},
		{"zero mesh", BroadcastRequest{Engine: "sim"}, "rows and cols"},
		{"unknown algorithm", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Algorithm: "Br_Nope"}, "unknown algorithm"},
		{"unknown distribution", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Distribution: "Z"}, "unknown distribution"},
		{"negative bytes", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, MsgBytes: -1}, "msg_bytes"},
		{"kill on sim", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Kill: &KillSpec{Rank: 1, Op: 0}}, "real-byte engine"},
		{"bad topology", BroadcastRequest{Engine: "sim", Topology: "dragonfly", Rows: 2, Cols: 2}, "unknown machine"},
		{"unknown collective", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Collective: "Gossip"}, "unknown collective"},
		{"wrong-collective algorithm", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Collective: "AllReduce", Algorithm: "Br_Lin"}, "implements Broadcast, not AllReduce"},
		{"distribution on an all-to-all", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Collective: "AllToAll", Distribution: "E"}, "no source distribution"},
		{"sources on an allgather", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Collective: "AllGather", Sources: 2}, "no source count"},
		{"two roots on a scatter", BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2, Collective: "Scatter", Sources: 2}, "single root"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, e := post(t, base, tc.req)
			// Topology errors surface at session open (500 carries the
			// message too); everything else must be a 400.
			if status == http.StatusOK {
				t.Fatalf("accepted invalid request %+v", tc.req)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
	// Unknown fields are rejected, so typos cannot silently become
	// defaults.
	resp, err := http.Post(base+"/v1/broadcast", "application/json",
		strings.NewReader(`{"engine":"sim","rows":2,"cols":2,"msgbytes":1024}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted with status %d", resp.StatusCode)
	}
}

// TestBroadcastCollectives drives non-broadcast collectives through
// POST /v1/broadcast: the normalized collective is echoed back, the run
// succeeds on sim and live engines over the same warm session a plain
// broadcast uses, and an absent collective still means Broadcast.
func TestBroadcastCollectives(t *testing.T) {
	_, base := testServer(t, Options{})
	cases := []BroadcastRequest{
		{Engine: "sim", Rows: 4, Cols: 4, Collective: "AllReduce", MsgBytes: 256},
		{Engine: "sim", Rows: 4, Cols: 4, Collective: "AllToAll", Algorithm: "A2A_Pairwise", MsgBytes: 64},
		{Engine: "live", Rows: 4, Cols: 4, Collective: "Scatter", Algorithm: "Scatter_Binomial", MsgBytes: 64},
		{Engine: "live", Rows: 4, Cols: 4, Collective: "AllGather", MsgBytes: 64},
	}
	for _, req := range cases {
		status, out, e := post(t, base, req)
		if status != http.StatusOK {
			t.Fatalf("%s/%s: status %d: %s", req.Engine, req.Collective, status, e.Error)
		}
		if out.Collective != req.Collective {
			t.Errorf("%s: response echoes collective %q, want %q", req.Collective, out.Collective, req.Collective)
		}
		if out.ElapsedNs <= 0 {
			t.Errorf("%s/%s: non-positive elapsed %d", req.Engine, req.Collective, out.ElapsedNs)
		}
	}
	// Absent collective normalizes to Broadcast (the pre-collective wire
	// contract), sharing the sim/paragon/4x4 session with the runs above.
	status, out, e := post(t, base, BroadcastRequest{Engine: "sim", Rows: 4, Cols: 4, MsgBytes: 128})
	if status != http.StatusOK {
		t.Fatalf("plain broadcast: status %d: %s", status, e.Error)
	}
	if out.Collective != "Broadcast" {
		t.Errorf("absent collective echoed as %q, want Broadcast", out.Collective)
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	s := New(Options{MaxInFlight: 2, TenantQuota: 1})
	defer s.Close()

	rel1, status, _ := s.admit("a")
	if rel1 == nil {
		t.Fatalf("first admit rejected with %d", status)
	}
	// Tenant "a" is at quota → 429; tenant "b" still fits.
	if rel, status, _ := s.admit("a"); rel != nil {
		t.Fatal("tenant over quota admitted")
	} else if status != http.StatusTooManyRequests {
		t.Fatalf("tenant over quota got %d, want 429", status)
	}
	rel2, status, _ := s.admit("b")
	if rel2 == nil {
		t.Fatalf("second tenant rejected with %d", status)
	}
	// Global cap reached → 503 even for a fresh tenant.
	if rel, status, _ := s.admit("c"); rel != nil {
		t.Fatal("admit over global cap succeeded")
	} else if status != http.StatusServiceUnavailable {
		t.Fatalf("over-cap admit got %d, want 503", status)
	}
	rel1()
	rel2()
	// Capacity freed: the same tenant fits again.
	rel3, status, _ := s.admit("a")
	if rel3 == nil {
		t.Fatalf("admit after release rejected with %d", status)
	}
	rel3()
}

func TestShutdownDrains(t *testing.T) {
	srv, base := testServer(t, Options{})
	if status, _, _ := post(t, base, BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2}); status != http.StatusOK {
		t.Fatalf("warm-up broadcast failed with %d", status)
	}
	resp, err := http.Post(base+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	status, _, e := post(t, base, BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("broadcast after drain got %d, want 503", status)
	}
	if !strings.Contains(e.Error, "draining") {
		t.Errorf("post-drain error %q does not mention draining", e.Error)
	}
}

// TestLatencyRingPartialWindow pins the quantile fix: with fewer
// completed broadcasts than the ring's capacity, quantiles must be
// computed over only the recorded latencies — never over zero-valued
// empty slots, which would drag every quantile toward 0.
func TestLatencyRingPartialWindow(t *testing.T) {
	r := newLatencyRing(8)
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		r.record(d)
	}
	if got := r.occupied(); got != 3 {
		t.Fatalf("occupied() = %d after 3 records, want 3", got)
	}
	sorted := r.sortedSnapshot()
	if len(sorted) != 3 {
		t.Fatalf("snapshot holds %d latencies, want 3 (empty slots must not leak in)", len(sorted))
	}
	if sorted[0] != 10*time.Millisecond || sorted[2] != 30*time.Millisecond {
		t.Fatalf("snapshot not sorted: %v", sorted)
	}
	// All three recorded latencies are ≥10ms, so every quantile must be
	// too; a zero-padded window would report p50 = 0.
	if p50 := quantile(sorted, 0.50); p50 < 10 {
		t.Errorf("p50 over partial window = %.2fms, want >= 10ms", p50)
	}
	if p99 := quantile(sorted, 0.99); p99 != 30 {
		t.Errorf("p99 over partial window = %.2fms, want 30ms (the max)", p99)
	}
}

// TestLatencyRingWraps checks eviction order once the window fills:
// the oldest latency leaves first and occupancy stays at capacity.
func TestLatencyRingWraps(t *testing.T) {
	r := newLatencyRing(4)
	for i := 1; i <= 6; i++ { // 1ms..6ms; 1ms and 2ms must be evicted
		r.record(time.Duration(i) * time.Millisecond)
	}
	if got := r.occupied(); got != 4 {
		t.Fatalf("occupied() = %d after wrap, want 4", got)
	}
	sorted := r.sortedSnapshot()
	if sorted[0] != 3*time.Millisecond || sorted[3] != 6*time.Millisecond {
		t.Fatalf("ring kept %v, want the 4 most recent (3ms..6ms)", sorted)
	}
}

// TestStatsQuantilesFewerThanWindow drives the fix end to end: a
// handful of broadcasts (far fewer than latencyWindow) must yield
// positive, ordered quantiles from /v1/stats.
func TestStatsQuantilesFewerThanWindow(t *testing.T) {
	_, base := testServer(t, Options{})
	const n = 3
	for i := 0; i < n; i++ {
		if status, _, e := post(t, base, BroadcastRequest{Engine: "sim", Rows: 2, Cols: 2}); status != http.StatusOK {
			t.Fatalf("broadcast %d failed with %d: %+v", i, status, e)
		}
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != n {
		t.Fatalf("completed = %d, want %d", st.Completed, n)
	}
	if st.P50Ms <= 0 || st.P95Ms <= 0 || st.P99Ms <= 0 {
		t.Errorf("quantiles over %d broadcasts include a non-positive value: p50=%v p95=%v p99=%v",
			n, st.P50Ms, st.P95Ms, st.P99Ms)
	}
	if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", st.P50Ms, st.P95Ms, st.P99Ms)
	}
}

// TestPipelinedDispatchSameKey hammers one TCP mesh key with
// concurrent requests. Pipelined dispatch (RunAsync + early lease
// unlock) lets later requests submit while earlier ones wait; every
// run must still complete with its own result and the warm session
// must count them all.
func TestPipelinedDispatchSameKey(t *testing.T) {
	_, base := testServer(t, Options{})
	req := BroadcastRequest{Engine: "tcp", Rows: 2, Cols: 2, Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 128}
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, out, e := post(t, base, req)
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d: %+v", status, e)
				return
			}
			if out.ElapsedNs <= 0 {
				errs <- fmt.Errorf("non-positive elapsed %d", out.ElapsedNs)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	resp, err := http.Get(base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sessions SessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions.Sessions) != 1 {
		t.Fatalf("%d warm sessions, want 1 (single key)", len(sessions.Sessions))
	}
	if got := sessions.Sessions[0].Runs; got != n {
		t.Errorf("warm session served %d runs, want %d", got, n)
	}
	if f := sessions.Sessions[0].Failures; f != 0 {
		t.Errorf("warm session reports %d failures", f)
	}
}

func TestMethodChecks(t *testing.T) {
	_, base := testServer(t, Options{})
	resp, err := http.Get(base + "/v1/broadcast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/broadcast got %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/shutdown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/shutdown got %d, want 405", resp.StatusCode)
	}
}
