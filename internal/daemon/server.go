package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	stpbcast "repro"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Options configure a Server. The zero value uses the defaults.
type Options struct {
	// Pool configures the warm-session pool.
	Pool PoolOptions
	// MaxInFlight caps concurrently admitted broadcast requests across
	// all tenants (default 64); excess requests get 503 + Retry-After.
	MaxInFlight int
	// TenantQuota caps in-flight requests per tenant (default 0 =
	// unlimited); a tenant over quota gets 429.
	TenantQuota int
	// DefaultRecvTimeout bounds blocking receives for requests that set
	// no deadline of their own (default 30s), so a dead rank turns into
	// a structured error instead of a wedged mesh.
	DefaultRecvTimeout time.Duration
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.DefaultRecvTimeout <= 0 {
		o.DefaultRecvTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// latencyWindow bounds the ring of recent request latencies backing the
// /v1/stats and /metrics quantiles.
const latencyWindow = 1024

// latencyRing keeps the most recent capacity latencies. Until the ring
// has wrapped, only slots actually recorded exist — quantiles over a
// partially filled window must never read zero-valued empty slots, so
// occupied() exposes exactly the recorded prefix and nothing else.
type latencyRing struct {
	capacity int
	buf      []time.Duration // grows to capacity, then wraps
	next     int             // overwrite cursor once full
}

func newLatencyRing(capacity int) *latencyRing {
	return &latencyRing{capacity: capacity}
}

// record adds one latency, evicting the oldest once the ring is full.
func (r *latencyRing) record(d time.Duration) {
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, d)
		return
	}
	r.buf[r.next] = d
	r.next = (r.next + 1) % r.capacity
}

// occupied returns how many latencies the ring currently holds (equal
// to the completions recorded until the window wraps).
func (r *latencyRing) occupied() int { return len(r.buf) }

// sortedSnapshot copies the occupied slots and sorts them for quantile
// extraction; the ring itself keeps insertion order.
func (r *latencyRing) sortedSnapshot() []time.Duration {
	out := append([]time.Duration(nil), r.buf...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Server implements the control plane over a Pool. Build with New,
// mount Handler on an http.Server, and Close when done (or drive the
// drain through Shutdown / POST /v1/shutdown and wait on Done).
type Server struct {
	opts  Options
	pool  *Pool
	mux   *http.ServeMux
	start time.Time

	mu        sync.Mutex
	inFlight  int
	draining  bool
	requests  int64
	completed int64
	failed    int64
	rejected  int64
	tenants   map[string]*tenantState
	latencies *latencyRing // recent server-side latencies
	events    EventCounts  // cumulative, from traced runs

	wg       sync.WaitGroup // in-flight broadcast requests
	done     chan struct{}  // closed when a drain has fully completed
	shutOnce sync.Once
}

// tenantState tracks one tenant's admission accounting.
type tenantState struct {
	inFlight int
	requests int64
}

// New builds a Server and its pool.
func New(opts Options) *Server {
	s := &Server{
		opts:      opts.withDefaults(),
		start:     time.Now(),
		tenants:   make(map[string]*tenantState),
		latencies: newLatencyRing(latencyWindow),
		done:      make(chan struct{}),
	}
	s.pool = NewPool(s.opts.Pool)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/broadcast", s.handleBroadcast)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/ping", s.handlePing)
	mux.HandleFunc("/v1/shutdown", s.handleShutdown)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the control plane's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Done is closed once a drain (Shutdown or POST /v1/shutdown) has
// finished: no requests in flight, pool closed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Shutdown starts a graceful drain: new broadcasts are refused with
// 503, in-flight ones finish, then the pool closes and Done is closed.
// It returns immediately; wait on Done for completion.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		go func() {
			s.wg.Wait()
			s.pool.Close()
			close(s.done)
		}()
	})
}

// Close force-closes the pool without waiting for a drain (tests and
// abnormal exit paths). Safe after Shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.Close()
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, key, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Key: key})
}

// admit performs backpressure admission for one broadcast request.
// On success the caller must invoke the returned release exactly once.
func (s *Server) admit(tenant string) (release func(), status int, msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected++
		return nil, http.StatusServiceUnavailable, "daemon is draining"
	}
	if s.inFlight >= s.opts.MaxInFlight {
		s.rejected++
		return nil, http.StatusServiceUnavailable,
			fmt.Sprintf("daemon at max in-flight (%d)", s.opts.MaxInFlight)
	}
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		s.tenants[tenant] = ts
	}
	if s.opts.TenantQuota > 0 && ts.inFlight >= s.opts.TenantQuota {
		s.rejected++
		return nil, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over in-flight quota (%d)", tenant, s.opts.TenantQuota)
	}
	s.inFlight++
	ts.inFlight++
	ts.requests++
	s.requests++
	s.wg.Add(1)
	return func() {
		s.mu.Lock()
		s.inFlight--
		ts.inFlight--
		s.mu.Unlock()
		s.wg.Done()
	}, 0, ""
}

// recordOutcome folds one finished request into the counters.
func (s *Server) recordOutcome(ok bool, serverDur time.Duration, ev *EventCounts) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.failed++
		return
	}
	s.completed++
	s.latencies.record(serverDur)
	if ev != nil {
		s.events.Sends += ev.Sends
		s.events.Recvs += ev.Recvs
		s.events.Waits += ev.Waits
		s.events.Barriers += ev.Barriers
		s.events.Faults += ev.Faults
		s.events.WaitNs += ev.WaitNs
	}
}

func (s *Server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "", "POST required")
		return
	}
	var req BroadcastRequest
	body := io.LimitReader(r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	if msg := req.normalize(); msg != "" {
		writeError(w, http.StatusBadRequest, "", "%s", msg)
		return
	}

	release, status, msg := s.admit(req.Tenant)
	if release == nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "", "%s", msg)
		return
	}
	defer release()

	start := time.Now()
	key := req.key()
	lease, err := s.pool.Acquire(key)
	if err != nil {
		if err == ErrPoolFull {
			w.Header().Set("Retry-After", "1")
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, key.String(), "%v", err)
			return
		}
		s.recordOutcome(false, 0, nil)
		writeError(w, http.StatusInternalServerError, key.String(), "open session: %v", err)
		return
	}
	defer lease.Release()

	opts := req.runOptions(s.opts.DefaultRecvTimeout)
	var rec *stpbcast.TraceRecorder
	if req.Trace {
		rec = stpbcast.NewTraceRecorder(1 << 16)
		opts.Trace = rec
	}
	// Pipelined dispatch: submit the run, then drop the key's
	// serialization lock so the next request for the same mesh can
	// submit while we wait. RunAsync's epoch tagging keeps the
	// overlapping runs' frames apart; the lease still pins the session
	// against eviction until Release.
	fut, err := lease.Session().RunAsync(req.config(), opts)
	if err != nil {
		s.recordOutcome(false, time.Since(start), nil)
		writeError(w, http.StatusInternalServerError, key.String(), "broadcast failed: %v", err)
		return
	}
	lease.Unlock()
	res, err := fut.Wait()
	serverDur := time.Since(start)
	if err != nil {
		s.recordOutcome(false, serverDur, nil)
		writeError(w, http.StatusInternalServerError, key.String(), "broadcast failed: %v", err)
		return
	}
	var ev *EventCounts
	if rec != nil {
		ev = countEvents(rec)
	}
	s.recordOutcome(true, serverDur, ev)
	st := lease.Session().Stats()
	writeJSON(w, http.StatusOK, BroadcastResponse{
		Key:        key.String(),
		Collective: req.Collective,
		Algorithm:  req.Algorithm,
		ElapsedNs:  res.Elapsed.Nanoseconds(),
		ServerNs:   serverDur.Nanoseconds(),
		Runs:       st.Runs,
		Failures:   st.Failures,
		Bytes:      st.Bytes,
		Reconnects: st.Reconnects,
		Events:     ev,
	})
}

// countEvents folds a traced run's stream into per-kind counts and the
// total blocked-receive time (the paper's wait parameter, summed).
func countEvents(rec *stpbcast.TraceRecorder) *EventCounts {
	var ev EventCounts
	for _, e := range rec.Events {
		switch e.Kind {
		case obs.KindSend:
			ev.Sends++
		case obs.KindRecv:
			ev.Recvs++
		case obs.KindWait:
			ev.Waits++
			ev.WaitNs += int64(e.Dur)
		case obs.KindBarrier:
			ev.Barriers++
		case obs.KindFault:
			ev.Faults++
		}
	}
	return &ev
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	infos := s.pool.Sessions()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	writeJSON(w, http.StatusOK, SessionsResponse{Sessions: infos})
}

// statsLocked assembles the StatsResponse; s.mu must be held.
func (s *Server) statsLocked() StatsResponse {
	st := StatsResponse{
		Requests:  s.requests,
		Completed: s.completed,
		Failed:    s.failed,
		Rejected:  s.rejected,
		InFlight:  s.inFlight,
		Sessions:  s.pool.Len(),
		Opens:     s.pool.Opens(),
		Evictions: s.pool.Evictions(),
		Draining:  s.draining,
		UptimeMs:  time.Since(s.start).Milliseconds(),
	}
	if len(s.tenants) > 0 {
		st.TenantRequests = make(map[string]int64, len(s.tenants))
		for name, ts := range s.tenants {
			st.TenantRequests[name] = ts.requests
		}
	}
	if s.latencies.occupied() > 0 {
		sorted := s.latencies.sortedSnapshot()
		st.P50Ms = quantile(sorted, 0.50)
		st.P95Ms = quantile(sorted, 0.95)
		st.P99Ms = quantile(sorted, 0.99)
	}
	return st
}

// quantile returns the q-quantile of sorted latencies in milliseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.statsLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, PingResponse{
		OK:       true,
		Draining: draining,
		UptimeMs: time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "", "POST required")
		return
	}
	s.Shutdown()
	writeJSON(w, http.StatusOK, ShutdownResponse{Draining: true})
}

// handleMetrics renders the counters in Prometheus text exposition
// style: daemon admission/outcome counters, per-session SessionStats,
// latency quantiles, cumulative obs event counts from traced runs, and
// every process-wide internal/metrics counter (planner cache and probe
// counts land here).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.statsLocked()
	ev := s.events
	s.mu.Unlock()
	infos := s.pool.Sessions()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "stpbcastd_requests_total %d\n", st.Requests)
	fmt.Fprintf(w, "stpbcastd_completed_total %d\n", st.Completed)
	fmt.Fprintf(w, "stpbcastd_failed_total %d\n", st.Failed)
	fmt.Fprintf(w, "stpbcastd_rejected_total %d\n", st.Rejected)
	fmt.Fprintf(w, "stpbcastd_in_flight %d\n", st.InFlight)
	fmt.Fprintf(w, "stpbcastd_sessions %d\n", st.Sessions)
	fmt.Fprintf(w, "stpbcastd_session_opens_total %d\n", st.Opens)
	fmt.Fprintf(w, "stpbcastd_session_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "stpbcastd_draining %d\n", boolTo01(st.Draining))
	fmt.Fprintf(w, "stpbcastd_uptime_seconds %.3f\n", float64(st.UptimeMs)/1e3)
	fmt.Fprintf(w, "stpbcastd_latency_p50_seconds %.6f\n", st.P50Ms/1e3)
	fmt.Fprintf(w, "stpbcastd_latency_p95_seconds %.6f\n", st.P95Ms/1e3)
	fmt.Fprintf(w, "stpbcastd_latency_p99_seconds %.6f\n", st.P99Ms/1e3)
	fmt.Fprintf(w, "stpbcastd_events_total{kind=\"send\"} %d\n", ev.Sends)
	fmt.Fprintf(w, "stpbcastd_events_total{kind=\"recv\"} %d\n", ev.Recvs)
	fmt.Fprintf(w, "stpbcastd_events_total{kind=\"wait\"} %d\n", ev.Waits)
	fmt.Fprintf(w, "stpbcastd_events_total{kind=\"barrier\"} %d\n", ev.Barriers)
	fmt.Fprintf(w, "stpbcastd_events_total{kind=\"fault\"} %d\n", ev.Faults)
	fmt.Fprintf(w, "stpbcastd_wait_ns_total %d\n", ev.WaitNs)
	for _, info := range infos {
		fmt.Fprintf(w, "stpbcastd_session_runs{key=%q} %d\n", info.Key, info.Runs)
		fmt.Fprintf(w, "stpbcastd_session_failures{key=%q} %d\n", info.Key, info.Failures)
		fmt.Fprintf(w, "stpbcastd_session_bytes{key=%q} %d\n", info.Key, info.Bytes)
		fmt.Fprintf(w, "stpbcastd_session_reconnects{key=%q} %d\n", info.Key, info.Reconnects)
	}
	tenants := make([]string, 0, len(st.TenantRequests))
	for name := range st.TenantRequests {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		fmt.Fprintf(w, "stpbcastd_tenant_requests_total{tenant=%q} %d\n", name, st.TenantRequests[name])
	}
	for _, c := range metrics.Counters() {
		fmt.Fprintf(w, "stpbcast_counter{name=%q} %d\n", c.Name, c.Value)
	}
}

func boolTo01(b bool) int {
	if b {
		return 1
	}
	return 0
}
