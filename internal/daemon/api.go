// Package daemon is the broadcast-as-a-service layer: a keyed pool of
// warm stpbcast.Sessions multiplexing concurrent requests onto shared
// engine meshes, fronted by a JSON-over-HTTP control plane with
// per-tenant quotas, global in-flight backpressure and a text-format
// /metrics endpoint. cmd/stpbcastd serves it, cmd/stpctl speaks it, and
// stpbench's -daemon mode load-tests it.
//
// Endpoints:
//
//	POST /v1/broadcast   run one broadcast (BroadcastRequest → BroadcastResponse)
//	GET  /v1/sessions    the warm-session pool (SessionsResponse)
//	GET  /v1/stats       daemon-wide counters (StatsResponse)
//	GET  /v1/ping        liveness (PingResponse)
//	GET  /metrics        text-format counters (Prometheus exposition style)
//	POST /v1/shutdown    graceful drain: stop admitting, finish in-flight, close the pool
//
// Every error body is an ErrorResponse. Backpressure is by status code:
// 429 when a tenant exceeds its in-flight quota, 503 when the daemon is
// at its global in-flight cap, the pool is full of busy meshes, or a
// drain is in progress.
package daemon

import (
	"fmt"
	"strings"
	"time"

	stpbcast "repro"
)

// Key identifies one warm session in the pool: requests that agree on
// engine, machine kind and mesh size share a mesh and queue onto it;
// anything else (algorithm, distribution, sources, message length) may
// vary per request over the same warm session.
type Key struct {
	Engine   string `json:"engine"`
	Topology string `json:"topology"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
}

// String renders the key in its canonical "engine/topology/RxC" form,
// used in responses and as the /metrics label.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%dx%d", k.Engine, k.Topology, k.Rows, k.Cols)
}

// open stands up the key's machine and warm session.
func (k Key) open() (*stpbcast.Session, *stpbcast.Machine, error) {
	eng, err := stpbcast.ParseEngine(k.Engine)
	if err != nil {
		return nil, nil, err
	}
	m, err := stpbcast.NewMachineByName(k.Topology, k.Rows, k.Cols)
	if err != nil {
		return nil, nil, err
	}
	s, err := stpbcast.Open(m, eng, stpbcast.SessionOptions{})
	if err != nil {
		return nil, nil, err
	}
	return s, m, nil
}

// KillSpec injects a deterministic rank kill into the run (real-byte
// engines only) — the chaos hook behind the daemon failure-path tests
// and load-generator fault mixes.
type KillSpec struct {
	// Rank is the rank to kill; Op is the operation index at which it
	// dies (see stpbcast.FaultKill).
	Rank int `json:"rank"`
	Op   int `json:"op"`
}

// BroadcastRequest is the body of POST /v1/broadcast. Engine, topology,
// rows and cols select the pooled session; the remaining fields
// configure this run only.
type BroadcastRequest struct {
	// Engine is "sim", "live" or "tcp" (default "sim").
	Engine string `json:"engine,omitempty"`
	// Topology is "paragon", "paragon-mpi", "t3d" or "hypercube"
	// (default "paragon").
	Topology string `json:"topology,omitempty"`
	// Rows, Cols give the logical mesh (required, positive).
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Collective is the communication pattern ("Broadcast", "Reduce",
	// "AllReduce", "Scatter", "AllGather", "AllToAll"); absent means
	// Broadcast, so pre-collective clients keep their meaning.
	Collective string `json:"collective,omitempty"`
	// Algorithm is a registry name of the collective or "Auto" (the
	// default).
	Algorithm string `json:"algorithm,omitempty"`
	// Distribution is a paper distribution name (default "E" for the
	// collectives that take a source set; must stay unset for AllGather
	// and AllToAll, where every rank contributes).
	Distribution string `json:"distribution,omitempty"`
	// Sources is the source count s (default 1 for the collectives that
	// take a source set; must stay unset for AllGather and AllToAll).
	Sources int `json:"sources,omitempty"`
	// MsgBytes is the per-source message length L (default 0).
	MsgBytes int `json:"msg_bytes,omitempty"`
	// Tenant attributes the request for quota accounting and the
	// per-tenant counters (default "anonymous").
	Tenant string `json:"tenant,omitempty"`
	// RecvTimeoutMs / RunTimeoutMs bound the run (0 = the daemon's
	// default receive deadline, so a dead rank can never wedge a mesh).
	RecvTimeoutMs int64 `json:"recv_timeout_ms,omitempty"`
	RunTimeoutMs  int64 `json:"run_timeout_ms,omitempty"`
	// Kill, when set, injects a rank kill (chaos testing).
	Kill *KillSpec `json:"kill,omitempty"`
	// Trace records the run's event stream and reports per-kind counts
	// and total blocked-receive time in the response (and feeds the
	// daemon's cumulative stpbcastd_events_total metrics).
	Trace bool `json:"trace,omitempty"`
}

// normalize applies defaults and validates what can be checked without a
// machine. It returns a client-error message ("" when valid).
func (r *BroadcastRequest) normalize() string {
	if r.Engine == "" {
		r.Engine = "sim"
	}
	r.Engine = strings.ToLower(r.Engine)
	if _, err := stpbcast.ParseEngine(r.Engine); err != nil {
		return err.Error()
	}
	if r.Topology == "" {
		r.Topology = "paragon"
	}
	r.Topology = strings.ToLower(r.Topology)
	if r.Rows < 1 || r.Cols < 1 {
		return fmt.Sprintf("rows and cols must be positive, got %dx%d", r.Rows, r.Cols)
	}
	if _, err := stpbcast.NewMachineByName(r.Topology, r.Rows, r.Cols); err != nil {
		return err.Error()
	}
	coll, err := stpbcast.ParseCollective(r.Collective)
	if err != nil {
		return err.Error()
	}
	r.Collective = string(coll)
	if r.Algorithm == "" {
		r.Algorithm = stpbcast.AutoAlgorithm
	}
	if r.Algorithm != stpbcast.AutoAlgorithm {
		if _, err := stpbcast.AlgorithmByNameFor(coll, r.Algorithm); err != nil {
			return err.Error()
		}
	}
	if coll.Caps().TakesSources {
		if r.Distribution == "" {
			r.Distribution = "E"
		}
		if _, err := stpbcast.DistributionByName(r.Distribution); err != nil {
			return err.Error()
		}
		if r.Sources == 0 {
			r.Sources = 1
		}
		if r.Sources < 1 {
			return fmt.Sprintf("sources must be positive, got %d", r.Sources)
		}
		if coll.Caps().SingleSource && r.Sources > 1 {
			return fmt.Sprintf("%s takes a single root, got sources=%d", coll, r.Sources)
		}
	} else {
		// Sourceless collectives (AllGather, AllToAll): every rank
		// contributes, so a distribution or source count is a client
		// error, not something to silently ignore.
		if r.Distribution != "" {
			return fmt.Sprintf("%s takes no source distribution (got %q): every rank contributes", coll, r.Distribution)
		}
		if r.Sources != 0 {
			return fmt.Sprintf("%s takes no source count (got %d): every rank contributes", coll, r.Sources)
		}
	}
	if r.MsgBytes < 0 {
		return fmt.Sprintf("msg_bytes must be non-negative, got %d", r.MsgBytes)
	}
	if r.Tenant == "" {
		r.Tenant = "anonymous"
	}
	if r.Kill != nil && r.Engine == "sim" {
		return "kill injection requires a real-byte engine (live or tcp)"
	}
	if r.RecvTimeoutMs < 0 || r.RunTimeoutMs < 0 {
		return "timeouts must be non-negative"
	}
	return ""
}

// key returns the pool key the request maps onto (call after normalize).
func (r *BroadcastRequest) key() Key {
	return Key{Engine: r.Engine, Topology: r.Topology, Rows: r.Rows, Cols: r.Cols}
}

// config builds the per-run broadcast config (call after normalize).
func (r *BroadcastRequest) config() stpbcast.Config {
	return stpbcast.Config{
		Collective:   stpbcast.Collective(r.Collective),
		Algorithm:    r.Algorithm,
		Distribution: r.Distribution,
		Sources:      r.Sources,
		MsgBytes:     r.MsgBytes,
	}
}

// EventCounts summarizes a traced run's observability stream.
type EventCounts struct {
	Sends    int   `json:"sends"`
	Recvs    int   `json:"recvs"`
	Waits    int   `json:"waits"`
	Barriers int   `json:"barriers"`
	Faults   int   `json:"faults"`
	WaitNs   int64 `json:"wait_ns"`
}

// BroadcastResponse is the success body of POST /v1/broadcast.
type BroadcastResponse struct {
	// Key names the warm session that served the request.
	Key string `json:"key"`
	// Collective is the normalized pattern the run executed ("Broadcast"
	// when the request left it out).
	Collective string `json:"collective"`
	// Algorithm echoes the request (the planner's pick stays "Auto").
	Algorithm string `json:"algorithm"`
	// ElapsedNs is the broadcast duration (simulated makespan under the
	// sim engine, wall clock otherwise); ServerNs is the total
	// server-side handling time including pool queueing.
	ElapsedNs int64 `json:"elapsed_ns"`
	ServerNs  int64 `json:"server_ns"`
	// Runs/Failures/Bytes/Reconnects snapshot the serving session's
	// aggregate stats after this run.
	Runs       int   `json:"runs"`
	Failures   int   `json:"failures"`
	Bytes      int64 `json:"bytes"`
	Reconnects int   `json:"reconnects"`
	// Events is set when the request asked for tracing.
	Events *EventCounts `json:"events,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// Key is set when the failure happened on a pooled session.
	Key string `json:"key,omitempty"`
}

// SessionInfo describes one pool entry in GET /v1/sessions.
type SessionInfo struct {
	Key        string `json:"key"`
	Runs       int    `json:"runs"`
	Failures   int    `json:"failures"`
	Bytes      int64  `json:"bytes"`
	Reconnects int    `json:"reconnects"`
	// Busy reports whether a request currently holds (or queues on) the
	// session; IdleMs is the time since it was last touched.
	Busy   bool  `json:"busy"`
	IdleMs int64 `json:"idle_ms"`
}

// SessionsResponse is the body of GET /v1/sessions.
type SessionsResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Requests counts admitted broadcast requests; Completed those that
	// returned a result; Failed those whose run errored; Rejected those
	// turned away by backpressure (quota, in-flight cap, drain, pool
	// full).
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	InFlight  int   `json:"in_flight"`
	// Sessions/Opens/Evictions describe the pool: warm entries now,
	// sessions opened since start, idle/LRU evictions since start.
	Sessions  int   `json:"sessions"`
	Opens     int64 `json:"opens"`
	Evictions int64 `json:"evictions"`
	Draining  bool  `json:"draining"`
	UptimeMs  int64 `json:"uptime_ms"`
	// TenantRequests counts admitted requests per tenant.
	TenantRequests map[string]int64 `json:"tenant_requests,omitempty"`
	// Latency quantiles over the most recent completed broadcasts
	// (server-side handling time, including queueing).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// PingResponse is the body of GET /v1/ping.
type PingResponse struct {
	OK       bool  `json:"ok"`
	Draining bool  `json:"draining"`
	UptimeMs int64 `json:"uptime_ms"`
}

// ShutdownResponse is the body of POST /v1/shutdown; the drain continues
// in the background after it is sent.
type ShutdownResponse struct {
	Draining bool `json:"draining"`
}

// runOptions builds the engine options for one request (call after
// normalize). defaultRecv bounds runs that did not set their own receive
// deadline.
func (r *BroadcastRequest) runOptions(defaultRecv time.Duration) stpbcast.RunOptions {
	opts := stpbcast.RunOptions{
		RecvTimeout: time.Duration(r.RecvTimeoutMs) * time.Millisecond,
		RunTimeout:  time.Duration(r.RunTimeoutMs) * time.Millisecond,
	}
	if opts.RecvTimeout == 0 && r.Engine != "sim" {
		opts.RecvTimeout = defaultRecv
	}
	if r.Kill != nil {
		opts.Faults = &stpbcast.FaultPlan{
			Kills: []stpbcast.FaultKill{{Rank: r.Kill.Rank, Op: r.Kill.Op}},
		}
	}
	return opts
}
