package daemon

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/bench"
)

func init() {
	bench.Register(bench.Experiment{
		ID:    "figDaemon",
		Title: "Broadcast-as-a-service: warm session pool vs fresh-session-per-request under closed-loop load, TCP engine, p=16",
		Paper: "Beyond the paper: the paper's broadcasts are one-shot library calls; this figure measures the daemon serving them — req/s and tail latency of a closed-loop concurrency sweep through POST /v1/broadcast, with the keyed warm-session pool against a baseline that rebuilds the TCP mesh for every request.",
		Run:   runFigDaemon,
	})
}

// figDaemon workload: the figSession shape served over HTTP — 1 KiB
// Br_Lin broadcasts on a 4×4 TCP mesh — swept over closed-loop client
// concurrency.
var figDaemonLevels = []int{1, 2, 4, 8}

const figDaemonRequests = 32 // per concurrency level, per server

// figDaemonRequest is the broadcast the load generator hammers.
func figDaemonRequest() BroadcastRequest {
	return BroadcastRequest{
		Engine:        "tcp",
		Topology:      "paragon",
		Rows:          4,
		Cols:          4,
		Algorithm:     "Br_Lin",
		Distribution:  "E",
		Sources:       4,
		MsgBytes:      1024,
		Tenant:        "figDaemon",
		RecvTimeoutMs: 30_000,
	}
}

// runFigDaemon sweeps closed-loop concurrency against two in-process
// daemons — one pooled, one opening a fresh session per request — and
// reports both rates, the speedup, and the pooled tail latency.
func runFigDaemon() (*bench.Series, error) {
	s := bench.NewSeries(
		"Daemon throughput: warm session pool vs fresh session per request, 4×4 TCP mesh, 1 KiB Br_Lin/E/s=4, closed loop",
		"client concurrency", "req/s (speedup is a ratio, p95 in ms)",
		"fresh", "pooled", "speedup", "pooled p95 ms")
	s.Notes = "Wall-clock measurement, not a paper figure: absolute rates vary with the host, but the " +
		"speedup column is the point — the pool serves every request over one warm mesh (per-key " +
		"serialization queues concurrent requests onto it) while the baseline pays listeners, the O(p²) " +
		"dial mesh and reader pumps per request. Acceptance: pooled ≥2× fresh at every level."

	for _, conc := range figDaemonLevels {
		fresh, err := figDaemonLevel(conc, true)
		if err != nil {
			return nil, fmt.Errorf("daemon: figDaemon fresh conc=%d: %w", conc, err)
		}
		pooled, err := figDaemonLevel(conc, false)
		if err != nil {
			return nil, fmt.Errorf("daemon: figDaemon pooled conc=%d: %w", conc, err)
		}
		speedup := 0.0
		if fresh.ReqPerSec > 0 {
			speedup = pooled.ReqPerSec / fresh.ReqPerSec
		}
		s.AddX(fmt.Sprintf("%d", conc), fresh.ReqPerSec, pooled.ReqPerSec, speedup, pooled.P95Ms)
	}
	return s, nil
}

// figDaemonLevel runs one closed-loop level against a fresh in-process
// daemon and reports the load result. All requests must succeed — a
// rejected or failed request fails the figure.
func figDaemonLevel(conc int, disablePool bool) (*LoadReport, error) {
	srv := New(Options{
		Pool:        PoolOptions{Disable: disablePool},
		MaxInFlight: 64,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := RunLoad(LoadSpec{
		BaseURL:     ts.URL,
		Request:     figDaemonRequest(),
		Concurrency: conc,
		Requests:    figDaemonRequests,
		Duration:    time.Minute,
	})
	if err != nil {
		return nil, err
	}
	if report.Completed != report.Requests {
		return nil, fmt.Errorf("only %d/%d requests completed (%d rejected, %d errors)",
			report.Completed, report.Requests, report.Rejected, report.Errors)
	}
	return report, nil
}
