package daemon

import (
	"sync"
	"testing"
	"time"

	stpbcast "repro"
)

// simKey is the cheapest pool key: the simulator needs no engine setup.
func simKey(rows, cols int) Key {
	return Key{Engine: "sim", Topology: "paragon", Rows: rows, Cols: cols}
}

func TestPoolReusesWarmSession(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Close()
	for i := 0; i < 3; i++ {
		l, err := p.Acquire(simKey(4, 4))
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if l.Session() == nil {
			t.Fatalf("acquire %d: nil session", i)
		}
		l.Release()
	}
	if got := p.Opens(); got != 1 {
		t.Errorf("3 acquires of one key opened %d sessions, want 1", got)
	}
	if got := p.Len(); got != 1 {
		t.Errorf("pool holds %d entries, want 1", got)
	}
}

func TestPoolPerKeySerialization(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Close()
	const workers = 8
	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := p.Acquire(simKey(4, 4))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inside--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Errorf("%d leases of one key held concurrently, want 1 (per-key serialization)", maxInside)
	}
	if got := p.Opens(); got != 1 {
		t.Errorf("concurrent acquires opened %d sessions, want 1", got)
	}
}

func TestPoolLRUEvictionAtCapacity(t *testing.T) {
	p := NewPool(PoolOptions{MaxSessions: 2})
	defer p.Close()
	touch := func(rows int) {
		l, err := p.Acquire(simKey(rows, 2))
		if err != nil {
			t.Fatalf("acquire %dx2: %v", rows, err)
		}
		l.Release()
	}
	touch(2) // oldest
	touch(3)
	touch(4) // must evict 2x2
	if got := p.Len(); got != 2 {
		t.Fatalf("pool holds %d entries at cap 2", got)
	}
	if got := p.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	for _, info := range p.Sessions() {
		if info.Key == simKey(2, 2).String() {
			t.Errorf("LRU entry %s survived eviction", info.Key)
		}
	}
}

func TestPoolFullWhenAllBusy(t *testing.T) {
	p := NewPool(PoolOptions{MaxSessions: 1})
	defer p.Close()
	l, err := p.Acquire(simKey(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if _, err := p.Acquire(simKey(3, 3)); err != ErrPoolFull {
		t.Fatalf("acquire over a busy full pool returned %v, want ErrPoolFull", err)
	}
}

func TestPoolTTLSweep(t *testing.T) {
	p := NewPool(PoolOptions{IdleTTL: time.Minute})
	defer p.Close()
	l, err := p.Acquire(simKey(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	if n := p.Sweep(time.Now()); n != 0 {
		t.Fatalf("fresh session swept after %d evictions", n)
	}
	if n := p.Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired session not swept (got %d)", n)
	}
	if got := p.Len(); got != 0 {
		t.Errorf("pool holds %d entries after sweep", got)
	}
}

func TestPoolDisabledOpensFreshSessions(t *testing.T) {
	p := NewPool(PoolOptions{Disable: true})
	defer p.Close()
	for i := 0; i < 2; i++ {
		l, err := p.Acquire(simKey(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		l.Release()
	}
	if got := p.Opens(); got != 2 {
		t.Errorf("disabled pool opened %d sessions for 2 acquires, want 2", got)
	}
	if got := p.Len(); got != 0 {
		t.Errorf("disabled pool retains %d entries", got)
	}
}

func TestPoolOpenFailureDoesNotPoisonKey(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Close()
	bad := Key{Engine: "tcp", Topology: "nope", Rows: 2, Cols: 2}
	if _, err := p.Acquire(bad); err == nil {
		t.Fatal("acquire of an unknown topology succeeded")
	}
	if got := p.Len(); got != 0 {
		t.Fatalf("failed open left %d entries in the pool", got)
	}
	// The same pool still serves good keys.
	l, err := p.Acquire(simKey(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
}

// TestPoolEvictionSparesOutstandingAsyncRun is the pipelined-request
// race: the server's async path unlocks the lease right after RunAsync
// (so same-key requests can pipeline behind it) and holds only the
// lease's ref while waiting on the Future. Neither the TTL sweep nor
// LRU eviction at capacity may tear down the session while that run is
// still in flight — refs pin the entry until Release.
func TestPoolEvictionSparesOutstandingAsyncRun(t *testing.T) {
	p := NewPool(PoolOptions{MaxSessions: 1, IdleTTL: time.Minute})
	defer p.Close()
	l, err := p.Acquire(Key{Engine: "tcp", Topology: "paragon", Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The source rank blocks producing its payload, keeping the async
	// run deterministically in flight until the test releases it.
	release := make(chan struct{})
	fut, err := l.Session().RunAsync(
		stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 1, MsgBytes: 8},
		stpbcast.RunOptions{
			RecvTimeout: time.Minute,
			Payload: func(rank int) []byte {
				<-release
				return []byte{byte(rank)}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	l.Unlock() // the async path: serialization lock gone, ref still held

	if n := p.Sweep(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("Sweep tore down %d sessions with a Future outstanding", n)
	}
	if _, err := p.Acquire(simKey(4, 4)); err != ErrPoolFull {
		t.Fatalf("Acquire at capacity = %v, want ErrPoolFull (the held mesh must not be evicted)", err)
	}
	close(release)
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("async run on the pinned session: %v", err)
	}
	l.Release()
	// Resolved and released: the very sweep that had to spare the
	// session now evicts it.
	if n := p.Sweep(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("post-release Sweep evicted %d sessions, want 1", n)
	}
}
