package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadSpec describes one load-generation run against a daemon: closed
// loop (Concurrency workers each issuing Requests/Concurrency-ish
// back-to-back requests) when Rate is zero, open loop (fixed-rate
// arrivals for Duration, each request on its own goroutine) otherwise.
type LoadSpec struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string `json:"base_url"`
	// Request is the broadcast issued repeatedly.
	Request BroadcastRequest `json:"request"`
	// Concurrency is the closed-loop worker count (default 1).
	Concurrency int `json:"concurrency"`
	// Requests is the closed-loop total request count (default 100).
	Requests int `json:"requests"`
	// Rate, when positive, switches to an open loop issuing Rate
	// arrivals per second for Duration.
	Rate float64 `json:"rate,omitempty"`
	// Duration bounds the open loop (default 5s; closed loop ignores it).
	Duration time.Duration `json:"-"`
}

// LoadReport is the outcome of one load run. Latencies are end-to-end
// client-observed times of successful requests.
type LoadReport struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency,omitempty"`
	RatePerSec  float64 `json:"rate_per_s,omitempty"`
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	// Rejected counts 429/503 backpressure replies; Errors everything
	// else that failed (transport errors, 4xx/5xx).
	Rejected  int     `json:"rejected"`
	Errors    int     `json:"errors"`
	ElapsedMs float64 `json:"elapsed_ms"`
	ReqPerSec float64 `json:"req_per_s"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// String renders the report as one aligned human-readable line.
func (r *LoadReport) String() string {
	shape := fmt.Sprintf("conc=%d", r.Concurrency)
	if r.Mode == "open" {
		shape = fmt.Sprintf("rate=%.0f/s", r.RatePerSec)
	}
	return fmt.Sprintf("%-6s %-10s req=%-5d ok=%-5d rejected=%-4d errors=%-4d %8.1f req/s   p50 %7.2f ms   p95 %7.2f ms   p99 %7.2f ms",
		r.Mode, shape, r.Requests, r.Completed, r.Rejected, r.Errors, r.ReqPerSec, r.P50Ms, r.P95Ms, r.P99Ms)
}

// RunLoad executes the load run and aggregates latency quantiles.
func RunLoad(spec LoadSpec) (*LoadReport, error) {
	if spec.Concurrency <= 0 {
		spec.Concurrency = 1
	}
	if spec.Requests <= 0 {
		spec.Requests = 100
	}
	if spec.Duration <= 0 {
		spec.Duration = 5 * time.Second
	}
	body, err := json.Marshal(spec.Request)
	if err != nil {
		return nil, err
	}
	url := spec.BaseURL + "/v1/broadcast"
	client := &http.Client{Timeout: 2 * time.Minute}

	var mu sync.Mutex
	var lats []time.Duration
	report := &LoadReport{Concurrency: spec.Concurrency}
	issue := func() {
		t0 := time.Now()
		ok, rejected := doBroadcast(client, url, body)
		lat := time.Since(t0)
		mu.Lock()
		switch {
		case ok:
			report.Completed++
			lats = append(lats, lat)
		case rejected:
			report.Rejected++
		default:
			report.Errors++
		}
		mu.Unlock()
	}

	start := time.Now()
	if spec.Rate > 0 {
		report.Mode = "open"
		report.RatePerSec = spec.Rate
		report.Concurrency = 0
		interval := time.Duration(float64(time.Second) / spec.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		var wg sync.WaitGroup
		deadline := start.Add(spec.Duration)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		n := 0
		for now := start; now.Before(deadline); now = <-tick.C {
			wg.Add(1)
			n++
			go func() {
				defer wg.Done()
				issue()
			}()
		}
		wg.Wait()
		report.Requests = n
	} else {
		report.Mode = "closed"
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < spec.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if int(next.Add(1)) > spec.Requests {
						return
					}
					issue()
				}
			}()
		}
		wg.Wait()
		report.Requests = spec.Requests
	}
	elapsed := time.Since(start)
	report.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		report.ReqPerSec = float64(report.Completed) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	report.P50Ms = quantile(lats, 0.50)
	report.P95Ms = quantile(lats, 0.95)
	report.P99Ms = quantile(lats, 0.99)
	return report, nil
}

// doBroadcast issues one request; ok reports success, rejected a
// backpressure turn-away (429/503).
func doBroadcast(client *http.Client, url string, body []byte) (ok, rejected bool) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	var out BroadcastResponse
	if resp.StatusCode == http.StatusOK {
		if json.NewDecoder(resp.Body).Decode(&out) != nil {
			return false, false
		}
		return true, false
	}
	return false, resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
}
