package daemon

import (
	"testing"

	"repro/internal/bench"
)

// TestFigDaemonRegistered: linking this package must make the figure
// visible to the experiment registry (it registers itself at init to
// break the bench → daemon → repro → bench cycle).
func TestFigDaemonRegistered(t *testing.T) {
	e, err := bench.ByID("figDaemon")
	if err != nil {
		t.Fatal(err)
	}
	if e.Run == nil {
		t.Fatal("figDaemon registered without a Run func")
	}
}

// TestFigDaemonShape is the acceptance check behind the figure: at one
// representative concurrency level, the warm pool must serve the
// closed-loop workload at ≥ 2× the rate of a fresh-session-per-request
// baseline (the pool amortizes the O(p²) TCP mesh build; HTTP overhead
// is why the bar is 2× here vs 3× for the raw session figure).
func TestFigDaemonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 4x4 TCP meshes per request in the baseline")
	}
	const conc = 4
	fresh, err := figDaemonLevel(conc, true)
	if err != nil {
		t.Fatalf("fresh baseline: %v", err)
	}
	pooled, err := figDaemonLevel(conc, false)
	if err != nil {
		t.Fatalf("pooled: %v", err)
	}
	t.Logf("fresh %.1f req/s, pooled %.1f req/s (%.2fx), pooled p95 %.2f ms",
		fresh.ReqPerSec, pooled.ReqPerSec, pooled.ReqPerSec/fresh.ReqPerSec, pooled.P95Ms)
	if pooled.ReqPerSec < 2*fresh.ReqPerSec {
		t.Errorf("pooled %.1f req/s < 2x fresh %.1f req/s", pooled.ReqPerSec, fresh.ReqPerSec)
	}
}
