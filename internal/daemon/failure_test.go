package daemon

import (
	"net/http"
	"strings"
	"testing"
)

// TestKillFaultReturnsStructuredErrorAndReconnects is the daemon
// failure path: a request whose fault plan kills a rank mid-run must
// come back as a structured JSON error (not a hang, not a dropped
// connection), and the pool must transparently rebuild the damaged mesh
// on the next request for the same key — observable as an incremented
// SessionStats.Reconnects in the response.
func TestKillFaultReturnsStructuredErrorAndReconnects(t *testing.T) {
	_, base := testServer(t, Options{})
	req := BroadcastRequest{
		Engine:        "tcp",
		Rows:          3,
		Cols:          4,
		Algorithm:     "Br_Lin",
		Distribution:  "Cr",
		Sources:       5,
		MsgBytes:      64,
		RecvTimeoutMs: 5_000,
		Kill:          &KillSpec{Rank: 5, Op: 2},
	}

	status, _, e := post(t, base, req)
	if status != http.StatusInternalServerError {
		t.Fatalf("killed run returned status %d, want 500", status)
	}
	if !strings.Contains(e.Error, "rank 5 killed") {
		t.Fatalf("error %q does not carry the kill diagnostic", e.Error)
	}
	if e.Key != "tcp/paragon/3x4" {
		t.Errorf("error names key %q, want tcp/paragon/3x4", e.Key)
	}

	// The same key serves the next (clean) request over a rebuilt mesh.
	req.Kill = nil
	status, out, e2 := post(t, base, req)
	if status != http.StatusOK {
		t.Fatalf("clean request after kill failed with %d: %s", status, e2.Error)
	}
	if out.Reconnects < 1 {
		t.Errorf("reconnects = %d after a killed run, want ≥ 1", out.Reconnects)
	}
	if out.Runs != 2 || out.Failures != 1 {
		t.Errorf("session stats runs=%d failures=%d, want 2/1", out.Runs, out.Failures)
	}

	// The failure is visible on /metrics too.
	metrics := getMetrics(t, base)
	for _, want := range []string{
		"stpbcastd_failed_total 1",
		"stpbcastd_session_failures{key=\"tcp/paragon/3x4\"} 1",
		"stpbcastd_session_reconnects{key=\"tcp/paragon/3x4\"} 1",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
