package analysis

import (
	"repro/internal/core"
)

// replayHalving replays the recursive-halving pattern of core's runLine on
// one line: holds[i] and size[i] describe position i's current bundle; the
// function mutates them to the final state and reports, per level, which
// positions were active, plus total sends and payload bytes. The rules
// mirror core.runLine exactly (pairs at ⌈n/2⌉, single send when only one
// side holds, odd-segment one-way from the unpaired middle to the
// segment's last position).
func replayHalving(holds []bool, size []int64) (levels [][]bool, sends int, bytes int64) {
	n := len(holds)
	type seg struct{ lo, n int }
	segs := []seg{{0, n}}
	for {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
			}
		}
		if !split {
			return levels, sends, bytes
		}
		active := make([]bool, n)
		var next []seg
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + 1) / 2
			for i := 0; i < g.n-h; i++ {
				a, b := g.lo+i, g.lo+i+h
				switch {
				case holds[a] && holds[b]:
					sends += 2
					bytes += size[a] + size[b]
					size[a], size[b] = size[a]+size[b], size[a]+size[b]
					active[a], active[b] = true, true
				case holds[a]:
					sends++
					bytes += size[a]
					size[b] += size[a]
					holds[b] = true
					active[a], active[b] = true, true
				case holds[b]:
					sends++
					bytes += size[b]
					size[a] += size[b]
					holds[a] = true
					active[a], active[b] = true, true
				}
			}
			if g.n%2 == 1 {
				u, tgt := g.lo+h-1, g.lo+g.n-1
				if holds[u] && u != tgt {
					sends++
					bytes += size[u]
					size[tgt] += size[u]
					holds[tgt] = true
					active[u], active[tgt] = true, true
				}
			}
			next = append(next, seg{g.lo, h}, seg{g.lo + h, g.n - h})
		}
		segs = next
		levels = append(levels, active)
	}
}

// BrXYOracle replays Br_xy_source (sourceRule=true) or Br_xy_dim
// (sourceRule=false) on the spec with uniform message length L: phase one
// runs the halving pattern inside every line of the first dimension,
// phase two inside every line of the second. Active counts, sends and
// bytes must match the simulator exactly (tests assert this).
func BrXYOracle(spec core.Spec, l int, sourceRule bool) (*Oracle, error) {
	if err := spec.Validate(spec.P()); err != nil {
		return nil, err
	}
	r, c := spec.Rows, spec.Cols
	perRow := make([]int, r)
	perCol := make([]int, c)
	for _, src := range spec.Sources {
		perRow[src/c]++
		perCol[src%c]++
	}
	rowsFirst := r >= c
	if sourceRule {
		maxR, maxC := 0, 0
		for _, v := range perRow {
			if v > maxR {
				maxR = v
			}
		}
		for _, v := range perCol {
			if v > maxC {
				maxC = v
			}
		}
		rowsFirst = maxR < maxC
	}

	p := spec.P()
	o := &Oracle{}
	holding := make([]bool, p)
	for _, src := range spec.Sources {
		holding[src] = true
	}
	// mergePhase replays every line of one phase in lockstep and appends
	// the merged per-iteration counts.
	mergePhase := func(lines [][]int, holds [][]bool, sizes [][]int64) {
		var phaseLevels [][]bool // global active flags per level
		for li, line := range lines {
			levels, sends, bytes := replayHalving(holds[li], sizes[li])
			o.Sends += sends
			o.Bytes += bytes
			for lvl, active := range levels {
				for len(phaseLevels) <= lvl {
					phaseLevels = append(phaseLevels, make([]bool, p))
				}
				for pos, a := range active {
					if a {
						phaseLevels[lvl][line[pos]] = true
					}
				}
			}
		}
		for _, active := range phaseLevels {
			nActive := 0
			for rank, a := range active {
				if a {
					nActive++
					holding[rank] = true
				}
			}
			nHold := 0
			for _, h := range holding {
				if h {
					nHold++
				}
			}
			o.Active = append(o.Active, nActive)
			o.Holders = append(o.Holders, nHold)
		}
	}

	rowLine := func(i int) []int {
		line := make([]int, c)
		for j := range line {
			line[j] = i*c + j
		}
		return line
	}
	colLine := func(j int) []int {
		line := make([]int, r)
		for i := range line {
			line[i] = i*c + j
		}
		return line
	}

	// Phase 1.
	var lines1 [][]int
	if rowsFirst {
		for i := 0; i < r; i++ {
			lines1 = append(lines1, rowLine(i))
		}
	} else {
		for j := 0; j < c; j++ {
			lines1 = append(lines1, colLine(j))
		}
	}
	holds1 := make([][]bool, len(lines1))
	sizes1 := make([][]int64, len(lines1))
	for li, line := range lines1 {
		holds1[li] = make([]bool, len(line))
		sizes1[li] = make([]int64, len(line))
		for pos, rank := range line {
			if spec.IsSource(rank) {
				holds1[li][pos] = true
				sizes1[li][pos] = int64(l)
			}
		}
	}
	mergePhase(lines1, holds1, sizes1)

	// Phase 2: lines of the other dimension; a line position holds iff
	// its phase-1 line contained any source, with the phase-1 line's
	// total volume as its bundle size.
	var lines2 [][]int
	var lineVolume func(rank int) (bool, int64)
	if rowsFirst {
		for j := 0; j < c; j++ {
			lines2 = append(lines2, colLine(j))
		}
		lineVolume = func(rank int) (bool, int64) {
			i := rank / c
			return perRow[i] > 0, int64(perRow[i]) * int64(l)
		}
	} else {
		for i := 0; i < r; i++ {
			lines2 = append(lines2, rowLine(i))
		}
		lineVolume = func(rank int) (bool, int64) {
			j := rank % c
			return perCol[j] > 0, int64(perCol[j]) * int64(l)
		}
	}
	holds2 := make([][]bool, len(lines2))
	sizes2 := make([][]int64, len(lines2))
	for li, line := range lines2 {
		holds2[li] = make([]bool, len(line))
		sizes2[li] = make([]int64, len(line))
		for pos, rank := range line {
			h, v := lineVolume(rank)
			holds2[li][pos] = h
			if h {
				sizes2[li][pos] = v
			}
		}
	}
	mergePhase(lines2, holds2, sizes2)
	return o, nil
}
