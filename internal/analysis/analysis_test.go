package analysis

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// simulateBrLin runs the real simulator and returns its measured result.
func simulateBrLin(t *testing.T, spec core.Spec, l int) *sim.Result {
	t.Helper()
	topo := topology.MustMesh2D(spec.Rows, spec.Cols)
	nw, err := network.New(topo, topology.IdentityPlacement(spec.P()), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, l)
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := core.InitialMessage(spec, pr.Rank(), payload)
		core.BrLin().Run(pr, spec, mine)
	}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func specOf(t *testing.T, d dist.Distribution, r, c, s int) core.Spec {
	t.Helper()
	sources, err := d.Sources(r, c, s)
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
}

// TestOracleMatchesSimulatorExactly is the cross-validation: the pure
// oracle and the discrete-event simulator must agree on the per-iteration
// active-processor counts, the total number of sends, and the total bytes.
func TestOracleMatchesSimulatorExactly(t *testing.T) {
	const l = 512
	for _, m := range [][2]int{{1, 16}, {4, 4}, {5, 7}, {10, 10}, {3, 13}} {
		r, c := m[0], m[1]
		p := r * c
		for _, d := range dist.All() {
			for _, s := range []int{1, 2, p / 3, p / 2, p} {
				if s < 1 {
					continue
				}
				spec := specOf(t, d, r, c, s)
				oracle, err := BrLinOracle(spec, l)
				if err != nil {
					t.Fatal(err)
				}
				res := simulateBrLin(t, spec, l)
				measured := metrics.ActiveProfile(res)
				if !reflect.DeepEqual(oracle.Active, measured) {
					t.Fatalf("%s(%d) on %d×%d: oracle active %v, simulator %v", d.Name(), s, r, c, oracle.Active, measured)
				}
				var sends int
				var bytes int64
				for _, ps := range res.Procs {
					sends += ps.Sends
					bytes += ps.SendBytes
				}
				if oracle.Sends != sends {
					t.Fatalf("%s(%d) on %d×%d: oracle sends %d, simulator %d", d.Name(), s, r, c, oracle.Sends, sends)
				}
				if oracle.Bytes != bytes {
					t.Fatalf("%s(%d) on %d×%d: oracle bytes %d, simulator %d", d.Name(), s, r, c, oracle.Bytes, bytes)
				}
			}
		}
	}
}

func TestOracleQuick(t *testing.T) {
	f := func(ru, cu, su uint8, seed int64) bool {
		r := int(ru)%8 + 1
		c := int(cu)%8 + 1
		p := r * c
		s := int(su)%p + 1
		sources, err := dist.Random(seed).Sources(r, c, s)
		if err != nil {
			return false
		}
		spec := core.Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
		o, err := BrLinOracle(spec, 64)
		if err != nil {
			return false
		}
		// Final holder count must be p (everyone ends with messages).
		if len(o.Holders) == 0 {
			return p == 1
		}
		return o.Holders[len(o.Holders)-1] == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFig2PredictionRows(t *testing.T) {
	p, s, l := 256, 64, 1024
	two, err := Fig2Prediction("2-Step", p, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if two.Congestion != 64 || two.Wait != 1 || two.SendRec != 256 {
		t.Fatalf("2-Step row: %+v", two)
	}
	pers, err := Fig2Prediction("PersAlltoAll", p, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if pers.Congestion != 1 || pers.AvgMsgLen != float64(l) || pers.AvgActive != 256 {
		t.Fatalf("PersAlltoAll row: %+v", pers)
	}
	pow2, err := Fig2Prediction("Br_Lin", p, 64, l)
	if err != nil {
		t.Fatal(err)
	}
	non, err := Fig2Prediction("Br_Lin", p, 60, l)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's key contrast: for s=2^l the average message length is
	// larger (O(sL)) than for s≠2^l (O(sL/log p)).
	if pow2.AvgMsgLen <= non.AvgMsgLen {
		t.Fatalf("power-of-two av_msg %.0f not above non-power %.0f", pow2.AvgMsgLen, non.AvgMsgLen)
	}
	if pow2.Formula == "" || non.Formula == "" {
		t.Fatal("missing formulas")
	}
}

func TestFig2PredictionErrors(t *testing.T) {
	if _, err := Fig2Prediction("Br_xy_source", 16, 4, 8); err == nil {
		t.Error("unknown row accepted")
	}
	if _, err := Fig2Prediction("Br_Lin", 16, 0, 8); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := Fig2Prediction("Br_Lin", 16, 17, 8); err == nil {
		t.Error("s>p accepted")
	}
}

func TestGrowthEfficiency(t *testing.T) {
	// Perfect doubling from 2 sources on 16 processors.
	if e := GrowthEfficiency([]int{4, 8, 16, 16}, 2, 16); e != 1 {
		t.Errorf("perfect doubling scored %.2f", e)
	}
	// A stalled first iteration (the paper's power-of-two pathology).
	stalled := GrowthEfficiency([]int{2, 4, 8, 16}, 2, 16)
	if stalled >= 1 {
		t.Errorf("stalled profile scored %.2f", stalled)
	}
	if e := GrowthEfficiency(nil, 2, 16); e != 0 {
		t.Errorf("empty profile scored %.2f", e)
	}
}

// TestIdealBeatsPartneredEfficiency ties the analysis to the dist
// generators: the halving-ideal placement must score higher growth
// efficiency than a halving-partnered placement.
func TestIdealBeatsPartneredEfficiency(t *testing.T) {
	mk := func(sources []int) float64 {
		spec := core.Spec{Rows: 1, Cols: 16, Sources: sources, Indexing: topology.RowMajor}
		o, err := BrLinOracle(spec, 64)
		if err != nil {
			t.Fatal(err)
		}
		return GrowthEfficiency(o.Holders, len(sources), 16)
	}
	idealPos, err := dist.IdealLinear(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ideal := mk(idealPos)
	partnered := mk([]int{0, 8})
	if ideal <= partnered {
		t.Fatalf("ideal efficiency %.2f not above partnered %.2f", ideal, partnered)
	}
}

// TestBrXYOracleMatchesSimulator extends the cross-validation to the
// two-phase algorithms: per-iteration activity, sends and bytes must
// match the simulator exactly for both dimension-order rules.
func TestBrXYOracleMatchesSimulator(t *testing.T) {
	const l = 256
	runXY := func(spec core.Spec, sourceRule bool) *sim.Result {
		t.Helper()
		topo := topology.MustMesh2D(spec.Rows, spec.Cols)
		nw, err := network.New(topo, topology.IdentityPlacement(spec.P()), network.ParagonNX())
		if err != nil {
			t.Fatal(err)
		}
		alg := core.BrXYDim()
		if sourceRule {
			alg = core.BrXYSource()
		}
		payload := make([]byte, l)
		res, err := sim.Run(nw, func(pr *sim.Proc) {
			mine := core.InitialMessage(spec, pr.Rank(), payload)
			alg.Run(pr, spec, mine)
		}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, m := range [][2]int{{4, 4}, {3, 7}, {8, 5}, {10, 10}} {
		r, c := m[0], m[1]
		p := r * c
		for _, d := range dist.All() {
			for _, s := range []int{1, p / 3, p} {
				if s < 1 {
					continue
				}
				spec := specOf(t, d, r, c, s)
				for _, sourceRule := range []bool{true, false} {
					oracle, err := BrXYOracle(spec, l, sourceRule)
					if err != nil {
						t.Fatal(err)
					}
					res := runXY(spec, sourceRule)
					measured := metrics.ActiveProfile(res)
					if !reflect.DeepEqual(oracle.Active, measured) {
						t.Fatalf("%s(%d) on %d×%d rule=%v: oracle %v, sim %v",
							d.Name(), s, r, c, sourceRule, oracle.Active, measured)
					}
					var sends int
					var bytes int64
					for _, ps := range res.Procs {
						sends += ps.Sends
						bytes += ps.SendBytes
					}
					if oracle.Sends != sends || oracle.Bytes != bytes {
						t.Fatalf("%s(%d) on %d×%d rule=%v: oracle %d/%d, sim %d/%d",
							d.Name(), s, r, c, sourceRule, oracle.Sends, oracle.Bytes, sends, bytes)
					}
				}
			}
		}
	}
}
