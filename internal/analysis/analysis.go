// Package analysis provides the paper's analytical side: the asymptotic
// characteristic-parameter formulas of Figure 2, and an exact pure oracle
// for Br_Lin's communication pattern (holder growth, operation counts,
// traffic volume) computed without running the simulator. The oracle
// cross-validates the discrete-event engine — tests assert that the
// simulator's measured per-iteration activity matches the oracle exactly —
// and lets callers predict how a source distribution will grow before
// paying for a simulation.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/topology"
)

// Fig2Row is one row of the paper's Figure 2: the asymptotic
// characteristic parameters of an algorithm on the equal distribution,
// with unit constants. Values are predictions to compare against measured
// metrics.Params, not exact counts.
type Fig2Row struct {
	Algorithm  string
	Congestion float64
	Wait       float64
	SendRec    float64
	AvgMsgLen  float64
	AvgActive  float64
	// Formula holds the paper's symbolic forms for documentation.
	Formula string
}

// Fig2Prediction returns the paper's Figure 2 row for an algorithm on the
// equal distribution of s sources with message length L on p processors.
// Supported algorithms: "2-Step", "PersAlltoAll", "Br_Lin" (the figure's
// rows). Br_Lin distinguishes s a power of two from other s, as the paper
// does.
func Fig2Prediction(algorithm string, p, s, l int) (Fig2Row, error) {
	if p <= 0 || s <= 0 || s > p || l < 0 {
		return Fig2Row{}, fmt.Errorf("analysis: invalid instance p=%d s=%d L=%d", p, s, l)
	}
	logp := math.Log2(float64(p))
	if logp < 1 {
		logp = 1
	}
	fs, fl, fp := float64(s), float64(l), float64(p)
	switch algorithm {
	case "2-Step":
		return Fig2Row{
			Algorithm:  algorithm,
			Congestion: fs,
			Wait:       1,
			SendRec:    fp,
			AvgMsgLen:  fs * fl,
			AvgActive:  fp / logp,
			Formula:    "congestion O(s), wait O(1), send/rec O(p), av_msg O(sL), av_act O(p/log p)",
		}, nil
	case "PersAlltoAll":
		return Fig2Row{
			Algorithm:  algorithm,
			Congestion: 1,
			Wait:       1,
			SendRec:    fp,
			AvgMsgLen:  fl,
			AvgActive:  fp,
			Formula:    "congestion O(1), wait O(1), send/rec O(p), av_msg O(L), av_act O(p)",
		}, nil
	case "Br_Lin":
		row := Fig2Row{
			Algorithm:  algorithm,
			Congestion: 1,
			Wait:       logp,
			SendRec:    logp,
		}
		if s&(s-1) == 0 { // power of two: slow early growth
			logs := math.Log2(fs)
			row.AvgMsgLen = fs * fl
			row.AvgActive = fp/logp + fs*logs/logp
			row.Formula = "s=2^l: av_msg O(sL), av_act O(p/log p + s·log s/log p)"
		} else {
			row.AvgMsgLen = fs * fl / logp
			row.AvgActive = fp / logp * math.Log2(fs+1)
			row.Formula = "s≠2^l: av_msg O(sL/log p), av_act O(p·log s/log p)"
		}
		return row, nil
	}
	return Fig2Row{}, fmt.Errorf("analysis: no Figure 2 row for %q", algorithm)
}

// Oracle is the exact replay of Br_Lin's communication pattern on one
// broadcast instance: per-iteration activity and operation counts, and the
// final traffic volume, computed purely (no simulator, no goroutines).
type Oracle struct {
	// Active is the number of processors that send or receive in each
	// iteration — the quantity metrics.ActiveProfile measures.
	Active []int
	// Holders is the number of message-holding processors after each
	// iteration.
	Holders []int
	// Sends is the total number of point-to-point sends.
	Sends int
	// Bytes is the total payload volume moved, assuming every source
	// message has length L.
	Bytes int64
}

// BrLinOracle replays Br_Lin on the spec with uniform message length L.
// The replay follows exactly the pairing rules of core's runLine: pairs
// (lo+i, lo+i+h) with h=⌈n/2⌉ exchange or single-send depending on
// holdings, odd segments one-way the unpaired middle to the segment's last
// position, segments halve until singletons.
func BrLinOracle(spec core.Spec, l int) (*Oracle, error) {
	if err := spec.Validate(spec.P()); err != nil {
		return nil, err
	}
	p := spec.P()
	mesh := topology.MustMesh2D(spec.Rows, spec.Cols)
	holds := make([]bool, p)
	size := make([]int64, p) // bundle bytes at each line position
	for pos := 0; pos < p; pos++ {
		rank := spec.Indexing.RankToNode(mesh, pos)
		if spec.IsSource(rank) {
			holds[pos] = true
			size[pos] = int64(l)
		}
	}
	levels, sends, bytes := replayHalving(holds, size)
	o := &Oracle{Sends: sends, Bytes: bytes}
	// Rebuild per-level holder counts: a position holds from the level
	// it first becomes active onward (holders only grow), seeded by the
	// initial sources.
	holding := make([]bool, p)
	for pos := 0; pos < p; pos++ {
		rank := spec.Indexing.RankToNode(mesh, pos)
		holding[pos] = spec.IsSource(rank)
	}
	for _, active := range levels {
		nActive := 0
		for i, a := range active {
			if a {
				nActive++
				holding[i] = true
			}
		}
		nHold := 0
		for _, h := range holding {
			if h {
				nHold++
			}
		}
		o.Active = append(o.Active, nActive)
		o.Holders = append(o.Holders, nHold)
	}
	return o, nil
}

// GrowthEfficiency scores a holder profile against ideal doubling: 1.0
// means the holder count doubled every iteration until saturation (the
// design objective of Section 1), lower values mean stalled iterations.
func GrowthEfficiency(holders []int, s, p int) float64 {
	if len(holders) == 0 || s <= 0 || p <= 0 {
		return 0
	}
	achieved := 0.0
	ideal := 0.0
	cur := s
	for _, h := range holders {
		want := cur * 2
		if want > p {
			want = p
		}
		if cur < p {
			ideal += float64(want - cur)
			if h > cur {
				achieved += float64(h - cur)
			}
		}
		cur = h
	}
	if ideal == 0 {
		return 1
	}
	eff := achieved / ideal
	if eff > 1 {
		eff = 1
	}
	return eff
}
