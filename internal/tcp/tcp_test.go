package tcp

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/topology"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := comm.Message{Tag: 42, Parts: []comm.Part{
		{Origin: 3, Data: []byte("hello")},
		{Origin: 9, Data: nil},
		{Origin: 0, Data: bytes.Repeat([]byte{0xAB}, 10000)},
	}}
	if err := writeFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 42 || len(got.Parts) != 3 {
		t.Fatalf("frame header: %+v", got)
	}
	for i := range m.Parts {
		if got.Parts[i].Origin != m.Parts[i].Origin {
			t.Fatalf("part %d origin %d", i, got.Parts[i].Origin)
		}
		if !bytes.Equal(got.Parts[i].Data, m.Parts[i].Data) {
			t.Fatalf("part %d payload corrupted", i)
		}
	}
}

func TestFrameRejectsCorruptHeader(t *testing.T) {
	// A negative part count must not allocate.
	buf := []byte{0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(buf)); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestPingPongOverTCP(t *testing.T) {
	res, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("over the wire")}}})
			m := p.Recv(1)
			if string(m.Parts[0].Data) != "ack" {
				t.Errorf("rank 0 got %q", m.Parts[0].Data)
			}
		} else {
			m := p.Recv(0)
			if m.Tag != 7 || string(m.Parts[0].Data) != "over the wire" {
				t.Errorf("rank 1 got %+v", m)
			}
			p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 1, Data: []byte("ack")}}})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[1].RecvBytes == 0 {
		t.Fatalf("stats: %+v", res.Procs)
	}
}

func TestBarrierOverTCP(t *testing.T) {
	_, err := Run(6, func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	_, err := Run(3, func(p *Proc) {
		p.Send(p.Rank(), comm.Message{Tag: 5, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(p.Rank())}}}})
		m := p.Recv(p.Rank())
		if m.Tag != 5 || m.Parts[0].Data[0] != byte(p.Rank()) {
			t.Errorf("rank %d self message %+v", p.Rank(), m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPairOverTCP(t *testing.T) {
	const n = 100
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, comm.Message{Tag: i, Parts: []comm.Part{{Data: []byte{byte(i)}}}})
			}
		} else {
			for i := 0; i < n; i++ {
				if m := p.Recv(0); m.Tag != i {
					t.Errorf("out of order: got %d want %d", m.Tag, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCoreAlgorithmsOverTCP runs the full algorithm registry over real
// sockets on a 3×4 machine — the same correctness matrix the other two
// engines pass.
func TestCoreAlgorithmsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket matrix")
	}
	const r, c, s = 3, 4, 5
	sources, err := dist.Cross().Sources(r, c, s)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
	for _, alg := range core.Registry() {
		out := make([]comm.Message, r*c)
		_, err := Run(r*c, func(p *Proc) {
			mine := core.InitialMessage(spec, p.Rank(), []byte(fmt.Sprintf("tcp-%d", p.Rank())))
			out[p.Rank()] = alg.Run(p, spec, mine)
		})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for rank, m := range out {
			if !reflect.DeepEqual(m.Origins(), sources) {
				t.Fatalf("%s: rank %d origins %v, want %v", alg.Name(), rank, m.Origins(), sources)
			}
			for _, part := range m.Parts {
				if want := fmt.Sprintf("tcp-%d", part.Origin); string(part.Data) != want {
					t.Fatalf("%s: rank %d payload %q", alg.Name(), rank, part.Data)
				}
			}
		}
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	const p = 8
	out := make([]comm.Message, p)
	_, err := Run(p, func(pr *Proc) {
		m := comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(pr.Rank())}}}}
		out[pr.Rank()] = collective.AllgatherRing(pr, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, m := range out {
		if len(m.Parts) != p {
			t.Fatalf("rank %d gathered %d parts", rank, len(m.Parts))
		}
	}
}

func TestPanicAbortsTCPMachine(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 2 {
			panic("wire fault")
		}
		p.Recv(2) // would hang without the abort
	})
	if err == nil {
		t.Fatal("fault not reported")
	}
	if !strings.Contains(err.Error(), "wire fault") && !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestInvalidCount(t *testing.T) {
	if _, err := Run(0, func(*Proc) {}); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestSingleProcessorTCP(t *testing.T) {
	_, err := Run(1, func(p *Proc) {
		p.Barrier()
		p.Send(0, comm.Message{Parts: []comm.Part{{Data: []byte("x")}}})
		p.Recv(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}
