package tcp

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/live"
	"repro/internal/topology"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := comm.Message{Tag: 42, Parts: []comm.Part{
		{Origin: 3, Data: []byte("hello")},
		{Origin: 9, Data: nil},
		{Origin: 0, Data: bytes.Repeat([]byte{0xAB}, 10000)},
	}}
	if err := writeFrame(&buf, 9, m); err != nil {
		t.Fatal(err)
	}
	got, epoch, err := readFrame(&buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 42 || len(got.Parts) != 3 || epoch != 9 {
		t.Fatalf("frame header: %+v (epoch %d)", got, epoch)
	}
	for i := range m.Parts {
		if got.Parts[i].Origin != m.Parts[i].Origin {
			t.Fatalf("part %d origin %d", i, got.Parts[i].Origin)
		}
		if !bytes.Equal(got.Parts[i].Data, m.Parts[i].Data) {
			t.Fatalf("part %d payload corrupted", i)
		}
	}
}

func TestFrameRejectsCorruptHeader(t *testing.T) {
	// A negative part count must not allocate.
	buf := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	got, _, err := readFrame(bytes.NewReader(buf), 3, 5)
	if err == nil {
		t.Fatalf("corrupt frame accepted: %+v", got)
	}
	// PR 2 contract: engine errors name the affected rank and its peer.
	for _, want := range []string{"from rank 3", "at rank 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("corrupt-frame error %q does not contain %q", err, want)
		}
	}
}

func TestPingPongOverTCP(t *testing.T) {
	res, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("over the wire")}}})
			m := p.Recv(1)
			if string(m.Parts[0].Data) != "ack" {
				t.Errorf("rank 0 got %q", m.Parts[0].Data)
			}
		} else {
			m := p.Recv(0)
			if m.Tag != 7 || string(m.Parts[0].Data) != "over the wire" {
				t.Errorf("rank 1 got %+v", m)
			}
			p.Send(0, comm.Message{Parts: []comm.Part{{Origin: 1, Data: []byte("ack")}}})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Sends != 1 || res.Procs[1].RecvBytes == 0 {
		t.Fatalf("stats: %+v", res.Procs)
	}
}

func TestBarrierOverTCP(t *testing.T) {
	_, err := Run(6, func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	_, err := Run(3, func(p *Proc) {
		p.Send(p.Rank(), comm.Message{Tag: 5, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(p.Rank())}}}})
		m := p.Recv(p.Rank())
		if m.Tag != 5 || m.Parts[0].Data[0] != byte(p.Rank()) {
			t.Errorf("rank %d self message %+v", p.Rank(), m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPairOverTCP(t *testing.T) {
	const n = 100
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, comm.Message{Tag: i, Parts: []comm.Part{{Data: []byte{byte(i)}}}})
			}
		} else {
			for i := 0; i < n; i++ {
				if m := p.Recv(0); m.Tag != i {
					t.Errorf("out of order: got %d want %d", m.Tag, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCoreAlgorithmsOverTCP runs the full algorithm registry over real
// sockets on a 3×4 machine — the same correctness matrix the other two
// engines pass.
func TestCoreAlgorithmsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket matrix")
	}
	const r, c, s = 3, 4, 5
	sources, err := dist.Cross().Sources(r, c, s)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
	for _, alg := range core.Registry() {
		out := make([]comm.Message, r*c)
		_, err := Run(r*c, func(p *Proc) {
			mine := core.InitialMessage(spec, p.Rank(), []byte(fmt.Sprintf("tcp-%d", p.Rank())))
			out[p.Rank()] = alg.Run(p, spec, mine)
		})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for rank, m := range out {
			if !reflect.DeepEqual(m.Origins(), sources) {
				t.Fatalf("%s: rank %d origins %v, want %v", alg.Name(), rank, m.Origins(), sources)
			}
			for _, part := range m.Parts {
				if want := fmt.Sprintf("tcp-%d", part.Origin); string(part.Data) != want {
					t.Fatalf("%s: rank %d payload %q", alg.Name(), rank, part.Data)
				}
			}
		}
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	const p = 8
	out := make([]comm.Message, p)
	_, err := Run(p, func(pr *Proc) {
		m := comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(pr.Rank())}}}}
		out[pr.Rank()] = collective.AllgatherRing(pr, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, m := range out {
		if len(m.Parts) != p {
			t.Fatalf("rank %d gathered %d parts", rank, len(m.Parts))
		}
	}
}

func TestPanicAbortsTCPMachine(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 2 {
			panic("wire fault")
		}
		p.Recv(2) // would hang without the abort
	})
	if err == nil {
		t.Fatal("fault not reported")
	}
	if !strings.Contains(err.Error(), "wire fault") && !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestInvalidCount(t *testing.T) {
	if _, err := Run(0, func(*Proc) {}); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestSingleProcessorTCP(t *testing.T) {
	_, err := Run(1, func(p *Proc) {
		p.Barrier()
		p.Send(0, comm.Message{Parts: []comm.Part{{Data: []byte("x")}}})
		p.Recv(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// waitGoroutinesSettle asserts the goroutine count returns to near the
// baseline: algorithm goroutines, reader pumps and watchers all unwound.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after run: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestBarrierTrafficDoesNotInflateStats runs the same workload on the
// tcp and live engines: the algorithm-level operation counts must agree,
// with tcp's barrier dissemination frames metered separately.
func TestBarrierTrafficDoesNotInflateStats(t *testing.T) {
	const p = 4
	workload := func(rank int, send func(int, comm.Message), recv func(int) comm.Message, barrier func()) {
		barrier()
		if rank == 0 {
			send(1, comm.Message{Parts: []comm.Part{{Origin: 0, Data: []byte("x")}}})
		}
		if rank == 1 {
			recv(0)
		}
		barrier()
	}
	tcpRes, err := Run(p, func(pr *Proc) {
		workload(pr.Rank(), pr.Send, pr.Recv, pr.Barrier)
	})
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := live.Run(p, func(pr *live.Proc) {
		workload(pr.Rank(), pr.Send, pr.Recv, pr.Barrier)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		tp, lp := tcpRes.Procs[i], liveRes.Procs[i]
		if tp.Sends != lp.Sends || tp.Recvs != lp.Recvs || tp.SendBytes != lp.SendBytes || tp.RecvBytes != lp.RecvBytes {
			t.Errorf("rank %d: tcp stats %+v disagree with live %+v", i, tp, lp)
		}
		// Two barriers on p=4 are 2 rounds each: 4 barrier frames both ways.
		if tp.BarrierSends != 4 || tp.BarrierRecvs != 4 {
			t.Errorf("rank %d: barrier frames %d/%d, want 4/4", i, tp.BarrierSends, tp.BarrierRecvs)
		}
	}
}

// TestBarrierAndDataInterleave is the tag-matching regression test: a
// data frame queued ahead of a barrier frame from the same peer must not
// be consumed by the barrier (nor the barrier frame delivered to Recv).
func TestBarrierAndDataInterleave(t *testing.T) {
	for round := 0; round < 10; round++ {
		_, err := Run(2, func(p *Proc) {
			if p.Rank() == 0 {
				// Data frame enters the 0→1 socket ahead of rank 0's
				// barrier frame.
				p.Send(1, comm.Message{Tag: 7, Parts: []comm.Part{{Origin: 0, Data: []byte("data-before-barrier")}}})
				p.Barrier()
			} else {
				p.Barrier()
				m := p.Recv(0)
				if m.Tag != 7 || string(m.Parts[0].Data) != "data-before-barrier" {
					t.Errorf("barrier swallowed the data frame: got %+v", m)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubBarrierOverTCP: comm.Sub's dissemination barrier uses ordinary
// tagged messages (tag -1), which must remain algorithm data on the tcp
// engine — only the reserved engine tag is barrier traffic.
func TestSubBarrierOverTCP(t *testing.T) {
	members := []int{0, 2, 3}
	_, err := Run(4, func(p *Proc) {
		in := false
		for _, m := range members {
			if m == p.Rank() {
				in = true
			}
		}
		if !in {
			return
		}
		sub, err := comm.NewSub(p, members)
		if err != nil {
			t.Errorf("NewSub: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			sub.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReservedTagRejected(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: barrierTag})
		} else {
			p.Recv(0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved tag accepted: %v", err)
	}
}

func TestTCPRecvDeadlineNamesRankAndPeer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	start := time.Now()
	_, err := RunOpts(4, Options{RecvTimeout: 200 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 2 {
			p.Recv(0) // rank 0 never sends
		}
	})
	if err == nil {
		t.Fatal("hang not converted to an error")
	}
	for _, want := range []string{"rank 2", "recv from 0", "deadline"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadline error %q missing %q", err, want)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline abort took %v", d)
	}
	waitGoroutinesSettle(t, baseline)
}

func TestTCPBarrierDeadline(t *testing.T) {
	_, err := RunOpts(3, Options{RecvTimeout: 200 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 1 {
			return // never enters the barrier
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("barrier stall not converted to an error")
	}
	if !strings.Contains(err.Error(), "barrier recv") || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("barrier stall error: %v", err)
	}
}

func TestTCPRunTimeoutAborts(t *testing.T) {
	start := time.Now()
	_, err := RunOpts(2, Options{RunTimeout: 150 * time.Millisecond}, func(p *Proc) {
		p.Recv(1 - p.Rank()) // mutual hang
	})
	if err == nil {
		t.Fatal("run deadline not enforced")
	}
	if !strings.Contains(err.Error(), "run exceeded") {
		t.Fatalf("run-deadline error: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("run-deadline abort took %v", d)
	}
}

func TestTCPContextCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := RunOpts(2, Options{Context: ctx}, func(p *Proc) {
		p.Recv(1 - p.Rank())
	})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("cancel error: %v", err)
	}
}

// TestDialRetryAbsorbsTransientFailures injects dial failures on the
// first two attempts per address; the retry loop must absorb them and
// the run must complete correctly.
func TestDialRetryAbsorbsTransientFailures(t *testing.T) {
	var mu sync.Mutex
	tries := make(map[string]int)
	flakyDial := func(addr string) (net.Conn, error) {
		mu.Lock()
		tries[addr]++
		n := tries[addr]
		mu.Unlock()
		if n <= 2 {
			return nil, fmt.Errorf("injected transient dial failure %d to %s", n, addr)
		}
		return net.Dial("tcp", addr)
	}
	res, err := RunOpts(3, Options{Dial: flakyDial, DialAttempts: 4, DialBackoff: time.Millisecond}, func(p *Proc) {
		next := (p.Rank() + 1) % 3
		p.Send(next, comm.Message{Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(p.Rank())}}}})
		m := p.Recv((p.Rank() + 2) % 3)
		if m.Parts[0].Data[0] != byte((p.Rank()+2)%3) {
			t.Errorf("rank %d got wrong payload after flaky setup", p.Rank())
		}
	})
	if err != nil {
		t.Fatalf("transient dial failures not absorbed: %v", err)
	}
	if res == nil || len(res.Procs) != 3 {
		t.Fatal("missing result after retried setup")
	}
	mu.Lock()
	defer mu.Unlock()
	for addr, n := range tries {
		if n < 3 {
			t.Errorf("address %s dialed only %d times; retry did not engage", addr, n)
		}
	}
}

// TestDialPermanentFailureErrorsOut: when every attempt fails, setup
// must return an error (and not deadlock the accept side).
func TestDialPermanentFailureErrorsOut(t *testing.T) {
	baseline := runtime.NumGoroutine()
	deadDial := func(addr string) (net.Conn, error) {
		return nil, fmt.Errorf("injected permanent dial failure to %s", addr)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunOpts(3, Options{Dial: deadDial, DialAttempts: 2, DialBackoff: time.Millisecond}, func(p *Proc) {})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
			t.Fatalf("permanent dial failure error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("setup deadlocked on permanent dial failure")
	}
	waitGoroutinesSettle(t, baseline)
}

// TestMidRunConnectionFailureIsAttributed closes one connection in the
// middle of a run (via the Dial hook, which hands the test the socket):
// the run must abort with an error naming the broken link, not hang and
// not misreport a graceful teardown.
func TestMidRunConnectionFailureIsAttributed(t *testing.T) {
	var mu sync.Mutex
	var conns []net.Conn
	grabDial := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	release := make(chan struct{})
	_, err := RunOpts(2, Options{Dial: grabDial, RecvTimeout: 5 * time.Second}, func(p *Proc) {
		if p.Rank() == 0 {
			<-release
			p.Recv(1) // the 1→0 socket is cut while we wait
		} else {
			mu.Lock()
			for _, c := range conns {
				c.Close() // cut every dialed socket mid-run
			}
			mu.Unlock()
			close(release)
			p.Recv(0) // blocks; must unwind when the machine aborts
		}
	})
	if err == nil {
		t.Fatal("mid-run connection failure not reported")
	}
	if !strings.Contains(err.Error(), "connection") && !strings.Contains(err.Error(), "send to") {
		t.Fatalf("failure not attributed to the transport: %v", err)
	}
}

// TestTCPAbortUnwindsRecvAndBarrierBlockedPeers mirrors the live-engine
// abort matrix over real sockets: one rank panics while peers block in
// Recv and Barrier; everything must unwind with the root cause reported.
func TestTCPAbortUnwindsRecvAndBarrierBlockedPeers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, err := Run(6, func(p *Proc) {
		switch p.Rank() {
		case 0:
			time.Sleep(20 * time.Millisecond)
			panic("rank 0 died over tcp")
		case 1, 2:
			p.Recv(0)
		default:
			p.Barrier()
		}
	})
	if err == nil {
		t.Fatal("abort not reported")
	}
	if !strings.Contains(err.Error(), "rank 0 died over tcp") {
		t.Fatalf("root cause misattributed: %v", err)
	}
	waitGoroutinesSettle(t, baseline)
}

// TestTCPDeadlineHealthyRun guards against deadline false positives on
// a busy run over real sockets.
func TestTCPDeadlineHealthyRun(t *testing.T) {
	const rounds = 10
	_, err := RunOpts(4, Options{RecvTimeout: 2 * time.Second, RunTimeout: 60 * time.Second}, func(p *Proc) {
		next, prev := (p.Rank()+1)%4, (p.Rank()+3)%4
		for i := 0; i < rounds; i++ {
			p.Send(next, comm.Message{Tag: i, Parts: []comm.Part{{Origin: p.Rank(), Data: []byte{byte(i)}}}})
			p.Recv(prev)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("healthy run failed under deadlines: %v", err)
	}
}
