package tcp

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
)

// TestMachineBackToBackRuns reuses one mesh for many broadcasts: every
// run must complete correctly and the machine must report no rebuilds.
func TestMachineBackToBackRuns(t *testing.T) {
	const p, runs = 4, 20
	m, err := NewMachine(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for r := 0; r < runs; r++ {
		res, err := m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
			next, prev := (pr.Rank()+1)%p, (pr.Rank()+p-1)%p
			pr.Send(next, comm.Message{Tag: r, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(r)}}}})
			got := pr.Recv(prev)
			if got.Tag != r || got.Parts[0].Data[0] != byte(r) {
				t.Errorf("run %d rank %d: got %+v", r, pr.Rank(), got)
			}
			pr.Barrier()
		})
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if res.Procs[0].Sends != 1 || res.Procs[0].BarrierSends == 0 {
			t.Fatalf("run %d stats not per-run: %+v", r, res.Procs[0])
		}
	}
	if n := m.Reconnects(); n != 0 {
		t.Fatalf("healthy session rebuilt the mesh %d times", n)
	}
}

// TestMachineRunsDoNotBleedFrames sends an extra frame nobody receives
// in run 1; run 2 must not see it — a Recv from the same peer must time
// out rather than deliver the stale frame. This is the epoch-isolation
// regression test.
func TestMachineRunsDoNotBleedFrames(t *testing.T) {
	m, err := NewMachine(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte("wanted")}}})
			pr.Send(1, comm.Message{Tag: 2, Parts: []comm.Part{{Origin: 0, Data: []byte("orphan")}}})
		} else {
			pr.Recv(0) // consumes "wanted"; "orphan" is left in flight
		}
	}); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(Options{RecvTimeout: 200 * time.Millisecond}, func(pr *Proc) {
		if pr.Rank() == 1 {
			m := pr.Recv(0) // nothing is sent this run
			t.Errorf("stale frame bled into the next run: %+v", m)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a clean receive deadline, got %v", err)
	}
}

// TestMachineReconnectsAfterAbort panics a rank (which tears the mesh
// down), then runs again on the same machine: the next Run must rebuild
// the mesh transparently and succeed, counting one reconnect.
func TestMachineReconnectsAfterAbort(t *testing.T) {
	const p = 4
	m, err := NewMachine(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
		if pr.Rank() == 2 {
			panic("rank 2 killed")
		}
		pr.Recv(2)
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 killed") {
		t.Fatalf("abort misreported: %v", err)
	}
	for r := 0; r < 3; r++ {
		if _, err := m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
			pr.Barrier()
			pr.Send((pr.Rank()+1)%p, comm.Message{Tag: r, Parts: []comm.Part{{Origin: pr.Rank()}}})
			pr.Recv((pr.Rank() + p - 1) % p)
		}); err != nil {
			t.Fatalf("post-abort run %d failed: %v", r, err)
		}
	}
	if n := m.Reconnects(); n != 1 {
		t.Fatalf("reconnects = %d, want 1 (one abort, then healthy runs)", n)
	}
}

// TestMachineReconnectsAfterMidRunConnectionKill cuts a socket mid-run
// (the serving-workload failure mode): the run must fail naming the
// transport, and the next run over the same machine must succeed after a
// mesh rebuild.
func TestMachineReconnectsAfterMidRunConnectionKill(t *testing.T) {
	var mu sync.Mutex
	var conns []net.Conn
	grabDial := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	m, err := NewMachine(2, Options{Dial: grabDial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	_, err = m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
		if pr.Rank() == 0 {
			<-release
			pr.Recv(1)
		} else {
			mu.Lock()
			for _, c := range conns {
				c.Close()
			}
			mu.Unlock()
			close(release)
			pr.Recv(0)
		}
	})
	if err == nil {
		t.Fatal("mid-run connection kill not reported")
	}
	if _, err := m.Run(Options{RecvTimeout: 5 * time.Second}, func(pr *Proc) {
		pr.Send(1-pr.Rank(), comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte("alive")}}})
		if got := pr.Recv(1 - pr.Rank()); string(got.Parts[0].Data) != "alive" {
			t.Errorf("rank %d after reconnect: %+v", pr.Rank(), got)
		}
	}); err != nil {
		t.Fatalf("run after mid-run kill failed: %v", err)
	}
	if n := m.Reconnects(); n != 1 {
		t.Fatalf("reconnects = %d, want 1", n)
	}
}

// TestMachineCloseJoinsPumps: after Close, every reader pump and rank
// goroutine must be gone; Run on a closed machine errors.
func TestMachineCloseJoinsPumps(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m, err := NewMachine(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Options{}, func(pr *Proc) { pr.Barrier() }); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := m.Run(Options{}, func(*Proc) {}); err == nil {
		t.Fatal("Run on closed machine accepted")
	}
	waitGoroutinesSettle(t, baseline)
}
