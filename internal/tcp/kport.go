package tcp

import (
	"fmt"
	"net"
	"time"

	"repro/internal/comm"
)

// Measurement harness for the k-ported send path, used by the
// figSparseMesh experiment and the KPort benchmarks. It builds a sparse
// star machine — one fan-out rank driving several receivers — and paces
// the fan-out rank's writes with a fixed per-write transmission delay,
// the engine-level analogue of the paper's τ = L/B per-link
// transmission time. With the delay dominating, the Ports=1 vs Ports=k
// ratio is structural (serialized vs overlapped transmissions), not an
// artifact of how many host cores happen to back the loopback device,
// so the ≥1.5× acceptance gate holds on any machine.

// pacedConn emulates a link with a fixed per-frame transmission time:
// every Write sleeps delay before hitting the real socket. The k-ported
// drivers issue exactly one Write per frame, so the delay is charged
// per frame on both the single- and multi-ported paths.
type pacedConn struct {
	net.Conn
	delay time.Duration
}

func (c *pacedConn) Write(b []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(b)
}

// MeasureKPortRate reports steady-state frames/s of one rank fanning
// framesPerLink frames of payloadBytes out to fanout receivers over a
// sparse star mesh, with ports transmission tokens and every outbound
// write paced by perFrame. ports=0 measures the inline single-writer
// path; ports=k overlaps up to k paced transmissions.
func MeasureKPortRate(ports, fanout, payloadBytes, framesPerLink int, perFrame time.Duration) (float64, error) {
	if fanout < 1 || framesPerLink < 1 {
		return 0, fmt.Errorf("tcp: MeasureKPortRate: bad shape fanout=%d frames=%d", fanout, framesPerLink)
	}
	links := make([][2]int, fanout)
	for j := 1; j <= fanout; j++ {
		links[j-1] = [2]int{0, j}
	}
	m, err := NewMachine(fanout+1, Options{Links: links})
	if err != nil {
		return 0, err
	}
	defer m.Close()
	// Interpose the pacer on rank 0's outbound endpoints. The wrapped
	// conns stay in the teardown list, so abort/Close still unblock
	// everything.
	m.st.connMu.Lock()
	for j := 1; j <= fanout; j++ {
		m.procs[0].conns[j] = &pacedConn{Conn: m.procs[0].conns[j], delay: perFrame}
	}
	m.st.connMu.Unlock()

	payload := make([]byte, payloadBytes)
	msg := comm.Message{Parts: []comm.Part{{Origin: 0, Data: payload}}}
	res, err := m.Run(Options{Ports: ports, RecvTimeout: time.Minute}, func(pr *Proc) {
		if pr.rank == 0 {
			for f := 0; f < framesPerLink; f++ {
				for j := 1; j <= fanout; j++ {
					pr.Send(j, msg)
				}
			}
			return
		}
		for f := 0; f < framesPerLink; f++ {
			pr.Recv(0)
		}
	})
	if err != nil {
		return 0, err
	}
	total := float64(fanout * framesPerLink)
	return total / res.Elapsed.Seconds(), nil
}
