package tcp

import (
	"fmt"
	"net"

	"repro/internal/comm"
)

// The k-ported send path (Options.Ports > 0): Send enqueues frames onto
// per-destination link drivers — one writer goroutine per outbound
// connection, spawned lazily by the rank goroutine at the first send to
// that destination — and a semaphore of Ports transmission tokens
// bounds how many links one rank drives concurrently. Ports=1 behaves
// like a one-port node (transmissions to different destinations
// serialize, but the algorithm overlaps with them); Ports=k lets k
// links transmit at once, which is what the paper's multi-channel
// routers do and what the registry's k-ported schedules assume.
//
// Ownership rules w.r.t. the arena: a frame handed to a driver is
// encoded from the caller's message on the driver goroutine, but the
// message's payloads are caller-owned (algorithm code) or arena-owned
// with the receiver responsible — exactly the inline path's contract —
// so drivers never recycle. The encode scratch is per-driver and pooled
// for the driver's lifetime. Counters stay on the rank goroutine
// (Send increments before enqueueing), so ProcStats remain exact under
// concurrent drivers.

const (
	// driverQueueCap bounds each driver's frame queue. A full queue
	// blocks the sending rank — the same backpressure as the inline
	// path blocking on a full socket buffer — and the pumps' unbounded
	// inbox draining keeps the buffered-Send contract deadlock-free.
	driverQueueCap = 256
	// driverBurst is how many additional queued frames a driver may
	// write while it holds a port token, amortizing token traffic when
	// a queue runs deep without starving the other links forever.
	driverBurst = 32
)

// linkDriver is one outbound connection's writer: a bounded frame queue
// and a done latch the owning rank joins on at run end.
type linkDriver struct {
	q    chan comm.Message
	done chan struct{}
}

// driverFault records the first driver write failure of a run so the
// owning rank can report it as its own root cause (the driver goroutine
// cannot panic on the rank's behalf).
type driverFault struct {
	err error
}

// enqueue hands m to dst's link driver, spawning it at the first send.
// It blocks when the queue is full and panics with the recorded driver
// failure when the link already died — matching the inline path, where
// the failing Write itself panics.
func (p *Proc) enqueue(dst int, m comm.Message) {
	if df := p.derr.Load(); df != nil {
		p.sendFail(dst, df.err)
	}
	d := p.drivers[dst]
	if d == nil {
		conn, err := p.link(dst)
		if err != nil {
			p.sendFail(dst, err)
		}
		d = &linkDriver{
			q:    make(chan comm.Message, driverQueueCap),
			done: make(chan struct{}),
		}
		p.drivers[dst] = d
		go p.drive(dst, conn, d, p.rs)
	}
	d.q <- m
}

// drive writes dst's queued frames, taking one port token per
// transmission burst. After a write failure it records the fault,
// aborts the run, and keeps draining so the owning rank never blocks
// on a dead link's full queue.
func (p *Proc) drive(dst int, conn net.Conn, d *linkDriver, rs *runState) {
	defer close(d.done)
	sc := getScratch()
	defer putScratch(sc)
	failed := false
	for {
		m, ok := <-d.q
		if !ok {
			return
		}
		if failed {
			continue
		}
		p.portSem <- struct{}{}
		err := writeFrameTo(conn, rs.epoch, m, sc)
		for n := 0; err == nil && n < driverBurst; n++ {
			var more bool
			select {
			case m, more = <-d.q:
				if !more {
					<-p.portSem
					return
				}
				err = writeFrameTo(conn, rs.epoch, m, sc)
			default:
				n = driverBurst
			}
		}
		<-p.portSem
		if err != nil {
			failed = true
			p.driveFail(dst, err, rs)
		}
	}
}

// driveFail is the driver-side half of sendFail: record the fault for
// the owning rank, poison its inbox (a rank blocked in Recv must learn
// its own link died, not just that "the machine aborted"), and tear the
// run down so every peer unwinds.
func (p *Proc) driveFail(dst int, err error, rs *runState) {
	ferr := fmt.Errorf("link driver send to %d: %w", dst, err)
	if rs.aborted.Load() {
		// The mesh was already down; this write error is secondary.
		ferr = &abortError{cause: ferr}
	}
	p.derr.CompareAndSwap(nil, &driverFault{err: ferr})
	p.in.fail(p.st, rs, ferr)
	p.st.abort(rs, &abortError{cause: fmt.Errorf("machine aborted: rank %d link driver to %d failed", p.rank, dst)})
}

// stopDrivers closes every driver queue and joins the goroutines, so
// all queued frames are on the wire (or attributed to a fault) before
// the rank retires. Idempotent; rank goroutine only.
func (p *Proc) stopDrivers() {
	if p.ports == 0 {
		return
	}
	for i, d := range p.drivers {
		if d == nil {
			continue
		}
		p.drivers[i] = nil
		close(d.q)
		<-d.done
	}
}
