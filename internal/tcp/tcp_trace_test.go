package tcp

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
)

// seqTracer collects events from all rank goroutines.
type seqTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *seqTracer) Trace(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestTracerSeesTraffic(t *testing.T) {
	tr := &seqTracer{}
	_, err := RunOpts(2, Options{Tracer: tr}, func(p *Proc) {
		p.BeginIter(2)
		p.BeginPhase("exchange")
		if p.Rank() == 0 {
			p.Send(1, comm.Message{Tag: 3, Parts: []comm.Part{{Origin: 0, Data: []byte("abc")}}})
			p.Recv(1)
		} else {
			p.Recv(0)
			p.Send(0, comm.Message{Tag: 4, Parts: []comm.Part{{Origin: 1, Data: []byte("defg")}}})
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range tr.events {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindSend, obs.KindRecv, obs.KindBarrier:
			if e.Iter != 2 || e.Phase != "exchange" {
				t.Errorf("%s event missing markers: %+v", e.Kind, e)
			}
		}
		// The reader pump stamps frame arrival; a traced recv must carry
		// it, and it cannot postdate the recv completion.
		if e.Kind == obs.KindRecv {
			if e.Arrival <= 0 {
				t.Errorf("recv without arrival stamp: %+v", e)
			}
			if int64(e.Arrival) > e.Wall {
				t.Errorf("recv arrival %d after completion %d", e.Arrival, e.Wall)
			}
		}
	}
	if counts[obs.KindSend] != 2 || counts[obs.KindRecv] != 2 || counts[obs.KindBarrier] != 2 {
		t.Fatalf("event counts: %v", counts)
	}
}

func TestTracerSelfSendArrival(t *testing.T) {
	tr := &seqTracer{}
	_, err := RunOpts(1, Options{Tracer: tr}, func(p *Proc) {
		p.Send(0, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte("self")}}})
		p.Recv(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var recvs int
	for _, e := range tr.events {
		if e.Kind == obs.KindRecv {
			recvs++
			if e.Arrival <= 0 {
				t.Errorf("self-recv without arrival stamp: %+v", e)
			}
		}
	}
	if recvs != 1 {
		t.Fatalf("traced %d recvs, want 1", recvs)
	}
}
