package tcp

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
)

// starLinks is a fan-out plan: rank 0 sends to every other rank.
func starLinks(p int) [][2]int {
	links := make([][2]int, 0, p-1)
	for j := 1; j < p; j++ {
		links = append(links, [2]int{0, j})
	}
	return links
}

// TestSparseSetupOpensOnlyPlannedConns: a sparse plan must dial exactly
// its pair count, not the p(p−1)/2 mesh, and the planned links must
// carry traffic without any further dial.
func TestSparseSetupOpensOnlyPlannedConns(t *testing.T) {
	const p = 16
	m, err := NewMachine(p, Options{Links: starLinks(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Sparse() {
		t.Error("machine with Links not marked sparse")
	}
	if got, want := m.PlannedPairs(), p-1; got != want {
		t.Fatalf("planned %d pairs, want %d", got, want)
	}
	if got := m.ConnsOpened(); got != p-1 {
		t.Fatalf("setup opened %d conns, want %d (full mesh would be %d)", got, p-1, p*(p-1)/2)
	}
	if _, err := m.Run(Options{RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte("hi")}}}
		if pr.Rank() == 0 {
			for j := 1; j < p; j++ {
				pr.Send(j, msg)
			}
		} else {
			got := pr.Recv(0)
			if string(got.Parts[0].Data) != "hi" {
				panic("bad payload")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.ConnsOpened(); got != p-1 {
		t.Errorf("planned sends dialed extra conns: %d total, want %d", got, p-1)
	}
}

// TestLazyDialFallbackForUnplannedSend: a send over a link the plan did
// not include must succeed via the on-demand dial, open exactly one new
// connection, and reuse it on the next run.
func TestLazyDialFallbackForUnplannedSend(t *testing.T) {
	const p = 3
	m, err := NewMachine(p, Options{Links: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.ConnsOpened(); got != 1 {
		t.Fatalf("setup opened %d conns, want 1", got)
	}
	roundTrip := func() {
		if _, err := m.Run(Options{RecvTimeout: 10 * time.Second}, func(pr *Proc) {
			msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(pr.Rank())}}}}
			switch pr.Rank() {
			case 0:
				pr.Send(2, msg) // unplanned: 0–2 must lazy-dial
			case 2:
				got := pr.Recv(0)
				if got.Parts[0].Data[0] != 0 {
					panic("bad payload")
				}
				pr.Send(0, msg) // reverse direction shares the pair conn
			}
			if pr.Rank() == 0 {
				pr.Recv(2)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	if got := m.ConnsOpened(); got != 2 {
		t.Fatalf("after lazy dial: %d conns opened, want 2", got)
	}
	roundTrip()
	if got := m.ConnsOpened(); got != 2 {
		t.Errorf("second run re-dialed: %d conns opened, want still 2", got)
	}
}

// TestSparseReconnectRebuildsOnlyPlannedPairs is the reconnect-after-
// abort contract on a sparse machine: the rebuild redials exactly the
// planned pair set — not the full mesh, and not links that were only
// ever opened lazily — and counts one reconnect.
func TestSparseReconnectRebuildsOnlyPlannedPairs(t *testing.T) {
	const p = 8
	links := [][2]int{{0, 1}, {1, 2}, {2, 3}} // 3 planned pairs of 28 possible
	m, err := NewMachine(p, Options{Links: links})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.ConnsOpened(); got != 3 {
		t.Fatalf("setup opened %d conns, want 3", got)
	}
	// Run 1: open one lazy extra (0–7), then abort via rank panic.
	_, err = m.Run(Options{RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte("x")}}}
		switch pr.Rank() {
		case 0:
			pr.Send(7, msg)
			panic("boom")
		case 7:
			pr.Recv(0)
			pr.Recv(0) // never arrives: unwinds on the abort
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("aborted run returned %v, want the rank panic", err)
	}
	after := m.ConnsOpened() // 3 planned + 1 lazy
	if after != 4 {
		t.Fatalf("after lazy dial and abort: %d conns opened, want 4", after)
	}
	// Run 2: the rebuild must redial the 3 planned pairs only.
	if _, err := m.Run(Options{RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte("y")}}}
		if pr.Rank() == 0 {
			pr.Send(1, msg)
		} else if pr.Rank() == 1 {
			pr.Recv(0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.Reconnects(); got != 1 {
		t.Errorf("Reconnects() = %d, want 1", got)
	}
	if got := m.ConnsOpened(); got != after+3 {
		t.Errorf("rebuild opened %d conns (total %d), want 3 (total %d) — the lazy 0–7 link must not be rebuilt", got-after, got, after+3)
	}
}

// TestKPortedRunMatchesInline runs identical traffic through the inline
// path and the k-ported drivers (1 and 4 ports); delivered bundles must
// match and the driver path must stay deadlock-free through
// send-before-receive exchanges and barriers.
func TestKPortedRunMatchesInline(t *testing.T) {
	const p = 5
	run := func(opts Options) [][]byte {
		m, err := NewMachine(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		out := make([][]byte, p)
		opts.RecvTimeout = 10 * time.Second
		if _, err := m.Run(opts, func(pr *Proc) {
			var acc []byte
			for peer := 0; peer < p; peer++ {
				if peer == pr.Rank() {
					continue
				}
				got := comm.Exchange(pr, peer, comm.Message{
					Tag: 1, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(pr.Rank())}}},
				})
				acc = append(acc, got.Parts[0].Data...)
			}
			pr.Barrier()
			next, prev := (pr.Rank()+1)%p, (pr.Rank()+p-1)%p
			pr.Send(next, comm.Message{Tag: 2, Parts: []comm.Part{{Origin: pr.Rank(), Data: acc}}})
			m := pr.Recv(prev)
			out[pr.Rank()] = append([]byte(nil), m.Parts[0].Data...)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	inline := run(Options{})
	for _, ports := range []int{1, 4} {
		ported := run(Options{Ports: ports})
		for r := range inline {
			if !bytes.Equal(inline[r], ported[r]) {
				t.Errorf("ports=%d rank %d: delivered %v, inline %v", ports, r, ported[r], inline[r])
			}
		}
	}
}

// TestKPortedStatsExact pins the ProcStats contract under concurrent
// drivers: counters are incremented on the rank goroutine, so sends,
// recvs and byte totals stay exact whatever the drivers overlap.
func TestKPortedStatsExact(t *testing.T) {
	const p, rounds = 4, 25
	m, err := NewMachine(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	payload := make([]byte, 100)
	res, err := m.Run(Options{Ports: 3, RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: pr.Rank(), Data: payload}}}
		for r := 0; r < rounds; r++ {
			for peer := 0; peer < p; peer++ {
				if peer != pr.Rank() {
					pr.Send(peer, msg)
				}
			}
			for peer := 0; peer < p; peer++ {
				if peer != pr.Rank() {
					pr.Recv(peer)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := rounds * (p - 1)
	wantBytes := int64(wantOps * len(payload))
	for _, ps := range res.Procs {
		if ps.Sends != wantOps || ps.Recvs != wantOps {
			t.Errorf("rank %d: %d sends / %d recvs, want %d / %d", ps.Rank, ps.Sends, ps.Recvs, wantOps, wantOps)
		}
		if ps.SendBytes != wantBytes || ps.RecvBytes != wantBytes {
			t.Errorf("rank %d: %d/%d bytes, want %d", ps.Rank, ps.SendBytes, ps.RecvBytes, wantBytes)
		}
	}
}

// TestPortsOptionValidation: Ports and FlushThreshold are mutually
// exclusive, and a negative port count is rejected before the run
// starts.
func TestPortsOptionValidation(t *testing.T) {
	m, err := NewMachine(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Run(Options{Ports: 2, FlushThreshold: 512}, func(pr *Proc) {}); err == nil {
		t.Error("Ports+FlushThreshold accepted")
	}
	if _, err := m.Run(Options{Ports: -1}, func(pr *Proc) {}); err == nil {
		t.Error("negative Ports accepted")
	}
	if _, err := m.Run(Options{Ports: 2}, func(pr *Proc) {}); err != nil {
		t.Errorf("valid Ports run failed: %v", err)
	}
}

// TestPlannedLinkValidation: out-of-range links are a setup error; self
// links and duplicates are tolerated and collapse away.
func TestPlannedLinkValidation(t *testing.T) {
	if _, err := NewMachine(4, Options{Links: [][2]int{{0, 4}}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	m, err := NewMachine(4, Options{Links: [][2]int{{1, 1}, {0, 1}, {1, 0}, {0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.PlannedPairs(); got != 1 {
		t.Errorf("planned %d pairs, want 1 (self links and duplicates collapse)", got)
	}
}

// flakyWriteConn fails every write after the first (the handshake), so
// a k-ported driver's first frame write errors.
type flakyWriteConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *flakyWriteConn) Write(b []byte) (int, error) {
	if c.writes.Add(1) > 1 {
		return 0, errors.New("injected link failure")
	}
	return c.Conn.Write(b)
}

// TestKPortedDriverFailureAttribution: a write failure on a driver
// goroutine must surface as the owning rank's root-cause error — naming
// the link driver — not as an anonymous unwind, and the machine must
// survive into the next run via reconnect.
func TestKPortedDriverFailureAttribution(t *testing.T) {
	var dials atomic.Int64
	m, err := NewMachine(2, Options{
		Dial: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			// Only the first mesh build gets the flaky conn; the rebuild
			// dials clean ones.
			if dials.Add(1) == 1 {
				return &flakyWriteConn{Conn: c}, nil
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Run(Options{Ports: 1, RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		// Rank 1 dialed, so rank 1's writes ride the flaky conn.
		if pr.Rank() == 1 {
			pr.Send(0, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 1, Data: []byte("x")}}})
		} else {
			pr.Recv(1)
		}
	})
	if err == nil {
		t.Fatal("driver write failure did not fail the run")
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "link driver") {
		t.Errorf("error %q does not attribute the failing link driver on rank 1", err)
	}
	if _, err := m.Run(Options{RecvTimeout: 10 * time.Second}, func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: []byte("y")}}})
		} else {
			pr.Recv(0)
		}
	}); err != nil {
		t.Fatalf("machine did not survive the driver failure: %v", err)
	}
	if got := m.Reconnects(); got != 1 {
		t.Errorf("Reconnects() = %d, want 1", got)
	}
}

// TestSparseBroadcastP128 is the scale gate: a 128-rank broadcast over
// a sparse dissemination-pattern mesh — a scale where the full
// p(p−1)/2 = 8128-connection mesh made real-byte runs impractical. The
// binomial tree's hops are exactly the planned links, so no lazy dial
// fires and setup opens ≤ the route count.
func TestSparseBroadcastP128(t *testing.T) {
	if testing.Short() {
		t.Skip("128-rank socket machine")
	}
	runSparseBroadcast(t, 128)
}

// TestSparseBroadcastP64Smoke is the CI smoke job's entry point: the
// same sparse broadcast at p=64.
func TestSparseBroadcastP64Smoke(t *testing.T) {
	runSparseBroadcast(t, 64)
}

func runSparseBroadcast(t *testing.T, p int) {
	t.Helper()
	links := disseminationLinks(p)
	m, err := NewMachine(p, Options{Links: links})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	routes := len(links)
	if opened := m.ConnsOpened(); opened > routes {
		t.Fatalf("sparse setup opened %d conns, more than the %d routes", opened, routes)
	}
	if opened, full := m.ConnsOpened(), p*(p-1)/2; opened >= full {
		t.Fatalf("sparse setup opened %d conns, not sparse vs the %d full mesh", opened, full)
	}
	payload := bytes.Repeat([]byte("s2p"), 341) // ~1KiB
	got := make([][]byte, p)
	if _, err := m.Run(Options{RecvTimeout: 30 * time.Second}, func(pr *Proc) {
		// Recursive-doubling broadcast from rank 0: after the round with
		// step k, every rank < 2k holds the payload. Each hop r → r+k is
		// a dissemination link, so the whole tree rides planned conns.
		r := pr.Rank()
		var data []byte
		if r == 0 {
			data = payload
		}
		for k := 1; k < p; k <<= 1 {
			switch {
			case r < k:
				if r+k < p {
					pr.Send(r+k, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: data}}})
				}
			case r < 2*k:
				in := pr.Recv(r - k)
				data = append([]byte(nil), in.Parts[0].Data...)
			}
		}
		got[r] = data
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(got[r], payload) {
			t.Fatalf("rank %d did not receive the broadcast (%d bytes)", r, len(got[r]))
		}
	}
	if opened := m.ConnsOpened(); opened > routes {
		t.Errorf("broadcast needed lazy dials: %d conns opened, routes %d", opened, routes)
	}
}
