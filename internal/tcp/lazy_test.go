package tcp

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
)

// lazyMsg is the one-part payload the lazy-dial tests push over
// unplanned links.
func lazyMsg(origin int) comm.Message {
	return comm.Message{Tag: 1, Parts: []comm.Part{{Origin: origin, Data: []byte("lazy")}}}
}

// TestLazyDialHonorsRunContext: a lazy dial must give up as soon as the
// run's context is canceled. Historically ensureLink dialed with no
// context at all (dialRetry(nil, ...)), so a black-holed peer pinned
// the sending rank — and with it the whole run — for the full OS
// connect timeout even after the caller had canceled.
func TestLazyDialHonorsRunContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)

	m, err := NewMachine(2, Options{
		Links: [][2]int{}, // plan nothing: the one send below must lazy-dial
		Dial: func(addr string) (net.Conn, error) {
			<-release // a black-holed peer: connect never completes
			return nil, errors.New("released")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.Run(Options{Context: ctx, RecvTimeout: time.Minute}, func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, lazyMsg(0)) // blocks in the lazy dial
		} else {
			pr.Recv(0)
		}
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run over a black-holed lazy link succeeded")
	}
	// Prompt means "the cancel propagated", not "the dial timed out":
	// well under both handshakeTimeout and any OS connect timeout.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled run took %v to return, want prompt unwind", elapsed)
	}
}

// TestLazyDialPerPairSerialization: lazy dials are serialized per
// unordered pair, not machine-wide. Historically ensureLink held one
// machine lock across the dial and the endpoint wait, so a single
// unreachable peer head-of-line-blocked every other lazy dial; here a
// healthy 0–1 lazy dial must complete while the 2–3 dial is stuck in a
// black hole.
func TestLazyDialPerPairSerialization(t *testing.T) {
	const p = 4
	release := make(chan struct{})
	defer close(release)
	stuckStarted := make(chan struct{})
	var blackholed atomic.Value // rank 3's listener address, set post-setup
	blackholed.Store("")
	var stuckOnce atomic.Bool

	m, err := NewMachine(p, Options{
		Links: [][2]int{}, // plan nothing: every send below lazy-dials
		Dial: func(addr string) (net.Conn, error) {
			if addr == blackholed.Load().(string) {
				if stuckOnce.CompareAndSwap(false, true) {
					close(stuckStarted)
				}
				<-release
				return nil, errors.New("released")
			}
			return net.Dial("tcp", addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	blackholed.Store(m.LocalAddrs()[3])

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	healthyDone := make(chan struct{})
	go func() {
		m.Run(Options{Context: ctx, RecvTimeout: time.Minute}, func(pr *Proc) {
			switch pr.Rank() {
			case 2:
				pr.Send(3, lazyMsg(2)) // stuck in the black-holed dial
			case 3:
				pr.Recv(2)
			case 0:
				// Dial only once the 2–3 dial is provably in flight, so a
				// machine-wide lock would deterministically block us.
				<-stuckStarted
				pr.Send(1, lazyMsg(0))
			case 1:
				pr.Recv(0)
				close(healthyDone)
			}
		})
	}()

	select {
	case <-healthyDone:
		// The healthy pair's lazy dial completed while 2–3 was stuck.
	case <-time.After(10 * time.Second):
		t.Fatal("healthy 0-1 lazy dial blocked behind the black-holed 2-3 dial")
	}
	cancel() // unwind the stuck pair; Run's error is the context's
}
