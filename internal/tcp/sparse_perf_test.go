package tcp

import (
	"testing"
	"time"
)

// disseminationLinks is the directed link set of the engine's own
// dissemination barrier at p ranks — a representative p·⌈log₂p⌉ sparse
// schedule (every rank sends to rank+2^j mod p).
func disseminationLinks(p int) [][2]int {
	var links [][2]int
	for k := 1; k < p; k <<= 1 {
		for i := 0; i < p; i++ {
			links = append(links, [2]int{i, (i + k) % p})
		}
	}
	return links
}

// BenchmarkSparseSetupP64 measures standing up (and tearing down) a
// p=64 machine over a dissemination-pattern sparse link plan — the
// cold-start cost the sparse mesh exists to shrink. Compare with
// BenchmarkFullMeshSetupP64: the sparse plan opens ~p·log p
// connections instead of p(p−1)/2.
func BenchmarkSparseSetupP64(b *testing.B) {
	links := disseminationLinks(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(64, Options{Links: links})
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// BenchmarkFullMeshSetupP64 is the dense baseline for
// BenchmarkSparseSetupP64: the historical full O(p²) mesh at the same
// scale.
func BenchmarkFullMeshSetupP64(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(64, Options{})
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// benchKPort runs the paced fan-out harness (see kport.go) with the
// given port count; the KPort benchmark pair records the single- vs
// multi-ported frame rates that figSparseMesh gates on.
func benchKPort(b *testing.B, ports int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate, err := MeasureKPortRate(ports, 4, 512, 100, 60*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		if rate <= 0 {
			b.Fatalf("non-positive rate %v", rate)
		}
	}
}

func BenchmarkKPortFanoutPorts1(b *testing.B) { benchKPort(b, 1) }

func BenchmarkKPortFanoutPorts4(b *testing.B) { benchKPort(b, 4) }
