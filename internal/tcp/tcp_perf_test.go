package tcp

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"repro/internal/comm"
)

// drainedConn returns a real loopback TCP connection whose far end is
// being drained, so writes never block on a full kernel buffer, plus a
// cleanup that closes both ends and joins the drain goroutine.
func drainedConn(tb testing.TB) (net.Conn, func()) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- acceptResult{c, err}
	}()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		tb.Fatal(err)
	}
	ar := <-accepted
	ln.Close()
	if ar.err != nil {
		wc.Close()
		tb.Fatal(ar.err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64<<10)
		for {
			if _, err := ar.conn.Read(buf); err != nil {
				return
			}
		}
	}()
	return wc, func() {
		wc.Close()
		ar.conn.Close()
		wg.Wait()
	}
}

func smallMsg() comm.Message {
	return comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: make([]byte, 64)}}}
}

func largeMsg() comm.Message {
	parts := make([]comm.Part, 8)
	for i := range parts {
		parts[i] = comm.Part{Origin: i, Data: make([]byte, 8<<10)}
	}
	return comm.Message{Tag: 1, Parts: parts}
}

// BenchmarkFrameWriteSmall is the steady-state send path for a small
// single-part frame: contiguous encode, one Write. Must report 0 allocs/op.
func BenchmarkFrameWriteSmall(b *testing.B) {
	conn, cleanup := drainedConn(b)
	defer cleanup()
	m := smallMsg()
	sc := getScratch()
	defer putScratch(sc)
	b.ReportAllocs()
	b.SetBytes(int64(frameWireSize(m)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeFrameTo(conn, 1, m, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameWriteVectored is the steady-state send path for a large
// multi-part frame: gather list, one writev. Must report 0 allocs/op —
// payloads are referenced in place, never recopied.
func BenchmarkFrameWriteVectored(b *testing.B) {
	conn, cleanup := drainedConn(b)
	defer cleanup()
	m := largeMsg()
	sc := getScratch()
	defer putScratch(sc)
	b.ReportAllocs()
	b.SetBytes(int64(frameWireSize(m)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeFrameTo(conn, 1, m, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameWriteLegacy is the pre-arena baseline (2k+1 writes,
// heap-allocated headers), kept so BENCH_tcp.json records the comparison
// the figTCPHotpath experiment gates on.
func BenchmarkFrameWriteLegacy(b *testing.B) {
	conn, cleanup := drainedConn(b)
	defer cleanup()
	m := smallMsg()
	b.ReportAllocs()
	b.SetBytes(int64(frameWireSize(m)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeFrameSeq(conn, 1, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRead measures the pooled decode path against a pre-
// encoded in-memory stream (recycling each message like the stale-drop
// path does, so the arena is exercised end to end).
func BenchmarkFrameRead(b *testing.B) {
	m := largeMsg()
	one := appendFrame(nil, 1, m)
	stream := bytes.NewReader(nil)
	rd := &frameReader{r: stream, src: 0, dst: 1}
	b.ReportAllocs()
	b.SetBytes(int64(len(one)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset(one)
		fr, _, err := rd.read()
		if err != nil {
			b.Fatal(err)
		}
		recycleMessage(fr)
	}
}

// BenchmarkSendRecvSteadyStateTCP measures the full engine hot path —
// Send through the pooled writer, pump decode into arena buffers,
// blocking Recv — as b.N ping-pong rounds over one warm 2-rank mesh.
// The send side is allocation-free; the remaining per-round allocations
// are the delivered payload buffers themselves, which ownership handoff
// deliberately leaves with the receiver (arena.go) — only undelivered
// frames recycle.
func BenchmarkSendRecvSteadyStateTCP(b *testing.B) {
	m, err := NewMachine(2, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	msg := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: make([]byte, 64)}}}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := m.Run(Options{}, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.Send(1, msg)
				p.Recv(1)
			} else {
				p.Recv(0)
				p.Send(0, msg)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// TestFrameWriteAllocationFree asserts the tentpole's 0-allocs claim
// directly: steady-state frame writes — small/contiguous and
// large/vectored — allocate nothing once the scratch is warm.
func TestFrameWriteAllocationFree(t *testing.T) {
	conn, cleanup := drainedConn(t)
	defer cleanup()
	sc := getScratch()
	defer putScratch(sc)
	for _, tc := range []struct {
		name string
		m    comm.Message
	}{
		{"small-contiguous", smallMsg()},
		{"large-vectored", largeMsg()},
	} {
		write := func() {
			if err := writeFrameTo(conn, 1, tc.m, sc); err != nil {
				t.Fatal(err)
			}
		}
		write() // warm the scratch buffers
		if n := testing.AllocsPerRun(200, write); n != 0 {
			t.Errorf("%s: %v allocs per frame write, want 0", tc.name, n)
		}
	}
}

// TestReadFrameReusesArenaBuffers pins the receive-side pooling: decode
// and recycle in a loop must not allocate per frame once the pools are
// warm (modulo the pool's interface boxing, absorbed by the slack).
func TestReadFrameReusesArenaBuffers(t *testing.T) {
	m := comm.Message{Tag: 3, Parts: []comm.Part{
		{Origin: 0, Data: make([]byte, 1024)},
		{Origin: 1, Data: make([]byte, 100)},
	}}
	one := appendFrame(nil, 7, m)
	stream := bytes.NewReader(nil)
	rd := &frameReader{r: stream, src: 0, dst: 1}
	cycle := func() {
		stream.Reset(one)
		fr, _, err := rd.read()
		if err != nil {
			t.Fatal(err)
		}
		recycleMessage(fr)
	}
	cycle()
	// Decoding allocates payloads and a parts slice only when the pools
	// miss; a warm decode-recycle cycle costs at most the sync.Pool
	// bookkeeping (interface boxing on Put), never fresh buffers.
	if n := testing.AllocsPerRun(200, cycle); n > 3 {
		t.Errorf("%v allocs per decode-recycle cycle, want <= 3", n)
	}
}

// TestBatchedRunMatchesUnbatched runs the same traffic with and without
// FlushThreshold batching; delivered bundles must be identical and the
// batched run must stay deadlock-free through the send-before-receive
// exchange pattern and barriers.
func TestBatchedRunMatchesUnbatched(t *testing.T) {
	const p = 4
	run := func(opts Options) [][]byte {
		m, err := NewMachine(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		out := make([][]byte, p)
		if _, err := m.Run(opts, func(pr *Proc) {
			// Every rank exchanges with every other rank (send before
			// receive on both sides), then a barrier, then a ring pass.
			var acc []byte
			for peer := 0; peer < p; peer++ {
				if peer == pr.Rank() {
					continue
				}
				got := comm.Exchange(pr, peer, comm.Message{
					Tag: 1, Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{byte(pr.Rank())}}},
				})
				acc = append(acc, got.Parts[0].Data...)
			}
			pr.Barrier()
			next, prev := (pr.Rank()+1)%p, (pr.Rank()+p-1)%p
			pr.Send(next, comm.Message{Tag: 2, Parts: []comm.Part{{Origin: pr.Rank(), Data: acc}}})
			m := pr.Recv(prev)
			out[pr.Rank()] = append([]byte(nil), m.Parts[0].Data...)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(Options{})
	batched := run(Options{FlushThreshold: 512})
	for r := range plain {
		if !bytes.Equal(plain[r], batched[r]) {
			t.Errorf("rank %d: batched run delivered %v, unbatched %v", r, batched[r], plain[r])
		}
	}
}

// TestMeasureFrameRateModes smoke-tests the figTCPHotpath measurement
// harness: every mode must move its frames and report a positive rate.
func TestMeasureFrameRateModes(t *testing.T) {
	for _, mode := range []string{FrameModeLegacy, FrameModeVectored, FrameModeBatched} {
		rate, err := MeasureFrameRate(mode, 64, 2000, 4096)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rate <= 0 {
			t.Fatalf("%s: non-positive frame rate %v", mode, rate)
		}
	}
	if _, err := MeasureFrameRate("bogus", 64, 10, 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
