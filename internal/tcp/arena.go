package tcp

// The buffer arena behind the frame hot path: sync.Pool-backed storage
// for send-side frame scratch (frame headers, part headers, the small-
// frame copy buffer and the writev gather list) and for receive-side
// payload buffers and part slices. The arena is package-level and shared
// across runs and machines — a sync.Pool already provides per-P caching
// and GC-driven draining, so one pool per size class is the whole policy.
//
// Ownership discipline (the part that keeps pooling safe):
//
//   - Send side: a frameScratch is only ever held across one writeFrameTo
//     call under the per-destination write lock, so nothing it references
//     outlives the write. putScratch drops payload references before the
//     scratch re-enters the pool.
//   - Receive side: the reader pumps decode every frame into arena
//     buffers, then hand ownership into the inbox's comm.Queue. A frame
//     that is DELIVERED to algorithm code leaves the arena for good — the
//     consumer owns the payload (result bundles keep it), the queue's
//     slot-zeroing drops the queue's reference, and the GC reclaims it
//     when the consumer drops it. Only frames that are never delivered —
//     stale-epoch drops in the pumps, mailbox leftovers wiped by the
//     between-runs reset — are recycled back into the arena, which is
//     what keeps chaos runs and aborted epochs from churning the heap.
//     Self-sends are never recycled: their payloads are caller-owned.

import (
	"net"
	"sync"

	"repro/internal/comm"
)

const (
	frameHdrLen = 12
	partHdrLen  = 8

	// payloadMinShift..payloadMaxShift bound the pooled payload size
	// classes (64 B .. 1 MiB, powers of two). Larger payloads are plain
	// allocations: they are rare, and parking multi-megabyte buffers in
	// a pool pins memory for no measured win.
	payloadMinShift = 6
	payloadMaxShift = 20

	// partsMaxShift bounds the pooled part-slice capacity classes
	// (1 .. 1024 parts). A frame can carry up to maxParts parts, but
	// bundles that large are read-side rarities; they fall back to make.
	partsMaxShift = 10
)

// frameScratch is the send-side working set of one frame write: a
// contiguous encode buffer for small frames and batches, the header
// bytes backing a gather list, and the gather list itself. It cycles
// through scratchPool once per frame write.
type frameScratch struct {
	flat []byte      // contiguous encoding of a small frame
	hdr  []byte      // frame + part header bytes backing bufs
	bufs net.Buffers // gather list: hdr, then (part hdr, payload) pairs
	// vec is the consumable view handed to net.Buffers.WriteTo, which
	// advances and mutates it in place. It shares bufs's backing array;
	// keeping it a field (instead of a local) stops the slice header
	// from escaping to the heap on every vectored write.
	vec net.Buffers
}

var scratchPool = sync.Pool{New: func() any { return new(frameScratch) }}

func getScratch() *frameScratch { return scratchPool.Get().(*frameScratch) }

func putScratch(sc *frameScratch) {
	// Drop payload references so a pooled scratch never retains message
	// bytes (the flat and hdr buffers hold only our own header/copy
	// storage and are kept for reuse).
	for i := range sc.bufs {
		sc.bufs[i] = nil
	}
	sc.bufs = sc.bufs[:0]
	sc.vec = nil
	scratchPool.Put(sc)
}

// payloadPools[i] holds *[]byte buffers of capacity 1<<(payloadMinShift+i).
var payloadPools [payloadMaxShift - payloadMinShift + 1]sync.Pool

// payloadClass returns the pool index for a payload of n bytes, or -1
// when n is outside the pooled classes.
func payloadClass(n int) int {
	if n > 1<<payloadMaxShift {
		return -1
	}
	c := 0
	for 1<<(payloadMinShift+c) < n {
		c++
	}
	return c
}

// sharedEmpty keeps zero-length parts non-nil (Part.Len distinguishes
// nil Data from empty) without allocating.
var sharedEmpty = make([]byte, 0)

// getPayload returns an arena buffer of length n.
func getPayload(n int) []byte {
	if n == 0 {
		return sharedEmpty
	}
	c := payloadClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if bp, ok := payloadPools[c].Get().(*[]byte); ok {
		return (*bp)[:n]
	}
	return make([]byte, n, 1<<(payloadMinShift+c))
}

// putPayload returns a buffer to its size class. Buffers of unpooled
// sizes (including resliced ones that no longer match a class) are left
// to the GC.
func putPayload(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	cl := payloadClass(c)
	if cl < 0 || 1<<(payloadMinShift+cl) != c {
		return
	}
	b = b[:0]
	payloadPools[cl].Put(&b)
}

// partsPools[i] holds *[]comm.Part slices of capacity 1<<i.
var partsPools [partsMaxShift + 1]sync.Pool

func partsClass(n int) int {
	if n > 1<<partsMaxShift {
		return -1
	}
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// getParts returns an empty part slice with room for n parts (more may
// be appended; growth is a plain allocation). n == 0 returns nil — a
// barrier frame carries no parts.
func getParts(n int) []comm.Part {
	if n == 0 {
		return nil
	}
	c := partsClass(n)
	if c < 0 {
		// Unpooled: cap the eager allocation; the decode loop appends as
		// bytes actually arrive, so a lying header cannot force a huge
		// up-front slice.
		if n > 1<<partsMaxShift {
			n = 1 << partsMaxShift
		}
		return make([]comm.Part, 0, n)
	}
	if sp, ok := partsPools[c].Get().(*[]comm.Part); ok {
		return (*sp)[:0]
	}
	return make([]comm.Part, 0, 1<<c)
}

func putParts(s []comm.Part) {
	c := cap(s)
	if c == 0 {
		return
	}
	cl := partsClass(c)
	if cl < 0 || 1<<cl != c {
		return
	}
	// Zero the occupied slots so pooled slices never retain payloads.
	s = s[:cap(s)]
	for i := range s {
		s[i] = comm.Part{}
	}
	partsPools[cl].Put(&s)
}

// recycleMessage returns a pump-decoded message's arena storage (payload
// buffers and part slice) to the pools. It must only be called for
// messages that were never delivered to algorithm code: stale-epoch
// drops and between-runs mailbox leftovers. Messages that came from
// Send (self-sends) are caller-owned and must never pass through here.
func recycleMessage(m comm.Message) {
	for _, p := range m.Parts {
		if len(p.Data) > 0 {
			putPayload(p.Data)
		}
	}
	putParts(m.Parts)
}
