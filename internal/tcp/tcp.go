// Package tcp executes an algorithm over real TCP sockets: every
// processor owns a loopback listener, the machine is fully connected with
// one TCP connection per processor pair, and messages travel as
// length-prefixed frames. It is the distributed-transport engine of the
// repro hint ("channels/gRPC approximation" of MPI): where internal/live
// approximates message passing with in-process mailboxes, this engine
// moves every byte through the kernel's network stack, exercising the
// same algorithm code over a transport with real serialization.
//
// Semantics match the other engines: blocking Send/Recv with FIFO order
// per (sender, receiver) pair, and a Barrier (dissemination barrier over
// the same transport). Run sets the machine up, executes the algorithm on
// every processor, and tears all connections down.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
)

// frame layout: [tag int32][nparts int32] then per part
// [origin int32][len int32][payload]. The sender is identified by the
// connection; a per-frame magic is unnecessary on an owned socket.

const (
	// barrierTag marks dissemination-barrier frames.
	barrierTag = -1
	// maxPartLen guards against corrupt length prefixes.
	maxPartLen = 1 << 30
)

func writeFrame(w io.Writer, m comm.Message) error {
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(len(m.Parts))))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ph := make([]byte, 8)
	for _, part := range m.Parts {
		binary.BigEndian.PutUint32(ph[0:], uint32(int32(part.Origin)))
		binary.BigEndian.PutUint32(ph[4:], uint32(int32(len(part.Data))))
		if _, err := w.Write(ph); err != nil {
			return err
		}
		if _, err := w.Write(part.Data); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (comm.Message, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return comm.Message{}, err
	}
	tag := int(int32(binary.BigEndian.Uint32(hdr[0:])))
	nparts := int(int32(binary.BigEndian.Uint32(hdr[4:])))
	if nparts < 0 || nparts > 1<<20 {
		return comm.Message{}, fmt.Errorf("tcp: corrupt frame: %d parts", nparts)
	}
	m := comm.Message{Tag: tag, Parts: make([]comm.Part, nparts)}
	ph := make([]byte, 8)
	for i := 0; i < nparts; i++ {
		if _, err := io.ReadFull(r, ph); err != nil {
			return comm.Message{}, err
		}
		origin := int(int32(binary.BigEndian.Uint32(ph[0:])))
		n := int(int32(binary.BigEndian.Uint32(ph[4:])))
		if n < 0 || n > maxPartLen {
			return comm.Message{}, fmt.Errorf("tcp: corrupt frame: part of %d bytes", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return comm.Message{}, err
		}
		m.Parts[i] = comm.Part{Origin: origin, Data: data}
	}
	return m, nil
}

// inbox is one processor's per-source message queues.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	boxes [][]comm.Message
	dead  error
}

func (ib *inbox) push(src int, m comm.Message) {
	ib.mu.Lock()
	ib.boxes[src] = append(ib.boxes[src], m)
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.dead == nil {
		ib.dead = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) pop(src int) (comm.Message, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.boxes[src]) == 0 {
		if ib.dead != nil {
			return comm.Message{}, ib.dead
		}
		ib.cond.Wait()
	}
	m := ib.boxes[src][0]
	ib.boxes[src] = ib.boxes[src][1:]
	return m, nil
}

// Proc is one processor's handle on the TCP machine. It implements
// comm.Comm; methods must only be called from the algorithm goroutine.
type Proc struct {
	rank  int
	size  int
	conns []net.Conn // conns[peer], nil at own rank
	wmu   []sync.Mutex
	in    *inbox

	sends, recvs         int
	sendBytes, recvBytes int64
}

var _ comm.Comm = (*Proc)(nil)

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.size }

// Send implements comm.Comm: frame the message onto the pair's socket.
// Self-sends short-circuit through the local inbox.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.size {
		panic(fmt.Sprintf("tcp: rank %d sends to invalid rank %d", p.rank, dst))
	}
	p.sends++
	p.sendBytes += int64(m.Len())
	if dst == p.rank {
		p.in.push(p.rank, m)
		return
	}
	p.wmu[dst].Lock()
	err := writeFrame(p.conns[dst], m)
	p.wmu[dst].Unlock()
	if err != nil {
		panic(fmt.Errorf("tcp: rank %d send to %d: %w", p.rank, dst, err))
	}
}

// Recv implements comm.Comm.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.size {
		panic(fmt.Sprintf("tcp: rank %d receives from invalid rank %d", p.rank, src))
	}
	m, err := p.in.pop(src)
	if err != nil {
		panic(fmt.Errorf("tcp: rank %d recv from %d: %w", p.rank, src, err))
	}
	p.recvs++
	p.recvBytes += int64(m.Len())
	return m
}

// Barrier implements comm.Comm as a dissemination barrier over the wire:
// ⌈log2 p⌉ rounds of empty frames.
func (p *Proc) Barrier() {
	for k := 1; k < p.size; k <<= 1 {
		p.Send((p.rank+k)%p.size, comm.Message{Tag: barrierTag})
		p.Recv((p.rank - k + p.size) % p.size)
	}
}

// ProcStats counts one processor's operations.
type ProcStats struct {
	Rank      int
	Sends     int
	Recvs     int
	SendBytes int64
	RecvBytes int64
}

// Result is the outcome of a TCP run.
type Result struct {
	// Elapsed is the wall-clock duration of the algorithm phase
	// (connection setup excluded).
	Elapsed time.Duration
	// Procs holds per-processor operation counts.
	Procs []ProcStats
}

// Run builds a fully connected loopback TCP machine of p processors,
// executes fn on each, and tears the machine down. A panic on any
// processor aborts the run and is returned as an error.
func Run(p int, fn func(*Proc)) (*Result, error) {
	if p <= 0 {
		return nil, fmt.Errorf("tcp: non-positive processor count %d", p)
	}
	procs, cleanup, err := setup(p)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	errs := make([]error, p)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p; i++ {
		pr := procs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[pr.rank] = fmt.Errorf("tcp: rank %d: %v", pr.rank, r)
					// Fail fast: poison every inbox so blocked peers
					// unwind instead of hanging on a dead processor.
					for _, other := range procs {
						other.in.fail(fmt.Errorf("machine aborted by rank %d", pr.rank))
					}
				}
			}()
			fn(pr)
		}()
	}
	wg.Wait()
	res := &Result{Elapsed: time.Since(start), Procs: make([]ProcStats, p)}
	for i, pr := range procs {
		res.Procs[i] = ProcStats{Rank: i, Sends: pr.sends, Recvs: pr.recvs, SendBytes: pr.sendBytes, RecvBytes: pr.recvBytes}
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}

// setup listens on p loopback ports and builds the full mesh of
// connections: rank i dials every rank j < i; the accepting side learns
// the dialer's rank from a one-byte-frame handshake.
func setup(p int) ([]*Proc, func(), error) {
	listeners := make([]net.Listener, p)
	procs := make([]*Proc, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("tcp: listen for rank %d: %w", i, err)
		}
		listeners[i] = ln
		in := &inbox{boxes: make([][]comm.Message, p)}
		in.cond = sync.NewCond(&in.mu)
		procs[i] = &Proc{rank: i, size: p, conns: make([]net.Conn, p), wmu: make([]sync.Mutex, p), in: in}
	}
	cleanup := func() {
		for _, ln := range listeners {
			ln.Close()
		}
		for _, pr := range procs {
			for _, c := range pr.conns {
				if c != nil {
					c.Close()
				}
			}
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p*p)
	// Accept side: rank j accepts p-1-j connections (from all i > j).
	for j := 0; j < p; j++ {
		expect := p - 1 - j
		if expect == 0 {
			continue
		}
		wg.Add(1)
		go func(j, expect int) {
			defer wg.Done()
			for k := 0; k < expect; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					errCh <- fmt.Errorf("tcp: accept at rank %d: %w", j, err)
					return
				}
				var hs [4]byte
				if _, err := io.ReadFull(conn, hs[:]); err != nil {
					errCh <- fmt.Errorf("tcp: handshake at rank %d: %w", j, err)
					return
				}
				peer := int(int32(binary.BigEndian.Uint32(hs[:])))
				if peer <= j || peer >= p {
					errCh <- fmt.Errorf("tcp: rank %d handshake from invalid peer %d", j, peer)
					return
				}
				procs[j].conns[peer] = conn
			}
		}(j, expect)
	}
	// Dial side: rank i dials every j < i and announces itself.
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < i; j++ {
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					errCh <- fmt.Errorf("tcp: rank %d dial %d: %w", i, j, err)
					return
				}
				var hs [4]byte
				binary.BigEndian.PutUint32(hs[:], uint32(int32(i)))
				if _, err := conn.Write(hs[:]); err != nil {
					errCh <- fmt.Errorf("tcp: rank %d handshake to %d: %w", i, j, err)
					return
				}
				procs[i].conns[j] = conn
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		cleanup()
		return nil, nil, err
	default:
	}

	// Reader pumps: one goroutine per connection end decodes frames into
	// the owner's inbox. They exit when the connection closes at
	// teardown.
	for i := 0; i < p; i++ {
		pr := procs[i]
		for peer, conn := range pr.conns {
			if conn == nil {
				continue
			}
			go func(pr *Proc, peer int, conn net.Conn) {
				for {
					m, err := readFrame(conn)
					if err != nil {
						// Normal at teardown; poison only if the
						// machine is still live (pop handles nil dead).
						pr.in.fail(fmt.Errorf("tcp: connection %d→%d: %w", peer, pr.rank, err))
						return
					}
					pr.in.push(peer, m)
				}
			}(pr, peer, conn)
		}
	}
	return procs, cleanup, nil
}
