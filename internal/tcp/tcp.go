// Package tcp executes an algorithm over real TCP sockets: every
// processor owns a loopback listener, the machine is fully connected with
// one TCP connection per processor pair, and messages travel as
// length-prefixed frames. It is the distributed-transport engine of the
// repro hint ("channels/gRPC approximation" of MPI): where internal/live
// approximates message passing with in-process mailboxes, this engine
// moves every byte through the kernel's network stack, exercising the
// same algorithm code over a transport with real serialization.
//
// Semantics match the other engines: blocking Send/Recv with FIFO order
// per (sender, receiver) pair, and a Barrier (dissemination barrier over
// the same transport). Barrier frames travel on the same sockets but are
// demultiplexed by tag and metered separately, so ProcStats counts agree
// with the live engine for the same algorithm. Run sets the machine up,
// executes the algorithm on every processor, and tears all connections
// down.
//
// # Failure semantics
//
// Run never hangs when a deadline is configured; every failure becomes a
// returned error:
//
//   - A processor panics: the machine aborts, all connections are closed,
//     every peer blocked in Recv or Barrier unwinds, and Run reports the
//     panicking rank as the root cause.
//   - A connection fails mid-run: the affected receiver reports the
//     broken link as the root cause; everyone else unwinds. A connection
//     closing during post-run teardown is not an error.
//   - A blocking Recv or Barrier wait exceeds Options.RecvTimeout: the
//     stalled rank aborts the run with an error naming itself and the
//     awaited peer.
//   - Options.Context is canceled or Options.RunTimeout elapses: the run
//     aborts with the cancellation cause.
//   - A transient dial failure during setup is retried with exponential
//     backoff (Options.DialAttempts / DialBackoff) before it is fatal.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/obs"
)

// frame layout: [tag int32][nparts int32] then per part
// [origin int32][len int32][payload]. The sender is identified by the
// connection; a per-frame magic is unnecessary on an owned socket.

const (
	// barrierTag marks dissemination-barrier frames. The value is
	// reserved: Send rejects algorithm messages carrying it, so barrier
	// and data traffic can never be confused even when frames from the
	// same peer interleave. (Algorithm code uses small tags such as the
	// -1 of comm.Sub barriers, which are ordinary data here.)
	barrierTag = math.MinInt32
	// maxPartLen guards against corrupt length prefixes.
	maxPartLen = 1 << 30

	defaultDialAttempts = 3
	defaultDialBackoff  = 10 * time.Millisecond
	// handshakeTimeout bounds the rank-announcement read so a dialer
	// dying between connect and handshake cannot hang setup.
	handshakeTimeout = 10 * time.Second
)

// Options harden a run. The zero value preserves the historical
// behaviour (no deadlines, no cancellation, default dial retry).
type Options struct {
	// Context, when non-nil, cancels the run (setup backoff waits and
	// the algorithm phase): blocked processors unwind and Run returns
	// an error carrying ctx.Err().
	Context context.Context
	// RunTimeout, when positive, bounds the algorithm phase.
	RunTimeout time.Duration
	// RecvTimeout, when positive, bounds any single blocking Recv or
	// Barrier wait; exceeding it aborts the run with an error naming
	// the blocked rank and the peer it waited on.
	RecvTimeout time.Duration
	// DialAttempts is the number of connection attempts per peer during
	// setup (0 means the default of 3); transient dial failures are
	// retried with exponential backoff starting at DialBackoff (0 means
	// 10ms).
	DialAttempts int
	DialBackoff  time.Duration
	// Dial overrides the dialer (fault injection in tests); nil means
	// net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Tracer, when non-nil, receives an obs.Event for every send, recv,
	// wait (a receive that had to block) and barrier, stamped with
	// wall-clock nanoseconds since machine setup completed. The reader
	// pumps additionally stamp each data frame's arrival instant, so a
	// traced Recv carries Arrival — the time the frame reached this
	// rank's inbox — separating network latency from receiver lag.
	// Events arrive from all rank goroutines concurrently; the tracer
	// must be safe for concurrent use (trace.Recorder is).
	Tracer obs.Tracer
}

// abortError poisons inboxes when the machine fails. external marks
// context/deadline aborts (reported as root causes); otherwise the
// error is a secondary unwind of a failure first reported elsewhere.
type abortError struct {
	cause    error
	external bool
}

func (e *abortError) Error() string { return e.cause.Error() }
func (e *abortError) Unwrap() error { return e.cause }

func writeFrame(w io.Writer, m comm.Message) error {
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(len(m.Parts))))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ph := make([]byte, 8)
	for _, part := range m.Parts {
		binary.BigEndian.PutUint32(ph[0:], uint32(int32(part.Origin)))
		binary.BigEndian.PutUint32(ph[4:], uint32(int32(len(part.Data))))
		if _, err := w.Write(ph); err != nil {
			return err
		}
		if _, err := w.Write(part.Data); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (comm.Message, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return comm.Message{}, err
	}
	tag := int(int32(binary.BigEndian.Uint32(hdr[0:])))
	nparts := int(int32(binary.BigEndian.Uint32(hdr[4:])))
	if nparts < 0 || nparts > 1<<20 {
		return comm.Message{}, fmt.Errorf("tcp: corrupt frame: %d parts", nparts)
	}
	m := comm.Message{Tag: tag, Parts: make([]comm.Part, nparts)}
	ph := make([]byte, 8)
	for i := 0; i < nparts; i++ {
		if _, err := io.ReadFull(r, ph); err != nil {
			return comm.Message{}, err
		}
		origin := int(int32(binary.BigEndian.Uint32(ph[0:])))
		n := int(int32(binary.BigEndian.Uint32(ph[4:])))
		if n < 0 || n > maxPartLen {
			return comm.Message{}, fmt.Errorf("tcp: corrupt frame: part of %d bytes", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return comm.Message{}, err
		}
		m.Parts[i] = comm.Part{Origin: origin, Data: data}
	}
	return m, nil
}

// inbox is one processor's receive side: per-source data FIFOs plus
// per-source barrier-frame counters, under one lock. The reader pumps
// demultiplex by tag, so a queued barrier frame can never be handed to
// algorithm code (and vice versa).
type inbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	boxes    []comm.Queue
	barriers []int
	dead     error
	// arrivals mirrors boxes with per-source FIFO queues of frame-arrival
	// wall stamps (ns since machine start). Allocated only when the run
	// is traced; nil otherwise, so untraced runs pay nothing.
	arrivals []tsQueue
}

// tsQueue is a FIFO of int64 timestamps (slice plus head index; traced
// runs only, so the modest garbage of the grown slice is acceptable).
type tsQueue struct {
	buf  []int64
	head int
}

func (q *tsQueue) push(t int64) { q.buf = append(q.buf, t) }

func (q *tsQueue) pop() int64 {
	if q.head >= len(q.buf) {
		return 0
	}
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return t
}

// push enqueues a data frame from src; ts is the arrival wall stamp,
// recorded only on traced runs.
func (ib *inbox) push(src int, m comm.Message, ts int64) {
	ib.mu.Lock()
	ib.boxes[src].Push(m)
	if ib.arrivals != nil {
		ib.arrivals[src].push(ts)
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) pushBarrier(src int) {
	ib.mu.Lock()
	ib.barriers[src]++
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.dead == nil {
		ib.dead = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// waitLocked blocks (mu held) until ready, the inbox dies, or the
// timeout elapses.
func (ib *inbox) waitLocked(timeout time.Duration, ready func() bool) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			ib.mu.Lock()
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
		defer timer.Stop()
	}
	for !ready() {
		if ib.dead != nil {
			return ib.dead
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return fmt.Errorf("blocked %v (receive deadline exceeded)", timeout)
		}
		ib.cond.Wait()
	}
	return nil
}

// pop dequeues the next data frame from src, returning its arrival wall
// stamp (0 when the run is untraced) and whether the caller had to block.
func (ib *inbox) pop(src int, timeout time.Duration) (comm.Message, int64, bool, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	waited := ib.boxes[src].Len() == 0
	if err := ib.waitLocked(timeout, func() bool { return ib.boxes[src].Len() > 0 }); err != nil {
		return comm.Message{}, 0, waited, err
	}
	var ts int64
	if ib.arrivals != nil {
		ts = ib.arrivals[src].pop()
	}
	return ib.boxes[src].Pop(), ts, waited, nil
}

func (ib *inbox) popBarrier(src int, timeout time.Duration) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if err := ib.waitLocked(timeout, func() bool { return ib.barriers[src] > 0 }); err != nil {
		return err
	}
	ib.barriers[src]--
	return nil
}

// state is the machine-wide lifecycle shared by all processors and
// reader pumps: it distinguishes graceful post-run teardown (closed)
// from a mid-run abort, and owns the one-shot closing of connections.
type state struct {
	procs     []*Proc
	closed    atomic.Bool
	aborted   atomic.Bool
	closeOnce sync.Once
	tr        obs.Tracer
	start     time.Time // zero point of traced Wall stamps
}

// wall returns nanoseconds since the machine came up.
func (st *state) wall() int64 { return time.Since(st.start).Nanoseconds() }

// wallIfTraced returns wall() on traced runs and 0 otherwise, so untraced
// hot paths skip the clock read.
func (st *state) wallIfTraced() int64 {
	if st.tr == nil {
		return 0
	}
	return st.wall()
}

func (st *state) closeConns() {
	st.closeOnce.Do(func() {
		for _, pr := range st.procs {
			for _, c := range pr.conns {
				if c != nil {
					c.Close()
				}
			}
		}
	})
}

// abort fails every inbox with reason and closes all connections so
// blocked readers and writers unwind. The first abort wins.
func (st *state) abort(reason *abortError) {
	if st.aborted.Swap(true) {
		return
	}
	for _, pr := range st.procs {
		pr.in.fail(reason)
	}
	st.closeConns()
}

// Proc is one processor's handle on the TCP machine. It implements
// comm.Comm; methods must only be called from the algorithm goroutine.
type Proc struct {
	rank        int
	size        int
	conns       []net.Conn // conns[peer], nil at own rank
	wmu         []sync.Mutex
	in          *inbox
	st          *state
	recvTimeout time.Duration
	iter        int
	phase       string

	sends, recvs               int
	sendBytes, recvBytes       int64
	barrierSends, barrierRecvs int
}

var _ comm.Comm = (*Proc)(nil)
var _ comm.IterMarker = (*Proc)(nil)
var _ comm.PhaseMarker = (*Proc)(nil)

// BeginIter implements comm.IterMarker: traced events carry the iteration.
func (p *Proc) BeginIter(i int) { p.iter = i }

// BeginPhase implements comm.PhaseMarker: traced events carry the label.
func (p *Proc) BeginPhase(name string) { p.phase = name }

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.size }

// writeTo frames m onto the pair's socket, classifying failures: a
// write error after the machine aborted is a secondary unwind, not a
// root cause.
func (p *Proc) writeTo(dst int, m comm.Message) {
	p.wmu[dst].Lock()
	err := writeFrame(p.conns[dst], m)
	p.wmu[dst].Unlock()
	if err != nil {
		serr := fmt.Errorf("send to %d: %w", dst, err)
		if p.st.aborted.Load() {
			panic(&abortError{cause: serr})
		}
		panic(serr)
	}
}

// Send implements comm.Comm: frame the message onto the pair's socket.
// Self-sends short-circuit through the local inbox.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.size {
		panic(fmt.Sprintf("tcp: rank %d sends to invalid rank %d", p.rank, dst))
	}
	if m.Tag == barrierTag {
		panic(fmt.Sprintf("tcp: rank %d sends message with reserved barrier tag %d", p.rank, m.Tag))
	}
	p.sends++
	p.sendBytes += int64(m.Len())
	var t0 time.Time
	if p.st.tr != nil {
		t0 = time.Now()
	}
	if dst == p.rank {
		p.in.push(p.rank, m, p.st.wallIfTraced())
	} else {
		p.writeTo(dst, m)
	}
	if p.st.tr != nil {
		p.st.tr.Trace(obs.Event{
			Kind: obs.KindSend, Rank: p.rank, Peer: dst, Bytes: m.Len(),
			Parts: len(m.Parts), Tag: m.Tag, Wall: p.st.wall(),
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// Recv implements comm.Comm. With Options.RecvTimeout set, a wait
// exceeding the timeout aborts the run with an error naming this rank
// and src.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.size {
		panic(fmt.Sprintf("tcp: rank %d receives from invalid rank %d", p.rank, src))
	}
	var t0 time.Time
	if p.st.tr != nil {
		t0 = time.Now()
	}
	m, arrival, waited, err := p.in.pop(src, p.recvTimeout)
	if err != nil {
		panic(fmt.Errorf("recv from %d: %w", src, err))
	}
	p.recvs++
	p.recvBytes += int64(m.Len())
	if p.st.tr != nil {
		wall := p.st.wall()
		spent := network.Time(time.Since(t0).Nanoseconds())
		if waited {
			p.st.tr.Trace(obs.Event{
				Kind: obs.KindWait, Rank: p.rank, Peer: src, Wall: wall,
				Dur: spent, Arrival: network.Time(arrival), Iter: p.iter, Phase: p.phase,
			})
			spent = 0 // the blocked span is the wait slice, not the recv
		}
		p.st.tr.Trace(obs.Event{
			Kind: obs.KindRecv, Rank: p.rank, Peer: src, Bytes: m.Len(),
			Parts: len(m.Parts), Tag: m.Tag, Wall: wall, Dur: spent,
			Arrival: network.Time(arrival), Iter: p.iter, Phase: p.phase,
		})
	}
	return m
}

// Barrier implements comm.Comm as a dissemination barrier over the wire:
// ⌈log2 p⌉ rounds of empty frames. Barrier frames bypass Send/Recv and
// their counters — they are transport overhead, metered separately in
// ProcStats.BarrierSends/BarrierRecvs — so algorithm operation counts
// agree with the live engine.
func (p *Proc) Barrier() {
	var t0 time.Time
	if p.st.tr != nil {
		t0 = time.Now()
	}
	for k := 1; k < p.size; k <<= 1 {
		dst := (p.rank + k) % p.size
		src := (p.rank - k + p.size) % p.size
		p.barrierSends++
		p.writeTo(dst, comm.Message{Tag: barrierTag})
		if err := p.in.popBarrier(src, p.recvTimeout); err != nil {
			panic(fmt.Errorf("barrier recv from %d: %w", src, err))
		}
		p.barrierRecvs++
	}
	if p.st.tr != nil {
		p.st.tr.Trace(obs.Event{
			Kind: obs.KindBarrier, Rank: p.rank, Peer: -1, Wall: p.st.wall(),
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// ProcStats counts one processor's operations. Sends/Recvs and the byte
// counters cover algorithm traffic only; barrier dissemination frames
// are counted apart so stats agree with the live engine.
type ProcStats struct {
	Rank      int
	Sends     int
	Recvs     int
	SendBytes int64
	RecvBytes int64
	// BarrierSends/BarrierRecvs count dissemination-barrier frames
	// (transport overhead, excluded from the fields above).
	BarrierSends int
	BarrierRecvs int
}

// Result is the outcome of a TCP run.
type Result struct {
	// Elapsed is the wall-clock duration of the algorithm phase
	// (connection setup excluded).
	Elapsed time.Duration
	// Procs holds per-processor operation counts.
	Procs []ProcStats
}

// Run builds a fully connected loopback TCP machine of p processors,
// executes fn on each, and tears the machine down. A panic on any
// processor aborts the run and is returned as an error. Run applies no
// deadlines; see RunOpts.
func Run(p int, fn func(*Proc)) (*Result, error) {
	return RunOpts(p, Options{}, fn)
}

// RunOpts is Run with deadlines, cancellation and dial-retry control
// (see Options). With a RecvTimeout or RunTimeout configured, a hung or
// killed rank becomes a returned error naming the blocked rank and
// peer — never a silent hang.
func RunOpts(p int, opts Options, fn func(*Proc)) (*Result, error) {
	if p <= 0 {
		return nil, fmt.Errorf("tcp: non-positive processor count %d", p)
	}
	procs, st, cleanup, err := setup(p, opts)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// External abort sources: context cancellation and the whole-run
	// deadline.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	var ctxDone <-chan struct{}
	if opts.Context != nil {
		ctxDone = opts.Context.Done()
	}
	var runTimer *time.Timer
	var runTimeoutC <-chan time.Time
	if opts.RunTimeout > 0 {
		runTimer = time.NewTimer(opts.RunTimeout)
		runTimeoutC = runTimer.C
	}
	if ctxDone != nil || runTimeoutC != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctxDone:
				st.abort(&abortError{cause: fmt.Errorf("run canceled: %w", opts.Context.Err()), external: true})
			case <-runTimeoutC:
				st.abort(&abortError{cause: fmt.Errorf("run exceeded %v deadline", opts.RunTimeout), external: true})
			case <-watchDone:
			}
		}()
	}

	// roots collects root-cause failures (panics, deadline overruns,
	// broken connections, cancellation); unwinds collects processors
	// that merely unwound after someone else failed. Roots take
	// precedence in the returned error.
	roots := make([]error, p)
	unwinds := make([]error, p)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p; i++ {
		pr := procs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rerr, ok := r.(error)
					if !ok {
						rerr = fmt.Errorf("%v", r)
					}
					var ab *abortError
					if errors.As(rerr, &ab) && !ab.external {
						unwinds[pr.rank] = fmt.Errorf("tcp: rank %d unwound: %w", pr.rank, rerr)
						return
					}
					roots[pr.rank] = fmt.Errorf("tcp: rank %d: %w", pr.rank, rerr)
					// Fail fast: poison every inbox and close the
					// connections so blocked peers unwind instead of
					// hanging on a dead processor.
					st.abort(&abortError{cause: fmt.Errorf("machine aborted by rank %d", pr.rank)})
				}
			}()
			fn(pr)
		}()
	}
	wg.Wait()
	// Graceful teardown begins: reader pumps must treat connection
	// closes from here on as normal, not as mid-run failures.
	st.closed.Store(true)
	close(watchDone)
	if runTimer != nil {
		runTimer.Stop()
	}
	watchWG.Wait()
	res := &Result{Elapsed: time.Since(start), Procs: make([]ProcStats, p)}
	for i, pr := range procs {
		res.Procs[i] = ProcStats{
			Rank: i, Sends: pr.sends, Recvs: pr.recvs,
			SendBytes: pr.sendBytes, RecvBytes: pr.recvBytes,
			BarrierSends: pr.barrierSends, BarrierRecvs: pr.barrierRecvs,
		}
	}
	for _, e := range roots {
		if e != nil {
			return nil, e
		}
	}
	for _, e := range unwinds {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}

// setup listens on p loopback ports and builds the full mesh of
// connections: rank i dials every rank j < i (with retry and backoff
// for transient failures); the accepting side learns the dialer's rank
// from a one-byte-frame handshake.
func setup(p int, opts Options) ([]*Proc, *state, func(), error) {
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	attempts := opts.DialAttempts
	if attempts <= 0 {
		attempts = defaultDialAttempts
	}
	backoff := opts.DialBackoff
	if backoff <= 0 {
		backoff = defaultDialBackoff
	}
	var ctxDone <-chan struct{}
	if opts.Context != nil {
		ctxDone = opts.Context.Done()
	}

	listeners := make([]net.Listener, p)
	procs := make([]*Proc, p)
	st := &state{procs: procs, tr: opts.Tracer}
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, nil, nil, fmt.Errorf("tcp: listen for rank %d: %w", i, err)
		}
		listeners[i] = ln
		in := &inbox{boxes: make([]comm.Queue, p), barriers: make([]int, p)}
		if opts.Tracer != nil {
			in.arrivals = make([]tsQueue, p)
		}
		in.cond = sync.NewCond(&in.mu)
		procs[i] = &Proc{
			rank: i, size: p, conns: make([]net.Conn, p), wmu: make([]sync.Mutex, p),
			in: in, st: st, recvTimeout: opts.RecvTimeout, iter: -1,
		}
	}
	cleanup := func() {
		for _, ln := range listeners {
			ln.Close()
		}
		st.closeConns()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, p*p)
	// fail reports a setup error and unblocks everyone still waiting in
	// Accept by closing the listeners.
	var failOnce sync.Once
	fail := func(err error) {
		errCh <- err
		failOnce.Do(func() {
			for _, ln := range listeners {
				ln.Close()
			}
		})
	}
	// Accept side: rank j accepts p-1-j connections (from all i > j).
	for j := 0; j < p; j++ {
		expect := p - 1 - j
		if expect == 0 {
			continue
		}
		wg.Add(1)
		go func(j, expect int) {
			defer wg.Done()
			for k := 0; k < expect; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					fail(fmt.Errorf("tcp: accept at rank %d: %w", j, err))
					return
				}
				// Bound the handshake so a dialer dying between connect
				// and announce cannot hang setup.
				conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
				var hs [4]byte
				if _, err := io.ReadFull(conn, hs[:]); err != nil {
					conn.Close()
					fail(fmt.Errorf("tcp: handshake at rank %d: %w", j, err))
					return
				}
				conn.SetReadDeadline(time.Time{})
				peer := int(int32(binary.BigEndian.Uint32(hs[:])))
				if peer <= j || peer >= p {
					conn.Close()
					fail(fmt.Errorf("tcp: rank %d handshake from invalid peer %d", j, peer))
					return
				}
				procs[j].conns[peer] = conn
			}
		}(j, expect)
	}
	// Dial side: rank i dials every j < i and announces itself.
	// Transient dial failures are retried with exponential backoff.
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < i; j++ {
				addr := listeners[j].Addr().String()
				var conn net.Conn
				for attempt := 0; ; attempt++ {
					var err error
					conn, err = dial(addr)
					if err == nil {
						break
					}
					if attempt+1 >= attempts {
						fail(fmt.Errorf("tcp: rank %d dial rank %d failed after %d attempts: %w", i, j, attempts, err))
						return
					}
					select {
					case <-time.After(backoff << attempt):
					case <-ctxDone:
						fail(fmt.Errorf("tcp: rank %d dial rank %d: setup canceled: %w", i, j, opts.Context.Err()))
						return
					}
				}
				var hs [4]byte
				binary.BigEndian.PutUint32(hs[:], uint32(int32(i)))
				if _, err := conn.Write(hs[:]); err != nil {
					conn.Close()
					fail(fmt.Errorf("tcp: rank %d handshake to %d: %w", i, j, err))
					return
				}
				procs[i].conns[j] = conn
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		cleanup()
		return nil, nil, nil, err
	default:
	}

	// Reader pumps: one goroutine per connection end demultiplexes
	// frames by tag into the owner's data or barrier queues, stamping
	// each data frame's arrival instant on traced runs. A read error
	// during the run is a mid-run connection failure (root cause,
	// machine aborts); after the run has completed (st.closed) it is
	// the normal teardown close and is ignored.
	st.start = time.Now()
	for i := 0; i < p; i++ {
		pr := procs[i]
		for peer, conn := range pr.conns {
			if conn == nil {
				continue
			}
			go func(pr *Proc, peer int, conn net.Conn) {
				for {
					m, err := readFrame(conn)
					if err != nil {
						if st.closed.Load() {
							return // graceful post-run teardown
						}
						pr.in.fail(fmt.Errorf("tcp: connection %d→%d failed: %w", peer, pr.rank, err))
						st.abort(&abortError{cause: fmt.Errorf("machine aborted: connection %d→%d failed", peer, pr.rank)})
						return
					}
					if m.Tag == barrierTag {
						pr.in.pushBarrier(peer)
					} else {
						pr.in.push(peer, m, st.wallIfTraced())
					}
				}
			}(pr, peer, conn)
		}
	}
	return procs, st, cleanup, nil
}
