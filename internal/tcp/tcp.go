// Package tcp executes an algorithm over real TCP sockets: every
// processor owns a loopback listener, peers are connected with one TCP
// connection per processor pair — the full O(p²) mesh by default, or
// only the route-derived sparse link set when Options.Links is given —
// and messages travel as length-prefixed frames. It is the
// distributed-transport engine of the
// repro hint ("channels/gRPC approximation" of MPI): where internal/live
// approximates message passing with in-process mailboxes, this engine
// moves every byte through the kernel's network stack, exercising the
// same algorithm code over a transport with real serialization.
//
// Semantics match the other engines: blocking Send/Recv with FIFO order
// per (sender, receiver) pair, and a Barrier (dissemination barrier over
// the same transport). Barrier frames travel on the same sockets but are
// demultiplexed by tag and metered separately, so ProcStats counts agree
// with the live engine for the same algorithm.
//
// # Sessions
//
// Building the machine is expensive — p listeners, an O(p²) dialed mesh
// with handshakes and retry, and one reader pump per connection end — so
// the engine separates setup from execution. NewMachine stands the mesh
// up once; Machine.Run executes one algorithm over the warm connections
// and may be called many times back to back; Machine.Close tears
// everything down. Run/RunOpts remain as one-shot open-run-close
// wrappers, preserving the historical API.
//
// Run isolation is by epoch: every frame carries the epoch of the run
// that sent it, the reader pumps discard frames whose epoch is not the
// current run's (or that arrive between runs), and each run starts from
// mailboxes wiped of the previous run's leftovers. A broadcast that
// aborts — panic, injected kill, deadline — can therefore never leak a
// frame, a poisoned mailbox, or a stale barrier token into the next run.
//
// An abort closes the mesh; the session survives it. The next Run
// notices the damage, joins the orphaned reader pumps, and redials the
// planned link set — the sparse one when the machine was built with
// Options.Links, the full mesh otherwise — over the still-open listeners
// (counted in Reconnects), so a killed connection costs one failed run
// plus one reconnect, not the session, and a sparse machine never pays
// for connections its schedule does not use.
//
// # Sparse mesh and k-ported drivers
//
// The paper's algorithms send along a schedule's logical links, a set
// that grows like p·log p — not p². Options.Links (a setup field) lists
// those directed (src,dst) links; NewMachine then materializes only the
// connections they need, multiplexing both directions of a peer pair
// (and every logical link between that pair) over one shared TCP
// connection. A send over a link that was not planned falls back to a
// lazy on-demand dial with the same retry/backoff as setup, so sparse
// planning is a performance contract, not a correctness one. Every rank
// keeps a persistent acceptor, and registration waits until both
// endpoints of a pair are installed, so two ranks racing to open the
// same pair always converge on one connection.
//
// # Worker machines (cluster partitioning)
//
// NewWorkerMachine builds the partial machine one cluster worker
// process owns: listeners, procs and reader pumps for a contiguous rank
// range [lo,hi) only, with Options.ListenHost choosing the bind
// address. The coordinator (internal/cluster) collects every worker's
// LocalAddrs, distributes the merged rank→address map, and drives
// ConnectMesh so each planned pair is dialed by the worker owning its
// higher rank — the same frame protocol, handshake and registration
// path as the single-process mesh, now across OS processes. Runs start
// with a coordinator-assigned Options.Epoch and an Options.StartGate
// rendezvous so every worker's mailboxes are armed before the first
// frame flies; a broken mesh is rebuilt by the coordinator (ResetMesh
// then ConnectMesh on every worker), never by one worker on its own.
//
// Options.Ports (a run field) adds the k-ported send path modeled after
// the paper's multi-channel routers: each rank drives its outbound
// links through per-destination driver goroutines with bounded queues,
// and a semaphore of k port tokens bounds how many links transmit
// concurrently. Ports=1 serializes transmissions like a one-port node;
// Ports=k overlaps up to k links, which is what the k-ported broadcast
// schedules in the registry exploit.
//
// # Failure semantics
//
// Run never hangs when a deadline is configured; every failure becomes a
// returned error:
//
//   - A processor panics: the run aborts, all connections are closed,
//     every peer blocked in Recv or Barrier unwinds, and Run reports the
//     panicking rank as the root cause.
//   - A connection fails mid-run: the affected receiver reports the
//     broken link as the root cause; everyone else unwinds. A connection
//     closing during teardown (Close) or between runs is not an error —
//     the next Run rebuilds the mesh.
//   - A blocking Recv or Barrier wait exceeds Options.RecvTimeout: the
//     stalled rank aborts the run with an error naming itself and the
//     awaited peer.
//   - Options.Context is canceled or Options.RunTimeout elapses: the run
//     aborts with the cancellation cause.
//   - A transient dial failure during setup is retried with exponential
//     backoff (Options.DialAttempts / DialBackoff) before it is fatal.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/network"
	"repro/internal/obs"
)

// frame layout: [epoch uint32][tag int32][nparts int32] then per part
// [origin int32][len int32][payload]. The sender is identified by the
// connection; the epoch identifies the run, so a frame from an aborted
// or slow previous run is recognizably stale and dropped by the pumps.

const (
	// barrierTag marks dissemination-barrier frames. The value is
	// reserved: Send rejects algorithm messages carrying it, so barrier
	// and data traffic can never be confused even when frames from the
	// same peer interleave. (Algorithm code uses small tags such as the
	// -1 of comm.Sub barriers, which are ordinary data here.)
	barrierTag = math.MinInt32
	// maxPartLen guards against corrupt length prefixes.
	maxPartLen = 1 << 30
	// maxParts guards against corrupt part counts: no broadcast bundles
	// more parts than this (the largest machines are a few hundred
	// ranks, one part per origin).
	maxParts = 1 << 20
	// contiguousLimit is the frame size up to which the writer encodes
	// the whole frame into one contiguous scratch buffer and issues a
	// single Write. Larger frames switch to the vectored path — a
	// net.Buffers gather list referencing payloads in place — so big
	// payloads are never recopied just to save syscalls.
	contiguousLimit = 4 << 10

	defaultDialAttempts = 3
	defaultDialBackoff  = 10 * time.Millisecond
	// handshakeTimeout bounds the rank-announcement read so a dialer
	// dying between connect and handshake cannot hang setup.
	handshakeTimeout = 10 * time.Second
)

// Options harden a run. The zero value preserves the historical
// behaviour (no deadlines, no cancellation, default dial retry).
//
// With the session API the fields split by lifetime: NewMachine consumes
// the setup fields (Dial, DialAttempts, DialBackoff) and remembers them
// for mesh rebuilds; Machine.Run consumes the run fields (Context,
// RunTimeout, RecvTimeout, Tracer) afresh on every call, so successive
// runs over one machine can use different deadlines and tracers. The
// one-shot RunOpts passes the same Options to both.
type Options struct {
	// Context, when non-nil, cancels the run (setup backoff waits and
	// the algorithm phase): blocked processors unwind and Run returns
	// an error carrying ctx.Err().
	Context context.Context
	// RunTimeout, when positive, bounds the algorithm phase.
	RunTimeout time.Duration
	// RecvTimeout, when positive, bounds any single blocking Recv or
	// Barrier wait; exceeding it aborts the run with an error naming
	// the blocked rank and the peer it waited on.
	RecvTimeout time.Duration
	// DialAttempts is the number of connection attempts per peer during
	// setup (0 means the default of 3); transient dial failures are
	// retried with exponential backoff starting at DialBackoff (0 means
	// 10ms).
	DialAttempts int
	DialBackoff  time.Duration
	// Dial overrides the dialer (fault injection in tests); nil means
	// net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Links, when non-nil, lists the directed logical (src,dst) links the
	// planned workload uses (a setup field, remembered for mesh
	// rebuilds). NewMachine then materializes only the connections those
	// links need — one shared TCP connection per unordered peer pair,
	// multiplexing both directions — instead of the full O(p²) mesh.
	// Self links are ignored; out-of-range ranks are a setup error. A
	// send over an unplanned link falls back to a lazy on-demand dial
	// with the same retry/backoff, so Links never changes what runs,
	// only what is paid for up front. nil keeps the historical full
	// mesh; an empty non-nil slice plans no links at all (everything
	// lazy).
	Links [][2]int
	// ListenHost is the host the machine's listeners bind to (a setup
	// field). Empty means the historical loopback-only "127.0.0.1";
	// cluster workers that must be reachable from other hosts set it to
	// an externally visible address. The bound host is also what
	// LocalAddrs advertises to the coordinator.
	ListenHost string
	// Epoch, when nonzero, is the run's frame epoch (a run field). The
	// cluster coordinator assigns one common epoch to every worker's
	// run so frames demultiplex consistently across processes; zero
	// keeps the machine's own auto-incremented epoch.
	Epoch uint32
	// StartGate, when non-nil, is called after the run's mailboxes are
	// armed (pumps deliver current-epoch frames) but before any rank
	// goroutine launches (a run field). A cluster worker acks "armed" to
	// the coordinator inside the gate and blocks until every other
	// worker is armed too, so no frame can arrive at a process that
	// would still discard it as stale. Returning an error aborts the
	// run before any rank executes.
	StartGate func() error
	// DisableNoDelay leaves Nagle's algorithm enabled on the mesh's
	// sockets (a setup field, remembered for rebuilds). By default every
	// dialed and accepted connection sets TCP_NODELAY so small control
	// frames — 12-byte barrier tokens, sub-MSS broadcast hops — are
	// never stalled on the Nagle/delayed-ACK interaction; disabling it
	// exists for batching experiments that want the kernel to coalesce
	// instead.
	DisableNoDelay bool
	// FlushThreshold, when positive, enables per-link small-frame
	// batching (a run field, consumed per Run call): back-to-back
	// frames to the same destination are coalesced in a per-link buffer
	// and written with one syscall when the buffer reaches the
	// threshold. Every pending buffer is flushed before the sender
	// blocks (Recv, a barrier wait, or the end of its algorithm
	// function), so the buffered-Send contract stays deadlock-free: a
	// processor never waits while holding bytes a peer needs to make
	// progress.
	FlushThreshold int
	// Ports, when positive, routes sends through per-destination link
	// drivers (a run field, consumed per Run call): one writer goroutine
	// per outbound connection with a bounded frame queue, gated by a
	// semaphore of Ports transmission tokens per rank. A rank with
	// several scheduled destinations then drives up to Ports links
	// concurrently instead of serially — the engine's model of the
	// paper's k-ported nodes. Ports=0 keeps the historical inline write
	// path. Mutually exclusive with FlushThreshold (the driver queue is
	// already the coalescing point).
	Ports int
	// Tracer, when non-nil, receives an obs.Event for every send, recv,
	// wait (a receive that had to block) and barrier, stamped with
	// wall-clock nanoseconds since the run started. The reader pumps
	// additionally stamp each data frame's arrival instant, so a traced
	// Recv carries Arrival — the time the frame reached this rank's
	// inbox — separating network latency from receiver lag. Events
	// arrive from all rank goroutines concurrently; the tracer must be
	// safe for concurrent use (trace.Recorder is).
	Tracer obs.Tracer
}

// abortError poisons inboxes when the machine fails. external marks
// context/deadline aborts (reported as root causes); otherwise the
// error is a secondary unwind of a failure first reported elsewhere.
type abortError struct {
	cause    error
	external bool
}

func (e *abortError) Error() string { return e.cause.Error() }
func (e *abortError) Unwrap() error { return e.cause }

// frameWireSize returns the encoded size of m on the wire.
func frameWireSize(m comm.Message) int {
	n := frameHdrLen + len(m.Parts)*partHdrLen
	for _, part := range m.Parts {
		n += len(part.Data)
	}
	return n
}

// appendFrame appends the wire encoding of m — the epoch-stamped frame
// header followed by each part's header and payload — to buf. It is the
// single encoder behind both the contiguous write path and the per-link
// batcher, and allocates only when buf must grow.
func appendFrame(buf []byte, epoch uint32, m comm.Message) []byte {
	buf = binary.BigEndian.AppendUint32(buf, epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.Tag)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(len(m.Parts))))
	for _, part := range m.Parts {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(part.Origin)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(len(part.Data))))
		buf = append(buf, part.Data...)
	}
	return buf
}

// writeFrameTo writes one frame with at most one Write (or one vectored
// WriteTo) call, using sc's pooled storage. Small frames — the common
// case: barrier tokens, control traffic, early broadcast hops — are
// encoded contiguously into sc.flat and written once. Frames above
// contiguousLimit build a gather list in sc.bufs whose header segments
// live in sc.hdr and whose payload segments reference the message's
// buffers in place, then hand the whole list to net.Buffers.WriteTo —
// writev on a *net.TCPConn — so multi-part bundles cost one syscall and
// zero payload copies instead of the historical 2k+1 writes.
func writeFrameTo(w io.Writer, epoch uint32, m comm.Message, sc *frameScratch) error {
	size := frameWireSize(m)
	if size <= contiguousLimit {
		sc.flat = appendFrame(sc.flat[:0], epoch, m)
		_, err := w.Write(sc.flat)
		return err
	}
	// Pre-size the header storage: appends below must never reallocate,
	// or the gather list's earlier segments would point at a dead array.
	need := frameHdrLen + len(m.Parts)*partHdrLen
	if cap(sc.hdr) < need {
		sc.hdr = make([]byte, 0, need)
	}
	hdr := sc.hdr[:0]
	bufs := sc.bufs[:0]
	hdr = binary.BigEndian.AppendUint32(hdr, epoch)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(int32(m.Tag)))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(int32(len(m.Parts))))
	bufs = append(bufs, hdr[:frameHdrLen])
	for _, part := range m.Parts {
		start := len(hdr)
		hdr = binary.BigEndian.AppendUint32(hdr, uint32(int32(part.Origin)))
		hdr = binary.BigEndian.AppendUint32(hdr, uint32(int32(len(part.Data))))
		bufs = append(bufs, hdr[start:len(hdr)])
		if len(part.Data) > 0 {
			bufs = append(bufs, part.Data)
		}
	}
	sc.hdr, sc.bufs = hdr, bufs
	// WriteTo consumes (and on partial writes mutates) the list it is
	// given; hand it the scratch's consumable view so sc.bufs keeps its
	// backing array (for putScratch's reference clearing) and no slice
	// header escapes per write.
	sc.vec = bufs
	_, err := sc.vec.WriteTo(w)
	return err
}

// writeFrame writes one frame through a pooled scratch. It is the
// plain-io.Writer form of writeFrameTo for callers without a scratch of
// their own (tests, fuzzing); the engine hot path uses writeFrameTo.
func writeFrame(w io.Writer, epoch uint32, m comm.Message) error {
	sc := getScratch()
	err := writeFrameTo(w, epoch, m, sc)
	putScratch(sc)
	return err
}

// frameReader decodes the frames one peer sends to one local rank. The
// reader pumps keep one per connection end, so the header scratch is
// allocated once per link, not once per frame. Payload buffers and the
// part slice of each decoded message come from the arena; ownership
// transfers to the caller (see arena.go for the recycle discipline).
// Corrupt frames are attributed to both ends of the link, honouring the
// contract that engine errors name the affected rank and its peer.
// Parts storage grows as bytes actually arrive, so a corrupt header
// claiming maxParts parts cannot force a huge allocation up front.
type frameReader struct {
	r        io.Reader
	src, dst int // sending peer's rank, receiving (local) rank
	hdr      [frameHdrLen]byte
	ph       [partHdrLen]byte
}

func (fr *frameReader) read() (comm.Message, uint32, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return comm.Message{}, 0, err
	}
	epoch := binary.BigEndian.Uint32(fr.hdr[0:])
	tag := int(int32(binary.BigEndian.Uint32(fr.hdr[4:])))
	nparts := int(int32(binary.BigEndian.Uint32(fr.hdr[8:])))
	if nparts < 0 || nparts > maxParts {
		return comm.Message{}, 0, fmt.Errorf("tcp: corrupt frame from rank %d at rank %d: %d parts", fr.src, fr.dst, nparts)
	}
	m := comm.Message{Tag: tag, Parts: getParts(nparts)}
	for i := 0; i < nparts; i++ {
		if _, err := io.ReadFull(fr.r, fr.ph[:]); err != nil {
			recycleMessage(m)
			return comm.Message{}, 0, err
		}
		origin := int(int32(binary.BigEndian.Uint32(fr.ph[0:])))
		n := int(int32(binary.BigEndian.Uint32(fr.ph[4:])))
		if n < 0 || n > maxPartLen {
			recycleMessage(m)
			return comm.Message{}, 0, fmt.Errorf("tcp: corrupt frame from rank %d at rank %d: part %d of %d bytes", fr.src, fr.dst, i, n)
		}
		data := getPayload(n)
		if _, err := io.ReadFull(fr.r, data); err != nil {
			putPayload(data)
			recycleMessage(m)
			return comm.Message{}, 0, err
		}
		m.Parts = append(m.Parts, comm.Part{Origin: origin, Data: data})
	}
	return m, epoch, nil
}

// readFrame decodes one frame sent by rank src to rank dst: the
// one-shot form of frameReader for callers without a per-link reader of
// their own (tests, fuzzing).
func readFrame(r io.Reader, src, dst int) (comm.Message, uint32, error) {
	fr := frameReader{r: r, src: src, dst: dst}
	return fr.read()
}

// writeFrameSeq is the pre-arena frame writer — one heap-allocated
// header plus 2k+1 sequential Writes per k-part frame. It is kept only
// as the measured baseline of the figTCPHotpath experiment; the engine
// never calls it.
func writeFrameSeq(w io.Writer, epoch uint32, m comm.Message) error {
	hdr := make([]byte, frameHdrLen)
	binary.BigEndian.PutUint32(hdr[0:], epoch)
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(int32(len(m.Parts))))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ph := make([]byte, partHdrLen)
	for _, part := range m.Parts {
		binary.BigEndian.PutUint32(ph[0:], uint32(int32(part.Origin)))
		binary.BigEndian.PutUint32(ph[4:], uint32(int32(len(part.Data))))
		if _, err := w.Write(ph); err != nil {
			return err
		}
		if _, err := w.Write(part.Data); err != nil {
			return err
		}
	}
	return nil
}

// runState is the per-run half of the machine: epoch, tracer and clock
// zero point, plus the abort latch. The reader pumps load it through
// state.run on every frame, so everything a pump needs to attribute or
// discard a frame is reached through one atomic pointer.
type runState struct {
	epoch   uint32
	tr      obs.Tracer
	start   time.Time // zero point of traced Wall stamps
	aborted atomic.Bool
	// ctx is the run's context (nil when the run has none): lazy dials
	// triggered by this run's sends bound their backoff waits and
	// endpoint waits by it, so a canceled run unwinds promptly instead
	// of sitting out handshakeTimeout inside ensureLink.
	ctx context.Context
}

// wall returns nanoseconds since the run started.
func (rs *runState) wall() int64 { return time.Since(rs.start).Nanoseconds() }

// wallIfTraced returns wall() on traced runs and 0 otherwise, so untraced
// hot paths skip the clock read.
func (rs *runState) wallIfTraced() int64 {
	if rs.tr == nil {
		return 0
	}
	return rs.wall()
}

// inbox is one processor's receive side: per-source data FIFOs plus
// per-source barrier-frame counters, under one lock. The reader pumps
// demultiplex by tag, so a queued barrier frame can never be handed to
// algorithm code (and vice versa). Between runs the inbox is reset;
// push/pushBarrier/fail revalidate (under the lock) that the run they
// were read for is still current, which together with the pumps' epoch
// check makes cross-run frame bleed impossible even when a pump is
// descheduled between decoding a frame and delivering it.
type inbox struct {
	mu sync.Mutex
	// rank is the owning processor's rank: boxes[rank] holds self-sends,
	// whose payloads are caller-owned and must never be recycled into
	// the arena (every other box holds pump-decoded arena buffers).
	rank     int
	cond     *sync.Cond
	boxes    []comm.Queue
	barriers []int
	dead     error
	// arrivals mirrors boxes with per-source FIFO queues of frame-arrival
	// wall stamps (ns since run start). Allocated only when the run is
	// traced; nil otherwise, so untraced runs pay nothing.
	arrivals []tsQueue
}

// tsQueue is a FIFO of int64 timestamps (slice plus head index; traced
// runs only, so the modest garbage of the grown slice is acceptable).
type tsQueue struct {
	buf  []int64
	head int
}

func (q *tsQueue) push(t int64) { q.buf = append(q.buf, t) }

func (q *tsQueue) pop() int64 {
	if q.head >= len(q.buf) {
		return 0
	}
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return t
}

// reset wipes the previous run's leftovers: queued frames (pump-decoded
// ones recycled into the arena, self-sends merely dropped — their
// payloads are caller-owned), barrier tokens, the poison error, and
// the arrival stamps (reallocated only when the new run is traced).
func (ib *inbox) reset(traced bool) {
	ib.mu.Lock()
	for i := range ib.boxes {
		if i == ib.rank {
			ib.boxes[i].Reset()
		} else {
			ib.boxes[i].Drain(recycleMessage)
		}
	}
	for i := range ib.barriers {
		ib.barriers[i] = 0
	}
	ib.dead = nil
	if traced {
		ib.arrivals = make([]tsQueue, len(ib.boxes))
	} else {
		ib.arrivals = nil
	}
	ib.mu.Unlock()
}

// push enqueues a data frame from src for run rs; ts is the arrival wall
// stamp, recorded only on traced runs. The frame is dropped if rs is no
// longer the current run; pooled marks arena-backed frames (pump
// deliveries) whose storage is then recycled on that drop path.
func (ib *inbox) push(st *state, rs *runState, src int, m comm.Message, ts int64, pooled bool) {
	ib.mu.Lock()
	if st.run.Load() != rs {
		ib.mu.Unlock()
		// The run ended while the frame was in flight.
		if pooled {
			recycleMessage(m)
		}
		return
	}
	ib.boxes[src].Push(m)
	if ib.arrivals != nil {
		ib.arrivals[src].push(ts)
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) pushBarrier(st *state, rs *runState, src int) {
	ib.mu.Lock()
	if st.run.Load() != rs {
		ib.mu.Unlock()
		return
	}
	ib.barriers[src]++
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// fail poisons the inbox for run rs; it is a no-op once rs is stale so a
// late abort cannot poison the next run's mailbox.
func (ib *inbox) fail(st *state, rs *runState, err error) {
	ib.mu.Lock()
	if st.run.Load() == rs && ib.dead == nil {
		ib.dead = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// waitLocked blocks (mu held) until ready, the inbox dies, or the
// timeout elapses.
func (ib *inbox) waitLocked(timeout time.Duration, ready func() bool) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			ib.mu.Lock()
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
		defer timer.Stop()
	}
	for !ready() {
		if ib.dead != nil {
			return ib.dead
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return fmt.Errorf("blocked %v (receive deadline exceeded)", timeout)
		}
		ib.cond.Wait()
	}
	return nil
}

// pop dequeues the next data frame from src, returning its arrival wall
// stamp (0 when the run is untraced) and whether the caller had to block.
func (ib *inbox) pop(src int, timeout time.Duration) (comm.Message, int64, bool, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	waited := ib.boxes[src].Len() == 0
	if err := ib.waitLocked(timeout, func() bool { return ib.boxes[src].Len() > 0 }); err != nil {
		return comm.Message{}, 0, waited, err
	}
	var ts int64
	if ib.arrivals != nil {
		ts = ib.arrivals[src].pop()
	}
	return ib.boxes[src].Pop(), ts, waited, nil
}

func (ib *inbox) popBarrier(src int, timeout time.Duration) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if err := ib.waitLocked(timeout, func() bool { return ib.barriers[src] > 0 }); err != nil {
		return err
	}
	ib.barriers[src]--
	return nil
}

// state is the machine-wide lifecycle shared by all processors and
// reader pumps. closed marks session teardown (Close); broken marks a
// damaged mesh (an abort closed the connections — the next Run rebuilds
// it); run points at the current run, nil between runs, so the pumps can
// attribute every frame and every read error to the right run — or to
// none.
type state struct {
	procs  []*Proc
	closed atomic.Bool
	broken atomic.Bool
	run    atomic.Pointer[runState]

	// connMu guards the connection table — conns (the flat list of every
	// live endpoint, for teardown) and each Proc's per-peer conns slice.
	// Registration happens under the write lock at setup time and on
	// lazy dials; the send/pump hot paths read through the read lock.
	// connCond (on the write lock) is broadcast on every registration,
	// state change and teardown so setup and lazy dials can wait for
	// both endpoints of a pair to be installed.
	connMu   sync.RWMutex
	connCond *sync.Cond
	conns    []net.Conn
}

// closeConns closes every connection endpoint; double closes are
// harmless, so abort, reconnect and Close may all call it.
func (st *state) closeConns() {
	st.connMu.Lock()
	for _, c := range st.conns {
		c.Close()
	}
	st.connCond.Broadcast()
	st.connMu.Unlock()
}

// abort fails every inbox of run rs with reason, marks the mesh broken,
// and closes all connections so blocked readers and writers unwind. The
// first abort of a run wins; an abort for a stale run still tears the
// damaged mesh down but cannot poison a newer run's mailboxes.
func (st *state) abort(rs *runState, reason *abortError) {
	if rs.aborted.Swap(true) {
		return
	}
	st.broken.Store(true)
	for _, pr := range st.procs {
		if pr == nil {
			continue // a cluster worker owns only its rank range
		}
		pr.in.fail(st, rs, reason)
	}
	st.closeConns()
}

// Proc is one processor's handle on the TCP machine. It implements
// comm.Comm; methods must only be called from the algorithm goroutine,
// during a Machine.Run.
type Proc struct {
	rank int
	size int
	// conns[peer] is nil at the own rank and on never-established links
	// (sparse machines dial lazily); guarded by st.connMu — rank
	// goroutines read through link(), registration writes under the
	// write lock.
	conns []net.Conn
	wmu   []sync.Mutex
	in    *inbox
	st    *state
	m     *Machine // lazy-dial fallback for unplanned links

	// Per-run fields, reset by beginRun under the machine lock (rank
	// goroutines only live inside Run, so no further synchronization).
	rs          *runState
	recvTimeout time.Duration
	iter        int
	phase       string

	// Small-frame batching (Options.FlushThreshold > 0): pend[dst]
	// accumulates encoded frames bound for dst; dirty lists destinations
	// with pending bytes (possibly with duplicates — flushPending skips
	// the already-empty ones). Touched only by the owning rank goroutine;
	// the eventual socket write still takes wmu[dst].
	flushLimit int
	pend       [][]byte
	dirty      []int

	// k-ported send path (Options.Ports > 0): one linkDriver per
	// destination this rank has sent to, spawned lazily by the rank
	// goroutine; portSem holds Ports transmission tokens. derr records
	// the first driver write failure so the owning rank — not just the
	// machine-wide abort — reports the root cause (see driver.go).
	ports   int
	portSem chan struct{}
	drivers []*linkDriver
	derr    atomic.Pointer[driverFault]

	sends, recvs               int
	sendBytes, recvBytes       int64
	barrierSends, barrierRecvs int
}

var _ comm.Comm = (*Proc)(nil)
var _ comm.IterMarker = (*Proc)(nil)
var _ comm.PhaseMarker = (*Proc)(nil)

// beginRun resets the per-run half of the processor: a wiped inbox,
// fresh counters, and the new run's state/deadline/batching threshold.
func (p *Proc) beginRun(rs *runState, recvTimeout time.Duration, flushLimit, ports int) {
	p.in.reset(rs.tr != nil)
	p.rs = rs
	p.recvTimeout = recvTimeout
	p.flushLimit = flushLimit
	if flushLimit > 0 && p.pend == nil {
		p.pend = make([][]byte, p.size)
	}
	for i := range p.pend {
		p.pend[i] = p.pend[i][:0] // drop leftovers of an aborted run
	}
	p.dirty = p.dirty[:0]
	p.ports = ports
	p.derr.Store(nil)
	if ports > 0 {
		if cap(p.portSem) != ports {
			p.portSem = make(chan struct{}, ports)
		}
		if p.drivers == nil {
			p.drivers = make([]*linkDriver, p.size)
		}
		for i := range p.drivers {
			p.drivers[i] = nil // stopDrivers already joined the old ones
		}
	}
	p.iter, p.phase = -1, ""
	p.sends, p.recvs = 0, 0
	p.sendBytes, p.recvBytes = 0, 0
	p.barrierSends, p.barrierRecvs = 0, 0
}

// BeginIter implements comm.IterMarker: traced events carry the iteration.
func (p *Proc) BeginIter(i int) { p.iter = i }

// BeginPhase implements comm.PhaseMarker: traced events carry the label.
func (p *Proc) BeginPhase(name string) { p.phase = name }

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.size }

// writeTo frames m onto the pair's socket stamped with the run's epoch —
// one Write (or vectored WriteTo) per frame through pooled scratch — or,
// when batching is on, into the link's pending buffer. Failures are
// classified: a write error after the run aborted is a secondary unwind,
// not a root cause.
func (p *Proc) writeTo(dst int, m comm.Message) {
	if p.ports > 0 {
		p.enqueue(dst, m)
		return
	}
	if p.flushLimit > 0 {
		p.bufferFrame(dst, m)
		return
	}
	conn, err := p.link(dst)
	if err != nil {
		p.sendFail(dst, err)
	}
	sc := getScratch()
	p.wmu[dst].Lock()
	err = writeFrameTo(conn, p.rs.epoch, m, sc)
	p.wmu[dst].Unlock()
	putScratch(sc)
	if err != nil {
		p.sendFail(dst, err)
	}
}

// link returns the connection to dst, dialing it on demand when the
// machine's planned link set did not include it. The fast path is one
// read-locked table load; the slow path is the machine's serialized
// lazy dial.
func (p *Proc) link(dst int) (net.Conn, error) {
	p.st.connMu.RLock()
	c := p.conns[dst]
	p.st.connMu.RUnlock()
	if c != nil {
		return c, nil
	}
	return p.m.ensureLink(p.rs.ctx, p.rank, dst)
}

// sendFail panics out of a failed socket write with the abort
// classification writeTo documents.
func (p *Proc) sendFail(dst int, err error) {
	serr := fmt.Errorf("send to %d: %w", dst, err)
	if p.rs.aborted.Load() {
		panic(&abortError{cause: serr})
	}
	panic(serr)
}

// bufferFrame appends m's encoding to dst's pending buffer, flushing it
// once it reaches the run's threshold.
func (p *Proc) bufferFrame(dst int, m comm.Message) {
	if len(p.pend[dst]) == 0 {
		p.dirty = append(p.dirty, dst)
	}
	p.pend[dst] = appendFrame(p.pend[dst], p.rs.epoch, m)
	if len(p.pend[dst]) >= p.flushLimit {
		p.flushDst(dst)
	}
}

// flushDst writes dst's pending buffer with one syscall.
func (p *Proc) flushDst(dst int) {
	buf := p.pend[dst]
	if len(buf) == 0 {
		return
	}
	conn, err := p.link(dst)
	if err != nil {
		p.pend[dst] = buf[:0]
		p.sendFail(dst, err)
	}
	p.wmu[dst].Lock()
	_, err = conn.Write(buf)
	p.wmu[dst].Unlock()
	p.pend[dst] = buf[:0]
	if err != nil {
		p.sendFail(dst, err)
	}
}

// flushPending writes out every link's pending buffer. It is called
// before every blocking operation (Recv, barrier waits) and when the
// rank's algorithm function returns, so batching can never withhold a
// frame from a peer while this rank waits.
func (p *Proc) flushPending() {
	if len(p.dirty) == 0 {
		return
	}
	for _, dst := range p.dirty {
		p.flushDst(dst)
	}
	p.dirty = p.dirty[:0]
}

// Send implements comm.Comm: frame the message onto the pair's socket.
// Self-sends short-circuit through the local inbox.
func (p *Proc) Send(dst int, m comm.Message) {
	if dst < 0 || dst >= p.size {
		panic(fmt.Sprintf("tcp: rank %d sends to invalid rank %d", p.rank, dst))
	}
	if m.Tag == barrierTag {
		panic(fmt.Sprintf("tcp: rank %d sends message with reserved barrier tag %d", p.rank, m.Tag))
	}
	p.sends++
	p.sendBytes += int64(m.Len())
	var t0 time.Time
	if p.rs.tr != nil {
		t0 = time.Now()
	}
	if dst == p.rank {
		p.in.push(p.st, p.rs, p.rank, m, p.rs.wallIfTraced(), false)
	} else {
		p.writeTo(dst, m)
	}
	if p.rs.tr != nil {
		p.rs.tr.Trace(obs.Event{
			Kind: obs.KindSend, Rank: p.rank, Peer: dst, Bytes: m.Len(),
			Parts: len(m.Parts), Tag: m.Tag, Wall: p.rs.wall(),
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// Recv implements comm.Comm. With Options.RecvTimeout set, a wait
// exceeding the timeout aborts the run with an error naming this rank
// and src.
func (p *Proc) Recv(src int) comm.Message {
	if src < 0 || src >= p.size {
		panic(fmt.Sprintf("tcp: rank %d receives from invalid rank %d", p.rank, src))
	}
	p.flushPending() // a blocked Recv must never hold undelivered frames
	var t0 time.Time
	if p.rs.tr != nil {
		t0 = time.Now()
	}
	m, arrival, waited, err := p.in.pop(src, p.recvTimeout)
	if err != nil {
		panic(fmt.Errorf("recv from %d: %w", src, err))
	}
	p.recvs++
	p.recvBytes += int64(m.Len())
	if p.rs.tr != nil {
		wall := p.rs.wall()
		spent := network.Time(time.Since(t0).Nanoseconds())
		if waited {
			p.rs.tr.Trace(obs.Event{
				Kind: obs.KindWait, Rank: p.rank, Peer: src, Wall: wall,
				Dur: spent, Arrival: network.Time(arrival), Iter: p.iter, Phase: p.phase,
			})
			spent = 0 // the blocked span is the wait slice, not the recv
		}
		p.rs.tr.Trace(obs.Event{
			Kind: obs.KindRecv, Rank: p.rank, Peer: src, Bytes: m.Len(),
			Parts: len(m.Parts), Tag: m.Tag, Wall: wall, Dur: spent,
			Arrival: network.Time(arrival), Iter: p.iter, Phase: p.phase,
		})
	}
	return m
}

// Barrier implements comm.Comm as a dissemination barrier over the wire:
// ⌈log2 p⌉ rounds of empty frames. Barrier frames bypass Send/Recv and
// their counters — they are transport overhead, metered separately in
// ProcStats.BarrierSends/BarrierRecvs — so algorithm operation counts
// agree with the live engine.
func (p *Proc) Barrier() {
	var t0 time.Time
	if p.rs.tr != nil {
		t0 = time.Now()
	}
	for k := 1; k < p.size; k <<= 1 {
		dst := (p.rank + k) % p.size
		src := (p.rank - k + p.size) % p.size
		p.barrierSends++
		p.writeTo(dst, comm.Message{Tag: barrierTag})
		p.flushPending() // our token must be on the wire before we wait
		if err := p.in.popBarrier(src, p.recvTimeout); err != nil {
			panic(fmt.Errorf("barrier recv from %d: %w", src, err))
		}
		p.barrierRecvs++
	}
	if p.rs.tr != nil {
		p.rs.tr.Trace(obs.Event{
			Kind: obs.KindBarrier, Rank: p.rank, Peer: -1, Wall: p.rs.wall(),
			Dur: network.Time(time.Since(t0).Nanoseconds()), Iter: p.iter, Phase: p.phase,
		})
	}
}

// ProcStats counts one processor's operations. Sends/Recvs and the byte
// counters cover algorithm traffic only; barrier dissemination frames
// are counted apart so stats agree with the live engine.
type ProcStats struct {
	Rank      int
	Sends     int
	Recvs     int
	SendBytes int64
	RecvBytes int64
	// BarrierSends/BarrierRecvs count dissemination-barrier frames
	// (transport overhead, excluded from the fields above).
	BarrierSends int
	BarrierRecvs int
}

// Result is the outcome of a TCP run.
type Result struct {
	// Elapsed is the wall-clock duration of the algorithm phase
	// (connection setup excluded).
	Elapsed time.Duration
	// Procs holds per-processor operation counts — every rank on a
	// single-process machine, only the local rank range on a cluster
	// worker (each entry's Rank field identifies it; the coordinator
	// merges the workers' slices).
	Procs []ProcStats
}

// Machine is a persistent loopback TCP machine: p listeners with
// persistent acceptors, a dialed mesh — full by default, or only the
// planned pairs when built with Options.Links — and one reader pump per
// connection end, built once by NewMachine and reused by every Run.
// Close tears it down. Run and Close serialize; a Machine supports one
// run at a time.
type Machine struct {
	size int
	// lo/hi bound the contiguous rank range this process owns: [0,size)
	// for the historical single-process machine, a worker's slice for a
	// cluster partial machine (NewWorkerMachine). listeners and procs
	// are indexed by rank and nil outside [lo,hi).
	lo, hi    int
	mu        sync.Mutex // serializes Run, Close and mesh rebuilds
	listeners []net.Listener
	procs     []*Proc
	st        *state
	pumps     sync.WaitGroup
	acceptors sync.WaitGroup

	dial           func(addr string) (net.Conn, error)
	dialAttempts   int
	dialBackoff    time.Duration
	disableNoDelay bool
	listenHost     string
	// addrs maps remote ranks (outside [lo,hi)) to their listener
	// addresses, distributed by the cluster coordinator before
	// ConnectMesh; guarded by st.connMu. Local ranks resolve through
	// their own listeners.
	addrs map[int]string

	// pairs is the planned link set as sorted unordered peer pairs
	// (a<b): every pair in it is dialed at setup and redialed on
	// reconnect; anything else waits for a lazy dial. sparse records
	// whether Options.Links was given (for Stats/diagnostics; the full
	// mesh is just the complete pair set).
	pairs  [][2]int
	sparse bool
	// connsOpened counts TCP connections dialed over the machine's
	// lifetime (setup, lazy and reconnect dials; one per connection, not
	// per endpoint).
	connsOpened atomic.Int64
	// lazyMu guards lazyInflight, the per-pair singleflight table of
	// on-demand dials: two ranks racing to open the same unplanned pair
	// (either direction) converge on one dial, while dials of distinct
	// pairs proceed concurrently — one unreachable peer must not
	// head-of-line-block every other lazy dial on the machine.
	lazyMu       sync.Mutex
	lazyInflight map[[2]int]*lazyCall
	// lazyDials counts on-demand dials actually performed — the sends
	// the route plan missed. A sparse cluster run that stays at zero
	// proves the partitioned plan covered every link the schedule used.
	lazyDials atomic.Int64
	setupErr  error // first setup failure, under st.connMu

	epoch      uint32
	reconnects atomic.Int64
	closed     bool
	dead       error // a failed mesh rebuild poisons the machine
}

// NewMachine listens on p loopback ports, dials the planned link set —
// the full mesh by default, only the pairs Options.Links needs when
// given — and starts the reader pumps. Only the setup fields of opts
// are consumed (Dial, DialAttempts, DialBackoff, Links, ListenHost,
// plus Context to cancel setup); they are remembered for mesh rebuilds
// after an abort. The caller owns the machine and must Close it.
func NewMachine(p int, opts Options) (*Machine, error) {
	m, err := newMachine(p, 0, p, opts)
	if err != nil {
		return nil, err
	}
	if err := m.connectLocked(opts.Context); err != nil {
		for _, ln := range m.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		m.acceptors.Wait()
		return nil, err
	}
	return m, nil
}

// NewWorkerMachine builds the partial machine a cluster worker owns:
// listeners, procs and acceptors for the contiguous rank range [lo,hi)
// of a p-rank mesh, but no connections yet — the coordinator first
// collects every worker's LocalAddrs, then drives ConnectMesh with the
// merged rank→address map. The planned link set (Options.Links, or the
// full mesh when nil) is filtered to the pairs touching [lo,hi); the
// worker dials exactly those whose higher rank is local.
func NewWorkerMachine(p, lo, hi int, opts Options) (*Machine, error) {
	if lo < 0 || hi > p || lo >= hi {
		return nil, fmt.Errorf("tcp: worker rank range [%d,%d) outside machine of %d ranks", lo, hi, p)
	}
	return newMachine(p, lo, hi, opts)
}

// newMachine allocates the machine, binds the local ranks' listeners
// and starts their persistent acceptors; it does not connect.
func newMachine(p, lo, hi int, opts Options) (*Machine, error) {
	if p <= 0 {
		return nil, fmt.Errorf("tcp: non-positive processor count %d", p)
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	attempts := opts.DialAttempts
	if attempts <= 0 {
		attempts = defaultDialAttempts
	}
	backoff := opts.DialBackoff
	if backoff <= 0 {
		backoff = defaultDialBackoff
	}
	host := opts.ListenHost
	if host == "" {
		host = "127.0.0.1"
	}
	pairs, sparse, err := plannedPairs(p, opts.Links)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		size: p, lo: lo, hi: hi, st: &state{},
		listeners: make([]net.Listener, p), procs: make([]*Proc, p),
		dial: dial, dialAttempts: attempts, dialBackoff: backoff,
		disableNoDelay: opts.DisableNoDelay, listenHost: host,
		sparse:       sparse,
		lazyInflight: make(map[[2]int]*lazyCall),
	}
	// A partial machine only dials and waits for the pairs that touch
	// its own rank range; the rest belong to other workers.
	for _, pr := range pairs {
		if m.isLocal(pr[0]) || m.isLocal(pr[1]) {
			m.pairs = append(m.pairs, pr)
		}
	}
	m.st.procs = m.procs
	m.st.connCond = sync.NewCond(&m.st.connMu)
	for i := lo; i < hi; i++ {
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			for _, l := range m.listeners[lo:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcp: listen for rank %d: %w", i, err)
		}
		m.listeners[i] = ln
		in := &inbox{rank: i, boxes: make([]comm.Queue, p), barriers: make([]int, p)}
		in.cond = sync.NewCond(&in.mu)
		m.procs[i] = &Proc{
			rank: i, size: p, conns: make([]net.Conn, p),
			wmu: make([]sync.Mutex, p),
			in:  in, st: m.st, m: m, iter: -1,
		}
	}
	// Persistent acceptors: every local rank keeps accepting for the
	// machine's lifetime, so planned setup, reconnects and lazy dials
	// all land on the same registration path. They exit when the
	// listeners close (Close, or a fatal setup failure).
	for j := lo; j < hi; j++ {
		m.acceptors.Add(1)
		go m.acceptLoop(j)
	}
	return m, nil
}

// isLocal reports whether rank r lives in this process.
func (m *Machine) isLocal(r int) bool { return r >= m.lo && r < m.hi }

// partial reports whether the machine owns only a slice of the mesh.
func (m *Machine) partial() bool { return m.lo != 0 || m.hi != m.size }

// LocalAddrs returns the listener address of every local rank — what a
// cluster worker reports to the coordinator for the merged rank→address
// map.
func (m *Machine) LocalAddrs() map[int]string {
	addrs := make(map[int]string, m.hi-m.lo)
	for i := m.lo; i < m.hi; i++ {
		addrs[i] = m.listeners[i].Addr().String()
	}
	return addrs
}

// ConnectMesh dials this machine's share of the planned link set: every
// planned pair whose higher rank is local, resolving remote ranks
// through addrs (merged into the table kept from earlier calls; pass
// nil to reuse it, as coordinator-driven reconnects do). It returns
// once every planned pair touching the local range has both local
// endpoints installed. On failure the listeners are closed and the
// machine is dead.
func (m *Machine) ConnectMesh(ctx context.Context, addrs map[int]string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		if m.dead != nil {
			return m.dead
		}
		return errors.New("tcp: ConnectMesh on closed machine")
	}
	if len(addrs) > 0 {
		m.st.connMu.Lock()
		if m.addrs == nil {
			m.addrs = make(map[int]string, len(addrs))
		}
		for r, a := range addrs {
			if !m.isLocal(r) {
				m.addrs[r] = a
			}
		}
		m.st.connMu.Unlock()
	}
	if err := m.connectLocked(ctx); err != nil {
		m.closed = true
		m.dead = fmt.Errorf("tcp: mesh connect failed: %w", err)
		m.st.closed.Store(true)
		m.st.closeConns()
		m.pumps.Wait()
		return m.dead
	}
	return nil
}

// ResetMesh tears the connections down and joins the pumps, clearing a
// broken mark, but keeps listeners, acceptors and the address table: the
// cluster coordinator resets every worker before reconnecting any, so a
// redial can never race a peer that still considers the mesh broken.
func (m *Machine) ResetMesh() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("tcp: ResetMesh on closed machine")
	}
	m.st.closeConns()
	m.pumps.Wait()
	m.clearTable()
	m.st.broken.Store(false)
	return nil
}

// Broken reports whether the mesh is marked damaged (an abort or a
// between-runs connection failure closed the connections). A
// single-process machine repairs itself on the next Run; a cluster
// worker reports the mark to the coordinator, which drives the
// ResetMesh/ConnectMesh recovery across all workers.
func (m *Machine) Broken() bool { return m.st.broken.Load() }

// LazyDials reports how many on-demand (unplanned) dials the machine
// has performed over its lifetime. Zero on a sparse machine means the
// route plan covered every link the schedules used.
func (m *Machine) LazyDials() int { return int(m.lazyDials.Load()) }

// addrOf resolves the listener address of rank dst: its own listener
// when local, the coordinator-distributed table otherwise.
func (m *Machine) addrOf(dst int) (string, error) {
	if m.isLocal(dst) {
		return m.listeners[dst].Addr().String(), nil
	}
	m.st.connMu.RLock()
	addr, ok := m.addrs[dst]
	m.st.connMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("tcp: no address known for remote rank %d", dst)
	}
	return addr, nil
}

// plannedPairs normalizes a directed link list into the sorted,
// deduplicated unordered peer pairs (a<b) the mesh must dial. A nil
// list plans the full mesh.
func plannedPairs(p int, links [][2]int) ([][2]int, bool, error) {
	if links == nil {
		pairs := make([][2]int, 0, p*(p-1)/2)
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		return pairs, false, nil
	}
	seen := make(map[[2]int]struct{}, len(links))
	pairs := make([][2]int, 0, len(links))
	for _, l := range links {
		a, b := l[0], l[1]
		if a < 0 || a >= p || b < 0 || b >= p {
			return nil, false, fmt.Errorf("tcp: planned link %d→%d outside machine of %d ranks", a, b, p)
		}
		if a == b {
			continue // self sends never touch a socket
		}
		if a > b {
			a, b = b, a
		}
		pr := [2]int{a, b}
		if _, dup := seen[pr]; dup {
			continue
		}
		seen[pr] = struct{}{}
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs, true, nil
}

// Size returns the processor count the machine was built for.
func (m *Machine) Size() int { return m.size }

// Reconnects reports how many times the mesh has been rebuilt after an
// abort or a between-runs connection failure. It is safe to call at any
// time, including concurrently with a run in flight — it reads an atomic
// counter and never waits on the machine's run lock.
func (m *Machine) Reconnects() int {
	return int(m.reconnects.Load())
}

// ConnsOpened reports how many TCP connections the machine has dialed
// over its lifetime — planned setup, reconnect rebuilds and lazy
// on-demand dials, one count per connection (not per endpoint). On a
// sparse machine straight after NewMachine this equals the planned pair
// count; on a full mesh it is p(p−1)/2. Safe to call at any time.
func (m *Machine) ConnsOpened() int {
	return int(m.connsOpened.Load())
}

// PlannedPairs reports how many unordered peer pairs the machine dials
// at setup (and redials on reconnect): the route-derived pair count on
// a sparse machine, p(p−1)/2 on a full mesh.
func (m *Machine) PlannedPairs() int { return len(m.pairs) }

// Sparse reports whether the machine was built with an explicit link
// plan (Options.Links) instead of the full mesh.
func (m *Machine) Sparse() bool { return m.sparse }

// Close tears the machine down: listeners and connections are closed and
// the reader pumps joined. Close is idempotent; a run must not be in
// flight.
func (m *Machine) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	m.st.closed.Store(true)
	for _, ln := range m.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	m.st.closeConns()
	m.pumps.Wait()
	m.acceptors.Wait()
	return nil
}

// Run executes fn on every processor over the warm mesh, rebuilding it
// first if a previous run's abort damaged it. Only the run fields of
// opts are consumed (Context, RunTimeout, RecvTimeout, Tracer); each
// call may pass different ones. A panic on any processor aborts the run
// and is returned as an error; the machine remains usable — the next Run
// reconnects.
func (m *Machine) Run(opts Options, fn func(*Proc)) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		if m.dead != nil {
			return nil, m.dead
		}
		return nil, errors.New("tcp: Run on closed machine")
	}
	if opts.Ports < 0 {
		return nil, fmt.Errorf("tcp: negative Ports %d", opts.Ports)
	}
	if opts.Ports > 0 && opts.FlushThreshold > 0 {
		return nil, errors.New("tcp: Ports and FlushThreshold are mutually exclusive (the driver queue is the coalescing point)")
	}
	if m.st.broken.Load() {
		if m.partial() {
			// A worker must never redial on its own: its peers may still
			// consider the mesh broken and refuse registrations. The
			// coordinator resets every worker, reconnects every worker,
			// then retries the run.
			return nil, errors.New("tcp: mesh broken; awaiting coordinator reset")
		}
		if err := m.reconnect(opts.Context); err != nil {
			// The failed rebuild closed the listeners; the machine is
			// beyond repair and every future Run reports why.
			m.closed = true
			m.dead = fmt.Errorf("tcp: mesh rebuild failed: %w", err)
			m.st.closed.Store(true)
			m.st.closeConns()
			m.pumps.Wait()
			return nil, m.dead
		}
	}

	if opts.Epoch != 0 {
		// Cluster runs: the coordinator assigns one epoch to every
		// worker so frames demultiplex consistently across processes.
		m.epoch = opts.Epoch
	} else {
		m.epoch++
	}
	rs := &runState{epoch: m.epoch, tr: opts.Tracer, ctx: opts.Context}
	p := m.size
	for i := m.lo; i < m.hi; i++ {
		m.procs[i].beginRun(rs, opts.RecvTimeout, opts.FlushThreshold, opts.Ports)
	}
	rs.start = time.Now()
	// Inboxes are wiped and stamped for the new run; only now do the
	// pumps start delivering (current-epoch) frames.
	m.st.run.Store(rs)

	// External abort sources: context cancellation and the whole-run
	// deadline.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	var ctxDone <-chan struct{}
	if opts.Context != nil {
		ctxDone = opts.Context.Done()
	}
	var runTimer *time.Timer
	var runTimeoutC <-chan time.Time
	if opts.RunTimeout > 0 {
		runTimer = time.NewTimer(opts.RunTimeout)
		runTimeoutC = runTimer.C
	}
	if ctxDone != nil || runTimeoutC != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctxDone:
				m.st.abort(rs, &abortError{cause: fmt.Errorf("run canceled: %w", opts.Context.Err()), external: true})
			case <-runTimeoutC:
				m.st.abort(rs, &abortError{cause: fmt.Errorf("run exceeded %v deadline", opts.RunTimeout), external: true})
			case <-watchDone:
			}
		}()
	}

	// The start gate runs after the mailboxes armed but before any rank
	// executes: a cluster worker acks the coordinator here and blocks
	// until the whole cluster is armed, so no frame can reach a process
	// that would still discard it as stale.
	if opts.StartGate != nil {
		if err := opts.StartGate(); err != nil {
			m.st.abort(rs, &abortError{cause: fmt.Errorf("run start aborted: %w", err), external: true})
			m.st.run.Store(nil)
			close(watchDone)
			if runTimer != nil {
				runTimer.Stop()
			}
			watchWG.Wait()
			return nil, fmt.Errorf("tcp: run start aborted: %w", err)
		}
	}

	// roots collects root-cause failures (panics, deadline overruns,
	// broken connections, cancellation); unwinds collects processors
	// that merely unwound after someone else failed. Roots take
	// precedence in the returned error.
	roots := make([]error, p)
	unwinds := make([]error, p)
	var wg sync.WaitGroup
	start := time.Now()
	for i := m.lo; i < m.hi; i++ {
		pr := m.procs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rerr, ok := r.(error)
					if !ok {
						rerr = fmt.Errorf("%v", r)
					}
					var ab *abortError
					if errors.As(rerr, &ab) && !ab.external {
						unwinds[pr.rank] = fmt.Errorf("tcp: rank %d unwound: %w", pr.rank, rerr)
						return
					}
					roots[pr.rank] = fmt.Errorf("tcp: rank %d: %w", pr.rank, rerr)
					// Fail fast: poison every inbox and close the
					// connections so blocked peers unwind instead of
					// hanging on a dead processor.
					m.st.abort(rs, &abortError{cause: fmt.Errorf("machine aborted by rank %d", pr.rank)})
				}
			}()
			// Whatever happens — including a panic in fn — the link
			// drivers must be joined before the rank retires, or a
			// driver could outlive the run's epoch. Registered before
			// the recover handler runs (LIFO).
			defer pr.stopDrivers()
			fn(pr)
			// Frames batched behind the algorithm's last sends still
			// belong to peers; push them out before the rank retires
			// (inside the recover scope — a flush failure aborts the
			// run like any other send failure).
			pr.flushPending()
			// Likewise every queued driver frame: join the drivers, then
			// surface the first driver failure as this rank's own error
			// (the driver goroutine could not panic on our behalf).
			pr.stopDrivers()
			if df := pr.derr.Load(); df != nil {
				panic(df.err)
			}
		}()
	}
	wg.Wait()
	// The run is over: pumps must stop delivering into its mailboxes
	// (late frames are dropped until the next run opens a new epoch).
	m.st.run.Store(nil)
	close(watchDone)
	if runTimer != nil {
		runTimer.Stop()
	}
	watchWG.Wait()
	res := &Result{Elapsed: time.Since(start), Procs: make([]ProcStats, 0, m.hi-m.lo)}
	for i := m.lo; i < m.hi; i++ {
		pr := m.procs[i]
		res.Procs = append(res.Procs, ProcStats{
			Rank: i, Sends: pr.sends, Recvs: pr.recvs,
			SendBytes: pr.sendBytes, RecvBytes: pr.recvBytes,
			BarrierSends: pr.barrierSends, BarrierRecvs: pr.barrierRecvs,
		})
	}
	for _, e := range roots {
		if e != nil {
			return nil, e
		}
	}
	for _, e := range unwinds {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}

// reconnect rebuilds the planned link set — not the full mesh — over
// the still-open listeners after an abort closed the connections: the
// orphaned pumps are joined first so no stale goroutine can touch the
// new mesh, then exactly the pairs the machine was planned with are
// redialed (lazily opened extras from the previous life wait for their
// next on-demand dial).
func (m *Machine) reconnect(ctx context.Context) error {
	m.st.closeConns()
	m.pumps.Wait()
	m.clearTable()
	m.st.broken.Store(false)
	if err := m.connectLocked(ctx); err != nil {
		return err
	}
	m.reconnects.Add(1)
	return nil
}

// clearTable wipes the connection table and endpoint list after the
// pumps are joined; the next connect or lazy dial repopulates it.
func (m *Machine) clearTable() {
	m.st.connMu.Lock()
	m.st.conns = nil
	for _, pr := range m.procs {
		if pr == nil {
			continue
		}
		for k := range pr.conns {
			pr.conns[k] = nil
		}
	}
	m.st.connMu.Unlock()
}

// acceptLoop is rank j's persistent acceptor: it admits connections for
// the machine's lifetime — planned setup dials, reconnect redials and
// lazy on-demand dials all arrive here — and exits when the listener
// closes (Close, or a fatal setup failure).
func (m *Machine) acceptLoop(j int) {
	defer m.acceptors.Done()
	for {
		conn, err := m.listeners[j].Accept()
		if err != nil {
			return
		}
		// The handshake read can block for up to handshakeTimeout; admit
		// concurrently so one dead dialer cannot stall every other
		// connection to this rank.
		go m.admit(j, conn)
	}
}

// admit reads the dialer's rank announcement and registers the accepted
// endpoint. A connection that fails the handshake is dropped, not
// fatal: the dialer's own error path (or the setup wait's deadline)
// reports the failure with better attribution.
func (m *Machine) admit(j int, conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var hs [4]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	peer := int(int32(binary.BigEndian.Uint32(hs[:])))
	if peer < 0 || peer >= m.size || peer == j {
		conn.Close()
		return
	}
	m.applyNoDelay(conn)
	if !m.register(j, peer, conn, false) {
		conn.Close()
	}
}

// register installs one connection endpoint in the table and starts its
// reader pump, broadcasting to anyone waiting for the pair to complete.
// It refuses — and the caller must close the connection — when the mesh
// is closed or broken (a racing teardown). When the slot is already
// filled (a duplicate: across processes, both sides of a pair can lazily
// dial each other at once and neither dialer can see the other's table),
// the established connection keeps the slot — and the pair's FIFO send
// order — but the duplicate is still pumped receive-only: the remote
// process may have installed it as its send path, so refusing it would
// lose frames. dialed marks the dialing end, counted once per connection
// in ConnsOpened.
func (m *Machine) register(owner, peer int, conn net.Conn, dialed bool) bool {
	st := m.st
	st.connMu.Lock()
	defer st.connMu.Unlock()
	if st.closed.Load() || st.broken.Load() {
		return false
	}
	if dialed {
		m.connsOpened.Add(1)
	}
	if m.procs[owner].conns[peer] == nil {
		m.procs[owner].conns[peer] = conn
	}
	st.conns = append(st.conns, conn)
	m.pumps.Add(1)
	go m.pump(m.procs[owner], peer, conn)
	st.connCond.Broadcast()
	return true
}

// setupFail records the first setup error and closes the listeners so
// everything still blocked — acceptors, the pair wait — unwinds. After
// it, the machine is beyond repair (NewMachine returns the error; a
// failed rebuild poisons the session), which matches the historical
// full-mesh behaviour.
func (m *Machine) setupFail(err error) {
	m.st.connMu.Lock()
	if m.setupErr == nil {
		m.setupErr = err
	}
	m.st.connCond.Broadcast()
	m.st.connMu.Unlock()
	for _, ln := range m.listeners {
		if ln != nil {
			ln.Close()
		}
	}
}

// dialRetry dials rank dst — the local listener's address, or the
// coordinator-distributed one for a remote rank — with the machine's
// retry/backoff policy, and announces src. It is the one dial path:
// planned setup, reconnect rebuilds and lazy on-demand dials all come
// through here. ctxDone, when non-nil, cancels the backoff waits and
// the dial itself.
func (m *Machine) dialRetry(ctxDone <-chan struct{}, src, dst int) (net.Conn, error) {
	addr, err := m.addrOf(dst)
	if err != nil {
		return nil, err
	}
	var conn net.Conn
	for attempt := 0; ; attempt++ {
		var err error
		conn, err = m.dialCancelable(ctxDone, addr)
		if err == nil {
			break
		}
		if errors.Is(err, errDialCanceled) {
			return nil, fmt.Errorf("tcp: rank %d dial rank %d: canceled", src, dst)
		}
		if attempt+1 >= m.dialAttempts {
			return nil, fmt.Errorf("tcp: rank %d dial rank %d failed after %d attempts: %w", src, dst, m.dialAttempts, err)
		}
		if m.st.closed.Load() || m.st.broken.Load() {
			// The run aborted (or the machine closed) while we were
			// between attempts; a retry would outlive its purpose.
			return nil, fmt.Errorf("tcp: rank %d dial rank %d: machine torn down", src, dst)
		}
		select {
		case <-time.After(m.dialBackoff << attempt):
		case <-ctxDone:
			return nil, fmt.Errorf("tcp: rank %d dial rank %d: setup canceled", src, dst)
		}
	}
	m.applyNoDelay(conn)
	var hs [4]byte
	binary.BigEndian.PutUint32(hs[:], uint32(int32(src)))
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: rank %d handshake to %d: %w", src, dst, err)
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// errDialCanceled marks a dial abandoned because the caller's context
// ended while the connection attempt was in flight.
var errDialCanceled = errors.New("tcp: dial canceled")

// dialCancelable runs the machine's dialer but returns as soon as
// ctxDone fires, closing the late connection (if any) in the
// background — net dialers take no context, so a black-holed peer would
// otherwise pin the caller for the full OS connect timeout.
func (m *Machine) dialCancelable(ctxDone <-chan struct{}, addr string) (net.Conn, error) {
	if ctxDone == nil {
		return m.dial(addr)
	}
	type dialResult struct {
		conn net.Conn
		err  error
	}
	ch := make(chan dialResult, 1)
	go func() {
		c, err := m.dial(addr)
		ch <- dialResult{c, err}
	}()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-ctxDone:
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, errDialCanceled
	}
}

// lazyCall is one in-flight lazy dial: later requests for the same
// unordered pair (either direction) wait on done instead of dialing a
// duplicate, then pick the winner's connection out of the table.
type lazyCall struct {
	done chan struct{}
	err  error
}

// ensureLink opens the connection for an unplanned (src,dst) link on
// demand: the sparse mesh's correctness fallback. Dials are serialized
// per unordered pair — not machine-wide, so one unreachable peer never
// head-of-line-blocks unrelated lazy dials — and the dialer waits until
// the acceptor's endpoint is registered too, so two ranks racing to
// open the same pair (or the reverse direction of it) always converge
// on one connection. ctx, normally the run's context, bounds the whole
// affair: a canceled run returns promptly instead of sitting out
// handshakeTimeout.
func (m *Machine) ensureLink(ctx context.Context, src, dst int) (net.Conn, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	key := [2]int{src, dst}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	st := m.st
	for {
		st.connMu.RLock()
		c := m.procs[src].conns[dst]
		st.connMu.RUnlock()
		if c != nil {
			return c, nil // a racing dial (either direction) won
		}
		if st.closed.Load() || st.broken.Load() {
			return nil, fmt.Errorf("tcp: lazy dial %d→%d: machine torn down", src, dst)
		}
		m.lazyMu.Lock()
		call := m.lazyInflight[key]
		if call == nil {
			call = &lazyCall{done: make(chan struct{})}
			m.lazyInflight[key] = call
			m.lazyMu.Unlock()
			conn, err := m.lazyDial(ctxDone, src, dst)
			m.lazyMu.Lock()
			delete(m.lazyInflight, key)
			m.lazyMu.Unlock()
			call.err = err
			close(call.done)
			return conn, err
		}
		m.lazyMu.Unlock()
		select {
		case <-call.done:
		case <-ctxDone:
			return nil, fmt.Errorf("tcp: lazy dial %d→%d: run canceled: %w", src, dst, ctx.Err())
		}
		if call.err != nil {
			// The pair's in-flight dial just failed; piling a retry storm
			// of our own onto the same dead peer helps nobody.
			return nil, fmt.Errorf("tcp: lazy dial %d→%d: %w", src, dst, call.err)
		}
		// The winner (either direction) registered the connection; loop
		// to pick it out of the table.
	}
}

// lazyDial performs the winning on-demand dial of one unplanned pair
// and waits until both endpoints are installed.
func (m *Machine) lazyDial(ctxDone <-chan struct{}, src, dst int) (net.Conn, error) {
	conn, err := m.dialRetry(ctxDone, src, dst)
	if err != nil {
		return nil, err
	}
	m.lazyDials.Add(1)
	if !m.register(src, dst, conn, true) {
		conn.Close()
		return nil, fmt.Errorf("tcp: lazy dial %d→%d: machine torn down", src, dst)
	}
	// Send on whatever register left in the table: if a racing accepted
	// connection (the remote side dialing us at the same moment) already
	// owned the slot, our dialed conn is a receive-only duplicate and
	// writing to it would split the link's FIFO order across two streams.
	m.st.connMu.RLock()
	if c := m.procs[src].conns[dst]; c != nil {
		conn = c
	}
	m.st.connMu.RUnlock()
	if !m.isLocal(dst) {
		// The acceptor's endpoint lives in another process; our own
		// registered end is all this process needs.
		return conn, nil
	}
	// Wait for the acceptor's endpoint so the pair is fully established
	// before any frame moves: a half-registered pair could otherwise
	// race the reverse direction into a duplicate connection.
	st := m.st
	wake := func() {
		st.connMu.Lock()
		st.connCond.Broadcast()
		st.connMu.Unlock()
	}
	stop := make(chan struct{})
	defer close(stop)
	if ctxDone != nil {
		go func() {
			select {
			case <-ctxDone:
				wake()
			case <-stop:
			}
		}()
	}
	timer := time.AfterFunc(handshakeTimeout, wake)
	defer timer.Stop()
	deadline := time.Now().Add(handshakeTimeout)
	st.connMu.Lock()
	defer st.connMu.Unlock()
	for m.procs[dst].conns[src] == nil {
		if st.closed.Load() || st.broken.Load() {
			return nil, fmt.Errorf("tcp: lazy dial %d→%d: machine torn down", src, dst)
		}
		if ctxDone != nil {
			select {
			case <-ctxDone:
				return nil, fmt.Errorf("tcp: lazy dial %d→%d: run canceled", src, dst)
			default:
			}
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("tcp: lazy dial %d→%d: peer endpoint not registered within %v", src, dst, handshakeTimeout)
		}
		st.connCond.Wait()
	}
	return conn, nil
}

// connectLocked dials the machine's share of the planned pairs — the
// higher rank dials (when it is local; a remote dialer's worker handles
// it), the persistent acceptors register the other end — and waits
// until every planned pair has its local endpoints installed. On
// failure the listeners are closed (to unblock the acceptors) and every
// partially built connection is torn down. Callers hold m.mu (or, for
// NewMachine, exclusive ownership of a machine nobody else has seen).
func (m *Machine) connectLocked(ctx context.Context) error {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	m.st.connMu.Lock()
	m.setupErr = nil
	m.st.connMu.Unlock()

	// Propagate setup cancellation to the pair wait.
	stop := make(chan struct{})
	defer close(stop)
	if ctxDone != nil {
		go func() {
			select {
			case <-ctxDone:
				m.setupFail(fmt.Errorf("tcp: setup canceled: %w", ctx.Err()))
			case <-stop:
			}
		}()
	}

	// Dial side: the higher rank of every planned pair dials the lower
	// and announces itself, one goroutine per dialing rank so setup
	// latency stays O(pairs/p), with retry and backoff for transient
	// failures. On a partial machine, only local dialers dial; pairs
	// whose higher rank lives in another process are that worker's job
	// and land here through the acceptors.
	byDialer := make([][]int, m.size)
	for _, pr := range m.pairs {
		if m.isLocal(pr[1]) {
			byDialer[pr[1]] = append(byDialer[pr[1]], pr[0])
		}
	}
	var wg sync.WaitGroup
	for i, peers := range byDialer {
		if len(peers) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, peers []int) {
			defer wg.Done()
			for _, j := range peers {
				conn, err := m.dialRetry(ctxDone, i, j)
				if err != nil {
					m.setupFail(err)
					return
				}
				if !m.register(i, j, conn, true) {
					conn.Close()
					m.setupFail(fmt.Errorf("tcp: rank %d dial rank %d: machine torn down during setup", i, j))
					return
				}
			}
		}(i, peers)
	}
	wg.Wait()
	err := m.waitPairs()
	if err != nil {
		for _, ln := range m.listeners {
			if ln != nil {
				ln.Close() // waitPairs timeout: unblock the acceptors too
			}
		}
		m.st.closeConns()
		m.pumps.Wait()
		m.clearTable()
		return err
	}
	return nil
}

// waitPairs blocks until every planned pair has its local endpoints
// registered (the dialed end synchronously, the accepted end by the
// acceptor goroutines; a remote endpoint is the owning worker's
// business), a setup error is reported, or the handshake deadline
// expires.
func (m *Machine) waitPairs() error {
	st := m.st
	timer := time.AfterFunc(handshakeTimeout, func() {
		st.connMu.Lock()
		st.connCond.Broadcast()
		st.connMu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(handshakeTimeout)
	established := func(a, b int) bool {
		if m.isLocal(a) && m.procs[a].conns[b] == nil {
			return false
		}
		if m.isLocal(b) && m.procs[b].conns[a] == nil {
			return false
		}
		return true
	}
	st.connMu.Lock()
	defer st.connMu.Unlock()
	idx := 0
	for {
		if m.setupErr != nil {
			return m.setupErr
		}
		for idx < len(m.pairs) {
			if !established(m.pairs[idx][0], m.pairs[idx][1]) {
				break
			}
			idx++
		}
		if idx == len(m.pairs) {
			return nil
		}
		if !time.Now().Before(deadline) {
			a, b := m.pairs[idx][0], m.pairs[idx][1]
			return fmt.Errorf("tcp: setup: link %d–%d not established within %v", a, b, handshakeTimeout)
		}
		st.connCond.Wait()
	}
}

// applyNoDelay sets the machine's TCP_NODELAY policy on one mesh socket
// (default on; Options.DisableNoDelay leaves Nagle coalescing in place).
// Non-TCP conns — fault-injection wrappers in tests — are left alone,
// and errors are ignored: the policy is a latency tune, not a
// correctness requirement.
func (m *Machine) applyNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(!m.disableNoDelay)
	}
}

// pump reads frames off one connection end for the machine's lifetime
// (or until the mesh breaks). A read error during a run is a mid-run
// connection failure (root cause, the run aborts); during Close or after
// an abort it is the expected teardown; between runs it marks the mesh
// broken so the next Run rebuilds it.
func (m *Machine) pump(pr *Proc, peer int, conn net.Conn) {
	defer m.pumps.Done()
	st := m.st
	rd := &frameReader{r: conn, src: peer, dst: pr.rank}
	for {
		fr, epoch, err := rd.read()
		if err != nil {
			if st.closed.Load() || st.broken.Load() {
				return // session teardown or already-torn mesh
			}
			st.connMu.RLock()
			sidecar := pr.conns[peer] != conn
			st.connMu.RUnlock()
			if sidecar {
				// A receive-only duplicate (the loser of a cross-process
				// pair race) closed: the link's registered connection is
				// still up, so nothing is lost and nobody is blocked.
				return
			}
			rs := st.run.Load()
			if rs != nil {
				pr.in.fail(st, rs, fmt.Errorf("tcp: connection %d→%d failed: %w", peer, pr.rank, err))
				st.abort(rs, &abortError{cause: fmt.Errorf("machine aborted: connection %d→%d failed", peer, pr.rank)})
			} else {
				// A connection died between runs: nobody is blocked on
				// it, so just mark the mesh for rebuild.
				st.broken.Store(true)
			}
			return
		}
		rs := st.run.Load()
		if rs == nil || epoch != rs.epoch {
			// Frame from an earlier run (late or replayed): drop, and
			// recycle its arena buffers — it was never delivered.
			recycleMessage(fr)
			continue
		}
		if fr.Tag == barrierTag {
			recycleMessage(fr) // barrier frames carry no parts normally
			pr.in.pushBarrier(st, rs, peer)
		} else {
			pr.in.push(st, rs, peer, fr, rs.wallIfTraced(), true)
		}
	}
}

// Run builds a fully connected loopback TCP machine of p processors,
// executes fn on each, and tears the machine down. A panic on any
// processor aborts the run and is returned as an error. Run applies no
// deadlines; see RunOpts. For many broadcasts back to back, build a
// Machine once instead.
func Run(p int, fn func(*Proc)) (*Result, error) {
	return RunOpts(p, Options{}, fn)
}

// RunOpts is Run with deadlines, cancellation and dial-retry control
// (see Options). With a RecvTimeout or RunTimeout configured, a hung or
// killed rank becomes a returned error naming the blocked rank and
// peer — never a silent hang. It is the one-shot open-run-close wrapper
// over NewMachine/Machine.Run/Machine.Close.
func RunOpts(p int, opts Options, fn func(*Proc)) (*Result, error) {
	m, err := NewMachine(p, opts)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return m.Run(opts, fn)
}
