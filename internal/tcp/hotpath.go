package tcp

// Hot-path measurement harness for the figTCPHotpath experiment: drive
// one real loopback TCP link with each generation of the frame writer
// and report the achieved frame rate. The experiment itself lives in
// internal/bench (which imports this package; the reverse import would
// cycle), so the raw measurement is exported from here.

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/comm"
)

// Frame-writer modes MeasureFrameRate can drive.
const (
	// FrameModeLegacy is the pre-arena baseline: heap-allocated headers
	// and 2k+1 sequential Writes per k-part frame.
	FrameModeLegacy = "legacy"
	// FrameModeVectored is the engine's current per-frame path: pooled
	// scratch, one Write (or writev) per frame.
	FrameModeVectored = "vectored"
	// FrameModeBatched is the FlushThreshold path: frames coalesce in a
	// buffer written out whenever it reaches the threshold.
	FrameModeBatched = "batched"
)

// MeasureFrameRate writes `frames` single-part messages of payloadBytes
// each over one real loopback TCP connection using the given writer mode
// and returns the achieved rate in frames per second. batchBytes is the
// flush threshold of FrameModeBatched (ignored by the other modes). The
// clock stops only when the draining peer has consumed every byte, so
// the number is end-to-end link throughput, not kernel-buffer fill rate.
func MeasureFrameRate(mode string, payloadBytes, frames, batchBytes int) (float64, error) {
	if frames <= 0 || payloadBytes < 0 {
		return 0, fmt.Errorf("tcp: bad MeasureFrameRate args (frames=%d payload=%d)", frames, payloadBytes)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- acceptResult{c, err}
	}()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer wc.Close()
	ar := <-accepted
	if ar.err != nil {
		return 0, ar.err
	}
	rc := ar.conn
	defer rc.Close()
	if tc, ok := wc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	m := comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 0, Data: make([]byte, payloadBytes)}}}
	total := int64(frames) * int64(frameWireSize(m))
	drained := make(chan error, 1)
	go func() {
		n, err := io.Copy(io.Discard, rc)
		if err == nil && n != total {
			err = fmt.Errorf("tcp: drained %d of %d bytes", n, total)
		}
		drained <- err
	}()

	start := time.Now()
	switch mode {
	case FrameModeLegacy:
		for i := 0; i < frames; i++ {
			if err := writeFrameSeq(wc, 1, m); err != nil {
				return 0, err
			}
		}
	case FrameModeVectored:
		sc := getScratch()
		defer putScratch(sc)
		for i := 0; i < frames; i++ {
			if err := writeFrameTo(wc, 1, m, sc); err != nil {
				return 0, err
			}
		}
	case FrameModeBatched:
		if batchBytes <= 0 {
			return 0, fmt.Errorf("tcp: batched mode needs a positive flush threshold")
		}
		var pend []byte
		for i := 0; i < frames; i++ {
			pend = appendFrame(pend, 1, m)
			if len(pend) >= batchBytes {
				if _, err := wc.Write(pend); err != nil {
					return 0, err
				}
				pend = pend[:0]
			}
		}
		if len(pend) > 0 {
			if _, err := wc.Write(pend); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("tcp: unknown frame mode %q", mode)
	}
	// Half-close the write side so the drain loop's io.Copy terminates,
	// then charge the remaining in-flight bytes to the measured window.
	if tc, ok := wc.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		wc.Close()
	}
	if err := <-drained; err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(frames) / elapsed.Seconds(), nil
}
