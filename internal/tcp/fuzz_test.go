package tcp

import (
	"bytes"
	"testing"

	"repro/internal/comm"
)

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// either return a valid message or an error, never panic or over-allocate.
func FuzzFrameDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 2, Data: []byte("ab")}}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = readFrame(bytes.NewReader(data))
	})
}

// FuzzFrameRoundTrip encodes fuzz-built messages and decodes them back.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, 3, []byte("payload"))
	f.Add(-5, 0, []byte{})
	f.Fuzz(func(t *testing.T, tag, origin int, data []byte) {
		m := comm.Message{Tag: tag, Parts: []comm.Part{{Origin: origin, Data: data}}}
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != tag || got.Parts[0].Origin != origin || !bytes.Equal(got.Parts[0].Data, data) {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	})
}
