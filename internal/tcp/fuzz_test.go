package tcp

import (
	"bytes"
	"testing"

	"repro/internal/comm"
)

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// either return a valid message or an error, never panic or over-allocate.
func FuzzFrameDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, 1, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 2, Data: []byte("ab")}}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

// FuzzFrameRoundTrip encodes fuzz-built messages and decodes them back.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, 3, uint32(0), []byte("payload"))
	f.Add(-5, 0, uint32(7), []byte{})
	f.Fuzz(func(t *testing.T, tag, origin int, epoch uint32, data []byte) {
		m := comm.Message{Tag: tag, Parts: []comm.Part{{Origin: origin, Data: data}}}
		var buf bytes.Buffer
		if err := writeFrame(&buf, epoch, m); err != nil {
			t.Fatal(err)
		}
		got, gotEpoch, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != tag || gotEpoch != epoch || got.Parts[0].Origin != origin || !bytes.Equal(got.Parts[0].Data, data) {
			t.Fatalf("round trip mismatch: %+v (epoch %d)", got, gotEpoch)
		}
	})
}
