package tcp

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/comm"
)

// frameBytes encodes a message for adversarial mutation.
func frameBytes(epoch uint32, m comm.Message) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, epoch, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// either return a valid message or an error, never panic or over-allocate
// (a lying header must not translate into a huge up-front allocation —
// parts storage only grows as payload bytes actually arrive).
func FuzzFrameDecode(f *testing.F) {
	f.Add(frameBytes(1, comm.Message{Tag: 1, Parts: []comm.Part{{Origin: 2, Data: []byte("ab")}}}))
	f.Add(frameBytes(7, comm.Message{Tag: -3, Parts: []comm.Part{
		{Origin: 0, Data: []byte("first")},
		{Origin: 5, Data: nil},
		{Origin: 1, Data: bytes.Repeat([]byte{0xCD}, 300)},
	}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 12))
	// Header claiming maxParts parts with no bytes behind it.
	hdr := make([]byte, frameHdrLen)
	binary.BigEndian.PutUint32(hdr[8:], uint32(maxParts))
	f.Add(append([]byte(nil), hdr...))
	// Truncated mid-part-header and mid-payload.
	whole := frameBytes(3, comm.Message{Tag: 9, Parts: []comm.Part{{Origin: 4, Data: bytes.Repeat([]byte{1}, 64)}}})
	f.Add(whole[:frameHdrLen+4])
	f.Add(whole[:len(whole)-10])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, err := readFrame(bytes.NewReader(data), 1, 0)
		if err != nil {
			if strings.Contains(err.Error(), "corrupt frame") &&
				(!strings.Contains(err.Error(), "from rank 1") || !strings.Contains(err.Error(), "at rank 0")) {
				t.Fatalf("corrupt-frame error does not name both ranks: %v", err)
			}
			return
		}
		if len(m.Parts) > maxParts {
			t.Fatalf("decoder accepted %d parts", len(m.Parts))
		}
	})
}

// FuzzFrameRoundTrip encodes fuzz-built multi-part messages through the
// pooled writer (contiguous and vectored paths, plus the batch encoder)
// and decodes them back; every path must reproduce the message exactly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, 3, uint32(0), []byte("payload"), 1)
	f.Add(-5, 0, uint32(7), []byte{}, 3)
	// Big enough to cross contiguousLimit and take the vectored path.
	f.Add(12, 1, uint32(2), bytes.Repeat([]byte{0x5A}, contiguousLimit), 2)
	f.Fuzz(func(t *testing.T, tag, origin int, epoch uint32, data []byte, nparts int) {
		if nparts < 0 || nparts > 8 {
			return
		}
		m := comm.Message{Tag: tag}
		for i := 0; i < nparts; i++ {
			m.Parts = append(m.Parts, comm.Part{Origin: origin + i, Data: data})
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, epoch, m); err != nil {
			t.Fatal(err)
		}
		batched := appendFrame(nil, epoch, m)
		if !bytes.Equal(buf.Bytes(), batched) {
			t.Fatalf("writeFrame and appendFrame encodings differ (%d vs %d bytes)", buf.Len(), len(batched))
		}
		got, gotEpoch, err := readFrame(&buf, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != tag || gotEpoch != epoch || len(got.Parts) != nparts {
			t.Fatalf("round trip mismatch: %+v (epoch %d)", got, gotEpoch)
		}
		for i, p := range got.Parts {
			if p.Origin != origin+i || !bytes.Equal(p.Data, data) {
				t.Fatalf("part %d mismatch: %+v", i, p)
			}
		}
	})
}

// FuzzFrameCorruptLengths mutates the length fields of an otherwise
// valid frame: negative and oversized part lengths and part counts must
// come back as structured errors naming both ranks — never a panic, a
// huge allocation, or a silent success.
func FuzzFrameCorruptLengths(f *testing.F) {
	f.Add(uint32(1<<20), uint32(16))       // nparts exactly at the maxParts boundary
	f.Add(uint32(0x80000000), uint32(16))  // negative nparts
	f.Add(uint32(2), uint32(0x80000001))   // negative part length
	f.Add(uint32(1), uint32(maxPartLen+1)) // oversized part length
	f.Fuzz(func(t *testing.T, nparts, plen uint32) {
		frame := make([]byte, frameHdrLen+partHdrLen)
		binary.BigEndian.PutUint32(frame[0:], 5)      // epoch
		binary.BigEndian.PutUint32(frame[4:], 1)      // tag
		binary.BigEndian.PutUint32(frame[8:], nparts) // claimed parts
		binary.BigEndian.PutUint32(frame[12:], 3)     // origin
		binary.BigEndian.PutUint32(frame[16:], plen)  // claimed length
		m, _, err := readFrame(bytes.NewReader(frame), 2, 7)
		np := int(int32(nparts))
		pl := int(int32(plen))
		switch {
		case np < 0 || np > maxParts:
			if err == nil || !strings.Contains(err.Error(), "parts") {
				t.Fatalf("bad part count %d accepted (err=%v)", np, err)
			}
		case np >= 1 && (pl < 0 || pl > maxPartLen):
			if err == nil || !strings.Contains(err.Error(), "bytes") {
				t.Fatalf("bad part length %d accepted (err=%v)", pl, err)
			}
		default:
			// Structurally plausible header over a truncated stream:
			// must be an io error, not a panic; a zero-part frame
			// decodes cleanly.
			if np == 0 && (err != nil || len(m.Parts) != 0) {
				t.Fatalf("empty frame: m=%+v err=%v", m, err)
			}
			return
		}
		if !strings.Contains(err.Error(), "from rank 2") || !strings.Contains(err.Error(), "at rank 7") {
			t.Fatalf("corrupt-frame error does not name both ranks: %v", err)
		}
	})
}

// FuzzFrameNPartsBoundary pins the exact maxParts boundary: a frame
// honestly claiming maxParts parts is structurally legal (the decoder
// reads on until the stream ends), one more part is corrupt.
func FuzzFrameNPartsBoundary(f *testing.F) {
	f.Add(uint32(maxParts))
	f.Add(uint32(maxParts + 1))
	f.Fuzz(func(t *testing.T, nparts uint32) {
		hdr := make([]byte, frameHdrLen)
		binary.BigEndian.PutUint32(hdr[8:], nparts)
		_, _, err := readFrame(bytes.NewReader(hdr), 0, 1)
		if err == nil {
			t.Fatal("frame with claimed parts but no body accepted")
		}
		np := int(int32(nparts))
		isCorrupt := strings.Contains(err.Error(), "corrupt frame")
		if (np < 0 || np > maxParts) != isCorrupt {
			t.Fatalf("nparts=%d classified wrong: %v", np, err)
		}
	})
}
