package topology

import (
	"testing"
	"testing/quick"
)

func TestHypercubeBasics(t *testing.T) {
	h := MustHypercube(4)
	if h.Nodes() != 16 || h.Degree() != 4 {
		t.Fatalf("nodes=%d degree=%d", h.Nodes(), h.Degree())
	}
	if _, err := NewHypercube(-1); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := NewHypercube(21); err == nil {
		t.Error("oversized dimension accepted")
	}
	if h0 := MustHypercube(0); h0.Nodes() != 1 {
		t.Errorf("0-cube has %d nodes", h0.Nodes())
	}
}

func TestHypercubeRouteWalks(t *testing.T) {
	h := MustHypercube(5)
	for src := 0; src < h.Nodes(); src++ {
		for dst := 0; dst < h.Nodes(); dst++ {
			path := h.Route(src, dst)
			if len(path) != h.Distance(src, dst) {
				t.Fatalf("route %d→%d: %d links, want %d", src, dst, len(path), h.Distance(src, dst))
			}
			cur := src
			for _, l := range path {
				if l.From != cur {
					t.Fatalf("route %d→%d discontinuous at %v", src, dst, l)
				}
				k := int(l.Dir) - 1
				if k < 0 || k >= h.Dim {
					t.Fatalf("route %d→%d has invalid dimension %v", src, dst, l.Dir)
				}
				cur ^= 1 << k
			}
			if cur != dst {
				t.Fatalf("route %d→%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestHypercubeEcubeOrder(t *testing.T) {
	// e-cube corrects bits lowest-first; dimension indices along a path
	// must strictly increase.
	h := MustHypercube(6)
	path := h.Route(0, 0b101101)
	prev := -1
	for _, l := range path {
		k := int(l.Dir) - 1
		if k <= prev {
			t.Fatalf("dimensions not increasing: %v", path)
		}
		prev = k
	}
}

func TestHypercubeDistanceSymmetricTriangle(t *testing.T) {
	h := MustHypercube(7)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%h.Nodes(), int(b)%h.Nodes(), int(c)%h.Nodes()
		if h.Distance(x, y) != h.Distance(y, x) {
			return false
		}
		return h.Distance(x, z) <= h.Distance(x, y)+h.Distance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeNeighbourOneHop(t *testing.T) {
	h := MustHypercube(8)
	for k := 0; k < h.Dim; k++ {
		if d := h.Distance(0, 1<<k); d != 1 {
			t.Fatalf("dimension-%d neighbour at distance %d", k, d)
		}
	}
	// Br_Lin's halving partner (rank distance p/2) is one hop.
	if d := h.Distance(3, 3^(h.Nodes()/2)); d != 1 {
		t.Fatalf("halving partner at distance %d", d)
	}
}
