package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is a d-dimensional binary hypercube with p = 2^d nodes, the
// third classic MPP interconnect of the paper's reference list (nCUBE,
// iPSC). Nodes are numbered by their coordinate bit strings; node n and
// n^(1<<k) are neighbours along dimension k.
//
// Br_Lin's recursive halving is the hypercube-native dimension-exchange
// pattern: partners at rank distance p/2 are one hop apart here, which
// the topology ablation demonstrates.
type Hypercube struct {
	Dim int
}

// NewHypercube returns a hypercube of the given dimension (0 ≤ d ≤ 20).
func NewHypercube(dim int) (*Hypercube, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("topology: invalid hypercube dimension %d", dim)
	}
	return &Hypercube{Dim: dim}, nil
}

// MustHypercube is NewHypercube that panics on invalid dimension.
func MustHypercube(dim int) *Hypercube {
	h, err := NewHypercube(dim)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Topology.
func (h *Hypercube) Name() string { return fmt.Sprintf("hcube%d", h.Dim) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return 1 << h.Dim }

// Degree implements Topology: one channel per dimension.
func (h *Hypercube) Degree() int { return h.Dim }

// Route implements Topology with e-cube (dimension-ordered) routing:
// correct the differing address bits from lowest to highest. The link
// leaving node n along dimension k carries Direction(k+1), which is
// unique per (node, dimension) pair — the property the contention model
// needs.
func (h *Hypercube) Route(src, dst int) []Link {
	return h.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology.
func (h *Hypercube) AppendRoute(path []Link, src, dst int) []Link {
	checkNode(h, src)
	checkNode(h, dst)
	diff := src ^ dst
	cur := src
	for k := 0; k < h.Dim; k++ {
		bit := 1 << k
		if diff&bit == 0 {
			continue
		}
		path = append(path, Link{From: cur, Dir: Direction(k + 1)})
		cur ^= bit
	}
	return path
}

// Distance implements Topology (Hamming distance).
func (h *Hypercube) Distance(src, dst int) int {
	checkNode(h, src)
	checkNode(h, dst)
	return bits.OnesCount(uint(src ^ dst))
}
