package topology

import (
	"fmt"
	"math/rand"
)

// Indexing maps logical processor ranks (what the algorithms see) to
// positions on a mesh. Br_Lin treats the machine as a linear array; on a
// mesh the paper uses snake-like row-major indexing so that consecutive
// logical ranks are physically adjacent.
type Indexing int

// Supported logical-rank orders on a 2-D mesh.
const (
	// RowMajor numbers processors left-to-right in every row.
	RowMajor Indexing = iota
	// SnakeRowMajor numbers processors left-to-right in even rows and
	// right-to-left in odd rows, so rank i and rank i+1 are always mesh
	// neighbours. This is the order Br_Lin uses (Section 2 of the paper).
	SnakeRowMajor
)

// String names the indexing for configs and tables.
func (ix Indexing) String() string {
	switch ix {
	case RowMajor:
		return "row-major"
	case SnakeRowMajor:
		return "snake"
	}
	return fmt.Sprintf("indexing(%d)", int(ix))
}

// RankToNode converts a logical rank to a row-major mesh node id under the
// indexing scheme.
func (ix Indexing) RankToNode(m *Mesh2D, rank int) int {
	if rank < 0 || rank >= m.Nodes() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, m.Nodes()))
	}
	switch ix {
	case RowMajor:
		return rank
	case SnakeRowMajor:
		row := rank / m.Cols
		col := rank % m.Cols
		if row%2 == 1 {
			col = m.Cols - 1 - col
		}
		return row*m.Cols + col
	}
	panic(fmt.Sprintf("topology: unknown indexing %d", int(ix)))
}

// NodeToRank converts a row-major mesh node id back to a logical rank.
// It is the inverse of RankToNode.
func (ix Indexing) NodeToRank(m *Mesh2D, node int) int {
	checkNode(m, node)
	switch ix {
	case RowMajor:
		return node
	case SnakeRowMajor:
		row := node / m.Cols
		col := node % m.Cols
		if row%2 == 1 {
			col = m.Cols - 1 - col
		}
		return row*m.Cols + col
	}
	panic(fmt.Sprintf("topology: unknown indexing %d", int(ix)))
}

// Placement maps logical ranks to physical nodes. The Paragon lets an
// application own a contiguous submesh (identity placement); on the T3D the
// mapping of virtual to physical processors is outside user control, which
// the paper calls out as the reason topology-aware algorithms were not run
// there. RandomPlacement models that effect deterministically from a seed.
type Placement struct {
	name       string
	rankToNode []int
	nodeToRank []int
}

// IdentityPlacement returns the placement where logical rank i runs on
// physical node i.
func IdentityPlacement(n int) *Placement {
	p := &Placement{name: "identity", rankToNode: make([]int, n), nodeToRank: make([]int, n)}
	for i := 0; i < n; i++ {
		p.rankToNode[i] = i
		p.nodeToRank[i] = i
	}
	return p
}

// RandomPlacement returns a seeded pseudo-random permutation placement of n
// ranks, modelling the T3D's uncontrollable virtual→physical mapping. The
// same seed always yields the same placement, keeping experiments
// reproducible.
func RandomPlacement(n int, seed int64) *Placement {
	p := &Placement{name: fmt.Sprintf("random(seed=%d)", seed), rankToNode: make([]int, n), nodeToRank: make([]int, n)}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for rank, node := range perm {
		p.rankToNode[rank] = node
		p.nodeToRank[node] = rank
	}
	return p
}

// Name identifies the placement for configs and traces.
func (p *Placement) Name() string { return p.name }

// Size returns the number of placed ranks.
func (p *Placement) Size() int { return len(p.rankToNode) }

// Node returns the physical node a logical rank runs on.
func (p *Placement) Node(rank int) int {
	if rank < 0 || rank >= len(p.rankToNode) {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, len(p.rankToNode)))
	}
	return p.rankToNode[rank]
}

// Rank returns the logical rank running on a physical node.
func (p *Placement) Rank(node int) int {
	if node < 0 || node >= len(p.nodeToRank) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, len(p.nodeToRank)))
	}
	return p.nodeToRank[node]
}

// Snake3DPlacement places consecutive logical ranks along a boustrophedon
// walk of the torus: x runs forward then backward as y advances, y runs
// forward then backward as z advances. Consecutive ranks are always
// physical neighbours (as in a space-filling PE numbering), while strided
// rank patterns do not collapse onto a single plane — the behaviour of the
// T3D's fixed, user-uncontrollable virtual→physical numbering.
func Snake3DPlacement(t *Torus3D) *Placement {
	n := t.Nodes()
	p := &Placement{name: "snake3d", rankToNode: make([]int, n), nodeToRank: make([]int, n)}
	for r := 0; r < n; r++ {
		x := r % t.X
		y := (r / t.X) % t.Y
		z := r / (t.X * t.Y)
		if y%2 == 1 {
			x = t.X - 1 - x
		}
		if z%2 == 1 {
			y = t.Y - 1 - y
		}
		node := t.Node(x, y, z)
		p.rankToNode[r] = node
		p.nodeToRank[node] = r
	}
	return p
}

// Factorizations returns every r×c factorization of p with r ≤ c, in
// increasing r. Figure 8 sweeps these for p = 120: 1×120, 2×60, 3×40,
// 4×30, 5×24, 6×20, 8×15, 10×12.
func Factorizations(p int) [][2]int {
	if p <= 0 {
		return nil
	}
	var out [][2]int
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			out = append(out, [2]int{r, p / r})
		}
	}
	return out
}

// NearSquare returns the factorization r×c of p with r ≤ c and r as close
// to √p as possible. Used when an experiment asks for "a p-processor
// Paragon" without pinning the dimensions.
func NearSquare(p int) (r, c int) {
	f := Factorizations(p)
	if len(f) == 0 {
		return 1, p
	}
	best := f[len(f)-1]
	return best[0], best[1]
}

// TorusDims factors p into torus dimensions x ≤ y ≤ z minimizing the
// spread z−x (near-cubic, like the T3D's physical configurations). It is
// the canonical k-ary n-dimensional decomposition shared by the machine
// constructors and the torus-aware schedules (the Jung–Sakho all-to-all
// decomposes the rank space along exactly these dimensions).
func TorusDims(p int) (x, y, z int) {
	if p <= 0 {
		panic(fmt.Sprintf("topology: non-positive processor count %d", p))
	}
	best := [3]int{1, 1, p}
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		rest := p / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			if c-a < best[2]-best[0] {
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}
