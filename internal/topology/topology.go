// Package topology models the interconnection networks of the two machines
// the paper evaluates on: the Intel Paragon's 2-D mesh and the Cray T3D's
// 3-D torus. It provides node coordinate systems, deterministic
// dimension-ordered routing (the routing both machines used), directed link
// identifiers for the network contention model, and logical-rank indexing
// schemes (row-major and snake-like row-major, the order Br_Lin uses on a
// mesh).
//
// All routing here is minimal and deterministic: X-then-Y on the mesh,
// dimension order with shortest wraparound direction on the torus. That is
// the first-order model of the wormhole routers in both machines.
package topology

import (
	"fmt"
)

// Direction identifies one of the (at most six) outgoing directed channels
// of a router node. The mesh uses East/West/North/South; the torus uses all
// six. Self is a pseudo-direction for zero-hop (local) transfers.
type Direction int

// Directions of travel across a single link. On the 2-D mesh, "East" means
// increasing column and "South" increasing row; on the 3-D torus XPos means
// increasing x coordinate (with wraparound), and so on.
const (
	Self  Direction = iota
	East            // +col (mesh) / +x (torus)
	West            // -col / -x
	South           // +row / +y
	North           // -row / -y
	Up              // +z (torus only)
	Down            // -z (torus only)
	numDirections
)

// String returns the conventional compass/axis name of the direction.
func (d Direction) String() string {
	switch d {
	case Self:
		return "self"
	case East:
		return "east"
	case West:
		return "west"
	case South:
		return "south"
	case North:
		return "north"
	case Up:
		return "up"
	case Down:
		return "down"
	}
	return fmt.Sprintf("direction(%d)", int(d))
}

// Link is a directed channel from node From leaving in direction Dir.
// Two nodes connected by a physical wire therefore contribute two Links,
// one per direction, which matches the full-duplex channels of both the
// Paragon (200 MB/s per channel) and the T3D (300 MB/s per channel).
type Link struct {
	From int       // physical node the channel leaves
	Dir  Direction // direction of travel
}

// String renders the link as "node→dir" for traces and error messages.
func (l Link) String() string { return fmt.Sprintf("%d→%s", l.From, l.Dir) }

// Topology describes a physical interconnect: how many nodes it has, how
// they are wired, and the deterministic route a wormhole between two nodes
// takes. Implementations must be pure: Route must always return the same
// path for the same pair.
type Topology interface {
	// Name identifies the topology (for configs, traces, and tables).
	Name() string
	// Nodes returns the number of physical nodes.
	Nodes() int
	// Degree returns the maximum number of outgoing channels per node.
	Degree() int
	// Route returns the ordered directed links a message from src to dst
	// traverses. A zero-length path means src == dst (local delivery).
	// Route panics if src or dst is out of range; callers are internal
	// and out-of-range ranks indicate a bug, not an input error.
	Route(src, dst int) []Link
	// AppendRoute appends Route(src, dst) to path and returns the
	// extended slice, letting hot-path callers (the network's pricing
	// loop prices one route per simulated message) reuse a single
	// backing array instead of allocating per call.
	AppendRoute(path []Link, src, dst int) []Link
	// Distance returns the number of hops between src and dst, equal to
	// len(Route(src,dst)) but cheaper to compute.
	Distance(src, dst int) int
}

func checkNode(t Topology, n int) {
	if n < 0 || n >= t.Nodes() {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.Nodes()))
	}
}

// Mesh2D is an r×c two-dimensional mesh without wraparound, the Intel
// Paragon's interconnect. Nodes are numbered in row-major order:
// node = row*Cols + col.
type Mesh2D struct {
	Rows, Cols int
}

// NewMesh2D returns an r×c mesh. It returns an error when either dimension
// is not positive; the paper's machines range from 2×2 to 16×16.
func NewMesh2D(rows, cols int) (*Mesh2D, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: invalid mesh dimensions %d×%d", rows, cols)
	}
	return &Mesh2D{Rows: rows, Cols: cols}, nil
}

// MustMesh2D is NewMesh2D that panics on invalid dimensions, for use with
// compile-time-constant dimensions in tests and experiment tables.
func MustMesh2D(rows, cols int) *Mesh2D {
	m, err := NewMesh2D(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Topology.
func (m *Mesh2D) Name() string { return fmt.Sprintf("mesh%dx%d", m.Rows, m.Cols) }

// Nodes implements Topology.
func (m *Mesh2D) Nodes() int { return m.Rows * m.Cols }

// Degree implements Topology. A mesh router has at most four mesh channels.
func (m *Mesh2D) Degree() int { return 4 }

// Coord returns the (row, col) coordinates of a node.
func (m *Mesh2D) Coord(node int) (row, col int) {
	checkNode(m, node)
	return node / m.Cols, node % m.Cols
}

// Node returns the node at (row, col).
func (m *Mesh2D) Node(row, col int) int {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("topology: coordinate (%d,%d) outside %d×%d mesh", row, col, m.Rows, m.Cols))
	}
	return row*m.Cols + col
}

// Route implements Topology using XY (column-first) dimension-ordered
// routing: travel along the row to the destination column, then along the
// column. This is the e-cube routing the Paragon hardware used.
func (m *Mesh2D) Route(src, dst int) []Link {
	return m.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology.
func (m *Mesh2D) AppendRoute(path []Link, src, dst int) []Link {
	checkNode(m, src)
	checkNode(m, dst)
	if src == dst {
		return path
	}
	sr, sc := src/m.Cols, src%m.Cols
	dr, dc := dst/m.Cols, dst%m.Cols
	r, c := sr, sc
	for c != dc {
		dir := East
		step := 1
		if dc < c {
			dir = West
			step = -1
		}
		path = append(path, Link{From: r*m.Cols + c, Dir: dir})
		c += step
	}
	for r != dr {
		dir := South
		step := 1
		if dr < r {
			dir = North
			step = -1
		}
		path = append(path, Link{From: r*m.Cols + c, Dir: dir})
		r += step
	}
	return path
}

// Distance implements Topology (Manhattan distance).
func (m *Mesh2D) Distance(src, dst int) int {
	checkNode(m, src)
	checkNode(m, dst)
	sr, sc := src/m.Cols, src%m.Cols
	dr, dc := dst/m.Cols, dst%m.Cols
	return abs(dr-sr) + abs(dc-sc)
}

// Torus3D is an X×Y×Z three-dimensional torus (wraparound in every
// dimension), the Cray T3D's interconnect. Nodes are numbered
// node = (z*Y + y)*X + x.
type Torus3D struct {
	X, Y, Z int
}

// NewTorus3D returns an x×y×z torus. Dimensions must be positive.
func NewTorus3D(x, y, z int) (*Torus3D, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("topology: invalid torus dimensions %d×%d×%d", x, y, z)
	}
	return &Torus3D{X: x, Y: y, Z: z}, nil
}

// MustTorus3D is NewTorus3D that panics on invalid dimensions.
func MustTorus3D(x, y, z int) *Torus3D {
	t, err := NewTorus3D(x, y, z)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Topology.
func (t *Torus3D) Name() string { return fmt.Sprintf("torus%dx%dx%d", t.X, t.Y, t.Z) }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

// Degree implements Topology. A torus router has six channels (±x, ±y, ±z).
func (t *Torus3D) Degree() int { return 6 }

// Coord returns the (x, y, z) coordinates of a node.
func (t *Torus3D) Coord(node int) (x, y, z int) {
	checkNode(t, node)
	x = node % t.X
	y = (node / t.X) % t.Y
	z = node / (t.X * t.Y)
	return x, y, z
}

// Node returns the node at (x, y, z).
func (t *Torus3D) Node(x, y, z int) int {
	if x < 0 || x >= t.X || y < 0 || y >= t.Y || z < 0 || z >= t.Z {
		panic(fmt.Sprintf("topology: coordinate (%d,%d,%d) outside %d×%d×%d torus", x, y, z, t.X, t.Y, t.Z))
	}
	return (z*t.Y+y)*t.X + x
}

// torusSteps returns the signed number of steps from a to b along a ring of
// the given size, taking the shorter wraparound direction (ties broken
// toward the positive direction, matching deterministic hardware routing).
func torusSteps(a, b, size int) int {
	d := (b - a + size) % size
	if d*2 <= size {
		return d
	}
	return d - size
}

// Route implements Topology using dimension-ordered routing (x, then y,
// then z), each dimension taking the shorter wraparound direction.
func (t *Torus3D) Route(src, dst int) []Link {
	return t.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology.
func (t *Torus3D) AppendRoute(path []Link, src, dst int) []Link {
	checkNode(t, src)
	checkNode(t, dst)
	if src == dst {
		return path
	}
	sx, sy, sz := t.Coord(src)
	dx, dy, dz := t.Coord(dst)
	walk := func(cur *int, size int, target int, pos, neg Direction, at func() int) {
		steps := torusSteps(*cur, target, size)
		dir, inc := pos, 1
		if steps < 0 {
			dir, inc, steps = neg, -1, -steps
		}
		for i := 0; i < steps; i++ {
			path = append(path, Link{From: at(), Dir: dir})
			*cur = ((*cur + inc) + size) % size
		}
	}
	x, y, z := sx, sy, sz
	walk(&x, t.X, dx, East, West, func() int { return t.Node(x, y, z) })
	walk(&y, t.Y, dy, South, North, func() int { return t.Node(x, y, z) })
	walk(&z, t.Z, dz, Up, Down, func() int { return t.Node(x, y, z) })
	return path
}

// Distance implements Topology (wraparound Manhattan distance).
func (t *Torus3D) Distance(src, dst int) int {
	checkNode(t, src)
	checkNode(t, dst)
	sx, sy, sz := t.Coord(src)
	dx, dy, dz := t.Coord(dst)
	return abs(torusSteps(sx, dx, t.X)) + abs(torusSteps(sy, dy, t.Y)) + abs(torusSteps(sz, dz, t.Z))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
