package topology

import (
	"testing"
	"testing/quick"
)

func TestMesh2DCoordRoundTrip(t *testing.T) {
	m := MustMesh2D(7, 9)
	for node := 0; node < m.Nodes(); node++ {
		r, c := m.Coord(node)
		if got := m.Node(r, c); got != node {
			t.Fatalf("Node(Coord(%d)) = %d", node, got)
		}
	}
}

func TestMesh2DRouteEndpoints(t *testing.T) {
	m := MustMesh2D(5, 6)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			path := m.Route(src, dst)
			if len(path) != m.Distance(src, dst) {
				t.Fatalf("route %d→%d: len=%d want distance %d", src, dst, len(path), m.Distance(src, dst))
			}
			if src == dst {
				if len(path) != 0 {
					t.Fatalf("self route %d not empty", src)
				}
				continue
			}
			if path[0].From != src {
				t.Fatalf("route %d→%d starts at %d", src, dst, path[0].From)
			}
			// Walk the path link by link and confirm it ends at dst.
			cur := src
			for _, l := range path {
				if l.From != cur {
					t.Fatalf("route %d→%d: discontinuity at %v (cur=%d)", src, dst, l, cur)
				}
				cur = meshStep(m, cur, l.Dir, t)
			}
			if cur != dst {
				t.Fatalf("route %d→%d ends at %d", src, dst, cur)
			}
		}
	}
}

func meshStep(m *Mesh2D, node int, d Direction, t *testing.T) int {
	r, c := m.Coord(node)
	switch d {
	case East:
		c++
	case West:
		c--
	case South:
		r++
	case North:
		r--
	default:
		t.Fatalf("unexpected mesh direction %v", d)
	}
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		t.Fatalf("mesh route stepped off the mesh: node %d dir %v", node, d)
	}
	return m.Node(r, c)
}

func TestMesh2DXYOrder(t *testing.T) {
	// XY routing must finish all horizontal hops before any vertical hop.
	m := MustMesh2D(8, 8)
	path := m.Route(m.Node(1, 1), m.Node(5, 6))
	sawVertical := false
	for _, l := range path {
		switch l.Dir {
		case South, North:
			sawVertical = true
		case East, West:
			if sawVertical {
				t.Fatalf("horizontal hop after vertical hop: %v", path)
			}
		}
	}
}

func TestTorus3DCoordRoundTrip(t *testing.T) {
	tor := MustTorus3D(4, 3, 5)
	for node := 0; node < tor.Nodes(); node++ {
		x, y, z := tor.Coord(node)
		if got := tor.Node(x, y, z); got != node {
			t.Fatalf("Node(Coord(%d)) = %d", node, got)
		}
	}
}

func torusStep(tor *Torus3D, node int, d Direction, t *testing.T) int {
	x, y, z := tor.Coord(node)
	switch d {
	case East:
		x = (x + 1) % tor.X
	case West:
		x = (x - 1 + tor.X) % tor.X
	case South:
		y = (y + 1) % tor.Y
	case North:
		y = (y - 1 + tor.Y) % tor.Y
	case Up:
		z = (z + 1) % tor.Z
	case Down:
		z = (z - 1 + tor.Z) % tor.Z
	default:
		t.Fatalf("unexpected torus direction %v", d)
	}
	return tor.Node(x, y, z)
}

func TestTorus3DRouteEndpoints(t *testing.T) {
	tor := MustTorus3D(4, 4, 2) // 32 nodes, small enough for all pairs
	for src := 0; src < tor.Nodes(); src++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			path := tor.Route(src, dst)
			if len(path) != tor.Distance(src, dst) {
				t.Fatalf("route %d→%d: len=%d want %d", src, dst, len(path), tor.Distance(src, dst))
			}
			cur := src
			for _, l := range path {
				if l.From != cur {
					t.Fatalf("route %d→%d: discontinuity at %v", src, dst, l)
				}
				cur = torusStep(tor, cur, l.Dir, t)
			}
			if cur != dst {
				t.Fatalf("route %d→%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestTorusShorterDirection(t *testing.T) {
	tor := MustTorus3D(8, 1, 1)
	// 0 → 6 should wrap west (2 hops), not go east (6 hops).
	if d := tor.Distance(0, 6); d != 2 {
		t.Fatalf("Distance(0,6) on ring of 8 = %d, want 2", d)
	}
	// Tie (distance 4 either way) must still be 4 hops.
	if d := tor.Distance(0, 4); d != 4 {
		t.Fatalf("Distance(0,4) on ring of 8 = %d, want 4", d)
	}
}

func TestTorusDistanceSymmetric(t *testing.T) {
	tor := MustTorus3D(5, 3, 4)
	f := func(a, b uint16) bool {
		s := int(a) % tor.Nodes()
		d := int(b) % tor.Nodes()
		return tor.Distance(s, d) == tor.Distance(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnakeIndexingBijective(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 7}, {7, 1}, {4, 4}, {5, 6}, {10, 10}, {3, 40}} {
		m := MustMesh2D(dims[0], dims[1])
		for _, ix := range []Indexing{RowMajor, SnakeRowMajor} {
			seen := make(map[int]bool, m.Nodes())
			for rank := 0; rank < m.Nodes(); rank++ {
				node := ix.RankToNode(m, rank)
				if seen[node] {
					t.Fatalf("%v on %v: node %d hit twice", ix, m.Name(), node)
				}
				seen[node] = true
				if back := ix.NodeToRank(m, node); back != rank {
					t.Fatalf("%v on %v: NodeToRank(RankToNode(%d)) = %d", ix, m.Name(), rank, back)
				}
			}
		}
	}
}

func TestSnakeAdjacency(t *testing.T) {
	// Consecutive snake ranks must be physical mesh neighbours.
	m := MustMesh2D(6, 5)
	for rank := 0; rank+1 < m.Nodes(); rank++ {
		a := SnakeRowMajor.RankToNode(m, rank)
		b := SnakeRowMajor.RankToNode(m, rank+1)
		if m.Distance(a, b) != 1 {
			t.Fatalf("snake ranks %d,%d map to nodes %d,%d at distance %d", rank, rank+1, a, b, m.Distance(a, b))
		}
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	for _, p := range []*Placement{IdentityPlacement(37), RandomPlacement(64, 1), RandomPlacement(64, 2)} {
		for rank := 0; rank < p.Size(); rank++ {
			if got := p.Rank(p.Node(rank)); got != rank {
				t.Fatalf("%s: Rank(Node(%d)) = %d", p.Name(), rank, got)
			}
		}
	}
}

func TestRandomPlacementDeterministic(t *testing.T) {
	a := RandomPlacement(100, 42)
	b := RandomPlacement(100, 42)
	for i := 0; i < 100; i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatalf("same seed diverged at rank %d", i)
		}
	}
	c := RandomPlacement(100, 43)
	same := true
	for i := 0; i < 100; i++ {
		if a.Node(i) != c.Node(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestFactorizations(t *testing.T) {
	got := Factorizations(120)
	want := [][2]int{{1, 120}, {2, 60}, {3, 40}, {4, 30}, {5, 24}, {6, 20}, {8, 15}, {10, 12}}
	if len(got) != len(want) {
		t.Fatalf("Factorizations(120) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Factorizations(120)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNearSquare(t *testing.T) {
	cases := []struct{ p, r, c int }{
		{100, 10, 10}, {256, 16, 16}, {120, 10, 12}, {4, 2, 2}, {7, 1, 7}, {2, 1, 2},
	}
	for _, tc := range cases {
		r, c := NearSquare(tc.p)
		if r != tc.r || c != tc.c {
			t.Errorf("NearSquare(%d) = %d×%d, want %d×%d", tc.p, r, c, tc.r, tc.c)
		}
	}
}

func TestInvalidDimensions(t *testing.T) {
	if _, err := NewMesh2D(0, 5); err == nil {
		t.Error("NewMesh2D(0,5) succeeded")
	}
	if _, err := NewMesh2D(5, -1); err == nil {
		t.Error("NewMesh2D(5,-1) succeeded")
	}
	if _, err := NewTorus3D(2, 0, 2); err == nil {
		t.Error("NewTorus3D(2,0,2) succeeded")
	}
}

func TestMeshRouteProperty(t *testing.T) {
	m := MustMesh2D(9, 11)
	f := func(a, b uint16) bool {
		src := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		path := m.Route(src, dst)
		if len(path) != m.Distance(src, dst) {
			return false
		}
		// Triangle inequality through a random midpoint.
		mid := (src + dst) / 2
		return m.Distance(src, dst) <= m.Distance(src, mid)+m.Distance(mid, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionStrings(t *testing.T) {
	names := map[Direction]string{
		Self: "self", East: "east", West: "west", South: "south",
		North: "north", Up: "up", Down: "down",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
	if Direction(42).String() == "" {
		t.Error("unknown direction has empty name")
	}
	l := Link{From: 7, Dir: East}
	if l.String() != "7→east" {
		t.Errorf("Link.String() = %q", l.String())
	}
}

func TestTopologyNames(t *testing.T) {
	if got := MustMesh2D(3, 4).Name(); got != "mesh3x4" {
		t.Errorf("mesh name %q", got)
	}
	if got := MustTorus3D(2, 3, 4).Name(); got != "torus2x3x4" {
		t.Errorf("torus name %q", got)
	}
	if got := MustHypercube(5).Name(); got != "hcube5" {
		t.Errorf("hypercube name %q", got)
	}
	if got := IdentityPlacement(4).Name(); got != "identity" {
		t.Errorf("identity placement name %q", got)
	}
	if got := SnakeRowMajor.String(); got != "snake" {
		t.Errorf("indexing name %q", got)
	}
	if got := RowMajor.String(); got != "row-major" {
		t.Errorf("indexing name %q", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := MustMesh2D(2, 2)
	for label, fn := range map[string]func(){
		"mesh coord":     func() { m.Coord(9) },
		"mesh node":      func() { m.Node(5, 0) },
		"mesh route":     func() { m.Route(0, 9) },
		"torus coord":    func() { MustTorus3D(2, 2, 2).Coord(-1) },
		"torus node":     func() { MustTorus3D(2, 2, 2).Node(0, 0, 5) },
		"hcube route":    func() { MustHypercube(2).Route(0, 7) },
		"rank to node":   func() { SnakeRowMajor.RankToNode(m, 9) },
		"placement node": func() { IdentityPlacement(2).Node(3) },
		"placement rank": func() { IdentityPlacement(2).Rank(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", label)
				}
			}()
			fn()
		}()
	}
}
