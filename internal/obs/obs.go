// Package obs defines the engine-agnostic observability event model: one
// Event type shared by every execution engine (internal/sim, internal/live,
// internal/tcp) and by the fault injector (internal/faults), so a single
// recorded stream can interleave algorithm traffic, engine waits and
// injected chaos. internal/trace records streams and exports them (JSON
// lines, Chrome trace format).
//
// Timestamps come in two clocks. The simulator stamps Clock/Arrival/Dur in
// virtual nanoseconds (network.Time); the real-byte engines stamp Wall/Dur
// in wall-clock nanoseconds since the run started. An event stream uses one
// clock or the other — consumers pick the wall clock whenever any event
// carries it (see HasWall).
//
// Every field is cheap plain data: emitting an Event allocates nothing, and
// engines only construct one after a nil check on their Tracer, so tracing
// disabled costs a single predictable branch per operation.
package obs

import "repro/internal/network"

// Event kinds. Send/Recv/Barrier/Combine mirror the comm.Comm operations;
// Wait is the blocked portion of a receive (the paper's wait parameter);
// Fault marks an injected fault from internal/faults.
const (
	KindSend    = "send"
	KindRecv    = "recv"
	KindWait    = "wait"
	KindBarrier = "barrier"
	KindCombine = "combine"
	KindFault   = "fault"
)

// Event is a single engine occurrence.
type Event struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Rank is the processor the event happened on (for link faults, the
	// sending rank).
	Rank int `json:"rank"`
	// Peer is the other end of the operation: destination for sends and
	// link faults, source for receives and waits; -1 when there is none
	// (barrier, combine, kill).
	Peer int `json:"peer"`
	// Bytes is the payload length moved or combined.
	Bytes int `json:"bytes,omitempty"`
	// Parts is the number of bundled original messages.
	Parts int `json:"parts,omitempty"`
	// Tag is the message tag (sends and receives).
	Tag int `json:"tag,omitempty"`
	// Seq is the 0-based message index on the (Rank, Peer) link, stamped
	// on fault events so a fault can be matched to the send it hit.
	Seq int `json:"seq,omitempty"`
	// Clock is the virtual time at which the operation completed
	// (simulator only).
	Clock network.Time `json:"clock,omitempty"`
	// Arrival is the virtual arrival instant of the received message
	// (simulator receives only).
	Arrival network.Time `json:"arrival,omitempty"`
	// Wall is the wall-clock time at which the operation completed, in
	// nanoseconds since the run started (live and tcp engines, faults).
	Wall int64 `json:"wall,omitempty"`
	// Dur is how long the operation took, in the event's clock (virtual
	// for the simulator, wall for the real-byte engines): the send or
	// receive processing cost, the blocked time of a wait, the injected
	// latency of a delay fault.
	Dur network.Time `json:"dur,omitempty"`
	// Iter is the algorithm iteration the event belongs to (-1 before the
	// first BeginIter).
	Iter int `json:"iter"`
	// Phase is the algorithm-stamped phase label (comm.MarkPhase), empty
	// when the algorithm does not stamp phases.
	Phase string `json:"phase,omitempty"`
	// Fault is the injected fault kind ("drop", "delay", "duplicate",
	// "corrupt", "kill") for Kind == KindFault.
	Fault string `json:"fault,omitempty"`
}

// Tracer observes events. Simulator tracers run inline under the scheduler
// token and need no locking; tracers attached to the live or tcp engine (or
// the fault injector) are called from many goroutines concurrently and must
// be safe for concurrent use — trace.Recorder is.
type Tracer interface {
	Trace(Event)
}

// HasWall reports whether the stream carries wall-clock timestamps (a
// live/tcp run) rather than virtual ones (a simulated run).
func HasWall(events []Event) bool {
	for _, e := range events {
		if e.Wall > 0 {
			return true
		}
	}
	return false
}

// End returns the event's completion timestamp in its native clock.
func (e Event) End(wall bool) network.Time {
	if wall {
		return network.Time(e.Wall)
	}
	return e.Clock
}

// Start returns the event's begin timestamp in its native clock (End minus
// the duration, floored at zero).
func (e Event) Start(wall bool) network.Time {
	t := e.End(wall) - e.Dur
	if t < 0 {
		return 0
	}
	return t
}
