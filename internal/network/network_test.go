package network

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mustNet(t *testing.T, topo topology.Topology, cfg Config) *Network {
	t.Helper()
	n, err := New(topo, topology.IdentityPlacement(topo.Nodes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigsValidate(t *testing.T) {
	for _, c := range []Config{ParagonNX(), ParagonMPI(), T3DMPI()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestScale(t *testing.T) {
	base := ParagonNX()
	mpi := ParagonMPI()
	if mpi.SendOverhead <= base.SendOverhead {
		t.Error("MPI send overhead not above NX")
	}
	if mpi.LinkBandwidth != base.LinkBandwidth {
		t.Error("Scale must not touch bandwidth")
	}
	if mpi.NetStartup != base.NetStartup {
		t.Error("Scale must not touch network startup")
	}
}

func TestTransferSelfCostsStartupOnly(t *testing.T) {
	n := mustNet(t, topology.MustMesh2D(4, 4), ParagonNX())
	got := n.Transfer(3, 3, 1<<20, 100)
	want := Time(100) + ParagonNX().NetStartup
	if got != want {
		t.Fatalf("self transfer arrival = %d, want %d", got, want)
	}
}

func TestTransferMonotoneInBytes(t *testing.T) {
	topo := topology.MustMesh2D(8, 8)
	f := func(a, b uint16, kb uint8) bool {
		n := mustNet(t, topo, ParagonNX())
		src := int(a) % topo.Nodes()
		dst := int(b) % topo.Nodes()
		small := n.Transfer(src, dst, 64, 0)
		n.Reset()
		big := n.Transfer(src, dst, 64+int(kb)*1024, 0)
		return big >= small
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWormholeContentionSerializes(t *testing.T) {
	// Two transfers sharing the middle link of a 1×4 mesh must serialize.
	topo := topology.MustMesh2D(1, 4)
	n := mustNet(t, topo, ParagonNX())
	a1 := n.Transfer(0, 3, 4096, 0)
	a2 := n.Transfer(1, 2, 4096, 0) // uses link 1→2, held by the first wormhole
	if a2 < a1 {
		t.Fatalf("overlapping transfer finished first: %d < %d", a2, a1)
	}
	wire := ParagonNX().WireTime(1, 4096)
	if a2 < a1+wire {
		t.Fatalf("second transfer (%d) not serialized after first (%d) + wire (%d)", a2, a1, wire)
	}
}

func TestDisjointPathsOverlap(t *testing.T) {
	// Transfers on disjoint rows must not delay each other.
	topo := topology.MustMesh2D(2, 4)
	n := mustNet(t, topo, ParagonNX())
	solo := n.Transfer(topo.Node(0, 0), topo.Node(0, 3), 8192, 0)
	n.Reset()
	_ = n.Transfer(topo.Node(1, 0), topo.Node(1, 3), 8192, 0)
	withOther := n.Transfer(topo.Node(0, 0), topo.Node(0, 3), 8192, 0)
	if withOther != solo {
		t.Fatalf("disjoint transfer delayed: %d vs %d", withOther, solo)
	}
}

func TestStoreAndForwardSlowerThanWormhole(t *testing.T) {
	topo := topology.MustMesh2D(1, 8)
	wcfg := ParagonNX()
	scfg := ParagonNX()
	scfg.Switching = StoreAndForward
	w := mustNet(t, topo, wcfg)
	s := mustNet(t, topo, scfg)
	const bytes = 16384
	aw := w.Transfer(0, 7, bytes, 0)
	as := s.Transfer(0, 7, bytes, 0)
	if as <= aw {
		t.Fatalf("store-and-forward (%d) not slower than wormhole (%d) on a long path", as, aw)
	}
}

func TestResetClearsState(t *testing.T) {
	topo := topology.MustMesh2D(1, 4)
	n := mustNet(t, topo, ParagonNX())
	first := n.Transfer(0, 3, 4096, 0)
	_ = n.Transfer(0, 3, 4096, 0) // queued behind the first
	n.Reset()
	if st := n.Stats(); st.Transfers != 0 || st.Bytes != 0 {
		t.Fatalf("stats not cleared: %+v", st)
	}
	again := n.Transfer(0, 3, 4096, 0)
	if again != first {
		t.Fatalf("post-reset transfer priced differently: %d vs %d", again, first)
	}
}

func TestStatsAccumulate(t *testing.T) {
	topo := topology.MustMesh2D(4, 4)
	n := mustNet(t, topo, ParagonNX())
	n.Transfer(0, 15, 1000, 0)
	n.Transfer(5, 10, 2000, 0)
	st := n.Stats()
	if st.Transfers != 2 {
		t.Errorf("Transfers = %d", st.Transfers)
	}
	if st.Bytes != 3000 {
		t.Errorf("Bytes = %d", st.Bytes)
	}
	if st.LinkBusy <= 0 {
		t.Errorf("LinkBusy = %d", st.LinkBusy)
	}
}

func TestRandomPlacementChangesCosts(t *testing.T) {
	// Under random placement, logically adjacent ranks are usually far
	// apart physically, so a neighbour transfer costs more than under
	// identity placement.
	topo := topology.MustTorus3D(8, 4, 4)
	id, err := New(topo, topology.IdentityPlacement(topo.Nodes()), T3DMPI())
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := New(topo, topology.RandomPlacement(topo.Nodes(), 7), T3DMPI())
	if err != nil {
		t.Fatal(err)
	}
	var idTotal, rndTotal Time
	for r := 0; r+1 < topo.Nodes(); r++ {
		idTotal += id.Transfer(r, r+1, 1024, 0)
		id.Reset()
		rndTotal += rnd.Transfer(r, r+1, 1024, 0)
		rnd.Reset()
	}
	if rndTotal <= idTotal {
		t.Fatalf("random placement (%d) not costlier than identity (%d) for neighbour traffic", rndTotal, idTotal)
	}
}

func TestPlacementSizeMismatch(t *testing.T) {
	topo := topology.MustMesh2D(4, 4)
	if _, err := New(topo, topology.IdentityPlacement(8), ParagonNX()); err == nil {
		t.Fatal("mismatched placement accepted")
	}
}

func TestWireTimeComponents(t *testing.T) {
	cfg := ParagonNX()
	zeroByte := cfg.WireTime(5, 0)
	if want := cfg.NetStartup + 5*cfg.HopLatency; zeroByte != want {
		t.Fatalf("WireTime(5,0) = %d, want %d", zeroByte, want)
	}
	perByte := cfg.WireTime(1, 1_000_000) - cfg.WireTime(1, 0)
	wantNS := Time(1e6 * 1e9 / cfg.LinkBandwidth)
	if diff := perByte - wantNS; diff < -1000 || diff > 1000 {
		t.Fatalf("per-byte wire time = %d, want ≈%d", perByte, wantNS)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(2_500_000) // 2.5 ms
	if tm.Milliseconds() != 2.5 {
		t.Errorf("Milliseconds = %v", tm.Milliseconds())
	}
	if tm.Microseconds() != 2500 {
		t.Errorf("Microseconds = %v", tm.Microseconds())
	}
	if tm.Duration() != 2_500_000 {
		t.Errorf("Duration = %v", tm.Duration())
	}
}

func TestModelStrings(t *testing.T) {
	if Wormhole.String() != "wormhole" || StoreAndForward.String() != "store-and-forward" {
		t.Error("model names wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model has empty name")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := []Config{
		{Name: "bw", LinkBandwidth: 0},
		{Name: "neg", LinkBandwidth: 1, SendOverhead: -1},
		{Name: "copy", LinkBandwidth: 1, ByteCopyNS: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s accepted", c.Name)
		}
		if _, err := New(topology.MustMesh2D(1, 2), topology.IdentityPlacement(2), c); err == nil {
			t.Errorf("New accepted config %s", c.Name)
		}
	}
}

func TestHotLinksOrderingAndCap(t *testing.T) {
	topo := topology.MustMesh2D(1, 4)
	n := mustNet(t, topo, ParagonNX())
	// Three transfers along the line: link 0→1 carries all three,
	// 1→2 two, 2→3 one.
	n.Transfer(0, 1, 1000, 0)
	n.Transfer(0, 2, 1000, 0)
	n.Transfer(0, 3, 1000, 0)
	hot := n.HotLinks(0)
	if len(hot) != 3 {
		t.Fatalf("hot links: %v", hot)
	}
	if hot[0].Transfers != 3 || hot[1].Transfers != 2 || hot[2].Transfers != 1 {
		t.Fatalf("transfer counts: %v", hot)
	}
	if hot[0].Busy < hot[1].Busy || hot[1].Busy < hot[2].Busy {
		t.Fatalf("not sorted by occupancy: %v", hot)
	}
	if capped := n.HotLinks(2); len(capped) != 2 {
		t.Fatalf("cap ignored: %v", capped)
	}
	n.Reset()
	if len(n.HotLinks(0)) != 0 {
		t.Fatal("hot links survive Reset")
	}
}

func TestNodeLoad(t *testing.T) {
	topo := topology.MustMesh2D(1, 3)
	n := mustNet(t, topo, ParagonNX())
	n.Transfer(0, 2, 4096, 0)
	load := n.NodeLoad()
	if len(load) != 3 {
		t.Fatalf("load entries: %d", len(load))
	}
	if load[0] == 0 || load[1] == 0 {
		t.Fatalf("forwarding nodes idle: %v", load)
	}
	if load[2] != 0 {
		t.Fatalf("destination shows outgoing load: %v", load)
	}
}

func TestAccessors(t *testing.T) {
	topo := topology.MustMesh2D(2, 2)
	place := topology.IdentityPlacement(4)
	n, err := New(topo, place, ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology() != topo || n.Placement() != place {
		t.Error("accessors return wrong objects")
	}
	if n.Config().Name != "paragon-nx" {
		t.Errorf("config name %s", n.Config().Name)
	}
}

func TestStoreAndForwardStats(t *testing.T) {
	cfg := ParagonNX()
	cfg.Switching = StoreAndForward
	topo := topology.MustMesh2D(1, 4)
	n := mustNet(t, topo, cfg)
	n.Transfer(0, 3, 512, 0)
	st := n.Stats()
	if st.Transfers != 1 || st.LinkBusy == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(n.HotLinks(0)) != 3 {
		t.Fatalf("store-and-forward should touch 3 links: %v", n.HotLinks(0))
	}
}
