// Package network provides the timing model for the simulated machines: a
// contention-aware link model over a topology, plus calibrated machine
// configurations standing in for the Intel Paragon (NX and MPI) and the
// Cray T3D (MPI).
//
// The model is the standard first-order description of a 1990s
// wormhole-routed MPP. A message transfer from node a to node b
//
//   - waits until every directed link on the deterministic route is free
//     (a wormhole holds its whole path for the duration of the transfer),
//   - then occupies the path for startup + hops·hopLatency + bytes/bandwidth,
//   - and arrives at b at the instant the path is released.
//
// Software costs (per-send and per-receive overhead, per-byte buffer copy,
// per-byte message combining) are charged by the sim runtime on the
// processor clocks, not here; this package prices only the wire.
package network

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/topology"
)

// Time is a point in virtual time, in nanoseconds since the start of a run.
type Time int64

// Duration helpers for converting to the standard library's units.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Microseconds reports the time in µs as a float, the unit the paper's
// figures use (msec) divided by 1000.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Milliseconds reports the time in ms as a float, matching the paper's axes.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Model selects how a transfer claims the links of its route.
type Model int

const (
	// Wormhole reserves the entire route for the duration of the
	// transfer, the switching technique of both the Paragon and the T3D.
	Wormhole Model = iota
	// StoreAndForward forwards the full message hop by hop, claiming one
	// link at a time. Provided as an ablation of the switching model.
	StoreAndForward
)

// String names the switching model.
func (m Model) String() string {
	switch m {
	case Wormhole:
		return "wormhole"
	case StoreAndForward:
		return "store-and-forward"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Config holds the calibrated cost parameters of one machine/library pair.
// All times are in nanoseconds, bandwidth in bytes per second.
type Config struct {
	// Name identifies the machine/library pair in tables ("paragon-nx").
	Name string
	// SendOverhead is the fixed software cost a processor pays to issue
	// one send (NX csend / MPI_Send entry, buffer registration, ...).
	SendOverhead Time
	// RecvOverhead is the fixed software cost to complete one receive.
	RecvOverhead Time
	// ByteCopyNS is the per-byte cost (in ns, may be fractional) of the
	// software copy between user buffer and network interface, charged
	// on both the sending and the receiving processor.
	ByteCopyNS float64
	// CombineByteNS is the per-byte cost of merging a received message
	// bundle into the processor's accumulated broadcast buffer. Only the
	// message-combining algorithms (Br_*) pay it; it is the "cost of
	// combining messages" the paper blames for Br_Lin's T3D performance.
	CombineByteNS float64
	// NetStartup is the network launch latency of one transfer.
	NetStartup Time
	// HopLatency is the router delay per hop of the route.
	HopLatency Time
	// LinkBandwidth is the sustained bandwidth of one directed channel,
	// in bytes per second.
	LinkBandwidth float64
	// Switching selects wormhole or store-and-forward pricing.
	Switching Model
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("network: config %q: non-positive bandwidth %v", c.Name, c.LinkBandwidth)
	}
	if c.SendOverhead < 0 || c.RecvOverhead < 0 || c.NetStartup < 0 || c.HopLatency < 0 {
		return fmt.Errorf("network: config %q: negative overhead", c.Name)
	}
	if c.ByteCopyNS < 0 || c.CombineByteNS < 0 {
		return fmt.Errorf("network: config %q: negative per-byte cost", c.Name)
	}
	return nil
}

// Scale returns a copy of the configuration with every software overhead
// multiplied by f. The paper observes a 2–5% loss for MPI over NX on the
// Paragon; ParagonMPI is ParagonNX scaled by 1.04.
func (c Config) Scale(f float64) Config {
	c.SendOverhead = Time(float64(c.SendOverhead) * f)
	c.RecvOverhead = Time(float64(c.RecvOverhead) * f)
	c.ByteCopyNS *= f
	c.CombineByteNS *= f
	return c
}

// CopyCost returns the processor-side cost of copying n bytes.
func (c Config) CopyCost(n int) Time { return Time(c.ByteCopyNS * float64(n)) }

// CombineCost returns the processor-side cost of merging n received bytes
// into the accumulated bundle.
func (c Config) CombineCost(n int) Time { return Time(c.CombineByteNS * float64(n)) }

// WireTime returns the occupancy duration of a transfer of n bytes over a
// route of the given hop count.
func (c Config) WireTime(hops, n int) Time {
	return c.NetStartup + Time(hops)*c.HopLatency + Time(float64(n)*1e9/c.LinkBandwidth)
}

// ParagonNX models the Intel Paragon under the native NX library:
// a 2-D mesh, 200 MB/s channels (~90 MB/s sustained at application level),
// and ~45 µs one-way short-message latency split between sender and
// receiver software.
func ParagonNX() Config {
	return Config{
		Name:          "paragon-nx",
		SendOverhead:  22_000, // 22 µs
		RecvOverhead:  23_000, // 23 µs
		ByteCopyNS:    10.0,   // ~100 MB/s software path each side (NX end-to-end ≈ 70–90 MB/s)
		CombineByteNS: 12.0,   // i860 large-buffer memcpy for merging bundles
		NetStartup:    8_000,  // 8 µs
		HopLatency:    40,     // 40 ns/hop (wormhole router)
		LinkBandwidth: 175e6,  // of the 200 MB/s hardware channels
		Switching:     Wormhole,
	}
}

// ParagonMPI is the Paragon under the (early, slower) MPI environment: the
// paper reports a uniform 2–5% software-overhead loss over NX.
func ParagonMPI() Config {
	c := ParagonNX().Scale(1.04)
	c.Name = "paragon-mpi"
	return c
}

// T3DMPI models the Cray T3D under MPI: a 3-D torus with six 300 MB/s
// channels per node (~150 MB/s sustained to the application), lower
// per-message software cost than the Paragon, and a much richer bisection.
func T3DMPI() Config {
	return Config{
		Name:          "t3d-mpi",
		SendOverhead:  13_000, // 13 µs
		RecvOverhead:  14_000,
		ByteCopyNS:    3.0,  // the T3D's block-transfer engine moves user buffers with little CPU work
		CombineByteNS: 22.0, // combining is plain Alpha 21064 memcpy (~45 MB/s on large uncached buffers) — the paper's "cost of combining messages"
		NetStartup:    2_000,
		HopLatency:    25,
		LinkBandwidth: 260e6, // of the 300 MB/s hardware channels
		Switching:     Wormhole,
	}
}

// Network prices transfers between logical ranks over a placed topology.
// It is not safe for concurrent use; the sim runtime serializes access.
type Network struct {
	topo  topology.Topology
	place *topology.Placement
	cfg   Config

	// linkFree[i] is the instant directed link i becomes idle.
	linkFree []Time
	// linkBusy[i] and linkUse[i] accumulate per-link occupancy and
	// transfer counts for hot-spot reporting.
	linkBusy []Time
	linkUse  []int
	degree   int

	// pathBuf is the scratch route buffer Transfer reuses; valid because
	// the Network is single-threaded per run (see the type comment).
	pathBuf []topology.Link

	// Aggregate statistics for utilization reporting.
	transfers int
	bytes     int64
	busy      Time // summed per-link occupancy
	blocked   Time // summed time transfers waited on busy links
}

// New builds a Network over the topology with the given placement and cost
// configuration. The placement must cover exactly the topology's nodes.
func New(topo topology.Topology, place *topology.Placement, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if place.Size() != topo.Nodes() {
		return nil, fmt.Errorf("network: placement covers %d ranks but topology has %d nodes", place.Size(), topo.Nodes())
	}
	// The link table is indexed by node*stride + direction; directions
	// range over 1..Degree() for every topology (mesh/torus use the
	// compass constants, the hypercube uses dimension+1), so Degree()+1
	// slots per node cover them exactly.
	deg := topo.Degree() + 1
	return &Network{
		topo:     topo,
		place:    place,
		cfg:      cfg,
		linkFree: make([]Time, topo.Nodes()*deg),
		linkBusy: make([]Time, topo.Nodes()*deg),
		linkUse:  make([]int, topo.Nodes()*deg),
		degree:   deg,
	}, nil
}

// Config returns the cost configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the underlying physical topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Placement returns the logical→physical mapping in use.
func (n *Network) Placement() *topology.Placement { return n.place }

func (n *Network) linkIndex(l topology.Link) int {
	return l.From*n.degree + int(l.Dir)
}

// Transfer prices a message of the given size from logical rank src to
// logical rank dst, entering the network at time ready. It returns the
// arrival instant at dst and mutates link availability. Transfers between
// co-located ranks (same physical node, only possible under non-injective
// placements, which we do not construct) or src==dst cost only NetStartup.
func (n *Network) Transfer(src, dst, bytes int, ready Time) Time {
	n.transfers++
	n.bytes += int64(bytes)
	a := n.place.Node(src)
	b := n.place.Node(dst)
	path := n.topo.AppendRoute(n.pathBuf[:0], a, b)
	n.pathBuf = path
	if len(path) == 0 {
		return ready + n.cfg.NetStartup
	}
	switch n.cfg.Switching {
	case StoreAndForward:
		return n.storeAndForward(path, bytes, ready)
	default:
		return n.wormhole(path, bytes, ready)
	}
}

func (n *Network) wormhole(path []topology.Link, bytes int, ready Time) Time {
	acquire := ready
	for _, l := range path {
		if f := n.linkFree[n.linkIndex(l)]; f > acquire {
			acquire = f
		}
	}
	n.blocked += acquire - ready
	dur := n.cfg.WireTime(len(path), bytes)
	release := acquire + dur
	for _, l := range path {
		idx := n.linkIndex(l)
		n.linkFree[idx] = release
		n.linkBusy[idx] += dur
		n.linkUse[idx]++
	}
	n.busy += Time(len(path)) * dur
	return release
}

func (n *Network) storeAndForward(path []topology.Link, bytes int, ready Time) Time {
	t := ready
	per := n.cfg.WireTime(1, bytes)
	for _, l := range path {
		idx := n.linkIndex(l)
		start := t
		if f := n.linkFree[idx]; f > start {
			start = f
		}
		n.blocked += start - t
		t = start + per
		n.linkFree[idx] = t
		n.linkBusy[idx] += per
		n.linkUse[idx]++
		n.busy += per
	}
	return t
}

// Stats summarizes network activity since construction or the last Reset.
type Stats struct {
	Transfers   int   // number of Transfer calls
	Bytes       int64 // payload bytes moved
	LinkBusy    Time  // summed per-link occupancy
	BlockedTime Time  // summed waiting-for-busy-links time
}

// Stats returns the accumulated counters.
func (n *Network) Stats() Stats {
	return Stats{Transfers: n.transfers, Bytes: n.bytes, LinkBusy: n.busy, BlockedTime: n.blocked}
}

// LinkStats describes one directed link's accumulated load.
type LinkStats struct {
	Link      topology.Link
	Busy      Time // total occupancy
	Transfers int  // transfers that crossed the link
}

// HotLinks returns the k busiest directed links in decreasing occupancy —
// the hot-spot report behind the paper's congestion arguments (the links
// into P0 dominate a 2-Step run; PersAlltoAll saturates the mesh centre).
func (n *Network) HotLinks(k int) []LinkStats {
	var all []LinkStats
	for i, busy := range n.linkBusy {
		if busy == 0 {
			continue
		}
		all = append(all, LinkStats{
			Link:      topology.Link{From: i / n.degree, Dir: topology.Direction(i % n.degree)},
			Busy:      busy,
			Transfers: n.linkUse[i],
		})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Busy != all[b].Busy {
			return all[a].Busy > all[b].Busy
		}
		return all[a].Link.From < all[b].Link.From
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// NodeLoad returns, per physical node, the occupancy of its busiest
// outgoing link — the input of viz.Heatmap.
func (n *Network) NodeLoad() []Time {
	out := make([]Time, n.topo.Nodes())
	for i, busy := range n.linkBusy {
		node := i / n.degree
		if busy > out[node] {
			out[node] = busy
		}
	}
	return out
}

// Reset clears link availability and statistics so the network can price a
// fresh run.
func (n *Network) Reset() {
	for i := range n.linkFree {
		n.linkFree[i] = 0
		n.linkBusy[i] = 0
		n.linkUse[i] = 0
	}
	n.transfers, n.bytes, n.busy, n.blocked = 0, 0, 0, 0
}
