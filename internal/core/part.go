package core

import (
	"fmt"

	"repro/internal/comm"
)

// group is one half of a partitioned machine: its global member ranks (in
// row-major order, which is also ascending global rank) and its submesh
// dimensions.
type group struct {
	members    []int
	rows, cols int
	sources    int // s_g, the sources repositioned into this group
}

func (g group) size() int { return len(g.members) }

// splitMachine partitions the r×c mesh into two halves along its longer
// dimension (columns when c ≥ r), the partition of Section 3: it is
// independent of the source positions. The source counts satisfy
// s1/s2 ≈ p1/p2 with both halves non-empty whenever s ≥ 2.
func splitMachine(spec Spec) (g1, g2 group) {
	r, c, s := spec.Rows, spec.Cols, spec.S()
	if c >= r {
		c1 := c / 2
		g1 = group{rows: r, cols: c1}
		g2 = group{rows: r, cols: c - c1}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				rank := i*c + j
				if j < c1 {
					g1.members = append(g1.members, rank)
				} else {
					g2.members = append(g2.members, rank)
				}
			}
		}
	} else {
		r1 := r / 2
		g1 = group{rows: r1, cols: c}
		g2 = group{rows: r - r1, cols: c}
		for rank := 0; rank < r*c; rank++ {
			if rank/c < r1 {
				g1.members = append(g1.members, rank)
			} else {
				g2.members = append(g2.members, rank)
			}
		}
	}
	p := r * c
	s1 := (s*g1.size() + p/2) / p // round(s·p1/p)
	if s >= 2 {
		if s1 < 1 {
			s1 = 1
		}
		if s1 > s-1 {
			s1 = s - 1
		}
	} else if s1 > s {
		s1 = s
	}
	g1.sources = s1
	g2.sources = s - s1
	return g1, g2
}

// part is a partitioning algorithm (Section 3): reposition the sources so
// that each machine half holds an ideal distribution with s1/s2 = p1/p2,
// run the inner algorithm independently and concurrently inside each
// half, then exchange the two half-bundles pairwise between the halves.
type part struct {
	name  string
	inner Algorithm
}

func (a part) Name() string { return a.name }

func (a part) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	if spec.P() == 1 {
		return mine
	}
	rank := c.Rank()
	g1, g2 := splitMachine(spec)

	// Ideal positions inside each half, translated to global ranks. The
	// permutation sends the first s1 sources into G1 and the rest into G2.
	targets := make([]int, 0, spec.S())
	for _, g := range []group{g1, g2} {
		if g.sources == 0 {
			continue
		}
		gen := IdealFor(a.inner, g.rows, g.cols)
		local, err := gen.Sources(g.rows, g.cols, g.sources)
		if err != nil {
			panic(err)
		}
		for _, l := range local {
			targets = append(targets, g.members[l])
		}
	}
	if len(targets) != spec.S() {
		panic(fmt.Sprintf("core: %s planned %d targets for %d sources", a.name, len(targets), spec.S()))
	}
	bundle := applyReposition(c, spec, targets, mine)

	// Run the inner algorithm inside my half (only when the half received
	// any sources; an empty half idles until the final exchange).
	my := g2
	other := g1
	for _, m := range g1.members {
		if m == rank {
			my, other = g1, g2
			break
		}
	}
	myLocal := -1
	for i, m := range my.members {
		if m == rank {
			myLocal = i
			break
		}
	}
	if my.sources > 0 {
		sub, err := comm.NewSub(c, my.members)
		if err != nil {
			panic(err)
		}
		localSources := make([]int, 0, my.sources)
		for i, m := range my.members {
			for _, t := range targets {
				if t == m {
					localSources = append(localSources, i)
					break
				}
			}
		}
		inner := Spec{Rows: my.rows, Cols: my.cols, Sources: localSources, Indexing: spec.Indexing}
		bundle = a.inner.Run(sub, inner, bundle)
	}

	// Final inter-half exchange: local index k < min(p1,p2) exchanges
	// pairwise; every extra processor of the larger half receives the
	// other half's bundle one-way from member (k mod min) of the smaller
	// half — its own half-bundle is already covered by its pair sibling.
	min := g1.size()
	if g2.size() < min {
		min = g2.size()
	}
	if myLocal < min {
		peer := other.members[myLocal]
		halfBundle := bundle // my half's bundle, before merging the peer's
		if my.sources > 0 {
			c.Send(peer, halfBundle)
			// Serve the extra processors of the larger half mapped to me
			// with my half-bundle (their own half's parts they already
			// hold).
			if my.size() == min {
				for k := min + myLocal; k < other.size(); k += min {
					c.Send(other.members[k], halfBundle)
				}
			}
		}
		if other.sources > 0 {
			m := c.Recv(peer)
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	} else {
		// I am an extra processor of the larger half.
		if other.sources > 0 {
			m := c.Recv(other.members[myLocal%min])
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	}
	return bundle
}

// PartLin returns Algorithm Part_Lin (Br_Lin inside each half).
func PartLin() Algorithm { return part{name: "Part_Lin", inner: BrLin()} }

// PartXYSource returns Algorithm Part_xy_source (Br_xy_source inside each
// half).
func PartXYSource() Algorithm { return part{name: "Part_xy_source", inner: BrXYSource()} }

// PartXYDim returns Algorithm Part_xy_dim (Br_xy_dim inside each half).
func PartXYDim() Algorithm { return part{name: "Part_xy_dim", inner: BrXYDim()} }
