package core

import "fmt"

// Registry returns every implemented s-to-p broadcasting algorithm: the
// paper's full set plus the Ring_AllGather ablation. The order matches the
// paper's presentation (Section 2, then Section 3).
func Registry() []Algorithm {
	return []Algorithm{
		TwoStep(),
		PersAlltoAll(),
		BrLin(),
		BrXYSource(),
		BrXYDim(),
		ReposLin(),
		ReposXYSource(),
		ReposXYDim(),
		PartLin(),
		PartXYSource(),
		PartXYDim(),
		RingAllGather(),
		RDAllGather(),
		Indep1toP(),
	}
}

// ByName returns the algorithm with the paper's name ("Br_Lin",
// "Repos_xy_source", ...).
func ByName(name string) (Algorithm, error) {
	for _, a := range Registry() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}
