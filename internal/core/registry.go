package core

import (
	"fmt"
	"sync"
)

// The algorithm suite is built once and shared: every algorithm is a
// stateless value whose Run method keeps all per-broadcast state on the
// stack, so one instance can serve concurrent runs. Simulate resolves the
// registry per run and the planner's probe loop resolves it hot, which
// made the previous construct-14-algorithms-per-lookup behaviour a
// measurable waste.
var (
	registryOnce sync.Once
	registryAlgs []Algorithm
	registryIdx  map[string]Algorithm
)

func buildRegistry() {
	registryAlgs = []Algorithm{
		TwoStep(),
		PersAlltoAll(),
		BrLin(),
		BrXYSource(),
		BrXYDim(),
		ReposLin(),
		ReposXYSource(),
		ReposXYDim(),
		PartLin(),
		PartXYSource(),
		PartXYDim(),
		RingAllGather(),
		RDAllGather(),
		Indep1toP(),
		// Beyond the paper: the k-ported broadcast for multi-channel
		// nodes (tcp Options.Ports), k=4 by default.
		BrKPort(4),
		// Träff's circulant-graph logarithmic broadcast schedule.
		BcastCirculant(),
		// The non-broadcast collectives (tagged via CollectiveAlgorithm):
		// reduction, all-reduction, scatter, allgather, all-to-all.
		RedTree(),
		AllRedRecDouble(),
		AllRedRedBcast(),
		ScatterBinomial(),
		ScatterDirect(),
		AgRing(),
		AgRecDouble(),
		A2APairwise(),
		A2AJungSakho(),
	}
	registryIdx = make(map[string]Algorithm, len(registryAlgs))
	for _, a := range registryAlgs {
		registryIdx[a.Name()] = a
	}
}

// Registry returns every implemented s-to-p broadcasting algorithm: the
// paper's full set plus the Ring_AllGather ablation and the circulant
// schedule. The order matches the paper's presentation (Section 2, then
// Section 3), extensions last. The returned slice is a fresh copy; the
// algorithm instances are shared and safe for concurrent use. Algorithms
// for the other collectives live behind RegistryFor.
func Registry() []Algorithm {
	return RegistryFor(Broadcast)
}

// RegistryFor returns every registered algorithm implementing the given
// collective, in registration order. The returned slice is a fresh copy;
// the instances are shared and safe for concurrent use.
func RegistryFor(coll Collective) []Algorithm {
	registryOnce.Do(buildRegistry)
	var out []Algorithm
	for _, a := range registryAlgs {
		if CollectiveOf(a) == coll {
			out = append(out, a)
		}
	}
	return out
}

// ByName returns the algorithm with the paper's name ("Br_Lin",
// "Repos_xy_source", ...), searching every collective's entries.
func ByName(name string) (Algorithm, error) {
	registryOnce.Do(buildRegistry)
	if a, ok := registryIdx[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}

// ByNameFor resolves an algorithm by name and checks it implements the
// given collective, so a Config cannot pair, say, a broadcast schedule
// with Collective: "AllToAll".
func ByNameFor(coll Collective, name string) (Algorithm, error) {
	a, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if got := CollectiveOf(a); got != coll {
		return nil, fmt.Errorf("core: algorithm %q implements %s, not %s", name, got, coll)
	}
	return a, nil
}
