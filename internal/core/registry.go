package core

import (
	"fmt"
	"sync"
)

// The algorithm suite is built once and shared: every algorithm is a
// stateless value whose Run method keeps all per-broadcast state on the
// stack, so one instance can serve concurrent runs. Simulate resolves the
// registry per run and the planner's probe loop resolves it hot, which
// made the previous construct-14-algorithms-per-lookup behaviour a
// measurable waste.
var (
	registryOnce sync.Once
	registryAlgs []Algorithm
	registryIdx  map[string]Algorithm
)

func buildRegistry() {
	registryAlgs = []Algorithm{
		TwoStep(),
		PersAlltoAll(),
		BrLin(),
		BrXYSource(),
		BrXYDim(),
		ReposLin(),
		ReposXYSource(),
		ReposXYDim(),
		PartLin(),
		PartXYSource(),
		PartXYDim(),
		RingAllGather(),
		RDAllGather(),
		Indep1toP(),
		// Beyond the paper: the k-ported broadcast for multi-channel
		// nodes (tcp Options.Ports), k=4 by default.
		BrKPort(4),
	}
	registryIdx = make(map[string]Algorithm, len(registryAlgs))
	for _, a := range registryAlgs {
		registryIdx[a.Name()] = a
	}
}

// Registry returns every implemented s-to-p broadcasting algorithm: the
// paper's full set plus the Ring_AllGather ablation. The order matches the
// paper's presentation (Section 2, then Section 3). The returned slice is
// a fresh copy; the algorithm instances are shared and safe for concurrent
// use.
func Registry() []Algorithm {
	registryOnce.Do(buildRegistry)
	out := make([]Algorithm, len(registryAlgs))
	copy(out, registryAlgs)
	return out
}

// ByName returns the algorithm with the paper's name ("Br_Lin",
// "Repos_xy_source", ...).
func ByName(name string) (Algorithm, error) {
	registryOnce.Do(buildRegistry)
	if a, ok := registryIdx[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}
