package core

import (
	"repro/internal/comm"
)

// indep1toP is the uncoordinated approach Section 2 dismisses: every
// source initiates its own one-to-all broadcast, independent of the
// location and number of the other sources, with no synchronization and
// no message combining. Attractive for dynamic broadcasting — no barrier
// needed — but "having the s broadcasting processes take place without
// interaction and coordination leads to poor performance due to arising
// congestion and the large number of messages in the system."
//
// Each source's broadcast is a binomial tree over the linear rank order
// rooted at the source. Every processor participates in all s trees; its
// operations for the k-th tree are issued as soon as its tree-k parent
// message arrives, so the trees overlap freely in the network and fight
// for the same links — the congestion the paper predicts.
type indep1toP struct{}

// Indep1toP returns the uncoordinated independent-broadcasts baseline.
func Indep1toP() Algorithm { return indep1toP{} }

func (indep1toP) Name() string { return "Indep_1toP" }

func (indep1toP) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	// Deliberately no barrier: sources fire immediately (the paper's
	// "does not require synchronization before the broadcasting").
	p := c.Size()
	rank := c.Rank()
	out := comm.Message{}

	// Every processor serves the s trees in source order: as root it
	// fires its sends immediately; otherwise it receives from its tree
	// parent and forwards to its tree children. Serving order must be
	// identical on every processor because message matching is FIFO per
	// (sender, receiver) pair — a parent that is the same processor in
	// two trees must send in the order its child will receive. Across
	// processors the trees still overlap freely and fight for links.
	for k, root := range spec.Sources {
		comm.MarkIter(c, k)
		rel := (rank - root + p) % p
		if rel == 0 {
			top := 1
			for top < p {
				top <<= 1
			}
			forwardFrom(c, p, rank, root, mine, top>>1)
			out = out.Append(mine)
			continue
		}
		mask := 1
		var m comm.Message
		for mask < p {
			if rel&mask != 0 {
				m = c.Recv((rel - mask + root) % p)
				break
			}
			mask <<= 1
		}
		forwardFrom(c, p, rank, root, m, mask>>1)
		out = out.Append(m)
	}
	return out
}

// forwardFrom sends m to this processor's children in the binomial tree
// rooted at root, starting at the given mask level.
func forwardFrom(c comm.Comm, p, rank, root int, m comm.Message, mask int) {
	rel := (rank - root + p) % p
	for ; mask > 0; mask >>= 1 {
		if rel+mask < p {
			c.Send((rel+mask+root)%p, m)
		}
	}
}
