package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/topology"
)

// segment is a contiguous run of line positions in the halving recursion.
type segment struct{ lo, n int }

// lineIters returns the number of halving iterations a line of n
// processors needs: ⌈log2 n⌉.
func lineIters(n int) int {
	it := 0
	for size := n; size > 1; size = (size + 1) / 2 {
		it++
	}
	return it
}

// runLine executes Br_Lin's recursive-halving pattern along one line of
// processors. line[i] is the global rank at line position i; holds[i]
// tells whether position i currently holds messages (every processor
// computes the identical evolution locally, so no probing is needed);
// myPos is the caller's position in the line, or -1 if the caller is not
// on this line (it then returns immediately — but note that every
// processor of the machine is on exactly one line per phase in all
// callers). bundle is the caller's current bundle; iterBase offsets the
// iteration markers so multi-phase algorithms report consecutive
// iterations.
//
// Pattern per level, for each segment [lo, lo+n) with h = ⌈n/2⌉:
//
//   - positions lo+i and lo+i+h (i < n−h) exchange bundles when both hold
//     messages, or perform a single send when only one does (the paper's
//     rule), merging on receipt;
//   - when n is odd, the unpaired middle position lo+h−1 one-way sends its
//     bundle to position lo+n−1, which keeps the second half's collective
//     holdings complete (this is the generalization that makes Br_Lin
//     correct on arbitrary machine sizes; it is also why odd dimensions
//     grow sources faster, the machine-size effect of Sections 4–5);
//   - the segment then splits into [lo, lo+h) and [lo+h, lo+n).
//
// The bundles held by distinct positions of a segment are always
// origin-disjoint (each merge combines bundles from the two disjoint
// halves), so merging never duplicates a message.
func runLine(c comm.Comm, line []int, holds []bool, myPos int, bundle comm.Message, iterBase int) comm.Message {
	if len(line) != len(holds) {
		panic(fmt.Sprintf("core: line of %d with %d holder flags", len(line), len(holds)))
	}
	if myPos >= 0 {
		if line[myPos] != c.Rank() {
			panic(fmt.Sprintf("core: rank %d claims line position %d held by %d", c.Rank(), myPos, line[myPos]))
		}
	}
	segs := []segment{{0, len(line)}}
	for it := 0; ; it++ {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
				break
			}
		}
		if !split {
			return bundle
		}
		comm.MarkIter(c, iterBase+it)
		comm.MarkPhase(c, "halving")
		next := segs[:0:0]
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + 1) / 2
			for i := 0; i < g.n-h; i++ {
				a, b := g.lo+i, g.lo+i+h
				bundle = pairStep(c, line, holds, myPos, a, b, bundle)
			}
			if g.n%2 == 1 {
				bundle = onewayStep(c, line, holds, myPos, g.lo+h-1, g.lo+g.n-1, bundle)
			}
			next = append(next, segment{g.lo, h}, segment{g.lo + h, g.n - h})
		}
		segs = next
	}
}

// pairStep performs one pairwise step between line positions a and b and
// updates the holder flags. Both sides send first and receive second, so
// the step is deadlock-free under buffered sends.
func pairStep(c comm.Comm, line []int, holds []bool, myPos, a, b int, bundle comm.Message) comm.Message {
	switch {
	case holds[a] && holds[b]:
		if myPos == a || myPos == b {
			peer := line[a]
			if myPos == a {
				peer = line[b]
			}
			m := comm.Exchange(c, peer, bundle)
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	case holds[a]:
		if myPos == a {
			c.Send(line[b], bundle)
		}
		if myPos == b {
			m := c.Recv(line[a])
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	case holds[b]:
		if myPos == b {
			c.Send(line[a], bundle)
		}
		if myPos == a {
			m := c.Recv(line[b])
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	}
	merged := holds[a] || holds[b]
	holds[a], holds[b] = merged, merged
	return bundle
}

// onewayStep sends position u's bundle to position tgt (if u holds
// messages), merging at tgt.
func onewayStep(c comm.Comm, line []int, holds []bool, myPos, u, tgt int, bundle comm.Message) comm.Message {
	if !holds[u] || u == tgt {
		return bundle
	}
	if myPos == u {
		c.Send(line[tgt], bundle)
	}
	if myPos == tgt {
		m := c.Recv(line[u])
		comm.ChargeCombine(c, m.Len())
		bundle = bundle.Append(m)
	}
	holds[tgt] = true
	return bundle
}

// brLin is Algorithm Br_Lin: recursive halving over the whole machine
// viewed as a linear array (snake-like row-major by default).
type brLin struct{}

// BrLin returns Algorithm Br_Lin.
func BrLin() Algorithm { return brLin{} }

func (brLin) Name() string { return "Br_Lin" }

func (brLin) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	mesh := topology.MustMesh2D(spec.Rows, spec.Cols)
	p := spec.P()
	line := make([]int, p)
	holds := make([]bool, p)
	for pos := 0; pos < p; pos++ {
		rank := spec.Indexing.RankToNode(mesh, pos)
		line[pos] = rank
		holds[pos] = spec.IsSource(rank)
	}
	myPos := spec.Indexing.NodeToRank(mesh, c.Rank())
	return runLine(c, line, holds, myPos, mine, 0)
}
