package core

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/live"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// makeSpec builds a spec from a distribution, failing the test on error.
func makeSpec(t *testing.T, d dist.Distribution, r, c, s int) Spec {
	t.Helper()
	sources, err := d.Sources(r, c, s)
	if err != nil {
		t.Fatalf("%s(%d) on %d×%d: %v", d.Name(), s, r, c, err)
	}
	return Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
}

// payloadFor builds the distinctive payload of a source.
func payloadFor(origin, size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(origin*31 + i)
	}
	return data
}

// verifyBundles asserts the s-to-p broadcast postcondition: every rank
// holds exactly the source origins, each exactly once, with intact
// payloads.
func verifyBundles(t *testing.T, label string, spec Spec, out []comm.Message, size int) {
	t.Helper()
	for rank, m := range out {
		got := m.Origins()
		if !reflect.DeepEqual(got, spec.Sources) {
			t.Fatalf("%s: rank %d origins = %v, want %v", label, rank, got, spec.Sources)
		}
		for _, part := range m.Parts {
			want := payloadFor(part.Origin, size)
			if !reflect.DeepEqual(part.Data, want) {
				t.Fatalf("%s: rank %d payload of origin %d corrupted", label, rank, part.Origin)
			}
		}
	}
}

// runSim executes an algorithm on the simulator and returns per-rank
// bundles plus the run result.
func runSim(t *testing.T, alg Algorithm, spec Spec, size int) ([]comm.Message, *sim.Result) {
	t.Helper()
	topo := topology.MustMesh2D(spec.Rows, spec.Cols)
	nw, err := network.New(topo, topology.IdentityPlacement(spec.P()), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]comm.Message, spec.P())
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := InitialMessage(spec, pr.Rank(), payloadFor(pr.Rank(), size))
		out[pr.Rank()] = alg.Run(pr, spec, mine)
	}, sim.Options{})
	if err != nil {
		t.Fatalf("%s on %d×%d s=%d: %v", alg.Name(), spec.Rows, spec.Cols, spec.S(), err)
	}
	return out, res
}

// runLive executes an algorithm on the live engine.
func runLive(t *testing.T, alg Algorithm, spec Spec, size int) []comm.Message {
	t.Helper()
	out := make([]comm.Message, spec.P())
	_, err := live.Run(spec.P(), func(pr *live.Proc) {
		mine := InitialMessage(spec, pr.Rank(), payloadFor(pr.Rank(), size))
		out[pr.Rank()] = alg.Run(pr, spec, mine)
	})
	if err != nil {
		t.Fatalf("%s on %d×%d s=%d (live): %v", alg.Name(), spec.Rows, spec.Cols, spec.S(), err)
	}
	return out
}

// TestAllAlgorithmsAllDistributionsSim is the broad correctness matrix on
// the simulator: every algorithm × every named distribution × several
// machine shapes and source counts.
func TestAllAlgorithmsAllDistributionsSim(t *testing.T) {
	meshes := [][2]int{{1, 8}, {4, 4}, {3, 5}, {5, 5}, {4, 7}}
	for _, alg := range Registry() {
		for _, m := range meshes {
			r, c := m[0], m[1]
			p := r * c
			for _, s := range []int{1, 2, p / 2, p - 1, p} {
				if s < 1 {
					continue
				}
				for _, d := range dist.All() {
					spec := makeSpec(t, d, r, c, s)
					label := fmt.Sprintf("%s/%s(%d)/%dx%d", alg.Name(), d.Name(), s, r, c)
					out, _ := runSim(t, alg, spec, 16)
					verifyBundles(t, label, spec, out, 16)
				}
			}
		}
	}
}

// TestAlgorithmsLiveEngine runs a reduced matrix on the live runtime with
// real bytes, confirming engine-independent correctness.
func TestAlgorithmsLiveEngine(t *testing.T) {
	meshes := [][2]int{{4, 4}, {3, 5}}
	for _, alg := range Registry() {
		for _, m := range meshes {
			r, c := m[0], m[1]
			p := r * c
			for _, s := range []int{1, p / 2, p} {
				for _, d := range []dist.Distribution{dist.Equal(), dist.Square(), dist.Cross()} {
					spec := makeSpec(t, d, r, c, s)
					label := fmt.Sprintf("%s/%s(%d)/%dx%d live", alg.Name(), d.Name(), s, r, c)
					out := runLive(t, alg, spec, 32)
					verifyBundles(t, label, spec, out, 32)
				}
			}
		}
	}
}

// TestSingleProcessorMachine covers the degenerate p=1 machine.
func TestSingleProcessorMachine(t *testing.T) {
	spec := Spec{Rows: 1, Cols: 1, Sources: []int{0}, Indexing: topology.SnakeRowMajor}
	for _, alg := range Registry() {
		out, _ := runSim(t, alg, spec, 8)
		verifyBundles(t, alg.Name()+" p=1", spec, out, 8)
	}
}

// TestQuickRandomInstances is the property test: random machine shape,
// random source set, random algorithm — the postcondition must hold.
func TestQuickRandomInstances(t *testing.T) {
	algs := Registry()
	f := func(ru, cu, su, au uint8, seed int64) bool {
		r := int(ru)%6 + 1
		c := int(cu)%6 + 1
		p := r * c
		s := int(su)%p + 1
		alg := algs[int(au)%len(algs)]
		sources, err := dist.Random(seed).Sources(r, c, s)
		if err != nil {
			return false
		}
		spec := Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
		topo := topology.MustMesh2D(r, c)
		nw, err := network.New(topo, topology.IdentityPlacement(p), network.ParagonNX())
		if err != nil {
			return false
		}
		out := make([]comm.Message, p)
		if _, err := sim.Run(nw, func(pr *sim.Proc) {
			mine := InitialMessage(spec, pr.Rank(), payloadFor(pr.Rank(), 8))
			out[pr.Rank()] = alg.Run(pr, spec, mine)
		}, sim.Options{}); err != nil {
			t.Logf("%s on %d×%d s=%d sources=%v: %v", alg.Name(), r, c, s, sources, err)
			return false
		}
		for _, m := range out {
			if !reflect.DeepEqual(m.Origins(), sources) {
				t.Logf("%s on %d×%d sources=%v: got %v", alg.Name(), r, c, sources, m.Origins())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Rows: 2, Cols: 3, Sources: []int{0, 5}}
	if err := ok.Validate(6); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Rows: 0, Cols: 3, Sources: []int{0}},
		{Rows: 2, Cols: 3, Sources: nil},
		{Rows: 2, Cols: 3, Sources: []int{5, 0}},
		{Rows: 2, Cols: 3, Sources: []int{0, 0}},
		{Rows: 2, Cols: 3, Sources: []int{6}},
	}
	for i, spec := range bad {
		if err := spec.Validate(6); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := ok.Validate(8); err == nil {
		t.Error("machine-size mismatch accepted")
	}
}

func TestSpecSourceLookup(t *testing.T) {
	spec := Spec{Rows: 2, Cols: 4, Sources: []int{1, 3, 6}}
	for _, src := range spec.Sources {
		if !spec.IsSource(src) {
			t.Errorf("IsSource(%d) = false", src)
		}
	}
	if spec.IsSource(0) || spec.IsSource(7) {
		t.Error("non-source reported as source")
	}
	if got := spec.SourceIndex(3); got != 1 {
		t.Errorf("SourceIndex(3) = %d", got)
	}
	if got := spec.SourceIndex(2); got != -1 {
		t.Errorf("SourceIndex(2) = %d", got)
	}
}

func TestMaxPerLine(t *testing.T) {
	// Two full columns on a 4×4 mesh: every row has 2 sources, the two
	// columns have 4 each.
	spec := makeSpec(t, dist.Column(), 4, 4, 8)
	maxR, maxC := maxPerLine(spec)
	if maxR != 2 || maxC != 4 {
		t.Fatalf("maxPerLine = (%d,%d), want (2,4)", maxR, maxC)
	}
}

func TestLineIters(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 100: 7, 128: 7}
	for n, want := range cases {
		if got := lineIters(n); got != want {
			t.Errorf("lineIters(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSplitMachine(t *testing.T) {
	spec := Spec{Rows: 4, Cols: 6, Sources: []int{0, 1, 2, 3, 4, 5}}
	g1, g2 := splitMachine(spec)
	if g1.rows != 4 || g1.cols != 3 || g2.rows != 4 || g2.cols != 3 {
		t.Fatalf("split dims: %+v %+v", g1, g2)
	}
	if g1.size()+g2.size() != 24 {
		t.Fatalf("split sizes: %d + %d", g1.size(), g2.size())
	}
	if g1.sources+g2.sources != 6 || g1.sources != 3 {
		t.Fatalf("split sources: %d + %d", g1.sources, g2.sources)
	}
	// Membership: G1 is the left half.
	for _, m := range g1.members {
		if m%6 >= 3 {
			t.Fatalf("rank %d in left half", m)
		}
	}
	// Tall machine splits rows.
	tall := Spec{Rows: 6, Cols: 2, Sources: []int{0, 1}}
	t1, t2 := splitMachine(tall)
	if t1.rows != 3 || t1.cols != 2 || t2.rows != 3 {
		t.Fatalf("tall split: %+v %+v", t1, t2)
	}
	// Odd dimension: halves differ by one column.
	odd := Spec{Rows: 3, Cols: 5, Sources: []int{0, 1, 2}}
	o1, o2 := splitMachine(odd)
	if o1.cols != 2 || o2.cols != 3 {
		t.Fatalf("odd split: %+v %+v", o1, o2)
	}
	if o1.sources < 1 || o2.sources < 1 {
		t.Fatalf("odd split starves a half: %d/%d", o1.sources, o2.sources)
	}
}

func TestSplitMachineSingleSource(t *testing.T) {
	spec := Spec{Rows: 2, Cols: 4, Sources: []int{5}}
	g1, g2 := splitMachine(spec)
	if g1.sources+g2.sources != 1 {
		t.Fatalf("single source split: %d/%d", g1.sources, g2.sources)
	}
}

func TestRepositionPermutationOrder(t *testing.T) {
	spec := Spec{Rows: 2, Cols: 4, Sources: []int{2, 5, 7}}
	targets := repositionPermutation(spec, []int{6, 0, 3})
	want := []int{0, 3, 6}
	if !reflect.DeepEqual(targets, want) {
		t.Fatalf("targets = %v, want %v", targets, want)
	}
}

func TestInvalidSpecPanicsSurface(t *testing.T) {
	spec := Spec{Rows: 2, Cols: 2, Sources: []int{9}} // out of range
	topo := topology.MustMesh2D(2, 2)
	nw, err := network.New(topo, topology.IdentityPlacement(4), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(nw, func(pr *sim.Proc) {
		BrLin().Run(pr, spec, comm.Message{})
	}, sim.Options{})
	if err == nil {
		t.Fatal("invalid spec did not fail the run")
	}
}

// TestBrLinActiveGrowthIdealVsPartnered reproduces the paper's machine-size
// observation: two sources that are halving partners stall the first
// iteration, while the ideal placement doubles immediately.
func TestBrLinActiveGrowthIdealVsPartnered(t *testing.T) {
	r, c := 1, 16
	run := func(sources []int) *sim.Result {
		spec := Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.RowMajor}
		_, res := runSim(t, BrLin(), spec, 64)
		return res
	}
	active := func(res *sim.Result, iter int) int {
		n := 0
		for _, ps := range res.Procs {
			if iter < len(ps.Iters) && ps.Iters[iter].Active() {
				n++
			}
		}
		return n
	}
	partnered := run([]int{0, 8}) // halving partners on a 16-line
	idealPos, err := dist.IdealLinear(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ideal := run(idealPos)
	if a := active(partnered, 0); a != 2 {
		t.Fatalf("partnered sources: %d active in iter 0, want 2 (no growth)", a)
	}
	if a := active(ideal, 0); a != 4 {
		t.Fatalf("ideal sources: %d active in iter 0, want 4", a)
	}
}

// TestReposIdealDistributionUnchanged: repositioning an already-ideal
// distribution must still deliver correctly (the permutation may be the
// identity or a shuffle among ideal slots).
func TestReposIdealDistributionUnchanged(t *testing.T) {
	spec := makeSpec(t, dist.IdealRows(), 8, 8, 16)
	out, _ := runSim(t, ReposXYSource(), spec, 32)
	verifyBundles(t, "Repos on ideal", spec, out, 32)
}

// TestByNameRoundTrip checks the registry lookup.
func TestByNameRoundTrip(t *testing.T) {
	for _, alg := range Registry() {
		got, err := ByName(alg.Name())
		if err != nil || got.Name() != alg.Name() {
			t.Errorf("ByName(%q) = %v, %v", alg.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestDeterministicTiming: identical runs give identical simulated time.
func TestDeterministicTiming(t *testing.T) {
	spec := makeSpec(t, dist.DiagRight(), 5, 5, 10)
	for _, alg := range Registry() {
		_, a := runSim(t, alg, spec, 256)
		_, b := runSim(t, alg, spec, 256)
		if a.Elapsed != b.Elapsed {
			t.Errorf("%s: elapsed %d vs %d", alg.Name(), a.Elapsed, b.Elapsed)
		}
	}
}

// TestEnginesAgreeOnRandomInstances is the cross-engine property test:
// for random machines, distributions and algorithms, the simulator and
// the live engine must deliver identical per-rank origin sets.
func TestEnginesAgreeOnRandomInstances(t *testing.T) {
	algs := Registry()
	f := func(ru, cu, su, au uint8, seed int64) bool {
		r := int(ru)%4 + 1
		c := int(cu)%4 + 1
		p := r * c
		s := int(su)%p + 1
		alg := algs[int(au)%len(algs)]
		sources, err := dist.Random(seed).Sources(r, c, s)
		if err != nil {
			return false
		}
		spec := Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
		simOut, _ := runSim(t, alg, spec, 8)
		liveOut := runLive(t, alg, spec, 8)
		for rank := range simOut {
			if !reflect.DeepEqual(simOut[rank].Origins(), liveOut[rank].Origins()) {
				t.Logf("%s on %d×%d: rank %d sim %v live %v",
					alg.Name(), r, c, rank, simOut[rank].Origins(), liveOut[rank].Origins())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
