package core

import (
	"fmt"
	"strconv"

	"repro/internal/comm"
	"repro/internal/topology"
)

// brKPort is Algorithm Br_kport<k>: the k-ported generalization of
// Br_Lin's recursive halving. Where Br_Lin splits every segment in two
// and pairs positions across the halves, Br_kport splits into k+1
// subsegments and exchanges within groups of up to k+1 evenly strided
// positions, so every holder sends to up to k destinations per level —
// traffic a k-ported transport (tcp Options.Ports, the paper's
// multi-channel routers) drives concurrently instead of serially. The
// level count drops from ⌈log₂ p⌉ to ~⌈log_{k+1} p⌉ at the price of k
// sends per holder per level: a win exactly when the node has k ports.
type brKPort struct{ k int }

// BrKPort returns Algorithm Br_kport<k>, the (k+1)-section broadcast
// for nodes with k outbound ports. k must be at least 1; k=1 is
// pairwise sectioning like Br_Lin (same level count, same odd rule).
func BrKPort(k int) Algorithm {
	if k < 1 {
		panic(fmt.Sprintf("core: BrKPort with %d ports", k))
	}
	return brKPort{k: k}
}

func (a brKPort) Name() string { return "Br_kport" + strconv.Itoa(a.k) }

func (a brKPort) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	mesh := topology.MustMesh2D(spec.Rows, spec.Cols)
	p := spec.P()
	line := make([]int, p)
	holds := make([]bool, p)
	for pos := 0; pos < p; pos++ {
		rank := spec.Indexing.RankToNode(mesh, pos)
		line[pos] = rank
		holds[pos] = spec.IsSource(rank)
	}
	myPos := spec.Indexing.NodeToRank(mesh, c.Rank())
	return runLineK(c, a.k, line, holds, myPos, mine, 0)
}

// runLineK executes the (k+1)-section pattern along one line. Per
// level, for each segment [lo, lo+n) with h = ⌈n/(k+1)⌉:
//
//   - group i (i < h) is the evenly strided positions lo+i+j·h that fall
//     inside the segment; its members exchange bundles all-to-all (every
//     holder sends before anyone receives, so the step is deadlock-free
//     under buffered sends) and all end holding the group union;
//   - the segment then splits into the k+1 subsegments [lo+j·h, …): the
//     member of group i in subsegment j carried the group's union there,
//     so each subsegment collectively holds everything the segment held;
//   - when the last subsegment is short, the groups with no member in it
//     (exactly those with i ≥ n − ⌊(n−1)/h⌋·h) one-way their union from
//     their first member to the segment's last position — the
//     generalization of Br_Lin's odd-middle rule, which this reduces to
//     at k=1.
//
// Distinct positions of a segment always hold origin-disjoint bundles
// (group unions combine disjoint per-position bundles; the straggler
// target never belongs to a straggler group), so merging never
// duplicates a message.
func runLineK(c comm.Comm, k int, line []int, holds []bool, myPos int, bundle comm.Message, iterBase int) comm.Message {
	if len(line) != len(holds) {
		panic(fmt.Sprintf("core: line of %d with %d holder flags", len(line), len(holds)))
	}
	if myPos >= 0 && line[myPos] != c.Rank() {
		panic(fmt.Sprintf("core: rank %d claims line position %d held by %d", c.Rank(), myPos, line[myPos]))
	}
	segs := []segment{{0, len(line)}}
	var members []int
	for it := 0; ; it++ {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
				break
			}
		}
		if !split {
			return bundle
		}
		comm.MarkIter(c, iterBase+it)
		comm.MarkPhase(c, "ksection")
		next := segs[:0:0]
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + k) / (k + 1)
			for i := 0; i < h; i++ {
				members = members[:0]
				for pos := g.lo + i; pos < g.lo+g.n; pos += h {
					members = append(members, pos)
				}
				bundle = groupStep(c, line, holds, myPos, members, bundle)
			}
			// Straggler groups: no member in the short last subsegment.
			jlast := (g.n - 1) / h
			for i := g.n - jlast*h; i < h; i++ {
				bundle = onewayStep(c, line, holds, myPos, g.lo+i, g.lo+g.n-1, bundle)
			}
			for j := 0; j*h < g.n; j++ {
				next = append(next, segment{g.lo + j*h, min(h, g.n-j*h)})
			}
		}
		segs = next
	}
}

// groupStep performs one all-to-all exchange among the group's member
// positions: every holding member sends its bundle to every other
// member, then receives and merges from every other holder; afterwards
// every member holds the group union. Sends complete before the first
// receive, so the step honours the buffered-Send contract.
func groupStep(c comm.Comm, line []int, holds []bool, myPos int, members []int, bundle comm.Message) comm.Message {
	if len(members) < 2 {
		return bundle
	}
	any := false
	for _, u := range members {
		if holds[u] {
			any = true
			break
		}
	}
	if !any {
		return bundle
	}
	mine := -1
	for idx, u := range members {
		if u == myPos {
			mine = idx
		}
	}
	if mine >= 0 {
		if holds[members[mine]] {
			for _, u := range members {
				if u != myPos {
					c.Send(line[u], bundle)
				}
			}
		}
		for _, u := range members {
			if u == myPos || !holds[u] {
				continue
			}
			m := c.Recv(line[u])
			comm.ChargeCombine(c, m.Len())
			bundle = bundle.Append(m)
		}
	}
	for _, u := range members {
		holds[u] = true
	}
	return bundle
}
