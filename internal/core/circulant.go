package core

import (
	"sort"

	"repro/internal/comm"
)

// circulant is Bcast_Circulant, the logarithmic-time broadcast schedule on
// the circulant graph C_p(1, 2, 4, …) after Träff (arXiv 2407.18004). In
// round j every processor may send to the fixed skip partner
// (rank + 2^j) mod p, so the communication graph is a circulant graph and
// the schedule completes in ⌈log2 p⌉ rounds for any p — no power-of-two
// padding round, unlike the binomial tree, and every round uses disjoint
// constant-stride links, which map to short paths under the snake
// placements.
//
// The s-to-p generalization keeps the paper's local-knowledge model:
// origin o's holder set before round j is the contiguous ring interval
// [o, o + 2^j), so membership is the closed form (r−o+p) mod p < 2^j and
// every processor decides locally which of its held parts are useful to
// its skip partner — a part is forwarded exactly when the partner's
// interval position (d + 2^j) has not wrapped past p, i.e. when
// d < min(2^j, p − 2^j) for d = (rank−o+p) mod p. All s broadcasts share
// each round's single send (message combining, Section 2 of the 1996
// paper, on Träff's schedule).
type circulant struct{}

// BcastCirculant returns the circulant-graph logarithmic broadcast.
func BcastCirculant() Algorithm { return circulant{} }

func (circulant) Name() string { return "Bcast_Circulant" }

func (circulant) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	rank := c.Rank()
	if p == 1 {
		return mine
	}
	held := make([]bool, p)
	for _, pt := range mine.Parts {
		held[pt.Origin] = true
	}
	acc := mine
	iter := 0
	for skip := 1; skip < p; skip <<= 1 {
		comm.MarkIter(c, iter)
		iter++
		// A part of origin o at distance d = (rank−o) mod p < skip is
		// useful to the skip partner unless the partner's distance
		// d + skip wraps past p (the partner already holds o).
		limit := skip
		if p-skip < limit {
			limit = p - skip
		}
		var out comm.Message
		for _, pt := range acc.Parts {
			if (rank-pt.Origin+p)%p < limit {
				out.Parts = append(out.Parts, pt)
			}
		}
		if len(out.Parts) > 0 {
			c.Send((rank+skip)%p, out)
		}
		// Symmetric local decision for the receive side: the predecessor
		// at distance skip sends iff it holds a useful part, which the
		// closed form answers without probing.
		from := (rank - skip + p) % p
		expect := false
		for _, o := range spec.Sources {
			if (from-o+p)%p < limit {
				expect = true
				break
			}
		}
		if expect {
			m := c.Recv(from)
			merged := 0
			for _, pt := range m.Parts {
				if !held[pt.Origin] {
					held[pt.Origin] = true
					acc.Parts = append(acc.Parts, pt)
					merged += pt.Len()
				}
			}
			comm.ChargeCombine(c, merged)
		}
	}
	sort.Slice(acc.Parts, func(i, j int) bool { return acc.Parts[i].Origin < acc.Parts[j].Origin })
	return acc
}
