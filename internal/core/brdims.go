package core

import (
	"fmt"

	"repro/internal/comm"
)

// brDims generalizes Br_xy to a d-dimensional logical grid: Br_Lin runs
// within every line of one dimension after another, in a caller-chosen
// order. With extents {r, c} this is exactly the Br_xy family; with three
// extents it is the natural algorithm for the T3D's logical 3-D grid —
// the obvious extension the paper leaves open because the T3D's placement
// was out of user control (our machine model makes it expressible).
//
// Ranks are mixed-radix over the extents with the last dimension varying
// fastest (the row-major generalization): for extents {e0, e1, e2},
// rank = (x0·e1 + x1)·e2 + x2. A "line along dimension d" holds every
// coordinate fixed except x_d. Before dimension d is processed, a
// processor holds messages iff some source matches its coordinates on
// every still-unprocessed dimension — the multi-dimensional form of
// Br_xy's non-empty-row rule, computed identically everywhere.
type brDims struct {
	extents []int
	order   []int
}

// BrDims returns the dimension-by-dimension broadcast over a logical grid
// with the given extents, processing dimensions in the given order (a
// permutation of 0..len(extents)-1). The product of extents must equal
// the machine size; spec.Rows×spec.Cols is ignored beyond that check.
func BrDims(extents, order []int) Algorithm {
	return brDims{extents: append([]int(nil), extents...), order: append([]int(nil), order...)}
}

func (a brDims) Name() string { return fmt.Sprintf("Br_dims%v", a.extents) }

// coordsOf decomposes a rank into grid coordinates.
func (a brDims) coordsOf(rank int) []int {
	d := len(a.extents)
	out := make([]int, d)
	for i := d - 1; i >= 0; i-- {
		out[i] = rank % a.extents[i]
		rank /= a.extents[i]
	}
	return out
}

// rankOf composes grid coordinates into a rank.
func (a brDims) rankOf(coords []int) int {
	rank := 0
	for i, x := range coords {
		rank = rank*a.extents[i] + x
	}
	return rank
}

func (a brDims) validate(p int) error {
	if len(a.extents) == 0 {
		return fmt.Errorf("core: Br_dims with no extents")
	}
	prod := 1
	for _, e := range a.extents {
		if e <= 0 {
			return fmt.Errorf("core: Br_dims extent %d", e)
		}
		prod *= e
	}
	if prod != p {
		return fmt.Errorf("core: Br_dims extents %v cover %d of %d processors", a.extents, prod, p)
	}
	if len(a.order) != len(a.extents) {
		return fmt.Errorf("core: Br_dims order %v for %d dimensions", a.order, len(a.extents))
	}
	seen := make([]bool, len(a.extents))
	for _, d := range a.order {
		if d < 0 || d >= len(a.extents) || seen[d] {
			return fmt.Errorf("core: Br_dims order %v is not a permutation", a.order)
		}
		seen[d] = true
	}
	return nil
}

func (a brDims) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	if err := a.validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	myCoords := a.coordsOf(c.Rank())
	bundle := mine
	processed := make([]bool, len(a.extents))
	iterBase := 0
	for _, dim := range a.order {
		// holdsAt reports whether the processor at the given coordinates
		// holds messages before this phase: some source must match it on
		// every unprocessed dimension other than dim itself.
		holdsAt := func(coords []int) bool {
			for _, src := range spec.Sources {
				sc := a.coordsOf(src)
				match := true
				for d := range a.extents {
					if d == dim || processed[d] {
						continue
					}
					if sc[d] != coords[d] {
						match = false
						break
					}
				}
				if match && sc[dim] == coords[dim] {
					return true
				}
			}
			return false
		}
		line := make([]int, a.extents[dim])
		holds := make([]bool, a.extents[dim])
		coords := append([]int(nil), myCoords...)
		for pos := 0; pos < a.extents[dim]; pos++ {
			coords[dim] = pos
			line[pos] = a.rankOf(coords)
			holds[pos] = holdsAt(coords)
		}
		bundle = runLine(c, line, holds, myCoords[dim], bundle, iterBase)
		iterBase += lineIters(a.extents[dim])
		processed[dim] = true
	}
	return bundle
}
