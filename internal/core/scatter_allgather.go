package core

import (
	"repro/internal/collective"
	"repro/internal/comm"
)

// The scatter algorithms distribute the root's p per-destination chunks
// (InitialFor builds them with Origin = destination rank); every
// processor finishes holding exactly its own chunk. The allgather
// algorithms are the ring and recursive-doubling collectives the
// broadcast ablations already use, registered as first-class AllGather
// entries where every rank contributes.

// scatterBinomial is Scatter_Binomial: the minimum-spanning-tree scatter.
// The root starts with all p chunks; in round mask (from the highest
// power of two below p downward) every holder forwards the half of its
// block addressed to relative ranks [rel+mask, rel+2·mask) to rel+mask.
// Each processor receives exactly once and forwards ever-smaller blocks,
// so the root sends ⌈log2 p⌉ messages instead of p−1.
type scatterBinomial struct{}

// ScatterBinomial returns the binomial-tree scatter.
func ScatterBinomial() Algorithm { return scatterBinomial{} }

func (scatterBinomial) Name() string { return "Scatter_Binomial" }

func (scatterBinomial) Collective() Collective { return Scatter }

func (scatterBinomial) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	rank := c.Rank()
	root := spec.Sources[0]
	if p == 1 {
		return mine
	}
	rel := (rank - root + p) % p
	real := func(r int) int { return (r + root) % p }
	destRel := func(pt comm.Part) int { return (pt.Origin - root + p) % p }
	var held []comm.Part
	if rank == root {
		held = mine.Parts
	}
	top := 1
	for top < p {
		top <<= 1
	}
	iter := 0
	for mask := top >> 1; mask > 0; mask >>= 1 {
		comm.MarkIter(c, iter)
		iter++
		switch rel % (2 * mask) {
		case 0:
			if rel+mask >= p {
				continue
			}
			keep := held[:0]
			var fwd []comm.Part
			for _, pt := range held {
				if destRel(pt) >= rel+mask {
					fwd = append(fwd, pt)
				} else {
					keep = append(keep, pt)
				}
			}
			held = keep
			c.Send(real(rel+mask), comm.Message{Parts: fwd})
		case mask:
			m := c.Recv(real(rel - mask))
			comm.ChargeCombine(c, m.Len())
			held = m.Parts
		}
	}
	return comm.Message{Parts: held}
}

// scatterDirect is Scatter_Direct: the root sends every chunk straight to
// its destination, one message per processor — the serialized library
// baseline the binomial tree is measured against (the scatter analogue of
// the 2-Step's congestion at P0).
type scatterDirect struct{}

// ScatterDirect returns the direct (serialized root) scatter.
func ScatterDirect() Algorithm { return scatterDirect{} }

func (scatterDirect) Name() string { return "Scatter_Direct" }

func (scatterDirect) Collective() Collective { return Scatter }

func (scatterDirect) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	root := spec.Sources[0]
	var bundles []comm.Message
	if c.Rank() == root {
		bundles = make([]comm.Message, p)
		for _, pt := range mine.Parts {
			bundles[pt.Origin] = comm.Message{Parts: []comm.Part{pt}}
		}
	}
	return collective.Scatter(c, root, bundles)
}

// agRing is Ag_Ring: the classic ring allgather with every rank
// contributing (p−1 neighbour steps, bandwidth-optimal volume).
type agRing struct{}

// AgRing returns the ring allgather.
func AgRing() Algorithm { return agRing{} }

func (agRing) Name() string { return "Ag_Ring" }

func (agRing) Collective() Collective { return AllGather }

func (agRing) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return collective.AllgatherRing(c, mine)
}

// agRecDouble is Ag_RecDouble: the recursive-doubling allgather with
// every rank contributing (log-depth on power-of-two machines, ring
// fallback otherwise).
type agRecDouble struct{}

// AgRecDouble returns the recursive-doubling allgather.
func AgRecDouble() Algorithm { return agRecDouble{} }

func (agRecDouble) Name() string { return "Ag_RecDouble" }

func (agRecDouble) Collective() Collective { return AllGather }

func (agRecDouble) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return collective.AllgatherRecDoubling(c, spec.Sources, mine)
}
