package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/comm"
)

// Collective names one collective communication pattern. The registry
// holds algorithms for several collectives; the broadcast family is the
// paper's suite, the others are the modern extensions (reduction,
// scatter/allgather, all-to-all) that reuse the same combine, trace and
// autotune machinery.
type Collective string

// The implemented collectives.
const (
	// Broadcast is s-to-p broadcasting: s sources each hold a message
	// that must reach all p processors (the paper's problem).
	Broadcast Collective = "Broadcast"
	// Reduce folds the sources' contributions into one result at the
	// root (the first source) under the byte-wise sum mod 256.
	Reduce Collective = "Reduce"
	// AllReduce is Reduce delivered to every processor.
	AllReduce Collective = "AllReduce"
	// Scatter splits the root's p per-destination chunks so that rank r
	// ends with exactly chunk r.
	Scatter Collective = "Scatter"
	// AllGather concatenates every rank's contribution on every rank.
	AllGather Collective = "AllGather"
	// AllToAll is the personalized exchange: every rank holds p chunks,
	// one per destination, and ends with the p chunks addressed to it.
	AllToAll Collective = "AllToAll"
)

// Collectives returns every implemented collective, broadcast first.
func Collectives() []Collective {
	return []Collective{Broadcast, Reduce, AllReduce, Scatter, AllGather, AllToAll}
}

// ParseCollective maps a (case-insensitive) collective name to its
// canonical value. The empty string means Broadcast, so configurations
// written before the collective axis existed keep their meaning.
func ParseCollective(name string) (Collective, error) {
	if name == "" {
		return Broadcast, nil
	}
	for _, coll := range Collectives() {
		if strings.EqualFold(name, string(coll)) {
			return coll, nil
		}
	}
	return "", fmt.Errorf("core: unknown collective %q (want Broadcast, Reduce, AllReduce, Scatter, AllGather or AllToAll)", name)
}

// Caps is a collective's capability row: what the configuration surface
// may set for it and which runtimes can verify it. The facade validates
// Config against this table.
type Caps struct {
	// TakesSources: the source set (Sources/SourceRanks/Distribution)
	// selects which ranks contribute. When false, every rank
	// participates and the source fields must stay unset.
	TakesSources bool
	// SingleSource: exactly one source (the root) is allowed.
	SingleSource bool
	// Combining: the result is an element-wise reduction of the
	// contributions (one ReducedOrigin part) rather than a concatenation
	// of the original messages.
	Combining bool
	// Chunked: initial bundles carry p per-destination chunks, so a
	// payload supplies p·L bytes rather than L.
	Chunked bool
	// Cluster: supported on multi-process cluster sessions, whose
	// workers verify results locally. Only full broadcasts are verified
	// there today, so the other collectives are rejected.
	Cluster bool
}

// Caps returns the collective's capability row.
func (c Collective) Caps() Caps {
	switch c {
	case Broadcast:
		return Caps{TakesSources: true, Cluster: true}
	case Reduce:
		return Caps{TakesSources: true, Combining: true}
	case AllReduce:
		return Caps{TakesSources: true, Combining: true}
	case Scatter:
		return Caps{TakesSources: true, SingleSource: true, Chunked: true}
	case AllGather:
		return Caps{}
	case AllToAll:
		return Caps{Chunked: true}
	}
	return Caps{}
}

// CollectiveAlgorithm is an Algorithm tagged with the collective it
// implements. Untagged algorithms are broadcasts (the paper's suite
// predates the collective axis).
type CollectiveAlgorithm interface {
	Algorithm
	// Collective names the pattern the algorithm implements.
	Collective() Collective
}

// CollectiveOf returns the collective an algorithm implements:
// its Collective() tag, or Broadcast for untagged algorithms.
func CollectiveOf(a Algorithm) Collective {
	if ca, ok := a.(CollectiveAlgorithm); ok {
		return ca.Collective()
	}
	return Broadcast
}

// ReducedOrigin is the Origin of a part produced by folding contributions
// under a reduction (Reduce/AllReduce results). It can never collide with
// a rank.
const ReducedOrigin = -1

// ReduceBundle folds every part of m into a single ReducedOrigin part
// under the byte-wise sum mod 256 (commutative and associative, so every
// reduction tree computes the same bytes). Length-only parts fold to the
// maximum length, which is how the simulator prices a reduced bundle. An
// empty message stays empty — the identity contribution of a
// non-source rank.
func ReduceBundle(m comm.Message) comm.Message {
	if len(m.Parts) == 0 {
		return comm.Message{Tag: m.Tag}
	}
	maxLen := 0
	anyData := false
	for _, p := range m.Parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
		if p.Data != nil {
			anyData = true
		}
	}
	// Data and Size are mutually exclusive on a Part (engines ignore and
	// may drop Size when Data is set), so the fold sets exactly one.
	out := comm.Part{Origin: ReducedOrigin}
	if anyData {
		sum := make([]byte, maxLen)
		for _, p := range m.Parts {
			for i, b := range p.Data {
				sum[i] += b
			}
		}
		out.Data = sum
	} else {
		out.Size = maxLen
	}
	return comm.Message{Tag: m.Tag, Parts: []comm.Part{out}}
}

// EncodeA2AOrigin packs an all-to-all chunk's (origin, destination) pair
// into the part's Origin field for transit: origin·p + dest. The routing
// steps read the destination with DecodeA2ADest; FinalizeAlltoall
// restores plain origins at the end.
func EncodeA2AOrigin(origin, dest, p int) int { return origin*p + dest }

// DecodeA2ADest extracts the destination rank from a transit-encoded
// all-to-all origin.
func DecodeA2ADest(enc, p int) int { return enc % p }

// FinalizeAlltoall rewrites the transit-encoded origins of a completed
// all-to-all bundle back to plain origin ranks and sorts the parts by
// origin. It panics if a chunk addressed to another rank is present —
// that is a routing bug, not an input error.
func FinalizeAlltoall(c comm.Comm, m comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	for i := range m.Parts {
		enc := m.Parts[i].Origin
		if enc%p != rank {
			panic(fmt.Sprintf("core: all-to-all chunk for rank %d delivered to rank %d", enc%p, rank))
		}
		m.Parts[i].Origin = enc / p
	}
	sort.Slice(m.Parts, func(i, j int) bool { return m.Parts[i].Origin < m.Parts[j].Origin })
	return m
}

// chunk returns the d-th of p equal slices of data. The payload length
// must be a multiple of p; the facade's default payloads are, and an
// explicit RunOptions.Payload for a chunked collective must match.
func chunk(data []byte, d, p int) []byte {
	if len(data)%p != 0 {
		panic(fmt.Sprintf("core: chunked payload of %d bytes is not a multiple of p=%d", len(data), p))
	}
	cl := len(data) / p
	return data[d*cl : (d+1)*cl : (d+1)*cl]
}

// InitialFor builds the bundle a processor enters a collective with.
// payload is called only for ranks that hold initial data. For Broadcast,
// Reduce, AllReduce and AllGather each source contributes one part of its
// own bytes; for Scatter the root contributes p per-destination chunks
// (payload supplies p·L bytes, chunk d addressed to rank d); for AllToAll
// every rank contributes p chunks with transit-encoded origins.
func InitialFor(coll Collective, spec Spec, rank int, payload func(rank int) []byte) comm.Message {
	p := spec.P()
	switch coll {
	case Scatter:
		if rank != spec.Sources[0] {
			return comm.Message{}
		}
		data := payload(rank)
		parts := make([]comm.Part, p)
		for d := 0; d < p; d++ {
			parts[d] = comm.Part{Origin: d, Data: chunk(data, d, p)}
		}
		return comm.Message{Parts: parts}
	case AllToAll:
		data := payload(rank)
		parts := make([]comm.Part, p)
		for d := 0; d < p; d++ {
			parts[d] = comm.Part{Origin: EncodeA2AOrigin(rank, d, p), Data: chunk(data, d, p)}
		}
		return comm.Message{Parts: parts}
	default:
		if !spec.IsSource(rank) {
			return comm.Message{}
		}
		return comm.Message{Parts: []comm.Part{{Origin: rank, Data: payload(rank)}}}
	}
}

// InitialLenFor is InitialFor on the simulator's length-only path: size
// is the per-chunk (Scatter/AllToAll) or per-source (the rest) length L,
// declared without allocating payload bytes.
func InitialLenFor(coll Collective, spec Spec, rank, size int) comm.Message {
	p := spec.P()
	switch coll {
	case Scatter:
		if rank != spec.Sources[0] {
			return comm.Message{}
		}
		parts := make([]comm.Part, p)
		for d := 0; d < p; d++ {
			parts[d] = comm.Part{Origin: d, Size: size}
		}
		return comm.Message{Parts: parts}
	case AllToAll:
		parts := make([]comm.Part, p)
		for d := 0; d < p; d++ {
			parts[d] = comm.Part{Origin: EncodeA2AOrigin(rank, d, p), Size: size}
		}
		return comm.Message{Parts: parts}
	default:
		return InitialMessageLen(spec, rank, size)
	}
}

// AllRanksSources returns the sorted source list naming every rank —
// the spec form of the sourceless collectives (AllGather, AllToAll).
func AllRanksSources(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}
