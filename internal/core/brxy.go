package core

import (
	"repro/internal/comm"
)

// dimOrder says which mesh dimension a Br_xy algorithm processes first.
type dimOrder int

const (
	rowsFirst dimOrder = iota
	colsFirst
)

// maxPerLine returns the maximum number of sources in any row (max_r) and
// any column (max_c) of the spec's mesh.
func maxPerLine(spec Spec) (maxR, maxC int) {
	perRow := make([]int, spec.Rows)
	perCol := make([]int, spec.Cols)
	for _, src := range spec.Sources {
		perRow[src/spec.Cols]++
		perCol[src%spec.Cols]++
	}
	for _, v := range perRow {
		if v > maxR {
			maxR = v
		}
	}
	for _, v := range perCol {
		if v > maxC {
			maxC = v
		}
	}
	return maxR, maxC
}

// brXY runs Br_Lin one dimension at a time: first within every line of the
// chosen first dimension, then within every line of the other. After the
// first phase every processor of a non-empty first-dimension line holds
// that line's combined bundle; the second phase broadcasts the per-line
// bundles across the other dimension, completing the s-to-p broadcast.
type brXY struct {
	name string
	// order decides the first dimension from the spec.
	order func(Spec) dimOrder
}

func (a brXY) Name() string { return a.name }

func (a brXY) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	rank := c.Rank()
	row, col := rank/spec.Cols, rank%spec.Cols
	first := a.order(spec)

	// rowLine and colLine build this processor's two lines.
	rowLine := func() []int {
		line := make([]int, spec.Cols)
		for j := range line {
			line[j] = row*spec.Cols + j
		}
		return line
	}
	colLine := func() []int {
		line := make([]int, spec.Rows)
		for i := range line {
			line[i] = i*spec.Cols + col
		}
		return line
	}

	// Phase 1: broadcast within each line of the first dimension. Holder
	// flags are the per-line source flags.
	var phase1Line []int
	var myPos1 int
	if first == rowsFirst {
		phase1Line, myPos1 = rowLine(), col
	} else {
		phase1Line, myPos1 = colLine(), row
	}
	holds1 := make([]bool, len(phase1Line))
	for i, r := range phase1Line {
		holds1[i] = spec.IsSource(r)
	}
	iters1 := lineIters(len(phase1Line))
	bundle := runLine(c, phase1Line, holds1, myPos1, mine, 0)

	// Phase 2: every processor of a line that contained any source now
	// holds that line's bundle. Compute which first-dimension lines were
	// non-empty — identical on every processor — and broadcast along the
	// second dimension.
	var nonEmpty []bool
	if first == rowsFirst {
		nonEmpty = make([]bool, spec.Rows)
		for _, src := range spec.Sources {
			nonEmpty[src/spec.Cols] = true
		}
	} else {
		nonEmpty = make([]bool, spec.Cols)
		for _, src := range spec.Sources {
			nonEmpty[src%spec.Cols] = true
		}
	}
	var phase2Line []int
	var myPos2 int
	if first == rowsFirst {
		phase2Line, myPos2 = colLine(), row
	} else {
		phase2Line, myPos2 = rowLine(), col
	}
	holds2 := make([]bool, len(phase2Line))
	for i := range holds2 {
		holds2[i] = nonEmpty[i]
	}
	return runLine(c, phase2Line, holds2, myPos2, bundle, iters1)
}

// BrXYSource returns Algorithm Br_xy_source: the first dimension is the
// one whose lines contain fewer sources (rows first iff max_r < max_c), so
// the early iterations move small messages and grow the holder set fast.
func BrXYSource() Algorithm {
	return brXY{
		name: "Br_xy_source",
		order: func(spec Spec) dimOrder {
			maxR, maxC := maxPerLine(spec)
			if maxR < maxC {
				return rowsFirst
			}
			return colsFirst
		},
	}
}

// BrXYDim returns Algorithm Br_xy_dim: the first dimension is chosen from
// the machine dimensions only (rows first iff r ≥ c), ignoring the source
// positions — the paper's distribution-oblivious comparison point.
func BrXYDim() Algorithm {
	return brXY{
		name: "Br_xy_dim",
		order: func(spec Spec) dimOrder {
			if spec.Rows >= spec.Cols {
				return rowsFirst
			}
			return colsFirst
		},
	}
}
