package core

import (
	"testing"

	"repro/internal/dist"
)

// TestReposAdaptiveMarginBoundary pins the decision rule at its boundary:
// the permutation runs only when the efficiency gain strictly exceeds the
// margin, so a margin exactly equal to the gain must skip it.
func TestReposAdaptiveMarginBoundary(t *testing.T) {
	inner := BrXYSource()
	spec := makeSpec(t, dist.Cross(), 8, 8, 12)
	gen := IdealFor(inner, spec.Rows, spec.Cols)
	ideal, err := gen.Sources(spec.Rows, spec.Cols, spec.S())
	if err != nil {
		t.Fatal(err)
	}
	idealSpec := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: ideal, Indexing: spec.Indexing}
	gain := growthEfficiency(idealSpec) - growthEfficiency(spec)
	if gain <= 0 {
		t.Fatalf("cross distribution should benefit from repositioning (gain %v)", gain)
	}

	_, plain := runSim(t, inner, spec, 2048)
	_, always := runSim(t, ReposAdaptive(inner, 0), spec, 2048)
	if always.Elapsed == plain.Elapsed {
		t.Fatal("margin 0 with positive gain did not reposition")
	}

	// gain == margin: the improvement is not strictly above the margin, so
	// the permutation is skipped and the run matches the inner algorithm.
	_, at := runSim(t, ReposAdaptive(inner, gain), spec, 2048)
	if at.Elapsed != plain.Elapsed {
		t.Errorf("margin == gain repositioned: elapsed %v, inner alone %v", at.Elapsed, plain.Elapsed)
	}

	// A margin a hair below the gain repositions again.
	_, below := runSim(t, ReposAdaptive(inner, gain-1e-9), spec, 2048)
	if below.Elapsed != always.Elapsed {
		t.Errorf("margin just below gain skipped: elapsed %v, always-reposition %v", below.Elapsed, always.Elapsed)
	}

	// Output correctness is preserved on both sides of the boundary.
	out, _ := runSim(t, ReposAdaptive(inner, gain), spec, 24)
	verifyBundles(t, "ReposAdaptive@margin", spec, out, 24)
}

// TestRegistryMemoized checks the memoized registry invariants: stable
// instances, isolated returned slices, and map-backed name lookup.
func TestRegistryMemoized(t *testing.T) {
	a, b := Registry(), Registry()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("registry sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Errorf("algorithm %d order unstable: %s vs %s", i, a[i].Name(), b[i].Name())
		}
	}
	// The returned slice is a copy: scribbling on it must not leak.
	a[0] = nil
	if c := Registry(); c[0] == nil {
		t.Fatal("Registry returns a shared slice")
	}
	for _, alg := range b {
		got, err := ByName(alg.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != alg.Name() {
			t.Errorf("ByName(%s) returned %s", alg.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}
