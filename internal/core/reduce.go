package core

import (
	"repro/internal/collective"
	"repro/internal/comm"
)

// The reduction algorithms reuse the broadcast machinery: contributions
// travel as ordinary bundles, ReduceBundle folds them under the byte-wise
// sum (charged through the same combine hook the 1996 message-combining
// algorithms use), and the communication skeletons are the binomial tree
// and recursive doubling the broadcast family already prices. The root of
// a rooted reduction is the first source.

// reduceTree folds the sources' contributions at root along the binomial
// tree over relative ranks and returns the reduced bundle at root, an
// empty bundle everywhere else. Non-sources contribute the empty bundle —
// the identity of the byte-sum — so every processor participates in the
// tree regardless of the source set.
func reduceTree(c comm.Comm, root int, mine comm.Message) comm.Message {
	p := c.Size()
	rank := c.Rank()
	rel := (rank - root + p) % p
	real := func(r int) int { return (r + root) % p }
	acc := ReduceBundle(mine)
	iter := 0
	for mask := 1; mask < p; mask <<= 1 {
		comm.MarkIter(c, iter)
		iter++
		if rel&mask != 0 {
			c.Send(real(rel-mask), acc)
			return comm.Message{}
		}
		if rel+mask < p {
			m := c.Recv(real(rel + mask))
			comm.ChargeCombine(c, m.Len())
			acc = ReduceBundle(acc.Append(m))
		}
	}
	return acc
}

// redTree is Red_Tree: the binomial-tree reduction to the root (the first
// source). The mirror image of the one-to-all broadcast of Section 2 —
// the same halving tree walked leaf-to-root with a fold at every merge.
type redTree struct{}

// RedTree returns the binomial-tree reduction.
func RedTree() Algorithm { return redTree{} }

func (redTree) Name() string { return "Red_Tree" }

func (redTree) Collective() Collective { return Reduce }

func (redTree) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return reduceTree(c, spec.Sources[0], mine)
}

// allRedRecDouble is AllRed_RecDouble: recursive-doubling all-reduce. In
// round k every processor exchanges its partial fold with the partner at
// XOR-distance 2^k, so after ⌈log2 p⌉ rounds every processor holds the
// full reduction — the classic butterfly, log-depth with no broadcast
// phase. Power-of-two machines only; other sizes fall back to
// reduce-then-broadcast (same result, one extra log factor of latency).
type allRedRecDouble struct{}

// AllRedRecDouble returns the recursive-doubling all-reduce.
func AllRedRecDouble() Algorithm { return allRedRecDouble{} }

func (allRedRecDouble) Name() string { return "AllRed_RecDouble" }

func (allRedRecDouble) Collective() Collective { return AllReduce }

func (allRedRecDouble) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	rank := c.Rank()
	if p == 1 {
		return ReduceBundle(mine)
	}
	if p&(p-1) != 0 {
		root := spec.Sources[0]
		acc := reduceTree(c, root, mine)
		return collective.Bcast(c, root, acc)
	}
	acc := ReduceBundle(mine)
	iter := 0
	for dist := 1; dist < p; dist <<= 1 {
		comm.MarkIter(c, iter)
		iter++
		m := comm.Exchange(c, rank^dist, acc)
		comm.ChargeCombine(c, m.Len())
		acc = ReduceBundle(acc.Append(m))
	}
	return acc
}

// allRedRedBcast is AllRed_RedBcast: binomial-tree reduction to the root
// followed by the binomial one-to-all broadcast of the result — the
// composition a 1996-era library would write, correct for every p, twice
// the tree depth of the butterfly.
type allRedRedBcast struct{}

// AllRedRedBcast returns the reduce-then-broadcast all-reduce.
func AllRedRedBcast() Algorithm { return allRedRedBcast{} }

func (allRedRedBcast) Name() string { return "AllRed_RedBcast" }

func (allRedRedBcast) Collective() Collective { return AllReduce }

func (allRedRedBcast) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	root := spec.Sources[0]
	acc := reduceTree(c, root, mine)
	return collective.Bcast(c, root, acc)
}
