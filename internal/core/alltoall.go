package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/topology"
)

// The all-to-all (personalized exchange) algorithms route p chunks per
// rank, one per destination, carried as parts with transit-encoded
// origins (EncodeA2AOrigin). A2A_Pairwise is the direct p−1-permutation
// exchange the paper's PersAlltoAll pattern generalizes to personalized
// data; A2A_JungSakho is the dimension-ordered torus schedule of Jung &
// Sakho (arXiv 0909.1374), which trades message count for store-and-
// forward volume and wins where per-message startup dominates.

// a2aPairwise is A2A_Pairwise: in step t every rank exchanges one chunk
// with one partner (XOR permutations on power-of-two machines, cyclic
// shifts otherwise) — p−1 messages per rank, each carrying exactly the
// chunk addressed to the partner, no forwarding.
type a2aPairwise struct{}

// A2APairwise returns the pairwise-exchange all-to-all.
func A2APairwise() Algorithm { return a2aPairwise{} }

func (a2aPairwise) Name() string { return "A2A_Pairwise" }

func (a2aPairwise) Collective() Collective { return AllToAll }

func (a2aPairwise) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	rank := c.Rank()
	byDest := make([]comm.Part, p)
	for _, pt := range mine.Parts {
		byDest[DecodeA2ADest(pt.Origin, p)] = pt
	}
	out := comm.Message{Tag: mine.Tag, Parts: []comm.Part{byDest[rank]}}
	pow2 := p&(p-1) == 0
	for t := 1; t < p; t++ {
		comm.MarkIter(c, t-1)
		var sendTo, recvFrom int
		if pow2 {
			sendTo = rank ^ t
			recvFrom = rank ^ t
		} else {
			sendTo = (rank + t) % p
			recvFrom = (rank - t + p) % p
		}
		c.Send(sendTo, comm.Message{Parts: []comm.Part{byDest[sendTo]}})
		m := c.Recv(recvFrom)
		out.Parts = append(out.Parts, m.Parts...)
	}
	return FinalizeAlltoall(c, out)
}

// a2aJungSakho is A2A_JungSakho: the optimal all-to-all for k-ary
// n-dimensional tori (Jung & Sakho, arXiv 0909.1374). The rank space is
// decomposed along the torus dimensions of TorusDims(p); in phase d
// (radix k) every rank performs k−1 ring steps within its dimension-d
// ring, each step forwarding every held chunk whose destination
// coordinate in dimension d matches the step's offset. Each chunk thus
// moves dimension by dimension toward its destination: Σ(k_d−1)
// messages per rank (9 at p=64 on a 4×4×4 torus, against the pairwise
// exchange's 63) at the price of store-and-forward volume — exactly the
// startup-vs-bandwidth trade that challenges the 1996 paper's finding
// that the direct MPI_Alltoall always wins on the T3D.
type a2aJungSakho struct{}

// A2AJungSakho returns the Jung–Sakho torus all-to-all.
func A2AJungSakho() Algorithm { return a2aJungSakho{} }

func (a2aJungSakho) Name() string { return "A2A_JungSakho" }

func (a2aJungSakho) Collective() Collective { return AllToAll }

func (a2aJungSakho) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	p := c.Size()
	rank := c.Rank()
	x, y, z := topology.TorusDims(p)
	var radices []int
	for _, k := range []int{x, y, z} {
		if k > 1 {
			radices = append(radices, k)
		}
	}
	held := mine.Parts
	stride := 1
	iter := 0
	for d, k := range radices {
		comm.MarkPhase(c, fmt.Sprintf("dim%d(k=%d)", d, k))
		pos := (rank / stride) % k
		for t := 1; t < k; t++ {
			comm.MarkIter(c, iter)
			iter++
			destPos := (pos + t) % k
			srcPos := (pos - t + k) % k
			destRank := rank + (destPos-pos)*stride
			srcRank := rank + (srcPos-pos)*stride
			var fwd []comm.Part
			keep := held[:0]
			for _, pt := range held {
				dest := DecodeA2ADest(pt.Origin, p)
				if (dest/stride)%k == destPos {
					fwd = append(fwd, pt)
				} else {
					keep = append(keep, pt)
				}
			}
			c.Send(destRank, comm.Message{Parts: fwd})
			m := c.Recv(srcRank)
			// Store-and-forward repack: incoming chunks join the held
			// buffer for the next step, the volume cost the schedule
			// trades for its Σ(k_d−1) message count.
			comm.ChargeCombine(c, m.Len())
			held = append(keep, m.Parts...)
		}
		stride *= k
	}
	return FinalizeAlltoall(c, comm.Message{Tag: mine.Tag, Parts: held})
}
