package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/live"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestWithDiscoveryCorrectBothEngines(t *testing.T) {
	for _, m := range [][2]int{{4, 4}, {3, 5}, {1, 7}} {
		r, c := m[0], m[1]
		p := r * c
		for _, s := range []int{1, p / 2, p} {
			if s < 1 {
				continue
			}
			spec := makeSpec(t, dist.Cross(), r, c, s)
			alg := WithDiscovery(BrXYSource())
			label := fmt.Sprintf("Discover/%dx%d/s=%d", r, c, s)
			out, _ := runSim(t, alg, spec, 24)
			verifyBundles(t, label, spec, out, 24)
			lout := runLive(t, alg, spec, 24)
			verifyBundles(t, label+" live", spec, lout, 24)
		}
	}
}

func TestWithDiscoveryName(t *testing.T) {
	if got := WithDiscovery(BrLin()).Name(); got != "Discover+Br_Lin" {
		t.Fatalf("Name = %q", got)
	}
}

func TestDiscoveryOverheadBounded(t *testing.T) {
	// The discovery phase must cost only a few extra rounds of p-byte
	// messages: for a 4K broadcast its overhead stays under 40%.
	spec := makeSpec(t, dist.Equal(), 8, 8, 16)
	_, plain := runSim(t, BrXYSource(), spec, 4096)
	_, disc := runSim(t, WithDiscovery(BrXYSource()), spec, 4096)
	if float64(disc.Elapsed) > 1.4*float64(plain.Elapsed) {
		t.Fatalf("discovery overhead too large: %d vs %d", disc.Elapsed, plain.Elapsed)
	}
	if disc.Elapsed <= plain.Elapsed {
		t.Fatalf("discovery was free: %d vs %d", disc.Elapsed, plain.Elapsed)
	}
}

func TestDiscoveryDetectsInconsistentSpec(t *testing.T) {
	// A processor that holds a payload but is not in spec.Sources is a
	// caller bug; discovery must catch it.
	spec := Spec{Rows: 2, Cols: 2, Sources: []int{0}, Indexing: topology.SnakeRowMajor}
	topo := topology.MustMesh2D(2, 2)
	nw, err := network.New(topo, topology.IdentityPlacement(4), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(nw, func(pr *sim.Proc) {
		mine := comm.Message{}
		if pr.Rank() == 0 || pr.Rank() == 3 { // 3 lies about being a source
			mine = comm.Message{Parts: []comm.Part{{Origin: pr.Rank(), Data: []byte{1}}}}
		}
		WithDiscovery(BrLin()).Run(pr, spec, mine)
	}, sim.Options{})
	if err == nil || !strings.Contains(err.Error(), "discover") {
		t.Fatalf("inconsistent source set not caught: %v", err)
	}
}

func TestIndepNoBarrier(t *testing.T) {
	// Indep_1toP must not synchronize: on the live engine a run with a
	// single source completes even though only the source knows anything
	// — every processor still receives via the tree.
	spec := makeSpec(t, dist.Equal(), 4, 4, 1)
	out, err := live.Run(16, func(pr *live.Proc) {
		mine := InitialMessage(spec, pr.Rank(), []byte("solo"))
		got := Indep1toP().Run(pr, spec, mine)
		if len(got.Parts) != 1 || string(got.Parts[0].Data) != "solo" {
			t.Errorf("rank %d got %v", pr.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// No barrier operations: total ops = tree sends + recvs only.
	totalSends := 0
	for _, ps := range out.Procs {
		totalSends += ps.Sends
	}
	if totalSends != 15 {
		t.Fatalf("single tree sent %d messages, want 15", totalSends)
	}
}

func TestIndepCongestionWorseThanBrLin(t *testing.T) {
	// The paper's reason for rejecting uncoordinated broadcasts: with
	// many sources it floods the machine. At s=p/2 on a 10×10 Paragon it
	// must be clearly slower than Br_Lin.
	spec := makeSpec(t, dist.Equal(), 10, 10, 50)
	_, indep := runSim(t, Indep1toP(), spec, 2048)
	_, brlin := runSim(t, BrLin(), spec, 2048)
	if float64(indep.Elapsed) < 1.5*float64(brlin.Elapsed) {
		t.Fatalf("Indep_1toP (%d) not ≥1.5× Br_Lin (%d)", indep.Elapsed, brlin.Elapsed)
	}
}

func TestReposAdaptiveCorrectBothPaths(t *testing.T) {
	// Hard distribution (repositions) and near-ideal distribution
	// (skips): both must deliver.
	for _, d := range []dist.Distribution{dist.Cross(), dist.IdealRows()} {
		spec := makeSpec(t, d, 8, 8, 16)
		alg := ReposAdaptive(BrXYSource(), 0.1)
		out, _ := runSim(t, alg, spec, 32)
		verifyBundles(t, alg.Name()+"/"+d.Name(), spec, out, 32)
		lout := runLive(t, alg, spec, 32)
		verifyBundles(t, alg.Name()+"/"+d.Name()+" live", spec, lout, 32)
	}
}

func TestReposAdaptiveSkipsOnIdeal(t *testing.T) {
	// On an already-ideal distribution the adaptive variant must cost
	// (nearly) the same as the plain algorithm — no permutation sends.
	spec := makeSpec(t, dist.IdealRows(), 16, 16, 32)
	_, plain := runSim(t, BrXYSource(), spec, 4096)
	_, adaptive := runSim(t, ReposAdaptive(BrXYSource(), 0.1), spec, 4096)
	plainSends, adaptiveSends := 0, 0
	for i := range plain.Procs {
		plainSends += plain.Procs[i].Sends
		adaptiveSends += adaptive.Procs[i].Sends
	}
	if adaptiveSends != plainSends {
		t.Fatalf("adaptive sent %d vs plain %d on an ideal distribution", adaptiveSends, plainSends)
	}
}

func TestReposAdaptiveRepositionsOnHard(t *testing.T) {
	// On the cross distribution the adaptive variant must behave like the
	// always-reposition algorithm (and beat the plain one at this size).
	spec := makeSpec(t, dist.Cross(), 16, 16, 64)
	_, plain := runSim(t, BrXYSource(), spec, 6144)
	_, always := runSim(t, ReposXYSource(), spec, 6144)
	_, adaptive := runSim(t, ReposAdaptive(BrXYSource(), 0.1), spec, 6144)
	if adaptive.Elapsed >= plain.Elapsed {
		t.Fatalf("adaptive (%d) did not beat plain (%d) on cross", adaptive.Elapsed, plain.Elapsed)
	}
	// Within 5% of always-reposition (identical decision, tiny barrier
	// bookkeeping differences allowed).
	ratio := float64(adaptive.Elapsed) / float64(always.Elapsed)
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("adaptive/always ratio %.3f", ratio)
	}
}

func TestGrowthEfficiencyDecision(t *testing.T) {
	ideal := makeSpec(t, dist.IdealRows(), 16, 16, 32)
	hard := makeSpec(t, dist.Square(), 16, 16, 32)
	if gi, gh := growthEfficiency(ideal), growthEfficiency(hard); gi <= gh {
		t.Fatalf("ideal efficiency %.2f not above square block %.2f", gi, gh)
	}
	full := makeSpec(t, dist.Equal(), 4, 4, 16)
	if g := growthEfficiency(full); g != 1 {
		t.Fatalf("s=p efficiency %.2f, want 1", g)
	}
}
