package core

import (
	"fmt"
	"testing"

	"repro/internal/dist"
)

// TestBrKPortAllPortCounts sweeps the (k+1)-section generalization over
// port counts the registry instance (k=4) does not cover, including the
// k=1 degenerate case that must behave like pairwise sectioning, on
// shapes that exercise short last subsegments and straggler groups.
func TestBrKPortAllPortCounts(t *testing.T) {
	meshes := [][2]int{{1, 7}, {4, 4}, {3, 5}, {5, 5}, {4, 7}}
	for _, k := range []int{1, 2, 3, 5, 8} {
		alg := BrKPort(k)
		for _, m := range meshes {
			r, c := m[0], m[1]
			p := r * c
			for _, s := range []int{1, 2, p / 2, p} {
				if s < 1 {
					continue
				}
				for _, d := range []dist.Distribution{dist.Equal(), dist.Square(), dist.Cross()} {
					spec := makeSpec(t, d, r, c, s)
					label := fmt.Sprintf("%s/%s(%d)/%dx%d", alg.Name(), d.Name(), s, r, c)
					out, _ := runSim(t, alg, spec, 16)
					verifyBundles(t, label, spec, out, 16)
				}
			}
		}
	}
}

// TestBrKPortName pins the registry naming scheme the planner's analytic
// model parses the port count out of.
func TestBrKPortName(t *testing.T) {
	if got := BrKPort(4).Name(); got != "Br_kport4" {
		t.Errorf("BrKPort(4).Name() = %q, want Br_kport4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BrKPort(0) accepted")
		}
	}()
	BrKPort(0)
}
