package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/live"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chunkFor builds the distinctive chunk an origin addresses to dest under
// the chunked collectives (Scatter, AllToAll).
func chunkFor(origin, dest, size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(origin*31 + dest*131 + i)
	}
	return data
}

// chunkedPayloadFor is the p·size-byte payload of a chunked-collective
// rank: the concatenation of its p per-destination chunks.
func chunkedPayloadFor(origin, p, size int) []byte {
	data := make([]byte, 0, p*size)
	for d := 0; d < p; d++ {
		data = append(data, chunkFor(origin, d, size)...)
	}
	return data
}

// reducedFor is the byte-wise sum mod 256 of the sources' payloads — the
// expected result of Reduce/AllReduce.
func reducedFor(sources []int, size int) []byte {
	sum := make([]byte, size)
	for _, s := range sources {
		for i, b := range payloadFor(s, size) {
			sum[i] += b
		}
	}
	return sum
}

func collPayload(coll Collective, p, size int) func(rank int) []byte {
	if coll.Caps().Chunked {
		return func(rank int) []byte { return chunkedPayloadFor(rank, p, size) }
	}
	return func(rank int) []byte { return payloadFor(rank, size) }
}

// runSimColl executes a collective algorithm on the simulator with real
// payload bytes and returns the per-rank result bundles.
func runSimColl(t *testing.T, coll Collective, alg Algorithm, spec Spec, size int) []comm.Message {
	t.Helper()
	topo := topology.MustMesh2D(spec.Rows, spec.Cols)
	nw, err := network.New(topo, topology.IdentityPlacement(spec.P()), network.ParagonNX())
	if err != nil {
		t.Fatal(err)
	}
	payload := collPayload(coll, spec.P(), size)
	out := make([]comm.Message, spec.P())
	if _, err := sim.Run(nw, func(pr *sim.Proc) {
		mine := InitialFor(coll, spec, pr.Rank(), payload)
		out[pr.Rank()] = alg.Run(pr, spec, mine)
	}, sim.Options{}); err != nil {
		t.Fatalf("%s/%s on %d×%d: %v", coll, alg.Name(), spec.Rows, spec.Cols, err)
	}
	return out
}

// runLiveColl is runSimColl on the live goroutine engine.
func runLiveColl(t *testing.T, coll Collective, alg Algorithm, spec Spec, size int) []comm.Message {
	t.Helper()
	payload := collPayload(coll, spec.P(), size)
	out := make([]comm.Message, spec.P())
	if _, err := live.Run(spec.P(), func(pr *live.Proc) {
		mine := InitialFor(coll, spec, pr.Rank(), payload)
		out[pr.Rank()] = alg.Run(pr, spec, mine)
	}); err != nil {
		t.Fatalf("%s/%s on %d×%d (live): %v", coll, alg.Name(), spec.Rows, spec.Cols, err)
	}
	return out
}

// verifyCollective asserts the byte-exact postcondition of each
// collective: Reduce concentrates the fold at the root, AllReduce
// replicates it, Scatter leaves rank r with exactly chunk r, AllGather
// concatenates every contribution everywhere, AllToAll transposes the
// chunk matrix.
func verifyCollective(t *testing.T, label string, coll Collective, spec Spec, out []comm.Message, size int) {
	t.Helper()
	p := spec.P()
	switch coll {
	case Broadcast:
		verifyBundles(t, label, spec, out, size)
	case Reduce, AllReduce:
		want := reducedFor(spec.Sources, size)
		for rank, m := range out {
			if coll == Reduce && rank != spec.Sources[0] {
				if len(m.Parts) != 0 {
					t.Fatalf("%s: non-root rank %d holds %d parts", label, rank, len(m.Parts))
				}
				continue
			}
			if len(m.Parts) != 1 || m.Parts[0].Origin != ReducedOrigin {
				t.Fatalf("%s: rank %d result parts = %v, want one ReducedOrigin part", label, rank, m.Origins())
			}
			if !reflect.DeepEqual(m.Parts[0].Data, want) {
				t.Fatalf("%s: rank %d reduced bytes wrong", label, rank)
			}
		}
	case Scatter:
		root := spec.Sources[0]
		for rank, m := range out {
			if len(m.Parts) != 1 || m.Parts[0].Origin != rank {
				t.Fatalf("%s: rank %d holds %v, want its own chunk", label, rank, m.Origins())
			}
			if !reflect.DeepEqual(m.Parts[0].Data, chunkFor(root, rank, size)) {
				t.Fatalf("%s: rank %d chunk bytes wrong", label, rank)
			}
		}
	case AllGather:
		for rank, m := range out {
			if !reflect.DeepEqual(m.Origins(), spec.Sources) {
				t.Fatalf("%s: rank %d origins = %v, want %v", label, rank, m.Origins(), spec.Sources)
			}
			for _, pt := range m.Parts {
				if !reflect.DeepEqual(pt.Data, payloadFor(pt.Origin, size)) {
					t.Fatalf("%s: rank %d payload of origin %d corrupted", label, rank, pt.Origin)
				}
			}
		}
	case AllToAll:
		for rank, m := range out {
			if !reflect.DeepEqual(m.Origins(), AllRanksSources(p)) {
				t.Fatalf("%s: rank %d origins = %v, want all ranks", label, rank, m.Origins())
			}
			for _, pt := range m.Parts {
				if !reflect.DeepEqual(pt.Data, chunkFor(pt.Origin, rank, size)) {
					t.Fatalf("%s: rank %d chunk from origin %d corrupted", label, rank, pt.Origin)
				}
			}
		}
	}
}

// collSpecs enumerates the spec variants a collective is tested under on
// an r×c mesh: several source subsets for the rooted/combining
// collectives, the all-ranks spec for the sourceless ones.
func collSpecs(coll Collective, r, c int) []Spec {
	p := r * c
	mk := func(sources []int) Spec {
		return Spec{Rows: r, Cols: c, Sources: sources, Indexing: topology.SnakeRowMajor}
	}
	switch coll {
	case Reduce, AllReduce:
		specs := []Spec{mk([]int{0}), mk([]int{p / 2}), mk(AllRanksSources(p))}
		if p >= 4 {
			specs = append(specs, mk([]int{1, p / 2, p - 1}))
		}
		return specs
	case Scatter:
		return []Spec{mk([]int{0}), mk([]int{p - 1})}
	default:
		return []Spec{mk(AllRanksSources(p))}
	}
}

// TestCollectivesSim is the per-collective correctness matrix on the
// simulator: every non-broadcast registry entry × several machine shapes
// (power-of-two and not, to exercise the fallbacks) × source variants,
// verified byte-exact.
func TestCollectivesSim(t *testing.T) {
	meshes := [][2]int{{1, 8}, {4, 4}, {3, 5}, {4, 7}}
	for _, coll := range Collectives() {
		if coll == Broadcast {
			continue
		}
		for _, alg := range RegistryFor(coll) {
			for _, m := range meshes {
				for _, spec := range collSpecs(coll, m[0], m[1]) {
					label := fmt.Sprintf("%s/%s/%dx%d/s=%v", coll, alg.Name(), m[0], m[1], spec.Sources)
					out := runSimColl(t, coll, alg, spec, 16)
					verifyCollective(t, label, coll, spec, out, 16)
				}
			}
		}
	}
}

// TestCollectivesLive runs a reduced matrix on the live goroutine engine
// with real bytes.
func TestCollectivesLive(t *testing.T) {
	meshes := [][2]int{{4, 4}, {3, 5}}
	for _, coll := range Collectives() {
		if coll == Broadcast {
			continue
		}
		for _, alg := range RegistryFor(coll) {
			for _, m := range meshes {
				for _, spec := range collSpecs(coll, m[0], m[1]) {
					label := fmt.Sprintf("%s/%s/%dx%d/s=%v live", coll, alg.Name(), m[0], m[1], spec.Sources)
					out := runLiveColl(t, coll, alg, spec, 32)
					verifyCollective(t, label, coll, spec, out, 32)
				}
			}
		}
	}
}

// TestCollectivesSingleProcessor covers the degenerate p=1 machine for
// every collective entry.
func TestCollectivesSingleProcessor(t *testing.T) {
	for _, coll := range Collectives() {
		if coll == Broadcast {
			continue
		}
		spec := Spec{Rows: 1, Cols: 1, Sources: []int{0}, Indexing: topology.SnakeRowMajor}
		for _, alg := range RegistryFor(coll) {
			out := runSimColl(t, coll, alg, spec, 8)
			verifyCollective(t, fmt.Sprintf("%s/%s p=1", coll, alg.Name()), coll, spec, out, 8)
		}
	}
}

// TestReduceAllgatherCrossEngine is the cross-engine same-result check
// the collective harness promises: for the reduction and allgather
// entries, the simulator and the live engine must produce byte-identical
// per-rank bundles.
func TestReduceAllgatherCrossEngine(t *testing.T) {
	for _, coll := range []Collective{Reduce, AllReduce, AllGather} {
		for _, alg := range RegistryFor(coll) {
			for _, m := range [][2]int{{4, 4}, {3, 5}} {
				for _, spec := range collSpecs(coll, m[0], m[1]) {
					simOut := runSimColl(t, coll, alg, spec, 24)
					liveOut := runLiveColl(t, coll, alg, spec, 24)
					for rank := range simOut {
						if !reflect.DeepEqual(simOut[rank], liveOut[rank]) {
							t.Fatalf("%s/%s/%dx%d/s=%v: rank %d sim and live bundles differ",
								coll, alg.Name(), m[0], m[1], spec.Sources, rank)
						}
					}
				}
			}
		}
	}
}

// TestReduceBundle pins the fold semantics: byte-wise sum mod 256 on the
// data path, max length on the length-only path, empty in empty out.
func TestReduceBundle(t *testing.T) {
	got := ReduceBundle(comm.Message{Parts: []comm.Part{
		{Origin: 0, Data: []byte{1, 2, 250}},
		{Origin: 3, Data: []byte{10, 20}},
	}})
	want := []byte{11, 22, 250}
	if len(got.Parts) != 1 || got.Parts[0].Origin != ReducedOrigin || !reflect.DeepEqual(got.Parts[0].Data, want) {
		t.Fatalf("ReduceBundle data fold = %+v", got.Parts)
	}
	lenOnly := ReduceBundle(comm.Message{Parts: []comm.Part{{Origin: 0, Size: 8}, {Origin: 1, Size: 16}}})
	if len(lenOnly.Parts) != 1 || lenOnly.Parts[0].Data != nil || lenOnly.Parts[0].Len() != 16 {
		t.Fatalf("ReduceBundle length fold = %+v", lenOnly.Parts)
	}
	if empty := ReduceBundle(comm.Message{}); len(empty.Parts) != 0 {
		t.Fatalf("ReduceBundle(empty) = %+v", empty.Parts)
	}
}

// TestParseCollective covers name resolution including the legacy empty
// string and case-insensitivity.
func TestParseCollective(t *testing.T) {
	if got, err := ParseCollective(""); err != nil || got != Broadcast {
		t.Fatalf("ParseCollective(\"\") = %v, %v", got, err)
	}
	if got, err := ParseCollective("allreduce"); err != nil || got != AllReduce {
		t.Fatalf("ParseCollective(allreduce) = %v, %v", got, err)
	}
	if _, err := ParseCollective("gossip"); err == nil {
		t.Fatal("unknown collective accepted")
	}
}

// TestRegistryForPartition checks the per-collective registry views:
// every entry appears under exactly its own collective, Registry() stays
// the broadcast view, and ByNameFor rejects cross-collective pairings.
func TestRegistryForPartition(t *testing.T) {
	total := 0
	for _, coll := range Collectives() {
		for _, alg := range RegistryFor(coll) {
			total++
			if got := CollectiveOf(alg); got != coll {
				t.Errorf("%s listed under %s", alg.Name(), coll)
			}
			if a, err := ByNameFor(coll, alg.Name()); err != nil || a.Name() != alg.Name() {
				t.Errorf("ByNameFor(%s, %s) = %v, %v", coll, alg.Name(), a, err)
			}
		}
	}
	if broadcasts := Registry(); len(broadcasts) == len(registryAlgs) || total != len(registryAlgs) {
		t.Errorf("registry partition: %d broadcast, %d partitioned, %d total",
			len(Registry()), total, len(registryAlgs))
	}
	if _, err := ByNameFor(AllToAll, "Br_Lin"); err == nil {
		t.Error("broadcast algorithm accepted for AllToAll")
	}
	if _, err := ByNameFor(Broadcast, "A2A_JungSakho"); err == nil {
		t.Error("all-to-all algorithm accepted for Broadcast")
	}
}

// TestCapsTable pins the capability rows the facade validates against.
func TestCapsTable(t *testing.T) {
	if c := Broadcast.Caps(); !c.TakesSources || !c.Cluster || c.Combining || c.Chunked || c.SingleSource {
		t.Errorf("Broadcast caps = %+v", c)
	}
	for _, coll := range []Collective{Reduce, AllReduce} {
		if c := coll.Caps(); !c.TakesSources || !c.Combining || c.Cluster {
			t.Errorf("%s caps = %+v", coll, c)
		}
	}
	if c := Scatter.Caps(); !c.SingleSource || !c.Chunked || !c.TakesSources || c.Cluster {
		t.Errorf("Scatter caps = %+v", c)
	}
	if c := AllGather.Caps(); c.TakesSources || c.Chunked || c.Cluster {
		t.Errorf("AllGather caps = %+v", c)
	}
	if c := AllToAll.Caps(); c.TakesSources || !c.Chunked || c.Cluster {
		t.Errorf("AllToAll caps = %+v", c)
	}
}
