package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// TestBrXYSourceDimensionChoice verifies the max_r/max_c rule through
// observable behaviour: with a column distribution (few sources per row,
// many per column) the first phase must run along rows, so after phase one
// every processor of a source row is active. We detect the order through
// the iteration count split: phase one of a rows-first run on an r×c mesh
// takes ⌈log2 c⌉ iterations.
func TestBrXYSourceDimensionChoice(t *testing.T) {
	// 4×8 mesh, one full column (4 sources): max_r=1 < max_c=4 → rows
	// first → phase 1 = log2(8) = 3 iterations, phase 2 = log2(4) = 2.
	spec := makeSpec(t, dist.Column(), 4, 8, 4)
	_, res := runSim(t, BrXYSource(), spec, 64)
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want 3 (rows) + 2 (cols)", res.Iterations)
	}
	profile := metrics.ActiveProfile(res)
	// Phase 1, iteration 1: only the source column's rows communicate —
	// 2 processors per source row (the pair) × 4 rows = 8.
	if profile[0] != 8 {
		t.Fatalf("iteration 1 active = %d, want 8 (row phase of column sources): %v", profile[0], profile)
	}
}

// TestBrXYDimIgnoresSources: Br_xy_dim picks rows first on a square mesh
// regardless of the distribution; on a row distribution that is the wrong
// order and must cost more than Br_xy_source's choice.
func TestBrXYDimIgnoresSources(t *testing.T) {
	spec := makeSpec(t, dist.Row(), 8, 8, 16)
	_, dim := runSim(t, BrXYDim(), spec, 2048)
	_, src := runSim(t, BrXYSource(), spec, 2048)
	if float64(dim.Elapsed) < 1.1*float64(src.Elapsed) {
		t.Fatalf("Br_xy_dim (%d) not clearly slower than Br_xy_source (%d) on row distribution", dim.Elapsed, src.Elapsed)
	}
}

// TestBrXYOnDegenerateMeshes: 1×n and n×1 meshes reduce both phases to a
// single line; the algorithms must still deliver.
func TestBrXYOnDegenerateMeshes(t *testing.T) {
	for _, algf := range []func() Algorithm{BrXYSource, BrXYDim} {
		for _, dims := range [][2]int{{1, 9}, {9, 1}} {
			spec := makeSpec(t, dist.Equal(), dims[0], dims[1], 3)
			out, _ := runSim(t, algf(), spec, 32)
			verifyBundles(t, algf().Name(), spec, out, 32)
		}
	}
}

// TestRunLineDirect exercises the halving engine on a hand-checked line.
func TestRunLineDirect(t *testing.T) {
	// Line of 5 with a single holder at position 2 (the odd middle of the
	// first segment): the odd rule must push its bundle to position 4.
	spec := Spec{Rows: 1, Cols: 5, Sources: []int{2}, Indexing: topology.RowMajor}
	out, res := runSim(t, BrLin(), spec, 16)
	verifyBundles(t, "line5", spec, out, 16)
	// ceil(log2 5) = 3 iterations.
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
}

// TestBrLinOddMeshSourceGrowth: the paper notes that odd dimensions
// introduce new sources where power-of-two-aligned column distributions
// stall. Compare the first-iteration growth of a full-column distribution
// on 8×8 (stalls) vs 7×8.
func TestBrLinOddMeshSourceGrowth(t *testing.T) {
	active1 := func(r, c, s int) int {
		spec := makeSpec(t, dist.Column(), r, c, s)
		_, res := runSim(t, BrLin(), spec, 64)
		return metrics.ActiveProfile(res)[0]
	}
	even := active1(8, 8, 8) // one full column on 8×8
	odd := active1(7, 8, 7)  // one full column on 7×8
	// On the even mesh, snake positions of a column repeat with period
	// 2·c and align with the halving distance; growth is possible but
	// the odd mesh must engage at least as many processors relative to
	// its source count.
	if float64(odd)/7 < float64(even)/8 {
		t.Fatalf("odd mesh growth %d/7 below even mesh %d/8", odd, even)
	}
}

func TestIdealForMapping(t *testing.T) {
	if d := IdealFor(BrLin(), 10, 10); d.Name() != "Dl" {
		t.Errorf("Br_Lin ideal = %s", d.Name())
	}
	if d := IdealFor(BrXYSource(), 10, 10); d.Name() != "IdealRows" {
		t.Errorf("Br_xy_source ideal = %s", d.Name())
	}
	if d := IdealFor(BrXYDim(), 16, 16); d.Name() != "IdealCols" {
		t.Errorf("Br_xy_dim (square) ideal = %s", d.Name())
	}
	if d := IdealFor(BrXYDim(), 4, 30); d.Name() != "IdealRows" {
		t.Errorf("Br_xy_dim (wide) ideal = %s", d.Name())
	}
	if d := IdealFor(TwoStep(), 8, 8); d.Name() != "IdealSnake" {
		t.Errorf("fallback ideal = %s", d.Name())
	}
}

// TestReposMovesMessagesOnce: repositioning is a partial permutation —
// exactly min(s, moved) messages travel, none twice. Count sends during
// the permutation phase by comparing against the inner algorithm alone on
// the ideal spec.
func TestReposMovesMessagesOnce(t *testing.T) {
	spec := makeSpec(t, dist.Square(), 8, 8, 16)
	_, repos := runSim(t, ReposXYSource(), spec, 64)
	ideal, err := dist.IdealRows().Sources(8, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	idealSpec := Spec{Rows: 8, Cols: 8, Sources: ideal, Indexing: topology.SnakeRowMajor}
	_, inner := runSim(t, BrXYSource(), idealSpec, 64)
	reposSends, innerSends := 0, 0
	for i := range repos.Procs {
		reposSends += repos.Procs[i].Sends
		innerSends += inner.Procs[i].Sends
	}
	extra := reposSends - innerSends
	if extra < 0 || extra > 16 {
		t.Fatalf("permutation moved %d messages for 16 sources", extra)
	}
}

// TestPartSingleSourceAndTinyMachines: partitioning with s=1 leaves one
// half empty; 1×2 and 2×1 machines split into singletons.
func TestPartSingleSourceAndTinyMachines(t *testing.T) {
	for _, dims := range [][2]int{{1, 2}, {2, 1}, {2, 2}, {1, 5}} {
		spec := makeSpec(t, dist.Equal(), dims[0], dims[1], 1)
		for _, alg := range []Algorithm{PartLin(), PartXYSource(), PartXYDim()} {
			out, _ := runSim(t, alg, spec, 16)
			verifyBundles(t, alg.Name(), spec, out, 16)
		}
	}
}

// TestPartUnevenHalves: odd column counts give halves of different sizes;
// the extra processors of the larger half must still receive the other
// half's bundle.
func TestPartUnevenHalves(t *testing.T) {
	spec := makeSpec(t, dist.DiagRight(), 3, 7, 6)
	out, _ := runSim(t, PartXYSource(), spec, 48)
	verifyBundles(t, "Part uneven", spec, out, 48)
}

// TestBrDimsMatchesBrXYShape: with two extents, Br_dims is the Br_xy
// pattern; delivery must be correct for both dimension orders on every
// distribution.
func TestBrDimsCorrectness(t *testing.T) {
	for _, m := range [][2]int{{4, 4}, {3, 5}} {
		r, c := m[0], m[1]
		p := r * c
		for _, d := range dist.All() {
			spec := makeSpec(t, d, r, c, p/2)
			for _, order := range [][]int{{0, 1}, {1, 0}} {
				alg := BrDims([]int{r, c}, order)
				out, _ := runSim(t, alg, spec, 16)
				verifyBundles(t, alg.Name(), spec, out, 16)
			}
		}
	}
}

// TestBrDims3D: a three-dimensional logical grid on 24 processors.
func TestBrDims3D(t *testing.T) {
	spec := makeSpec(t, dist.Equal(), 4, 6, 8) // 24 processors, ranks reused
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		alg := BrDims([]int{2, 3, 4}, order)
		out, _ := runSim(t, alg, spec, 32)
		verifyBundles(t, alg.Name(), spec, out, 32)
	}
}

// TestBrDims1D degenerates to Br_Lin on a row-major line.
func TestBrDims1D(t *testing.T) {
	spec := makeSpec(t, dist.Cross(), 2, 6, 5)
	alg := BrDims([]int{12}, []int{0})
	out, _ := runSim(t, alg, spec, 16)
	verifyBundles(t, alg.Name(), spec, out, 16)
}

func TestBrDimsValidation(t *testing.T) {
	cases := []brDims{
		BrDims([]int{3}, []int{0}).(brDims),         // wrong product
		BrDims([]int{2, 2}, []int{0}).(brDims),      // short order
		BrDims([]int{2, 2}, []int{0, 0}).(brDims),   // not a permutation
		BrDims([]int{2, 2}, []int{0, 5}).(brDims),   // out of range
		BrDims([]int{-1, -4}, []int{0, 1}).(brDims), // negative extents
		BrDims(nil, nil).(brDims),                   // empty
	}
	for i, alg := range cases {
		if err := alg.validate(4); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := BrDims([]int{2, 2}, []int{1, 0}).(brDims).validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
