// Package core implements the paper's s-to-p broadcasting algorithms:
//
//   - the library-based baselines 2-Step (gather + one-to-all broadcast)
//     and PersAlltoAll (personalized all-to-all exchange),
//   - the message-combining algorithms Br_Lin, Br_xy_source and Br_xy_dim
//     (Section 2),
//   - the repositioning algorithms Repos_Lin, Repos_xy_source and
//     Repos_xy_dim (Section 3), which permute the sources into an ideal
//     distribution before broadcasting,
//   - the partitioning algorithms Part_Lin, Part_xy_source and
//     Part_xy_dim (Section 3), which additionally split the machine into
//     two halves, broadcast independently, and finish with a pairwise
//     inter-half exchange, and
//   - Ring_AllGather, a modern-MPI ring all-gather included as an
//     ablation beyond the paper.
//
// Every algorithm is written against comm.Comm and therefore runs
// unchanged on the discrete-event simulator (timing figures) and on the
// live goroutine runtime (functional correctness). Following the paper's
// model, every processor knows the machine dimensions and the source
// positions when broadcasting starts, so the evolution of which processor
// holds which messages is computed locally and deterministically — no
// probing, no wildcard receives.
package core

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/topology"
)

// Spec describes one s-to-p broadcast instance on an r×c logical mesh.
// All processors must pass identical Specs to an algorithm.
type Spec struct {
	// Rows, Cols are the logical mesh dimensions; p = Rows·Cols must
	// equal the communicator size.
	Rows, Cols int
	// Sources are the sorted row-major ranks of the s source processors.
	Sources []int
	// Indexing is the linear order Br_Lin uses on the mesh. The paper
	// uses snake-like row-major; row-major is available for ablation.
	Indexing topology.Indexing
}

// P returns the processor count.
func (s Spec) P() int { return s.Rows * s.Cols }

// S returns the source count.
func (s Spec) S() int { return len(s.Sources) }

// Validate reports whether the spec is internally consistent and matches
// a machine of p processors.
func (s Spec) Validate(p int) error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("core: invalid mesh %d×%d", s.Rows, s.Cols)
	}
	if s.P() != p {
		return fmt.Errorf("core: mesh %d×%d does not cover machine of %d", s.Rows, s.Cols, p)
	}
	if len(s.Sources) == 0 {
		return fmt.Errorf("core: no sources")
	}
	if !sort.IntsAreSorted(s.Sources) {
		return fmt.Errorf("core: sources not sorted: %v", s.Sources)
	}
	for i, src := range s.Sources {
		if src < 0 || src >= p {
			return fmt.Errorf("core: source %d outside machine of %d", src, p)
		}
		if i > 0 && s.Sources[i-1] == src {
			return fmt.Errorf("core: duplicate source %d", src)
		}
	}
	return nil
}

// IsSource reports whether rank is a source.
func (s Spec) IsSource(rank int) bool {
	i := sort.SearchInts(s.Sources, rank)
	return i < len(s.Sources) && s.Sources[i] == rank
}

// SourceIndex returns rank's position among the sorted sources, or -1.
func (s Spec) SourceIndex(rank int) int {
	i := sort.SearchInts(s.Sources, rank)
	if i < len(s.Sources) && s.Sources[i] == rank {
		return i
	}
	return -1
}

// holderFlags returns the initial holds vector: holds[rank] == true iff
// rank is a source.
func (s Spec) holderFlags() []bool {
	h := make([]bool, s.P())
	for _, src := range s.Sources {
		h[src] = true
	}
	return h
}

// InitialMessage builds the bundle a processor enters the broadcast with:
// one part carrying its payload if it is a source, an empty bundle
// otherwise.
func InitialMessage(spec Spec, rank int, payload []byte) comm.Message {
	if !spec.IsSource(rank) {
		return comm.Message{}
	}
	return comm.Message{Parts: []comm.Part{{Origin: rank, Data: payload}}}
}

// InitialMessageLen is InitialMessage for the simulator's length-only
// payload path: the source's part declares size bytes without allocating
// them. The discrete-event engine prices lengths only, so sweeps built on
// this path never touch the allocator for payload buffers.
func InitialMessageLen(spec Spec, rank, size int) comm.Message {
	if !spec.IsSource(rank) {
		return comm.Message{}
	}
	return comm.Message{Parts: []comm.Part{{Origin: rank, Size: size}}}
}

// Algorithm is one s-to-p broadcasting algorithm. Run executes the
// broadcast on the calling processor: mine is the processor's initial
// bundle (see InitialMessage) and the returned bundle carries all s
// original messages on every processor.
type Algorithm interface {
	// Name is the paper's name for the algorithm ("Br_Lin", ...).
	Name() string
	// Run performs the broadcast. All processors of the communicator
	// must call Run with the same spec.
	Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message
}
