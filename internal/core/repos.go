package core

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/dist"
)

// IdealFor returns the ideal source distribution generator the paper pairs
// with each non-repositioning algorithm on a given machine:
//
//   - Br_Lin: the left diagonal Dl (Section 5.2; least sensitive to the
//     machine size and one of Br_Lin's ideal distributions),
//   - Br_xy_source: full rows at halving-ideal row positions,
//   - Br_xy_dim: full lines of the dimension processed second (columns
//     when rows go first, i.e. r ≥ c), at halving-ideal positions.
//
// The generator is a pure function of the machine dimensions, so every
// processor derives the identical ideal distribution.
func IdealFor(alg Algorithm, rows, cols int) dist.Distribution {
	switch alg.Name() {
	case "Br_Lin":
		return dist.DiagLeft()
	case "Br_xy_source":
		return dist.IdealRows()
	case "Br_xy_dim":
		if rows >= cols {
			// Rows are processed first; sources should fill columns.
			return dist.IdealColumns()
		}
		return dist.IdealRows()
	}
	// Sensible default for ablations: the machine-exact Br_Lin ideal.
	return dist.IdealSnake()
}

// repositionPermutation computes the partial permutation target ranks:
// the k-th source (in sorted order) moves its message to the k-th ideal
// position (in sorted order).
func repositionPermutation(spec Spec, ideal []int) []int {
	if len(ideal) != spec.S() {
		panic(fmt.Sprintf("core: ideal distribution has %d positions for %d sources", len(ideal), spec.S()))
	}
	targets := make([]int, len(ideal))
	copy(targets, ideal)
	sort.Ints(targets)
	return targets
}

// applyReposition performs the partial permutation on the calling
// processor and returns its post-permutation bundle: the bundle it
// received (it is an ideal position), its own bundle (source mapped to
// itself), or the empty bundle.
func applyReposition(c comm.Comm, spec Spec, targets []int, mine comm.Message) comm.Message {
	rank := c.Rank()
	var bundle comm.Message
	if i := spec.SourceIndex(rank); i >= 0 {
		if targets[i] == rank {
			bundle = mine
		} else {
			c.Send(targets[i], mine)
		}
	}
	for k, tgt := range targets {
		if tgt != rank {
			continue
		}
		src := spec.Sources[k]
		if src != rank {
			bundle = c.Recv(src)
		}
		break // ideal positions are unique
	}
	return bundle
}

// repos is a repositioning algorithm (Section 3): transform the given
// source distribution into an ideal distribution for the inner algorithm
// via a partial permutation, then invoke the inner algorithm. Like the
// paper's implementations, it does not test whether the initial
// distribution is already close to ideal — it always repositions.
type repos struct {
	name  string
	inner Algorithm
}

func (a repos) Name() string { return a.name }

func (a repos) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	gen := IdealFor(a.inner, spec.Rows, spec.Cols)
	ideal, err := gen.Sources(spec.Rows, spec.Cols, spec.S())
	if err != nil {
		panic(err)
	}
	targets := repositionPermutation(spec, ideal)
	bundle := applyReposition(c, spec, targets, mine)
	inner := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: targets, Indexing: spec.Indexing}
	return a.inner.Run(c, inner, bundle)
}

// reposFixed repositions to an explicit target position set instead of the
// paper's per-algorithm ideal generator. Used by ablations comparing
// repositioning targets.
type reposFixed struct {
	inner Algorithm
	ideal []int
}

func (a reposFixed) Name() string { return "Repos_to(" + a.inner.Name() + ")" }

func (a reposFixed) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	targets := repositionPermutation(spec, a.ideal)
	bundle := applyReposition(c, spec, targets, mine)
	inner := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: targets, Indexing: spec.Indexing}
	return a.inner.Run(c, inner, bundle)
}

// ReposTo returns a repositioning algorithm that permutes the sources onto
// the given target positions (one per source) and then runs inner.
func ReposTo(inner Algorithm, ideal []int) Algorithm {
	return reposFixed{inner: inner, ideal: append([]int(nil), ideal...)}
}

// ReposLin returns Algorithm Repos_Lin: reposition to the left diagonal,
// then Br_Lin.
func ReposLin() Algorithm { return repos{name: "Repos_Lin", inner: BrLin()} }

// ReposXYSource returns Algorithm Repos_xy_source: reposition to ideal
// rows, then Br_xy_source.
func ReposXYSource() Algorithm { return repos{name: "Repos_xy_source", inner: BrXYSource()} }

// ReposXYDim returns Algorithm Repos_xy_dim: reposition to ideal lines of
// the dimension processed second, then Br_xy_dim.
func ReposXYDim() Algorithm { return repos{name: "Repos_xy_dim", inner: BrXYDim()} }
