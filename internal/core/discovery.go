package core

import (
	"fmt"

	"repro/internal/comm"
)

// The paper's algorithms assume every processor knows the source positions
// and message sizes before broadcasting starts (Section 1: "If this does
// not hold, synchronization and possible communication is needed before
// our algorithms can be used"). WithDiscovery supplies that missing
// phase: a recursive-doubling all-reduce of source flags (one byte per
// processor), after which every processor has derived the same Spec and
// the inner algorithm runs unchanged.
//
// The discovery phase costs ⌈log2 p⌉ rounds of p-byte messages — small
// next to the broadcast itself for all but tiny L, which the
// ablation-discovery experiment quantifies.
type discovery struct {
	inner Algorithm
}

// WithDiscovery wraps an algorithm with the source-discovery pre-phase.
// The wrapped algorithm's Run ignores spec.Sources on non-sources: each
// processor only needs to know whether it is itself a source (mine is
// non-empty); the global source set is established by the discovery
// exchange. spec.Sources must still be passed consistently (it defines
// ground truth for the run and lets tests verify the discovered set).
func WithDiscovery(inner Algorithm) Algorithm { return discovery{inner: inner} }

func (a discovery) Name() string { return "Discover+" + a.inner.Name() }

func (a discovery) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	discovered := discoverSources(c, len(mine.Parts) > 0)
	// The discovered set must equal the declared one; a mismatch means
	// the caller's spec and payloads disagree.
	if len(discovered) != len(spec.Sources) {
		panic(fmt.Sprintf("core: discovery found %d sources, spec declares %d", len(discovered), len(spec.Sources)))
	}
	for i, s := range discovered {
		if spec.Sources[i] != s {
			panic(fmt.Sprintf("core: discovered source set %v differs from spec %v", discovered, spec.Sources))
		}
	}
	inner := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: discovered, Indexing: spec.Indexing}
	return a.inner.Run(c, inner, mine)
}

// discoverSources runs the recursive-doubling flag exchange and returns
// the sorted source ranks. On non-power-of-two machines the rounds use
// ring neighbours at doubling distances, which needs ⌈log2 p⌉ rounds of
// two messages each and reaches everyone.
func discoverSources(c comm.Comm, isSource bool) []int {
	p := c.Size()
	rank := c.Rank()
	flags := make([]byte, p)
	if isSource {
		flags[rank] = 1
	}
	if p == 1 {
		return flagsToSources(flags)
	}
	pow2 := p&(p-1) == 0
	for dist := 1; dist < p; dist <<= 1 {
		if pow2 {
			partner := rank ^ dist
			got := comm.Exchange(c, partner, comm.Message{Tag: -2, Parts: []comm.Part{{Origin: rank, Data: append([]byte(nil), flags...)}}})
			merge(flags, got.Parts[0].Data)
			continue
		}
		// Ring dissemination at doubling distances (works for any p):
		// send to rank+dist, receive from rank−dist.
		c.Send((rank+dist)%p, comm.Message{Tag: -2, Parts: []comm.Part{{Origin: rank, Data: append([]byte(nil), flags...)}}})
		got := c.Recv((rank - dist + p) % p)
		merge(flags, got.Parts[0].Data)
	}
	return flagsToSources(flags)
}

func merge(dst, src []byte) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func flagsToSources(flags []byte) []int {
	var out []int
	for i, f := range flags {
		if f != 0 {
			out = append(out, i)
		}
	}
	return out
}
